(* Tests for janus_pool: deterministic submission-ordered collection
   under adversarial task durations, exception propagation from worker
   domains, pool reuse across batches, and the published counters. *)

module Pool = Janus_pool.Pool
module Obs = Janus_obs.Obs

(* a busy-wait the optimiser cannot delete, to skew task durations *)
let spin n =
  let x = ref 0 in
  for _ = 1 to n * 1_000 do
    x := Sys.opaque_identity (!x + 1)
  done;
  !x

let test_map_preserves_submission_order () =
  Pool.with_pool ~jobs:4 (fun p ->
      let xs = List.init 40 Fun.id in
      let ys = Pool.map p (fun i -> i * i) xs in
      Alcotest.(check (list int)) "squares in order"
        (List.map (fun i -> i * i) xs) ys)

let test_order_under_adversarial_durations () =
  Pool.with_pool ~jobs:4 (fun p ->
      (* earliest submissions are the slowest, so naive
         completion-order collection would reverse the list *)
      let xs = List.init 24 Fun.id in
      let ys =
        Pool.map p (fun i -> ignore (spin ((24 - i) * 40)); i) xs
      in
      Alcotest.(check (list int)) "slow-first stays ordered" xs ys;
      (* and the reverse skew: one long task submitted last *)
      let zs =
        Pool.map p (fun i -> ignore (spin (if i = 23 then 1_000 else 1)); -i) xs
      in
      Alcotest.(check (list int)) "slow-last stays ordered"
        (List.map (fun i -> -i) xs) zs)

exception Boom of int

let test_earliest_exception_wins () =
  Pool.with_pool ~jobs:3 (fun p ->
      let xs = List.init 16 Fun.id in
      let raised =
        try
          (* indices 11 and 5 both fail; 5 must be the one reported,
             regardless of which worker domain hits it first *)
          ignore
            (Pool.map p
               (fun i ->
                  if i = 5 || i = 11 then raise (Boom i)
                  else ignore (spin 5);
                  i)
               xs);
          None
        with Boom i -> Some i
      in
      Alcotest.(check (option int)) "earliest index re-raised" (Some 5) raised;
      (* the batch settled cleanly: the pool is still usable *)
      let ys = Pool.map p succ [ 1; 2; 3 ] in
      Alcotest.(check (list int)) "pool survives a failed batch"
        [ 2; 3; 4 ] ys)

let test_reuse_across_batches () =
  Pool.with_pool ~jobs:3 (fun p ->
      for round = 1 to 5 do
        let xs = List.init (8 * round) Fun.id in
        let ys = Pool.map p (fun i -> i + round) xs in
        Alcotest.(check (list int))
          (Printf.sprintf "round %d" round)
          (List.map (fun i -> i + round) xs)
          ys
      done;
      let s = Pool.stats p in
      Alcotest.(check int) "batches" 5 s.Pool.batches;
      Alcotest.(check int) "tasks" (8 + 16 + 24 + 32 + 40) s.Pool.tasks)

let test_jobs_one_runs_inline () =
  Pool.with_pool ~jobs:1 (fun p ->
      (* jobs = 1 must execute on the calling domain: observable via a
         mutable cell no other domain could see without synchronisation *)
      let here = ref [] in
      let ys = Pool.map p (fun i -> here := i :: !here; i) [ 1; 2; 3 ] in
      Alcotest.(check (list int)) "results" [ 1; 2; 3 ] ys;
      Alcotest.(check (list int)) "ran inline, in order" [ 3; 2; 1 ] !here;
      let s = Pool.stats p in
      Alcotest.(check int) "no steals inline" 0 s.Pool.steals)

let test_empty_and_singleton () =
  Pool.with_pool ~jobs:4 (fun p ->
      Alcotest.(check (list int)) "empty" [] (Pool.map p Fun.id []);
      Alcotest.(check (list int)) "singleton" [ 7 ] (Pool.map p Fun.id [ 7 ]))

let test_shutdown_idempotent () =
  let p = Pool.create ~jobs:3 () in
  let ys = Pool.map p string_of_int [ 1; 2 ] in
  Alcotest.(check (list string)) "ran" [ "1"; "2" ] ys;
  Pool.shutdown p;
  Pool.shutdown p;
  Alcotest.(check pass) "double shutdown is a no-op" () ()

let test_publish_metrics () =
  Pool.with_pool ~jobs:2 (fun p ->
      ignore (Pool.map p (fun i -> ignore (spin 10); i) (List.init 12 Fun.id));
      let obs = Obs.create () in
      Pool.publish_metrics p obs;
      let c = Obs.counter obs in
      Alcotest.(check int) "pool.jobs" 2 (c "pool.jobs");
      Alcotest.(check int) "pool.tasks" 12 (c "pool.tasks");
      Alcotest.(check int) "pool.batches" 1 (c "pool.batches");
      Alcotest.(check bool) "pool.steals non-negative" true
        (c "pool.steals" >= 0))

let test_stats_agree_on_exception () =
  (* the inline (jobs = 1) and parallel paths must advance the lifetime
     counters identically when a task raises: one batch, every task *)
  let run jobs =
    Pool.with_pool ~jobs (fun p ->
        (try
           ignore
             (Pool.map p
                (fun i -> if i = 2 then raise (Boom i) else i)
                [ 0; 1; 2; 3; 4 ])
         with Boom _ -> ());
        let s = Pool.stats p in
        (s.Pool.tasks, s.Pool.batches))
  in
  Alcotest.(check (pair int int)) "inline counts a failed batch" (5, 1) (run 1);
  Alcotest.(check (pair int int)) "parallel counts a failed batch" (5, 1)
    (run 3)

let test_singleton_exception_counted () =
  (* the singleton fast path used to skip the counters entirely when
     the task raised *)
  Pool.with_pool ~jobs:4 (fun p ->
      (try ignore (Pool.map p (fun _ -> raise (Boom 0)) [ 42 ])
       with Boom _ -> ());
      let s = Pool.stats p in
      Alcotest.(check int) "failed singleton task counted" 1 s.Pool.tasks;
      Alcotest.(check int) "failed singleton batch counted" 1 s.Pool.batches)

let test_reentrant_map_runs_inline () =
  (* a task of an in-flight batch calling map on the same pool used to
     overwrite the live batch (t.batch / t.gen): late-waking workers
     joined the wrong batch and the outer map deadlocked or returned
     corrupt results. Re-entrant calls must run inline instead. *)
  Pool.with_pool ~jobs:4 (fun p ->
      let xs = List.init 8 Fun.id in
      let ys =
        Pool.map p
          (fun i ->
             let inner = Pool.map p (fun j -> (10 * i) + j) [ 0; 1; 2 ] in
             List.fold_left ( + ) 0 inner)
          xs
      in
      let expect = List.map (fun i -> (30 * i) + 3) xs in
      Alcotest.(check (list int)) "nested maps return correct sums" expect ys;
      (* counters are path-independent: one outer batch of 8 plus eight
         inline inner batches of 3 *)
      let s = Pool.stats p in
      Alcotest.(check int) "tasks" (8 + 24) s.Pool.tasks;
      Alcotest.(check int) "batches" 9 s.Pool.batches)

let test_create_rejects_zero_jobs () =
  Alcotest.check_raises "jobs = 0"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0 ()))

let tests =
  [
    Alcotest.test_case "map preserves submission order" `Quick
      test_map_preserves_submission_order;
    Alcotest.test_case "order survives adversarial durations" `Quick
      test_order_under_adversarial_durations;
    Alcotest.test_case "earliest exception wins" `Quick
      test_earliest_exception_wins;
    Alcotest.test_case "pool reusable across batches" `Quick
      test_reuse_across_batches;
    Alcotest.test_case "jobs=1 runs inline" `Quick test_jobs_one_runs_inline;
    Alcotest.test_case "empty and singleton batches" `Quick
      test_empty_and_singleton;
    Alcotest.test_case "shutdown is idempotent" `Quick
      test_shutdown_idempotent;
    Alcotest.test_case "publish_metrics exposes counters" `Quick
      test_publish_metrics;
    Alcotest.test_case "stats agree across paths on exception" `Quick
      test_stats_agree_on_exception;
    Alcotest.test_case "failed singleton advances counters" `Quick
      test_singleton_exception_counted;
    Alcotest.test_case "re-entrant map runs inline" `Quick
      test_reentrant_map_runs_inline;
    Alcotest.test_case "create rejects jobs=0" `Quick
      test_create_rejects_zero_jobs;
  ]
