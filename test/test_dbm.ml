(* Tests for the dynamic binary modifier: translation, rule
   transformations, code-cache behaviour, fragment linking, trace
   promotion and event dispatch. *)

open Janus_vx
open Janus_vm
module Dbm = Janus_dbm.Dbm
module Rule = Janus_schedule.Rule
module Schedule = Janus_schedule.Schedule

let reg r = Operand.Reg r
let imm i = Operand.Imm (Int64.of_int i)

(* a two-block program: a counted loop then exit *)
let loop_image ~n =
  let b = Builder.create () in
  Builder.label b "_start";
  Builder.ins b (Insn.Mov (reg Reg.RCX, imm 0));
  Builder.ins b (Insn.Mov (reg Reg.RAX, imm 0));
  Builder.label b "head";
  Builder.ins b (Insn.Cmp (reg Reg.RCX, imm n));
  Builder.jcc b Cond.Ge "done";
  Builder.ins b (Insn.Alu (Insn.Add, reg Reg.RAX, reg Reg.RCX));
  Builder.ins b (Insn.Alu (Insn.Add, reg Reg.RCX, imm 1));
  Builder.jmp b "head";
  Builder.label b "done";
  Builder.ins b (Insn.Mov (reg Reg.RDI, reg Reg.RAX));
  Builder.ins b (Insn.Syscall Insn.sys_write_int);
  Builder.ins b (Insn.Mov (reg Reg.RDI, imm 0));
  Builder.ins b (Insn.Syscall Insn.sys_exit);
  Builder.to_image b ~entry:"_start"

let run_dbm ?schedule image =
  let prog = Program.load image in
  let dbm = Dbm.create ?schedule prog in
  let cache = Dbm.new_cache Dbm.Main in
  let ctx = Run.fresh_context prog in
  let outcome = Dbm.run dbm cache ctx in
  (dbm, cache, ctx, outcome)

let test_dbm_matches_native () =
  let img = loop_image ~n:50 in
  let native = Run.run img in
  let _, _, ctx, outcome = run_dbm img in
  Alcotest.(check bool) "halted" true (outcome = `Halted);
  Alcotest.(check string) "output" native.Run.output
    (Buffer.contents ctx.Machine.out);
  (* trace promotion elides unconditional jumps, so the DBM may retire
     slightly fewer instructions than native execution *)
  Alcotest.(check bool) "icount close" true
    (ctx.Machine.icount <= native.Run.icount
     && ctx.Machine.icount > (native.Run.icount * 3) / 4)

let test_translation_charged () =
  let img = loop_image ~n:50 in
  let native = Run.run img in
  let dbm, _, ctx, _ = run_dbm img in
  Alcotest.(check bool) "translated instructions counted" true
    (dbm.Dbm.stats.Dbm.translated_insns > 0);
  Alcotest.(check bool) "translation cycles charged" true
    (ctx.Machine.cycles > native.Run.cycles
     || dbm.Dbm.stats.Dbm.traces_built > 0)

let test_fragments_cached () =
  let img = loop_image ~n:200 in
  let dbm, cache, _, _ = run_dbm img in
  (* the loop executes 200 times but each block is translated once
     (plus possible trace promotions) *)
  Alcotest.(check bool) "few fragments" true
    (Hashtbl.length cache.Dbm.frags <= 8);
  Alcotest.(check bool) "many dispatches" true
    (dbm.Dbm.stats.Dbm.dispatches > 200)

let test_trace_promotion () =
  let img = loop_image ~n:200 in
  let dbm, _, _, _ = run_dbm img in
  Alcotest.(check bool) "hot back edge promoted to a trace" true
    (dbm.Dbm.stats.Dbm.traces_built >= 1)

let test_cache_flush () =
  let img = loop_image ~n:10 in
  let prog = Program.load img in
  let dbm = Dbm.create prog in
  let cache = Dbm.new_cache Dbm.Main in
  let ctx = Run.fresh_context prog in
  ignore (Dbm.run dbm cache ctx);
  Alcotest.(check bool) "cache populated" true (Hashtbl.length cache.Dbm.frags > 0);
  Dbm.flush_cache dbm cache;
  Alcotest.(check int) "cache empty after flush" 0
    (Hashtbl.length cache.Dbm.frags);
  Alcotest.(check int) "flush counted" 1 dbm.Dbm.stats.Dbm.cache_flushes

let test_out_of_fuel_is_typed () =
  let img = loop_image ~n:1_000_000 in
  let prog = Program.load img in
  let dbm = Dbm.create prog in
  let cache = Dbm.new_cache Dbm.Main in
  let ctx = Run.fresh_context prog in
  (* a tiny budget cannot finish a million-iteration loop; the DBM must
     report that as a value, not an exception *)
  (match Dbm.run ~fuel:50 dbm cache ctx with
   | `Out_of_fuel addr ->
     Alcotest.(check bool) "stops inside .text" true (addr >= Layout.text_base)
   | `Halted -> Alcotest.fail "cannot halt on 50 instructions"
   | `Yielded -> Alcotest.fail "nothing yields here");
  (* the same program with enough fuel halts normally *)
  let img' = loop_image ~n:10 in
  let prog' = Program.load img' in
  let dbm' = Dbm.create prog' in
  let cache' = Dbm.new_cache Dbm.Main in
  let ctx' = Run.fresh_context prog' in
  match Dbm.run dbm' cache' ctx' with
  | `Halted -> ()
  | _ -> Alcotest.fail "short loop should halt"

(* ------------------------------------------------------------------ *)
(* Transformation handlers                                             *)
(* ------------------------------------------------------------------ *)

let test_privatise_transform () =
  let r = Rule.make ~addr:0 ~data:3L Rule.MEM_PRIVATISE in
  let original =
    Insn.Mov (Operand.Mem (Operand.mem_abs 0x600010), reg Reg.RAX)
  in
  match Dbm.apply_transform r original with
  | Insn.Mov (Operand.Mem m, Operand.Reg Reg.RAX) ->
    Alcotest.(check bool) "TLS base" true (m.Operand.base = Some Reg.TLS);
    Alcotest.(check int) "slot offset" 24 m.Operand.disp
  | i -> Alcotest.failf "unexpected rewrite: %s" (Insn.to_string i)

let test_update_bound_transform () =
  let r = Rule.make ~addr:0 ~data:1L Rule.LOOP_UPDATE_BOUND in
  let original = Insn.Cmp (reg Reg.RBX, imm 100) in
  (match Dbm.apply_transform r original with
   | Insn.Cmp (Operand.Reg Reg.RBX, Operand.Mem m) ->
     Alcotest.(check bool) "bound from TLS slot 0" true
       (m.Operand.base = Some Reg.TLS && m.Operand.disp = 0)
   | i -> Alcotest.failf "unexpected rewrite: %s" (Insn.to_string i));
  (* operand index 0 replaces the first operand *)
  let r0 = Rule.make ~addr:0 ~data:0L Rule.LOOP_UPDATE_BOUND in
  match Dbm.apply_transform r0 (Insn.Cmp (imm 100, reg Reg.RBX)) with
  | Insn.Cmp (Operand.Mem _, Operand.Reg Reg.RBX) -> ()
  | i -> Alcotest.failf "unexpected rewrite: %s" (Insn.to_string i)

let test_main_stack_transform () =
  let r = Rule.make ~addr:0 Rule.MEM_MAIN_STACK in
  let original =
    Insn.Fmov
      (Insn.Scalar, Operand.Freg (Reg.XMM 1),
       Operand.Fmem (Operand.mem_base ~disp:(-24) Reg.RBP))
  in
  match Dbm.apply_transform r original with
  | Insn.Fmov (Insn.Scalar, Operand.Freg _, Operand.Fmem m) ->
    Alcotest.(check bool) "base swapped to SHARED" true
      (m.Operand.base = Some Reg.SHARED);
    Alcotest.(check int) "displacement kept" (-24) m.Operand.disp
  | i -> Alcotest.failf "unexpected rewrite: %s" (Insn.to_string i)

let test_rule_kind_filtering () =
  (* workers receive transformations; the main thread does not *)
  let priv = Rule.make ~addr:0 ~data:1L Rule.MEM_PRIVATISE in
  let init = Rule.make ~addr:0 Rule.LOOP_INIT in
  Alcotest.(check bool) "worker gets privatise" true
    (Dbm.applies (Dbm.Worker 0) priv);
  Alcotest.(check bool) "main does not get privatise" false
    (Dbm.applies Dbm.Main priv);
  Alcotest.(check bool) "main gets loop init" true (Dbm.applies Dbm.Main init);
  Alcotest.(check bool) "worker does not get loop init" false
    (Dbm.applies (Dbm.Worker 0) init)

(* ------------------------------------------------------------------ *)
(* Event dispatch                                                      *)
(* ------------------------------------------------------------------ *)

let test_events_fire_in_order () =
  let img = loop_image ~n:5 in
  (* attach two profiling events to the loop header *)
  let header_addr =
    (* header = address after the two initial movs *)
    let open Insn in
    let m1 = Mov (reg Reg.RCX, imm 0) in
    let m2 = Mov (reg Reg.RAX, imm 0) in
    Layout.text_base + Encode.size m1 + Encode.size m2
  in
  let b = Schedule.builder Schedule.Profiling in
  Schedule.add_rule b (Rule.make ~addr:header_addr ~data:1L Rule.PROF_LOOP_START);
  Schedule.add_rule b (Rule.make ~addr:header_addr ~data:2L Rule.PROF_LOOP_ITER);
  let schedule = Schedule.build b in
  let prog = Program.load img in
  let dbm = Dbm.create ~schedule prog in
  let log = ref [] in
  dbm.Dbm.on_event <-
    (fun _ _ _ r ->
       log := Int64.to_int r.Rule.data :: !log;
       Dbm.Continue);
  let cache = Dbm.new_cache Dbm.Main in
  let ctx = Run.fresh_context prog in
  ignore (Dbm.run dbm cache ctx);
  (* header executes 6 times (5 iterations + exit test); both events
     fire each time, START before ITER *)
  Alcotest.(check int) "event count" 12 (List.length !log);
  Alcotest.(check bool) "order" true
    (match List.rev !log with 1 :: 2 :: _ -> true | _ -> false)

let test_divert_action () =
  let img = loop_image ~n:1000 in
  (* divert at the loop header straight to the exit block *)
  let header_addr =
    let open Insn in
    Layout.text_base
    + Encode.size (Mov (reg Reg.RCX, imm 0))
    + Encode.size (Mov (reg Reg.RAX, imm 0))
  in
  (* exit block address: find it by decoding for the first syscall *)
  let exit_addr =
    let code = Image.decode_text img in
    Hashtbl.fold
      (fun a (i, _) acc ->
         match i with
         | Insn.Mov (Operand.Reg Reg.RDI, Operand.Reg Reg.RAX) -> min a acc
         | _ -> acc)
      code max_int
  in
  let b = Schedule.builder Schedule.Parallelisation in
  Schedule.add_rule b (Rule.make ~addr:header_addr Rule.LOOP_INIT);
  let schedule = Schedule.build b in
  let prog = Program.load img in
  let dbm = Dbm.create ~schedule prog in
  dbm.Dbm.on_event <- (fun _ _ _ _ -> Dbm.Divert exit_addr);
  let cache = Dbm.new_cache Dbm.Main in
  let ctx = Run.fresh_context prog in
  ignore (Dbm.run dbm cache ctx);
  (* the loop body never ran: rax = 0 *)
  Alcotest.(check string) "loop skipped" "0\n" (Buffer.contents ctx.Machine.out)

let test_stop_action () =
  let img = loop_image ~n:1000 in
  let b = Schedule.builder Schedule.Parallelisation in
  Schedule.add_rule b
    (Rule.make ~addr:Layout.text_base Rule.THREAD_SCHEDULE);
  let schedule = Schedule.build b in
  let prog = Program.load img in
  let dbm = Dbm.create ~schedule prog in
  dbm.Dbm.on_event <- (fun _ _ _ _ -> Dbm.Stop_thread);
  let cache = Dbm.new_cache Dbm.Main in
  let ctx = Run.fresh_context prog in
  let outcome = Dbm.run dbm cache ctx in
  Alcotest.(check bool) "yielded immediately" true (outcome = `Yielded);
  Alcotest.(check string) "nothing ran" "" (Buffer.contents ctx.Machine.out)

(* worker-specialised translation: the same address translates
   differently in main and worker caches *)
let test_per_thread_specialisation () =
  let img = loop_image ~n:10 in
  let cmp_addr =
    let open Insn in
    Layout.text_base
    + Encode.size (Mov (reg Reg.RCX, imm 0))
    + Encode.size (Mov (reg Reg.RAX, imm 0))
  in
  let b = Schedule.builder Schedule.Parallelisation in
  Schedule.add_rule b (Rule.make ~addr:cmp_addr ~data:1L Rule.LOOP_UPDATE_BOUND);
  let schedule = Schedule.build b in
  let prog = Program.load img in
  let dbm = Dbm.create ~schedule prog in
  let mcache = Dbm.new_cache Dbm.Main in
  let wcache = Dbm.new_cache (Dbm.Worker 0) in
  let ctx = Run.fresh_context prog in
  let mfrag = Dbm.translate dbm mcache ctx cmp_addr in
  let wfrag = Dbm.translate dbm wcache ctx cmp_addr in
  let first_insn (f : Dbm.fragment) = f.Dbm.f_slots.(0).Dbm.s_insn in
  (match first_insn mfrag with
   | Insn.Cmp (_, Operand.Imm _) -> ()
   | i -> Alcotest.failf "main cache should be untransformed: %s" (Insn.to_string i));
  match first_insn wfrag with
  | Insn.Cmp (_, Operand.Mem m) ->
    Alcotest.(check bool) "worker bound from TLS" true
      (m.Operand.base = Some Reg.TLS)
  | i -> Alcotest.failf "worker cache should be transformed: %s" (Insn.to_string i)

(* MEM_PREFETCH inserts a zero-length Prefetch slot ahead of the
   access, displaced by the rule's distance *)
let test_prefetch_insertion () =
  let b = Builder.create () in
  Builder.label b "_start";
  (* read from the (always-mapped) main stack, well below the red zone *)
  let base = Layout.stack_top - 4096 in
  Builder.ins b (Insn.Mov (reg Reg.RCX, imm base));
  let load =
    Insn.Fmov
      (Insn.Scalar, Operand.Freg (Reg.XMM 0),
       Operand.Fmem (Operand.mem_base ~disp:16 Reg.RCX))
  in
  Builder.ins b load;
  Builder.ins b (Insn.Mov (reg Reg.RDI, imm 0));
  Builder.ins b (Insn.Syscall Insn.sys_exit);
  let img = Builder.to_image b ~entry:"_start" in
  let load_addr =
    Layout.text_base + Encode.size (Insn.Mov (reg Reg.RCX, imm base))
  in
  let sb = Schedule.builder Schedule.Parallelisation in
  Schedule.add_rule sb
    (Rule.make ~addr:load_addr ~data:512L Rule.MEM_PREFETCH);
  let schedule = Schedule.build sb in
  let prog = Program.load img in
  let dbm = Dbm.create ~schedule prog in
  let cache = Dbm.new_cache (Dbm.Worker 0) in
  let ctx = Run.fresh_context prog in
  let frag = Dbm.translate dbm cache ctx Layout.text_base in
  let slots = Array.to_list frag.Dbm.f_slots in
  (* the prefetch hint precedes the load, targets +512 and occupies no
     application bytes *)
  (match
     List.find_opt
       (fun (s : Dbm.slot) ->
          match s.Dbm.s_insn with Insn.Prefetch _ -> true | _ -> false)
       slots
   with
   | Some s ->
     Alcotest.(check int) "zero length" 0 s.Dbm.s_len;
     Alcotest.(check int) "at the load's address" load_addr s.Dbm.s_addr;
     (match s.Dbm.s_insn with
      | Insn.Prefetch m ->
        Alcotest.(check int) "distance applied" (16 + 512) m.Operand.disp;
        Alcotest.(check bool) "same base" true (m.Operand.base = Some Reg.RCX)
      | _ -> assert false)
   | None -> Alcotest.fail "no prefetch slot inserted");
  let idx_of p =
    let rec go i = function
      | [] -> -1
      | s :: tl -> if p s then i else go (i + 1) tl
    in
    go 0 slots
  in
  let pf_idx =
    idx_of (fun s ->
        match s.Dbm.s_insn with Insn.Prefetch _ -> true | _ -> false)
  in
  let load_idx =
    idx_of (fun s ->
        match s.Dbm.s_insn with Insn.Fmov _ -> true | _ -> false)
  in
  Alcotest.(check bool) "prefetch precedes the load" true (pf_idx < load_idx);
  (* executing the fragment still works and the hint is architecturally
     inert *)
  let native = Run.run img in
  let _, _, ctx', outcome =
    let dbm' = Dbm.create ~schedule prog in
    let cache' = Dbm.new_cache (Dbm.Worker 0) in
    let c = Run.fresh_context prog in
    let o = Dbm.run dbm' cache' c in
    (dbm', cache', c, o)
  in
  Alcotest.(check bool) "halted" true (outcome = `Halted);
  Alcotest.(check string) "same output" native.Run.output
    (Buffer.contents ctx'.Machine.out)

(* the dispatch census must count every context switch into the code
   cache — including each fragment's first (translate-path) execution,
   which the counter used to miss. Fragment execution counts survive
   trace promotion (the promoted fragment inherits f_execs), so summing
   them over the final cache gives the exact number of executions. *)
let test_dispatches_count_first_executions () =
  let check_img name img =
    let dbm, cache, _, outcome = run_dbm img in
    Alcotest.(check bool) (name ^ " halted") true (outcome = `Halted);
    let execs =
      Hashtbl.fold (fun _ f acc -> acc + f.Dbm.f_execs) cache.Dbm.frags 0
    in
    Alcotest.(check int) (name ^ ": dispatches = fragment executions")
      execs dbm.Dbm.stats.Dbm.dispatches;
    Alcotest.(check bool) (name ^ ": every built fragment dispatched") true
      (dbm.Dbm.stats.Dbm.dispatches >= dbm.Dbm.stats.Dbm.fragments_built)
  in
  (* a loop program: first executions plus many cache-hit re-dispatches *)
  check_img "loop" (loop_image ~n:50);
  (* a straight-line program: every dispatch is a first (translate-path)
     execution, so the pre-fix counter would read 0 here *)
  let b = Builder.create () in
  Builder.label b "_start";
  Builder.ins b (Insn.Mov (reg Reg.RDI, imm 7));
  Builder.ins b (Insn.Syscall Insn.sys_write_int);
  Builder.ins b (Insn.Mov (reg Reg.RDI, imm 0));
  Builder.ins b (Insn.Syscall Insn.sys_exit);
  check_img "straight-line" (Builder.to_image b ~entry:"_start")

(* forcing eager promotion (threshold 1) or disabling promotion
   entirely must not change what the program computes, only how the
   code cache is organised *)
let test_promote_threshold_knob () =
  let img = loop_image ~n:80 in
  let run_with threshold =
    let prog = Program.load img in
    let dbm = Dbm.create ~promote_threshold:threshold prog in
    let cache = Dbm.new_cache Dbm.Main in
    let ctx = Run.fresh_context prog in
    let outcome = Dbm.run dbm cache ctx in
    Alcotest.(check bool) "halted" true (outcome = `Halted);
    (dbm, Buffer.contents ctx.Machine.out, Run.mem_digest ctx)
  in
  let eager, out_eager, mem_eager = run_with 1 in
  let never, out_never, mem_never = run_with max_int in
  Alcotest.(check bool) "eager promotion builds traces" true
    (eager.Dbm.stats.Dbm.traces_built >= 1);
  Alcotest.(check int) "disabled promotion builds none" 0
    never.Dbm.stats.Dbm.traces_built;
  Alcotest.(check string) "same output" out_eager out_never;
  Alcotest.(check string) "same final memory" mem_eager mem_never

let tests =
  [
    Alcotest.test_case "dbm matches native" `Quick test_dbm_matches_native;
    Alcotest.test_case "dispatches count first executions" `Quick
      test_dispatches_count_first_executions;
    Alcotest.test_case "promote threshold knob" `Quick
      test_promote_threshold_knob;
    Alcotest.test_case "translation charged" `Quick test_translation_charged;
    Alcotest.test_case "fragments cached" `Quick test_fragments_cached;
    Alcotest.test_case "trace promotion" `Quick test_trace_promotion;
    Alcotest.test_case "cache flush" `Quick test_cache_flush;
    Alcotest.test_case "out of fuel is typed" `Quick test_out_of_fuel_is_typed;
    Alcotest.test_case "privatise transform" `Quick test_privatise_transform;
    Alcotest.test_case "update bound transform" `Quick
      test_update_bound_transform;
    Alcotest.test_case "main stack transform" `Quick test_main_stack_transform;
    Alcotest.test_case "rule kind filtering" `Quick test_rule_kind_filtering;
    Alcotest.test_case "events fire in order" `Quick test_events_fire_in_order;
    Alcotest.test_case "divert action" `Quick test_divert_action;
    Alcotest.test_case "stop action" `Quick test_stop_action;
    Alcotest.test_case "per-thread specialisation" `Quick
      test_per_thread_specialisation;
    Alcotest.test_case "prefetch insertion" `Quick test_prefetch_insertion;
  ]
