(* trace_check: validate an exported Chrome trace_event JSON file.

   usage: trace_check TRACE.json [category ...]

   Exits nonzero unless the file parses as JSON, has a traceEvents
   array whose entries carry the mandatory fields, and contains at
   least one event of every category named on the command line. *)

module Json = Janus_obs.Obs.Json

let fail fmt = Fmt.kstr (fun s -> Fmt.epr "trace_check: %s@." s; exit 1) fmt

let () =
  if Array.length Sys.argv < 2 then begin
    prerr_endline "usage: trace_check TRACE.json [category ...]";
    exit 2
  end;
  let path = Sys.argv.(1) in
  let required =
    Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2))
  in
  let text =
    In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)
  in
  let root =
    match Json.parse text with
    | Ok v -> v
    | Error msg -> fail "%s does not parse: %s" path msg
  in
  let events =
    match Json.member "traceEvents" root with
    | Some (Json.Arr evs) -> evs
    | Some _ -> fail "traceEvents is not an array"
    | None -> fail "no traceEvents key"
  in
  let str_field k ev =
    match Json.member k ev with Some (Json.Str s) -> Some s | _ -> None
  in
  let seen = Hashtbl.create 16 in
  let tids = Hashtbl.create 8 in
  List.iter
    (fun ev ->
       (match str_field "ph" ev with
        | Some ("X" | "i" | "M") -> ()
        | Some ph -> fail "unexpected phase %S" ph
        | None -> fail "event without ph");
       (match Json.member "tid" ev with
        | Some (Json.Num tid) -> Hashtbl.replace tids (int_of_float tid) ()
        | _ -> fail "event without numeric tid");
       match str_field "cat" ev with
       | Some cat -> Hashtbl.replace seen cat ()
       | None -> ())  (* metadata events carry no cat *)
    events;
  List.iter
    (fun cat ->
       if not (Hashtbl.mem seen cat) then
         fail "no %S event in %s (saw: %s)" cat path
           (String.concat ", " (Hashtbl.fold (fun k () acc -> k :: acc) seen [])))
    required;
  Fmt.pr "trace_check: %s ok (%d events, %d categories, %d threads)@." path
    (List.length events) (Hashtbl.length seen) (Hashtbl.length tids)
