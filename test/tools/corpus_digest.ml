(* Print the native-execution fingerprint of every corpus kernel:
   name, cycles, icount, exit code and final-memory digest. Used to pin
   the execution core's observable behaviour: test_fuzz replays each
   corpus kernel and asserts the fingerprint matches the committed
   test/corpus/digests.expected, so any interpreter change that
   perturbs cycles, output or memory is caught byte-for-byte. *)

module Kernel = Janus_fuzz_lib.Kernel
module Emit = Janus_fuzz_lib.Emit
module Run = Janus_vm.Run

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/corpus" in
  let files =
    List.sort String.compare
      (List.filter
         (fun f -> Filename.check_suffix f ".jfk")
         (Array.to_list (Sys.readdir dir)))
  in
  List.iter
    (fun f ->
      let text =
        In_channel.with_open_text (Filename.concat dir f) In_channel.input_all
      in
      let k = Kernel.of_string text in
      let img = Emit.image k in
      let r = Run.run img in
      Printf.printf "%s %d %d %d %s\n"
        (Filename.chop_extension f)
        r.Run.cycles r.Run.icount r.Run.exit_code r.Run.mem_digest)
    files
