#!/usr/bin/env bash
# Assertions over the CLI failure-path artefacts: every bad input or
# truncated run must leave a one-line diagnostic and no backtrace.
set -eu

fail() { echo "tools failure test: $1" >&2; exit 1; }

grep -q "janus_run: native run out of fuel (100); raise --fuel" fuel_fail.out ||
  fail "fuel exhaustion diagnostic missing"

grep -q -- "--threads must be positive, got 0" badargs.out ||
  fail "bad --threads diagnostic missing"

grep -q 'janus_eval: unknown experiment "fig99"' badexp.out ||
  fail "unknown experiment diagnostic missing"

# a valued flag with its value missing (here: as the final argument)
# is a usage error with a diagnostic naming the flag, never a default
grep -q "option '--scale' needs an argument" noval_run.out ||
  fail "janus_run missing --scale value not diagnosed"
grep -q "option '--scale' needs an argument" noval_prof.out ||
  fail "janus_prof missing --scale value not diagnosed"
grep -q "option '--profile' needs an argument" noval_analyze.out ||
  fail "janus_analyze missing --profile value not diagnosed"
grep -q "option '-o' needs an argument" noval_jcc.out ||
  fail "jcc missing -o value not diagnosed"
grep -q "option '--store-dir' needs an argument" noval_eval.out ||
  fail "janus_eval missing --store-dir value not diagnosed"
grep -q -- "--socket expects a value" noval_served.out ||
  fail "janus_served missing --socket value not diagnosed"
grep -q -- "--bench expects a value" noval_pgo.out ||
  fail "janus_pgo missing --bench value not diagnosed"

for f in fuel_fail.out badargs.out badexp.out noval_run.out noval_prof.out \
         noval_analyze.out noval_jcc.out noval_eval.out noval_served.out \
         noval_pgo.out; do
  grep -qi "Raised at\|Backtrace\|Fatal error" "$f" &&
    fail "$f contains a backtrace" || true
done

echo "tools failure test: ok"
