#!/usr/bin/env bash
# Assertions over the CLI failure-path artefacts: every bad input or
# truncated run must leave a one-line diagnostic and no backtrace.
set -eu

fail() { echo "tools failure test: $1" >&2; exit 1; }

grep -q "janus_run: native run out of fuel (100); raise --fuel" fuel_fail.out ||
  fail "fuel exhaustion diagnostic missing"

grep -q -- "--threads must be positive, got 0" badargs.out ||
  fail "bad --threads diagnostic missing"

grep -q 'janus_eval: unknown experiment "fig99"' badexp.out ||
  fail "unknown experiment diagnostic missing"

for f in fuel_fail.out badargs.out badexp.out; do
  grep -qi "Raised at\|Backtrace\|Fatal error" "$f" &&
    fail "$f contains a backtrace" || true
done

echo "tools failure test: ok"
