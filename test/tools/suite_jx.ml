(* suite_jx: compile one suite benchmark to a JX binary on disk, so
   shell-level tests and CI can feed real benchmarks to janus_run. *)

let () =
  match Sys.argv with
  | [| _; name; out |] ->
    let image = Janus_suite.Suite.compile (Janus_suite.Suite.find_exn name) in
    Out_channel.with_open_bin out (fun oc ->
        Out_channel.output_bytes oc (Janus_vx.Image.to_bytes image))
  | _ ->
    prerr_endline "usage: suite_jx BENCHMARK OUT.jx";
    exit 2
