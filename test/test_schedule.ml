(* Tests for the rewrite-schedule interface: rule records, runtime
   expressions, descriptors and their binary round-trips. *)

open Janus_vx
open Janus_schedule

(* ------------------------------------------------------------------ *)
(* Rexpr                                                               *)
(* ------------------------------------------------------------------ *)

let gen_gp =
  QCheck2.Gen.map Reg.gp_of_index (QCheck2.Gen.int_range 0 (Reg.gp_count - 1))

let gen_rexpr =
  let open QCheck2.Gen in
  sized (fun n ->
      fix
        (fun self n ->
           if n <= 0 then
             oneof
               [
                 map (fun v -> Rexpr.Const (Int64.of_int v)) (int_range (-1000) 1000);
                 map (fun r -> Rexpr.Reg r) gen_gp;
               ]
           else
             oneof
               [
                 map (fun v -> Rexpr.Const (Int64.of_int v)) (int_range (-1000) 1000);
                 map (fun r -> Rexpr.Reg r) gen_gp;
                 map (fun e -> Rexpr.Load e) (self (n / 2));
                 map2 (fun a b -> Rexpr.Add (a, b)) (self (n / 2)) (self (n / 2));
                 map2 (fun a b -> Rexpr.Sub (a, b)) (self (n / 2)) (self (n / 2));
                 map2 (fun a b -> Rexpr.Mul (a, b)) (self (n / 2)) (self (n / 2));
                 map2 (fun a b -> Rexpr.Max (a, b)) (self (n / 2)) (self (n / 2));
                 map2 (fun a b -> Rexpr.Min (a, b)) (self (n / 2)) (self (n / 2));
               ])
        (min n 6))

let prop_rexpr_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"rexpr serialise roundtrip"
    ~print:Rexpr.to_string gen_rexpr
    (fun e ->
       let buf = Buffer.create 64 in
       Rexpr.write buf e;
       let bytes = Buffer.to_bytes buf in
       let pos = ref 0 in
       let e' = Rexpr.read bytes pos in
       e = e' && !pos = Bytes.length bytes)

let test_rexpr_eval () =
  let env =
    {
      Rexpr.get_reg = (fun r -> Int64.of_int (10 * Reg.gp_index r));
      load = (fun a -> Int64.of_int (a + 1));
    }
  in
  let e =
    (* (rax + 5) * 2 = (0 + 5) * 2 = 10 *)
    Rexpr.Mul (Rexpr.Add (Rexpr.Reg Reg.RAX, Rexpr.Const 5L), Rexpr.Const 2L)
  in
  Alcotest.(check int64) "arith" 10L (Rexpr.eval env e);
  Alcotest.(check int64) "load" 43L (Rexpr.eval env (Rexpr.Load (Rexpr.Const 42L)));
  Alcotest.(check int64) "max" 7L
    (Rexpr.eval env (Rexpr.Max (Rexpr.Const 7L, Rexpr.Const (-3L))));
  Alcotest.(check int64) "min" (-3L)
    (Rexpr.eval env (Rexpr.Min (Rexpr.Const 7L, Rexpr.Const (-3L))))

let test_rexpr_has_load () =
  Alcotest.(check bool) "no load" false
    (Rexpr.has_load (Rexpr.Add (Rexpr.Reg Reg.RAX, Rexpr.Const 1L)));
  Alcotest.(check bool) "load" true
    (Rexpr.has_load (Rexpr.Add (Rexpr.Load (Rexpr.Reg Reg.RSP), Rexpr.Const 1L)))

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

let test_rule_id_roundtrip () =
  List.iter
    (fun id ->
       Alcotest.(check bool)
         (Rule.id_name id) true
         (Rule.id_of_int (Rule.id_to_int id) = id))
    Rule.all_ids;
  (* the 18 rules of Fig. 3 plus the MEM_PREFETCH and LOOP_FISSION
     extensions *)
  Alcotest.(check int) "rule count" 20 (List.length Rule.all_ids);
  Alcotest.(check int) "six profiling rules" 6
    (List.length (List.filter Rule.is_profiling Rule.all_ids))

let test_rule_record_roundtrip () =
  let r =
    Rule.make ~addr:0x400123 ~data:(-77L) ~aux:123456789L Rule.MEM_PRIVATISE
  in
  let buf = Buffer.create 32 in
  Rule.write buf r;
  Alcotest.(check int) "record size" Rule.record_size (Buffer.length buf);
  let r' = Rule.read (Buffer.to_bytes buf) 0 in
  Alcotest.(check bool) "roundtrip" true (r = r')

let gen_rule =
  let open QCheck2.Gen in
  let* addr = int_range 0 0xffffff in
  let* id = map Rule.id_of_int (int_range 0 17) in
  let* data = ui64 in
  let* aux = ui64 in
  return (Rule.make ~addr ~data ~aux id)

let prop_rule_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"rule record roundtrip" gen_rule
    (fun r ->
       let buf = Buffer.create 32 in
       Rule.write buf r;
       Rule.read (Buffer.to_bytes buf) 0 = r)

(* ------------------------------------------------------------------ *)
(* Descriptors and whole schedules                                     *)
(* ------------------------------------------------------------------ *)

let sample_loop_desc =
  {
    Desc.loop_id = 7;
    header_addr = 0x400100;
    preheader_addr = 0x4000f0;
    exit_addrs = [ 0x400200; 0x400210 ];
    latch_addr = 0x4001f0;
    iv = Desc.Lreg Reg.RBX;
    iv_step = 2L;
    iv_cond = Cond.Le;
    iv_init = Rexpr.Reg Reg.RBX;
    iv_bound = Rexpr.Load (Rexpr.Add (Rexpr.Reg Reg.RSP, Rexpr.Const 24L));
    iv_bound_adjust = 1L;
    policy = Desc.Round_robin 16;
    reductions = [ (Desc.Lfreg (Reg.XMM 3), Desc.Radd_f64);
                   (Desc.Lstack 16, Desc.Radd_int) ];
    privatised = [ (Rexpr.Const 0x600010L, 1); (Rexpr.Reg Reg.RSP, 2) ];
    live_out_gps = [ Reg.RAX; Reg.RCX ];
    live_out_fps = [ Reg.XMM 0 ];
    frame_copy_bytes = 256;
  }

let test_loop_desc_roundtrip () =
  let buf = Buffer.create 128 in
  Desc.write_loop_desc buf sample_loop_desc;
  let d = Desc.read_loop_desc (Buffer.to_bytes buf) (ref 0) in
  Alcotest.(check bool) "loop desc roundtrip" true (d = sample_loop_desc)

let sample_check_desc =
  {
    Desc.check_loop_id = 7;
    ranges =
      [
        { Desc.base = Rexpr.Reg Reg.RDI;
          extent = Rexpr.Mul (Rexpr.Const 8L, Rexpr.Reg Reg.RDX);
          width = 8; written = true };
        { Desc.base = Rexpr.Reg Reg.RSI;
          extent = Rexpr.Const 1024L; width = 16; written = false };
        { Desc.base = Rexpr.Const 0x700000L;
          extent = Rexpr.Const 800L; width = 8; written = true };
      ];
  }

let test_check_desc_roundtrip () =
  let buf = Buffer.create 128 in
  Desc.write_check_desc buf sample_check_desc;
  let d = Desc.read_check_desc (Buffer.to_bytes buf) (ref 0) in
  Alcotest.(check bool) "check desc roundtrip" true (d = sample_check_desc)

let test_check_pairs () =
  (* 2 written ranges among 3: each write vs every other, pairs counted
     once: (w1,r), (w2,r), (w1,w2) = 2*2 - 1 = 3 *)
  Alcotest.(check int) "pairs" 3 (Desc.check_pairs sample_check_desc);
  let one_range =
    { Desc.check_loop_id = 0;
      ranges = [ { Desc.base = Rexpr.Const 0L; extent = Rexpr.Const 8L;
                   width = 8; written = true } ] }
  in
  Alcotest.(check int) "single range has no pairs" 0
    (Desc.check_pairs one_range)

let test_schedule_roundtrip_with_desc () =
  let b = Schedule.builder Schedule.Parallelisation in
  let off = Schedule.add_loop_desc b sample_loop_desc in
  let coff = Schedule.add_check_desc b sample_check_desc in
  Schedule.add_rule b
    (Rule.make ~addr:0x400100 ~data:(Int64.of_int off) Rule.LOOP_INIT);
  Schedule.add_rule b
    (Rule.make ~addr:0x400100 ~data:(Int64.of_int coff) Rule.MEM_BOUNDS_CHECK);
  Schedule.add_rule b
    (Rule.make ~addr:0x400050 ~data:3L Rule.THREAD_SCHEDULE);
  let s = Schedule.build b in
  let s' = Schedule.of_bytes (Schedule.to_bytes s) in
  Alcotest.(check int) "rules" 3 (List.length s'.Schedule.rules);
  Alcotest.(check bool) "sorted by address" true
    (match s'.Schedule.rules with
     | a :: b :: _ -> a.Rule.addr <= b.Rule.addr
     | _ -> false);
  let d = Schedule.loop_desc s' (Int64.of_int off) in
  Alcotest.(check bool) "descriptor recovered" true (d = sample_loop_desc);
  let c = Schedule.check_desc s' (Int64.of_int coff) in
  Alcotest.(check bool) "check recovered" true (c = sample_check_desc);
  Alcotest.(check int) "size accounting" (Schedule.size s)
    (Bytes.length (Schedule.to_bytes s))

let test_same_address_rule_order () =
  (* rules at one address must be applied in schedule (insertion) order
     (§II-A2) *)
  let b = Schedule.builder Schedule.Parallelisation in
  Schedule.add_rule b (Rule.make ~addr:0x400100 ~data:1L Rule.MEM_BOUNDS_CHECK);
  Schedule.add_rule b (Rule.make ~addr:0x400100 ~data:2L Rule.LOOP_INIT);
  Schedule.add_rule b (Rule.make ~addr:0x400100 ~data:3L Rule.MEM_SPILL_REG);
  let s = Schedule.build b in
  let idx = Schedule.index s in
  match Hashtbl.find idx 0x400100 with
  | [ a; b'; c ] ->
    Alcotest.(check bool) "order preserved" true
      (a.Rule.id = Rule.MEM_BOUNDS_CHECK
       && b'.Rule.id = Rule.LOOP_INIT
       && c.Rule.id = Rule.MEM_SPILL_REG)
  | l -> Alcotest.failf "expected 3 rules, got %d" (List.length l)

let gen_schedule =
  let open QCheck2.Gen in
  let* n = int_range 0 40 in
  let* rules = list_size (return n) gen_rule in
  let* channel = oneofl [ Schedule.Profiling; Schedule.Parallelisation ] in
  return
    (let b = Schedule.builder channel in
     List.iter (Schedule.add_rule b) rules;
     Schedule.build b)

let prop_schedule_roundtrip =
  QCheck2.Test.make ~count:100 ~name:"schedule serialise roundtrip"
    gen_schedule
    (fun s ->
       let s' = Schedule.of_bytes (Schedule.to_bytes s) in
       s'.Schedule.rules = s.Schedule.rules
       && s'.Schedule.channel = s.Schedule.channel)

(* random descriptors: every location/redop/policy constructor, Rexprs
   from the generator above *)
let gen_fp =
  QCheck2.Gen.map (fun i -> Reg.XMM i) (QCheck2.Gen.int_range 0 15)

let gen_location =
  let open QCheck2.Gen in
  oneof
    [
      map (fun r -> Desc.Lreg r) gen_gp;
      map (fun r -> Desc.Lfreg r) gen_fp;
      map (fun off -> Desc.Lstack off) (int_range (-512) 512);
      map (fun a -> Desc.Labs a) (int_range 0 0xffffff);
    ]

let gen_redop =
  QCheck2.Gen.oneofl [ Desc.Radd_int; Desc.Radd_f64; Desc.Rmul_f64 ]

let gen_policy =
  let open QCheck2.Gen in
  oneof
    [
      return Desc.Chunked;
      map (fun b -> Desc.Round_robin b) (int_range 1 64);
      map (fun pct -> Desc.Doacross pct) (int_range 0 100);
    ]

let gen_loop_desc =
  let open QCheck2.Gen in
  let* loop_id = int_range 0 200 in
  let* header_addr = int_range 0 0xffffff in
  let* preheader_addr = int_range 0 0xffffff in
  let* exit_addrs = list_size (int_range 0 4) (int_range 0 0xffffff) in
  let* latch_addr = int_range 0 0xffffff in
  let* iv = gen_location in
  let* iv_step = map Int64.of_int (int_range (-16) 16) in
  let* iv_cond = oneofl Cond.all in
  let* iv_init = gen_rexpr in
  let* iv_bound = gen_rexpr in
  let* iv_bound_adjust = map Int64.of_int (int_range (-8) 8) in
  let* policy = gen_policy in
  let* reductions = list_size (int_range 0 3) (pair gen_location gen_redop) in
  let* privatised =
    list_size (int_range 0 3) (pair gen_rexpr (int_range 1 32))
  in
  let* live_out_gps = list_size (int_range 0 4) gen_gp in
  let* live_out_fps = list_size (int_range 0 4) gen_fp in
  let* frame_copy_bytes = int_range 0 4096 in
  return
    {
      Desc.loop_id; header_addr; preheader_addr; exit_addrs; latch_addr;
      iv; iv_step; iv_cond; iv_init; iv_bound; iv_bound_adjust; policy;
      reductions; privatised; live_out_gps; live_out_fps; frame_copy_bytes;
    }

let gen_check_desc =
  let open QCheck2.Gen in
  let* check_loop_id = int_range 0 200 in
  let gen_range =
    let* base = gen_rexpr in
    let* extent = gen_rexpr in
    let* width = oneofl [ 1; 2; 4; 8; 16 ] in
    let* written = bool in
    return { Desc.base; extent; width; written }
  in
  let* ranges = list_size (int_range 0 5) gen_range in
  return { Desc.check_loop_id; ranges }

(* a schedule whose data section carries random descriptors, with rules
   pointing at them — to_bytes/of_bytes/to_bytes must be bit-identical
   (descriptor encoding is canonical, no padding ambiguity) *)
let gen_schedule_with_descs =
  let open QCheck2.Gen in
  let* channel = oneofl [ Schedule.Profiling; Schedule.Parallelisation ] in
  let* loop_descs = list_size (int_range 0 4) gen_loop_desc in
  let* check_descs = list_size (int_range 0 4) gen_check_desc in
  let* extra_rules = list_size (int_range 0 10) gen_rule in
  return
    (let b = Schedule.builder channel in
     List.iter
       (fun d ->
          let off = Schedule.add_loop_desc b d in
          Schedule.add_rule b
            (Rule.make ~addr:d.Desc.header_addr
               ~data:(Int64.of_int off)
               ~aux:(Int64.of_int d.Desc.loop_id)
               Rule.LOOP_INIT))
       loop_descs;
     List.iter
       (fun d ->
          let off = Schedule.add_check_desc b d in
          Schedule.add_rule b
            (Rule.make ~addr:0x400000
               ~data:(Int64.of_int off)
               ~aux:(Int64.of_int d.Desc.check_loop_id)
               Rule.MEM_BOUNDS_CHECK))
       check_descs;
     List.iter (Schedule.add_rule b) extra_rules;
     Schedule.build b)

let prop_schedule_bytes_fixpoint =
  QCheck2.Test.make ~count:200
    ~name:"schedule with descriptors: encode/decode/encode bit-identical"
    gen_schedule_with_descs
    (fun s ->
       let bytes = Schedule.to_bytes s in
       let s' = Schedule.of_bytes bytes in
       Bytes.equal bytes (Schedule.to_bytes s')
       && s'.Schedule.rules = s.Schedule.rules
       && Bytes.equal s'.Schedule.data s.Schedule.data)

(* corrupt input must fail loudly, not silently misparse *)
let test_corrupt_schedule_rejected () =
  Alcotest.(check bool) "bad magic" true
    (try
       ignore (Schedule.of_bytes (Bytes.of_string "NOPE\000\000\000\000"));
       false
     with _ -> true);
  (* truncated rule area *)
  let b = Schedule.builder Schedule.Parallelisation in
  Schedule.add_rule b (Rule.make ~addr:0x400100 Rule.LOOP_INIT);
  let bytes = Schedule.to_bytes (Schedule.build b) in
  let truncated = Bytes.sub bytes 0 (Bytes.length bytes - 5) in
  Alcotest.(check bool) "truncated" true
    (try
       ignore (Schedule.of_bytes truncated);
       false
     with _ -> true)

let test_corrupt_image_rejected () =
  Alcotest.(check bool) "bad image magic" true
    (try
       ignore (Janus_vx.Image.of_bytes (Bytes.of_string "ELF!\000\000\000\000\000\000\000\000\000\000\000\000\000\000\000\000"));
       false
     with _ -> true)

let test_rexpr_deep_nesting () =
  (* a deep expression survives serialisation and evaluation *)
  let rec build n =
    if n = 0 then Rexpr.Const 1L else Rexpr.Add (build (n - 1), Rexpr.Const 1L)
  in
  let e = build 200 in
  let buf = Buffer.create 1024 in
  Rexpr.write buf e;
  let e' = Rexpr.read (Buffer.to_bytes buf) (ref 0) in
  let env = { Rexpr.get_reg = (fun _ -> 0L); load = (fun _ -> 0L) } in
  Alcotest.(check int64) "deep eval" 201L (Rexpr.eval env e');
  Alcotest.(check int) "size" 401 (Rexpr.size e')

let tests =
  [
    Alcotest.test_case "corrupt schedule rejected" `Quick
      test_corrupt_schedule_rejected;
    Alcotest.test_case "corrupt image rejected" `Quick
      test_corrupt_image_rejected;
    Alcotest.test_case "rexpr deep nesting" `Quick test_rexpr_deep_nesting;
    Alcotest.test_case "rexpr eval" `Quick test_rexpr_eval;
    Alcotest.test_case "rexpr has_load" `Quick test_rexpr_has_load;
    Alcotest.test_case "rule id roundtrip" `Quick test_rule_id_roundtrip;
    Alcotest.test_case "rule record roundtrip" `Quick test_rule_record_roundtrip;
    Alcotest.test_case "loop desc roundtrip" `Quick test_loop_desc_roundtrip;
    Alcotest.test_case "check desc roundtrip" `Quick test_check_desc_roundtrip;
    Alcotest.test_case "check pairs" `Quick test_check_pairs;
    Alcotest.test_case "schedule roundtrip with descriptors" `Quick
      test_schedule_roundtrip_with_desc;
    Alcotest.test_case "same-address rule order" `Quick
      test_same_address_rule_order;
    QCheck_alcotest.to_alcotest prop_rexpr_roundtrip;
    QCheck_alcotest.to_alcotest prop_rule_roundtrip;
    QCheck_alcotest.to_alcotest prop_schedule_roundtrip;
    QCheck_alcotest.to_alcotest prop_schedule_bytes_fixpoint;
  ]
