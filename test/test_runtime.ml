(* Tests for the parallel runtime: iteration-space arithmetic, chunk
   partitioning, reductions, bound slots, runtime checks and the STM. *)

open Janus_vx
open Janus_vm
module Runtime = Janus_runtime.Runtime
module Desc = Janus_schedule.Desc
module Rexpr = Janus_schedule.Rexpr
module Rule = Janus_schedule.Rule
module Dbm = Janus_dbm.Dbm

(* ------------------------------------------------------------------ *)
(* trip_count                                                          *)
(* ------------------------------------------------------------------ *)

(* reference implementation by brute force *)
let trips_ref ~init ~bound ~step ~cond =
  let continue_ iv =
    let open Int64 in
    match cond with
    | Cond.Lt -> compare iv bound < 0
    | Cond.Le -> compare iv bound <= 0
    | Cond.Gt -> compare iv bound > 0
    | Cond.Ge -> compare iv bound >= 0
    | Cond.Ne -> not (equal iv bound)
    | Cond.Ult -> unsigned_compare iv bound < 0
    | Cond.Ule -> unsigned_compare iv bound <= 0
    | Cond.Ugt -> unsigned_compare iv bound > 0
    | Cond.Uge -> unsigned_compare iv bound >= 0
    | Cond.Eq | Cond.S | Cond.Ns -> false
  in
  let rec go iv n =
    if n > 10000 then n else if continue_ iv then go (Int64.add iv step) (n + 1)
    else n
  in
  go init 0

let gen_trip_case =
  let open QCheck2.Gen in
  let* init = map Int64.of_int (int_range (-50) 50) in
  let* bound = map Int64.of_int (int_range (-50) 200) in
  let* step_mag = int_range 1 7 in
  let* up = bool in
  let step = Int64.of_int (if up then step_mag else -step_mag) in
  let* cond =
    oneofl
      (if up then [ Cond.Lt; Cond.Le ] else [ Cond.Gt; Cond.Ge ])
  in
  return (init, bound, step, cond)

let prop_trip_count =
  QCheck2.Test.make ~count:500 ~name:"trip_count matches brute force"
    ~print:(fun (i, b, s, c) ->
        Printf.sprintf "init=%Ld bound=%Ld step=%Ld cond=%s" i b s (Cond.name c))
    gen_trip_case
    (fun (init, bound, step, cond) ->
       Runtime.trip_count ~init ~bound ~step ~cond
       = trips_ref ~init ~bound ~step ~cond)

let test_trip_count_ne () =
  Alcotest.(check int) "ne divisible" 10
    (Runtime.trip_count ~init:0L ~bound:10L ~step:1L ~cond:Cond.Ne);
  Alcotest.(check int) "ne with step" 5
    (Runtime.trip_count ~init:0L ~bound:10L ~step:2L ~cond:Cond.Ne)

let test_trip_count_empty () =
  Alcotest.(check int) "empty lt" 0
    (Runtime.trip_count ~init:10L ~bound:10L ~step:1L ~cond:Cond.Lt);
  Alcotest.(check int) "empty gt" 0
    (Runtime.trip_count ~init:5L ~bound:10L ~step:(-1L) ~cond:Cond.Gt);
  Alcotest.(check int) "zero step" 0
    (Runtime.trip_count ~init:0L ~bound:10L ~step:0L ~cond:Cond.Lt)

(* ------------------------------------------------------------------ *)
(* chunk partitioning                                                  *)
(* ------------------------------------------------------------------ *)

(* every iteration value appears exactly once across all chunks *)
let chunk_values chunks step =
  Array.to_list chunks
  |> List.concat_map (fun cs ->
      List.concat_map
        (fun (c : Runtime.chunk) ->
           let rec go iv acc =
             if
               (Int64.compare step 0L > 0 && Int64.compare iv c.Runtime.c_end >= 0)
               || (Int64.compare step 0L < 0 && Int64.compare iv c.Runtime.c_end <= 0)
             then List.rev acc
             else go (Int64.add iv step) (iv :: acc)
           in
           go c.Runtime.c_start [])
        cs)

let expected_values ~init ~step ~trips =
  List.init trips (fun k -> Int64.add init (Int64.mul (Int64.of_int k) step))

let gen_partition_case =
  let open QCheck2.Gen in
  let* init = map Int64.of_int (int_range (-20) 20) in
  let* trips = int_range 1 100 in
  let* step_mag = int_range 1 5 in
  let* up = bool in
  let* threads = int_range 1 8 in
  let* block = int_range 1 9 in
  return (init, trips, Int64.of_int (if up then step_mag else -step_mag),
          threads, block)

let prop_chunked_partition_complete =
  QCheck2.Test.make ~count:300 ~name:"chunked partition covers iteration space"
    gen_partition_case
    (fun (init, trips, step, threads, _) ->
       let chunks = Runtime.chunked_chunks ~init ~step ~trips ~threads in
       List.sort compare (chunk_values chunks step)
       = List.sort compare (expected_values ~init ~step ~trips))

let prop_rr_partition_complete =
  QCheck2.Test.make ~count:300 ~name:"round-robin partition covers iteration space"
    gen_partition_case
    (fun (init, trips, step, threads, block) ->
       let chunks = Runtime.rr_chunks ~init ~step ~trips ~threads ~block in
       List.sort compare (chunk_values chunks step)
       = List.sort compare (expected_values ~init ~step ~trips))

let prop_chunked_is_contiguous_ordered =
  QCheck2.Test.make ~count:200 ~name:"chunked chunks are in thread order"
    gen_partition_case
    (fun (init, trips, step, threads, _) ->
       let chunks = Runtime.chunked_chunks ~init ~step ~trips ~threads in
       (* thread w's values all precede thread w+1's (in iteration order) *)
       let rec ordered prev = function
         | [] -> true
         | vs :: rest ->
           (match vs, prev with
            | [], _ -> ordered prev rest
            | _, Some p ->
              let mn = List.fold_left min (List.hd vs) vs in
              Int64.compare
                (Int64.mul (Int64.sub mn p) (if Int64.compare step 0L > 0 then 1L else -1L))
                0L > 0
              && ordered (Some (List.fold_left max (List.hd vs) vs)) rest
            | _, None -> ordered (Some (List.fold_left max (List.hd vs) vs)) rest)
       in
       let per_thread =
         Array.to_list chunks
         |> List.map (fun cs -> chunk_values [| cs |] step)
       in
       if Int64.compare step 0L > 0 then ordered None per_thread
       else true (* descending loops mirror the argument *))

(* ------------------------------------------------------------------ *)
(* bound slots                                                         *)
(* ------------------------------------------------------------------ *)

let test_bound_slot_values () =
  (* Lt: the rewritten compare continues while iv < slot: slot = end *)
  Alcotest.(check int64) "lt" 100L
    (Runtime.bound_slot_value ~end_iv:100L ~step:1L ~cond:Cond.Lt ~adjust:0L);
  (* Le: continues while iv <= slot: slot = last = end - step *)
  Alcotest.(check int64) "le" 99L
    (Runtime.bound_slot_value ~end_iv:100L ~step:1L ~cond:Cond.Le ~adjust:0L);
  (* unrolled compare tests (iv + adjust) *)
  Alcotest.(check int64) "lt adjusted" 101L
    (Runtime.bound_slot_value ~end_iv:100L ~step:2L ~cond:Cond.Lt ~adjust:1L);
  (* descending *)
  Alcotest.(check int64) "ge" 12L
    (Runtime.bound_slot_value ~end_iv:10L ~step:(-2L) ~cond:Cond.Ge ~adjust:0L)

(* ------------------------------------------------------------------ *)
(* reductions                                                          *)
(* ------------------------------------------------------------------ *)

let test_redop_identities () =
  Alcotest.(check int64) "int add" 5L
    (Runtime.redop_combine Desc.Radd_int (Runtime.redop_identity Desc.Radd_int) 5L);
  let f v = Int64.bits_of_float v in
  Alcotest.(check int64) "f64 add" (f 2.5)
    (Runtime.redop_combine Desc.Radd_f64
       (Runtime.redop_identity Desc.Radd_f64) (f 2.5));
  Alcotest.(check int64) "f64 mul" (f 2.5)
    (Runtime.redop_combine Desc.Rmul_f64
       (Runtime.redop_identity Desc.Rmul_f64) (f 2.5))

let prop_reduction_combine_associative =
  QCheck2.Test.make ~count:200 ~name:"int reduction combine is associative"
    QCheck2.Gen.(tup3 ui64 ui64 ui64)
    (fun (a, b, c) ->
       Runtime.redop_combine Desc.Radd_int a
         (Runtime.redop_combine Desc.Radd_int b c)
       = Runtime.redop_combine Desc.Radd_int
           (Runtime.redop_combine Desc.Radd_int a b)
           c)

(* ------------------------------------------------------------------ *)
(* runtime checks                                                      *)
(* ------------------------------------------------------------------ *)

let make_rt () =
  let b = Builder.create () in
  Builder.label b "_start";
  Builder.ins b Insn.Hlt;
  let img = Builder.to_image b ~entry:"_start" in
  let prog = Program.load img in
  let dbm = Dbm.create prog in
  let rt = Runtime.create dbm in
  let ctx = Run.fresh_context prog in
  (rt, ctx)

let range base extent width written =
  { Desc.base = Rexpr.Const (Int64.of_int base);
    extent = Rexpr.Const (Int64.of_int extent); width; written }

let test_check_disjoint_passes () =
  let rt, ctx = make_rt () in
  let cd =
    { Desc.check_loop_id = 1;
      ranges = [ range 0x800000 800 8 true; range 0x801000 800 8 false ] }
  in
  Alcotest.(check bool) "disjoint passes" true (Runtime.eval_check rt ctx cd)

let test_check_overlap_fails () =
  let rt, ctx = make_rt () in
  let cd =
    { Desc.check_loop_id = 1;
      ranges = [ range 0x800000 800 8 true; range 0x800100 800 8 false ] }
  in
  Alcotest.(check bool) "overlap fails" false (Runtime.eval_check rt ctx cd)

let test_check_adjacent_passes () =
  (* ranges touching exactly at the boundary are disjoint *)
  let rt, ctx = make_rt () in
  let cd =
    { Desc.check_loop_id = 1;
      ranges = [ range 0x800000 792 8 true; range 0x800320 792 8 false ] }
  in
  (* [0x800000, 0x800000+792+8) = [.., 0x800320) then next starts there *)
  Alcotest.(check bool) "adjacent passes" true (Runtime.eval_check rt ctx cd)

let test_check_identical_inplace_passes () =
  (* identical ranges mean the loop reads and writes the same element
     each iteration: an in-place map, safely parallel *)
  let rt, ctx = make_rt () in
  let cd =
    { Desc.check_loop_id = 1;
      ranges = [ range 0x800000 800 8 true; range 0x800000 800 8 false ] }
  in
  Alcotest.(check bool) "in-place map passes" true (Runtime.eval_check rt ctx cd)

let test_check_read_read_ignored () =
  (* overlapping reads without a write are not checked *)
  let rt, ctx = make_rt () in
  let cd =
    { Desc.check_loop_id = 1;
      ranges = [ range 0x800000 800 8 false; range 0x800100 800 8 false ] }
  in
  Alcotest.(check bool) "reads may overlap" true (Runtime.eval_check rt ctx cd)

let test_check_negative_extent () =
  (* descending loops produce negative spans *)
  let rt, ctx = make_rt () in
  let cd =
    { Desc.check_loop_id = 1;
      ranges = [ range 0x800800 (-800) 8 true; range 0x800900 100 8 false ] }
  in
  (* write covers [0x800500, 0x800808); read [0x800900, ..) : disjoint *)
  Alcotest.(check bool) "negative extent handled" true
    (Runtime.eval_check rt ctx cd)

(* ------------------------------------------------------------------ *)
(* STM                                                                 *)
(* ------------------------------------------------------------------ *)

let test_stm_commit () =
  let rt, ctx = make_rt () in
  ignore (Machine.start_txn ctx);
  Semantics.raw_write ctx 0x800000 42L;
  ignore (Semantics.raw_read ctx 0x800008);
  (match Runtime.tx_finish rt 0 ctx with
   | Dbm.Continue -> ()
   | _ -> Alcotest.fail "commit should continue");
  Alcotest.(check int64) "committed" 42L
    (Memory.read_i64 ctx.Machine.mem 0x800000);
  Alcotest.(check int) "commit counted" 1
    rt.Runtime.dbm.Dbm.stats.Dbm.stm_commits

let test_stm_abort_on_conflict () =
  let rt, ctx = make_rt () in
  ctx.Machine.rip <- 0x400123;  (* pretend we are at the TX_START call *)
  ignore (Machine.start_txn ctx);
  (* speculative read observes 0 *)
  ignore (Semantics.raw_read ctx 0x800000);
  Semantics.raw_write ctx 0x800100 7L;
  (* another thread commits a conflicting write underneath *)
  Memory.write_i64 ctx.Machine.mem 0x800000 999L;
  (match Runtime.tx_finish rt 3 ctx with
   | Dbm.Divert a -> Alcotest.(check int) "resumes at checkpoint" 0x400123 a
   | _ -> Alcotest.fail "conflict should divert");
  (* the buffered store was discarded *)
  Alcotest.(check int64) "store discarded" 0L
    (Memory.read_i64 ctx.Machine.mem 0x800100);
  Alcotest.(check int) "abort counted" 1 rt.Runtime.dbm.Dbm.stats.Dbm.stm_aborts;
  (* re-execution is non-speculative: tx_start skips once *)
  (match Runtime.tx_start rt 3 ctx 0x400123 with
   | Dbm.Continue -> ()
   | _ -> Alcotest.fail "should continue");
  Alcotest.(check bool) "no txn installed on retry" true
    (ctx.Machine.txn = None)

(* regression: an abort's (worker, addr) skip entry must not survive
   into the next loop invocation — it would silently suppress
   speculation there.  skip_tx is cleared at every LOOP_INIT. *)
let test_skip_tx_cleared_between_invocations () =
  let rt, ctx = make_rt () in
  Runtime.install rt;
  (* first invocation: a conflict aborts the transaction at 0x400123 *)
  ctx.Machine.rip <- 0x400123;
  ignore (Machine.start_txn ctx);
  ignore (Semantics.raw_read ctx 0x800000);
  Memory.write_i64 ctx.Machine.mem 0x800000 999L;
  (match Runtime.tx_finish rt 2 ctx with
   | Dbm.Divert _ -> ()
   | _ -> Alcotest.fail "conflict should divert");
  Alcotest.(check int) "abort leaves a skip entry" 1
    (Hashtbl.length rt.Runtime.skip_tx);
  (* a second invocation begins: LOOP_INIT drops the stale entry *)
  (match
     rt.Runtime.dbm.Dbm.on_event rt.Runtime.dbm Dbm.Main ctx
       (Rule.make ~addr:0x400100 Rule.LOOP_INIT)
   with
   | Dbm.Continue -> ()
   | _ -> Alcotest.fail "loop init without a schedule should continue");
  Alcotest.(check int) "cleared at LOOP_INIT" 0
    (Hashtbl.length rt.Runtime.skip_tx);
  (* so the same call site speculates again instead of running bare *)
  (match Runtime.tx_start rt 2 ctx 0x400123 with
   | Dbm.Continue -> ()
   | _ -> Alcotest.fail "tx_start should continue");
  Alcotest.(check bool) "speculation resumes" true (ctx.Machine.txn <> None)

let test_stm_write_skew_safe () =
  (* a transaction that only reads commits even if it read hot data *)
  let rt, ctx = make_rt () in
  Memory.write_i64 ctx.Machine.mem 0x800000 5L;
  ignore (Machine.start_txn ctx);
  ignore (Semantics.raw_read ctx 0x800000);
  match Runtime.tx_finish rt 0 ctx with
  | Dbm.Continue -> ()
  | _ -> Alcotest.fail "read-only txn must commit"

(* the STM is lazy-versioned: writes buffer in the transaction and
   reach memory only at commit, and the runtime commits workers in
   iteration order.  So for ANY sequence of read/write sets executed
   iteration by iteration, memory afterwards must equal the last
   writer per word — exactly what a sequential execution leaves. *)
let prop_stm_commit_order_is_iteration_order =
  let gen_ops =
    (* per iteration: up to 6 accesses over 8 word slots *)
    let open QCheck2.Gen in
    let op = tup2 (int_bound 7) bool in
    small_list (small_list op) >|= fun its ->
    List.map (fun ops -> List.filteri (fun i _ -> i < 6) ops) its
  in
  QCheck2.Test.make ~count:200 ~name:"stm commit order equals iteration order"
    gen_ops (fun iterations ->
      let rt, ctx = make_rt () in
      let base = 0x800000 in
      let value ~it ~slot = Int64.of_int (((it + 1) * 100) + slot) in
      let shadow = Array.make 8 0L in
      List.iteri
        (fun it ops ->
           ignore (Machine.start_txn ctx);
           List.iter
             (fun (slot, write) ->
                let addr = base + (8 * slot) in
                if write then begin
                  Semantics.raw_write ctx addr (value ~it ~slot);
                  shadow.(slot) <- value ~it ~slot
                end
                else ignore (Semantics.raw_read ctx addr))
             ops;
           match Runtime.tx_finish rt 0 ctx with
           | Dbm.Continue -> ()
           | _ -> QCheck2.Test.fail_report "in-order commit must succeed")
        iterations;
      let stats = rt.Runtime.dbm.Dbm.stats in
      stats.Dbm.stm_aborts = 0
      && stats.Dbm.stm_commits = List.length iterations
      && Array.for_all
           (fun slot ->
              Memory.read_i64 ctx.Machine.mem (base + (8 * slot))
              = shadow.(slot))
           (Array.init 8 Fun.id))

let tests =
  [
    Alcotest.test_case "trip_count ne" `Quick test_trip_count_ne;
    Alcotest.test_case "trip_count empty" `Quick test_trip_count_empty;
    Alcotest.test_case "bound slots" `Quick test_bound_slot_values;
    Alcotest.test_case "reduction identities" `Quick test_redop_identities;
    Alcotest.test_case "check disjoint passes" `Quick test_check_disjoint_passes;
    Alcotest.test_case "check overlap fails" `Quick test_check_overlap_fails;
    Alcotest.test_case "check adjacent passes" `Quick test_check_adjacent_passes;
    Alcotest.test_case "check in-place map passes" `Quick
      test_check_identical_inplace_passes;
    Alcotest.test_case "check read-read ignored" `Quick
      test_check_read_read_ignored;
    Alcotest.test_case "check negative extent" `Quick test_check_negative_extent;
    Alcotest.test_case "stm commit" `Quick test_stm_commit;
    Alcotest.test_case "stm abort on conflict" `Quick test_stm_abort_on_conflict;
    Alcotest.test_case "skip_tx cleared between invocations" `Quick
      test_skip_tx_cleared_between_invocations;
    Alcotest.test_case "stm read-only commits" `Quick test_stm_write_skew_safe;
    QCheck_alcotest.to_alcotest prop_trip_count;
    QCheck_alcotest.to_alcotest prop_chunked_partition_complete;
    QCheck_alcotest.to_alcotest prop_rr_partition_complete;
    QCheck_alcotest.to_alcotest prop_chunked_is_contiguous_ordered;
    QCheck_alcotest.to_alcotest prop_reduction_combine_associative;
    QCheck_alcotest.to_alcotest prop_stm_commit_order_is_iteration_order;
  ]
