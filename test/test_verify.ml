(* Tests for the schedule verifier: the dataflow substrate, the
   independent dependence re-derivation, the .jrs/.jx linter on clean
   and deliberately corrupted schedules, and the demotion path that
   turns a bad schedule into a sequential (but correct) run. *)

open Janus_jcc
open Janus_analysis
open Janus_core
module Verify = Janus_verify.Verify
module Liveness = Janus_analysis.Liveness
module Reachdefs = Janus_verify.Reachdefs
module Memdep = Janus_verify.Memdep
module Schedule = Janus_schedule.Schedule
module Rule = Janus_schedule.Rule
module Desc = Janus_schedule.Desc
module Rexpr = Janus_schedule.Rexpr
module Reg = Janus_vx.Reg

let compile src = Jcc.compile ~options:Jcc.default_options src

(* a guest with a fill loop, a reduction and a live-out scalar: enough
   structure for every linter check to have something to look at *)
let guest_src =
  "double a[200]; double b[200];\n\
   int main() {\n\
   \  for (int i = 0; i < 200; i++) { b[i] = (double)i * 0.5; }\n\
   \  for (int i = 0; i < 200; i++) { a[i] = b[i] * 3.0 + 1.0; }\n\
   \  double s = 0.0;\n\
   \  for (int i = 0; i < 200; i++) { s = s + a[i]; }\n\
   \  print_float(s);\n\
   \  return 0;\n\
   }"

(* static-only selection: the guest's three loops split coverage too
   evenly for the profile filters, and the linter needs a populated
   schedule to chew on *)
let pcfg = Janus.config ~use_profile:false ()
let prepared = lazy (Janus.prepare ~cfg:pcfg (compile guest_src))

let errors fs = List.filter (fun f -> f.Verify.severity = Verify.Error) fs

let has_code code fs =
  List.exists
    (fun f -> f.Verify.severity = Verify.Error && String.equal f.Verify.code code)
    fs

(* rebuild a schedule, mapping every loop descriptor through [f] (rule
   offsets are re-pointed at the rewritten data section) *)
let map_loop_descs f (s : Schedule.t) =
  let b = Schedule.builder s.Schedule.channel in
  let loop_off = Hashtbl.create 8 and check_off = Hashtbl.create 8 in
  List.iter
    (fun (r : Rule.t) ->
       match r.Rule.id with
       | Rule.LOOP_INIT | Rule.LOOP_FINISH ->
         let off =
           match Hashtbl.find_opt loop_off r.Rule.data with
           | Some o -> o
           | None ->
             let o = Schedule.add_loop_desc b (f (Schedule.loop_desc s r.Rule.data)) in
             Hashtbl.replace loop_off r.Rule.data o;
             o
         in
         Schedule.add_rule b { r with Rule.data = Int64.of_int off }
       | Rule.MEM_BOUNDS_CHECK ->
         let off =
           match Hashtbl.find_opt check_off r.Rule.data with
           | Some o -> o
           | None ->
             let o = Schedule.add_check_desc b (Schedule.check_desc s r.Rule.data) in
             Hashtbl.replace check_off r.Rule.data o;
             o
         in
         Schedule.add_rule b { r with Rule.data = Int64.of_int off }
       | _ -> Schedule.add_rule b r)
    s.Schedule.rules;
  Schedule.build b

(* ------------------------------------------------------------------ *)
(* Dataflow substrate                                                  *)
(* ------------------------------------------------------------------ *)

let main_func () =
  let p = Lazy.force prepared in
  let cfg = p.Janus.p_analysis.Analysis.cfg in
  (* the function owning the most blocks is main *)
  List.fold_left
    (fun acc (f : Cfg.func) ->
       if List.length f.Cfg.blocks > List.length acc.Cfg.blocks then f
       else acc)
    (List.hd (Cfg.all_funcs cfg))
    (Cfg.all_funcs cfg)

let test_liveness_basic () =
  let f = main_func () in
  let live = Liveness.compute f in
  (* the stack pointer is live at function entry of any real function *)
  Alcotest.(check bool) "rsp live at entry" true
    (Liveness.gp_live_before live ~addr:f.Cfg.fentry Reg.RSP);
  (* unknown addresses conservatively report everything live *)
  Alcotest.(check bool) "unknown addr all live" true
    (Liveness.gp_live_before live ~addr:1 Reg.R15)

let test_reachdefs_basic () =
  let f = main_func () in
  let rd = Reachdefs.compute f in
  (* nothing is defined before the entry instruction *)
  Alcotest.(check bool) "entry has no reaching defs" true
    (Reachdefs.DefSet.is_empty (Reachdefs.reaching_before rd ~addr:f.Cfg.fentry));
  (* somewhere in the body a definition reaches a later instruction *)
  let some_def_reaches =
    List.exists
      (fun (b : Cfg.bblock) ->
         Array.exists
           (fun (ii : Cfg.insn_info) ->
              not
                (Reachdefs.DefSet.is_empty
                   (Reachdefs.reaching_before rd ~addr:ii.Cfg.addr)))
           b.Cfg.insns)
      f.Cfg.blocks
  in
  Alcotest.(check bool) "defs flow forward" true some_def_reaches

let test_memdep_recurrence_carried () =
  (* a[i] = a[i-1] + 2: the re-derivation must find the carried
     dependence with no help from the classifier *)
  let img =
    compile
      "int a[100];\n\
       int main() {\n\
       \  a[0] = 1;\n\
       \  for (int i = 1; i < 100; i++) { a[i] = a[i-1] + 2; }\n\
       \  print_int(a[99]);\n\
       \  return 0;\n\
       }"
  in
  let t = Analysis.analyse_image img in
  let carried =
    List.exists
      (fun (r : Loopanal.report) ->
         match r.Loopanal.cls with
         | Loopanal.Outer | Loopanal.Incompatible _ -> false
         | _ ->
           let v = Memdep.rederive r.Loopanal.func r.Loopanal.loop in
           v.Memdep.v_carried <> [])
      t.Analysis.reports
  in
  Alcotest.(check bool) "recurrence re-derived as carried" true carried

let test_memdep_doall_clean () =
  (* independent iterations: no carried dependence may be re-derived on
     the loop the classifier proves DOALL *)
  let p = Lazy.force prepared in
  List.iter
    (fun (r : Loopanal.report) ->
       if r.Loopanal.cls = Loopanal.Static_doall then begin
         let v = Memdep.rederive r.Loopanal.func r.Loopanal.loop in
         Alcotest.(check (list string))
           (Fmt.str "loop %d carried" r.Loopanal.loop.Looptree.lid)
           [] v.Memdep.v_carried
       end)
    p.Janus.p_analysis.Analysis.reports

let test_crosscheck_clean_on_guest () =
  let p = Lazy.force prepared in
  let findings = Verify.crosscheck p.Janus.p_analysis in
  Alcotest.(check bool)
    (Fmt.str "no crosscheck warnings: %a"
       (Fmt.list Verify.pp_finding) findings)
    true
    (List.for_all (fun f -> f.Verify.severity <> Verify.Warning) findings)

(* ------------------------------------------------------------------ *)
(* Linter: clean schedule                                              *)
(* ------------------------------------------------------------------ *)

let test_clean_schedule () =
  let p = Lazy.force prepared in
  let findings = Verify.lint p.Janus.p_image p.Janus.p_schedule in
  Alcotest.(check bool) "schedule has rules" true
    (p.Janus.p_schedule.Schedule.rules <> []);
  Alcotest.(check (list string)) "no errors" []
    (List.map (fun f -> f.Verify.code) (errors findings))

(* ------------------------------------------------------------------ *)
(* Linter: five corruption classes                                     *)
(* ------------------------------------------------------------------ *)

let test_dangling_address () =
  let p = Lazy.force prepared in
  let s = p.Janus.p_schedule in
  let rules =
    match s.Schedule.rules with
    | r :: tl -> { r with Rule.addr = 0x1 } :: tl
    | [] -> []
  in
  let findings = Verify.lint p.Janus.p_image { s with Schedule.rules } in
  Alcotest.(check bool) "dangling-address reported" true
    (has_code "dangling-address" findings)

let test_unpaired_loop_init () =
  let p = Lazy.force prepared in
  let s = p.Janus.p_schedule in
  let rules =
    List.filter (fun (r : Rule.t) -> r.Rule.id <> Rule.LOOP_FINISH)
      s.Schedule.rules
  in
  let findings = Verify.lint p.Janus.p_image { s with Schedule.rules } in
  Alcotest.(check bool) "unpaired-loop-init reported" true
    (has_code "unpaired-loop-init" findings)

let test_overlapping_privatisation () =
  let p = Lazy.force prepared in
  (* two privatised scalars 4 bytes apart in distinct TLS slots: the
     8-byte copies alias *)
  let s =
    map_loop_descs
      (fun d ->
         { d with
           Desc.privatised =
             [ (Rexpr.Const 0x600000L, 3); (Rexpr.Const 0x600004L, 4) ] })
      p.Janus.p_schedule
  in
  let findings = Verify.lint p.Janus.p_image s in
  Alcotest.(check bool) "overlapping-privatisation reported" true
    (has_code "overlapping-privatisation" findings);
  (* and a duplicate slot is caught independently of placement *)
  let s2 =
    map_loop_descs
      (fun d ->
         { d with
           Desc.privatised =
             [ (Rexpr.Reg Reg.RDI, 5); (Rexpr.Reg Reg.RSI, 5) ] })
      p.Janus.p_schedule
  in
  Alcotest.(check bool) "duplicate slot reported" true
    (has_code "overlapping-privatisation" (Verify.lint p.Janus.p_image s2))

let test_live_register_privatised () =
  let p = Lazy.force prepared in
  (* strip the live-out declarations: registers the loops write and the
     continuation reads are no longer carried out of the workers *)
  let s =
    map_loop_descs
      (fun d -> { d with Desc.live_out_gps = []; Desc.live_out_fps = [] })
      p.Janus.p_schedule
  in
  let findings = Verify.lint p.Janus.p_image s in
  Alcotest.(check bool) "live-register-privatised reported" true
    (has_code "live-register-privatised" findings)

let test_descriptor_out_of_bounds () =
  let p = Lazy.force prepared in
  let s = p.Janus.p_schedule in
  let bad = Int64.of_int (Bytes.length s.Schedule.data + 999) in
  let rules =
    List.map
      (fun (r : Rule.t) ->
         if r.Rule.id = Rule.LOOP_INIT then { r with Rule.data = bad } else r)
      s.Schedule.rules
  in
  let findings = Verify.lint p.Janus.p_image { s with Schedule.rules } in
  Alcotest.(check bool) "descriptor-out-of-bounds reported" true
    (has_code "descriptor-out-of-bounds" findings)

let test_direction_mismatch () =
  let p = Lazy.force prepared in
  let s =
    map_loop_descs
      (fun d -> { d with Desc.iv_step = Int64.neg d.Desc.iv_step })
      p.Janus.p_schedule
  in
  Alcotest.(check bool) "direction-mismatch reported" true
    (has_code "direction-mismatch" (Verify.lint p.Janus.p_image s))

(* ------------------------------------------------------------------ *)
(* Demotion                                                            *)
(* ------------------------------------------------------------------ *)

let test_demote_drops_loop_rules () =
  let p = Lazy.force prepared in
  let s = p.Janus.p_schedule in
  let lids =
    List.filter_map
      (fun (r : Rule.t) ->
         if r.Rule.id = Rule.LOOP_INIT then Some (Int64.to_int r.Rule.aux)
         else None)
      s.Schedule.rules
  in
  match lids with
  | [] -> Alcotest.fail "no loops in schedule"
  | lid :: _ ->
    let s' = Verify.demote p.Janus.p_image s [ lid ] in
    Alcotest.(check bool) "fewer rules" true
      (List.length s'.Schedule.rules < List.length s.Schedule.rules);
    Alcotest.(check bool) "no rule of the demoted loop survives" true
      (List.for_all
         (fun r -> Verify.rule_lid r <> Some lid)
         s'.Schedule.rules);
    (* other loops keep their rules *)
    Alcotest.(check bool) "other loops untouched" true
      (List.exists
         (fun (r : Rule.t) -> r.Rule.id = Rule.LOOP_INIT)
         s'.Schedule.rules
       || List.length lids = 1)

let test_corrupt_schedule_runs_sequentially () =
  (* drop one loop's LOOP_FINISH rules: the verifier must demote that
     loop and the run must still produce bit-identical output *)
  let p = Lazy.force prepared in
  let native = Janus.run_native p.Janus.p_image in
  let s = p.Janus.p_schedule in
  let victim =
    List.find_map
      (fun (r : Rule.t) ->
         if r.Rule.id = Rule.LOOP_FINISH then Some (Int64.to_int r.Rule.aux)
         else None)
      s.Schedule.rules
  in
  let victim = Option.get victim in
  let rules =
    List.filter
      (fun (r : Rule.t) ->
         not (r.Rule.id = Rule.LOOP_FINISH && Int64.to_int r.Rule.aux = victim))
      s.Schedule.rules
  in
  let corrupted = { s with Schedule.rules } in
  let run = Janus.run_scheduled p.Janus.p_image corrupted in
  Alcotest.(check bool) "verifier demoted the corrupted loop" true
    (List.mem victim run.Janus.demoted_loops);
  Alcotest.(check string) "output bit-identical to native"
    native.Janus.output run.Janus.output;
  (* with verification off the corruption reaches the DBM unfiltered
     (the demotion list stays empty) *)
  let unchecked =
    Janus.run_scheduled ~cfg:(Janus.config ~verify:false ()) p.Janus.p_image
      corrupted
  in
  Alcotest.(check (list int)) "no demotion without verify" []
    unchecked.Janus.demoted_loops

let test_fully_corrupt_schedule_drops_all_rules () =
  (* an error that cannot be attributed to a loop (dangling
     LOOP_UPDATE_BOUND outside every loop extent) empties the schedule:
     the run degrades to plain DBM, still correct *)
  let p = Lazy.force prepared in
  let native = Janus.run_native p.Janus.p_image in
  let s = p.Janus.p_schedule in
  let rules =
    s.Schedule.rules
    @ [ Rule.make ~addr:0x3 ~data:0L ~aux:0L Rule.LOOP_UPDATE_BOUND ]
  in
  let corrupted = { s with Schedule.rules } in
  let s', demoted, findings =
    Verify.check_and_demote p.Janus.p_image corrupted
  in
  Alcotest.(check bool) "errors found" true (Verify.has_errors findings);
  Alcotest.(check (list (pair int int))) "all rules dropped" []
    (List.map (fun (r : Rule.t) -> (r.Rule.addr, Rule.id_to_int r.Rule.id))
       s'.Schedule.rules);
  Alcotest.(check bool) "every loop demoted" true (demoted <> []);
  let run = Janus.run_scheduled p.Janus.p_image corrupted in
  Alcotest.(check string) "output still native" native.Janus.output
    run.Janus.output

(* ------------------------------------------------------------------ *)
(* The fission check family                                            *)
(* ------------------------------------------------------------------ *)

(* a carried scalar chain plus an independent stream: Static_dep as a
   whole, split by the fission planner into a DOALL product (the
   stream) and a sequential residue (the chain) *)
let fission_src =
  "int a[2048]; int b[2048]; int c[2048];\n\
   int main() {\n\
   \  int n = 2048;\n\
   \  for (int i = 0; i < n; i++) {\n\
   \    a[i] = (i * 7 + 3) % 101;\n\
   \    b[i] = 0;\n\
   \    c[i] = (i * 5 + 1) % 97;\n\
   \  }\n\
   \  int s = 1;\n\
   \  for (int t = 0; t < 24; t++) {\n\
   \    for (int i = 0; i < 2048; i++) {\n\
   \      s = s * 3 + a[i];\n\
   \      b[i] = c[i] * 2 + t;\n\
   \    }\n\
   \  }\n\
   \  print_int(s);\n\
   \  print_int(b[5]);\n\
   \  print_int(b[2000]);\n\
   \  return 0;\n\
   }"

let fission_prepared =
  lazy
    (Janus.prepare
       ~cfg:(Janus.config ~threads:4 ~fission:true ())
       (compile fission_src))

(* rebuild a schedule, mapping every fission descriptor through [f];
   LOOP_FINISH rules of a fissioned loop share the fission descriptor's
   offset (it begins with the loop descriptor), so that sharing must
   survive the rewrite *)
let map_fission_descs f (s : Schedule.t) =
  let fission_offs =
    List.filter_map
      (fun (r : Rule.t) ->
         if r.Rule.id = Rule.LOOP_FISSION then Some r.Rule.data else None)
      s.Schedule.rules
  in
  let b = Schedule.builder s.Schedule.channel in
  let loop_off = Hashtbl.create 8
  and check_off = Hashtbl.create 8
  and fiss_off = Hashtbl.create 8 in
  let remap_fission data =
    match Hashtbl.find_opt fiss_off data with
    | Some o -> o
    | None ->
      let o = Schedule.add_fission_desc b (f (Schedule.fission_desc s data)) in
      Hashtbl.replace fiss_off data o;
      o
  in
  List.iter
    (fun (r : Rule.t) ->
       match r.Rule.id with
       | Rule.LOOP_FISSION ->
         Schedule.add_rule b
           { r with Rule.data = Int64.of_int (remap_fission r.Rule.data) }
       | (Rule.LOOP_INIT | Rule.LOOP_FINISH)
         when List.mem r.Rule.data fission_offs ->
         Schedule.add_rule b
           { r with Rule.data = Int64.of_int (remap_fission r.Rule.data) }
       | Rule.LOOP_INIT | Rule.LOOP_FINISH ->
         let off =
           match Hashtbl.find_opt loop_off r.Rule.data with
           | Some o -> o
           | None ->
             let o =
               Schedule.add_loop_desc b (Schedule.loop_desc s r.Rule.data)
             in
             Hashtbl.replace loop_off r.Rule.data o;
             o
         in
         Schedule.add_rule b { r with Rule.data = Int64.of_int off }
       | Rule.MEM_BOUNDS_CHECK ->
         let off =
           match Hashtbl.find_opt check_off r.Rule.data with
           | Some o -> o
           | None ->
             let o =
               Schedule.add_check_desc b (Schedule.check_desc s r.Rule.data)
             in
             Hashtbl.replace check_off r.Rule.data o;
             o
         in
         Schedule.add_rule b { r with Rule.data = Int64.of_int off }
       | _ -> Schedule.add_rule b r)
    s.Schedule.rules;
  Schedule.build b

let test_fission_schedule_lints_clean () =
  let p = Lazy.force fission_prepared in
  let s = p.Janus.p_schedule in
  Alcotest.(check bool) "has a LOOP_FISSION rule" true
    (List.exists
       (fun (r : Rule.t) -> r.Rule.id = Rule.LOOP_FISSION)
       s.Schedule.rules);
  Alcotest.(check (list string)) "no lint errors" []
    (List.map (fun f -> f.Verify.code) (errors (Verify.lint p.Janus.p_image s)))

let test_fission_parallel_residue_caught () =
  (* mark the sequential residue parallel: the verifier's independent
     re-derivation must refuse to prove the chain carried-free *)
  let p = Lazy.force fission_prepared in
  let corrupted =
    map_fission_descs
      (fun (fd : Desc.fission_desc) ->
         {
           fd with
           Desc.fd_groups =
             List.map
               (fun (g : Desc.fission_group) ->
                  { g with Desc.fg_parallel = true })
               fd.Desc.fd_groups;
         })
      p.Janus.p_schedule
  in
  Alcotest.(check bool) "parallel residue flagged" true
    (has_code "fission-parallel-unsound" (Verify.lint p.Janus.p_image corrupted));
  (* and the deployment path demotes rather than runs the bad split *)
  let native = Janus.run_native p.Janus.p_image in
  let run = Janus.run_scheduled p.Janus.p_image corrupted in
  Alcotest.(check string) "output still native" native.Janus.output
    run.Janus.output

let test_fission_dropped_insn_caught () =
  (* drop one instruction from a sub-loop: it would never execute, and
     the coverage check must say so *)
  let p = Lazy.force fission_prepared in
  let corrupted =
    map_fission_descs
      (fun (fd : Desc.fission_desc) ->
         {
           fd with
           Desc.fd_groups =
             List.map
               (fun (g : Desc.fission_group) ->
                  if g.Desc.fg_parallel then g
                  else { g with Desc.fg_insns = List.tl g.Desc.fg_insns })
               fd.Desc.fd_groups;
         })
      p.Janus.p_schedule
  in
  Alcotest.(check bool) "missing instruction flagged" true
    (has_code "fission-coverage" (Verify.lint p.Janus.p_image corrupted))

(* ------------------------------------------------------------------ *)
(* The whole suite verifies clean                                      *)
(* ------------------------------------------------------------------ *)

let test_suite_schedules_verify_clean () =
  List.iter
    (fun (b : Janus_suite.Suite.benchmark) ->
       let img = Janus_suite.Suite.compile b in
       let p =
         Janus.prepare ~train_input:(Janus_suite.Suite.train_input b) img
       in
       let findings = Verify.lint img p.Janus.p_schedule in
       Alcotest.(check (list string))
         (b.Janus_suite.Suite.name ^ " lint errors")
         []
         (List.map (fun f -> f.Verify.code) (errors findings)))
    Janus_suite.Suite.all

let tests =
  [
    Alcotest.test_case "liveness basics" `Quick test_liveness_basic;
    Alcotest.test_case "reaching definitions basics" `Quick
      test_reachdefs_basic;
    Alcotest.test_case "memdep: recurrence carried" `Quick
      test_memdep_recurrence_carried;
    Alcotest.test_case "memdep: doall clean" `Quick test_memdep_doall_clean;
    Alcotest.test_case "crosscheck clean on guest" `Quick
      test_crosscheck_clean_on_guest;
    Alcotest.test_case "clean schedule lints clean" `Quick test_clean_schedule;
    Alcotest.test_case "corruption: dangling address" `Quick
      test_dangling_address;
    Alcotest.test_case "corruption: unpaired LOOP_INIT" `Quick
      test_unpaired_loop_init;
    Alcotest.test_case "corruption: overlapping privatisation" `Quick
      test_overlapping_privatisation;
    Alcotest.test_case "corruption: live register privatised" `Quick
      test_live_register_privatised;
    Alcotest.test_case "corruption: descriptor out of bounds" `Quick
      test_descriptor_out_of_bounds;
    Alcotest.test_case "corruption: direction mismatch" `Quick
      test_direction_mismatch;
    Alcotest.test_case "demote drops one loop's rules" `Quick
      test_demote_drops_loop_rules;
    Alcotest.test_case "corrupt schedule runs sequentially" `Quick
      test_corrupt_schedule_runs_sequentially;
    Alcotest.test_case "unattributable corruption drops all rules" `Quick
      test_fully_corrupt_schedule_drops_all_rules;
    Alcotest.test_case "fission schedule lints clean" `Quick
      test_fission_schedule_lints_clean;
    Alcotest.test_case "corruption: parallel fission residue" `Quick
      test_fission_parallel_residue_caught;
    Alcotest.test_case "corruption: dropped fission instruction" `Quick
      test_fission_dropped_insn_caught;
    Alcotest.test_case "all suite schedules verify clean" `Slow
      test_suite_schedules_verify_clean;
  ]
