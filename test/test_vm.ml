(* Tests for the VM substrate: memory, semantics, runner, library
   fragments and the __par_for intrinsic. *)

open Janus_vx
open Janus_vm

let reg r = Operand.Reg r
let imm i = Operand.Imm (Int64.of_int i)

(* _start: sum 0..9, print, exit 0 *)
let sum_program () =
  let b = Builder.create () in
  Builder.label b "_start";
  Builder.ins b (Insn.Mov (reg Reg.RCX, imm 0));
  Builder.ins b (Insn.Mov (reg Reg.RAX, imm 0));
  Builder.label b "loop";
  Builder.ins b (Insn.Cmp (reg Reg.RCX, imm 10));
  Builder.jcc b Cond.Ge "done";
  Builder.ins b (Insn.Alu (Insn.Add, reg Reg.RAX, reg Reg.RCX));
  Builder.ins b (Insn.Alu (Insn.Add, reg Reg.RCX, imm 1));
  Builder.jmp b "loop";
  Builder.label b "done";
  Builder.ins b (Insn.Mov (reg Reg.RDI, reg Reg.RAX));
  Builder.ins b (Insn.Syscall Insn.sys_write_int);
  Builder.ins b (Insn.Mov (reg Reg.RDI, imm 0));
  Builder.ins b (Insn.Syscall Insn.sys_exit);
  Builder.to_image b ~entry:"_start"

let test_sum_loop () =
  let r = Run.run (sum_program ()) in
  Alcotest.(check string) "output" "45\n" r.Run.output;
  Alcotest.(check int) "exit" 0 r.Run.exit_code;
  Alcotest.(check bool) "cycles counted" true (r.Run.cycles > 0);
  Alcotest.(check bool) "icount counted" true (r.Run.icount > 40)

let test_memory_regions () =
  let m = Memory.create () in
  ignore (Memory.add_region m ~name:"a" ~start:0x1000 ~size:0x100);
  Memory.write_i64 m 0x1000 42L;
  Alcotest.(check int64) "read back" 42L (Memory.read_i64 m 0x1000);
  Memory.write_f64 m 0x1010 3.5;
  Alcotest.(check (float 0.0)) "float read" 3.5 (Memory.read_f64 m 0x1010);
  Alcotest.check_raises "fault below" (Memory.Fault 0xfff) (fun () ->
      ignore (Memory.read_i64 m 0xfff));
  Alcotest.check_raises "fault straddling end" (Memory.Fault 0x1100) (fun () ->
      ignore (Memory.read_i64 m 0x10f9))

(* call pow(2.0, 8.0) through the PLT; result printed *)
let pow_program () =
  let b = Builder.create () in
  let d = Builder.Data.create () in
  Builder.Data.label d "two";
  Builder.Data.f64 d 2.0;
  Builder.Data.label d "eight";
  Builder.Data.f64 d 8.0;
  Builder.label b "_start";
  Builder.ins b
    (Insn.Fmov (Insn.Scalar, Operand.Freg (Reg.XMM 0),
                Operand.Fmem (Operand.mem_abs (Builder.Data.addr d "two"))));
  Builder.ins b
    (Insn.Fmov (Insn.Scalar, Operand.Freg (Reg.XMM 1),
                Operand.Fmem (Operand.mem_abs (Builder.Data.addr d "eight"))));
  Builder.ins b (Insn.Call (Insn.Direct (Layout.plt_slot_addr 0)));
  Builder.ins b (Insn.Syscall Insn.sys_write_float);
  Builder.ins b (Insn.Mov (reg Reg.RDI, imm 0));
  Builder.ins b (Insn.Syscall Insn.sys_exit);
  Builder.to_image b ~entry:"_start"
    ~data:(Builder.Data.contents d)
    ~externals:[ "pow" ]

let test_pow_libcall () =
  let r = Run.run (pow_program ()) in
  Alcotest.(check string) "pow(2,8)" "256\n" r.Run.output

(* __par_for over a bss array: body writes a[i] = 3*i, main sums. *)
let par_program ~threads ~n =
  let b = Builder.create () in
  let bss = Layout.bss_base in
  Builder.label b "_start";
  Builder.ins b (Insn.Mov (reg Reg.RDI, imm 0));
  Builder.call_label b "body_wrapper";
  (* sum the array *)
  Builder.ins b (Insn.Mov (reg Reg.RCX, imm 0));
  Builder.ins b (Insn.Mov (reg Reg.RAX, imm 0));
  Builder.label b "sum_loop";
  Builder.ins b (Insn.Cmp (reg Reg.RCX, imm n));
  Builder.jcc b Cond.Ge "sum_done";
  Builder.ins b
    (Insn.Alu (Insn.Add, reg Reg.RAX,
               Operand.Mem (Operand.mem ~index:Reg.RCX ~scale:8 ~disp:bss ())));
  Builder.ins b (Insn.Alu (Insn.Add, reg Reg.RCX, imm 1));
  Builder.jmp b "sum_loop";
  Builder.label b "sum_done";
  Builder.ins b (Insn.Mov (reg Reg.RDI, reg Reg.RAX));
  Builder.ins b (Insn.Syscall Insn.sys_write_int);
  Builder.ins b (Insn.Mov (reg Reg.RDI, imm 0));
  Builder.ins b (Insn.Syscall Insn.sys_exit);
  (* body_wrapper: calls __par_for(body, 0, n, threads) *)
  Builder.label b "body_wrapper";
  Builder.ins b (Insn.Mov (reg Reg.RSI, imm 0));
  Builder.ins b (Insn.Mov (reg Reg.RDX, imm n));
  Builder.ins b (Insn.Mov (reg Reg.RCX, imm threads));
  Builder.ins b (Insn.Lea (Reg.RDI, Operand.mem_abs 0));
  (* patched below: lea rdi, [body] — emit via label trick *)
  Builder.ins b (Insn.Call (Insn.Direct (Layout.plt_slot_addr 0)));
  Builder.ins b Insn.Ret;
  (* body(lo=rdi, hi=rsi): for i in [lo,hi) a[i] = 3*i *)
  Builder.label b "body";
  Builder.ins b (Insn.Mov (reg Reg.RCX, reg Reg.RDI));
  Builder.label b "body_loop";
  Builder.ins b (Insn.Cmp (reg Reg.RCX, reg Reg.RSI));
  Builder.jcc b Cond.Ge "body_done";
  Builder.ins b (Insn.Mov (reg Reg.RAX, reg Reg.RCX));
  Builder.ins b (Insn.Alu (Insn.Imul, reg Reg.RAX, imm 3));
  (* pad the body with work so the parallel region dominates *)
  for _ = 1 to 20 do
    Builder.ins b (Insn.Alu (Insn.Add, reg Reg.RDX, reg Reg.RAX))
  done;
  Builder.ins b
    (Insn.Mov (Operand.Mem (Operand.mem ~index:Reg.RCX ~scale:8 ~disp:bss ()),
               reg Reg.RAX));
  Builder.ins b (Insn.Alu (Insn.Add, reg Reg.RCX, imm 1));
  Builder.jmp b "body_loop";
  Builder.label b "body_done";
  Builder.ins b Insn.Ret;
  (b, n)

let par_image ~threads ~n =
  let b, _ = par_program ~threads ~n in
  (* fix the lea to point at body *)
  let body_addr = Builder.label_addr b "body" in
  let insns = Builder.finish b in
  let insns =
    List.map
      (function
        | Insn.Lea (Reg.RDI, m) when m.Operand.disp = 0 ->
          Insn.Lea (Reg.RDI, Operand.mem_abs body_addr)
        | i -> i)
      insns
  in
  let text = Encode.encode_list insns in
  {
    Image.entry = Layout.text_base;
    text;
    data = Bytes.create 0;
    bss_size = 8 * n;
    externals = [ "__par_for" ];
  }

let test_par_for () =
  (* sequential (1 thread) and parallel (4) must agree, and parallel
     must model fewer max-thread cycles *)
  let n = 64 in
  let r1 = Run.run (par_image ~threads:1 ~n) in
  let r4 = Run.run (par_image ~threads:4 ~n) in
  Alcotest.(check string) "same output" r1.Run.output r4.Run.output;
  let expected = 3 * (n * (n - 1) / 2) in
  (* output is sum of a[i]=3i *)
  Alcotest.(check string) "value" (Printf.sprintf "%d\n" expected) r4.Run.output

let test_par_for_speedup () =
  let n = 4096 in
  let r1 = Run.run (par_image ~threads:1 ~n) in
  let r8 = Run.run (par_image ~threads:8 ~n) in
  let s = float_of_int r1.Run.cycles /. float_of_int r8.Run.cycles in
  Alcotest.(check bool)
    (Printf.sprintf "8-thread speedup %.2f > 2" s)
    true (s > 2.0)

let test_fork_isolation () =
  let m = Memory.create () in
  ignore (Memory.add_region m ~name:"a" ~start:0x1000 ~size:0x100);
  let ctx = Machine.create m in
  Machine.set ctx Reg.RAX 7L;
  let child = Machine.fork ctx in
  Machine.set child Reg.RAX 9L;
  Alcotest.(check int64) "parent unchanged" 7L (Machine.get ctx Reg.RAX);
  (* but memory is shared *)
  Memory.write_i64 m 0x1000 1L;
  Alcotest.(check int64) "shared memory" 1L
    (Memory.read_i64 child.Machine.mem 0x1000)

let test_txn_buffering () =
  let m = Memory.create () in
  ignore (Memory.add_region m ~name:"a" ~start:0x1000 ~size:0x100);
  Memory.write_i64 m 0x1000 5L;
  let ctx = Machine.create m in
  let txn = Machine.start_txn ctx in
  (* speculative write goes to the buffer, not memory *)
  Semantics.raw_write ctx 0x1000 99L;
  Alcotest.(check int64) "memory untouched" 5L (Memory.read_i64 m 0x1000);
  (* speculative read sees the buffered value *)
  Alcotest.(check int64) "read own write" 99L (Semantics.raw_read ctx 0x1000);
  Alcotest.(check int) "one buffered write" 1
    (Hashtbl.length txn.Machine.twrites);
  Machine.rollback ctx txn;
  Alcotest.(check int64) "after rollback" 5L (Memory.read_i64 m 0x1000)

let test_observe_hook () =
  let m = Memory.create () in
  ignore (Memory.add_region m ~name:"a" ~start:0x1000 ~size:0x100);
  let ctx = Machine.create m in
  let log = ref [] in
  ctx.Machine.observe <-
    Some (fun rw ~addr ~bytes:_ -> log := (rw, addr) :: !log);
  Semantics.raw_write ctx 0x1000 1L;
  ignore (Semantics.raw_read ctx 0x1008);
  Alcotest.(check int) "two events" 2 (List.length !log);
  Alcotest.(check bool) "write first" true
    (match List.rev !log with
     | (Machine.Write, 0x1000) :: (Machine.Read, 0x1008) :: _ -> true
     | _ -> false)

(* the sqrt and exp fragments, like pow, are resolved only at run time;
   check their numeric results against the host's math *)
let compile_run src =
  let img = Janus_jcc.Jcc.compile src in
  Run.run img

let test_sqrt_libcall () =
  let r =
    compile_run
      "extern double sqrt(double);\n\
       int main() { print_float(sqrt(2.0) + sqrt(9.0)); return 0; }"
  in
  let got = float_of_string (String.trim r.Run.output) in
  let want = Float.sqrt 2.0 +. 3.0 in
  Alcotest.(check bool)
    (Printf.sprintf "sqrt: %.6f vs %.6f" got want)
    true
    (Float.abs (got -. want) < 1e-4)

let test_exp_libcall () =
  (* the fragment is a truncated Taylor series; accept ~1e-3 *)
  let r =
    compile_run
      "extern double exp(double);\n\
       int main() { print_float(exp(1.0)); return 0; }"
  in
  let got = float_of_string (String.trim r.Run.output) in
  Alcotest.(check bool)
    (Printf.sprintf "exp(1) = %.6f" got)
    true
    (Float.abs (got -. Float.exp 1.0) < 1e-3)

let test_cache_model_misses () =
  let m = Memory.create () in
  ignore (Memory.add_region m ~name:"a" ~start:0x1000 ~size:0x1000);
  let ctx = Machine.create m in
  ctx.Machine.model_cache <- true;
  let c0 = ctx.Machine.cycles in
  ignore (Semantics.raw_read ctx 0x1000);
  Alcotest.(check int) "cold line charged" Cost.cache_miss
    (ctx.Machine.cycles - c0);
  let c1 = ctx.Machine.cycles in
  ignore (Semantics.raw_read ctx 0x1008);
  Alcotest.(check int) "same line free" 0 (ctx.Machine.cycles - c1);
  let c2 = ctx.Machine.cycles in
  Semantics.raw_write ctx 0x1040 7L;
  Alcotest.(check int) "next line misses on write" Cost.cache_miss
    (ctx.Machine.cycles - c2)

let test_cache_model_off_by_default () =
  let m = Memory.create () in
  ignore (Memory.add_region m ~name:"a" ~start:0x1000 ~size:0x100);
  let ctx = Machine.create m in
  let c0 = ctx.Machine.cycles in
  ignore (Semantics.raw_read ctx 0x1000);
  Alcotest.(check int) "no miss charged" 0 (ctx.Machine.cycles - c0)

let test_prefetch_warms_line () =
  let m = Memory.create () in
  ignore (Memory.add_region m ~name:"a" ~start:0x1000 ~size:0x1000);
  let ctx = Machine.create m in
  ctx.Machine.model_cache <- true;
  (* execute a prefetch hint for 0x1080, then read it: no miss *)
  let pm = Operand.mem_abs 0x1080 in
  (match Semantics.exec ctx (Insn.Prefetch pm) ~len:0 with
   | Semantics.Fall -> ()
   | _ -> Alcotest.fail "prefetch must fall through");
  let c0 = ctx.Machine.cycles in
  ignore (Semantics.raw_read ctx 0x1080);
  Alcotest.(check int) "prefetched line hits" 0 (ctx.Machine.cycles - c0);
  let c1 = ctx.Machine.cycles in
  ignore (Semantics.raw_read ctx 0x10c0);
  Alcotest.(check int) "unprefetched line misses" Cost.cache_miss
    (ctx.Machine.cycles - c1)

let test_cache_fifo_eviction () =
  let m = Memory.create () in
  ignore (Memory.add_region m ~name:"big" ~start:0x100000 ~size:0x800000);
  let ctx = Machine.create m in
  ctx.Machine.model_cache <- true;
  ignore (Semantics.raw_read ctx 0x100000);
  (* touch more distinct lines than the warm set holds *)
  for i = 1 to Cost.cache_lines + 8 do
    ignore (Semantics.raw_read ctx (0x100000 + (i * Cost.cache_line)))
  done;
  let c0 = ctx.Machine.cycles in
  ignore (Semantics.raw_read ctx 0x100000);
  Alcotest.(check int) "first line was evicted" Cost.cache_miss
    (ctx.Machine.cycles - c0)

let test_fork_cold_cache () =
  let m = Memory.create () in
  ignore (Memory.add_region m ~name:"a" ~start:0x1000 ~size:0x100);
  let ctx = Machine.create m in
  ctx.Machine.model_cache <- true;
  ignore (Semantics.raw_read ctx 0x1000);
  let child = Machine.fork ctx in
  Alcotest.(check bool) "flag inherited" true child.Machine.model_cache;
  let c0 = child.Machine.cycles in
  ignore (Semantics.raw_read child 0x1000);
  Alcotest.(check int) "child's private cache starts cold" Cost.cache_miss
    (child.Machine.cycles - c0)

let test_div_by_zero () =
  let b = Builder.create () in
  Builder.label b "_start";
  Builder.ins b (Insn.Mov (reg Reg.RAX, imm 10));
  Builder.ins b (Insn.Mov (reg Reg.RBX, imm 0));
  Builder.ins b (Insn.Idiv (reg Reg.RBX));
  Builder.ins b Insn.Hlt;
  let img = Builder.to_image b ~entry:"_start" in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Run.run img);
       false
     with Semantics.Div_by_zero _ -> true)

(* Aborting a transaction between a cmp and its jcc must restore the
   condition flags (and the heap bump pointer): a speculative iteration
   that compares, faults and rolls back may not leak its flags into the
   branch the sequential re-execution is about to take. *)
let test_txn_rollback_flags_brk () =
  let m = Memory.create () in
  ignore (Memory.add_region m ~name:"a" ~start:0x1000 ~size:0x100);
  let ctx = Machine.create m in
  Machine.set ctx Reg.RAX 1L;
  Machine.set ctx Reg.RBX 2L;
  (* the compare whose jcc the transaction interrupts: 1 < 2 *)
  ignore (Semantics.exec ctx (Insn.Cmp (reg Reg.RAX, reg Reg.RBX)) ~len:0);
  let flags0 = ctx.Machine.flags and brk0 = ctx.Machine.brk in
  let txn = Machine.start_txn ctx in
  (* the doomed txn flips the comparison and bumps the heap *)
  ignore (Semantics.exec ctx (Insn.Cmp (reg Reg.RBX, reg Reg.RAX)) ~len:0);
  ctx.Machine.brk <- ctx.Machine.brk + 4096;
  Alcotest.(check bool) "txn changed flags" true (ctx.Machine.flags <> flags0);
  Machine.rollback ctx txn;
  Alcotest.(check int) "flags restored" flags0 ctx.Machine.flags;
  Alcotest.(check int) "brk restored" brk0 ctx.Machine.brk;
  (* the jcc now evaluates as if the aborted txn never ran *)
  Alcotest.(check bool) "lt holds" true (Semantics.eval_cond ctx Cond.Lt);
  Alcotest.(check bool) "gt does not" false (Semantics.eval_cond ctx Cond.Gt)

(* The packed flags word and the flat fregs array must be
   observationally indistinguishable from the naive representation they
   replaced (four separate bools; per-register lane arrays): random
   operation sequences applied to both, then every condition code and
   every FP lane compared. *)

type ref_state = {
  mutable r_zf : bool;
  mutable r_lt : bool;
  mutable r_ult : bool;
  mutable r_sf : bool;
  r_fregs : float array array; (* [register].(lane) *)
}

type state_op =
  | Op_cmp of int64 * int64
  | Op_result of int64
  | Op_setf of int * int * float

let apply_machine ctx = function
  | Op_cmp (a, b) -> Semantics.set_flags_cmp ctx a b
  | Op_result v -> Semantics.set_flags_result ctx v
  | Op_setf (r, lane, v) -> Machine.setf ctx (Reg.fp_of_index r) lane v

let apply_ref s = function
  | Op_cmp (a, b) ->
    s.r_zf <- Int64.equal a b;
    s.r_lt <- Int64.compare a b < 0;
    s.r_ult <- Int64.unsigned_compare a b < 0;
    s.r_sf <- Int64.compare (Int64.sub a b) 0L < 0
  | Op_result v ->
    let neg = Int64.compare v 0L < 0 in
    s.r_zf <- Int64.equal v 0L;
    s.r_lt <- neg;
    s.r_ult <- false;
    s.r_sf <- neg
  | Op_setf (r, lane, v) -> s.r_fregs.(r).(lane) <- v

let gen_state_op =
  let open QCheck2.Gen in
  (* mix full-range and tiny operands so equality/zero cases occur *)
  let i64 = oneof [ int64; map Int64.of_int (int_range (-4) 4) ] in
  frequency
    [
      (3, map2 (fun a b -> Op_cmp (a, b)) i64 i64);
      (2, map (fun v -> Op_result v) i64);
      ( 3,
        map3
          (fun r lane v -> Op_setf (r, lane, v))
          (int_range 0 (Reg.fp_count - 1))
          (int_range 0 3)
          (map Int64.float_of_bits int64) );
    ]

let prop_flat_state_equiv =
  QCheck2.Test.make ~count:200
    ~name:"flat machine state matches the reference representation"
    QCheck2.Gen.(list_size (int_range 0 40) gen_state_op)
    (fun ops ->
      let ctx = Machine.create (Memory.create ()) in
      let s =
        {
          r_zf = false;
          r_lt = false;
          r_ult = false;
          r_sf = false;
          r_fregs = Array.init Reg.fp_count (fun _ -> Array.make 4 0.0);
        }
      in
      List.iter
        (fun op ->
          apply_machine ctx op;
          apply_ref s op)
        ops;
      let conds_agree =
        List.for_all
          (fun c ->
            Bool.equal
              (Semantics.eval_cond ctx c)
              (Cond.eval ~zf:s.r_zf ~lt:s.r_lt ~ult:s.r_ult ~sf:s.r_sf c))
          Cond.all
      in
      let lanes_agree = ref true in
      for r = 0 to Reg.fp_count - 1 do
        for lane = 0 to 3 do
          (* bit-level equality: exact, and NaN-proof *)
          if
            not
              (Int64.equal
                 (Int64.bits_of_float
                    (Machine.getf ctx (Reg.fp_of_index r) lane))
                 (Int64.bits_of_float s.r_fregs.(r).(lane)))
          then lanes_agree := false
        done
      done;
      conds_agree && !lanes_agree)

let test_out_of_fuel () =
  let b = Builder.create () in
  Builder.label b "_start";
  Builder.label b "spin";
  Builder.jmp b "spin";
  let img = Builder.to_image b ~entry:"_start" in
  Alcotest.check_raises "fuel" Run.Out_of_fuel (fun () ->
      ignore (Run.run ~fuel:1000 img))

let tests =
  [
    Alcotest.test_case "memory regions" `Quick test_memory_regions;
    Alcotest.test_case "sum loop" `Quick test_sum_loop;
    Alcotest.test_case "pow libcall" `Quick test_pow_libcall;
    Alcotest.test_case "sqrt libcall" `Quick test_sqrt_libcall;
    Alcotest.test_case "exp libcall" `Quick test_exp_libcall;
    Alcotest.test_case "par_for correctness" `Quick test_par_for;
    Alcotest.test_case "par_for speedup" `Quick test_par_for_speedup;
    Alcotest.test_case "fork isolation" `Quick test_fork_isolation;
    Alcotest.test_case "txn buffering" `Quick test_txn_buffering;
    Alcotest.test_case "txn rollback restores flags and brk" `Quick
      test_txn_rollback_flags_brk;
    QCheck_alcotest.to_alcotest prop_flat_state_equiv;
    Alcotest.test_case "observe hook" `Quick test_observe_hook;
    Alcotest.test_case "cache model misses" `Quick test_cache_model_misses;
    Alcotest.test_case "cache model off by default" `Quick
      test_cache_model_off_by_default;
    Alcotest.test_case "prefetch warms line" `Quick test_prefetch_warms_line;
    Alcotest.test_case "cache fifo eviction" `Quick test_cache_fifo_eviction;
    Alcotest.test_case "fork starts cold" `Quick test_fork_cold_cache;
    Alcotest.test_case "div by zero" `Quick test_div_by_zero;
    Alcotest.test_case "out of fuel" `Quick test_out_of_fuel;
  ]
