(* Tests for lib/pgo: the .jprof codec round-trips; merge is a
   commutative, associative, idempotent set union; corrupt store files
   are counted, treated as absent and repaired by the next save; prune
   respects age/byte bounds and never deletes this process's own
   writes; fleet evidence flips a selection verdict end-to-end; and the
   daemon ingests uploads and keeps serving the aggregate across a
   restart. *)

module Pgo = Janus_pgo.Pgo
module Pipeline = Janus_core.Pipeline
module Janus = Janus_core.Janus
module Adapt = Janus_adapt.Adapt
module Profiler = Janus_profile.Profiler
module Served = Janus_served_lib.Served

(* ------------------------------------------------------------------ *)
(* Generators *)

let gen_ledger =
  let open QCheck2.Gen in
  let* l_lid = int_range 0 24 in
  let* l_self_insns = int_range 0 100_000 in
  let* l_invocations = int_range 0 1_000 in
  let* l_iterations = int_range 0 100_000 in
  let* l_observed = bool in
  let* l_dep = bool in
  let* l_checks_passed = int_range 0 500 in
  let* l_checks_failed = int_range 0 500 in
  let* l_commits = int_range 0 500 in
  let* l_aborts = int_range 0 500 in
  let* l_fallbacks = int_range 0 500 in
  let* l_par_work = int_range 0 1_000_000 in
  let* l_par_cost = int_range 0 1_000_000 in
  let* l_demotions = int_range 0 9 in
  let* l_promotions = int_range 0 9 in
  let+ l_sampled_dep = bool in
  {
    Pgo.l_lid; l_self_insns; l_invocations; l_iterations; l_observed;
    l_dep; l_checks_passed; l_checks_failed; l_commits; l_aborts;
    l_fallbacks; l_par_work; l_par_cost; l_demotions; l_promotions;
    l_sampled_dep;
  }

let gen_run =
  let open QCheck2.Gen in
  let* source = oneofl [ Pgo.Training; Pgo.Fleet; Pgo.Governed ] in
  let* input = oneofl [ ""; "4"; "250"; "10,20" ] in
  let* total_insns = int_range 0 10_000_000 in
  let+ loops = list_size (int_range 0 8) gen_ledger in
  Pgo.make_run ~source ~input ~total_insns loops

let gen_profile_for image =
  let open QCheck2.Gen in
  let+ runs = list_size (int_range 0 6) gen_run in
  List.fold_left Pgo.add (Pgo.empty image) runs

let gen_profile =
  let open QCheck2.Gen in
  let* image = int_range 0 0xffffff >|= Printf.sprintf "%08x" in
  gen_profile_for image

(* ------------------------------------------------------------------ *)
(* Codec and merge properties *)

let prop_roundtrip =
  QCheck2.Test.make ~count:100 ~name:".jprof round-trips" gen_profile
    (fun p -> Pgo.equal p (Pgo.of_bytes (Pgo.to_bytes p)))

let prop_merge_commutative =
  QCheck2.Test.make ~count:100 ~name:"merge is commutative"
    QCheck2.Gen.(pair (gen_profile_for "deadbeef") (gen_profile_for "deadbeef"))
    (fun (a, b) -> Pgo.equal (Pgo.merge a b) (Pgo.merge b a))

let prop_merge_associative =
  QCheck2.Test.make ~count:100 ~name:"merge is associative"
    QCheck2.Gen.(
      triple (gen_profile_for "deadbeef") (gen_profile_for "deadbeef")
        (gen_profile_for "deadbeef"))
    (fun (a, b, c) ->
      Pgo.equal
        (Pgo.merge a (Pgo.merge b c))
        (Pgo.merge (Pgo.merge a b) c))

let prop_merge_idempotent =
  QCheck2.Test.make ~count:100 ~name:"merge is idempotent"
    (gen_profile_for "deadbeef")
    (fun p -> Pgo.equal p (Pgo.merge p p))

let prop_generation_content_keyed =
  QCheck2.Test.make ~count:100
    ~name:"equal profiles have equal generations; re-merge keeps them"
    QCheck2.Gen.(pair (gen_profile_for "deadbeef") (gen_profile_for "deadbeef"))
    (fun (a, b) ->
      let m = Pgo.merge a b in
      String.equal (Pgo.generation m) (Pgo.generation (Pgo.merge m a)))

let test_merge_rejects_other_image () =
  let a = Pgo.empty "aaaa" and b = Pgo.empty "bbbb" in
  match Pgo.merge a b with
  | _ -> Alcotest.fail "merge across images must raise"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Corruption: every malformed shape raises Bad_profile *)

let raises_bad_profile what b =
  match Pgo.of_bytes b with
  | _ -> Alcotest.fail (what ^ ": expected Bad_profile")
  | exception Pgo.Bad_profile _ -> ()

let sample_profile () =
  let run =
    Pgo.make_run ~source:Pgo.Fleet ~input:"9" ~total_insns:1234
      [
        {
          Pgo.l_lid = 2; l_self_insns = 100; l_invocations = 3;
          l_iterations = 30; l_observed = true; l_dep = true;
          l_checks_passed = 0; l_checks_failed = 0; l_commits = 0;
          l_aborts = 0; l_fallbacks = 0; l_par_work = 0; l_par_cost = 0;
          l_demotions = 0; l_promotions = 0; l_sampled_dep = false;
        };
      ]
  in
  Pgo.add (Pgo.empty "feedface") run

let test_corrupt_bytes_raise () =
  let good = Pgo.to_bytes (sample_profile ()) in
  raises_bad_profile "truncated"
    (Bytes.sub good 0 (Bytes.length good - 5));
  let flipped = Bytes.copy good in
  let last = Bytes.length flipped - 1 in
  Bytes.set flipped last
    (Char.chr (Char.code (Bytes.get flipped last) lxor 0xff));
  raises_bad_profile "payload bit-flip" flipped;
  raises_bad_profile "garbage" (Bytes.of_string "not a profile at all");
  let wrong_version =
    let s = Bytes.to_string good in
    let nl = String.index s '\n' in
    let nl2 = String.index_from s (nl + 1) '\n' in
    Bytes.of_string
      (String.sub s 0 (nl + 1) ^ "99.99.99" ^ String.sub s nl2
         (String.length s - nl2))
  in
  raises_bad_profile "wrong version" wrong_version

(* A corrupt store entry is counted, treated exactly as absent, and
   overwritten (repaired) by the next save. *)
let test_store_corruption_is_absence () =
  let dir = Filename.temp_file "janus-pgo" "" in
  Sys.remove dir;
  let store = Pgo.Store.open_ dir in
  let p = sample_profile () in
  ignore (Pgo.Store.save store p);
  let path = Filename.concat dir "feedface.jprof" in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "JPROF1\ngarbage follows\n");
  Alcotest.(check (option bool))
    "corrupt entry loads as absent" None
    (Option.map (fun _ -> true) (Pgo.Store.load store ~image:"feedface"));
  Alcotest.(check int) "corruption counted" 1 (Pgo.Store.errors store);
  (* saving over the corrupt file repairs it: the merge starts from
     empty, exactly as if the file had never existed (save's own read
     of the corrupt file counts one more error) *)
  let merged = Pgo.Store.save store p in
  Alcotest.(check int) "repair keeps only the new runs" 1 (Pgo.runs merged);
  let errs_after_save = Pgo.Store.errors store in
  (match Pgo.Store.load store ~image:"feedface" with
  | Some back -> Alcotest.(check bool) "repaired" true (Pgo.equal back merged)
  | None -> Alcotest.fail "store not repaired");
  Alcotest.(check int) "no new errors once repaired" errs_after_save
    (Pgo.Store.errors store)

(* ------------------------------------------------------------------ *)
(* Pruning *)

let age_file path seconds_ago =
  let t = Unix.gettimeofday () -. float_of_int seconds_ago in
  Unix.utimes path t t

let test_prune_age_and_liveness () =
  let dir = Filename.temp_file "janus-pgo" "" in
  Sys.remove dir;
  let writer = Pgo.Store.open_ dir in
  ignore (Pgo.Store.save writer (Pgo.add (Pgo.empty "aaaa1111") (Pgo.make_run ~source:Pgo.Fleet ~input:"1" ~total_insns:1 [])));
  ignore (Pgo.Store.save writer (Pgo.add (Pgo.empty "bbbb2222") (Pgo.make_run ~source:Pgo.Fleet ~input:"2" ~total_insns:2 [])));
  age_file (Filename.concat dir "aaaa1111.jprof") 50_000;
  age_file (Filename.concat dir "bbbb2222.jprof") 50_000;
  (* the writing process protects its own entries, however old *)
  Alcotest.(check int) "live entries survive" 0
    (Pgo.Store.prune ~max_age:3600 writer);
  (* a fresh process (empty written-set) prunes them *)
  let reaper = Pgo.Store.open_ dir in
  Alcotest.(check int) "stale entries pruned" 2
    (Pgo.Store.prune ~max_age:3600 reaper);
  Alcotest.(check bool) "files gone" false
    (Sys.file_exists (Filename.concat dir "aaaa1111.jprof"))

let test_prune_bytes_oldest_first () =
  let dir = Filename.temp_file "janus-pgo" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let mk name age =
    let path = Filename.concat dir name in
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (String.make 100 'x'));
    age_file path age
  in
  mk "old.jart" 300;
  mk "mid.jart" 200;
  mk "new.jart" 100;
  mk "other.txt" 400;
  (* 300 bytes of .jart; fitting 250 needs exactly the oldest gone,
     and the foreign extension is never touched *)
  let deleted = Pipeline.prune_dir ~max_bytes:250 ~exts:[ ".jart" ] dir in
  Alcotest.(check int) "oldest pruned" 1 deleted;
  Alcotest.(check bool) "newest survives" true
    (Sys.file_exists (Filename.concat dir "new.jart"));
  Alcotest.(check bool) "oldest gone" false
    (Sys.file_exists (Filename.concat dir "old.jart"));
  Alcotest.(check bool) "other extensions untouched" true
    (Sys.file_exists (Filename.concat dir "other.txt"));
  (* protect wins over the byte budget *)
  mk "keep.jart" 500;
  let deleted =
    Pipeline.prune_dir ~max_bytes:0
      ~protect:(fun p -> Filename.basename p = "keep.jart")
      ~exts:[ ".jart" ] dir
  in
  Alcotest.(check int) "unprotected pruned" 2 deleted;
  Alcotest.(check bool) "protected survives" true
    (Sys.file_exists (Filename.concat dir "keep.jart"))

(* ------------------------------------------------------------------ *)
(* Governor warm start *)

let test_register_suspect_starts_probation () =
  let g = Adapt.create () in
  Adapt.register_suspect g 7;
  Alcotest.(check (option string)) "suspect starts in probation"
    (Some "probation")
    (Option.map Adapt.state_name (Adapt.state g 7));
  Adapt.register g 8 ~profiled:true;
  Alcotest.(check (option string)) "profiled loop starts parallel"
    (Some "parallel")
    (Option.map Adapt.state_name (Adapt.state g 8));
  (* re-registration is a no-op either way round *)
  Adapt.register g 7 ~profiled:true;
  Adapt.register_suspect g 8;
  Alcotest.(check (option string)) "suspect unchanged" (Some "probation")
    (Option.map Adapt.state_name (Adapt.state g 7));
  Alcotest.(check (option string)) "parallel unchanged" (Some "parallel")
    (Option.map Adapt.state_name (Adapt.state g 8))

(* ------------------------------------------------------------------ *)
(* End-to-end: fleet evidence flips a verdict and re-derives the
   schedule *)

(* adv.alias in miniature: call sites are disjoint for the first 4
   invocations, then alias — training at scale 2 sees no dependence,
   a fleet run at scale 12 does *)
let alias_kernel =
  "void kernel(double *src, double *dst, int n) {\n\
   \  for (int i = 0; i < n; i++) {\n\
   \    dst[i + 1] = src[i] * 0.5 + dst[i + 1] * 0.25;\n\
   \  }\n\
   }\n\
   int main() {\n\
   \  int iters = read_int();\n\
   \  int n = 64;\n\
   \  double *a = alloc_double(n + 1);\n\
   \  double *b = alloc_double(n + 1);\n\
   \  for (int i = 0; i <= n; i++) {\n\
   \    a[i] = (double)(i % 7) * 0.25;\n\
   \    b[i] = (double)(i % 5) * 0.5;\n\
   \  }\n\
   \  double acc = 0.0;\n\
   \  for (int t = 0; t < iters; t++) {\n\
   \    if (t < 4) { kernel(a, b, n); } else { kernel(b, b, n); }\n\
   \    acc = acc * 0.5 + b[n] + b[n / 2];\n\
   \  }\n\
   \  print_float(acc);\n\
   \  return 0;\n\
   }"

(* the miniature kernel's per-invocation work (~1k instructions) sits
   below the default 2500-instruction profitability floor; lower it so
   selection is decided by the dependence verdicts under test *)
let test_cfg = Janus.config ~work_threshold:500.0 ()

let with_store f =
  let dir = Filename.temp_file "janus-pgo" "" in
  Sys.remove dir;
  f (Pgo.Store.open_ dir)

let test_evidence_flips_selection () =
  with_store (fun store ->
      let pstore = Pipeline.store () in
      let img = Pipeline.compile ~store:pstore alias_kernel in
      let image_k = Pipeline.image_key img in
      let baseline = Janus.prepare ~cfg:test_cfg ~train_input:[ 2L ] ~store:pstore img in
      let base_sel =
        List.map
          (fun ((r : Janus.Loopanal.report), _) ->
            r.Janus.Loopanal.loop.Janus_analysis.Looptree.lid)
          baseline.Janus.p_selection.Janus.chosen
      in
      Alcotest.(check bool) "training selects the kernel loop" true
        (base_sel <> []);
      (* one fleet member at the aliasing scale *)
      let merged = Pgo.collect ~store ~input:[ 12L ] img in
      Alcotest.(check int) "one run stored" 1 (Pgo.runs merged);
      (* re-collection is idempotent: the run is content-addressed *)
      let again = Pgo.collect ~store ~input:[ 12L ] img in
      Alcotest.(check int) "re-collection dedups" 1 (Pgo.runs again);
      let ev =
        match Pgo.Store.evidence_for store ~image:image_k with
        | Some e -> e
        | None -> Alcotest.fail "no evidence after collect"
      in
      Alcotest.(check bool) "aggregate flags a dependence" true
        (List.exists
           (fun a -> a.Pgo.a_verdict = Pgo.V_dep)
           (Pgo.aggregate merged));
      let informed =
        Janus.prepare ~cfg:test_cfg ~train_input:[ 2L ] ~evidence:ev
          ~store:pstore img
      in
      let inf_sel =
        List.map
          (fun ((r : Janus.Loopanal.report), _) ->
            r.Janus.Loopanal.loop.Janus_analysis.Looptree.lid)
          informed.Janus.p_selection.Janus.chosen
      in
      Alcotest.(check bool) "evidence deselects the aliasing loop" true
        (List.length inf_sel < List.length base_sel);
      (* the informed schedule still computes the right answer *)
      let native = Janus.run_native ~input:[ 12L ] img in
      let run = Janus.run_parallel ~cfg:test_cfg ~input:[ 12L ] informed in
      Alcotest.(check string) "output matches native"
        native.Janus.output run.Janus.output;
      (* same evidence twice: the generation-keyed schedule is cached *)
      let before = (Pipeline.cache_stats pstore).Pipeline.misses in
      let again =
        Janus.prepare ~cfg:test_cfg ~train_input:[ 2L ] ~evidence:ev
          ~store:pstore img
      in
      Alcotest.(check int) "same generation hits the schedule cache" before
        (Pipeline.cache_stats pstore).Pipeline.misses;
      Alcotest.(check string) "cached schedule byte-identical"
        (Bytes.to_string
           (Janus.Schedule.to_bytes informed.Janus.p_schedule))
        (Bytes.to_string (Janus.Schedule.to_bytes again.Janus.p_schedule)))

let test_iterate_converges () =
  with_store (fun store ->
      let img =
        Pipeline.compile ~store:(Pipeline.store ~enabled:false ()) alias_kernel
      in
      let outcome =
        Pgo.Iterate.run ~cfg:test_cfg ~max_rounds:4 ~store ~train_input:[ 2L ]
          ~fleet:[ [ 12L ] ] ~input:[ 12L ] img
      in
      Alcotest.(check bool) "converged" true outcome.Pgo.Iterate.o_converged;
      Alcotest.(check bool) "at least two rounds" true
        (List.length outcome.Pgo.Iterate.o_rounds >= 2);
      let round1 = List.nth outcome.Pgo.Iterate.o_rounds 1 in
      Alcotest.(check bool) "round 1 flipped a verdict" true
        (round1.Pgo.Iterate.rd_flipped <> []);
      let round0 = List.hd outcome.Pgo.Iterate.o_rounds in
      Alcotest.(check bool) "round 1 re-derived the schedule" true
        (not
           (String.equal round0.Pgo.Iterate.rd_schedule_md5
              round1.Pgo.Iterate.rd_schedule_md5)))

(* ------------------------------------------------------------------ *)
(* Daemon: upload, evidence-fed answers, restart *)

let sock_counter = ref 0

let fresh_socket () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "janus-pgo-%d-%d.sock" (Unix.getpid ()) !sock_counter)

let with_server ?profile_dir f =
  let socket = fresh_socket () in
  let server =
    Served.create_server ~store:(Pipeline.store ()) ?profile_dir ~socket ()
  in
  let d = Domain.spawn (fun () -> Served.serve server) in
  Fun.protect
    ~finally:(fun () -> Domain.join d)
    (fun () ->
      let finish () =
        let c = Served.connect ~socket in
        Served.shutdown c;
        Served.disconnect c
      in
      Fun.protect ~finally:finish (fun () -> f socket))

let test_daemon_upload_and_restart () =
  let profile_dir = Filename.temp_file "janus-pgo" "" in
  Sys.remove profile_dir;
  let img =
    Pipeline.compile ~store:(Pipeline.store ~enabled:false ()) alias_kernel
  in
  (* the fleet member's profile, serialised exactly as a remote
     producer would ship it *)
  let payload =
    with_store (fun tmp ->
        Pgo.to_bytes (Pgo.collect ~store:tmp ~input:[ 12L ] img))
  in
  let first_reply = ref None in
  with_server ~profile_dir (fun socket ->
      let c = Served.connect ~socket in
      Fun.protect
        ~finally:(fun () -> Served.disconnect c)
        (fun () ->
          let before = Served.schedule c ~cfg:test_cfg ~train_input:[ 2L ] img in
          Alcotest.(check string) "no evidence before upload" ""
            before.Served.s_generation;
          let up = Served.upload c payload in
          Alcotest.(check int) "one run ingested" 1 up.Served.u_runs;
          Alcotest.(check int) "one run stored" 1 up.Served.u_total_runs;
          let after = Served.schedule c ~cfg:test_cfg ~train_input:[ 2L ] img in
          Alcotest.(check bool) "evidence-fed answer carries a generation"
            true
            (after.Served.s_generation <> "");
          Alcotest.(check bool) "evidence changed the schedule" true
            (not
               (Bytes.equal before.Served.s_schedule after.Served.s_schedule));
          first_reply := Some after;
          let m = Served.metrics c in
          let count name =
            match List.assoc_opt name m with Some v -> v | None -> 0
          in
          Alcotest.(check int) "pgo.ingested counted" 1 (count "pgo.ingested");
          Alcotest.(check int) "pgo.runs counted" 1 (count "pgo.runs");
          Alcotest.(check int) "pgo.store.errors clean" 0
            (count "pgo.store.errors")));
  (* a restarted daemon (fresh pipeline store) answers from the same
     aggregate: byte-identical schedule, same generation *)
  with_server ~profile_dir (fun socket ->
      let c = Served.connect ~socket in
      Fun.protect
        ~finally:(fun () -> Served.disconnect c)
        (fun () ->
          let again = Served.schedule c ~cfg:test_cfg ~train_input:[ 2L ] img in
          match !first_reply with
          | None -> Alcotest.fail "first run recorded no reply"
          | Some first ->
            Alcotest.(check string) "restart serves the merged schedule"
              (Bytes.to_string first.Served.s_schedule)
              (Bytes.to_string again.Served.s_schedule);
            Alcotest.(check string) "same generation"
              first.Served.s_generation again.Served.s_generation))

let test_daemon_refuses_upload_without_store () =
  with_server (fun socket ->
      let c = Served.connect ~socket in
      Fun.protect
        ~finally:(fun () -> Served.disconnect c)
        (fun () ->
          let payload = Pgo.to_bytes (sample_profile ()) in
          match Served.upload c payload with
          | _ -> Alcotest.fail "upload without --profile-dir must fail"
          | exception Failure _ -> ()))

let tests =
  [
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_merge_commutative;
    QCheck_alcotest.to_alcotest prop_merge_associative;
    QCheck_alcotest.to_alcotest prop_merge_idempotent;
    QCheck_alcotest.to_alcotest prop_generation_content_keyed;
    Alcotest.test_case "merge rejects mismatched images" `Quick
      test_merge_rejects_other_image;
    Alcotest.test_case "corrupt bytes raise Bad_profile" `Quick
      test_corrupt_bytes_raise;
    Alcotest.test_case "store treats corruption as absence and repairs"
      `Quick test_store_corruption_is_absence;
    Alcotest.test_case "prune honours age and protects live writes" `Quick
      test_prune_age_and_liveness;
    Alcotest.test_case "prune_dir deletes oldest first within byte budget"
      `Quick test_prune_bytes_oldest_first;
    Alcotest.test_case "register_suspect warm-starts in probation" `Quick
      test_register_suspect_starts_probation;
    Alcotest.test_case "fleet evidence flips selection end-to-end" `Slow
      test_evidence_flips_selection;
    Alcotest.test_case "iterate converges on the alias kernel" `Slow
      test_iterate_converges;
    Alcotest.test_case "daemon ingests uploads and survives restart" `Slow
      test_daemon_upload_and_restart;
    Alcotest.test_case "daemon refuses uploads without a profile store"
      `Quick test_daemon_refuses_upload_without_store;
  ]
