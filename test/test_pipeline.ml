(* Tests for the staged pipeline's artifact store: warm (cached) runs
   must be bit-identical to cold runs, execute-stage parameters must
   not enter static cache keys, and the domain-parallel evaluation
   harness must produce the same rows as a sequential one. *)

open Janus_core
module Pool = Janus_pool.Pool
module Jcc = Janus_jcc.Jcc
module Obs = Janus_obs.Obs

let kernel =
  "double x[4096]; double y[4096];\n\
   int main() {\n\
   \  for (int i = 0; i < 4096; i++) { x[i] = (double)(i % 23); }\n\
   \  for (int i = 0; i < 4096; i++) { y[i] = x[i] * 1.5 + 2.0; }\n\
   \  double s = 0.0;\n\
   \  for (int i = 0; i < 4096; i++) { s += y[i]; }\n\
   \  print_float(s);\n\
   \  return 0;\n\
   }"

(* everything in a result except the metrics registry (a fresh [Obs.t]
   per run, never structurally comparable) *)
let comparable (r : Janus.result) =
  ( (r.Janus.output, r.Janus.exit_code, r.Janus.cycles, r.Janus.icount),
    (r.Janus.breakdown, r.Janus.stats, r.Janus.schedule_size,
     r.Janus.executable_size),
    (r.Janus.selected_loops, r.Janus.demoted_loops, r.Janus.checks_per_loop,
     r.Janus.stm_commits, r.Janus.stm_aborts, r.Janus.aborted) )

let check_same_result name a b =
  Alcotest.(check bool) name true (comparable a = comparable b)

let test_warm_run_equals_cold_run () =
  let store = Pipeline.store () in
  let img = Pipeline.compile ~store kernel in
  let cold = Janus.parallelise ~store img in
  let misses_after_cold = (Pipeline.cache_stats store).Pipeline.misses in
  let warm = Janus.parallelise ~store img in
  let stats = Pipeline.cache_stats store in
  Alcotest.(check bool) "warm run hit the cache" true
    (stats.Pipeline.hits > 0);
  Alcotest.(check int) "warm run recomputed nothing" misses_after_cold
    stats.Pipeline.misses;
  check_same_result "warm = cold, bit for bit" cold warm;
  Alcotest.(check bool) "the run parallelised something" true
    (cold.Janus.selected_loops <> [])

let test_threads_not_in_static_keys () =
  let store = Pipeline.store () in
  let img = Pipeline.compile ~store kernel in
  let p8 = Janus.prepare ~cfg:(Janus.config ~threads:8 ()) ~store img in
  let misses = (Pipeline.cache_stats store).Pipeline.misses in
  (* thread count (and tracing) are execute-stage parameters: sweeping
     them must reuse every static artifact, as fig8/fig9 do *)
  let p2 =
    Janus.prepare ~cfg:(Janus.config ~threads:2 ~trace:true ()) ~store img
  in
  let stats = Pipeline.cache_stats store in
  Alcotest.(check int) "no new misses across a thread sweep" misses
    stats.Pipeline.misses;
  Alcotest.(check bool) "the sweep hit the cache" true
    (stats.Pipeline.hits > 0);
  Alcotest.(check bool) "same schedule object" true
    (p8.Janus.p_schedule == p2.Janus.p_schedule)

let test_selection_fields_are_in_schedule_key () =
  let store = Pipeline.store () in
  let img = Pipeline.compile ~store kernel in
  let full = Janus.prepare ~cfg:(Janus.config ()) ~store img in
  let static_only =
    Janus.prepare
      ~cfg:(Janus.config ~use_profile:false ~use_checks:false ())
      ~store img
  in
  (* different selection inputs must not collide on one cached schedule;
     the analysis itself is still shared *)
  Alcotest.(check bool) "distinct schedules" true
    (full.Janus.p_schedule != static_only.Janus.p_schedule);
  Alcotest.(check bool) "analysis shared" true
    (full.Janus.p_analysis == static_only.Janus.p_analysis)

let test_disabled_store_never_caches () =
  let store = Pipeline.store ~enabled:false () in
  let img = Pipeline.compile ~store kernel in
  let a = Janus.parallelise ~store img in
  let b = Janus.parallelise ~store img in
  let stats = Pipeline.cache_stats store in
  Alcotest.(check int) "no hits" 0 stats.Pipeline.hits;
  Alcotest.(check bool) "misses counted" true (stats.Pipeline.misses > 0);
  check_same_result "recomputed artifacts are deterministic" a b

let test_compile_key_includes_options () =
  let store = Pipeline.store () in
  let img1 = Pipeline.compile ~store kernel in
  let img2 = Pipeline.compile ~store kernel in
  Alcotest.(check bool) "same options hit" true (img1 == img2);
  let o2 =
    Pipeline.compile ~store ~options:{ Jcc.default_options with opt = 2 }
      kernel
  in
  Alcotest.(check bool) "different options miss" true (img1 != o2)

let test_publish_metrics_counters () =
  let store = Pipeline.store () in
  let img = Pipeline.compile ~store kernel in
  ignore (Janus.prepare ~store img);
  ignore (Janus.prepare ~store img);
  let obs = Obs.create () in
  Pipeline.publish_metrics store obs;
  let c = Obs.counter obs in
  let stats = Pipeline.cache_stats store in
  Alcotest.(check int) "pipeline.cache.hits" stats.Pipeline.hits
    (c "pipeline.cache.hits");
  Alcotest.(check int) "pipeline.cache.misses" stats.Pipeline.misses
    (c "pipeline.cache.misses");
  Alcotest.(check int) "per-kind counters sum to the total"
    (c "pipeline.cache.hits")
    (c "pipeline.cache.image.hits" + c "pipeline.cache.analysis.hits"
     + c "pipeline.cache.coverage.hits" + c "pipeline.cache.deps.hits"
     + c "pipeline.cache.schedule.hits")

(* ---- the persistent layer ---- *)

let temp_counter = ref 0

let fresh_dir () =
  incr temp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "janus-store-test-%d-%d" (Unix.getpid ()) !temp_counter)
  in
  if Sys.file_exists d then
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
  d

let schedule_bytes (p : Janus.prepared) =
  Bytes.to_string (Janus_schedule.Schedule.to_bytes p.Janus.p_schedule)

let test_persistent_round_trip () =
  let dir = fresh_dir () in
  (* cold process: compute and publish to disk *)
  let s1 = Pipeline.store ~dir () in
  let img = Pipeline.compile ~store:s1 kernel in
  let p1 = Janus.prepare ~store:s1 img in
  (* fresh store over the same directory = a restarted process with an
     empty memory layer: everything must come back from disk, and come
     back byte-identical *)
  let s2 = Pipeline.store ~dir () in
  let img2 = Pipeline.compile ~store:s2 kernel in
  let p2 = Janus.prepare ~store:s2 img2 in
  let stats = Pipeline.cache_stats s2 in
  Alcotest.(check int) "warm restart recomputed nothing" 0
    stats.Pipeline.misses;
  Alcotest.(check bool) "warm restart hit" true (stats.Pipeline.hits > 0);
  let disk_hits =
    List.fold_left
      (fun a (k : Pipeline.kind_stat) -> a + k.Pipeline.k_disk_hits)
      0 (Pipeline.kind_stats s2)
  in
  Alcotest.(check bool) "hits came from disk" true (disk_hits > 0);
  Alcotest.(check string) "schedule byte-identical across processes"
    (schedule_bytes p1) (schedule_bytes p2);
  Alcotest.(check string) "image byte-identical across processes"
    (Bytes.to_string (Janus_vx.Image.to_bytes img))
    (Bytes.to_string (Janus_vx.Image.to_bytes img2))

let test_corrupt_entry_is_miss () =
  let dir = fresh_dir () in
  let s1 = Pipeline.store ~dir () in
  let img = Pipeline.compile ~store:s1 kernel in
  let p1 = Janus.prepare ~store:s1 img in
  (* vandalise the on-disk layer: truncate one entry, fill another with
     garbage — loads must degrade to misses, never crash or return a
     wrong artifact *)
  let entries =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".jart")
    |> List.sort compare
  in
  (match entries with
   | a :: b :: _ ->
     let truncate path =
       let n = (Unix.stat path).Unix.st_size in
       Unix.truncate path (n / 2)
     in
     truncate (Filename.concat dir a);
     let oc = open_out_bin (Filename.concat dir b) in
     output_string oc "this is not an artifact";
     close_out oc
   | _ -> Alcotest.fail "expected at least two persisted entries");
  let s2 = Pipeline.store ~dir () in
  let img2 = Pipeline.compile ~store:s2 kernel in
  let p2 = Janus.prepare ~store:s2 img2 in
  Alcotest.(check string) "recomputed result identical"
    (schedule_bytes p1) (schedule_bytes p2);
  let stats2 = Pipeline.cache_stats s2 in
  Alcotest.(check bool) "corrupt entries recomputed" true
    (stats2.Pipeline.misses > 0);
  let disk_errors =
    List.fold_left
      (fun a (k : Pipeline.kind_stat) -> a + k.Pipeline.k_disk_errors)
      0 (Pipeline.kind_stats s2)
  in
  Alcotest.(check int) "both vandalised entries detected" 2 disk_errors;
  (* the recomputation overwrote the bad entries: a third store is
     fully warm again *)
  let s3 = Pipeline.store ~dir () in
  ignore (Janus.prepare ~store:s3 (Pipeline.compile ~store:s3 kernel));
  Alcotest.(check int) "repaired store is warm" 0
    (Pipeline.cache_stats s3).Pipeline.misses

let test_concurrent_writers_no_torn_entry () =
  let dir = fresh_dir () in
  (* two domains race whole pipelines over separate stores sharing one
     directory: atomic temp+rename publication means a reader can never
     observe a half-written entry, whoever wins each rename *)
  let run () =
    let s = Pipeline.store ~dir () in
    let img = Pipeline.compile ~store:s kernel in
    schedule_bytes (Janus.prepare ~store:s img)
  in
  let d1 = Domain.spawn run and d2 = Domain.spawn run in
  let b1 = Domain.join d1 and b2 = Domain.join d2 in
  Alcotest.(check string) "racing writers agree" b1 b2;
  let s = Pipeline.store ~dir () in
  let img = Pipeline.compile ~store:s kernel in
  let b3 = schedule_bytes (Janus.prepare ~store:s img) in
  Alcotest.(check int) "surviving entries all load" 0
    (Pipeline.cache_stats s).Pipeline.misses;
  Alcotest.(check string) "surviving entries byte-identical" b1 b3

let test_disk_counters_published () =
  let dir = fresh_dir () in
  let s1 = Pipeline.store ~dir () in
  ignore (Janus.prepare ~store:s1 (Pipeline.compile ~store:s1 kernel));
  let s2 = Pipeline.store ~dir () in
  ignore (Janus.prepare ~store:s2 (Pipeline.compile ~store:s2 kernel));
  let obs = Obs.create () in
  Pipeline.publish_metrics s2 obs;
  let c = Obs.counter obs in
  let per_kind = Pipeline.kind_stats s2 in
  let sum f = List.fold_left (fun a k -> a + f k) 0 per_kind in
  Alcotest.(check int) "pipeline.cache.disk.hits"
    (sum (fun (k : Pipeline.kind_stat) -> k.Pipeline.k_disk_hits))
    (c "pipeline.cache.disk.hits");
  Alcotest.(check int) "pipeline.cache.disk.errors"
    (sum (fun (k : Pipeline.kind_stat) -> k.Pipeline.k_disk_errors))
    (c "pipeline.cache.disk.errors");
  Alcotest.(check bool) "disk hits visible" true
    (c "pipeline.cache.disk.hits" > 0);
  Alcotest.(check int) "total hits include disk hits"
    (Pipeline.cache_stats s2).Pipeline.hits
    (c "pipeline.cache.hits")

(* ---- function-level sharding ---- *)

let test_sharded_analysis_identical () =
  let module Analysis = Janus_analysis.Analysis in
  let img = Pipeline.compile ~store:(Pipeline.store ()) kernel in
  let seq = Analysis.analyse_image img in
  let par =
    Pool.with_pool ~jobs:4 (fun pool -> Analysis.analyse_image ~pool img)
  in
  Alcotest.(check string) "summaries identical"
    (Fmt.str "%a" Analysis.pp_summary seq)
    (Fmt.str "%a" Analysis.pp_summary par);
  Alcotest.(check string) "whole analysis structurally identical"
    (Digest.to_hex (Digest.bytes (Marshal.to_bytes seq [])))
    (Digest.to_hex (Digest.bytes (Marshal.to_bytes par [])))

let test_sharded_verifier_identical () =
  let module Verify = Janus_verify.Verify in
  let store = Pipeline.store () in
  let img = Pipeline.compile ~store kernel in
  let p = Janus.prepare ~store img in
  let render fs = String.concat "\n" (List.map (Fmt.str "%a" Verify.pp_finding) fs) in
  let seq = Verify.lint img p.Janus.p_schedule in
  let par =
    Pool.with_pool ~jobs:4 (fun pool ->
        Verify.lint ~pool img p.Janus.p_schedule)
  in
  Alcotest.(check string) "findings identical and in the same order"
    (render seq) (render par)

(* the in-process analogue of CI's `janus_eval all --jobs 1` vs
   `--jobs 4` byte-diff, on the cheapest experiment that touches every
   benchmark: rows and rendered text must match exactly *)
let test_parallel_harness_matches_sequential () =
  let seq = Eval.table1 ~ctx:(Eval.ctx ~store:(Pipeline.store ()) ()) () in
  let par =
    Pool.with_pool ~jobs:3 (fun pool ->
        Eval.table1 ~ctx:(Eval.ctx ~store:(Pipeline.store ()) ~pool ()) ())
  in
  Alcotest.(check bool) "rows identical" true (seq = par);
  Alcotest.(check string) "rendered output identical"
    (Fmt.str "%a" Eval.pp_table1 seq)
    (Fmt.str "%a" Eval.pp_table1 par)

let tests =
  [
    Alcotest.test_case "warm run equals cold run" `Quick
      test_warm_run_equals_cold_run;
    Alcotest.test_case "threads stay out of static keys" `Quick
      test_threads_not_in_static_keys;
    Alcotest.test_case "selection fields key the schedule" `Quick
      test_selection_fields_are_in_schedule_key;
    Alcotest.test_case "disabled store never caches" `Quick
      test_disabled_store_never_caches;
    Alcotest.test_case "compile key includes options" `Quick
      test_compile_key_includes_options;
    Alcotest.test_case "publish_metrics matches cache_stats" `Quick
      test_publish_metrics_counters;
    Alcotest.test_case "parallel harness = sequential harness" `Quick
      test_parallel_harness_matches_sequential;
    Alcotest.test_case "persistent store round-trips across processes" `Quick
      test_persistent_round_trip;
    Alcotest.test_case "corrupt disk entry is a miss, not a crash" `Quick
      test_corrupt_entry_is_miss;
    Alcotest.test_case "concurrent writers never tear an entry" `Quick
      test_concurrent_writers_no_torn_entry;
    Alcotest.test_case "disk counters published to obs" `Quick
      test_disk_counters_published;
    Alcotest.test_case "sharded analysis identical to sequential" `Quick
      test_sharded_analysis_identical;
    Alcotest.test_case "sharded verifier identical to sequential" `Quick
      test_sharded_verifier_identical;
  ]
