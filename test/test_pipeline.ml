(* Tests for the staged pipeline's artifact store: warm (cached) runs
   must be bit-identical to cold runs, execute-stage parameters must
   not enter static cache keys, and the domain-parallel evaluation
   harness must produce the same rows as a sequential one. *)

open Janus_core
module Pool = Janus_pool.Pool
module Jcc = Janus_jcc.Jcc
module Obs = Janus_obs.Obs

let kernel =
  "double x[4096]; double y[4096];\n\
   int main() {\n\
   \  for (int i = 0; i < 4096; i++) { x[i] = (double)(i % 23); }\n\
   \  for (int i = 0; i < 4096; i++) { y[i] = x[i] * 1.5 + 2.0; }\n\
   \  double s = 0.0;\n\
   \  for (int i = 0; i < 4096; i++) { s += y[i]; }\n\
   \  print_float(s);\n\
   \  return 0;\n\
   }"

(* everything in a result except the metrics registry (a fresh [Obs.t]
   per run, never structurally comparable) *)
let comparable (r : Janus.result) =
  ( (r.Janus.output, r.Janus.exit_code, r.Janus.cycles, r.Janus.icount),
    (r.Janus.breakdown, r.Janus.stats, r.Janus.schedule_size,
     r.Janus.executable_size),
    (r.Janus.selected_loops, r.Janus.demoted_loops, r.Janus.checks_per_loop,
     r.Janus.stm_commits, r.Janus.stm_aborts, r.Janus.aborted) )

let check_same_result name a b =
  Alcotest.(check bool) name true (comparable a = comparable b)

let test_warm_run_equals_cold_run () =
  let store = Pipeline.store () in
  let img = Pipeline.compile ~store kernel in
  let cold = Janus.parallelise ~store img in
  let misses_after_cold = (Pipeline.cache_stats store).Pipeline.misses in
  let warm = Janus.parallelise ~store img in
  let stats = Pipeline.cache_stats store in
  Alcotest.(check bool) "warm run hit the cache" true
    (stats.Pipeline.hits > 0);
  Alcotest.(check int) "warm run recomputed nothing" misses_after_cold
    stats.Pipeline.misses;
  check_same_result "warm = cold, bit for bit" cold warm;
  Alcotest.(check bool) "the run parallelised something" true
    (cold.Janus.selected_loops <> [])

let test_threads_not_in_static_keys () =
  let store = Pipeline.store () in
  let img = Pipeline.compile ~store kernel in
  let p8 = Janus.prepare ~cfg:(Janus.config ~threads:8 ()) ~store img in
  let misses = (Pipeline.cache_stats store).Pipeline.misses in
  (* thread count (and tracing) are execute-stage parameters: sweeping
     them must reuse every static artifact, as fig8/fig9 do *)
  let p2 =
    Janus.prepare ~cfg:(Janus.config ~threads:2 ~trace:true ()) ~store img
  in
  let stats = Pipeline.cache_stats store in
  Alcotest.(check int) "no new misses across a thread sweep" misses
    stats.Pipeline.misses;
  Alcotest.(check bool) "the sweep hit the cache" true
    (stats.Pipeline.hits > 0);
  Alcotest.(check bool) "same schedule object" true
    (p8.Janus.p_schedule == p2.Janus.p_schedule)

let test_selection_fields_are_in_schedule_key () =
  let store = Pipeline.store () in
  let img = Pipeline.compile ~store kernel in
  let full = Janus.prepare ~cfg:(Janus.config ()) ~store img in
  let static_only =
    Janus.prepare
      ~cfg:(Janus.config ~use_profile:false ~use_checks:false ())
      ~store img
  in
  (* different selection inputs must not collide on one cached schedule;
     the analysis itself is still shared *)
  Alcotest.(check bool) "distinct schedules" true
    (full.Janus.p_schedule != static_only.Janus.p_schedule);
  Alcotest.(check bool) "analysis shared" true
    (full.Janus.p_analysis == static_only.Janus.p_analysis)

let test_disabled_store_never_caches () =
  let store = Pipeline.store ~enabled:false () in
  let img = Pipeline.compile ~store kernel in
  let a = Janus.parallelise ~store img in
  let b = Janus.parallelise ~store img in
  let stats = Pipeline.cache_stats store in
  Alcotest.(check int) "no hits" 0 stats.Pipeline.hits;
  Alcotest.(check bool) "misses counted" true (stats.Pipeline.misses > 0);
  check_same_result "recomputed artifacts are deterministic" a b

let test_compile_key_includes_options () =
  let store = Pipeline.store () in
  let img1 = Pipeline.compile ~store kernel in
  let img2 = Pipeline.compile ~store kernel in
  Alcotest.(check bool) "same options hit" true (img1 == img2);
  let o2 =
    Pipeline.compile ~store ~options:{ Jcc.default_options with opt = 2 }
      kernel
  in
  Alcotest.(check bool) "different options miss" true (img1 != o2)

let test_publish_metrics_counters () =
  let store = Pipeline.store () in
  let img = Pipeline.compile ~store kernel in
  ignore (Janus.prepare ~store img);
  ignore (Janus.prepare ~store img);
  let obs = Obs.create () in
  Pipeline.publish_metrics store obs;
  let c = Obs.counter obs in
  let stats = Pipeline.cache_stats store in
  Alcotest.(check int) "pipeline.cache.hits" stats.Pipeline.hits
    (c "pipeline.cache.hits");
  Alcotest.(check int) "pipeline.cache.misses" stats.Pipeline.misses
    (c "pipeline.cache.misses");
  Alcotest.(check int) "per-kind counters sum to the total"
    (c "pipeline.cache.hits")
    (c "pipeline.cache.image.hits" + c "pipeline.cache.analysis.hits"
     + c "pipeline.cache.coverage.hits" + c "pipeline.cache.deps.hits"
     + c "pipeline.cache.schedule.hits")

(* the in-process analogue of CI's `janus_eval all --jobs 1` vs
   `--jobs 4` byte-diff, on the cheapest experiment that touches every
   benchmark: rows and rendered text must match exactly *)
let test_parallel_harness_matches_sequential () =
  let seq = Eval.table1 ~ctx:(Eval.ctx ~store:(Pipeline.store ()) ()) () in
  let par =
    Pool.with_pool ~jobs:3 (fun pool ->
        Eval.table1 ~ctx:(Eval.ctx ~store:(Pipeline.store ()) ~pool ()) ())
  in
  Alcotest.(check bool) "rows identical" true (seq = par);
  Alcotest.(check string) "rendered output identical"
    (Fmt.str "%a" Eval.pp_table1 seq)
    (Fmt.str "%a" Eval.pp_table1 par)

let tests =
  [
    Alcotest.test_case "warm run equals cold run" `Quick
      test_warm_run_equals_cold_run;
    Alcotest.test_case "threads stay out of static keys" `Quick
      test_threads_not_in_static_keys;
    Alcotest.test_case "selection fields key the schedule" `Quick
      test_selection_fields_are_in_schedule_key;
    Alcotest.test_case "disabled store never caches" `Quick
      test_disabled_store_never_caches;
    Alcotest.test_case "compile key includes options" `Quick
      test_compile_key_includes_options;
    Alcotest.test_case "publish_metrics matches cache_stats" `Quick
      test_publish_metrics_counters;
    Alcotest.test_case "parallel harness = sequential harness" `Quick
      test_parallel_harness_matches_sequential;
  ]
