(* Tests for the differential fuzzing harness: oracle self-test,
   shrinking bounds, kernel codec round-trips, the trace-promotion
   equivalence property, and replay of every shrunk reproducer under
   test/corpus/ as a permanent regression case. *)

open Janus_vm
module Kernel = Janus_fuzz_lib.Kernel
module Gen = Janus_fuzz_lib.Gen
module Emit = Janus_fuzz_lib.Emit
module Oracle = Janus_fuzz_lib.Oracle
module Shrink = Janus_fuzz_lib.Shrink
module Dbm = Janus_dbm.Dbm

let failing k =
  Kernel.valid k
  && (match Oracle.check k with
     | Oracle.Fail _ -> true
     | Oracle.Pass | Oracle.Skip _ -> false)

(* the mislabelled kernel is the harness's own canary: the oracle must
   fail it, and the shrinker must cut it down to a tiny reproducer *)
let test_self_test_caught () =
  match Oracle.check Oracle.mislabelled with
  | Oracle.Pass -> Alcotest.fail "oracle passed the mislabelled kernel"
  | Oracle.Skip why -> Alcotest.fail ("oracle skipped mislabelled: " ^ why)
  | Oracle.Fail fs ->
    Alcotest.(check bool) "has failures" true (fs <> []);
    let small = Shrink.minimise ~still_failing:failing Oracle.mislabelled in
    Alcotest.(check bool)
      (Fmt.str "shrunk to <= 2 loops (%d)" (Kernel.loop_count small))
      true
      (Kernel.loop_count small <= 2);
    Alcotest.(check bool)
      (Fmt.str "shrunk to <= 8 statements (%d)" (Kernel.stmt_count small))
      true
      (Kernel.stmt_count small <= 8);
    Alcotest.(check bool) "shrunk kernel still fails" true (failing small)

let test_smoke_seeded () =
  let rng = Random.State.make [| 1234 |] in
  for _ = 1 to 25 do
    let k = Gen.sample rng in
    match Oracle.check k with
    | Oracle.Pass | Oracle.Skip _ -> ()
    | Oracle.Fail fs ->
      Alcotest.fail
        (Fmt.str "oracle violation on %s:@ %a" (Kernel.to_string k)
           (Fmt.list Oracle.pp_failure) fs)
  done

(* every shrunk reproducer replays forever: decode + full oracle *)
let corpus_cases =
  let dir = "corpus" in
  let files =
    match Sys.readdir dir with
    | entries ->
      List.sort String.compare
        (List.filter
           (fun f -> Filename.check_suffix f ".jfk")
           (Array.to_list entries))
    | exception Sys_error _ -> []
  in
  List.map
    (fun f ->
      Alcotest.test_case ("corpus " ^ Filename.chop_extension f) `Quick
        (fun () ->
          let text =
            In_channel.with_open_text (Filename.concat dir f)
              In_channel.input_all
          in
          let k = Kernel.of_string text in
          match Oracle.check k with
          | Oracle.Pass -> ()
          | Oracle.Skip why -> Alcotest.fail ("kernel skipped: " ^ why)
          | Oracle.Fail fs ->
            Alcotest.fail
              (Fmt.str "regression reproduced:@ %a"
                 (Fmt.list Oracle.pp_failure) fs)))
    files

(* the committed fingerprint file pins the execution core: replaying
   every corpus kernel natively must reproduce cycles, icount, exit
   code and final-memory digest byte-for-byte, so any interpreter or
   cost-model change that perturbs observable state is caught here
   (regenerate with test/tools/corpus_digest.exe after an intentional
   change) *)
let test_corpus_fingerprints () =
  let dir = "corpus" in
  let expected =
    In_channel.with_open_text
      (Filename.concat dir "digests.expected")
      In_channel.input_all
  in
  let files =
    List.sort String.compare
      (List.filter
         (fun f -> Filename.check_suffix f ".jfk")
         (Array.to_list (Sys.readdir dir)))
  in
  let got =
    String.concat ""
      (List.map
         (fun f ->
           let text =
             In_channel.with_open_text (Filename.concat dir f)
               In_channel.input_all
           in
           let k = Kernel.of_string text in
           let r = Run.run (Emit.image k) in
           Printf.sprintf "%s %d %d %d %s\n"
             (Filename.chop_extension f)
             r.Run.cycles r.Run.icount r.Run.exit_code r.Run.mem_digest)
         files)
  in
  Alcotest.(check string) "corpus fingerprints" expected got

let prop_codec_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"kernel codec round-trips"
    ~print:Kernel.to_string Gen.kernel (fun k ->
      QCheck2.assume (Kernel.valid k);
      Kernel.of_string (Kernel.to_string k) = k)

(* trace promotion must be invisible to architectural state: forcing
   promotion on every fragment (threshold 1) and disabling it entirely
   must print the same bytes and leave the same memory image *)
let run_dbm_with ~promote_threshold img =
  let prog = Program.load img in
  let dbm = Dbm.create ~promote_threshold prog in
  let cache = Dbm.new_cache Dbm.Main in
  let ctx = Run.fresh_context prog in
  (match Dbm.run dbm cache ctx with
  | `Halted -> ()
  | `Yielded -> Alcotest.fail "DBM yielded outside a parallel region"
  | `Out_of_fuel _ -> Alcotest.fail "DBM ran out of fuel");
  (Buffer.contents ctx.Machine.out, Run.mem_digest ctx, dbm.Dbm.stats)

let prop_promotion_equivalence =
  QCheck2.Test.make ~count:30 ~name:"trace promotion preserves state"
    ~print:Kernel.to_string Gen.kernel (fun k ->
      QCheck2.assume (Kernel.valid k);
      let img =
        try Emit.image k with Failure _ -> QCheck2.assume_fail ()
      in
      let out_forced, mem_forced, stats_forced =
        run_dbm_with ~promote_threshold:1 img
      in
      let out_off, mem_off, stats_off =
        run_dbm_with ~promote_threshold:max_int img
      in
      if stats_forced.Dbm.traces_built = 0 then
        QCheck2.Test.fail_report
          "threshold 1 promoted no traces (property is vacuous)";
      if stats_off.Dbm.traces_built > 0 then
        QCheck2.Test.fail_report "disabled promotion still built traces";
      String.equal out_forced out_off && String.equal mem_forced mem_off)

let tests =
  [
    Alcotest.test_case "oracle self-test caught and shrunk" `Quick
      test_self_test_caught;
    Alcotest.test_case "seeded smoke run clean" `Quick test_smoke_seeded;
    Alcotest.test_case "corpus fingerprints pinned" `Quick
      test_corpus_fingerprints;
    QCheck_alcotest.to_alcotest prop_codec_roundtrip;
    QCheck_alcotest.to_alcotest prop_promotion_equivalence;
  ]
  @ corpus_cases
