(* Tests for janus_served: an in-process daemon on a real unix socket,
   exercised by the library client. The second request for the same
   image must be answered entirely from the warm store, byte-identical;
   a garbage connection must not take the server down. *)

module Served = Janus_served_lib.Served
module Pipeline = Janus_core.Pipeline
module Jcc = Janus_jcc.Jcc
module Obs = Janus_obs.Obs

let kernel =
  "double v[2048];\n\
   int main() {\n\
   \  for (int i = 0; i < 2048; i++) { v[i] = (double)(i % 7) * 0.5; }\n\
   \  double s = 0.0;\n\
   \  for (int i = 0; i < 2048; i++) { s += v[i]; }\n\
   \  print_float(s);\n\
   \  return 0;\n\
   }"

let sock_counter = ref 0

let fresh_socket () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "janus-served-%d-%d.sock" (Unix.getpid ()) !sock_counter)

(* run [f] against a live server; create_server binds before [serve]
   runs, so connecting cannot race the listener *)
let with_server ?store f =
  let socket = fresh_socket () in
  let store = match store with Some s -> s | None -> Pipeline.store () in
  let server = Served.create_server ~store ~socket () in
  let d = Domain.spawn (fun () -> Served.serve server) in
  Fun.protect
    ~finally:(fun () -> Domain.join d)
    (fun () ->
      let finish () =
        let c = Served.connect ~socket in
        Served.shutdown c;
        Served.disconnect c
      in
      Fun.protect ~finally:finish (fun () -> f socket))

let compile_kernel () =
  (* compiled client-side so the server's store starts genuinely cold *)
  Pipeline.compile ~store:(Pipeline.store ~enabled:false ()) kernel

let test_second_answer_is_warm () =
  with_server (fun socket ->
      let img = compile_kernel () in
      let c = Served.connect ~socket in
      Fun.protect
        ~finally:(fun () -> Served.disconnect c)
        (fun () ->
          let r1 = Served.schedule c img in
          Alcotest.(check bool) "first answer is cold" false
            r1.Served.s_cache_hit;
          let r2 = Served.schedule c img in
          Alcotest.(check bool) "second answer is warm" true
            r2.Served.s_cache_hit;
          Alcotest.(check string) "warm schedule byte-identical"
            (Bytes.to_string r1.Served.s_schedule)
            (Bytes.to_string r2.Served.s_schedule);
          Alcotest.(check (list int)) "same demotions"
            r1.Served.s_demoted r2.Served.s_demoted;
          (* analysis of the scheduled image is warm too *)
          let a = Served.analyse c img in
          Alcotest.(check bool) "analysis served from store" true
            a.Served.a_cache_hit;
          Alcotest.(check bool) "analysis saw the kernel's loops" true
            (a.Served.a_loops >= 2);
          let m = Served.metrics c in
          let count name =
            match List.assoc_opt name m with Some v -> v | None -> 0
          in
          Alcotest.(check int) "served.schedule counted" 2 (count "served.schedule");
          Alcotest.(check int) "served.analyse counted" 1 (count "served.analyse");
          Alcotest.(check bool) "warm answers counted" true
            (count "served.store_hits" >= 2);
          Alcotest.(check bool) "pipeline counters forwarded" true
            (count "pipeline.cache.hits" > 0)))

let test_restart_answers_from_disk () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "janus-served-store-%d" (Unix.getpid ()))
  in
  let img = compile_kernel () in
  let ask socket =
    let c = Served.connect ~socket in
    Fun.protect
      ~finally:(fun () -> Served.disconnect c)
      (fun () -> Served.schedule c img)
  in
  let r1 = with_server ~store:(Pipeline.store ~dir ()) ask in
  (* a brand-new daemon process over the same directory: its memory
     layer is empty, yet the answer must be warm and byte-identical *)
  let r2 = with_server ~store:(Pipeline.store ~dir ()) ask in
  Alcotest.(check bool) "restarted daemon answers warm" true
    r2.Served.s_cache_hit;
  Alcotest.(check string) "restarted daemon answers identically"
    (Bytes.to_string r1.Served.s_schedule)
    (Bytes.to_string r2.Served.s_schedule)

let test_garbage_connection_survived () =
  with_server (fun socket ->
      (* a client speaking the wrong protocol: the server must drop the
         connection and keep serving the next one *)
      let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      let junk = Bytes.of_string "GET / HTTP/1.1\r\n\r\n" in
      ignore (Unix.write fd junk 0 (Bytes.length junk));
      Unix.close fd;
      let img = compile_kernel () in
      let c = Served.connect ~socket in
      Fun.protect
        ~finally:(fun () -> Served.disconnect c)
        (fun () ->
          let r = Served.schedule c img in
          Alcotest.(check bool) "real request still answered" true
            (Bytes.length r.Served.s_schedule > 0)))

let tests =
  [
    Alcotest.test_case "second answer is warm and identical" `Quick
      test_second_answer_is_warm;
    Alcotest.test_case "restarted daemon answers from disk" `Quick
      test_restart_answers_from_disk;
    Alcotest.test_case "garbage connection does not kill the server" `Quick
      test_garbage_connection_survived;
  ]
