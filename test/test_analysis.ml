(* Static-analysis tests on binaries produced by the guest compiler:
   CFG recovery, dominators, loop detection, classification. *)

open Janus_jcc
open Janus_analysis

let compile ?(options = Jcc.default_options) src = Jcc.compile ~options src

let analyse ?options src = Analysis.analyse_image (compile ?options src)

(* reports for loops inside a given function are hard to name; instead
   count classifications across the whole program *)
let count cls_name t =
  List.length
    (List.filter
       (fun (r : Loopanal.report) ->
          String.equal (Loopanal.classification_name r.Loopanal.cls) cls_name)
       t.Analysis.reports)

let doall_src =
  "int a[100]; int b[100];\n\
   int main() {\n\
   \  for (int i = 0; i < 100; i++) { a[i] = b[i] * 3 + 1; }\n\
   \  print_int(a[5]);\n\
   \  return 0;\n\
   }"

let test_cfg_recovery () =
  let img = compile doall_src in
  let cfg = Cfg.recover img in
  let funcs = Cfg.all_funcs cfg in
  (* _start and main at least *)
  Alcotest.(check bool) "at least two functions" true (List.length funcs >= 2);
  List.iter
    (fun f ->
       Alcotest.(check bool) "regular function" false f.Cfg.irregular;
       (* every block's successors exist *)
       List.iter
         (fun b ->
            List.iter
              (fun s ->
                 Alcotest.(check bool) "succ exists" true
                   (Hashtbl.mem f.Cfg.block_at s))
              b.Cfg.succs)
         f.Cfg.blocks)
    funcs

let test_dominators () =
  let img = compile doall_src in
  let cfg = Cfg.recover img in
  List.iter
    (fun f ->
       let dom = Dom.compute f in
       (* the entry dominates every block *)
       List.iter
         (fun b ->
            Alcotest.(check bool) "entry dominates" true
              (Dom.dominates dom f.Cfg.fentry b.Cfg.baddr))
         f.Cfg.blocks)
    (Cfg.all_funcs cfg)

let test_loop_detection () =
  let t = analyse doall_src in
  Alcotest.(check bool) "found loops" true (List.length t.Analysis.reports >= 1)

let test_static_doall () =
  let t = analyse doall_src in
  Alcotest.(check bool)
    (Fmt.str "static doall found: %a" Analysis.pp_summary t)
    true
    (count "static-doall" t >= 1);
  (* and the IV must be recognised with step 1 *)
  let doall =
    List.find
      (fun (r : Loopanal.report) -> r.Loopanal.cls = Loopanal.Static_doall)
      t.Analysis.reports
  in
  match doall.Loopanal.iv with
  | Some iv ->
    (* at O3 the vectorised main loop (step 2) is found first *)
    Alcotest.(check bool) "positive step" true
      (Int64.compare iv.Loopanal.iv_step 0L > 0)
  | None -> Alcotest.fail "no IV"

let test_static_doall_o0 () =
  (* at O0 the IV lives on the stack: the analyser must still find it *)
  let t = analyse ~options:{ Jcc.default_options with opt = 0 } doall_src in
  Alcotest.(check bool)
    (Fmt.str "O0 static doall: %a" Analysis.pp_summary t)
    true
    (count "static-doall" t >= 1)

let test_recurrence_is_dep () =
  let t =
    analyse
      "int a[100];\n\
       int main() {\n\
       \  a[0] = 1;\n\
       \  for (int i = 1; i < 100; i++) { a[i] = a[i-1] + 2; }\n\
       \  print_int(a[99]);\n\
       \  return 0;\n\
       }"
  in
  Alcotest.(check bool)
    (Fmt.str "recurrence classified dep: %a" Analysis.pp_summary t)
    true
    (count "static-dep" t >= 1)

let test_scalar_carried_is_dep () =
  let t =
    analyse
      "int a[100];\n\
       int main() {\n\
       \  int prev = 0;\n\
       \  for (int i = 0; i < 100; i++) { a[i] = prev; prev = a[i] + i; }\n\
       \  print_int(a[99]);\n\
       \  return 0;\n\
       }"
  in
  Alcotest.(check bool)
    (Fmt.str "carried scalar: %a" Analysis.pp_summary t)
    true
    (count "static-dep" t >= 1)

(* regression: a carried FP chain that lives entirely in a register —
   never stored, never compared — is still a cross-iteration dependence
   (a *0.5 smoothing chain numerically masks the misclassification
   under chunked scheduling, so this must be caught statically) *)
let test_register_only_fp_carried_is_dep () =
  let t =
    analyse
      "int main() {\n\
       \  double *p = alloc_double(300);\n\
       \  double *q = alloc_double(300);\n\
       \  for (int i = 0; i < 300; i++) { p[i] = (double)(i % 13) * 0.3; }\n\
       \  double acc = 0.0;\n\
       \  for (int i = 0; i < 300; i++) {\n\
       \    q[i] = p[i] * 2.0 + 1.0;\n\
       \    acc = acc * 0.5 + q[i];\n\
       \  }\n\
       \  print_float(acc + q[0] + q[299]);\n\
       \  return 0;\n\
       }"
  in
  (* the q/acc loop (and its multiversioned copies) must be
     static-dep, never ambiguous-with-checks *)
  let is_infix ~affix s =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    go 0
  in
  let deps =
    List.filter
      (fun (r : Loopanal.report) ->
         match r.Loopanal.cls with
         | Loopanal.Static_dep reason ->
           (* the reason must name the FP carried chain *)
           is_infix ~affix:"FP" reason
         | _ -> false)
      t.Analysis.reports
  in
  Alcotest.(check bool)
    (Fmt.str "register-only FP chain: %a" Analysis.pp_summary t)
    true
    (List.length deps >= 1
     && count "ambiguous" t <= 1 (* only the p-fill loop may need checks *))

let test_pointer_loop_ambiguous () =
  let t =
    analyse
      "void kernel(double *p, double *q, int n) {\n\
       \  for (int i = 0; i < n; i++) { p[i] = q[i] * 2.0; }\n\
       }\n\
       int main() {\n\
       \  double *a = alloc_double(40);\n\
       \  double *b = alloc_double(40);\n\
       \  kernel(a, b, 40);\n\
       \  print_float(a[7]);\n\
       \  return 0;\n\
       }"
  in
  Alcotest.(check bool)
    (Fmt.str "pointer loop ambiguous: %a" Analysis.pp_summary t)
    true
    (count "ambiguous" t >= 1);
  (* the ambiguous loop must carry a runtime bounds check *)
  let amb =
    List.find
      (fun (r : Loopanal.report) ->
         match r.Loopanal.cls with Loopanal.Ambiguous _ -> true | _ -> false)
      t.Analysis.reports
  in
  Alcotest.(check bool) "has check ranges" true
    (List.length amb.Loopanal.check_ranges >= 2);
  Alcotest.(check bool) "one range is written" true
    (List.exists (fun c -> c.Loopanal.ck_written) amb.Loopanal.check_ranges)

let test_io_loop_incompatible () =
  let t =
    analyse
      "int main() {\n\
       \  for (int i = 0; i < 10; i++) { print_int(i); }\n\
       \  return 0;\n\
       }"
  in
  Alcotest.(check bool)
    (Fmt.str "io loop incompatible: %a" Analysis.pp_summary t)
    true
    (count "incompatible" t >= 1)

let test_pointer_chase_incompatible () =
  let t =
    analyse
      "int next[64];\n\
       int main() {\n\
       \  for (int i = 0; i < 64; i++) { next[i] = (i + 7) % 64; }\n\
       \  int v = 0;\n\
       \  int steps = 0;\n\
       \  while (steps < 100) { v = next[v]; steps++; }\n\
       \  print_int(v);\n\
       \  return 0;\n\
       }"
  in
  (* the while loop has an IV (steps) but v = next[v] is a carried dep *)
  Alcotest.(check bool)
    (Fmt.str "chase loop: %a" Analysis.pp_summary t)
    true
    (count "static-dep" t >= 1)

let test_excall_ambiguous () =
  let t =
    analyse
      "extern double pow(double, double);\n\
       double a[50]; double b[50];\n\
       int main() {\n\
       \  for (int i = 0; i < 50; i++) { b[i] = (double)i; }\n\
       \  for (int i = 0; i < 50; i++) { a[i] = pow(b[i], 2.0); }\n\
       \  print_float(a[3]);\n\
       \  return 0;\n\
       }"
  in
  let with_excall =
    List.filter
      (fun (r : Loopanal.report) -> r.Loopanal.excall_sites <> [])
      t.Analysis.reports
  in
  Alcotest.(check bool)
    (Fmt.str "excall loop found: %a" Analysis.pp_summary t)
    true
    (List.length with_excall >= 1);
  List.iter
    (fun (r : Loopanal.report) ->
       match r.Loopanal.cls with
       | Loopanal.Ambiguous _ -> ()
       | c ->
         Alcotest.failf "excall loop should be ambiguous, got %s"
           (Loopanal.classification_name c))
    with_excall

let test_reduction_detected () =
  let t =
    analyse
      "double w[100];\n\
       int main() {\n\
       \  for (int i = 0; i < 100; i++) { w[i] = (double)i; }\n\
       \  double s = 0.0;\n\
       \  for (int i = 0; i < 100; i++) { s += w[i]; }\n\
       \  print_float(s);\n\
       \  return 0;\n\
       }"
  in
  let with_red =
    List.filter
      (fun (r : Loopanal.report) -> r.Loopanal.reductions <> [])
      t.Analysis.reports
  in
  Alcotest.(check bool)
    (Fmt.str "reduction loop found: %a" Analysis.pp_summary t)
    true
    (List.length with_red >= 1);
  (* the reduction loop must still be a static doall *)
  Alcotest.(check bool) "reduction loop is doall" true
    (List.exists
       (fun (r : Loopanal.report) -> r.Loopanal.cls = Loopanal.Static_doall)
       with_red)

let test_optimised_binaries_analysable () =
  (* O3 with unrolling and vectorisation must still yield a DOALL loop *)
  List.iter
    (fun (name, options) ->
       let t = analyse ~options doall_src in
       Alcotest.(check bool)
         (Fmt.str "%s: %a" name Analysis.pp_summary t)
         true
         (count "static-doall" t >= 1))
    [
      ("gcc O3", Jcc.default_options);
      ("icc O3", { Jcc.default_options with vendor = Jcc.Icc });
      ("gcc O2", { Jcc.default_options with opt = 2 });
    ]

let test_nested_loops_outer () =
  let t =
    analyse
      "int m[400];\n\
       int main() {\n\
       \  for (int i = 0; i < 20; i++) {\n\
       \    for (int j = 0; j < 20; j++) { m[i * 20 + j] = i + j; }\n\
       \  }\n\
       \  print_int(m[399]);\n\
       \  return 0;\n\
       }"
  in
  Alcotest.(check bool)
    (Fmt.str "outer + inner: %a" Analysis.pp_summary t)
    true
    (count "outer" t >= 1 && count "static-doall" t >= 1)

let test_schedule_generation () =
  let img = compile doall_src in
  let t = Analysis.analyse_image img in
  let cov = Rulegen.coverage_schedule t.Analysis.cfg t.Analysis.reports in
  Alcotest.(check bool) "coverage schedule has rules" true
    (List.length cov.Janus_schedule.Schedule.rules > 0);
  (* serialisation round-trip *)
  let cov' =
    Janus_schedule.Schedule.of_bytes (Janus_schedule.Schedule.to_bytes cov)
  in
  Alcotest.(check int) "rules preserved"
    (List.length cov.Janus_schedule.Schedule.rules)
    (List.length cov'.Janus_schedule.Schedule.rules);
  (* parallel schedule for the doall loops *)
  let selected =
    List.filter_map
      (fun (r : Loopanal.report) ->
         match r.Loopanal.cls with
         | Loopanal.Static_doall -> Some (r, Janus_schedule.Desc.Chunked)
         | _ -> None)
      t.Analysis.reports
  in
  let sched, ok = Rulegen.parallel_schedule t.Analysis.cfg selected in
  Alcotest.(check bool) "some loops encoded" true (List.length ok >= 1);
  let rules = sched.Janus_schedule.Schedule.rules in
  let has id =
    List.exists (fun r -> r.Janus_schedule.Rule.id = id) rules
  in
  Alcotest.(check bool) "LOOP_INIT" true (has Janus_schedule.Rule.LOOP_INIT);
  Alcotest.(check bool) "LOOP_FINISH" true (has Janus_schedule.Rule.LOOP_FINISH);
  Alcotest.(check bool) "LOOP_UPDATE_BOUND" true
    (has Janus_schedule.Rule.LOOP_UPDATE_BOUND);
  Alcotest.(check bool) "THREAD_SCHEDULE" true
    (has Janus_schedule.Rule.THREAD_SCHEDULE);
  (* round-trip with descriptors *)
  let sched' =
    Janus_schedule.Schedule.of_bytes (Janus_schedule.Schedule.to_bytes sched)
  in
  let init_rule =
    List.find
      (fun r -> r.Janus_schedule.Rule.id = Janus_schedule.Rule.LOOP_INIT)
      sched'.Janus_schedule.Schedule.rules
  in
  let desc =
    Janus_schedule.Schedule.loop_desc sched' init_rule.Janus_schedule.Rule.data
  in
  Alcotest.(check bool) "desc step positive" true
    (Int64.compare desc.Janus_schedule.Desc.iv_step 0L > 0)

(* ------------------------------------------------------------------ *)
(* Trip-count and induction-variable edge cases                        *)
(* ------------------------------------------------------------------ *)

(* a loop whose bound is a parameter, invoked with n = 0: the static
   classification must be sound for the zero-trip invocation and the
   parallelised binary must produce native output *)
let test_zero_trip_loop () =
  let src =
    "double s[100];\n\
     void fill(int n) {\n\
     \  for (int i = 0; i < n; i++) { s[i] = (double)i * 1.5 + 1.0; }\n\
     }\n\
     int main() {\n\
     \  fill(0);\n\
     \  print_float(s[0] + s[99]);\n\
     \  fill(100);\n\
     \  print_float(s[0] + s[99]);\n\
     \  return 0;\n\
     }"
  in
  let t = analyse src in
  Alcotest.(check bool)
    (Fmt.str "fill loop classified: %a" Analysis.pp_summary t)
    true
    (List.length t.Analysis.reports >= 1);
  let img = compile src in
  let native = Janus_core.Janus.run_native img in
  let par = Janus_core.Janus.parallelise img in
  Alcotest.(check string) "zero-trip output identical" native.Janus_core.Janus.output
    par.Janus_core.Janus.output

(* a single-iteration loop (bound 1 through an opaque parameter) must
   survive parallelisation bit-identically — the chunker hands the one
   iteration to one worker and the rest get empty ranges *)
let test_single_iteration_loop () =
  let src =
    "double s[8];\n\
     void fill(int n) {\n\
     \  for (int i = 0; i < n; i++) { s[i] = (double)i + 42.0; }\n\
     }\n\
     int main() {\n\
     \  fill(1);\n\
     \  print_float(s[0]);\n\
     \  return 0;\n\
     }"
  in
  let t = analyse src in
  Alcotest.(check bool)
    (Fmt.str "single-trip loop classified: %a" Analysis.pp_summary t)
    true
    (List.length t.Analysis.reports >= 1);
  let img = compile src in
  let native = Janus_core.Janus.run_native img in
  let par = Janus_core.Janus.parallelise img in
  Alcotest.(check string) "single-iteration output identical"
    native.Janus_core.Janus.output par.Janus_core.Janus.output

(* the IV is bumped a second time under a data-dependent condition, so
   its per-iteration step is not constant: the loop must NOT be
   classified static-doall (iteration count and targets are no longer
   an affine function of the chunk index) *)
let test_conditional_double_iv_update () =
  let src =
    "int a[200];\n\
     int main() {\n\
     \  int i = 0;\n\
     \  int sum = 0;\n\
     \  while (i < 200) {\n\
     \    a[i] = i;\n\
     \    sum = sum + a[i];\n\
     \    i = i + 1;\n\
     \    if (sum % 7 == 0) { i = i + 1; }\n\
     \  }\n\
     \  print_int(sum);\n\
     \  return 0;\n\
     }"
  in
  let t = analyse src in
  Alcotest.(check bool)
    (Fmt.str "irregular-step loop not doall: %a" Analysis.pp_summary t)
    true
    (count "static-doall" t = 0);
  (* and parallelisation must still be output-preserving (the loop is
     simply not selected) *)
  let img = compile src in
  let native = Janus_core.Janus.run_native img in
  let par = Janus_core.Janus.parallelise img in
  Alcotest.(check string) "output identical" native.Janus_core.Janus.output
    par.Janus_core.Janus.output

(* an unconditional second bump is a well-defined step-2 loop: if the
   analyser proves it doall it must report the combined step, never the
   step of a single update *)
let test_unconditional_double_iv_update () =
  let src =
    "int a[200];\n\
     int main() {\n\
     \  for (int i = 0; i < 200; i = i + 1) { a[i] = i * 3; i = i + 1; }\n\
     \  int sum = 0;\n\
     \  for (int j = 0; j < 200; j++) { sum = sum + a[j]; }\n\
     \  print_int(sum);\n\
     \  return 0;\n\
     }"
  in
  let t = analyse src in
  List.iter
    (fun (r : Loopanal.report) ->
       match (r.Loopanal.cls, r.Loopanal.iv) with
       | Loopanal.Static_doall, Some iv ->
         Alcotest.(check bool)
           (Fmt.str "doall IV step is the net step (got %Ld)"
              iv.Loopanal.iv_step)
           true
           (Int64.compare iv.Loopanal.iv_step 0L <> 0)
       | _ -> ())
    t.Analysis.reports;
  let img = compile src in
  let native = Janus_core.Janus.run_native img in
  let par = Janus_core.Janus.parallelise img in
  Alcotest.(check string) "output identical" native.Janus_core.Janus.output
    par.Janus_core.Janus.output

(* ------------------------------------------------------------------ *)
(* Structural invariants of CFG recovery, dominators and loop forests  *)
(* over randomly generated programs at random optimisation levels      *)
(* ------------------------------------------------------------------ *)

(* a random structured program: loop nests, conditionals, breaks,
   while loops, function calls — exercising the recovery paths *)
let gen_program =
  let open QCheck2.Gen in
  let* n = int_range 16 200 in
  let* depth2 = bool in
  let* use_if = bool in
  let* use_break = bool in
  let* use_while = bool in
  let* use_call = bool in
  let inner_body =
    (if use_if then
       Printf.sprintf
         "      if (i %% 3 == 0) { a[i] = a[i] + 2.0; } else { a[i] = a[i] * 1.5; }\n"
     else "      a[i] = a[i] * 1.5 + 1.0;\n")
    ^ (if use_break then
         Printf.sprintf "      if (a[i] > 1000000.0) { break; }\n"
       else "")
  in
  let loop =
    if depth2 then
      Printf.sprintf
        "  for (int j = 0; j < 4; j++) {\n\
        \    for (int i = 0; i < %d; i++) {\n%s    }\n\
        \  }\n"
        n inner_body
    else
      Printf.sprintf "  for (int i = 0; i < %d; i++) {\n%s  }\n" n inner_body
  in
  let whiles =
    if use_while then
      "  int k = 0;\n  while (k < 10) { a[0] = a[0] + 0.5; k = k + 1; }\n"
    else ""
  in
  let helper, call =
    if use_call then
      ( "double bump(double x) { return x * 2.0 + 1.0; }\n",
        "  a[1] = bump(a[1]);\n" )
    else ("", "")
  in
  return
    (Printf.sprintf
       "double a[%d];\n%s\
        int main() {\n\
        \  for (int i = 0; i < %d; i++) { a[i] = (double)(i %% 7); }\n\
        %s%s%s\
        \  print_float(a[0] + a[%d]);\n\
        \  return 0;\n\
        }"
       n helper n loop whiles call (n - 1))

let gen_options =
  let open QCheck2.Gen in
  let* opt = int_range 0 3 in
  let* avx = bool in
  let* vendor = oneofl Jcc.[ Gcc; Icc ] in
  return { Jcc.default_options with opt; avx; vendor }

let structural_invariants (src, options) =
  let img = compile ~options src in
  let cfg = Cfg.recover img in
  List.for_all
    (fun (f : Cfg.func) ->
       let block_addrs =
         List.map (fun (b : Cfg.bblock) -> b.Cfg.baddr) f.Cfg.blocks
       in
       let in_func a = List.mem a block_addrs in
       (* entry is a block; every successor/predecessor exists *)
       in_func f.Cfg.fentry
       && List.for_all
            (fun (b : Cfg.bblock) ->
               List.for_all in_func b.Cfg.succs
               && List.for_all in_func b.Cfg.preds)
            f.Cfg.blocks
       &&
       let dom = Dom.compute f in
       (* reverse postorder covers each block exactly once *)
       let rpo = Array.to_list dom.Dom.order in
       List.length rpo = List.length (List.sort_uniq compare rpo)
       && List.for_all (fun a -> List.mem a block_addrs) rpo
       (* the entry dominates every reachable block *)
       && List.for_all
            (fun a -> Dom.dominates dom f.Cfg.fentry a)
            rpo
       &&
       let lt = Looptree.compute f dom in
       List.for_all
         (fun (l : Looptree.loop) ->
            (* header in body; latches in body with a header edge *)
            List.mem l.Looptree.header l.Looptree.body
            && List.for_all
                 (fun latch ->
                    List.mem latch l.Looptree.body
                    &&
                    match
                      List.find_opt
                        (fun (b : Cfg.bblock) -> b.Cfg.baddr = latch)
                        f.Cfg.blocks
                    with
                    | Some b -> List.mem l.Looptree.header b.Cfg.succs
                    | None -> false)
                 l.Looptree.latches
            (* the header dominates the whole body *)
            && List.for_all
                 (fun a -> Dom.dominates dom l.Looptree.header a)
                 l.Looptree.body
            (* a preheader is outside the body and reaches the header *)
            && (match l.Looptree.preheader with
                | None -> true
                | Some p ->
                  (not (List.mem p l.Looptree.body))
                  && (match
                        List.find_opt
                          (fun (b : Cfg.bblock) -> b.Cfg.baddr = p)
                          f.Cfg.blocks
                      with
                      | Some b -> List.mem l.Looptree.header b.Cfg.succs
                      | None -> false))
            (* children nest strictly inside the parent *)
            && List.for_all
                 (fun cid ->
                    match Looptree.loop lt cid with
                    | Some c ->
                      List.for_all
                        (fun a -> List.mem a l.Looptree.body)
                        c.Looptree.body
                    | None -> false)
                 l.Looptree.children
            (* exits leave the loop from inside it *)
            && List.for_all
                 (fun (src_blk, target) ->
                    List.mem src_blk l.Looptree.body
                    && not (List.mem target l.Looptree.body))
                 l.Looptree.exits)
         lt.Looptree.loops)
    (Cfg.all_funcs cfg)

let prop_structural_invariants =
  QCheck2.Test.make ~count:40 ~name:"CFG/dom/loop-forest invariants"
    ~print:(fun (src, _) -> src)
    QCheck2.Gen.(pair gen_program gen_options)
    structural_invariants

(* analysing any generated program never raises and yields a report per
   loop of the forest *)
let prop_analysis_total =
  QCheck2.Test.make ~count:25 ~name:"analysis is total over random programs"
    ~print:(fun (src, _) -> src)
    QCheck2.Gen.(pair gen_program gen_options)
    (fun (src, options) ->
       let t = analyse ~options src in
       List.for_all
         (fun (r : Loopanal.report) ->
            (* every report's loop is well-formed and classified *)
            String.length
              (Loopanal.classification_name r.Loopanal.cls)
            > 0
            && r.Loopanal.insn_count >= 0)
         t.Analysis.reports)

(* ------------------------------------------------------------------ *)
(* Statement-level dependence graphs and the fission plan               *)
(* ------------------------------------------------------------------ *)

(* the adv.fission loop body: a carried scalar chain (not a reduction —
   the multiply breaks associativity) interleaved with an independent
   streaming store *)
let fission_src =
  (Janus_suite.Suite.find_exn "adv.fission").Janus_suite.Suite.source

let test_depgraph_fission_plan () =
  let t = analyse fission_src in
  (* the mixed loop must be Static_dep with the carried chain named *)
  let is_infix ~affix s =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    (Fmt.str "chain loop is static-dep: %a" Analysis.pp_summary t)
    true
    (List.exists
       (fun (r : Loopanal.report) ->
          match r.Loopanal.cls with
          | Loopanal.Static_dep reason -> is_infix ~affix:"carried scc @ 0x" reason
          | _ -> false)
       t.Analysis.reports);
  (* and at least one variant of it must yield a two-sided fission plan *)
  let plans =
    List.filter_map
      (fun (r : Loopanal.report) ->
         match r.Loopanal.cls with
         | Loopanal.Static_dep _ -> Depgraph.plan r
         | _ -> None)
      t.Analysis.reports
  in
  Alcotest.(check bool) "some loop splits" true (List.length plans >= 1);
  List.iter
    (fun (p : Depgraph.plan) ->
       Alcotest.(check bool) "product non-empty" true (p.Depgraph.pl_product <> []);
       Alcotest.(check bool) "residue non-empty" true (p.Depgraph.pl_residue <> []))
    plans

(* demotion reasons are a pipeline artifact: analysing the same image
   twice must produce byte-identical classification reasons *)
let test_static_dep_reasons_stable () =
  let img = compile fission_src in
  let reasons t =
    List.filter_map
      (fun (r : Loopanal.report) ->
         match r.Loopanal.cls with
         | Loopanal.Static_dep reason -> Some reason
         | _ -> None)
      t.Analysis.reports
  in
  let a = reasons (Analysis.analyse_image img) in
  let b = reasons (Analysis.analyse_image img) in
  Alcotest.(check (list string)) "reasons stable across analyses" a b

(* graph-level invariants over random programs: the SCC condensation is
   a topologically-numbered DAG, carried SCC flags match the edges, the
   groups partition the non-infrastructure nodes with no dependence
   edge between two groups, and any fission plan keeps the product free
   of carried edges *)
let depgraph_invariants (src, options) =
  let t = analyse ~options src in
  List.for_all
    (fun (r : Loopanal.report) ->
       match Depgraph.build r with
       | None -> true
       | Some g ->
         let n = Array.length g.Depgraph.dg_addrs in
         let scc = g.Depgraph.dg_scc_of in
         let in_range v = v >= 0 && v < n in
         List.for_all
           (fun (e : Depgraph.edge) ->
              in_range e.Depgraph.e_src && in_range e.Depgraph.e_dst
              (* condensation is a DAG in topological numbering *)
              && scc.(e.Depgraph.e_src) <= scc.(e.Depgraph.e_dst))
           g.Depgraph.dg_edges
         (* an SCC is flagged carried iff one of its internal edges is *)
         && (let flagged = Array.make g.Depgraph.dg_scc_count false in
             List.iter
               (fun (e : Depgraph.edge) ->
                  if
                    e.Depgraph.e_carried
                    && scc.(e.Depgraph.e_src) = scc.(e.Depgraph.e_dst)
                  then flagged.(scc.(e.Depgraph.e_src)) <- true)
               g.Depgraph.dg_edges;
             flagged = g.Depgraph.dg_carried_scc)
         (* groups partition the non-infra nodes, no edge between two *)
         && (let comps = Depgraph.components g in
             let members = List.concat_map fst comps in
             let non_infra =
               List.filter (fun v -> not g.Depgraph.dg_infra.(v))
                 (List.init n Fun.id)
             in
             List.sort_uniq compare members = List.sort compare members
             && List.sort compare members = List.sort compare non_infra
             && (let comp_of = Array.make n (-1) in
                 List.iteri
                   (fun ci (vs, _) ->
                      List.iter (fun v -> comp_of.(v) <- ci) vs)
                   comps;
                 List.for_all
                   (fun (e : Depgraph.edge) ->
                      comp_of.(e.Depgraph.e_src) < 0
                      || comp_of.(e.Depgraph.e_dst) < 0
                      || comp_of.(e.Depgraph.e_src)
                         = comp_of.(e.Depgraph.e_dst))
                   g.Depgraph.dg_edges)
             (* a carried-free group really has no carried edge inside *)
             && List.for_all
                  (fun (vs, free) ->
                     (not free)
                     || not
                          (List.exists
                             (fun (e : Depgraph.edge) ->
                                e.Depgraph.e_carried
                                && List.mem e.Depgraph.e_src vs
                                && List.mem e.Depgraph.e_dst vs)
                             g.Depgraph.dg_edges))
                  comps)
         (* any plan partitions the body and keeps groups disjoint *)
         && (match Depgraph.plan r with
             | None -> true
             | Some p ->
               let all = Array.to_list g.Depgraph.dg_addrs in
               let got =
                 p.Depgraph.pl_infra @ p.Depgraph.pl_product
                 @ p.Depgraph.pl_residue
               in
               List.sort compare got = List.sort compare all
               &&
               let side a =
                 (* index the address back to its node *)
                 let rec find i =
                   if i >= n then -1
                   else if g.Depgraph.dg_addrs.(i) = a then i
                   else find (i + 1)
                 in
                 find 0
               in
               let product = List.map side p.Depgraph.pl_product in
               let residue = List.map side p.Depgraph.pl_residue in
               List.for_all
                 (fun (e : Depgraph.edge) ->
                    not
                      ((List.mem e.Depgraph.e_src product
                        && List.mem e.Depgraph.e_dst residue)
                       || (List.mem e.Depgraph.e_src residue
                           && List.mem e.Depgraph.e_dst product)))
                 g.Depgraph.dg_edges
               && List.for_all
                    (fun (e : Depgraph.edge) ->
                       not
                         (e.Depgraph.e_carried
                          && List.mem e.Depgraph.e_src product
                          && List.mem e.Depgraph.e_dst product))
                    g.Depgraph.dg_edges))
    t.Analysis.reports

let prop_depgraph_invariants =
  QCheck2.Test.make ~count:25 ~name:"depgraph SCC/group/plan invariants"
    ~print:(fun (src, _) -> src)
    QCheck2.Gen.(pair gen_program gen_options)
    depgraph_invariants

let tests =
  [
    Alcotest.test_case "cfg recovery" `Quick test_cfg_recovery;
    Alcotest.test_case "dominators" `Quick test_dominators;
    Alcotest.test_case "loop detection" `Quick test_loop_detection;
    Alcotest.test_case "static doall" `Quick test_static_doall;
    Alcotest.test_case "static doall at O0" `Quick test_static_doall_o0;
    Alcotest.test_case "recurrence is dep" `Quick test_recurrence_is_dep;
    Alcotest.test_case "carried scalar is dep" `Quick test_scalar_carried_is_dep;
    Alcotest.test_case "register-only FP carried is dep" `Quick
      test_register_only_fp_carried_is_dep;
    Alcotest.test_case "pointer loop ambiguous" `Quick test_pointer_loop_ambiguous;
    Alcotest.test_case "io loop incompatible" `Quick test_io_loop_incompatible;
    Alcotest.test_case "pointer chase" `Quick test_pointer_chase_incompatible;
    Alcotest.test_case "excall ambiguous" `Quick test_excall_ambiguous;
    Alcotest.test_case "reduction detected" `Quick test_reduction_detected;
    Alcotest.test_case "optimised binaries analysable" `Quick
      test_optimised_binaries_analysable;
    Alcotest.test_case "nested loops" `Quick test_nested_loops_outer;
    Alcotest.test_case "zero-trip loop" `Quick test_zero_trip_loop;
    Alcotest.test_case "single-iteration loop" `Quick
      test_single_iteration_loop;
    Alcotest.test_case "conditional double IV update" `Quick
      test_conditional_double_iv_update;
    Alcotest.test_case "unconditional double IV update" `Quick
      test_unconditional_double_iv_update;
    Alcotest.test_case "schedule generation" `Quick test_schedule_generation;
    Alcotest.test_case "depgraph fission plan" `Quick
      test_depgraph_fission_plan;
    Alcotest.test_case "static-dep reasons stable" `Quick
      test_static_dep_reasons_stable;
    QCheck_alcotest.to_alcotest prop_structural_invariants;
    QCheck_alcotest.to_alcotest prop_analysis_total;
    QCheck_alcotest.to_alcotest prop_depgraph_invariants;
  ]
