(* End-to-end tests: compile -> analyse -> profile -> parallelise ->
   run, checking outputs against native execution and speedups against
   the cost model. *)

open Janus_jcc
open Janus_core

let compile ?(options = Jcc.default_options) src = Jcc.compile ~options src

let janus_vs_native ?options ?cfg src =
  let img = compile ?options src in
  let native = Janus.run_native img in
  let par = Janus.parallelise ?cfg img in
  (native, par)

let check_same_output name (native : Janus.result) (par : Janus.result) =
  Alcotest.(check string) (name ^ ": output") native.Janus.output
    par.Janus.output;
  Alcotest.(check int) (name ^ ": exit") native.Janus.exit_code
    par.Janus.exit_code

(* a kernel big enough for parallelisation to pay off *)
let big_kernel =
  "double x[8192]; double y[8192]; double z[8192];\n\
   int main() {\n\
   \  for (int i = 0; i < 8192; i++) { x[i] = (double)(i % 97); y[i] = (double)(i % 31); }\n\
   \  for (int t = 0; t < 4; t++) {\n\
   \    for (int i = 0; i < 8192; i++) { z[i] = x[i] * 1.5 + y[i] * 2.5; }\n\
   \    for (int i = 0; i < 8192; i++) { x[i] = z[i] * 0.5; }\n\
   \  }\n\
   \  double s = 0.0;\n\
   \  for (int i = 0; i < 8192; i++) { s += x[i]; }\n\
   \  print_float(s);\n\
   \  return 0;\n\
   }"

let test_doall_speedup () =
  let native, par = janus_vs_native big_kernel in
  check_same_output "doall" native par;
  Alcotest.(check bool) "loops selected" true (par.Janus.selected_loops <> []);
  let s = Janus.speedup ~native ~run:par in
  Alcotest.(check bool) (Printf.sprintf "speedup %.2f > 2.5" s) true (s > 2.5)

let test_reduction_parallel () =
  let src =
    "double w[4096];\n\
     int main() {\n\
     \  for (int i = 0; i < 4096; i++) { w[i] = (double)(i % 13) * 0.5; }\n\
     \  double s = 0.0;\n\
     \  for (int i = 0; i < 4096; i++) { s += w[i] * w[i] + 1.0; }\n\
     \  print_float(s);\n\
     \  return 0;\n\
     }"
  in
  let native, par = janus_vs_native src in
  check_same_output "reduction" native par;
  Alcotest.(check bool) "parallelised" true (par.Janus.selected_loops <> [])

let test_int_reduction () =
  let src =
    "int v[4096];\n\
     int main() {\n\
     \  for (int i = 0; i < 4096; i++) { v[i] = i * 7 % 23; }\n\
     \  int s = 0;\n\
     \  for (int i = 0; i < 4096; i++) { s += v[i]; }\n\
     \  print_int(s);\n\
     \  return 0;\n\
     }"
  in
  let native, par = janus_vs_native src in
  check_same_output "int reduction" native par

let pointer_src aliasing =
  Printf.sprintf
    "void kernel(double *p, double *q, int n) {\n\
    \  for (int i = 0; i < n; i++) { p[i] = q[i] * 2.0 + 1.0; }\n\
     }\n\
     int main() {\n\
    \  double *a = alloc_double(3000);\n\
    \  double *b = %s;\n\
    \  for (int i = 0; i < 3000; i++) { a[i] = (double)i; }\n\
    \  for (int t = 0; t < 3; t++) { kernel(%s); }\n\
    \  double s = 0.0;\n\
    \  for (int i = 0; i < 3000; i++) { s += a[i]; }\n\
    \  print_float(s);\n\
    \  return 0;\n\
     }"
    (if aliasing then "a" else "alloc_double(3000)")
    (if aliasing then "a, b, 2999" else "b, a, 3000")

let test_bounds_check_pass () =
  (* disjoint arrays: the check passes and the loop runs in parallel *)
  let native, par = janus_vs_native (pointer_src false) in
  check_same_output "check pass" native par;
  Alcotest.(check bool) "has checks" true (par.Janus.checks_per_loop <> []);
  Alcotest.(check bool) "check cycles counted" true
    (par.Janus.breakdown.Janus.check_cycles > 0)

let test_bounds_check_fail_falls_back () =
  (* overlapping arrays: the check fails and execution stays serial,
     with output still correct *)
  let native, par = janus_vs_native (pointer_src true) in
  check_same_output "check fail" native par

let test_excall_stm () =
  let src =
    "extern double pow(double, double);\n\
     double a[2048]; double b[2048];\n\
     int main() {\n\
     \  for (int i = 0; i < 2048; i++) { b[i] = (double)(i % 7 + 1); }\n\
     \  for (int i = 0; i < 2048; i++) { a[i] = pow(b[i], 3.0) * 0.25; }\n\
     \  double s = 0.0;\n\
     \  for (int i = 0; i < 2048; i++) { s += a[i]; }\n\
     \  print_float(s);\n\
     \  return 0;\n\
     }"
  in
  let native, par = janus_vs_native src in
  check_same_output "excall" native par;
  (* the pow loop must have been parallelised under speculation *)
  Alcotest.(check bool) "stm commits happened" true (par.Janus.stm_commits > 0);
  Alcotest.(check int) "no aborts (pow only reads)" 0 par.Janus.stm_aborts;
  let s = Janus.speedup ~native ~run:par in
  Alcotest.(check bool) (Printf.sprintf "speedup %.2f > 1.5" s) true (s > 1.5)

let test_thread_scaling () =
  let img = compile big_kernel in
  let native = Janus.run_native img in
  let cycles_at t =
    let par = Janus.parallelise ~cfg:(Janus.config ~threads:t ()) img in
    Alcotest.(check string) "output" native.Janus.output par.Janus.output;
    par.Janus.cycles
  in
  let c1 = cycles_at 1 in
  let c4 = cycles_at 4 in
  let c8 = cycles_at 8 in
  Alcotest.(check bool) "4 threads faster than 1" true (c4 < c1);
  Alcotest.(check bool) "8 threads faster than 4" true (c8 < c4)

let test_static_vs_profile_configs () =
  (* a program with one hot loop and many cold tiny loops: static-only
     parallelises everything, profile-guided skips the cold ones *)
  let src =
    "double h[4096]; double g[4096];\n\
     double tiny1[4]; double tiny2[4];\n\
     int main() {\n\
     \  for (int r = 0; r < 60; r++) {\n\
     \    for (int i = 0; i < 4; i++) { tiny1[i] = (double)i; }\n\
     \    for (int i = 0; i < 4; i++) { tiny2[i] = tiny1[i] * 2.0; }\n\
     \  }\n\
     \  for (int i = 0; i < 4096; i++) { g[i] = (double)(i % 11); }\n\
     \  for (int i = 0; i < 4096; i++) { h[i] = g[i] * 3.0 + 1.0; }\n\
     \  print_float(h[4095] + tiny2[3]);\n\
     \  return 0;\n\
     }"
  in
  let img = compile src in
  let native = Janus.run_native img in
  let static_only =
    Janus.parallelise
      ~cfg:(Janus.config ~use_profile:false ~use_checks:false ())
      img
  in
  let with_profile =
    Janus.parallelise ~cfg:(Janus.config ~use_checks:false ()) img
  in
  check_same_output "static" native static_only;
  check_same_output "profile" native with_profile;
  Alcotest.(check bool) "profile selects fewer loops" true
    (List.length with_profile.Janus.selected_loops
     < List.length static_only.Janus.selected_loops);
  Alcotest.(check bool) "profile config is faster" true
    (with_profile.Janus.cycles <= static_only.Janus.cycles)

let test_o0_binary_end_to_end () =
  let native, par =
    janus_vs_native ~options:{ Jcc.default_options with opt = 0 } big_kernel
  in
  check_same_output "O0" native par;
  Alcotest.(check bool) "O0 loops selected" true
    (par.Janus.selected_loops <> [])

let test_all_opt_levels_correct () =
  List.iter
    (fun (name, options) ->
       let native, par = janus_vs_native ~options big_kernel in
       check_same_output name native par)
    [
      ("O1", { Jcc.default_options with opt = 1 });
      ("O2", { Jcc.default_options with opt = 2 });
      ("O3-gcc", Jcc.default_options);
      ("O3-icc", { Jcc.default_options with vendor = Jcc.Icc });
      ("O3-avx", { Jcc.default_options with avx = true });
    ]

let test_schedule_size_small () =
  let img = compile big_kernel in
  let par = Janus.parallelise img in
  let ratio =
    float_of_int par.Janus.schedule_size
    /. float_of_int par.Janus.executable_size
  in
  (* toy programs have few instructions per loop, so the ratio is far
     above Fig. 10's 3.7% average; suite-sized binaries are measured by
     the fig10 bench *)
  Alcotest.(check bool)
    (Printf.sprintf "schedule/executable = %.3f < 0.7" ratio)
    true (ratio < 0.7);
  Alcotest.(check bool) "schedule non-empty" true (par.Janus.schedule_size > 0)

let test_round_robin_policy () =
  let img = compile big_kernel in
  let native = Janus.run_native img in
  let rr =
    Janus.parallelise
      ~cfg:
        (Janus.config
           ~force_policy:(Janus_schedule.Desc.Round_robin 16)
           ())
      img
  in
  check_same_output "round robin" native rr;
  let s = Janus.speedup ~native ~run:rr in
  Alcotest.(check bool) (Printf.sprintf "rr speedup %.2f > 1.5" s) true (s > 1.5)

let test_doacross_extension () =
  (* the paper's future work: a static-dependence loop (carried
     accumulator feeding stores) parallelised by in-order chunk
     hand-off; the non-carried work overlaps *)
  let src =
    "double a[8192]; double b[8192];\n\
     int main() {\n\
     \  for (int i = 0; i < 8192; i++) { a[i] = (double)(i % 23) * 0.1; }\n\
     \  double acc = 0.0;\n\
     \  for (int t = 0; t < 4; t++) {\n\
     \    for (int i = 0; i < 8192; i++) {\n\
     \      acc = acc * 0.75 + a[i] * 0.25;\n\
     \      b[i] = acc * 2.0 + a[i] * a[i] + 1.0;\n\
     \    }\n\
     \  }\n\
     \  double s = 0.0;\n\
     \  for (int i = 0; i < 8192; i++) { s += b[i]; }\n\
     \  print_float(s);\n\
     \  return 0;\n\
     }"
  in
  let img = compile src in
  let native = Janus.run_native img in
  let without = Janus.parallelise img in
  let with_da =
    Janus.parallelise ~cfg:(Janus.config ~use_doacross:true ()) img
  in
  check_same_output "doacross" native with_da;
  Alcotest.(check bool) "more loops parallelised with doacross" true
    (List.length with_da.Janus.selected_loops
     > List.length without.Janus.selected_loops);
  let s_without = Janus.speedup ~native ~run:without in
  let s_with = Janus.speedup ~native ~run:with_da in
  Alcotest.(check bool)
    (Printf.sprintf "doacross helps (%.2f -> %.2f)" s_without s_with)
    true
    (s_with > s_without +. 0.1)

let test_prefetch_extension () =
  (* the paper's future work: MEM_PREFETCH rules on strided accesses;
     under the cold-line cache-miss model the hints hide DRAM latency
     in streaming loops without changing the program's behaviour *)
  let img = compile big_kernel in
  let native = Janus.run_native ~model_cache:true img in
  let without =
    Janus.parallelise ~cfg:(Janus.config ~model_cache:true ()) img
  in
  let with_pf =
    Janus.parallelise
      ~cfg:(Janus.config ~model_cache:true ~prefetch:true ())
      img
  in
  check_same_output "prefetch" native with_pf;
  let s_without = Janus.speedup ~native ~run:without in
  let s_with = Janus.speedup ~native ~run:with_pf in
  Alcotest.(check bool)
    (Printf.sprintf "prefetch helps (%.2f -> %.2f)" s_without s_with)
    true (s_with > s_without)

let test_prefetch_no_cache_model_harmless () =
  (* without the cache model, the hints are pure overhead but must not
     change behaviour; the slowdown stays within the hint issue cost *)
  let img = compile big_kernel in
  let native = Janus.run_native img in
  let with_pf =
    Janus.parallelise ~cfg:(Janus.config ~prefetch:true ()) img
  in
  check_same_output "prefetch without cache model" native with_pf;
  Alcotest.(check bool) "still profitable" true
    (Janus.speedup ~native ~run:with_pf > 2.0)

(* the adv.fission shape without the read_int knob: a carried scalar
   chain (s = s*3 + a[i] is no reduction — the multiply breaks
   associativity) interleaved with an independent streaming store.
   Whole-loop parallelisation is unsound; SCC-driven fission runs the
   stream as a DOALL product and the chain as a sequential residue. *)
let fission_kernel =
  "int a[2048]; int b[2048]; int c[2048];\n\
   int main() {\n\
   \  int n = 2048;\n\
   \  for (int i = 0; i < n; i++) {\n\
   \    a[i] = (i * 7 + 3) % 101;\n\
   \    b[i] = 0;\n\
   \    c[i] = (i * 5 + 1) % 97;\n\
   \  }\n\
   \  int s = 1;\n\
   \  for (int t = 0; t < 24; t++) {\n\
   \    for (int i = 0; i < 2048; i++) {\n\
   \      s = s * 3 + a[i];\n\
   \      b[i] = c[i] * 2 + t;\n\
   \    }\n\
   \  }\n\
   \  print_int(s);\n\
   \  print_int(b[5]);\n\
   \  print_int(b[2000]);\n\
   \  return 0;\n\
   }"

let test_fission_extension () =
  let img = compile fission_kernel in
  let native = Janus.run_native img in
  let without = Janus.parallelise ~cfg:(Janus.config ~threads:4 ()) img in
  let with_fi =
    Janus.parallelise ~cfg:(Janus.config ~threads:4 ~fission:true ()) img
  in
  check_same_output "fission" native with_fi;
  let counter name =
    match with_fi.Janus.obs with
    | None -> 0
    | Some obs -> Janus_obs.Obs.counter obs name
  in
  Alcotest.(check bool) "a loop was split" true (counter "fission.split" >= 1);
  Alcotest.(check bool) "the split verified" true
    (counter "fission.verified" >= 1);
  Alcotest.(check int) "no split demoted" 0 (counter "fission.demoted");
  Alcotest.(check bool) "fission phases ran" true
    (counter "rt.fission_phases" >= 2);
  let s_without = Janus.speedup ~native ~run:without in
  let s_with = Janus.speedup ~native ~run:with_fi in
  Alcotest.(check bool)
    (Printf.sprintf "fission beats sequential (%.3f > 1)" s_with)
    true (s_with > 1.0);
  Alcotest.(check bool)
    (Printf.sprintf "fission helps (%.3f -> %.3f)" s_without s_with)
    true (s_with > s_without)

let test_fission_off_bit_identical () =
  (* ~fission is a pure extension: off (the default), the emitted
     schedule bytes are exactly what the seed system produced *)
  let img = compile fission_kernel in
  let bytes cfg =
    let p = Janus.prepare ~cfg img in
    Janus_schedule.Schedule.to_bytes p.Janus.p_schedule
  in
  let default = bytes (Janus.config ()) in
  let explicit_off = bytes (Janus.config ~fission:false ()) in
  Alcotest.(check bool) "schedule bytes identical" true
    (String.equal (Bytes.to_string default) (Bytes.to_string explicit_off))

let test_stm_everywhere_ablation () =
  (* the paper's argument for sparing STM use (§II-E2): buffering every
     access costs so much that speedups mostly evaporate *)
  let img = compile big_kernel in
  let native = Janus.run_native img in
  let sparing = Janus.parallelise img in
  let everywhere =
    Janus.parallelise ~cfg:(Janus.config ~stm_everywhere:true ()) img
  in
  check_same_output "stm everywhere" native everywhere;
  let s_sparing = Janus.speedup ~native ~run:sparing in
  let s_everywhere = Janus.speedup ~native ~run:everywhere in
  Alcotest.(check bool)
    (Printf.sprintf "sparing %.2f much faster than everywhere %.2f" s_sparing
       s_everywhere)
    true
    (s_sparing > s_everywhere *. 1.5)

let test_dbm_only_overhead () =
  let img = compile big_kernel in
  let native = Janus.run_native img in
  let dbm = Janus.run_dbm_only img in
  Alcotest.(check string) "dbm output" native.Janus.output dbm.Janus.output;
  (* DBM overhead should be a modest slowdown, not catastrophic *)
  let ratio = float_of_int dbm.Janus.cycles /. float_of_int native.Janus.cycles in
  Alcotest.(check bool) (Printf.sprintf "dbm ratio %.3f in [0.8, 1.6]" ratio)
    true
    (ratio > 0.8 && ratio < 1.6)

(* differential property test over the full pipeline *)
let gen_kernel =
  let open QCheck2.Gen in
  let* n = int_range 64 1500 in
  let* k1 = map float_of_int (int_range 1 9) in
  let* k2 = map float_of_int (int_range 1 9) in
  let* reps = int_range 1 3 in
  let* use_red = bool in
  return
    (Printf.sprintf
       "double a[%d]; double b[%d]; double c[%d];\n\
        int main() {\n\
        \  for (int i = 0; i < %d; i++) { a[i] = (double)(i %% 17); b[i] = (double)(i %% 5); }\n\
        \  double s = 0.0;\n\
        \  for (int t = 0; t < %d; t++) {\n\
        \    for (int i = 0; i < %d; i++) { c[i] = a[i] * %f + b[i] * %f; }\n\
        %s\
        \  }\n\
        \  print_float(s + c[%d] + c[0]);\n\
        \  return 0;\n\
        }"
       n n n n reps n k1 k2
       (if use_red then
          Printf.sprintf "    for (int i = 0; i < %d; i++) { s += c[i]; }\n" n
        else "")
       (n - 1))

let prop_pipeline_matches_native =
  QCheck2.Test.make ~count:12 ~name:"janus output = native output"
    ~print:(fun s -> s)
    gen_kernel
    (fun src ->
       let img = compile src in
       let native = Janus.run_native img in
       let par = Janus.parallelise img in
       String.equal native.Janus.output par.Janus.output)

(* harder kernels: runtime-aliased pointers (checks + fallback),
   library calls (STM), carried recurrences (doacross), random configs *)
let gen_hard_kernel =
  let open QCheck2.Gen in
  let* n = int_range 300 1200 in
  let* alias = bool in
  let* use_pow = bool in
  let* carried = bool in
  let* k = map float_of_int (int_range 2 7) in
  let pow_decl = if use_pow then "extern double pow(double, double);\n" else "" in
  let body =
    (if use_pow then
       Printf.sprintf "    q[i] = p[i] * %f + pow(1.01, 4.0);\n" k
     else Printf.sprintf "    q[i] = p[i] * %f + 1.0;\n" k)
    ^ (if carried then "    acc = acc * 0.5 + q[i];\n" else "")
  in
  return
    (Printf.sprintf
       "%sint main() {\n\
        \  double *p = alloc_double(%d);\n\
        \  double *q = %s;\n\
        \  for (int i = 0; i < %d; i++) { p[i] = (double)(i %% 13) * 0.3; }\n\
        \  double acc = 0.0;\n\
        \  for (int i = 0; i < %d; i++) {\n%s  }\n\
        \  print_float(acc + q[0] + q[%d]);\n\
        \  return 0;\n\
        }"
       pow_decl n
       (if alias then "p" else Printf.sprintf "alloc_double(%d)" n)
       n n body (n - 1))

let gen_hard_config =
  let open QCheck2.Gen in
  let* threads = int_range 1 8 in
  let* use_doacross = bool in
  let* stm_everywhere = bool in
  let* rr = bool in
  return
    (Janus.config ~threads ~use_doacross ~stm_everywhere
       ?force_policy:
         (if rr then Some (Janus_schedule.Desc.Round_robin 8) else None)
       ())

let prop_hard_pipeline_matches_native =
  QCheck2.Test.make ~count:15
    ~name:"janus output = native output (aliasing, STM, doacross, configs)"
    ~print:(fun (s, (cfg : Janus.config)) ->
        Printf.sprintf
          "%s\n-- config: threads=%d doacross=%b stm_everywhere=%b policy=%s"
          s cfg.Janus.threads cfg.Janus.use_doacross cfg.Janus.stm_everywhere
          (match cfg.Janus.force_policy with
           | None -> "default"
           | Some Janus_schedule.Desc.Chunked -> "chunked"
           | Some (Janus_schedule.Desc.Round_robin b) ->
             Printf.sprintf "round-robin(%d)" b
           | Some (Janus_schedule.Desc.Doacross p) ->
             Printf.sprintf "doacross(%d)" p))
    QCheck2.Gen.(pair gen_hard_kernel gen_hard_config)
    (fun (src, cfg) ->
       let img = compile src in
       let native = Janus.run_native img in
       let par = Janus.parallelise ~cfg img in
       String.equal native.Janus.output par.Janus.output
       && par.Janus.exit_code = native.Janus.exit_code)

let tests =
  [
    Alcotest.test_case "doall speedup" `Quick test_doall_speedup;
    Alcotest.test_case "reduction parallel" `Quick test_reduction_parallel;
    Alcotest.test_case "int reduction" `Quick test_int_reduction;
    Alcotest.test_case "bounds check pass" `Quick test_bounds_check_pass;
    Alcotest.test_case "bounds check fail -> serial" `Quick
      test_bounds_check_fail_falls_back;
    Alcotest.test_case "excall via STM" `Quick test_excall_stm;
    Alcotest.test_case "thread scaling" `Quick test_thread_scaling;
    Alcotest.test_case "static vs profile configs" `Quick
      test_static_vs_profile_configs;
    Alcotest.test_case "O0 end to end" `Quick test_o0_binary_end_to_end;
    Alcotest.test_case "all opt levels correct" `Slow
      test_all_opt_levels_correct;
    Alcotest.test_case "schedule size small" `Quick test_schedule_size_small;
    Alcotest.test_case "round robin policy" `Quick test_round_robin_policy;
    Alcotest.test_case "doacross extension" `Quick test_doacross_extension;
    Alcotest.test_case "prefetch extension" `Quick test_prefetch_extension;
    Alcotest.test_case "prefetch harmless without cache model" `Quick
      test_prefetch_no_cache_model_harmless;
    Alcotest.test_case "fission extension" `Quick test_fission_extension;
    Alcotest.test_case "fission off is bit-identical" `Quick
      test_fission_off_bit_identical;
    Alcotest.test_case "stm-everywhere ablation" `Quick
      test_stm_everywhere_ablation;
    Alcotest.test_case "dbm-only overhead" `Quick test_dbm_only_overhead;
    QCheck_alcotest.to_alcotest prop_pipeline_matches_native;
    QCheck_alcotest.to_alcotest prop_hard_pipeline_matches_native;
  ]
