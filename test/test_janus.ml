let () =
  Alcotest.run "janus"
    [
      ("vx", Test_vx.tests);
      ("vm", Test_vm.tests);
      ("schedule", Test_schedule.tests);
      ("sympoly", Test_sympoly.tests);
      ("jcc", Test_jcc.tests);
      ("analysis", Test_analysis.tests);
      ("verify", Test_verify.tests);
      ("profile", Test_profile.tests);
      ("dbm", Test_dbm.tests);
      ("runtime", Test_runtime.tests);
      ("obs", Test_obs.tests);
      ("pool", Test_pool.tests);
      ("pipeline", Test_pipeline.tests);
      ("e2e", Test_e2e.tests);
      ("suite", Test_suite.tests);
      ("adapt", Test_adapt.tests);
      ("fuzz", Test_fuzz.tests);
      ("served", Test_served.tests);
      ("pgo", Test_pgo.tests);
    ]
