(* Tests for the online adaptive loop governor: the policy engine's
   transitions in isolation, training-free dependence sampling against
   real machine contexts, and end-to-end adaptive runs on the
   adversarial benchmark pair. *)

open Janus_vx
open Janus_vm
open Janus_core
module Adapt = Janus_adapt.Adapt
module Obs = Janus_obs.Obs
module Suite = Janus_suite.Suite

(* small, crisp policy knobs for the unit tests *)
let p =
  { Adapt.window = 4; demote_k = 2; promote_k = 2; probe_period = 3;
    sample_n = 2; gain_pct = 100 }

let lid = 7

let decision =
  Alcotest.testable
    (fun ppf d ->
       Fmt.string ppf
         (match d with
          | Adapt.Go_parallel -> "parallel"
          | Adapt.Go_probe -> "probe"
          | Adapt.Go_sequential -> "sequential"
          | Adapt.Go_sample -> "sample"))
    ( = )

let state =
  Alcotest.testable
    (fun ppf s -> Fmt.string ppf (Adapt.state_name s))
    ( = )

let check_state g expected msg =
  Alcotest.(check (option state)) msg (Some expected) (Adapt.state g lid)

(* ------------------------------------------------------------------ *)
(* Policy engine                                                       *)
(* ------------------------------------------------------------------ *)

let good g = Adapt.record_parallel g lid ~now:0 ~work:800 ~cost:200
    ~commits:0 ~aborts:0

let test_demote_after_k_bad () =
  let g = Adapt.create ~params:p () in
  Adapt.register g lid ~profiled:true;
  check_state g Adapt.Parallel "profiled loop starts parallel";
  Alcotest.(check decision) "first decision" Adapt.Go_parallel
    (Adapt.decide g lid ~now:0);
  Adapt.record_fallback g lid ~now:0;
  check_state g Adapt.Parallel "one bad invocation is tolerated";
  ignore (Adapt.decide g lid ~now:0);
  Adapt.record_fallback g lid ~now:0;
  check_state g Adapt.Probation "demote_k bad invocations demote";
  ignore (Adapt.decide g lid ~now:0);
  Adapt.record_fallback g lid ~now:0;
  check_state g Adapt.Sequential "any bad invocation on probation demotes";
  let s = List.hd (Adapt.snapshot g) in
  Alcotest.(check int) "two demotions recorded" 2 s.Adapt.demotions;
  Alcotest.(check int) "three fallbacks recorded" 3 s.Adapt.fallbacks

let test_good_outcomes_keep_parallel () =
  let g = Adapt.create ~params:p () in
  Adapt.register g lid ~profiled:true;
  for _ = 1 to 20 do
    Alcotest.(check decision) "stays parallel" Adapt.Go_parallel
      (Adapt.decide g lid ~now:0);
    good g
  done;
  check_state g Adapt.Parallel "good loop never leaves parallel";
  let s = List.hd (Adapt.snapshot g) in
  Alcotest.(check int) "no demotions" 0 s.Adapt.demotions

let test_losing_parallelism_is_bad () =
  (* realised work below the main-thread cost counts as bad even when
     every check passes: the invocation lost cycles *)
  let g = Adapt.create ~params:p () in
  Adapt.register g lid ~profiled:true;
  ignore (Adapt.decide g lid ~now:0);
  Adapt.record_parallel g lid ~now:0 ~work:100 ~cost:900 ~commits:0 ~aborts:0;
  ignore (Adapt.decide g lid ~now:0);
  Adapt.record_parallel g lid ~now:0 ~work:100 ~cost:900 ~commits:0 ~aborts:0;
  check_state g Adapt.Probation "cycle-losing invocations demote"

let test_aborts_outnumbering_commits_is_bad () =
  let g = Adapt.create ~params:p () in
  Adapt.register g lid ~profiled:true;
  for _ = 1 to 2 do
    ignore (Adapt.decide g lid ~now:0);
    Adapt.record_parallel g lid ~now:0 ~work:800 ~cost:200 ~commits:1
      ~aborts:5
  done;
  check_state g Adapt.Probation "abort-dominated invocations demote"

let demote_to_sequential g =
  for _ = 1 to 3 do
    ignore (Adapt.decide g lid ~now:0);
    Adapt.record_fallback g lid ~now:0
  done

let test_probe_and_repromote () =
  let g = Adapt.create ~params:p () in
  Adapt.register g lid ~profiled:true;
  demote_to_sequential g;
  check_state g Adapt.Sequential "demoted";
  (* probe_period - 1 sequential invocations, then a probe *)
  Alcotest.(check decision) "seq 1" Adapt.Go_sequential (Adapt.decide g lid ~now:0);
  Alcotest.(check decision) "seq 2" Adapt.Go_sequential (Adapt.decide g lid ~now:0);
  Alcotest.(check decision) "probe" Adapt.Go_probe (Adapt.decide g lid ~now:0);
  (* a good probe re-enters probation; promote_k good invocations
     restore full parallel execution *)
  good g;
  check_state g Adapt.Probation "good probe promotes to probation";
  ignore (Adapt.decide g lid ~now:0);
  good g;
  ignore (Adapt.decide g lid ~now:0);
  good g;
  check_state g Adapt.Parallel "promote_k good invocations re-promote";
  let s = List.hd (Adapt.snapshot g) in
  Alcotest.(check int) "probe counted" 1 s.Adapt.probes;
  Alcotest.(check int) "two promotions" 2 s.Adapt.promotions

let test_failed_probe_stays_sequential () =
  let g = Adapt.create ~params:p () in
  Adapt.register g lid ~profiled:true;
  demote_to_sequential g;
  ignore (Adapt.decide g lid ~now:0);
  ignore (Adapt.decide g lid ~now:0);
  Alcotest.(check decision) "probe" Adapt.Go_probe (Adapt.decide g lid ~now:0);
  Adapt.record_fallback g lid ~now:0;
  check_state g Adapt.Sequential "failed probe stays sequential";
  (* the probe counter restarts: another full period before the next *)
  Alcotest.(check decision) "seq" Adapt.Go_sequential (Adapt.decide g lid ~now:0)

let test_skip_check_caches_decision () =
  let g = Adapt.create ~params:p () in
  Adapt.register g lid ~profiled:true;
  demote_to_sequential g;
  (* the check hook asks first; its answer must be the same decision
     LOOP_INIT consumes, not a second drawing (which would advance the
     probe counter twice per invocation) *)
  Alcotest.(check bool) "check skipped" true (Adapt.skip_check g lid);
  Alcotest.(check bool) "idempotent" true (Adapt.skip_check g lid);
  Alcotest.(check decision) "consumed" Adapt.Go_sequential
    (Adapt.decide g lid ~now:0);
  Alcotest.(check bool) "seq 2" true (Adapt.skip_check g lid);
  ignore (Adapt.decide g lid ~now:0);
  Alcotest.(check bool) "probe not skipped" false (Adapt.skip_check g lid);
  Alcotest.(check decision) "probe" Adapt.Go_probe (Adapt.decide g lid ~now:0)

let test_ungoverned_loop_inert () =
  let g = Adapt.create ~params:p () in
  Alcotest.(check bool) "not governed" false (Adapt.governed g lid);
  Alcotest.(check bool) "no skip" false (Adapt.skip_check g lid);
  Alcotest.(check decision) "always parallel" Adapt.Go_parallel
    (Adapt.decide g lid ~now:0);
  Adapt.record_fallback g lid ~now:0;
  Alcotest.(check (list pass)) "no ledger" [] (Adapt.snapshot g)

let test_governor_events_emitted () =
  let obs = Obs.create ~enabled:true () in
  let g = Adapt.create ~params:p ~obs () in
  Adapt.register g lid ~profiled:true;
  demote_to_sequential g;
  ignore (Adapt.decide g lid ~now:0);
  ignore (Adapt.decide g lid ~now:0);
  ignore (Adapt.decide g lid ~now:0);  (* probe *)
  good g;                              (* promote to probation *)
  let count cat =
    try List.assoc cat (Obs.categories obs) with Not_found -> 0
  in
  Alcotest.(check int) "demotions traced" 2 (count "governor_demoted");
  Alcotest.(check int) "probe traced" 1 (count "governor_probe");
  Alcotest.(check int) "promotion traced" 1 (count "governor_promoted")

(* ------------------------------------------------------------------ *)
(* Training-free sampling against a real machine context               *)
(* ------------------------------------------------------------------ *)

let make_ctx () =
  let b = Builder.create () in
  Builder.label b "_start";
  Builder.ins b Insn.Hlt;
  let img = Builder.to_image b ~entry:"_start" in
  let prog = Program.load img in
  Run.fresh_context prog

let test_sampling_finds_dependence () =
  let ctx = make_ctx () in
  let g = Adapt.create ~params:p () in
  Adapt.register g lid ~profiled:false;
  check_state g Adapt.Sampling "unprofiled loop starts sampling";
  Alcotest.(check bool) "check skipped while sampling" true
    (Adapt.skip_check g lid);
  Alcotest.(check decision) "sample decision" Adapt.Go_sample
    (Adapt.decide g lid ~now:0);
  let iter = ref 0L in
  Adapt.sample_begin g lid ctx ~read_iv:(fun () -> !iter) ~exclude:[];
  Semantics.raw_write ctx 0x800000 1L;
  iter := 1L;
  ignore (Semantics.raw_read ctx 0x800000);  (* cross-iteration RAW *)
  Adapt.sample_end g lid ctx ~now:0;
  check_state g Adapt.Sequential "one observed dependence is conclusive";
  Alcotest.(check bool) "observer uninstalled" true (ctx.Machine.observe = None);
  let s = List.hd (Adapt.snapshot g) in
  Alcotest.(check bool) "dep recorded" true s.Adapt.sampled_dep

let test_sampling_commits_to_parallel () =
  let ctx = make_ctx () in
  let g = Adapt.create ~params:p () in
  Adapt.register g lid ~profiled:false;
  for s = 0 to p.Adapt.sample_n - 1 do
    check_state g Adapt.Sampling "still sampling";
    ignore (Adapt.decide g lid ~now:0);
    let iter = ref 0L in
    Adapt.sample_begin g lid ctx ~read_iv:(fun () -> !iter) ~exclude:[];
    (* every iteration touches its own word: independent *)
    for i = 0 to 3 do
      iter := Int64.of_int i;
      Semantics.raw_write ctx (0x800000 + (64 * s) + (8 * i)) 1L
    done;
    Adapt.sample_end g lid ctx ~now:0
  done;
  check_state g Adapt.Parallel "a clean sample budget commits to parallel";
  let s = List.hd (Adapt.snapshot g) in
  Alcotest.(check int) "samples counted" p.Adapt.sample_n s.Adapt.samples;
  Alcotest.(check bool) "no dep" false s.Adapt.sampled_dep

let test_sampling_exclusions () =
  (* privatised/reduction addresses and accesses outside globals+heap
     must not register as dependences *)
  let ctx = make_ctx () in
  let g = Adapt.create ~params:p () in
  Adapt.register g lid ~profiled:false;
  ignore (Adapt.decide g lid ~now:0);
  let iter = ref 0L in
  Adapt.sample_begin g lid ctx ~read_iv:(fun () -> !iter) ~exclude:[ 0x800100 ];
  let stack = Layout.stack_top - 64 in
  Semantics.raw_write ctx 0x800100 1L;  (* excluded (reduction loc) *)
  Semantics.raw_write ctx stack 1L;     (* outside globals+heap *)
  iter := 1L;
  Semantics.raw_write ctx 0x800100 2L;
  Semantics.raw_write ctx stack 2L;
  Adapt.sample_end g lid ctx ~now:0;
  let s = List.hd (Adapt.snapshot g) in
  Alcotest.(check bool) "excluded accesses carry no dep" false
    s.Adapt.sampled_dep

(* ------------------------------------------------------------------ *)
(* End-to-end: the adversarial pair                                    *)
(* ------------------------------------------------------------------ *)

let runs b ~adapt =
  let image = Suite.compile b in
  let native = Janus.run_native ~input:(Suite.ref_input b) image in
  let par =
    Janus.parallelise
      ~cfg:(Janus.config ~adapt ())
      ~train_input:(Suite.train_input b)
      ~input:(Suite.ref_input b) image
  in
  (native, par)

let test_adv_alias_demoted_and_faster () =
  let b = Suite.find_exn "adv.alias" in
  let native, static = runs b ~adapt:false in
  let _, adaptive = runs b ~adapt:true in
  (* the kernel must actually be deployed as a checked parallel loop,
     or this test would pass vacuously *)
  Alcotest.(check bool) "kernel selected" true
    (static.Janus.selected_loops <> []);
  Alcotest.(check string) "static output" native.Janus.output
    static.Janus.output;
  Alcotest.(check string) "adaptive output" native.Janus.output
    adaptive.Janus.output;
  let g =
    match adaptive.Janus.governor with
    | Some g -> g
    | None -> Alcotest.fail "adaptive run carries its governor"
  in
  let s =
    match List.filter (fun s -> s.Adapt.demotions > 0) (Adapt.snapshot g) with
    | [ s ] -> s
    | _ -> Alcotest.fail "exactly one loop should be demoted"
  in
  Alcotest.(check state) "pathological loop ends sequential"
    Adapt.Sequential s.Adapt.final;
  (* demoted within K bad invocations: with the default window the
     governor needs demote_k bad to leave Parallel and one more to
     leave Probation *)
  let k = (Adapt.params g).Adapt.demote_k + 1 in
  Alcotest.(check bool)
    (Printf.sprintf "fallbacks %d within K=%d (+probes %d)" s.Adapt.fallbacks
       k s.Adapt.probes)
    true
    (s.Adapt.fallbacks <= k + s.Adapt.probes);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive %d < static %d cycles" adaptive.Janus.cycles
       static.Janus.cycles)
    true
    (adaptive.Janus.cycles < static.Janus.cycles)

let test_adv_stable_unchanged_by_governor () =
  let b = Suite.find_exn "adv.stable" in
  let native, static = runs b ~adapt:false in
  let _, adaptive = runs b ~adapt:true in
  Alcotest.(check bool) "kernel selected" true
    (static.Janus.selected_loops <> []);
  Alcotest.(check string) "output" native.Janus.output adaptive.Janus.output;
  (* a well-behaved loop never leaves Parallel, so the governed run
     takes exactly the decisions the static schedule would *)
  Alcotest.(check int) "cycles identical" static.Janus.cycles
    adaptive.Janus.cycles;
  (match adaptive.Janus.governor with
   | Some g ->
     List.iter
       (fun s ->
          Alcotest.(check int) "no demotions" 0 s.Adapt.demotions;
          Alcotest.(check state) "stays parallel" Adapt.Parallel s.Adapt.final)
       (Adapt.snapshot g)
   | None -> Alcotest.fail "governor missing")

(* ------------------------------------------------------------------ *)
(* Training-free mode end-to-end (run_scheduled = deployment without   *)
(* a .jpf)                                                             *)
(* ------------------------------------------------------------------ *)

let test_training_free_commits_parallel () =
  let b = Suite.find_exn "adv.stable" in
  let image = Suite.compile b in
  let cfg = Janus.config ~adapt:true () in
  let prep = Janus.prepare ~cfg ~train_input:(Suite.train_input b) image in
  let native = Janus.run_native ~input:(Suite.ref_input b) image in
  let r = Janus.run_scheduled ~cfg ~input:(Suite.ref_input b) image
      prep.Janus.p_schedule
  in
  Alcotest.(check string) "output" native.Janus.output r.Janus.output;
  let g = Option.get r.Janus.governor in
  let s = List.hd (Adapt.snapshot g) in
  Alcotest.(check state) "committed to parallel" Adapt.Parallel s.Adapt.final;
  Alcotest.(check int) "sampled the configured budget"
    (Adapt.params g).Adapt.sample_n s.Adapt.samples;
  Alcotest.(check bool) "then ran parallel" true (s.Adapt.par_invocations > 0)

(* aliasing is input-dependent: training sees mode 0 (disjoint), the
   deployed run sees mode 1 (aliased from the first invocation) *)
let aliasing_src =
  "void kernel(double *src, double *dst, int n) {\n\
   \  for (int i = 0; i < n; i++) {\n\
   \    dst[i + 1] = src[i] * 0.5 + dst[i + 1] * 0.25;\n\
   \  }\n\
   }\n\
   int main() {\n\
   \  int iters = read_int();\n\
   \  int mode = read_int();\n\
   \  int n = 480;\n\
   \  double *a = alloc_double(n + 1);\n\
   \  double *b = alloc_double(n + 1);\n\
   \  for (int i = 0; i <= n; i++) {\n\
   \    a[i] = (double)(i % 7) * 0.25;\n\
   \    b[i] = (double)(i % 5) * 0.5;\n\
   \  }\n\
   \  double acc = 0.0;\n\
   \  for (int t = 0; t < iters; t++) {\n\
   \    if (mode == 0) { kernel(a, b, n); } else { kernel(b, b, n); }\n\
   \    acc = acc * 0.5 + b[n] + b[n / 2];\n\
   \  }\n\
   \  print_float(acc);\n\
   \  return 0;\n\
   }"

let test_training_free_commits_sequential () =
  let image = Janus_jcc.Jcc.compile aliasing_src in
  let cfg = Janus.config ~adapt:true () in
  let prep = Janus.prepare ~cfg ~train_input:[ 40L; 0L ] image in
  let native = Janus.run_native ~input:[ 60L; 1L ] image in
  let r = Janus.run_scheduled ~cfg ~input:[ 60L; 1L ] image
      prep.Janus.p_schedule
  in
  Alcotest.(check string) "output" native.Janus.output r.Janus.output;
  let g = Option.get r.Janus.governor in
  let s = List.hd (Adapt.snapshot g) in
  Alcotest.(check state) "committed to sequential" Adapt.Sequential
    s.Adapt.final;
  Alcotest.(check bool) "dependence sampled" true s.Adapt.sampled_dep;
  (* the whole point: outside the periodic re-promotion probes, the
     loop never reaches a failing check *)
  Alcotest.(check int) "only probes fall back" s.Adapt.probes
    s.Adapt.fallbacks;
  Alcotest.(check int) "only probes fail checks" s.Adapt.probes
    s.Adapt.checks_failed

(* ------------------------------------------------------------------ *)
(* Sequential-fallback path: counters agree with the trace, output     *)
(* with native                                                         *)
(* ------------------------------------------------------------------ *)

let test_fallback_counters_agree_with_trace () =
  (* a shortened adv.alias run (48 parallel invocations, then 8 whose
     check fails and flushes the modified code) keeps the full trace
     inside the ring buffer so the census is complete *)
  let b = Suite.find_exn "adv.alias" in
  let image = Suite.compile b in
  let native = Janus.run_native ~input:[ 56L ] image in
  let par =
    Janus.parallelise
      ~cfg:(Janus.config ~trace:true ())
      ~train_input:(Suite.train_input b) ~input:[ 56L ] image
  in
  Alcotest.(check bool) "kernel selected" true
    (par.Janus.selected_loops <> []);
  Alcotest.(check string) "failed checks degrade to native output"
    native.Janus.output par.Janus.output;
  let obs = Option.get par.Janus.obs in
  Alcotest.(check int) "no events dropped" 0 (Obs.dropped obs);
  let census cat =
    try List.assoc cat (Obs.categories obs) with Not_found -> 0
  in
  Alcotest.(check bool) "fallbacks happened" true
    (Obs.counter obs "rt.seq_fallbacks" > 0);
  Alcotest.(check int) "seq_fallback counter agrees with trace"
    (census "seq_fallback")
    (Obs.counter obs "rt.seq_fallbacks");
  Alcotest.(check bool) "cache flushed" true
    (Obs.counter obs "dbm.cache_flushes" > 0);
  Alcotest.(check int) "cache_flushed counter agrees with trace"
    (census "cache_flushed")
    (Obs.counter obs "dbm.cache_flushes");
  Alcotest.(check int) "failed checks counter agrees with trace"
    (census "check_failed")
    (Obs.counter obs "rt.checks_failed")

(* ------------------------------------------------------------------ *)
(* Regression: per-invocation check stats reset at LOOP_INIT           *)
(* ------------------------------------------------------------------ *)

let test_inv_check_stats_reset_per_invocation () =
  (* 250 invocations of a checked loop: if the per-invocation stats
     leaked across LOOP_INITs the high-water mark would reach 250 *)
  let b = Suite.find_exn "adv.stable" in
  let _, par = runs b ~adapt:false in
  let obs = Option.get par.Janus.obs in
  Alcotest.(check bool) "checks ran" true
    (Obs.counter obs "rt.checks_passed" > 100);
  Alcotest.(check int) "at most one check charged per invocation" 1
    (Obs.counter obs "rt.max_inv_checks")

let tests =
  [
    Alcotest.test_case "demote after K bad" `Quick test_demote_after_k_bad;
    Alcotest.test_case "good outcomes keep parallel" `Quick
      test_good_outcomes_keep_parallel;
    Alcotest.test_case "losing parallelism is bad" `Quick
      test_losing_parallelism_is_bad;
    Alcotest.test_case "abort-dominated is bad" `Quick
      test_aborts_outnumbering_commits_is_bad;
    Alcotest.test_case "probe and re-promote" `Quick test_probe_and_repromote;
    Alcotest.test_case "failed probe stays sequential" `Quick
      test_failed_probe_stays_sequential;
    Alcotest.test_case "skip_check caches the decision" `Quick
      test_skip_check_caches_decision;
    Alcotest.test_case "ungoverned loop is inert" `Quick
      test_ungoverned_loop_inert;
    Alcotest.test_case "governor events emitted" `Quick
      test_governor_events_emitted;
    Alcotest.test_case "sampling finds dependence" `Quick
      test_sampling_finds_dependence;
    Alcotest.test_case "sampling commits to parallel" `Quick
      test_sampling_commits_to_parallel;
    Alcotest.test_case "sampling exclusions" `Quick test_sampling_exclusions;
    Alcotest.test_case "adv.alias demoted and faster" `Slow
      test_adv_alias_demoted_and_faster;
    Alcotest.test_case "adv.stable unchanged by governor" `Slow
      test_adv_stable_unchanged_by_governor;
    Alcotest.test_case "training-free commits parallel" `Slow
      test_training_free_commits_parallel;
    Alcotest.test_case "training-free commits sequential" `Slow
      test_training_free_commits_sequential;
    Alcotest.test_case "fallback counters agree with trace" `Slow
      test_fallback_counters_agree_with_trace;
    Alcotest.test_case "per-invocation check stats reset" `Slow
      test_inv_check_stats_reset_per_invocation;
  ]
