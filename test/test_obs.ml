(* Tests for janus_obs: the ring-buffer event trace, the metrics
   registry, the exporters, and the Fig. 8 breakdown derived from
   published metrics. *)

module Obs = Janus_obs.Obs
module Json = Janus_obs.Obs.Json
module Janus = Janus_core.Janus
module Suite = Janus_suite.Suite

(* ------------------------------------------------------------------ *)
(* ring buffer                                                         *)
(* ------------------------------------------------------------------ *)

let test_ring_wrap_keeps_newest () =
  let o = Obs.create ~capacity:8 ~enabled:true () in
  for i = 0 to 19 do
    Obs.emit o ~tid:0 ~ts:i (Obs.Rule_fired { rule = "LOOP_INIT"; addr = i })
  done;
  Alcotest.(check int) "total" 20 (Obs.total_events o);
  Alcotest.(check int) "dropped" 12 (Obs.dropped o);
  let ts = List.map (fun (e : Obs.event) -> e.Obs.ts) (Obs.events o) in
  Alcotest.(check (list int)) "newest retained, oldest first"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ] ts

let test_disabled_emit_records_nothing () =
  let o = Obs.create () in
  Alcotest.(check bool) "tracing off by default" false (Obs.tracing o);
  (* instrumentation sites guard on [tracing], so with tracing off the
     event payload is never even built — spin the guard and confirm it
     stays allocation-free *)
  let before = Gc.minor_words () in
  for i = 0 to 999 do
    if Obs.tracing o then Obs.emit o ~tid:0 ~ts:i Obs.Cache_flushed
  done;
  let allocated = Gc.minor_words () -. before in
  Alcotest.(check bool) "guard allocates nothing" true (allocated < 64.);
  Alcotest.(check int) "no events" 0 (Obs.total_events o);
  Alcotest.(check (list (pair string int))) "no categories" []
    (Obs.categories o)

let test_toggle_mid_run () =
  let o = Obs.create ~capacity:8 () in
  Obs.set_tracing o true;
  Obs.emit o ~tid:1 ~ts:5 (Obs.Tx_started { addr = 0x400100 });
  Obs.set_tracing o false;
  if Obs.tracing o then
    Obs.emit o ~tid:1 ~ts:6 (Obs.Tx_committed { reads = 1; writes = 1 });
  Alcotest.(check int) "only the traced event" 1 (Obs.total_events o)

(* ------------------------------------------------------------------ *)
(* metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_counters_and_hists () =
  let o = Obs.create () in
  Obs.incr o "a.x";
  Obs.incr o ~by:41 "a.x";
  Obs.set o "a.y" 7;
  Alcotest.(check int) "incr" 42 (Obs.counter o "a.x");
  Alcotest.(check int) "unknown counter reads 0" 0 (Obs.counter o "nope");
  Alcotest.(check (list (pair string int))) "sorted"
    [ ("a.x", 42); ("a.y", 7) ] (Obs.counters o);
  Obs.observe o "h" 1;
  Obs.observe o "h" 100;
  match Obs.hist_summaries o with
  | [ ("h", s) ] ->
    Alcotest.(check int) "n" 2 s.Obs.n;
    Alcotest.(check int) "sum" 101 s.Obs.sum;
    Alcotest.(check int) "min" 1 s.Obs.min_v;
    Alcotest.(check int) "max" 100 s.Obs.max_v
  | _ -> Alcotest.fail "expected one histogram"

(* ------------------------------------------------------------------ *)
(* exporters                                                           *)
(* ------------------------------------------------------------------ *)

let sample_events o =
  Obs.emit o ~tid:0 ~ts:10 ~dur:4
    (Obs.Block_translated { addr = 0x400000; insns = 3; trace = false });
  Obs.emit o ~tid:0 ~ts:20 (Obs.Loop_init { loop_id = 1; threads = 4; trips = 64 });
  Obs.emit o ~tid:2 ~ts:25
    (Obs.Chunk_dispatched
       { loop_id = 1; worker = 1; iv_start = 16L; iv_end = 32L; iters = 16 });
  Obs.emit o ~tid:2 ~ts:30 (Obs.Check_failed { loop_id = 1; pairs = 2 });
  Obs.emit o ~tid:2 ~ts:31 (Obs.Seq_fallback { loop_id = 1 });
  Obs.emit o ~tid:2 ~ts:35 (Obs.Tx_aborted { addr = 0x400200 });
  Obs.emit o ~tid:0 ~ts:40 Obs.Cache_flushed

let test_chrome_json_well_formed () =
  let o = Obs.create ~enabled:true () in
  sample_events o;
  let root =
    match Json.parse (Obs.chrome_json o) with
    | Ok v -> v
    | Error msg -> Alcotest.failf "chrome export does not parse: %s" msg
  in
  (match Json.member "displayTimeUnit" root with
   | Some (Json.Str _) -> ()
   | _ -> Alcotest.fail "missing displayTimeUnit");
  let events =
    match Json.member "traceEvents" root with
    | Some (Json.Arr evs) -> evs
    | _ -> Alcotest.fail "traceEvents missing or not an array"
  in
  let phases =
    List.filter_map
      (fun ev ->
         match Json.member "ph" ev with Some (Json.Str s) -> Some s | _ -> None)
      events
  in
  Alcotest.(check int) "every event has a phase" (List.length events)
    (List.length phases);
  Alcotest.(check bool) "has a span" true (List.mem "X" phases);
  Alcotest.(check bool) "has an instant" true (List.mem "i" phases);
  Alcotest.(check bool) "has thread metadata" true (List.mem "M" phases);
  (* the failure-side categories exported above survive the round trip *)
  let cats =
    List.filter_map
      (fun ev ->
         match Json.member "cat" ev with Some (Json.Str s) -> Some s | _ -> None)
      events
  in
  List.iter
    (fun c ->
       Alcotest.(check bool) (c ^ " exported") true (List.mem c cats))
    [ "check_failed"; "seq_fallback"; "tx_abort"; "cache_flushed" ]

let test_jsonl_parses_per_line () =
  let o = Obs.create ~enabled:true () in
  sample_events o;
  let lines =
    String.split_on_char '\n' (String.trim (Obs.jsonl o))
  in
  Alcotest.(check int) "one line per event" 7 (List.length lines);
  List.iter
    (fun line ->
       match Json.parse line with
       | Ok (Json.Obj _) -> ()
       | Ok _ -> Alcotest.failf "line is not an object: %s" line
       | Error msg -> Alcotest.failf "bad jsonl line %S: %s" line msg)
    lines

let test_json_parser_rejects_garbage () =
  (match Json.parse "{\"a\": [1, 2" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "truncated JSON accepted");
  match Json.parse "{\"a\": [1, true, \"x\"], \"b\": null}" with
  | Ok v ->
    (match Json.member "a" v with
     | Some (Json.Arr [ Json.Num 1.; Json.Bool true; Json.Str "x" ]) -> ()
     | _ -> Alcotest.fail "wrong parse of member a")
  | Error msg -> Alcotest.failf "valid JSON rejected: %s" msg

(* ------------------------------------------------------------------ *)
(* integration with runs                                               *)
(* ------------------------------------------------------------------ *)

let test_tracing_does_not_perturb_cycles () =
  let image = Suite.compile (Suite.find_exn "470.lbm") in
  let quiet = Janus.run_dbm_only ~input:[ 6L ] image in
  let traced = Janus.run_dbm_only ~input:[ 6L ] ~trace:true image in
  Alcotest.(check int) "cycles bit-identical" quiet.Janus.cycles
    traced.Janus.cycles;
  Alcotest.(check string) "output identical" quiet.Janus.output
    traced.Janus.output;
  (match quiet.Janus.obs with
   | Some o -> Alcotest.(check int) "untraced run has no events" 0
                 (Obs.total_events o)
   | None -> Alcotest.fail "dbm run should carry a metrics registry");
  match traced.Janus.obs with
  | Some o ->
    Alcotest.(check bool) "traced run has events" true (Obs.total_events o > 0)
  | None -> Alcotest.fail "traced run lost its tracer"

(* the paper's Fig. 8 decomposition must be reconstructible from the
   published dbm.* counters alone *)
let check_breakdown name =
  let image = Suite.compile (Suite.find_exn name) in
  let result =
    Janus.parallelise ~cfg:(Janus.config ~threads:4 ())
      ~train_input:[ 4L ] ~input:[ 12L ] image
  in
  match result.Janus.obs with
  | None -> Alcotest.fail "parallelise should carry a metrics registry"
  | Some o ->
    let b = Janus.breakdown_of_metrics o ~cycles:result.Janus.cycles in
    let r = result.Janus.breakdown in
    Alcotest.(check int) (name ^ " seq") r.Janus.seq_cycles b.Janus.seq_cycles;
    Alcotest.(check int) (name ^ " par") r.Janus.par_cycles b.Janus.par_cycles;
    Alcotest.(check int) (name ^ " init/finish") r.Janus.init_finish_cycles
      b.Janus.init_finish_cycles;
    Alcotest.(check int) (name ^ " translate") r.Janus.translate_cycles
      b.Janus.translate_cycles;
    Alcotest.(check int) (name ^ " check") r.Janus.check_cycles
      b.Janus.check_cycles

let test_breakdown_from_metrics () =
  check_breakdown "470.lbm";
  check_breakdown "410.bwaves"

let tests =
  [
    Alcotest.test_case "ring wrap keeps newest" `Quick
      test_ring_wrap_keeps_newest;
    Alcotest.test_case "disabled emit records nothing" `Quick
      test_disabled_emit_records_nothing;
    Alcotest.test_case "toggle mid run" `Quick test_toggle_mid_run;
    Alcotest.test_case "counters and histograms" `Quick
      test_counters_and_hists;
    Alcotest.test_case "chrome json well-formed" `Quick
      test_chrome_json_well_formed;
    Alcotest.test_case "jsonl parses per line" `Quick
      test_jsonl_parses_per_line;
    Alcotest.test_case "json parser" `Quick test_json_parser_rejects_garbage;
    Alcotest.test_case "tracing does not perturb cycles" `Quick
      test_tracing_does_not_perturb_cycles;
    Alcotest.test_case "fig8 breakdown from metrics" `Quick
      test_breakdown_from_metrics;
  ]
