(* janus_pgo: the persistent profile store and its convergence driver.

   Subcommands:
     collect --bench NAME --store DIR [--scale N] [--source fleet|training]
             [--fuel N]
     show    --bench NAME --store DIR
     iterate --bench NAME --store DIR [--rounds N] [--threshold PCT]
             [--fleet N,N,...] [--adapt] [--jobs N]
     store prune --dir DIR [--max-age SECONDS] [--max-bytes BYTES]

   collect runs the offline profiler over one input and merges the run
   into the store (one .jprof per binary); show prints the merged
   aggregate; iterate drives run -> collect -> merge -> re-schedule
   until the schedule digest is stable; store prune bounds the
   directory, oldest files first.

   Exit codes: 0 success, 2 usage error, 3 runtime failure. *)

module Pgo = Janus_pgo.Pgo
module Suite = Janus_suite.Suite
module Pipeline = Janus_core.Pipeline
module Janus = Janus_core.Janus
module Pool = Janus_pool.Pool

let usage () =
  Fmt.epr
    "usage: janus_pgo collect --bench NAME --store DIR [--scale N] \
     [--source fleet|training] [--fuel N]@.\
    \       janus_pgo show --bench NAME --store DIR@.\
    \       janus_pgo iterate --bench NAME --store DIR [--rounds N] \
     [--threshold PCT] [--fleet N,N,...] [--adapt]@.\
    \       janus_pgo store prune --dir DIR [--max-age SECONDS] \
     [--max-bytes BYTES]@.";
  exit 2

(* every valued flag shares one guard: a flag with no value — last
   argument included — is a usage error, never a silent default *)
let missing_value flag =
  Fmt.epr "janus_pgo: %s expects a value@." flag;
  exit 2

let parse_opts args =
  let opts = Hashtbl.create 8 in
  let valued =
    [ "--bench"; "--store"; "--dir"; "--scale"; "--source"; "--fuel";
      "--rounds"; "--threshold"; "--fleet"; "--max-age"; "--max-bytes";
      "--jobs" ]
  in
  let boolean = [ "--adapt" ] in
  let rec go = function
    | [] -> ()
    | flag :: rest when List.mem flag valued -> (
        match rest with
        | v :: rest when not (String.length v > 2 && String.sub v 0 2 = "--")
          ->
          Hashtbl.replace opts flag v;
          go rest
        | _ -> missing_value flag)
    | flag :: rest when List.mem flag boolean ->
      Hashtbl.replace opts flag "true";
      go rest
    | arg :: _ ->
      Fmt.epr "janus_pgo: unknown argument %S@." arg;
      exit 2
  in
  go args;
  opts

let required opts flag =
  match Hashtbl.find_opt opts flag with
  | Some v -> v
  | None ->
    Fmt.epr "janus_pgo: %s is required@." flag;
    exit 2

let int_opt opts flag ~default =
  match Hashtbl.find_opt opts flag with
  | None -> default
  | Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 0 -> n
      | _ ->
        Fmt.epr "janus_pgo: %s expects a non-negative integer, got %S@." flag
          v;
        exit 2)

let bench_of opts =
  let name = required opts "--bench" in
  match Suite.find name with
  | Some b -> b
  | None ->
    Fmt.epr "janus_pgo: unknown benchmark %S@." name;
    exit 2

let store_of opts = Pgo.Store.open_ (required opts "--store")

let cmd_collect opts =
  let b = bench_of opts in
  let store = store_of opts in
  let image = Suite.compile b in
  let scale =
    int_opt opts "--scale"
      ~default:
        (match Suite.ref_input b with x :: _ -> Int64.to_int x | [] -> 0)
  in
  let source =
    match Hashtbl.find_opt opts "--source" with
    | None | Some "fleet" -> Pgo.Fleet
    | Some "training" -> Pgo.Training
    | Some s ->
      Fmt.epr "janus_pgo: --source expects fleet or training, got %S@." s;
      exit 2
  in
  let fuel =
    match Hashtbl.find_opt opts "--fuel" with
    | None -> None
    | Some _ -> Some (int_opt opts "--fuel" ~default:0)
  in
  let merged =
    Pgo.collect ?fuel ~source ~store ~input:[ Int64.of_int scale ] image
  in
  Fmt.pr "bench=%s image=%s source=%s scale=%d runs=%d gen=%s@." b.Suite.name
    merged.Pgo.p_image (Pgo.source_name source) scale (Pgo.runs merged)
    (Pgo.generation merged)

let cmd_show opts =
  let b = bench_of opts in
  let store = store_of opts in
  let image_k = Pipeline.image_key (Suite.compile b) in
  match Pgo.Store.load store ~image:image_k with
  | None ->
    Fmt.pr "bench=%s image=%s runs=0 (no profile stored)@." b.Suite.name
      image_k;
    if Pgo.Store.errors store > 0 then
      Fmt.pr "store-errors=%d@." (Pgo.Store.errors store)
  | Some p ->
    Fmt.pr "bench=%s image=%s runs=%d gen=%s store-errors=%d@." b.Suite.name
      image_k (Pgo.runs p) (Pgo.generation p) (Pgo.Store.errors store);
    Fmt.pr "%-6s %-11s %6s %10s %12s %8s %8s %8s@." "loop" "verdict" "runs"
      "invocs" "self-insns" "chk-fail" "demoted" "suspect";
    List.iter
      (fun (a : Pgo.agg) ->
        Fmt.pr "%-6d %-11s %6d %10d %12d %8d %8d %8s@." a.Pgo.a_lid
          (Pgo.verdict_name a.Pgo.a_verdict)
          a.Pgo.a_runs a.Pgo.a_invocations a.Pgo.a_self_insns
          a.Pgo.a_checks_failed a.Pgo.a_demotions
          (if a.Pgo.a_suspect then "yes" else "-"))
      (Pgo.aggregate p)

let fleet_of opts b =
  match Hashtbl.find_opt opts "--fleet" with
  | None -> [ Suite.ref_input b ]
  | Some spec ->
    List.map
      (fun s ->
        match int_of_string_opt (String.trim s) with
        | Some n -> [ Int64.of_int n ]
        | None ->
          Fmt.epr "janus_pgo: --fleet expects integers, got %S@." s;
          exit 2)
      (String.split_on_char ',' spec)

let cmd_iterate opts =
  let b = bench_of opts in
  let store = store_of opts in
  let image = Suite.compile b in
  let adapt = Hashtbl.mem opts "--adapt" in
  let cfg = Janus.config ~adapt () in
  let max_rounds = int_opt opts "--rounds" ~default:6 in
  let threshold =
    match Hashtbl.find_opt opts "--threshold" with
    | None -> 0.5
    | Some v -> (
        match float_of_string_opt v with
        | Some f when f >= 0.0 -> f
        | _ ->
          Fmt.epr "janus_pgo: --threshold expects a percentage, got %S@." v;
          exit 2)
  in
  let go pool =
    ignore pool;
    let outcome =
      Pgo.Iterate.run ~cfg ~max_rounds ~threshold
        ~log:(fun line -> Fmt.pr "%s@." line)
        ~store ~train_input:(Suite.train_input b) ~fleet:(fleet_of opts b)
        ~input:(Suite.ref_input b) image
    in
    Fmt.pr "converged=%b rounds=%d baseline-cycles=%d final-cycles=%d@."
      outcome.Pgo.Iterate.o_converged
      (List.length outcome.Pgo.Iterate.o_rounds)
      outcome.Pgo.Iterate.o_baseline_cycles outcome.Pgo.Iterate.o_final_cycles
  in
  let jobs = int_opt opts "--jobs" ~default:1 in
  if jobs > 1 then Pool.with_pool ~jobs (fun p -> go (Some p)) else go None

let cmd_store_prune opts =
  let dir = required opts "--dir" in
  if not (Sys.file_exists dir) then begin
    Fmt.epr "janus_pgo: no such directory %s@." dir;
    exit 3
  end;
  let store = Pgo.Store.open_ dir in
  let max_age =
    Option.map (fun _ -> int_opt opts "--max-age" ~default:0)
      (Hashtbl.find_opt opts "--max-age")
  in
  let max_bytes =
    Option.map (fun _ -> int_opt opts "--max-bytes" ~default:0)
      (Hashtbl.find_opt opts "--max-bytes")
  in
  let n = Pgo.Store.prune ?max_age ?max_bytes store in
  Fmt.pr "pruned=%d dir=%s@." n dir

let () =
  match Array.to_list Sys.argv with
  | _ :: "store" :: "prune" :: rest ->
    let opts = parse_opts rest in
    (try cmd_store_prune opts with Failure e -> Fmt.epr "%s@." e; exit 3)
  | _ :: cmd :: rest -> (
      let opts = parse_opts rest in
      let run f = try f opts with Failure e -> Fmt.epr "%s@." e; exit 3 in
      match cmd with
      | "collect" -> run cmd_collect
      | "show" -> run cmd_show
      | "iterate" -> run cmd_iterate
      | _ -> usage ())
  | _ -> usage ()
