(* jrs_dump: human-readable dump of a rewrite schedule (.jrs).

   Prints the header, every rule in trigger-address order with its
   payload decoded (loop and check descriptors are expanded from the
   data section, register masks and operand indices are spelled out),
   and a per-rule-kind census over every kind the format defines. This
   is the schedule-side counterpart of jx_objdump.

   With --binary the schedule is cross-referenced against the
   executable it rewrites, and --verify additionally runs the full
   schedule linter (janus_verify's checks) and reports its findings.

   Usage: jrs_dump file.jrs [--binary file.jx [--verify]] *)

open Cmdliner
module Rule = Janus_schedule.Rule
module Schedule = Janus_schedule.Schedule
module Desc = Janus_schedule.Desc
module Rexpr = Janus_schedule.Rexpr
open Janus_vx

let read_schedule path =
  let bytes =
    In_channel.with_open_bin path (fun ic ->
        Bytes.of_string (In_channel.input_all ic))
  in
  Schedule.of_bytes bytes

let pp_location ppf = function
  | Desc.Lreg r -> Reg.pp_gp ppf r
  | Desc.Lfreg r -> Reg.pp_fp ppf r
  | Desc.Lstack off -> Fmt.pf ppf "[rsp%+d]" off
  | Desc.Labs a -> Fmt.pf ppf "[0x%x]" a

let pp_redop ppf = function
  | Desc.Radd_int -> Fmt.string ppf "+ (int)"
  | Desc.Radd_f64 -> Fmt.string ppf "+ (f64)"
  | Desc.Rmul_f64 -> Fmt.string ppf "* (f64)"

let pp_policy ppf = function
  | Desc.Chunked -> Fmt.string ppf "chunked"
  | Desc.Round_robin b -> Fmt.pf ppf "round-robin(block=%d)" b
  | Desc.Doacross pct -> Fmt.pf ppf "doacross(carried=%d%%)" pct

let pp_loop_desc ppf (d : Desc.loop_desc) =
  Fmt.pf ppf "      loop %d: header=0x%x preheader=0x%x latch=0x%x@."
    d.Desc.loop_id d.Desc.header_addr d.Desc.preheader_addr d.Desc.latch_addr;
  Fmt.pf ppf "        exits: %s@."
    (String.concat ", " (List.map (Printf.sprintf "0x%x") d.Desc.exit_addrs));
  Fmt.pf ppf "        iv %a step %Ld while (iv%s %s %a)@." pp_location
    d.Desc.iv d.Desc.iv_step
    (if Int64.equal d.Desc.iv_bound_adjust 0L then ""
     else Printf.sprintf "%+Ld" d.Desc.iv_bound_adjust)
    (Cond.name d.Desc.iv_cond) Rexpr.pp d.Desc.iv_bound;
  Fmt.pf ppf "        init %a, policy %a@." Rexpr.pp d.Desc.iv_init pp_policy
    d.Desc.policy;
  List.iter
    (fun (loc, op) ->
       Fmt.pf ppf "        reduction %a %a@." pp_location loc pp_redop op)
    d.Desc.reductions;
  List.iter
    (fun (e, slot) ->
       Fmt.pf ppf "        privatise %a -> tls[%d]@." Rexpr.pp e slot)
    d.Desc.privatised;
  if d.Desc.live_out_gps <> [] then
    Fmt.pf ppf "        live-out gp: %s@."
      (String.concat ", "
         (List.map (Fmt.str "%a" Reg.pp_gp) d.Desc.live_out_gps));
  if d.Desc.live_out_fps <> [] then
    Fmt.pf ppf "        live-out fp: %s@."
      (String.concat ", "
         (List.map (Fmt.str "%a" Reg.pp_fp) d.Desc.live_out_fps));
  Fmt.pf ppf "        frame copy %d bytes@." d.Desc.frame_copy_bytes

let pp_check_desc ppf (d : Desc.check_desc) =
  Fmt.pf ppf "      check for loop %d (%d pairwise comparisons):@."
    d.Desc.check_loop_id (Desc.check_pairs d);
  List.iter
    (fun (r : Desc.array_range) ->
       Fmt.pf ppf "        %s base %a extent %a width %d@."
         (if r.Desc.written then "write" else "read ")
         Rexpr.pp r.Desc.base Rexpr.pp r.Desc.extent r.Desc.width)
    d.Desc.ranges

let gp_mask_names mask =
  let names = ref [] in
  for i = Reg.gp_count - 1 downto 0 do
    if mask land (1 lsl i) <> 0 then
      names := Fmt.str "%a" Reg.pp_gp (Reg.gp_of_index i) :: !names
  done;
  String.concat ", " !names

let pp_rule sched ppf (r : Rule.t) =
  Fmt.pf ppf "  0x%06x %-18s" r.Rule.addr (Rule.id_name r.Rule.id);
  (match r.Rule.id with
   | Rule.LOOP_INIT | Rule.LOOP_FINISH ->
     Fmt.pf ppf " loop %Ld, descriptor at +%Ld@." r.Rule.aux r.Rule.data;
     if r.Rule.id = Rule.LOOP_INIT then
       pp_loop_desc ppf (Schedule.loop_desc sched r.Rule.data)
   | Rule.MEM_BOUNDS_CHECK ->
     Fmt.pf ppf " loop %Ld, descriptor at +%Ld@." r.Rule.aux r.Rule.data;
     pp_check_desc ppf (Schedule.check_desc sched r.Rule.data)
   | Rule.LOOP_UPDATE_BOUND ->
     Fmt.pf ppf " bound is operand %Ld, compare tests iv%+Ld@." r.Rule.data
       r.Rule.aux
   | Rule.MEM_SPILL_REG | Rule.MEM_RECOVER_REG ->
     Fmt.pf ppf " loop %Ld, regs {%s}@." r.Rule.aux
       (gp_mask_names (Int64.to_int r.Rule.data))
   | Rule.MEM_PRIVATISE ->
     Fmt.pf ppf " loop %Ld -> tls[%Ld]@." r.Rule.aux r.Rule.data
   | Rule.MEM_PREFETCH ->
     Fmt.pf ppf " loop %Ld, %Ld bytes ahead@." r.Rule.aux r.Rule.data
   | Rule.LOOP_FISSION ->
     Fmt.pf ppf " loop %Ld, descriptor at +%Ld@." r.Rule.aux r.Rule.data;
     let fd = Schedule.fission_desc sched r.Rule.data in
     pp_loop_desc ppf fd.Desc.fd_loop;
     Fmt.pf ppf "        infra: %s@."
       (String.concat ", "
          (List.map (Printf.sprintf "0x%x") fd.Desc.fd_infra));
     List.iteri
       (fun i (g : Desc.fission_group) ->
          Fmt.pf ppf "        sub-loop %d (%s): %s@." i
            (if g.Desc.fg_parallel then "parallel" else "sequential")
            (String.concat ", "
               (List.map (Printf.sprintf "0x%x") g.Desc.fg_insns)))
       fd.Desc.fd_groups
   | Rule.PROF_MEM_ACCESS ->
     Fmt.pf ppf " loop %Ld (%s)@." r.Rule.data
       (if Int64.equal r.Rule.aux 1L then "write" else "read")
   | _ -> Fmt.pf ppf " loop %Ld@." r.Rule.data)

let dump input binary verify =
  let sched = read_schedule input in
  let channel =
    match sched.Schedule.channel with
    | Schedule.Profiling -> "profiling"
    | Schedule.Parallelisation -> "parallelisation"
  in
  Fmt.pr "JRS rewrite schedule (%s channel)@." channel;
  Fmt.pr "  %d rules (%d bytes each), %d descriptor bytes, %d bytes total@.@."
    (List.length sched.Schedule.rules)
    Rule.record_size
    (Bytes.length sched.Schedule.data)
    (Schedule.size sched);
  List.iter (pp_rule sched Fmt.stdout) sched.Schedule.rules;
  (* census: every kind the format defines, used or not, so diffs of
     two dumps line up and absent kinds (e.g. MEM_PREFETCH without
     --prefetch) are visible as zeros *)
  Fmt.pr "@.rules by kind:@.";
  List.iter
    (fun id ->
       let n =
         List.length
           (List.filter (fun (r : Rule.t) -> r.Rule.id = id)
              sched.Schedule.rules)
       in
       Fmt.pr "  %-20s %4d@." (Rule.id_name id) n)
    Rule.all_ids;
  match binary with
  | None ->
    if verify then (
      Fmt.epr "jrs_dump: --verify needs --binary BIN.jx@.";
      2)
    else 0
  | Some bin ->
    let image =
      Janus_vx.Image.of_bytes
        (In_channel.with_open_bin bin (fun ic ->
             Bytes.of_string (In_channel.input_all ic)))
    in
    if verify then begin
      let findings = Janus_verify.Verify.lint image sched in
      Fmt.pr "@.verification against %s:@." bin;
      if findings = [] then Fmt.pr "  clean@."
      else
        List.iter
          (fun f -> Fmt.pr "  %a@." Janus_verify.Verify.pp_finding f)
          findings;
      if Janus_verify.Verify.has_errors findings then 1 else 0
    end
    else begin
      (* cheap cross-reference: how many triggers land on instruction
         boundaries of the binary *)
      let decode = Janus_vx.Image.decode_text image in
      let dangling =
        List.filter
          (fun (r : Rule.t) -> not (Hashtbl.mem decode r.Rule.addr))
          sched.Schedule.rules
      in
      Fmt.pr "@.%d/%d triggers land on instruction boundaries of %s@."
        (List.length sched.Schedule.rules - List.length dangling)
        (List.length sched.Schedule.rules)
        bin;
      if dangling = [] then 0 else 1
    end

let input_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.jrs")

let binary_arg =
  Arg.(value & opt (some file) None
       & info [ "binary" ] ~docv:"FILE.jx"
           ~doc:"The executable the schedule rewrites; cross-references \
                 rule triggers against its instruction boundaries.")

let verify_flag =
  Arg.(value & flag
       & info [ "verify" ]
           ~doc:"Run the full schedule linter against --binary and report \
                 findings (exit 1 on errors).")

let cmd =
  Cmd.v
    (Cmd.info "jrs_dump" ~doc:"Dump a rewrite schedule in readable form")
    Term.(const dump $ input_arg $ binary_arg $ verify_flag)

let () = exit (Cmd.eval' cmd)
