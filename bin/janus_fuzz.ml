(* janus_fuzz: differential fuzzing of the whole Janus stack.

   Generates seeded random loop-nest kernels with ground-truth
   dependence labels (lib/fuzz), compiles each through jcc and asserts
   the full oracle: native == DBM-sequential == parallel at every
   requested thread count == adaptive, classification soundness,
   schedule verification and the cycle-model invariants.

   On a violation the kernel is shrunk on its typed AST to a locally
   minimal reproducer, printed, and (with --save-corpus) written under
   test/corpus/ where `dune runtest` replays it forever.

   --self-test runs the deliberately mislabelled kernel instead: the
   oracle must fail it, so the exit status is the *inverted* proof that
   the harness can still catch bugs (non-zero = caught, as a real
   violation would be; zero = the oracle has gone blind).

   Exit status: 0 = no violations, 1 = violations (or self-test caught).

   Usage: janus_fuzz --seed 5 --count 500 [--time-budget 60]
                     [--threads-list 1,2,4,8] [--save-corpus] [--mixed]
                     [--corpus-dir test/corpus] [--self-test] *)

open Cmdliner
module Kernel = Janus_fuzz_lib.Kernel
module Gen = Janus_fuzz_lib.Gen
module Emit = Janus_fuzz_lib.Emit
module Oracle = Janus_fuzz_lib.Oracle
module Shrink = Janus_fuzz_lib.Shrink
module Pool = Janus_pool.Pool
module Pgo = Janus_pgo.Pgo

let still_failing ~threads k =
  Kernel.valid k
  && (match Oracle.check ~threads k with
     | Oracle.Fail _ -> true
     | Oracle.Pass | Oracle.Skip _ -> false)

let report_failure ~threads ~save_corpus ~corpus_dir ~label k fs =
  Fmt.pr "@.=== VIOLATION (%s) ===@." label;
  List.iter (fun f -> Fmt.pr "  %a@." Oracle.pp_failure f) fs;
  Fmt.pr "shrinking...@.";
  let small = Shrink.minimise ~still_failing:(still_failing ~threads) k in
  Fmt.pr "minimal kernel (%d loops, %d statements):@.%s@."
    (Kernel.loop_count small) (Kernel.stmt_count small)
    (Kernel.to_string small);
  (match Oracle.check ~threads small with
   | Oracle.Fail fs' ->
     List.iter (fun f -> Fmt.pr "  %a@." Oracle.pp_failure f) fs'
   | _ -> ());
  if save_corpus then begin
    (try Unix.mkdir corpus_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let path = Filename.concat corpus_dir (label ^ ".jfk") in
    Out_channel.with_open_text path (fun oc ->
        output_string oc ("; shrunk reproducer: " ^ label ^ "\n");
        output_string oc (Kernel.to_string small);
        output_string oc "\n");
    Fmt.pr "reproducer written to %s@." path
  end

let run_self_test ~threads ~save_corpus ~corpus_dir =
  let k = Oracle.mislabelled in
  match Oracle.check ~threads k with
  | Oracle.Fail fs ->
    report_failure ~threads ~save_corpus:false ~corpus_dir ~label:"self-test" k fs;
    ignore save_corpus;
    Fmt.pr "self-test: oracle caught the mislabelled kernel (good)@.";
    1
  | Oracle.Pass ->
    Fmt.epr "self-test: oracle PASSED the mislabelled kernel — it can no \
             longer catch classifier bugs@.";
    0
  | Oracle.Skip why ->
    Fmt.epr "self-test: oracle skipped the mislabelled kernel (%s)@." why;
    0

let run_fuzz ~seed ~count ~time_budget ~threads ~mixed ~jobs ~save_corpus
    ~corpus_dir ~emit_profiles =
  let t0 = Unix.gettimeofday () in
  let deadline =
    match time_budget with None -> infinity | Some s -> t0 +. float_of_int s
  in
  let pass = ref 0 and skip = ref 0 and fail = ref 0 in
  let done_ = ref 0 in
  let profile_store = Option.map Pgo.Store.open_ emit_profiles in
  let profiled = ref 0 in
  (* each passing kernel becomes one fleet member: its profiler run is
     merged into the store keyed by its image digest; runs are
     content-addressed, so replaying a seed is idempotent *)
  let emit_profile k =
    match profile_store with
    | None -> ()
    | Some store ->
      if Kernel.valid k then begin
        ignore (Pgo.collect ~source:Pgo.Fleet ~store ~input:[] (Emit.image k));
        incr profiled
      end
  in
  (* Every case derives its own PRNG from (seed, case index), so the
     kernel stream is a pure function of the case number: partitioning
     cases over a domain pool cannot change what gets generated, stats
     merge to the same totals at any --jobs, and a violation's
     seedN-caseM label regenerates the exact kernel regardless of how
     the batch was scheduled. *)
  let check i =
    let k = Gen.sample ~mixed (Random.State.make [| seed; i |]) in
    (i, k, Oracle.check ~threads k)
  in
  (* shrinking and corpus writes stay on the calling domain, in case
     order, so reports are deterministic too *)
  let settle results =
    List.iter
      (fun (i, k, r) ->
         incr done_;
         match r with
         | Oracle.Pass ->
           incr pass;
           emit_profile k
         | Oracle.Skip _ -> incr skip
         | Oracle.Fail fs ->
           incr fail;
           report_failure ~threads ~save_corpus ~corpus_dir
             ~label:(Printf.sprintf "seed%d-case%d" seed i)
             k fs)
      results;
    Fmt.pr "[%4d/%d] pass=%d skip=%d fail=%d (%.1fs)@." !done_ count !pass
      !skip !fail
      (Unix.gettimeofday () -. t0)
  in
  (* cases are dispatched in waves; the time budget is checked between
     waves (a wave in flight is allowed to finish) *)
  let wave = if jobs > 1 then jobs * 8 else 50 in
  let go pool =
    let next = ref 1 in
    while !next <= count && Unix.gettimeofday () < deadline do
      let hi = min count (!next + wave - 1) in
      let idxs = List.init (hi - !next + 1) (fun j -> !next + j) in
      next := hi + 1;
      let results =
        match pool with
        | Some p -> Pool.map p check idxs
        | None -> List.map check idxs
      in
      settle results
    done
  in
  (if jobs > 1 then Pool.with_pool ~jobs (fun p -> go (Some p)) else go None);
  Fmt.pr "%d cases: %d pass, %d skip, %d FAIL (%.1fs, seed %d)@." !done_ !pass
    !skip !fail
    (Unix.gettimeofday () -. t0)
    seed;
  (match emit_profiles with
   | Some dir -> Fmt.pr "profiles: %d kernels merged into %s@." !profiled dir
   | None -> ());
  if !fail > 0 then 1 else 0

let run seed count time_budget threads_list mixed jobs save_corpus corpus_dir
    emit_profiles self_test =
  let threads =
    match threads_list with
    | None -> Oracle.default_threads
    | Some s ->
      let parts = String.split_on_char ',' s in
      let ts =
        List.filter_map
          (fun p ->
             match int_of_string_opt (String.trim p) with
             | Some t when t >= 1 -> Some t
             | _ -> None)
          parts
      in
      if ts = [] then (
        Fmt.epr "janus_fuzz: --threads-list %S has no valid entries@." s;
        exit 2);
      ts
  in
  if self_test then run_self_test ~threads ~save_corpus ~corpus_dir
  else
    run_fuzz ~seed ~count ~time_budget ~threads ~mixed ~jobs ~save_corpus
      ~corpus_dir ~emit_profiles

let seed =
  Arg.(value & opt int 5 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let count =
  Arg.(
    value & opt int 500
    & info [ "count" ] ~docv:"N" ~doc:"Number of kernels to generate.")

let time_budget =
  Arg.(
    value
    & opt (some int) None
    & info [ "time-budget" ] ~docv:"S"
        ~doc:"Stop generating after $(docv) seconds, even below --count.")

let threads_list =
  Arg.(
    value
    & opt (some string) None
    & info [ "threads-list" ] ~docv:"T1,T2,..."
        ~doc:"Comma-separated thread counts for the parallel runs \
              (default 1,2,4,8).")

let jobs =
  let pos_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | _ -> Error (`Msg (Printf.sprintf "--jobs must be a positive integer, got %S" s))
    in
    Arg.conv (parse, Fmt.int)
  in
  Arg.(
    value & opt pos_int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Check kernels on $(docv) domains. Case generation is keyed \
              by (seed, case index), so pass/skip/fail totals and any \
              violation labels are identical at every $(docv).")

let mixed =
  Arg.(
    value & flag
    & info [ "mixed" ]
        ~doc:"Weight generation towards mixed chain-plus-stream loop \
              bodies labelled fissionable, exercising the LOOP_FISSION \
              extension (the oracle then also asserts each labelled \
              loop splits and survives verification).")

let save_corpus =
  Arg.(
    value & flag
    & info [ "save-corpus" ]
        ~doc:"Write shrunk reproducers to the corpus directory.")

let corpus_dir =
  Arg.(
    value
    & opt string "test/corpus"
    & info [ "corpus-dir" ] ~docv:"DIR"
        ~doc:"Directory for shrunk reproducers (with --save-corpus).")

let emit_profiles =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-profiles" ] ~docv:"DIR"
        ~doc:"Profile every passing kernel (coverage + dependence) and \
              merge the runs into the persistent profile store at $(docv) \
              — the generated kernels act as an input fleet for \
              janus_pgo.")

let self_test =
  Arg.(
    value & flag
    & info [ "self-test" ]
        ~doc:"Run the deliberately mislabelled kernel through the oracle \
              instead of fuzzing; exits non-zero when (correctly) caught.")

let cmd =
  let doc = "differential fuzzing of the Janus parallelisation stack" in
  Cmd.v
    (Cmd.info "janus_fuzz" ~doc)
    Term.(
      const run $ seed $ count $ time_budget $ threads_list $ mixed $ jobs
      $ save_corpus $ corpus_dir $ emit_profiles $ self_test)

let () = exit (Cmd.eval' cmd)
