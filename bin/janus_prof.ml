(* janus_profile: statically-driven profiling of a JX executable on a
   training input (the optional training stage of Fig. 1(a)). *)

open Cmdliner
module Profiler = Janus_profile.Profiler
module Analysis = Janus_analysis.Analysis
module Loopanal = Janus_analysis.Loopanal
module Pgo = Janus_pgo.Pgo
module Pipeline = Janus_core.Pipeline

let profile input scale out emit_profile =
  let bytes =
    In_channel.with_open_bin input (fun ic ->
        Bytes.of_string (In_channel.input_all ic))
  in
  let image = Janus_vx.Image.of_bytes bytes in
  let t = Analysis.analyse_image image in
  let inp = [ Int64.of_int scale ] in
  let cov = Profiler.run_coverage ~input:inp image t in
  let deps = Profiler.run_dependence ~input:inp image t in
  Fmt.pr "total dynamic instructions: %d@." cov.Profiler.total_insns;
  Fmt.pr "%-8s %-14s %10s %10s %8s %8s %6s@." "loop" "class" "coverage"
    "avg-trip" "invocs" "work" "dep?";
  List.iter
    (fun (r : Loopanal.report) ->
       let lid = r.Loopanal.loop.Janus_analysis.Looptree.lid in
       let c = Profiler.cov_of cov lid in
       Fmt.pr "%-8d %-14s %9.2f%% %10.1f %8d %8.0f %6s@." lid
         (Loopanal.classification_name r.Loopanal.cls)
         (100.0 *. Profiler.fraction cov lid)
         (Profiler.avg_trip cov lid) c.Profiler.invocations
         (Profiler.avg_work cov lid)
         (if Profiler.has_dep deps lid then "yes"
          else if Profiler.was_observed deps lid then "no"
          else "-"))
    t.Analysis.reports;
  (match out with
   | Some path ->
     Profiler.save path cov deps;
     Fmt.pr "wrote %s (%d loops)@." path (Hashtbl.length cov.Profiler.loops)
   | None -> ());
  (match emit_profile with
   | Some dir ->
     let store = Pgo.Store.open_ dir in
     let run =
       Pgo.run_of_profile ~source:Pgo.Training
         ~input:(Int64.to_string (Int64.of_int scale))
         ~coverage:(Some cov) ~deps:(Some deps)
     in
     let merged =
       Pgo.Store.save store (Pgo.add (Pgo.empty (Pipeline.image_key image)) run)
     in
     Fmt.pr "merged training run into %s (image %s, %d runs)@." dir
       merged.Pgo.p_image (Pgo.runs merged)
   | None -> ());
  0

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"BIN")

let scale =
  Arg.(value & opt int 10 & info [ "scale" ] ~docv:"N"
         ~doc:"Training input (read by the program via read_int)")

let out =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE.jpf"
           ~doc:"Write the profile for janus_analyze --profile.")

let emit_profile =
  Arg.(value & opt (some string) None
       & info [ "emit-profile" ] ~docv:"DIR"
           ~doc:"Merge this training run into the persistent profile store\n\
                 at $(docv) (one .jprof per binary, keyed by image digest)\n\
                 for janus_pgo / janus_eval --profile-dir.")

let cmd =
  Cmd.v
    (Cmd.info "janus_prof" ~doc:"Coverage and dependence profiling")
    Term.(const profile $ input $ scale $ out $ emit_profile)

let () = exit (Cmd.eval' cmd)
