(* janus_run: execute a JX binary natively, under the plain DBM, or
   fully parallelised by Janus. *)

open Cmdliner
module Janus = Janus_core.Janus

let run input mode threads scale train_scale schedule_file prefetch
    model_cache =
  let bytes =
    In_channel.with_open_bin input (fun ic ->
        Bytes.of_string (In_channel.input_all ic))
  in
  let image = Janus_vx.Image.of_bytes bytes in
  let inp = [ Int64.of_int scale ] in
  let cfg = Janus.config ~threads ~prefetch ~model_cache () in
  let result =
    match mode, schedule_file with
    | "native", _ -> Janus.run_native ~input:inp ~model_cache image
    | "dbm", _ -> Janus.run_dbm_only ~input:inp image
    | _, Some path ->
      (* deployment mode: use the shipped rewrite schedule as-is *)
      let sched =
        In_channel.with_open_bin path (fun ic ->
            Janus_schedule.Schedule.of_bytes
              (Bytes.of_string (In_channel.input_all ic)))
      in
      Janus.run_scheduled ~cfg ~input:inp image sched
    | ("janus" | _), None ->
      Janus.parallelise ~cfg
        ~train_input:[ Int64.of_int train_scale ]
        ~input:inp image
  in
  print_string result.Janus.output;
  Fmt.pr "--- %s: %d cycles, %d instructions, exit %d@." mode
    result.Janus.cycles result.Janus.icount result.Janus.exit_code;
  if result.Janus.selected_loops <> [] then
    Fmt.pr "--- parallelised loops: %a; schedule %d bytes@."
      Fmt.(list ~sep:comma int)
      result.Janus.selected_loops result.Janus.schedule_size;
  if result.Janus.demoted_loops <> [] then
    Fmt.pr "--- loops demoted to sequential by the schedule verifier: %a@."
      Fmt.(list ~sep:comma int)
      result.Janus.demoted_loops;
  if result.Janus.stm_commits > 0 || result.Janus.stm_aborts > 0 then
    Fmt.pr "--- STM: %d commits, %d aborts@." result.Janus.stm_commits
      result.Janus.stm_aborts;
  result.Janus.exit_code

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"BIN")

let mode =
  Arg.(value & opt string "janus" & info [ "mode" ] ~docv:"MODE"
         ~doc:"native | dbm | janus")

let threads = Arg.(value & opt int 8 & info [ "threads" ] ~docv:"N")
let scale = Arg.(value & opt int 10 & info [ "scale" ] ~docv:"N")

let train_scale =
  Arg.(value & opt int 4 & info [ "train-scale" ] ~docv:"N")

let schedule_file =
  Arg.(value & opt (some file) None & info [ "schedule" ] ~docv:"JRS"
         ~doc:"Use a pre-generated rewrite schedule instead of analysing")

let prefetch =
  Arg.(value & flag
       & info [ "prefetch" ]
           ~doc:"Emit MEM_PREFETCH rules for the selected loops' strided\n\
                 accesses (pair with --cache-model).")

let model_cache =
  Arg.(value & flag
       & info [ "cache-model" ]
           ~doc:"Charge cold-line cache misses in the cycle model (applies\n\
                 to native runs too, for a fair baseline).")

let cmd =
  Cmd.v
    (Cmd.info "janus_run" ~doc:"Run a JX binary (native / dbm / janus)")
    Term.(const run $ input $ mode $ threads $ scale $ train_scale
          $ schedule_file $ prefetch $ model_cache)

let () = exit (Cmd.eval' cmd)
