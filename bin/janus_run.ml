(* janus_run: execute a JX binary natively, under the plain DBM, or
   fully parallelised by Janus. *)

open Cmdliner
module Janus = Janus_core.Janus
module Obs = Janus_obs.Obs
module Run = Janus_vm.Run
module Pgo = Janus_pgo.Pgo

(* exit codes: 0/program's own code on success, 2 for unusable inputs
   (cmdliner reserves 124 for argument parse errors), 3 for runs
   truncated by fuel exhaustion *)
let exit_bad_input = 2
let exit_out_of_fuel = 3

let die code fmt = Fmt.kstr (fun s -> Fmt.epr "janus_run: %s@." s; code) fmt

let write_file path contents =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents)

let export_obs obs ~trace_out ~trace_jsonl =
  (match trace_out with
   | Some path -> write_file path (Obs.chrome_json obs)
   | None -> ());
  (match trace_jsonl with
   | Some path -> write_file path (Obs.jsonl obs)
   | None -> ())

let print_obs obs ~trace_summary ~metrics =
  if trace_summary then Fmt.pr "%a" Obs.pp_summary obs
  else if metrics then
    List.iter (fun (k, v) -> Fmt.pr "%-32s %12d@." k v) (Obs.counters obs)

let run input mode threads scale train_scale schedule_file prefetch fission
    model_cache fuel trace_out trace_jsonl trace_summary metrics adapt
    adapt_report emit_profile no_fuse =
  if no_fuse then Janus_core.Pipeline.fuse_default := false;
  let bytes =
    In_channel.with_open_bin input (fun ic ->
        Bytes.of_string (In_channel.input_all ic))
  in
  match Janus_vx.Image.of_bytes bytes with
  | exception (Failure msg | Invalid_argument msg) ->
    die exit_bad_input "%s is not a JX binary: %s" input msg
  | image ->
  let inp = [ Int64.of_int scale ] in
  let tracing = trace_out <> None || trace_jsonl <> None || trace_summary in
  let adapt = adapt || adapt_report <> None || emit_profile <> None in
  let cfg =
    Janus.config ~threads ~prefetch ~fission ~model_cache ~fuel ~trace:tracing
      ~adapt ~fuse:(not no_fuse) ()
  in
  let schedule =
    match schedule_file with
    | None -> Ok None
    | Some path -> begin
        match
          In_channel.with_open_bin path (fun ic ->
              Janus_schedule.Schedule.of_bytes
                (Bytes.of_string (In_channel.input_all ic)))
        with
        | sched -> Ok (Some sched)
        | exception (Failure msg | Invalid_argument msg) ->
          Error (die exit_bad_input "%s is not a rewrite schedule: %s" path msg)
      end
  in
  match schedule with
  | Error code -> code
  | Ok schedule ->
  let result =
    match mode, schedule with
    | "native", _ -> begin
        match Janus.run_native ~fuel ~input:inp ~model_cache image with
        | r -> Ok r
        | exception Run.Out_of_fuel ->
          Error (die exit_out_of_fuel "native run out of fuel (%d); raise --fuel" fuel)
      end
    | "dbm", _ -> Ok (Janus.run_dbm_only ~fuel ~input:inp ~trace:tracing image)
    | _, Some sched ->
      (* deployment mode: use the shipped rewrite schedule as-is *)
      Ok (Janus.run_scheduled ~cfg ~input:inp image sched)
    | ("janus" | _), None ->
      Ok
        (Janus.parallelise ~cfg
           ~train_input:[ Int64.of_int train_scale ]
           ~input:inp image)
  in
  match result with
  | Error code -> code
  | Ok result ->
  (match result.Janus.obs with
   | Some obs -> export_obs obs ~trace_out ~trace_jsonl
   | None -> ());
  match result.Janus.aborted with
  | Some (Janus.Out_of_fuel { addr; loop }) ->
    (match result.Janus.obs with
     | Some obs when Obs.tracing obs && Obs.total_events obs > 0 ->
       Fmt.epr "janus_run: last events before the fuel ran out:@.%s"
         (Obs.trace_tail obs)
     | _ -> ());
    die exit_out_of_fuel
      "out of fuel (%d) at 0x%x%s after %d cycles; raise --fuel" fuel addr
      (match loop with
       | Some lid -> Printf.sprintf " in loop %d" lid
       | None -> "")
      result.Janus.cycles
  | None ->
    (match adapt_report, result.Janus.governor with
     | Some path, Some g ->
       write_file path (Fmt.str "%a" Janus.Adapt.pp_report g)
     | Some path, None ->
       (* native/dbm modes carry no governor; an empty report is less
          surprising than a silently missing file *)
       write_file path
         (Fmt.str "no adaptive governor in --mode %s (use janus)@." mode)
     | None, _ -> ());
    (match emit_profile with
     | Some dir -> begin
         let store = Pgo.Store.open_ dir in
         match Pgo.collect_governed ~store ~input:inp image result with
         | Some merged ->
           Fmt.epr "janus_run: merged governed ledger into %s (image %s, %d runs)@."
             dir merged.Pgo.p_image (Pgo.runs merged)
         | None ->
           Fmt.epr "janus_run: --emit-profile: no governor in --mode %s@." mode
       end
     | None -> ());
    print_string result.Janus.output;
    Fmt.pr "--- %s: %d cycles, %d instructions, exit %d@." mode
      result.Janus.cycles result.Janus.icount result.Janus.exit_code;
    if result.Janus.selected_loops <> [] then
      Fmt.pr "--- parallelised loops: %a; schedule %d bytes@."
        Fmt.(list ~sep:comma int)
        result.Janus.selected_loops result.Janus.schedule_size;
    if result.Janus.demoted_loops <> [] then
      Fmt.pr "--- loops demoted to sequential by the schedule verifier: %a@."
        Fmt.(list ~sep:comma int)
        result.Janus.demoted_loops;
    if result.Janus.stm_commits > 0 || result.Janus.stm_aborts > 0 then
      Fmt.pr "--- STM: %d commits, %d aborts@." result.Janus.stm_commits
        result.Janus.stm_aborts;
    (match result.Janus.obs with
     | Some obs -> print_obs obs ~trace_summary ~metrics
     | None -> ());
    result.Janus.exit_code

(* int converters rejecting nonsense before it reaches the runtime *)
let pos_int what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "%s must be positive, got %d" what n))
    | None -> Error (`Msg (Printf.sprintf "%s must be an integer, got %S" what s))
  in
  Arg.conv (parse, Fmt.int)

let nonneg_int what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok n
    | Some n ->
      Error (`Msg (Printf.sprintf "%s must be non-negative, got %d" what n))
    | None -> Error (`Msg (Printf.sprintf "%s must be an integer, got %S" what s))
  in
  Arg.conv (parse, Fmt.int)

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"BIN")

let mode =
  Arg.(value & opt string "janus" & info [ "mode" ] ~docv:"MODE"
         ~doc:"native | dbm | janus")

let threads =
  Arg.(value & opt (pos_int "--threads") 8 & info [ "threads" ] ~docv:"N")

let scale =
  Arg.(value & opt (nonneg_int "--scale") 10 & info [ "scale" ] ~docv:"N")

let train_scale =
  Arg.(value & opt (nonneg_int "--train-scale") 4
       & info [ "train-scale" ] ~docv:"N")

let schedule_file =
  Arg.(value & opt (some file) None & info [ "schedule" ] ~docv:"JRS"
         ~doc:"Use a pre-generated rewrite schedule instead of analysing")

let prefetch =
  Arg.(value & flag
       & info [ "prefetch" ]
           ~doc:"Emit MEM_PREFETCH rules for the selected loops' strided\n\
                 accesses (pair with --cache-model).")

let fission =
  Arg.(value & flag
       & info [ "fission" ]
           ~doc:"Distribute Static-Dependence loops whose dependence graph\n\
                 splits into carried-free and carried components into a\n\
                 DOALL fission product plus a sequential residue (verified\n\
                 rewrite; demoted on any linter finding).")

let model_cache =
  Arg.(value & flag
       & info [ "cache-model" ]
           ~doc:"Charge cold-line cache misses in the cycle model (applies\n\
                 to native runs too, for a fair baseline).")

let fuel =
  Arg.(value & opt (pos_int "--fuel") 400_000_000
       & info [ "fuel" ] ~docv:"N"
           ~doc:"Instruction budget; exhausting it exits 3 with a diagnostic.")

let trace_out =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record per-thread event timelines and write them as Chrome\n\
                 trace_event JSON (open in chrome://tracing or Perfetto).")

let trace_jsonl =
  Arg.(value & opt (some string) None
       & info [ "trace-jsonl" ] ~docv:"FILE"
           ~doc:"Write the raw event stream as one JSON object per line.")

let trace_summary =
  Arg.(value & flag
       & info [ "trace-summary" ]
           ~doc:"Record events and print a human-readable census with the\n\
                 counters and histograms.")

let metrics =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print the run's metrics counters (no event recording).")

let adapt =
  Arg.(value & flag
       & info [ "adapt" ]
           ~doc:"Govern the parallelised loops online: demote loops whose\n\
                 checks keep failing (or that lose cycles) to sequential\n\
                 execution, probe them periodically for re-promotion, and\n\
                 decide unprofiled checked loops by sampling their first\n\
                 invocations under shadow memory (training-free mode).")

let adapt_report =
  Arg.(value & opt (some string) None
       & info [ "adapt-report" ] ~docv:"FILE"
           ~doc:"Write the governor's per-loop ledger (state, invocations,\n\
                 demotions, probes, samples) to $(docv); implies --adapt.")

let emit_profile =
  Arg.(value & opt (some string) None
       & info [ "emit-profile" ] ~docv:"DIR"
           ~doc:"Merge the run's governed per-loop ledger into the persistent\n\
                 profile store at $(docv) (one .jprof per binary, keyed by\n\
                 image digest) for janus_pgo / janus_eval --profile-dir;\n\
                 implies --adapt.")

let no_fuse =
  Arg.(value & flag
       & info [ "no-fuse" ]
           ~doc:"Disable superinstruction fusion in the DBM's code cache.\n\
                 Fusion is inert at schedule level: outputs, cycles and\n\
                 memory digests are byte-identical with or without it.")

let cmd =
  Cmd.v
    (Cmd.info "janus_run" ~doc:"Run a JX binary (native / dbm / janus)")
    Term.(const run $ input $ mode $ threads $ scale $ train_scale
          $ schedule_file $ prefetch $ fission $ model_cache $ fuel
          $ trace_out $ trace_jsonl $ trace_summary $ metrics $ adapt
          $ adapt_report $ emit_profile $ no_fuse)

let () = exit (Cmd.eval' cmd)
