(* janus_analyze: static binary analysis of a JX executable.

   Prints the loop classification summary and optionally writes the
   parallelisation rewrite schedule. Without a profile, every eligible
   loop is selected (the "Statically-Driven" configuration); with
   --profile (a .jpf written by janus_prof -o) selection applies the
   paper's coverage/trip/work filters and the observed-dependence veto
   — the full profile-guided offline workflow of Fig. 1(a).

   --verify re-derives cross-iteration dependences with the independent
   dataflow framework (lib/verify) and cross-checks them against the
   analyser's verdicts; with --emit-schedule it additionally lints the
   schedule it just wrote. Errors make the exit status nonzero. *)

open Cmdliner
module Analysis = Janus_analysis.Analysis
module Loopanal = Janus_analysis.Loopanal
module Profiler = Janus_profile.Profiler
module Janus = Janus_core.Janus
module Verify = Janus_verify.Verify

let analyse input schedule_out disasm profile_in verify fission depgraph
    dot_dir =
  let bytes =
    In_channel.with_open_bin input (fun ic ->
        Bytes.of_string (In_channel.input_all ic))
  in
  let image = Janus_vx.Image.of_bytes bytes in
  if disasm then Fmt.pr "%a@." Janus_vx.Disasm.image image;
  let t = Analysis.analyse_image image in
  Fmt.pr "%a" Analysis.pp_summary t;
  if depgraph || dot_dir <> None then begin
    let module Depgraph = Janus_analysis.Depgraph in
    List.iter
      (fun (r : Loopanal.report) ->
         match Depgraph.build r with
         | None -> ()
         | Some g ->
           Fmt.pr "depgraph: %s@." (Depgraph.summary g);
           match dot_dir with
           | None -> ()
           | Some dir ->
             if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
             let path =
               Filename.concat dir
                 (Printf.sprintf "loop%d.dot" g.Depgraph.dg_lid)
             in
             Out_channel.with_open_text path (fun oc ->
                 Fmt.pf
                   (Format.formatter_of_out_channel oc)
                   "%a@." Depgraph.pp_dot g))
      t.Analysis.reports
  end;
  let emitted = ref None in
  (match schedule_out with
   | Some path ->
     let selected =
       match profile_in with
       | Some jpf ->
         (* profile-guided selection, identical to the in-process
            pipeline's filters *)
         let coverage, deps = Profiler.load jpf in
         let sel =
           Janus.select ~cfg:(Janus.config ~fission ()) t
             ~coverage:(Some coverage) ~deps:(Some deps)
         in
         List.iter
           (fun (lid, reason) -> Fmt.pr "loop %d rejected: %s@." lid reason)
           sel.Janus.rejected;
         sel.Janus.chosen
       | None ->
         List.filter_map
           (fun (r : Loopanal.report) ->
              match Analysis.eligibility r with
              | Analysis.Eligible_static | Analysis.Eligible_dynamic _ ->
                Some (r, Janus_schedule.Desc.Chunked)
              | (Analysis.Eligible_doacross _ | Analysis.Not_eligible _)
                when fission
                     && (match r.Loopanal.cls with
                         | Loopanal.Static_dep _ ->
                           Janus_analysis.Depgraph.plan r <> None
                         | _ -> false) ->
                Some (r, Janus_schedule.Desc.Chunked)
              | Analysis.Eligible_doacross pct ->
                Some (r, Janus_schedule.Desc.Doacross pct)
              | Analysis.Not_eligible _ -> None)
           t.Analysis.reports
     in
     let sched, encoded =
       Janus_analysis.Rulegen.parallel_schedule ~fission t.Analysis.cfg
         selected
     in
     Out_channel.with_open_bin path (fun oc ->
         Out_channel.output_bytes oc (Janus_schedule.Schedule.to_bytes sched));
     emitted := Some sched;
     Fmt.pr "wrote %s: %d rules for %d loops (%d bytes, %.1f%% of binary)@."
       path
       (List.length sched.Janus_schedule.Schedule.rules)
       (List.length encoded)
       (Janus_schedule.Schedule.size sched)
       (100.0
        *. float_of_int (Janus_schedule.Schedule.size sched)
        /. float_of_int (Janus_vx.Image.size image))
   | None -> ());
  if not verify then 0
  else begin
    let findings = Verify.crosscheck t in
    let findings =
      match !emitted with
      | Some sched -> findings @ Verify.lint image sched
      | None -> findings
    in
    if findings = [] then Fmt.pr "verify: clean@."
    else
      List.iter (fun f -> Fmt.pr "verify: %a@." Verify.pp_finding f) findings;
    if Verify.has_errors findings then 1 else 0
  end

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"BIN")

let schedule_out =
  Arg.(value & opt (some string) None & info [ "emit-schedule" ] ~docv:"OUT")

let disasm = Arg.(value & flag & info [ "disasm" ] ~doc:"Print disassembly")

let profile_in =
  Arg.(value & opt (some file) None
       & info [ "profile" ] ~docv:"FILE.jpf"
           ~doc:"Profile from janus_prof -o; enables profile-guided loop\n\
                 selection for --emit-schedule.")

let verify_flag =
  Arg.(value & flag
       & info [ "verify" ]
           ~doc:"Cross-check loop dependence verdicts against an \
                 independent dataflow re-derivation, and lint the emitted \
                 schedule (with --emit-schedule). Nonzero exit on errors.")

let fission_flag =
  Arg.(value & flag
       & info [ "fission" ]
           ~doc:"Split eligible Static-Dependence loops statement-wise \
                 (SCC-driven loop fission) when emitting the schedule: \
                 adds LOOP_FISSION rules carrying the sub-loop \
                 partition. Off, emitted bytes are identical to a \
                 fission-free build.")

let depgraph_flag =
  Arg.(value & flag
       & info [ "depgraph" ]
           ~doc:"Print one dependence-graph census line per analysed loop \
                 body (nodes, edges, SCCs, fission groups).")

let dot_dir =
  Arg.(value & opt (some string) None
       & info [ "depgraph-dot" ] ~docv:"DIR"
           ~doc:"Also write each loop's dependence graph (SCC-clustered, \
                 carried edges dashed) as DIR/loop<id>.dot.")

let cmd =
  Cmd.v
    (Cmd.info "janus_analyze"
       ~doc:"Static binary analyser: loop classification + rewrite schedules")
    Term.(
      const analyse $ input $ schedule_out $ disasm $ profile_in $ verify_flag
      $ fission_flag $ depgraph_flag $ dot_dir)

let () = exit (Cmd.eval' cmd)
