(* janus_verify: static verification of a rewrite schedule against the
   binary it rewrites.

   Lints every cross-reference between a .jrs schedule and its .jx
   executable: rule trigger addresses must be instruction boundaries,
   LOOP_INIT/LOOP_FINISH, TX_START/TX_FINISH and spill/recover pairs
   must close, privatisation regions must be disjoint, descriptors must
   decode in bounds, and every register the schedule discards must be
   provably dead (by dataflow over the recovered CFG). With
   --crosscheck it additionally re-derives each loop's dependence
   verdict from first principles and reports disagreements with the
   classifier.

   Exit status 1 when any error-severity finding is reported.

   Usage: janus_verify BIN.jx SCHED.jrs [--crosscheck] *)

open Cmdliner
module Analysis = Janus_analysis.Analysis
module Verify = Janus_verify.Verify
module Schedule = Janus_schedule.Schedule

let read_bytes path =
  In_channel.with_open_bin path (fun ic ->
      Bytes.of_string (In_channel.input_all ic))

(* corrupt inputs are an expected condition for a verifier, not an
   internal error: report them cleanly instead of escaping to cmdliner *)
let load what path decode =
  match decode (read_bytes path) with
  | v -> v
  | exception (Failure msg | Invalid_argument msg) ->
    Fmt.epr "janus_verify: %s is not a readable %s (%s)@." path what msg;
    exit 2

let run bin jrs do_crosscheck quiet =
  let image = load "JX executable" bin Janus_vx.Image.of_bytes in
  let sched = load "JRS schedule" jrs Schedule.of_bytes in
  let findings = Verify.lint image sched in
  let findings =
    if do_crosscheck then
      findings @ Verify.crosscheck (Analysis.analyse_image image)
    else findings
  in
  let rank = function
    | Verify.Error -> 0
    | Verify.Warning -> 1
    | Verify.Info -> 2
  in
  let findings =
    List.stable_sort
      (fun (a : Verify.finding) b -> compare (rank a.severity) (rank b.severity))
      findings
  in
  List.iter
    (fun (f : Verify.finding) ->
       if (not quiet) || f.Verify.severity = Verify.Error then
         Fmt.pr "%a@." Verify.pp_finding f)
    findings;
  let n sev =
    List.length (List.filter (fun f -> f.Verify.severity = sev) findings)
  in
  Fmt.pr "%s: %d rules, %d error(s), %d warning(s), %d info@." jrs
    (List.length sched.Schedule.rules)
    (n Verify.Error) (n Verify.Warning) (n Verify.Info);
  if Verify.has_errors findings then 1 else 0

let bin_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"BIN.jx")

let jrs_arg =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"SCHED.jrs")

let crosscheck_flag =
  Arg.(value & flag
       & info [ "crosscheck" ]
           ~doc:"Also re-derive every loop's dependence verdict and report \
                 disagreements with the static classifier.")

let quiet_flag =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Print only errors.")

let cmd =
  Cmd.v
    (Cmd.info "janus_verify"
       ~doc:"Statically verify a rewrite schedule against its binary")
    Term.(const run $ bin_arg $ jrs_arg $ crosscheck_flag $ quiet_flag)

let () = exit (Cmd.eval' cmd)
