(* janus_served: the long-running schedule service and its client.

   Subcommands:
     serve    --socket PATH [--store-dir DIR] [--jobs N]
     analyse  --socket PATH --bench NAME
     schedule --socket PATH --bench NAME [--out FILE]
     metrics  --socket PATH
     stop     --socket PATH

   The server answers analyse/schedule requests from its artifact
   store; with --store-dir the store persists on disk, so a restarted
   daemon still answers previously-seen binaries warm. The client
   subcommands compile a suite benchmark deterministically and send it,
   printing cache-hit= so scripts can assert warm answers.

   Exit codes: 0 success, 2 usage error, 3 runtime failure. *)

module Served = Janus_served_lib.Served
module Suite = Janus_suite.Suite
module Pipeline = Janus_core.Pipeline
module Pool = Janus_pool.Pool
module Obs = Janus_obs.Obs

let usage () =
  Fmt.epr
    "usage: janus_served serve --socket PATH [--store-dir DIR] \
     [--profile-dir DIR] [--jobs N]@.\
    \       janus_served analyse --socket PATH --bench NAME@.\
    \       janus_served schedule --socket PATH --bench NAME [--out FILE]@.\
    \       janus_served upload --socket PATH --file FILE.jprof@.\
    \       janus_served metrics --socket PATH@.\
    \       janus_served stop --socket PATH@.";
  exit 2

(* every valued flag shares one guard: a flag with no value — last
   argument included — is a usage error, never a silent default *)
let missing_value flag =
  Fmt.epr "janus_served: %s expects a value@." flag;
  exit 2

let parse_opts args =
  let opts = Hashtbl.create 8 in
  let valued =
    [ "--socket"; "--store-dir"; "--profile-dir"; "--jobs"; "--bench";
      "--out"; "--file" ]
  in
  let rec go = function
    | [] -> ()
    | flag :: rest when List.mem flag valued -> (
        match rest with
        | v :: rest when not (String.length v > 2 && String.sub v 0 2 = "--")
          ->
          Hashtbl.replace opts flag v;
          go rest
        | _ -> missing_value flag)
    | arg :: _ ->
      Fmt.epr "janus_served: unknown argument %S@." arg;
      exit 2
  in
  go args;
  opts

let required opts flag =
  match Hashtbl.find_opt opts flag with
  | Some v -> v
  | None ->
    Fmt.epr "janus_served: %s is required@." flag;
    exit 2

let jobs_of opts =
  match Hashtbl.find_opt opts "--jobs" with
  | None -> 1
  | Some n -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> n
      | _ ->
        Fmt.epr "janus_served: --jobs expects a positive integer, got %S@." n;
        exit 2)

let bench_of opts =
  let name = required opts "--bench" in
  match Suite.find name with
  | Some b -> b
  | None ->
    Fmt.epr "janus_served: unknown benchmark %S@." name;
    exit 2

let with_connection socket f =
  match Served.connect ~socket with
  | exception Unix.Unix_error (e, _, _) ->
    Fmt.epr "janus_served: cannot connect to %s: %s@." socket
      (Unix.error_message e);
    exit 3
  | c -> Fun.protect ~finally:(fun () -> Served.disconnect c) (fun () -> f c)

let cmd_serve opts =
  let socket = required opts "--socket" in
  let store = Pipeline.store ?dir:(Hashtbl.find_opt opts "--store-dir") () in
  let profile_dir = Hashtbl.find_opt opts "--profile-dir" in
  let jobs = jobs_of opts in
  let serve pool =
    let server = Served.create_server ~store ?pool ?profile_dir ~socket () in
    Fmt.pr "janus_served: listening on %s (jobs=%d, store=%s, profiles=%s)@."
      socket jobs
      (Option.value ~default:"memory" (Pipeline.store_dir store))
      (Option.value ~default:"off" profile_dir);
    Served.serve server;
    Fmt.pr "janus_served: shut down@."
  in
  if jobs > 1 then Pool.with_pool ~jobs (fun p -> serve (Some p))
  else serve None

let cmd_analyse opts =
  let b = bench_of opts in
  with_connection (required opts "--socket") (fun c ->
      let r = Served.analyse c (Suite.compile b) in
      Fmt.pr "bench=%s functions=%d loops=%d cache-hit=%b@." b.Suite.name
        r.Served.a_functions r.Served.a_loops r.Served.a_cache_hit)

let cmd_schedule opts =
  let b = bench_of opts in
  with_connection (required opts "--socket") (fun c ->
      let r =
        Served.schedule c ~train_input:(Suite.train_input b) (Suite.compile b)
      in
      Fmt.pr "bench=%s schedule-bytes=%d schedule-md5=%s demoted=%d \
              findings=%d cache-hit=%b gen=%s@."
        b.Suite.name
        (Bytes.length r.Served.s_schedule)
        (Digest.to_hex (Digest.bytes r.Served.s_schedule))
        (List.length r.Served.s_demoted)
        r.Served.s_findings r.Served.s_cache_hit
        (if r.Served.s_generation = "" then "-" else r.Served.s_generation);
      match Hashtbl.find_opt opts "--out" with
      | None -> ()
      | Some path ->
        let oc = open_out_bin path in
        output_bytes oc r.Served.s_schedule;
        close_out oc)

let cmd_upload opts =
  let file = required opts "--file" in
  let payload =
    match
      In_channel.with_open_bin file (fun ic ->
          Bytes.of_string (In_channel.input_all ic))
    with
    | b -> b
    | exception Sys_error e ->
      Fmt.epr "janus_served: cannot read %s: %s@." file e;
      exit 3
  in
  with_connection (required opts "--socket") (fun c ->
      let r = Served.upload c payload in
      Fmt.pr "uploaded=%s image=%s runs=%d total-runs=%d@." file
        r.Served.u_image r.Served.u_runs r.Served.u_total_runs)

let cmd_metrics opts =
  with_connection (required opts "--socket") (fun c ->
      List.iter
        (fun (name, v) -> Fmt.pr "%s %d@." name v)
        (Served.metrics c))

let cmd_stop opts =
  with_connection (required opts "--socket") (fun c -> Served.shutdown c)

let () =
  match Array.to_list Sys.argv with
  | _ :: cmd :: rest -> (
      let opts = parse_opts rest in
      let run f = try f opts with Failure e -> Fmt.epr "%s@." e; exit 3 in
      match cmd with
      | "serve" -> run cmd_serve
      | "analyse" -> run cmd_analyse
      | "schedule" -> run cmd_schedule
      | "upload" -> run cmd_upload
      | "metrics" -> run cmd_metrics
      | "stop" -> run cmd_stop
      | _ -> usage ())
  | _ -> usage ()
