(* janus_eval: regenerate any table or figure of the paper's evaluation
   over the synthetic SPEC-like suite.

   Experiments share one content-keyed artifact store, so e.g. fig7's
   four configurations reuse a single static analysis and profile per
   benchmark; --jobs fans the per-benchmark rows out over domains with
   byte-identical output. *)

open Cmdliner
module Eval = Janus_core.Eval
module Pipeline = Janus_core.Pipeline
module Pool = Janus_pool.Pool
module Obs = Janus_obs.Obs
module Run = Janus_vm.Run
module Pgo = Janus_pgo.Pgo

(* exit codes: 0 on success, 2 for unusable inputs (cmdliner reserves
   124 for argument parse errors), 3 for fuel exhaustion *)
let exit_bad_input = 2
let exit_out_of_fuel = 3

let die code fmt = Fmt.kstr (fun s -> Fmt.epr "janus_eval: %s@." s; code) fmt

(* the registry: experiment id -> one-line description (--list) *)
let registry =
  [
    ("fig6", "loop classification of the 25 benchmarks (Fig. 6)");
    ("fig7", "speedup under the four system configurations (Fig. 7)");
    ("fig8", "cycle breakdown of the parallelised runs (Fig. 8)");
    ("table1", "runtime-check counts and library-call footprint (Table I)");
    ("fig9", "speedup scaling over 1..8 threads (Fig. 9)");
    ("fig10", "rewrite-schedule size vs executable size (Fig. 10)");
    ("fig11", "STM commit/abort behaviour of the speculative loops (Fig. 11)");
    ("fig12", "speedup by compiler optimisation level (Fig. 12)");
    ("doacross", "extension: DOACROSS execution of static-dependence loops");
    ("prefetch", "extension: MEM_PREFETCH rules under the cache-miss model");
    ("adapt",
     "extension: online adaptive governor vs static schedules on \
      misbehaving inputs");
    ("fission",
     "extension: SCC-driven loop fission of static-dependence loops");
  ]

let experiments = List.map fst registry

let run_one ctx = function
  | "fig6" -> Fmt.pr "%a@." Eval.pp_fig6 (Eval.fig6 ~ctx ())
  | "fig7" -> Fmt.pr "%a@." Eval.pp_fig7 (Eval.fig7 ~ctx ())
  | "fig8" -> Fmt.pr "%a@." Eval.pp_fig8 (Eval.fig8 ~ctx ())
  | "table1" ->
    Fmt.pr "%a@." Eval.pp_table1 (Eval.table1 ~ctx ());
    Fmt.pr "%a@." Eval.pp_excall (Eval.excall_footprint ~ctx ())
  | "fig9" -> Fmt.pr "%a@." Eval.pp_fig9 (Eval.fig9 ~ctx ())
  | "fig10" -> Fmt.pr "%a@." Eval.pp_fig10 (Eval.fig10 ~ctx ())
  | "fig11" -> Fmt.pr "%a@." Eval.pp_fig11 (Eval.fig11 ~ctx ())
  | "fig12" -> Fmt.pr "%a@." Eval.pp_fig12 (Eval.fig12 ~ctx ())
  | "doacross" -> Fmt.pr "%a@." Eval.pp_ext_doacross (Eval.ext_doacross ~ctx ())
  | "prefetch" -> Fmt.pr "%a@." Eval.pp_ext_prefetch (Eval.ext_prefetch ~ctx ())
  | "adapt" -> Fmt.pr "%a@." Eval.pp_ext_adapt (Eval.ext_adapt ~ctx ())
  | "fission" -> Fmt.pr "%a@." Eval.pp_ext_fission (Eval.ext_fission ~ctx ())
  | _ -> assert false (* names are validated before any experiment runs *)

(* metrics go to stderr so stdout stays byte-comparable across runs *)
let print_metrics store pool =
  let obs = Obs.create () in
  Pipeline.publish_metrics store obs;
  (match pool with Some p -> Pool.publish_metrics p obs | None -> ());
  List.iter (fun (k, v) -> Fmt.epr "%-32s %12d@." k v) (Obs.counters obs)

let run names jobs no_cache store_dir profile_dir metrics no_fuse list =
  if no_fuse then Pipeline.fuse_default := false;
  if list then begin
    List.iter (fun (n, d) -> Fmt.pr "%-10s %s@." n d) registry;
    0
  end
  else
  let todo =
    List.concat_map
      (fun n -> if String.equal n "all" then experiments else [ n ])
      (match names with [] -> [ "all" ] | names -> names)
  in
  match List.find_opt (fun n -> not (List.mem n experiments)) todo with
  | Some bad ->
    die exit_bad_input "unknown experiment %S (expected %s or all)" bad
      (String.concat "|" experiments)
  | None ->
    let store = Pipeline.store ~enabled:(not no_cache) ?dir:store_dir () in
    (* fleet evidence: with --profile-dir, rows for binaries with stored
       profiles are derived from the merged aggregate instead of their
       one-shot training run; without it, evidence is None everywhere
       and output is byte-identical to a pgo-free build *)
    let evidence =
      match profile_dir with
      | None -> fun _ -> None
      | Some dir ->
        let pstore = Pgo.Store.open_ dir in
        fun img ->
          Pgo.Store.evidence_for pstore ~image:(Pipeline.image_key img)
    in
    let go pool =
      let ctx = Eval.ctx ~store ?pool ~evidence () in
      List.iter (run_one ctx) todo;
      if metrics then print_metrics store pool
    in
    (try
       (if jobs > 1 then Pool.with_pool ~jobs (fun p -> go (Some p))
        else go None);
       0
     with
     | Run.Out_of_fuel ->
       die exit_out_of_fuel "a baseline run exhausted its fuel budget"
     | Invalid_argument msg | Failure msg -> die exit_bad_input "%s" msg)

let pos_int what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "%s must be positive, got %d" what n))
    | None -> Error (`Msg (Printf.sprintf "%s must be an integer, got %S" what s))
  in
  Arg.conv (parse, Fmt.int)

let names =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT"
         ~doc:"Experiments to regenerate (fig6 fig7 fig8 table1 fig9 fig10 \
               fig11 fig12 doacross prefetch adapt fission, or all; see \
               --list). \
               Default: all.")

let jobs =
  Arg.(value & opt (pos_int "--jobs") 1
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Evaluate benchmark rows on $(docv) domains. Output is\n\
                 byte-identical to --jobs 1.")

let no_cache =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"Recompute every pipeline artifact instead of sharing\n\
                 analyses, profiles and schedules across experiments.")

let store_dir =
  Arg.(value & opt (some string) None
       & info [ "store-dir" ] ~docv:"DIR"
           ~doc:"Persist the artifact store under $(docv) (created if\n\
                 missing): artifacts survive across runs, so a warm\n\
                 rerun skips analysis, profiling and schedule\n\
                 generation. Output is byte-identical to a cold run.")

let profile_dir =
  Arg.(value & opt (some string) None
       & info [ "profile-dir" ] ~docv:"DIR"
           ~doc:"Consult the persistent profile store at $(docv): rows for\n\
                 binaries with stored fleet evidence are selected and\n\
                 scheduled from the merged aggregate instead of a one-shot\n\
                 training run. With no stored profiles (or without this\n\
                 flag) output is byte-identical to a pgo-free run.")

let metrics =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print pipeline.cache.* and pool.* counters to stderr\n\
                 when done.")

let no_fuse =
  Arg.(value & flag
       & info [ "no-fuse" ]
           ~doc:"Disable superinstruction fusion in the DBM's code\n\
                 cache. Fusion is inert at schedule level: output is\n\
                 byte-identical with or without this flag (CI asserts\n\
                 exactly that).")

let list =
  Arg.(value & flag
       & info [ "list" ]
           ~doc:"Print the experiment registry (id and one-line\n\
                 description) and exit.")

let cmd =
  Cmd.v
    (Cmd.info "janus_eval"
       ~doc:"Regenerate the paper's evaluation tables and figures")
    Term.(const run $ names $ jobs $ no_cache $ store_dir $ profile_dir
          $ metrics $ no_fuse $ list)

let () = exit (Cmd.eval' cmd)
