(* janus_eval: regenerate any table or figure of the paper's evaluation
   over the synthetic SPEC-like suite.

   Usage: janus_eval
     [fig6|fig7|fig8|table1|fig9|fig10|fig11|fig12|doacross|prefetch|all] *)

module Eval = Janus_core.Eval
module Run = Janus_vm.Run

let experiments =
  [ "fig6"; "fig7"; "fig8"; "table1"; "fig9"; "fig10"; "fig11"; "fig12";
    "doacross"; "prefetch" ]

let run_one = function
  | "fig6" -> Fmt.pr "%a@." Eval.pp_fig6 (Eval.fig6 ())
  | "fig7" -> Fmt.pr "%a@." Eval.pp_fig7 (Eval.fig7 ())
  | "fig8" -> Fmt.pr "%a@." Eval.pp_fig8 (Eval.fig8 ())
  | "table1" ->
    Fmt.pr "%a@." Eval.pp_table1 (Eval.table1 ());
    Fmt.pr "%a@." Eval.pp_excall (Eval.excall_footprint ())
  | "fig9" -> Fmt.pr "%a@." Eval.pp_fig9 (Eval.fig9 ())
  | "fig10" -> Fmt.pr "%a@." Eval.pp_fig10 (Eval.fig10 ())
  | "fig11" -> Fmt.pr "%a@." Eval.pp_fig11 (Eval.fig11 ())
  | "fig12" -> Fmt.pr "%a@." Eval.pp_fig12 (Eval.fig12 ())
  | "doacross" -> Fmt.pr "%a@." Eval.pp_ext_doacross (Eval.ext_doacross ())
  | "prefetch" -> Fmt.pr "%a@." Eval.pp_ext_prefetch (Eval.ext_prefetch ())
  | other ->
    Fmt.epr "janus_eval: unknown experiment %S (expected %s or all)@." other
      (String.concat "|" experiments);
    exit 2

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let todo = if String.equal which "all" then experiments else [ which ] in
  try List.iter run_one todo with
  | Run.Out_of_fuel ->
    Fmt.epr "janus_eval: a baseline run exhausted its fuel budget@.";
    exit 3
  | Invalid_argument msg | Failure msg ->
    Fmt.epr "janus_eval: %s@." msg;
    exit 2
