(* Quickstart: compile a guest kernel, run it natively, then run it
   through the full Janus pipeline and compare.

     dune exec examples/quickstart.exe *)

module Janus = Janus_core.Janus

let source =
  "double x[4096]; double y[4096];\n\
   int main() {\n\
   \  int n = read_int();\n\
   \  for (int i = 0; i < n; i++) {\n\
   \    x[i] = (double)(i % 19) * 0.5;\n\
   \    y[i] = (double)(i % 7) * 0.25;\n\
   \  }\n\
   \  for (int i = 0; i < n; i++) { y[i] = x[i] * 2.5 + y[i]; }\n\
   \  double s = 0.0;\n\
   \  for (int i = 0; i < n; i++) { s += y[i]; }\n\
   \  print_float(s);\n\
   \  return 0;\n\
   }"

let () =
  (* 1. compile with the guest compiler, as a user's gcc -O3 would *)
  let image = Janus_jcc.Jcc.compile source in
  Fmt.pr "compiled: %d bytes of stripped binary@." (Janus_vx.Image.size image);

  (* 2. native baseline *)
  let native = Janus.run_native ~input:[ 4096L ] image in
  Fmt.pr "native:   %s          (%d cycles)@."
    (String.trim native.Janus.output)
    native.Janus.cycles;

  (* 3. the Janus pipeline: static analysis -> profiling on a training
     input -> loop selection -> rewrite schedule -> parallel execution *)
  let result =
    Janus.parallelise
      ~cfg:(Janus.config ~threads:8 ())
      ~train_input:[ 512L ] ~input:[ 4096L ] image
  in
  Fmt.pr "janus:    %s          (%d cycles, %d loops parallelised, \
          schedule %d bytes)@."
    (String.trim result.Janus.output)
    result.Janus.cycles
    (List.length result.Janus.selected_loops)
    result.Janus.schedule_size;
  Fmt.pr "speedup:  %.2fx on 8 virtual cores@."
    (Janus.speedup ~native ~run:result);
  assert (String.equal native.Janus.output result.Janus.output)
