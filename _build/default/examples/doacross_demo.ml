(* DOACROSS extension (the paper's stated future work, §III-A): a loop
   with a genuine cross-iteration dependence — a smoothing accumulator
   feeding every store — cannot be DOALL-parallelised, but executing
   chunks in iteration order with context hand-off overlaps the
   independent part of the body.

     dune exec examples/doacross_demo.exe *)

module Janus = Janus_core.Janus

let source =
  "double a[8192]; double b[8192];\n\
   int main() {\n\
   \  for (int i = 0; i < 8192; i++) { a[i] = (double)(i % 23) * 0.1; }\n\
   \  double acc = 0.0;\n\
   \  for (int t = 0; t < 4; t++) {\n\
   \    for (int i = 0; i < 8192; i++) {\n\
   \      acc = acc * 0.75 + a[i] * 0.25;        /* carried chain */\n\
   \      b[i] = acc * 2.0 + a[i] * a[i] + 1.0;  /* independent work */\n\
   \    }\n\
   \  }\n\
   \  double s = 0.0;\n\
   \  for (int i = 0; i < 8192; i++) { s += b[i]; }\n\
   \  print_float(s);\n\
   \  return 0;\n\
   }"

let () =
  let image = Janus_jcc.Jcc.compile source in
  let native = Janus.run_native image in
  let doall_only = Janus.parallelise image in
  let with_doacross =
    Janus.parallelise ~cfg:(Janus.config ~use_doacross:true ()) image
  in
  Fmt.pr "the smoothing loop carries `acc' across iterations, so plain\n\
          Janus only parallelises the surrounding DOALL loops:@.";
  Fmt.pr "  doall-only:    %.2fx (%d loops)@."
    (Janus.speedup ~native ~run:doall_only)
    (List.length doall_only.Janus.selected_loops);
  Fmt.pr "  with doacross: %.2fx (%d loops)@."
    (Janus.speedup ~native ~run:with_doacross)
    (List.length with_doacross.Janus.selected_loops);
  assert (String.equal native.Janus.output with_doacross.Janus.output);
  assert (with_doacross.Janus.cycles < doall_only.Janus.cycles);
  Fmt.pr "outputs are bit-identical: the hand-off chain preserves the\n\
          sequential semantics while overlapping the independent work.@."
