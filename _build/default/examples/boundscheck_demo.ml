(* Runtime array-bounds checks (§II-E1): the same binary is parallel
   when its pointer arguments are disjoint and falls back to sequential
   execution — still correct — when they alias.

     dune exec examples/boundscheck_demo.exe *)

module Janus = Janus_core.Janus

(* kernel(p, q): statically, p and q might alias; the analyser emits a
   MEM_BOUNDS_CHECK rule guarding the parallel version. The program
   aliases them or not depending on its input; when they alias, the
   q[i+1] read makes the loop a genuine recurrence. *)
let source =
  "void kernel(double *p, double *q, int n) {\n\
   \  for (int i = 0; i < n; i++) { p[i] = q[i + 1] * 2.0 + 1.0; }\n\
   }\n\
   int main() {\n\
   \  int alias = read_int();\n\
   \  int n = 3000;\n\
   \  double *a = alloc_double(n);\n\
   \  double *b = alloc_double(n);\n\
   \  for (int i = 0; i < n; i++) { b[i] = (double)i; }\n\
   \  if (alias == 1) {\n\
   \    kernel(b, b, n - 1);\n\
   \  } else {\n\
   \    kernel(a, b, n);\n\
   \  }\n\
   \  double s = 0.0;\n\
   \  for (int i = 0; i < n; i++) { s += a[i] + b[i]; }\n\
   \  print_float(s);\n\
   \  return 0;\n\
   }"

let run alias =
  let image = Janus_jcc.Jcc.compile source in
  let input = [ (if alias then 1L else 0L) ] in
  let native = Janus.run_native ~input image in
  (* train on the disjoint input: profiling sees no dependence, so the
     loop ships with a runtime check — which the aliasing reference
     input then fails at run time (the paper's point: training cannot
     anticipate every input, the check keeps execution sound) *)
  let result =
    Janus.parallelise ~cfg:(Janus.config ()) ~train_input:[ 0L ] ~input image
  in
  Fmt.pr "%-22s native=%s janus=%s  %s  (%.2fx, check cycles %d)@."
    (if alias then "aliasing inputs:" else "disjoint inputs:")
    (String.trim native.Janus.output)
    (String.trim result.Janus.output)
    (if String.equal native.Janus.output result.Janus.output then "OK"
     else "MISMATCH")
    (Janus.speedup ~native ~run:result)
    result.Janus.breakdown.Janus.check_cycles;
  assert (String.equal native.Janus.output result.Janus.output)

let () =
  Fmt.pr "The analyser cannot prove kernel's arrays distinct; Janus\n\
          guards the parallel loop with a runtime range check (Fig. 4).@.";
  run false;  (* check passes: parallel execution *)
  run true    (* check fails: sequential fallback, still correct *)
