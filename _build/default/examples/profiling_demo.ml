(* Statically-driven profiling (§II-C): the analyser emits profiling
   rewrite rules; the DBM interprets them during a training run to
   measure loop coverage and detect cross-iteration dependences.

     dune exec examples/profiling_demo.exe *)

module Analysis = Janus_analysis.Analysis
module Loopanal = Janus_analysis.Loopanal
module Profiler = Janus_profile.Profiler

let source =
  "double hot[4096]; double cold[16]; int hist[64];\n\
   void scatter(int *idx, double *v, int n) {\n\
   \  for (int i = 0; i < n; i++) { v[idx[i] % 40] = v[idx[i] % 40] + 1.0; }\n\
   }\n\
   int main() {\n\
   \  int n = read_int();\n\
   \  /* hot DOALL loop: most of the execution */\n\
   \  for (int r = 0; r < 8; r++) {\n\
   \    for (int i = 0; i < n; i++) { hot[i] = (double)i * 0.5 + hot[i]; }\n\
   \  }\n\
   \  /* cold loop: tiny coverage, filtered by the profile */\n\
   \  for (int i = 0; i < 16; i++) { cold[i] = (double)i; }\n\
   \  /* statically ambiguous scatter: profiling detects real deps */\n\
   \  int *idx = alloc_int(64);\n\
   \  double *v = alloc_double(64);\n\
   \  for (int i = 0; i < 64; i++) { idx[i] = i * 7; }\n\
   \  scatter(idx, v, 64);\n\
   \  print_float(hot[1] + cold[2] + v[3]);\n\
   \  return 0;\n\
   }"

let () =
  let image = Janus_jcc.Jcc.compile source in
  let analysis = Analysis.analyse_image image in
  let cov = Profiler.run_coverage ~input:[ 2048L ] image analysis in
  let deps = Profiler.run_dependence ~input:[ 2048L ] image analysis in
  Fmt.pr "static classification + training-run profile:@.";
  Fmt.pr "%-6s %-14s %9s %9s %6s@." "loop" "class" "coverage" "avg-trip" "dep?";
  List.iter
    (fun (r : Loopanal.report) ->
       let lid = r.Loopanal.loop.Janus_analysis.Looptree.lid in
       Fmt.pr "%-6d %-14s %8.2f%% %9.1f %6s@." lid
         (Loopanal.classification_name r.Loopanal.cls)
         (100.0 *. Profiler.fraction cov lid)
         (Profiler.avg_trip cov lid)
         (if Profiler.has_dep deps lid then "yes"
          else if Profiler.was_observed deps lid then "no"
          else "-"))
    analysis.Analysis.reports;
  (* the scatter loop must show a dynamic dependence *)
  let scatter_dep =
    List.exists
      (fun (r : Loopanal.report) ->
         match r.Loopanal.cls with
         | Loopanal.Ambiguous _ ->
           Profiler.has_dep deps r.Loopanal.loop.Janus_analysis.Looptree.lid
         | _ -> false)
      analysis.Analysis.reports
  in
  Fmt.pr "scatter loop flagged as dynamic dependence: %b@." scatter_dep;
  assert scatter_dep
