(* Software-prefetching extension (named in the paper's conclusion as
   another optimisation the rewrite-rule format can express): the
   analyser emits a MEM_PREFETCH rule for each strided access of a
   selected loop, and the DBM inserts a `prefetcht0` hint 512 bytes
   ahead during translation.

   The baseline cost model is flat, so all three runs below enable the
   opt-in cold-line miss model (Machine.model_cache): a first touch of
   a 64-byte line costs Cost.cache_miss extra cycles; a prefetch warms
   the line for its 1-cycle issue cost.

     dune exec examples/prefetch_demo.exe *)

module Janus = Janus_core.Janus

(* a streaming kernel: large arrays, touched once per sweep — the shape
   where prefetching pays (lbm-like) *)
let source =
  "double src[65536]; double dst[65536];\n\
   int main() {\n\
   \  for (int i = 0; i < 65536; i++) { src[i] = (double)(i % 97) * 0.01; }\n\
   \  for (int t = 0; t < 3; t++) {\n\
   \    for (int i = 0; i < 65536; i++) {\n\
   \      dst[i] = src[i] * 1.9 + 0.3;\n\
   \    }\n\
   \    for (int i = 0; i < 65536; i++) {\n\
   \      src[i] = dst[i] * 0.5 + 0.1;\n\
   \    }\n\
   \  }\n\
   \  double s = 0.0;\n\
   \  for (int i = 0; i < 65536; i++) { s += src[i]; }\n\
   \  print_float(s);\n\
   \  return 0;\n\
   }"

let () =
  let image = Janus_jcc.Jcc.compile source in
  (* the native baseline pays the same cold-line misses *)
  let native = Janus.run_native ~model_cache:true image in
  let plain =
    Janus.parallelise ~cfg:(Janus.config ~model_cache:true ()) image
  in
  let prefetching =
    Janus.parallelise
      ~cfg:(Janus.config ~model_cache:true ~prefetch:true ())
      image
  in
  Fmt.pr "streaming kernel under the cold-line miss model (8 threads):@.";
  Fmt.pr "  janus:            %.2fx@." (Janus.speedup ~native ~run:plain);
  Fmt.pr "  janus + prefetch: %.2fx@."
    (Janus.speedup ~native ~run:prefetching);
  assert (String.equal native.Janus.output prefetching.Janus.output);
  assert (prefetching.Janus.cycles < plain.Janus.cycles);
  Fmt.pr
    "outputs are bit-identical: the hints have no architectural effect,\n\
     they only warm lines ahead of the sweep.@."
