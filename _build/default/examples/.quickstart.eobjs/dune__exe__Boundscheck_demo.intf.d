examples/boundscheck_demo.mli:
