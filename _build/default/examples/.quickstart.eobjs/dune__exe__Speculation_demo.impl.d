examples/speculation_demo.ml: Fmt Janus_core Janus_jcc String
