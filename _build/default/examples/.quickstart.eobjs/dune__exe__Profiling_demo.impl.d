examples/profiling_demo.ml: Fmt Janus_analysis Janus_jcc Janus_profile List
