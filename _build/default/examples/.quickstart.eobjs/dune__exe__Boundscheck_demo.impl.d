examples/boundscheck_demo.ml: Fmt Janus_core Janus_jcc String
