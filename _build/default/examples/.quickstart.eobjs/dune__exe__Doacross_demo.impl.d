examples/doacross_demo.ml: Fmt Janus_core Janus_jcc List String
