examples/prefetch_demo.mli:
