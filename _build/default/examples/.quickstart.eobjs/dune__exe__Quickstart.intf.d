examples/quickstart.mli:
