examples/doacross_demo.mli:
