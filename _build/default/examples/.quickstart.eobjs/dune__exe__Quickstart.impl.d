examples/quickstart.ml: Fmt Janus_core Janus_jcc Janus_vx List String
