(* Tests for the analyser's symbolic polynomial algebra and for the
   structural pieces of the static analysis (dominators, loop forest)
   on hand-built CFGs. *)

open Janus_vx
open Janus_analysis
open Janus_analysis.Sympoly

(* ------------------------------------------------------------------ *)
(* Polynomial algebra                                                  *)
(* ------------------------------------------------------------------ *)

let a1 = fresh_atom (Entry (Rloc Reg.RAX))
let a2 = fresh_atom (Entry (Rloc Reg.RBX))

let gen_poly =
  let open QCheck2.Gen in
  let* c = map Int64.of_int (int_range (-100) 100) in
  let* k1 = map Int64.of_int (int_range (-10) 10) in
  let* k2 = map Int64.of_int (int_range (-10) 10) in
  return (add (const c) (add (scale k1 (of_atom a1)) (scale k2 (of_atom a2))))

let prop_add_commutative =
  QCheck2.Test.make ~count:300 ~name:"polynomial addition commutes"
    QCheck2.Gen.(tup2 gen_poly gen_poly)
    (fun (p, q) -> equal (add p q) (add q p))

let prop_add_associative =
  QCheck2.Test.make ~count:300 ~name:"polynomial addition associates"
    QCheck2.Gen.(tup3 gen_poly gen_poly gen_poly)
    (fun (p, q, r) -> equal (add p (add q r)) (add (add p q) r))

let prop_sub_self_is_zero =
  QCheck2.Test.make ~count:300 ~name:"p - p = 0" gen_poly (fun p ->
      equal (sub p p) zero)

let prop_scale_distributes =
  QCheck2.Test.make ~count:300 ~name:"k(p+q) = kp + kq"
    QCheck2.Gen.(tup3 (map Int64.of_int (int_range (-20) 20)) gen_poly gen_poly)
    (fun (k, p, q) -> equal (scale k (add p q)) (add (scale k p) (scale k q)))

let prop_mul_const_is_scale =
  QCheck2.Test.make ~count:300 ~name:"const * p = scale"
    QCheck2.Gen.(tup2 (map Int64.of_int (int_range (-20) 20)) gen_poly)
    (fun (k, p) -> equal (mul (const k) p) (scale k p))

let test_nonaffine_mul_is_opaque () =
  let p = of_atom a1 and q = of_atom a2 in
  let r = mul p q in
  (* the product of two non-constant polynomials collapses to a fresh
     opaque atom: not equal to any affine combination *)
  Alcotest.(check bool) "opaque" false (equal r (mul p q));
  Alcotest.(check bool) "not constant" true (to_const r = None)

let test_coeff_extraction () =
  let p = add (const 5L) (scale 3L (of_atom a1)) in
  (match coeff_of p (fun a -> a.aid = a1.aid) with
   | Some (c, _) -> Alcotest.(check int64) "coefficient" 3L c
   | None -> Alcotest.fail "coefficient not found");
  let rest = without p (fun a -> a.aid = a1.aid) in
  Alcotest.(check (option int64)) "remainder" (Some 5L) (to_const rest)

let test_shl_as_scale () =
  (* the symbolic executor turns shl-by-constant into a scale; check
     the polynomial layer is consistent with that *)
  let p = of_atom a1 in
  Alcotest.(check bool) "p * 8 = p << 3" true
    (equal (scale 8L p) (mul p (const 8L)))

(* ------------------------------------------------------------------ *)
(* Dominators and loop forest on a handcrafted CFG                     *)
(* ------------------------------------------------------------------ *)

let reg r = Operand.Reg r
let imm i = Operand.Imm (Int64.of_int i)

(* nested loops:
     entry -> outer_head -> inner_head -> inner_body -> inner_head
                         -> after_inner -> outer_head
           -> exit *)
let nested_image () =
  let b = Builder.create () in
  Builder.label b "_start";
  Builder.ins b (Insn.Mov (reg Reg.RCX, imm 0));
  Builder.label b "outer";
  Builder.ins b (Insn.Cmp (reg Reg.RCX, imm 10));
  Builder.jcc b Cond.Ge "done";
  Builder.ins b (Insn.Mov (reg Reg.RDX, imm 0));
  Builder.label b "inner";
  Builder.ins b (Insn.Cmp (reg Reg.RDX, imm 5));
  Builder.jcc b Cond.Ge "after";
  Builder.ins b (Insn.Alu (Insn.Add, reg Reg.RAX, reg Reg.RDX));
  Builder.ins b (Insn.Alu (Insn.Add, reg Reg.RDX, imm 1));
  Builder.jmp b "inner";
  Builder.label b "after";
  Builder.ins b (Insn.Alu (Insn.Add, reg Reg.RCX, imm 1));
  Builder.jmp b "outer";
  Builder.label b "done";
  Builder.ins b (Insn.Mov (reg Reg.RDI, imm 0));
  Builder.ins b (Insn.Syscall Insn.sys_exit);
  (Builder.to_image b ~entry:"_start",
   Builder.label_addr b "outer",
   Builder.label_addr b "inner")

let test_nested_loop_forest () =
  let img, outer_addr, inner_addr = nested_image () in
  let cfg = Cfg.recover img in
  let f = Option.get (Cfg.func cfg img.Image.entry) in
  let dom = Dom.compute f in
  let lt = Looptree.compute f dom in
  Alcotest.(check int) "two loops" 2 (List.length lt.Looptree.loops);
  let outer =
    List.find (fun (l : Looptree.loop) -> l.Looptree.header = outer_addr)
      lt.Looptree.loops
  in
  let inner =
    List.find (fun (l : Looptree.loop) -> l.Looptree.header = inner_addr)
      lt.Looptree.loops
  in
  Alcotest.(check (option int)) "inner nested in outer"
    (Some outer.Looptree.lid) inner.Looptree.parent;
  Alcotest.(check (list int)) "outer's children" [ inner.Looptree.lid ]
    outer.Looptree.children;
  Alcotest.(check bool) "inner is innermost" true (Looptree.is_innermost inner);
  Alcotest.(check bool) "inner body inside outer body" true
    (List.for_all
       (fun blk -> List.mem blk outer.Looptree.body)
       inner.Looptree.body);
  (* dominator sanity on the same CFG *)
  Alcotest.(check bool) "outer dominates inner" true
    (Dom.dominates dom outer_addr inner_addr);
  Alcotest.(check bool) "inner does not dominate outer" false
    (Dom.dominates dom inner_addr outer_addr)

let test_loop_exits_and_preheader () =
  let img, outer_addr, inner_addr = nested_image () in
  let cfg = Cfg.recover img in
  let f = Option.get (Cfg.func cfg img.Image.entry) in
  let dom = Dom.compute f in
  let lt = Looptree.compute f dom in
  let inner =
    List.find (fun (l : Looptree.loop) -> l.Looptree.header = inner_addr)
      lt.Looptree.loops
  in
  Alcotest.(check int) "inner has one exit edge" 1
    (List.length inner.Looptree.exits);
  Alcotest.(check bool) "inner has a preheader" true
    (inner.Looptree.preheader <> None);
  let outer =
    List.find (fun (l : Looptree.loop) -> l.Looptree.header = outer_addr)
      lt.Looptree.loops
  in
  Alcotest.(check bool) "outer preheader is the entry block" true
    (outer.Looptree.preheader = Some img.Image.entry)

(* irreducible-ish / multi-exit shapes must not crash recovery *)
let test_break_loop_recovery () =
  let b = Builder.create () in
  Builder.label b "_start";
  Builder.ins b (Insn.Mov (reg Reg.RCX, imm 0));
  Builder.label b "head";
  Builder.ins b (Insn.Cmp (reg Reg.RCX, imm 100));
  Builder.jcc b Cond.Ge "out";
  Builder.ins b (Insn.Cmp (reg Reg.RAX, imm 5));
  Builder.jcc b Cond.Eq "out";  (* second exit: a break *)
  Builder.ins b (Insn.Alu (Insn.Add, reg Reg.RCX, imm 1));
  Builder.jmp b "head";
  Builder.label b "out";
  Builder.ins b (Insn.Mov (reg Reg.RDI, imm 0));
  Builder.ins b (Insn.Syscall Insn.sys_exit);
  let img = Builder.to_image b ~entry:"_start" in
  let cfg = Cfg.recover img in
  let f = Option.get (Cfg.func cfg img.Image.entry) in
  let dom = Dom.compute f in
  let lt = Looptree.compute f dom in
  Alcotest.(check int) "one loop" 1 (List.length lt.Looptree.loops);
  let l = List.hd lt.Looptree.loops in
  Alcotest.(check int) "two exit edges" 2 (List.length l.Looptree.exits)

let tests =
  [
    Alcotest.test_case "non-affine product is opaque" `Quick
      test_nonaffine_mul_is_opaque;
    Alcotest.test_case "coefficient extraction" `Quick test_coeff_extraction;
    Alcotest.test_case "shl as scale" `Quick test_shl_as_scale;
    Alcotest.test_case "nested loop forest" `Quick test_nested_loop_forest;
    Alcotest.test_case "loop exits and preheader" `Quick
      test_loop_exits_and_preheader;
    Alcotest.test_case "break loop recovery" `Quick test_break_loop_recovery;
    QCheck_alcotest.to_alcotest prop_add_commutative;
    QCheck_alcotest.to_alcotest prop_add_associative;
    QCheck_alcotest.to_alcotest prop_sub_self_is_zero;
    QCheck_alcotest.to_alcotest prop_scale_distributes;
    QCheck_alcotest.to_alcotest prop_mul_const_is_scale;
  ]
