(* Unit tests for the statically-driven profilers: coverage counters
   (invocations, iterations, attributed work, external-call footprints)
   and the dependence profiler's shadow-map semantics, on guests whose
   ground truth is known by construction. *)

open Janus_jcc
module Analysis = Janus_analysis.Analysis
module Loopanal = Janus_analysis.Loopanal
module Looptree = Janus_analysis.Looptree
module Profiler = Janus_profile.Profiler

let compile src = Jcc.compile src

let profile src =
  let img = compile src in
  let t = Analysis.analyse_image img in
  let cov = Profiler.run_coverage img t in
  (img, t, cov)

(* the report of the innermost loop matching [pred] *)
let find_loop (t : Analysis.t) pred =
  List.find_opt (fun (r : Loopanal.report) -> pred r) t.Analysis.reports

let lid (r : Loopanal.report) = r.Loopanal.loop.Looptree.lid

(* ------------------------------------------------------------------ *)
(* Coverage                                                            *)
(* ------------------------------------------------------------------ *)

(* one loop with a known trip count, invoked a known number of times *)
let test_invocations_and_trip () =
  let src =
    "double a[64];\n\
     int main() {\n\
     \  for (int t = 0; t < 10; t++) {\n\
     \    for (int i = 0; i < 64; i++) { a[i] = a[i] + 1.0; }\n\
     \  }\n\
     \  print_float(a[0]);\n\
     \  return 0;\n\
     }"
  in
  let _, t, cov = profile src in
  (* the inner DOALL loop *)
  let inner =
    Option.get
      (find_loop t (fun r ->
           r.Loopanal.cls = Loopanal.Static_doall
           || match r.Loopanal.cls with
              | Loopanal.Ambiguous _ -> true
              | _ -> false))
  in
  let c = Profiler.cov_of cov (lid inner) in
  Alcotest.(check int) "10 invocations" 10 c.Profiler.invocations;
  (* unrolling may halve the header count; trips per invocation must
     land between 32 (unrolled x2) and 64 *)
  let trip = Profiler.avg_trip cov (lid inner) in
  Alcotest.(check bool)
    (Printf.sprintf "trip %.1f in [32, 64]" trip)
    true
    (trip >= 32.0 && trip <= 64.0)

let test_fraction_orders_loops () =
  (* the hot loop must dominate coverage; the cold one must not *)
  let src =
    "double a[4096]; double b[16];\n\
     int main() {\n\
     \  for (int i = 0; i < 4096; i++) { a[i] = a[i] * 2.0 + 1.0; }\n\
     \  for (int i = 0; i < 16; i++) { b[i] = b[i] + 1.0; }\n\
     \  print_float(a[1] + b[1]);\n\
     \  return 0;\n\
     }"
  in
  let _, t, cov = profile src in
  let loops =
    List.filter
      (fun (r : Loopanal.report) ->
         match r.Loopanal.cls with
         | Loopanal.Incompatible _ | Loopanal.Outer -> false
         | _ -> true)
      t.Analysis.reports
  in
  let fracs =
    List.map (fun r -> Profiler.fraction cov (lid r)) loops
    |> List.sort (fun a b -> compare b a)
  in
  (match fracs with
   | hot :: cold :: _ ->
     Alcotest.(check bool)
       (Printf.sprintf "hot %.3f > 10x cold %.3f" hot cold)
       true
       (hot > 0.5 && hot > cold *. 10.0)
   | _ -> Alcotest.fail "expected two profiled loops");
  (* fractions are sane *)
  List.iter
    (fun f ->
       Alcotest.(check bool) "fraction in [0,1]" true (f >= 0.0 && f <= 1.0))
    fracs

let test_unknown_loop_zero () =
  let src =
    "int main() { print_int(42); return 0; }"
  in
  let _, _, cov = profile src in
  Alcotest.(check (float 0.0)) "no such loop" 0.0
    (Profiler.fraction cov 12345);
  Alcotest.(check (float 0.0)) "no trip" 0.0 (Profiler.avg_trip cov 12345);
  let c = Profiler.cov_of cov 12345 in
  Alcotest.(check int) "zeros" 0 c.Profiler.invocations

let test_avg_work_scales_with_body () =
  (* same trip counts, 8x body work: avg_work must clearly separate *)
  let src n_extra =
    Printf.sprintf
      "double a[512];\n\
       int main() {\n\
       \  for (int i = 0; i < 512; i++) {\n\
       \    double x = a[i];\n\
       %s\
       \    a[i] = x;\n\
       \  }\n\
       \  print_float(a[7]);\n\
       \  return 0;\n\
       }"
      (String.concat ""
         (List.init n_extra (fun _ -> "    x = x * 1.0001 + 0.5;\n")))
  in
  let work n =
    let _, t, cov = profile (src n) in
    (* the hot loop = highest coverage (vector/remainder splitting can
       reorder reports) *)
    let hot =
      List.fold_left
        (fun acc (r : Loopanal.report) ->
           let f = Profiler.fraction cov (lid r) in
           match acc with
           | Some (_, best) when best >= f -> acc
           | _ -> Some (r, f))
        None t.Analysis.reports
    in
    let r, _ = Option.get hot in
    Profiler.avg_work cov (lid r)
  in
  let small = work 0 and big = work 16 in
  Alcotest.(check bool)
    (Printf.sprintf "work scales: %.0f vs %.0f" small big)
    true
    (big > small *. 2.0)

let test_excall_footprint_counted () =
  (* pow inside the loop: the EXCALL probes must count calls and a
     non-trivial per-call footprint with zero writes (the §III-B
     measurement) *)
  let src =
    "extern double pow(double, double);\n\
     double a[256];\n\
     int main() {\n\
     \  for (int i = 0; i < 256; i++) { a[i] = pow(1.01, 8.0) + (double)i; }\n\
     \  print_float(a[3]);\n\
     \  return 0;\n\
     }"
  in
  let _, t, cov = profile src in
  let r =
    Option.get
      (find_loop t (fun r -> r.Loopanal.excall_sites <> []))
  in
  let c = Profiler.cov_of cov (lid r) in
  Alcotest.(check bool) "every iteration calls"
    true (c.Profiler.ex_calls >= 128);
  let per_call =
    float_of_int c.Profiler.ex_insns /. float_of_int c.Profiler.ex_calls
  in
  Alcotest.(check bool)
    (Printf.sprintf "%.0f insns per call" per_call)
    true
    (per_call > 20.0 && per_call < 200.0);
  Alcotest.(check int) "library code writes nothing" 0 c.Profiler.ex_writes;
  Alcotest.(check bool) "reads its tables" true (c.Profiler.ex_reads > 0)

(* ------------------------------------------------------------------ *)
(* Dependence profiling                                                *)
(* ------------------------------------------------------------------ *)

let run_deps ?(input = []) src =
  let img = compile src in
  let t = Analysis.analyse_image img in
  (t, Profiler.run_dependence ~input img t)

(* statically invisible aliasing: the write offset comes from input, so
   neither the guest compiler nor the binary analyser can disprove
   overlap (a constant-distance recurrence would be *proved* dependent
   statically and never reach the profiler) *)
let test_dep_found_on_overlap () =
  let src =
    "int main() {\n\
     \  double *p = alloc_double(4096);\n\
     \  int off = read_int();\n\
     \  for (int i = 0; i < 1984; i++) { p[i+off] = p[i] * 0.5 + 1.0; }\n\
     \  print_float(p[99]);\n\
     \  return 0;\n\
     }"
  in
  (* off = 64 at runtime: iteration i's write lands on iteration
     (i+64)'s read *)
  let t, deps = run_deps ~input:[ 64L ] src in
  let amb =
    List.filter
      (fun (r : Loopanal.report) ->
         match r.Loopanal.cls with Loopanal.Ambiguous _ -> true | _ -> false)
      t.Analysis.reports
  in
  Alcotest.(check bool) "an ambiguous loop exists" true (amb <> []);
  Alcotest.(check bool) "cross-iteration dependence flagged" true
    (List.exists (fun r -> Profiler.has_dep deps (lid r)) amb)

let test_no_dep_on_disjoint () =
  let src =
    "int main() {\n\
     \  double *p = alloc_double(2048);\n\
     \  double *q = alloc_double(2048);\n\
     \  for (int i = 0; i < 2048; i++) { q[i] = p[i] * 0.5 + 1.0; }\n\
     \  print_float(q[99]);\n\
     \  return 0;\n\
     }"
  in
  let t, deps = run_deps src in
  let amb =
    List.filter
      (fun (r : Loopanal.report) ->
         match r.Loopanal.cls with Loopanal.Ambiguous _ -> true | _ -> false)
      t.Analysis.reports
  in
  List.iter
    (fun r ->
       if Profiler.was_observed deps (lid r) then
         Alcotest.(check bool) "disjoint arrays: no dependence" false
           (Profiler.has_dep deps (lid r)))
    amb

let test_same_iteration_reuse_not_dep () =
  (* reading and writing the same word within ONE iteration is not a
     cross-iteration dependence *)
  let src =
    "int main() {\n\
     \  double *p = alloc_double(1024);\n\
     \  for (int i = 0; i < 1024; i++) { p[i] = p[i] * 2.0 + 1.0; }\n\
     \  print_float(p[5]);\n\
     \  return 0;\n\
     }"
  in
  let t, deps = run_deps src in
  List.iter
    (fun (r : Loopanal.report) ->
       match r.Loopanal.cls with
       | Loopanal.Ambiguous _ when Profiler.was_observed deps (lid r) ->
         Alcotest.(check bool) "in-place update is iteration-local" false
           (Profiler.has_dep deps (lid r))
       | _ -> ())
    t.Analysis.reports

let test_observed_tracks_execution () =
  (* a loop behind a false condition is instrumented but never runs *)
  let src =
    "int main() {\n\
     \  double *p = alloc_double(1024);\n\
     \  int off = read_int();\n\
     \  if (off == 1) {\n\
     \    for (int i = 0; i < 448; i++) { p[i+off] = p[i] + 1.0; }\n\
     \  }\n\
     \  for (int i = 0; i < 512; i++) { p[i] = 2.0; }\n\
     \  print_float(p[0]);\n\
     \  return 0;\n\
     }"
  in
  (* empty input: read_int returns 0, the aliasing loop never runs *)
  let t, deps = run_deps src in
  let unobserved =
    List.filter
      (fun (r : Loopanal.report) ->
         (match r.Loopanal.cls with
          | Loopanal.Ambiguous _ -> true
          | _ -> false)
         && not (Profiler.was_observed deps (lid r)))
      t.Analysis.reports
  in
  Alcotest.(check bool) "the dead loop is unobserved" true (unobserved <> []);
  List.iter
    (fun r ->
       Alcotest.(check bool) "unobserved implies no dep" false
         (Profiler.has_dep deps (lid r)))
    unobserved

(* ------------------------------------------------------------------ *)
(* .jpf serialisation                                                  *)
(* ------------------------------------------------------------------ *)

let test_jpf_roundtrip () =
  let src =
    "double a[2048];\n\
     int main() {\n\
     \  double *p = alloc_double(512);\n\
     \  int off = read_int();\n\
     \  for (int i = 0; i < 2048; i++) { a[i] = a[i] * 2.0 + 1.0; }\n\
     \  for (int i = 0; i < 256; i++) { p[i+off] = p[i] + 1.0; }\n\
     \  print_float(a[0] + p[0]);\n\
     \  return 0;\n\
     }"
  in
  let img = compile src in
  let t = Analysis.analyse_image img in
  let cov = Profiler.run_coverage ~input:[ 8L ] img t in
  let deps = Profiler.run_dependence ~input:[ 8L ] img t in
  let cov', deps' = Profiler.of_bytes (Profiler.to_bytes cov deps) in
  Alcotest.(check int) "total insns" cov.Profiler.total_insns
    cov'.Profiler.total_insns;
  (* every counter survives for every loop of the analysis *)
  List.iter
    (fun (r : Loopanal.report) ->
       let l = lid r in
       let a = Profiler.cov_of cov l and b = Profiler.cov_of cov' l in
       Alcotest.(check int) "self_insns" a.Profiler.self_insns
         b.Profiler.self_insns;
       Alcotest.(check int) "invocations" a.Profiler.invocations
         b.Profiler.invocations;
       Alcotest.(check int) "iterations" a.Profiler.iterations
         b.Profiler.iterations;
       Alcotest.(check int) "ex_calls" a.Profiler.ex_calls b.Profiler.ex_calls;
       Alcotest.(check bool) "observed" (Profiler.was_observed deps l)
         (Profiler.was_observed deps' l);
       Alcotest.(check bool) "dep" (Profiler.has_dep deps l)
         (Profiler.has_dep deps' l))
    t.Analysis.reports

let test_jpf_rejects_garbage () =
  Alcotest.(check bool) "bad magic" true
    (try
       ignore (Profiler.of_bytes (Bytes.of_string "NOTAPROFILE_____"));
       false
     with Profiler.Bad_profile _ -> true);
  Alcotest.(check bool) "truncated" true
    (try
       ignore (Profiler.of_bytes (Bytes.of_string "JPF1"));
       false
     with Profiler.Bad_profile _ -> true);
  (* a record count pointing past the end *)
  let b = Buffer.create 32 in
  Buffer.add_string b "JPF1";
  Buffer.add_int64_le b 1000L;
  Buffer.add_int32_le b 99l;
  Alcotest.(check bool) "short records" true
    (try
       ignore (Profiler.of_bytes (Buffer.to_bytes b));
       false
     with Profiler.Bad_profile _ -> true)

(* the offline workflow (save profile, reload, select) must make the
   same decisions as the in-process pipeline *)
let test_offline_selection_matches () =
  let src =
    "double x[8192]; double y[16];\n\
     int main() {\n\
     \  for (int t = 0; t < 4; t++) {\n\
     \    for (int i = 0; i < 8192; i++) { x[i] = x[i] * 1.01 + 0.5; }\n\
     \    for (int i = 0; i < 16; i++) { y[i] = y[i] + 1.0; }\n\
     \  }\n\
     \  print_float(x[0] + y[0]);\n\
     \  return 0;\n\
     }"
  in
  let img = compile src in
  let t = Analysis.analyse_image img in
  let cov = Profiler.run_coverage img t in
  let deps = Profiler.run_dependence img t in
  let cov', deps' = Profiler.of_bytes (Profiler.to_bytes cov deps) in
  let cfg = Janus_core.Janus.config () in
  let sel ~coverage ~deps =
    let s = Janus_core.Janus.select ~cfg t ~coverage ~deps in
    List.map (fun (r, _) -> lid r) s.Janus_core.Janus.chosen
  in
  Alcotest.(check (list int)) "same loops chosen"
    (sel ~coverage:(Some cov) ~deps:(Some deps))
    (sel ~coverage:(Some cov') ~deps:(Some deps'));
  (* and the profile filters do reject the cold 16-element loop *)
  let chosen = sel ~coverage:(Some cov) ~deps:(Some deps) in
  let all = sel ~coverage:None ~deps:(Some deps) in
  Alcotest.(check bool) "profile filtered something" true
    (List.length chosen < List.length all)

(* coverage totals must account for all retired instructions *)
let test_total_insns_positive () =
  let _, _, cov =
    profile
      "int main() { int s = 0; for (int i = 0; i < 100; i++) { s += i; }\n\
       print_int(s); return 0; }"
  in
  Alcotest.(check bool) "total > 0" true (cov.Profiler.total_insns > 0)

let tests =
  [
    Alcotest.test_case "invocations and trip" `Quick test_invocations_and_trip;
    Alcotest.test_case "fraction orders loops" `Quick
      test_fraction_orders_loops;
    Alcotest.test_case "unknown loop reads zero" `Quick test_unknown_loop_zero;
    Alcotest.test_case "avg_work scales with body" `Quick
      test_avg_work_scales_with_body;
    Alcotest.test_case "excall footprint" `Quick test_excall_footprint_counted;
    Alcotest.test_case "dependence found on overlap" `Quick
      test_dep_found_on_overlap;
    Alcotest.test_case "no dependence on disjoint" `Quick
      test_no_dep_on_disjoint;
    Alcotest.test_case "in-place update not a dep" `Quick
      test_same_iteration_reuse_not_dep;
    Alcotest.test_case "observed tracks execution" `Quick
      test_observed_tracks_execution;
    Alcotest.test_case "jpf roundtrip" `Quick test_jpf_roundtrip;
    Alcotest.test_case "jpf rejects garbage" `Quick test_jpf_rejects_garbage;
    Alcotest.test_case "offline selection matches" `Quick
      test_offline_selection_matches;
    Alcotest.test_case "total insns positive" `Quick test_total_insns_positive;
  ]
