test/test_sympoly.ml: Alcotest Builder Cfg Cond Dom Image Insn Int64 Janus_analysis Janus_vx List Looptree Operand Option QCheck2 QCheck_alcotest Reg
