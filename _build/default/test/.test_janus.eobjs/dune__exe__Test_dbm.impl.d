test/test_dbm.ml: Alcotest Array Buffer Builder Cond Encode Hashtbl Image Insn Int64 Janus_dbm Janus_schedule Janus_vm Janus_vx Layout List Machine Operand Program Reg Run
