test/test_janus.mli:
