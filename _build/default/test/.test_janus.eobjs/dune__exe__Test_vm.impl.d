test/test_vm.ml: Alcotest Builder Bytes Cond Cost Encode Float Hashtbl Image Insn Int64 Janus_jcc Janus_vm Janus_vx Layout List Machine Memory Operand Printf Reg Run Semantics String
