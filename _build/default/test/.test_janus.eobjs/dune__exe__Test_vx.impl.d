test/test_vx.ml: Alcotest Builder Bytes Char Cond Cost Decode Encode Image Insn Int64 Janus_vx Layout List Operand QCheck2 QCheck_alcotest Reg String
