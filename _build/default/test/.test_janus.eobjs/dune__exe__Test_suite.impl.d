test/test_suite.ml: Alcotest Janus Janus_analysis Janus_core Janus_jcc Janus_suite List Option Printf String
