test/test_e2e.ml: Alcotest Janus Janus_core Janus_jcc Janus_schedule Jcc List Printf QCheck2 QCheck_alcotest String
