test/test_profile.ml: Alcotest Buffer Bytes Janus_analysis Janus_core Janus_jcc Janus_profile Jcc List Option Printf String
