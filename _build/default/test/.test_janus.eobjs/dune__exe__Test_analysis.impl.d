test/test_analysis.ml: Alcotest Analysis Array Cfg Dom Fmt Hashtbl Int64 Janus_analysis Janus_jcc Janus_schedule Jcc List Loopanal Looptree Printf QCheck2 QCheck_alcotest Rulegen String
