test/test_jcc.ml: Alcotest Janus_jcc Janus_vm Janus_vx Jcc List Mir Printf QCheck2 QCheck_alcotest Run String
