test/test_janus.ml: Alcotest Test_analysis Test_dbm Test_e2e Test_jcc Test_profile Test_runtime Test_schedule Test_suite Test_sympoly Test_vm Test_vx
