test/test_runtime.ml: Alcotest Array Builder Cond Insn Int64 Janus_dbm Janus_runtime Janus_schedule Janus_vm Janus_vx List Machine Memory Printf Program QCheck2 QCheck_alcotest Run Semantics
