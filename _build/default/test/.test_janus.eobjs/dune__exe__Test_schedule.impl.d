test/test_schedule.ml: Alcotest Buffer Bytes Cond Desc Hashtbl Int64 Janus_schedule Janus_vx List QCheck2 QCheck_alcotest Reg Rexpr Rule Schedule
