(* Compiler tests: golden outputs and differential testing across
   optimisation levels, vendor profiles and auto-parallelisation. *)

open Janus_jcc
open Janus_vm

let run ?options src =
  let img = Jcc.compile ?options src in
  (Run.run img).Run.output

let check_output ?options name expected src =
  Alcotest.(check string) name expected (run ?options src)

let o ?(vendor = Jcc.Gcc) ?(opt = 3) ?(avx = false) ?(autopar = 0) () =
  { Jcc.vendor; opt; avx; autopar }

let all_option_sets =
  [
    ("O0", o ~opt:0 ());
    ("O1", o ~opt:1 ());
    ("O2", o ~opt:2 ());
    ("O3-gcc", o ());
    ("O3-icc", o ~vendor:Jcc.Icc ());
    ("O3-avx", o ~avx:true ());
    ("O3-icc-avx", o ~vendor:Jcc.Icc ~avx:true ());
    ("O3-autopar", o ~autopar:4 ());
    ("O3-icc-autopar", o ~vendor:Jcc.Icc ~autopar:4 ());
  ]

(* run the program under every option set and require identical output *)
let check_all_configs name src =
  let reference = run ~options:(o ~opt:0 ()) src in
  List.iter
    (fun (cname, options) ->
       Alcotest.(check string)
         (Printf.sprintf "%s @ %s" name cname)
         reference (run ~options src))
    all_option_sets

let test_arith () =
  check_output "arith" "14\n"
    "int main() { int x = 2 + 3 * 4; print_int(x); return 0; }";
  check_output "div mod" "3\n1\n"
    "int main() { print_int(10 / 3); print_int(10 % 3); return 0; }";
  check_output "neg" "-5\n" "int main() { print_int(-5); return 0; }";
  check_output "float" "3.5\n"
    "int main() { print_float(1.5 + 2.0); return 0; }";
  check_output "cast" "3\n"
    "int main() { print_int((int)3.7); return 0; }";
  check_output "shift" "40\n"
    "int main() { print_int(5 << 3); return 0; }"

let test_control () =
  check_output "if" "1\n"
    "int main() { if (3 > 2) { print_int(1); } else { print_int(0); } return 0; }";
  check_output "logical and" "0\n"
    "int main() { print_int(1 && 0); return 0; }";
  check_output "logical or value" "1\n"
    "int main() { int x = 0 || 3; print_int(x); return 0; }";
  check_output "while break" "55\n"
    "int main() { int i = 0; int n = 0; while (1) { i++; if (i > 10) { break; } n += i; } print_int(n); return 0; }";
  check_output "nested for" "100\n"
    "int main() { int c = 0; for (int i = 0; i < 10; i++) { for (int j = 0; j < 10; j++) { c++; } } print_int(c); return 0; }"

let test_arrays_and_calls () =
  check_output "array sum" "328350\n"
    "int a[100];\n\
     int main() {\n\
     \  int s = 0;\n\
     \  for (int i = 0; i < 100; i++) { a[i] = i * i; }\n\
     \  for (int i = 0; i < 100; i++) { s += a[i]; }\n\
     \  print_int(s); return 0;\n\
     }";
  check_output "function call" "21\n"
    "int triple(int x) { return 3 * x; }\n\
     int main() { print_int(triple(7)); return 0; }";
  check_output "recursion" "120\n"
    "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }\n\
     int main() { print_int(fact(5)); return 0; }";
  check_output "pow extern" "1024\n"
    "extern double pow(double, double);\n\
     int main() { print_float(pow(2.0, 10.0)); return 0; }";
  check_output "alloc" "42\n"
    "int main() { int *p = alloc_int(4); p[2] = 42; print_int(p[2]); return 0; }";
  check_output "globals" "7\n"
    "int g = 3;\n\
     int main() { g = g + 4; print_int(g); return 0; }"

let vector_kernel =
  "double x[64]; double y[64]; double z[64];\n\
   int main() {\n\
   \  for (int i = 0; i < 64; i++) { x[i] = (double)i; y[i] = (double)(2 * i); }\n\
   \  for (int i = 0; i < 64; i++) { z[i] = x[i] * 2.5 + y[i]; }\n\
   \  double s = 0.0;\n\
   \  for (int i = 0; i < 64; i++) { s += z[i]; }\n\
   \  print_float(s);\n\
   \  return 0;\n\
   }"

let pointer_kernel =
  "int main() {\n\
   \  double *a = alloc_double(50);\n\
   \  double *b = alloc_double(50);\n\
   \  for (int i = 0; i < 50; i++) { a[i] = (double)(i + 1); }\n\
   \  for (int i = 0; i < 50; i++) { b[i] = a[i] * 3.0; }\n\
   \  double s = 0.0;\n\
   \  for (int i = 0; i < 50; i++) { s += b[i]; }\n\
   \  print_float(s);\n\
   \  return 0;\n\
   }"

let stencil_kernel =
  "double u[130]; double v[130];\n\
   int main() {\n\
   \  for (int i = 0; i < 130; i++) { u[i] = (double)(i % 17); }\n\
   \  for (int t = 0; t < 4; t++) {\n\
   \    for (int i = 1; i < 129; i++) { v[i] = (u[i-1] + u[i] + u[i+1]) / 3.0; }\n\
   \    for (int i = 1; i < 129; i++) { u[i] = v[i]; }\n\
   \  }\n\
   \  double s = 0.0;\n\
   \  for (int i = 0; i < 130; i++) { s += u[i]; }\n\
   \  print_float(s);\n\
   \  return 0;\n\
   }"

let reduction_kernel =
  "double w[200];\n\
   int main() {\n\
   \  for (int i = 0; i < 200; i++) { w[i] = (double)(i * 3 % 11); }\n\
   \  double s = 0.0;\n\
   \  double p = 1.0;\n\
   \  for (int i = 0; i < 200; i++) { s += w[i]; }\n\
   \  for (int i = 1; i < 10; i++) { p *= w[i] + 1.0; }\n\
   \  print_float(s);\n\
   \  print_float(p);\n\
   \  return 0;\n\
   }"

let test_configs_agree () =
  check_all_configs "vector kernel" vector_kernel;
  check_all_configs "pointer kernel" pointer_kernel;
  check_all_configs "stencil kernel" stencil_kernel;
  check_all_configs "reduction kernel" reduction_kernel

let test_vector_code_emitted () =
  (* O3 must actually emit packed instructions for the vector kernel *)
  let img = Jcc.compile ~options:(o ()) vector_kernel in
  let has_packed =
    List.exists
      (fun (_, i, _) ->
         match i with
         | Janus_vx.Insn.Fbin ((X | Y), _, _, _)
         | Janus_vx.Insn.Fmov ((X | Y), _, _) -> true
         | _ -> false)
      (Janus_vx.Decode.all img.Janus_vx.Image.text)
  in
  Alcotest.(check bool) "packed instructions present" true has_packed;
  (* and O3 -mavx must emit 4-lane operations *)
  let img4 = Jcc.compile ~options:(o ~avx:true ()) vector_kernel in
  let has_y =
    List.exists
      (fun (_, i, _) ->
         match i with
         | Janus_vx.Insn.Fbin (Y, _, _, _) | Janus_vx.Insn.Fmov (Y, _, _) -> true
         | _ -> false)
      (Janus_vx.Decode.all img4.Janus_vx.Image.text)
  in
  Alcotest.(check bool) "avx operations present" true has_y

let test_autopar_emits_par_for () =
  let img = Jcc.compile ~options:(o ~autopar:4 ()) vector_kernel in
  Alcotest.(check bool) "__par_for in externals" true
    (List.mem "__par_for" img.Janus_vx.Image.externals)

let test_autopar_faster () =
  (* the parallel runtime's cost model must show a cycle reduction on a
     big enough kernel *)
  let src =
    "double x[4096]; double y[4096];\n\
     int main() {\n\
     \  for (int i = 0; i < 4096; i++) { x[i] = (double)i; }\n\
     \  for (int i = 0; i < 4096; i++) { y[i] = x[i] * 1.5 + 2.0; }\n\
     \  print_float(y[4095]);\n\
     \  return 0;\n\
     }"
  in
  let serial = Run.run (Jcc.compile ~options:(o ~opt:2 ()) src) in
  let par = Run.run (Jcc.compile ~options:(o ~opt:2 ~autopar:8 ()) src) in
  Alcotest.(check string) "same output" serial.Run.output par.Run.output;
  Alcotest.(check bool) "parallel is faster" true
    (par.Run.cycles < serial.Run.cycles)

let test_o3_faster_than_o0 () =
  let r0 = Run.run (Jcc.compile ~options:(o ~opt:0 ()) vector_kernel) in
  let r3 = Run.run (Jcc.compile ~options:(o ()) vector_kernel) in
  Alcotest.(check bool)
    (Printf.sprintf "O3 (%d) < O0 (%d) cycles" r3.Run.cycles r0.Run.cycles)
    true
    (r3.Run.cycles < r0.Run.cycles)

(* ------------------------------------------------------------------ *)
(* White-box pass tests at the MIR level                               *)
(* ------------------------------------------------------------------ *)

let count_insts pred (u : Mir.unit_) =
  List.fold_left
    (fun acc (f : Mir.fn) ->
       List.fold_left
         (fun acc (b : Mir.block) ->
            acc + List.length (List.filter pred b.Mir.insts))
         acc f.Mir.blocks)
    0 u.Mir.fns

let simple_loop_src =
  "double a[256]; double b[256];\n\
   int main() {\n\
   \  for (int i = 0; i < 256; i++) { a[i] = b[i] * 2.0 + 1.0; }\n\
   \  print_float(a[7]);\n\
   \  return 0;\n\
   }"

let test_mir_vectorise_emits_vector_ops () =
  let u = Jcc.compile_unit ~options:(o ()) simple_loop_src in
  Alcotest.(check bool) "vector loads" true
    (count_insts (function Mir.Ivload _ -> true | _ -> false) u > 0);
  Alcotest.(check bool) "vector stores" true
    (count_insts (function Mir.Ivstore _ -> true | _ -> false) u > 0);
  Alcotest.(check bool) "broadcasts hoisted" true
    (count_insts (function Mir.Ivbcast _ -> true | _ -> false) u > 0);
  (* O2 must not vectorise *)
  let u2 = Jcc.compile_unit ~options:(o ~opt:2 ()) simple_loop_src in
  Alcotest.(check int) "no vectors at O2" 0
    (count_insts (function Mir.Ivload _ -> true | _ -> false) u2)

let test_mir_unroll_duplicates_body () =
  (* an integer loop (not vectorisable) gets unrolled at O3: the store
     appears once per copy plus once in the remainder loop *)
  let src =
    "int a[64];\n\
     int main() {\n\
     \  for (int i = 0; i < 64; i++) { a[i] = i * 3; }\n\
     \  print_int(a[9]);\n\
     \  return 0;\n\
     }"
  in
  let count_stores u =
    count_insts (function Mir.Istore _ -> true | _ -> false) u
  in
  let o1 = count_stores (Jcc.compile_unit ~options:(o ~opt:1 ()) src) in
  let o3 = count_stores (Jcc.compile_unit ~options:(o ()) src) in
  let icc = count_stores (Jcc.compile_unit ~options:(o ~vendor:Jcc.Icc ()) src) in
  Alcotest.(check bool)
    (Printf.sprintf "gcc unroll x2 duplicates stores (%d -> %d)" o1 o3)
    true (o3 > o1);
  Alcotest.(check bool)
    (Printf.sprintf "icc unrolls more (%d > %d)" icc o3)
    true (icc > o3)

let test_mir_autopar_outlines_worker () =
  let u = Jcc.compile_unit ~options:(o ~autopar:8 ()) simple_loop_src in
  Alcotest.(check bool) "worker function created" true
    (List.exists
       (fun (f : Mir.fn) -> String.contains f.Mir.name '$')
       u.Mir.fns);
  Alcotest.(check bool) "par_for emitted" true
    (count_insts (function Mir.Ipar_for _ -> true | _ -> false) u > 0)

let test_mir_constant_folding () =
  let u =
    Jcc.compile_unit ~options:(o ~opt:2 ())
      "int main() { int x = 2 + 3 * 4; print_int(x + 1); return 0; }"
  in
  (* no arithmetic should survive: everything folds to constants *)
  Alcotest.(check int) "no residual int arithmetic" 0
    (count_insts
       (function
         | Mir.Ibin ((Mir.Madd | Mir.Msub | Mir.Mmul), _, _, _) -> true
         | _ -> false)
       u)

let test_mir_dce_removes_dead_code () =
  let with_dead =
    "int main() {\n\
     \  int dead1 = 42 * 13;\n\
     \  int dead2 = dead1 + 7;\n\
     \  print_int(5);\n\
     \  return 0;\n\
     }"
  in
  let u0 = Jcc.compile_unit ~options:(o ~opt:0 ()) with_dead in
  let u2 = Jcc.compile_unit ~options:(o ~opt:2 ()) with_dead in
  let count u = count_insts (fun _ -> true) u in
  Alcotest.(check bool)
    (Printf.sprintf "dead code removed (%d -> %d insts)" (count u0) (count u2))
    true
    (count u2 < count u0)

(* ------------------------------------------------------------------ *)
(* Differential property test: random programs                         *)
(* ------------------------------------------------------------------ *)

let gen_program =
  let open QCheck2.Gen in
  let var k = Printf.sprintf "v%d" k in
  let gen_expr nvars =
    if nvars = 0 then map (fun i -> Printf.sprintf "%d" i) (int_range 0 50)
    else
      let atom =
        oneof
          [
            map (fun i -> Printf.sprintf "%d" i) (int_range (-20) 50);
            map (fun k -> var (k mod nvars)) (int_range 0 (max 1 (nvars - 1)));
          ]
      in
      let* a = atom in
      let* b = atom in
      let* c = atom in
      let* op1 = oneofl [ "+"; "-"; "*" ] in
      let* op2 = oneofl [ "+"; "-"; "*"; "<"; ">"; "==" ] in
      return (Printf.sprintf "(%s %s %s) %s %s" a op1 b op2 c)
  in
  let* n = int_range 2 8 in
  let rec build k acc =
    if k >= n then return acc
    else
      let* e = gen_expr k in
      build (k + 1) (acc ^ Printf.sprintf "  int %s = %s;\n" (var k) e)
  in
  let* decls = build 0 "" in
  let prints =
    String.concat ""
      (List.init n (fun k -> Printf.sprintf "  print_int(%s);\n" (var k)))
  in
  return (Printf.sprintf "int main() {\n%s%s  return 0;\n}" decls prints)

let prop_opt_levels_agree =
  QCheck2.Test.make ~count:60 ~name:"random programs agree across opt levels"
    ~print:(fun s -> s)
    gen_program
    (fun src ->
       let reference = run ~options:(o ~opt:0 ()) src in
       List.for_all
         (fun (_, options) -> String.equal reference (run ~options src))
         all_option_sets)

(* random DOALL kernels with random constants *)
let gen_kernel =
  let open QCheck2.Gen in
  let* n = int_range 3 80 in
  let* k1 = map float_of_int (int_range 1 9) in
  let* k2 = map float_of_int (int_range 1 9) in
  let* use_red = bool in
  let red_decl = if use_red then "  double s = 0.0;\n" else "" in
  let red_stmt = if use_red then "    s += c[i];\n" else "" in
  let red_print = if use_red then "  print_float(s);\n" else "" in
  return
    (Printf.sprintf
       "double a[%d]; double b[%d]; double c[%d];\n\
        int main() {\n\
        \  for (int i = 0; i < %d; i++) { a[i] = (double)(i + 1); b[i] = (double)(i * 2); }\n\
        %s\
        \  for (int i = 0; i < %d; i++) {\n\
        \    c[i] = a[i] * %f + b[i] * %f;\n\
        %s  }\n\
        %s\
        \  print_float(c[%d]);\n\
        \  return 0;\n\
        }"
       n n n n red_decl n k1 k2 red_stmt red_print (n - 1))

let prop_kernels_agree =
  QCheck2.Test.make ~count:40 ~name:"random kernels agree across configs"
    ~print:(fun s -> s)
    gen_kernel
    (fun src ->
       let reference = run ~options:(o ~opt:0 ()) src in
       List.for_all
         (fun (_, options) -> String.equal reference (run ~options src))
         all_option_sets)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_opt_levels_agree; prop_kernels_agree ]

(* ------------------------------------------------------------------ *)
(* Front-end error handling and language edge cases                    *)
(* ------------------------------------------------------------------ *)

let expect_error name src =
  match Jcc.compile src with
  | _ -> Alcotest.failf "%s: expected a compile error" name
  | exception Jcc.Error _ -> ()

let test_front_end_errors () =
  expect_error "unbound variable" "int main() { return x; }";
  expect_error "unknown function" "int main() { return f(1); }";
  expect_error "arity" "int f(int a) { return a; }\nint main() { return f(); }";
  expect_error "implicit narrowing" "int main() { int x = 1.5; return x; }";
  expect_error "assign to array" "int a[4];\nint main() { a = 3; return 0; }";
  expect_error "break outside loop" "int main() { break; return 0; }";
  expect_error "missing main" "int f() { return 1; }";
  expect_error "parse error" "int main() { return 1 +; }";
  expect_error "unterminated comment" "int main() { /* oops return 0; }"

let test_stack_args () =
  (* more than six integer arguments: the 7th+ travel on the stack *)
  check_output "eight args" "36\n"
    "int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {\n\
     \  return a + b + c + d + e + f + g + h;\n\
     }\n\
     int main() { print_int(sum8(1, 2, 3, 4, 5, 6, 7, 8)); return 0; }";
  check_all_configs "stack args"
    "int sum9(int a, int b, int c, int d, int e, int f, int g, int h, int i) {\n\
     \  return a + b * 2 + c + d + e + f + g + h * 3 + i;\n\
     }\n\
     int main() {\n\
     \  int t = 0;\n\
     \  for (int k = 0; k < 20; k++) { t += sum9(k, 1, 2, 3, 4, 5, 6, 7, k); }\n\
     \  print_int(t);\n\
     \  return 0;\n\
     }"

let test_deep_recursion () =
  check_output "fib" "6765\n"
    "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }\n\
     int main() { print_int(fib(20)); return 0; }"

let test_guest_div_by_zero_traps () =
  let img = Jcc.compile "int main() { int z = read_int(); print_int(7 / z); return 0; }" in
  Alcotest.(check bool) "traps" true
    (try
       ignore (Run.run ~input:[ 0L ] img);
       false
     with Janus_vm.Semantics.Div_by_zero _ -> true);
  (* and works for a non-zero divisor *)
  let r = Run.run ~input:[ 2L ] img in
  Alcotest.(check string) "7/2" "3\n" r.Run.output

let test_mixed_fp_int_args () =
  check_output "mixed args" "17.5\n"
    "double mix(int a, double x, int b, double y) {\n\
     \  return (double)(a + b) + x * y;\n\
     }\n\
     int main() { print_float(mix(3, 2.5, 4, 4.2)); return 0; }"

let test_pointer_roundtrip_casts () =
  check_output "ptr via int" "11\n"
    "int main() {\n\
     \  int *p = alloc_int(4);\n\
     \  p[1] = 11;\n\
     \  int addr = (int)p;\n\
     \  int *q = (int*)addr;\n\
     \  print_int(q[1]);\n\
     \  return 0;\n\
     }"

(* regression: the implicit fall-off-the-end return of a float function
   must be a float zero — at O0 the unreachable trailing block is not
   pruned and used to emit an int literal into XMM0 *)
let test_float_fn_implicit_return () =
  check_all_configs "float helper with single explicit return"
    "double a[16];\n\
     double bump(double x) { return x * 2.0 + 1.0; }\n\
     int main() {\n\
     \  for (int i = 0; i < 16; i++) { a[i] = (double)(i % 7); }\n\
     \  a[1] = bump(a[1]);\n\
     \  print_float(a[0] + a[15]);\n\
     \  return 0;\n\
     }";
  (* a float function that genuinely falls off the end returns 0.0 *)
  check_all_configs "float fall-off returns zero"
    "double maybe(int c) { if (c == 1) { return 5.0; } }\n\
     int main() {\n\
     \  print_float(maybe(1) + maybe(0));\n\
     \  return 0;\n\
     }"

let test_empty_loop_bodies () =
  check_all_configs "zero-trip loops"
    "double a[8];\n\
     int main() {\n\
     \  int n = 0;\n\
     \  for (int i = 0; i < n; i++) { a[i] = 1.0; }\n\
     \  for (int i = 10; i < 5; i++) { a[0] = 2.0; }\n\
     \  print_float(a[0]);\n\
     \  return 0;\n\
     }"

let tests =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "front-end errors" `Quick test_front_end_errors;
    Alcotest.test_case "stack args" `Quick test_stack_args;
    Alcotest.test_case "deep recursion" `Quick test_deep_recursion;
    Alcotest.test_case "guest div by zero traps" `Quick
      test_guest_div_by_zero_traps;
    Alcotest.test_case "mixed fp/int args" `Quick test_mixed_fp_int_args;
    Alcotest.test_case "pointer casts" `Quick test_pointer_roundtrip_casts;
    Alcotest.test_case "empty loop bodies" `Quick test_empty_loop_bodies;
    Alcotest.test_case "float implicit return" `Quick
      test_float_fn_implicit_return;
    Alcotest.test_case "mir: vectorise" `Quick test_mir_vectorise_emits_vector_ops;
    Alcotest.test_case "mir: unroll" `Quick test_mir_unroll_duplicates_body;
    Alcotest.test_case "mir: autopar outlining" `Quick
      test_mir_autopar_outlines_worker;
    Alcotest.test_case "mir: constant folding" `Quick test_mir_constant_folding;
    Alcotest.test_case "mir: dce" `Quick test_mir_dce_removes_dead_code;
    Alcotest.test_case "control flow" `Quick test_control;
    Alcotest.test_case "arrays and calls" `Quick test_arrays_and_calls;
    Alcotest.test_case "configs agree on kernels" `Quick test_configs_agree;
    Alcotest.test_case "vector code emitted" `Quick test_vector_code_emitted;
    Alcotest.test_case "autopar emits par_for" `Quick test_autopar_emits_par_for;
    Alcotest.test_case "autopar faster" `Quick test_autopar_faster;
    Alcotest.test_case "O3 faster than O0" `Quick test_o3_faster_than_o0;
  ]
  @ props
