#!/usr/bin/env bash
# Assertions over the CLI smoke-test artefacts (run by dune from the
# directory containing the .out files).
set -eu

fail() { echo "tools smoke test: $1" >&2; exit 1; }

native_sum=$(head -n 1 run_native.out)
sched_sum=$(head -n 1 run_scheduled.out)
[ "$native_sum" = "$sched_sum" ] ||
  fail "scheduled output '$sched_sum' differs from native '$native_sum'"

grep -q -- "--- native:" run_native.out || fail "native banner missing"
grep -q "parallelised loops" run_scheduled.out ||
  fail "scheduled run parallelised nothing"

grep -q "JX executable" objdump.out || fail "objdump header missing"
grep -q "loop .* header (static-doall)" objdump.out ||
  fail "objdump did not annotate the DOALL loop"
grep -q "<func_" objdump.out || fail "objdump recovered no functions"

grep -q "JRS rewrite schedule (parallelisation channel)" jrsdump.out ||
  fail "jrs_dump header missing"
grep -q "LOOP_INIT" jrsdump.out || fail "schedule has no LOOP_INIT"
grep -q "rules by kind:" jrsdump.out || fail "census missing"

echo "tools smoke test: ok"
