(* Suite-level tests: every synthetic SPEC-like benchmark compiles,
   runs, analyses, and (for the nine parallelisable ones) produces
   bit-identical output under the full Janus pipeline. *)

open Janus_core
module Suite = Janus_suite.Suite

let native b ?options () =
  let img = Suite.compile ?options b in
  (img, Janus.run_native ~input:(Suite.ref_input b) img)

let test_all_compile_and_run () =
  List.iter
    (fun (b : Suite.benchmark) ->
       let _, r = native b () in
       Alcotest.(check int) (b.Suite.name ^ " exit") 0 r.Janus.exit_code;
       Alcotest.(check bool) (b.Suite.name ^ " output") true
         (String.length r.Janus.output > 0))
    Suite.all

let test_deterministic () =
  List.iter
    (fun (b : Suite.benchmark) ->
       let _, r1 = native b () in
       let _, r2 = native b () in
       Alcotest.(check string) b.Suite.name r1.Janus.output r2.Janus.output;
       Alcotest.(check int) (b.Suite.name ^ " cycles") r1.Janus.cycles
         r2.Janus.cycles)
    [ Option.get (Suite.find "470.lbm"); Option.get (Suite.find "429.mcf") ]

let test_all_analysable () =
  List.iter
    (fun (b : Suite.benchmark) ->
       let img = Suite.compile b in
       let t = Janus_analysis.Analysis.analyse_image img in
       Alcotest.(check bool) (b.Suite.name ^ " has loops") true
         (List.length t.Janus_analysis.Analysis.reports > 0))
    Suite.all

let janus_matches_native (b : Suite.benchmark) ?options ~cfg () =
  let img, nat = native b ?options () in
  let par =
    Janus.parallelise ~cfg ~train_input:(Suite.train_input b)
      ~input:(Suite.ref_input b) img
  in
  Alcotest.(check string) (b.Suite.name ^ " output") nat.Janus.output
    par.Janus.output;
  (nat, par)

let test_nine_correct_full_janus () =
  List.iter
    (fun b -> ignore (janus_matches_native b ~cfg:(Janus.config ()) ()))
    (List.filter (fun b -> b.Suite.parallelisable) Suite.all)

let test_nine_correct_all_configs () =
  List.iter
    (fun b ->
       List.iter
         (fun cfg -> ignore (janus_matches_native b ~cfg ()))
         [
           Janus.config ~use_profile:false ~use_checks:false ();
           Janus.config ~use_checks:false ();
           Janus.config ~threads:4 ();
           Janus.config ~threads:2 ();
         ])
    (List.filter (fun b -> b.Suite.parallelisable) Suite.all)

let test_sixteen_correct_under_janus () =
  (* the non-parallelisable benchmarks must also run unharmed under the
     full pipeline (loops rejected or safely checked) *)
  List.iter
    (fun b -> ignore (janus_matches_native b ~cfg:(Janus.config ()) ()))
    (List.filter (fun b -> not b.Suite.parallelisable) Suite.all)

let test_nine_correct_on_icc_binaries () =
  let options = { Janus_jcc.Jcc.default_options with vendor = Janus_jcc.Jcc.Icc } in
  List.iter
    (fun b ->
       ignore (janus_matches_native b ~options ~cfg:(Janus.config ()) ()))
    (List.filter (fun b -> b.Suite.parallelisable) Suite.all)

let test_nine_correct_on_avx_binaries () =
  let options = { Janus_jcc.Jcc.default_options with avx = true } in
  List.iter
    (fun b ->
       ignore (janus_matches_native b ~options ~cfg:(Janus.config ()) ()))
    (List.filter (fun b -> b.Suite.parallelisable) Suite.all)

let test_nine_correct_on_o2_binaries () =
  let options = { Janus_jcc.Jcc.default_options with opt = 2 } in
  List.iter
    (fun b ->
       ignore (janus_matches_native b ~options ~cfg:(Janus.config ()) ()))
    (List.filter (fun b -> b.Suite.parallelisable) Suite.all)

let test_autopar_binaries_run () =
  (* compiler-parallelised builds (Fig. 11's gcc/icc bars) must produce
     the same output as the serial build *)
  List.iter
    (fun b ->
       let _, serial = native b () in
       List.iter
         (fun vendor ->
            let options =
              { Janus_jcc.Jcc.default_options with vendor; autopar = 8 }
            in
            let img = Suite.compile ~options b in
            let r = Janus.run_native ~input:(Suite.ref_input b) img in
            Alcotest.(check string)
              (Printf.sprintf "%s autopar" b.Suite.name)
              serial.Janus.output r.Janus.output)
         [ Janus_jcc.Jcc.Gcc; Janus_jcc.Jcc.Icc ])
    (List.filter (fun b -> b.Suite.parallelisable) Suite.all)

let test_fig7_shape () =
  (* the headline claims of Fig. 7, as ordering properties *)
  let run b cfg =
    let b = Option.get (Suite.find b) in
    let img = Suite.compile b in
    let nat = Janus.run_native ~input:(Suite.ref_input b) img in
    let r =
      Janus.parallelise ~cfg ~train_input:(Suite.train_input b)
        ~input:(Suite.ref_input b) img
    in
    Janus.speedup ~native:nat ~run:r
  in
  let janus = Janus.config () in
  let profile_only = Janus.config ~use_checks:false () in
  (* libquantum and lbm: large speedups *)
  Alcotest.(check bool) "libquantum > 4x" true (run "462.libquantum" janus > 4.0);
  Alcotest.(check bool) "lbm > 4x" true (run "470.lbm" janus > 4.0);
  (* bwaves needs checks+speculation: profile-only stays near 1 *)
  let bw_prof = run "410.bwaves" profile_only in
  let bw_janus = run "410.bwaves" janus in
  Alcotest.(check bool)
    (Printf.sprintf "bwaves checks unlock speedup (%.2f -> %.2f)" bw_prof
       bw_janus)
    true
    (bw_prof < 1.2 && bw_janus > 1.8);
  (* GemsFDTD similarly needs checks *)
  let gems_prof = run "459.GemsFDTD" profile_only in
  let gems_janus = run "459.GemsFDTD" janus in
  Alcotest.(check bool) "GemsFDTD checks help" true
    (gems_janus > gems_prof +. 0.3);
  (* h264ref stays below native *)
  Alcotest.(check bool) "h264ref slower than native" true
    (run "464.h264ref" janus < 1.0)

let tests =
  [
    Alcotest.test_case "all compile and run" `Quick test_all_compile_and_run;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "all analysable" `Quick test_all_analysable;
    Alcotest.test_case "nine correct under full janus" `Quick
      test_nine_correct_full_janus;
    Alcotest.test_case "nine correct all configs" `Slow
      test_nine_correct_all_configs;
    Alcotest.test_case "sixteen correct under janus" `Slow
      test_sixteen_correct_under_janus;
    Alcotest.test_case "nine correct on icc binaries" `Slow
      test_nine_correct_on_icc_binaries;
    Alcotest.test_case "nine correct on avx binaries" `Slow
      test_nine_correct_on_avx_binaries;
    Alcotest.test_case "nine correct on O2 binaries" `Slow
      test_nine_correct_on_o2_binaries;
    Alcotest.test_case "autopar binaries run" `Slow test_autopar_binaries_run;
    Alcotest.test_case "fig7 shape" `Slow test_fig7_shape;
  ]
