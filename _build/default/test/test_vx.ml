(* Unit and property tests for the VX64 ISA library. *)

open Janus_vx

let insn = Alcotest.testable Insn.pp ( = )

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_gp =
  QCheck2.Gen.map Reg.gp_of_index (QCheck2.Gen.int_range 0 (Reg.gp_count - 1))

let gen_fp =
  QCheck2.Gen.map Reg.fp_of_index (QCheck2.Gen.int_range 0 (Reg.fp_count - 1))

let gen_cond =
  QCheck2.Gen.map Cond.of_int (QCheck2.Gen.int_range 0 11)

let gen_mem =
  let open QCheck2.Gen in
  let* base = opt gen_gp in
  let* index = opt gen_gp in
  let* scale = oneofl [ 1; 2; 4; 8 ] in
  let* disp = int_range (-100000) 100000 in
  return (Operand.mem ?base ?index ~scale ~disp ())

let gen_imm =
  let open QCheck2.Gen in
  oneof
    [
      map Int64.of_int (int_range (-128) 127);
      map Int64.of_int (int_range (-1000000) 1000000);
      ui64;
    ]

let gen_operand =
  let open QCheck2.Gen in
  oneof
    [
      map (fun r -> Operand.Reg r) gen_gp;
      map (fun i -> Operand.Imm i) gen_imm;
      map (fun m -> Operand.Mem m) gen_mem;
    ]

let gen_fop =
  let open QCheck2.Gen in
  oneof
    [
      map (fun r -> Operand.Freg r) gen_fp;
      map (fun m -> Operand.Fmem m) gen_mem;
    ]

let gen_alu =
  QCheck2.Gen.oneofl
    Insn.[ Add; Sub; Imul; And; Or; Xor; Shl; Shr; Sar ]

let gen_fbin =
  QCheck2.Gen.oneofl Insn.[ Fadd; Fsub; Fmul; Fdiv; Fmin; Fmax ]

let gen_width = QCheck2.Gen.oneofl Insn.[ Scalar; X; Y ]

let gen_addr = QCheck2.Gen.int_range 0 0x7ffffff

let gen_insn =
  let open QCheck2.Gen in
  oneof
    [
      return Insn.Nop;
      return Insn.Hlt;
      return Insn.Ret;
      map2 (fun d s -> Insn.Mov (d, s)) gen_operand gen_operand;
      map2 (fun r m -> Insn.Lea (r, m)) gen_gp gen_mem;
      (let* op = gen_alu in
       let* d = gen_operand in
       let* s = gen_operand in
       return (Insn.Alu (op, d, s)));
      map (fun o -> Insn.Neg o) gen_operand;
      map (fun o -> Insn.Not o) gen_operand;
      map (fun o -> Insn.Idiv o) gen_operand;
      map2 (fun a b -> Insn.Cmp (a, b)) gen_operand gen_operand;
      map2 (fun a b -> Insn.Test (a, b)) gen_operand gen_operand;
      map (fun a -> Insn.Jmp (Insn.Direct a)) gen_addr;
      map (fun o -> Insn.Jmp (Insn.Indirect o)) gen_operand;
      map2 (fun c a -> Insn.Jcc (c, a)) gen_cond gen_addr;
      map (fun a -> Insn.Call (Insn.Direct a)) gen_addr;
      map (fun o -> Insn.Call (Insn.Indirect o)) gen_operand;
      map (fun o -> Insn.Push o) gen_operand;
      map (fun o -> Insn.Pop o) gen_operand;
      (let* c = gen_cond in
       let* r = gen_gp in
       let* s = gen_operand in
       return (Insn.Cmov (c, r, s)));
      (let* w = gen_width in
       let* d = gen_fop in
       let* s = gen_fop in
       return (Insn.Fmov (w, d, s)));
      (let* w = gen_width in
       let* op = gen_fbin in
       let* d = gen_fp in
       let* s = gen_fop in
       return (Insn.Fbin (w, op, d, s)));
      (let* w = gen_width in
       let* d = gen_fp in
       let* s = gen_fop in
       return (Insn.Fsqrt (w, d, s)));
      map2 (fun d s -> Insn.Fcmp (d, s)) gen_fp gen_fop;
      (let* w = gen_width in
       let* d = gen_fp in
       let* s = gen_fop in
       return (Insn.Fbcast (w, d, s)));
      map2 (fun d s -> Insn.Cvtsi2sd (d, s)) gen_fp gen_operand;
      map2 (fun d s -> Insn.Cvtsd2si (d, s)) gen_gp gen_fop;
      map (fun n -> Insn.Syscall n) (int_range 0 255);
      map (fun m -> Insn.Prefetch m) gen_mem;
    ]

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let test_reg_roundtrip () =
  for i = 0 to Reg.gp_count - 1 do
    Alcotest.(check int) "gp index" i (Reg.gp_index (Reg.gp_of_index i))
  done;
  for i = 0 to Reg.fp_count - 1 do
    Alcotest.(check int) "fp index" i (Reg.fp_index (Reg.fp_of_index i))
  done

let test_cond_negate_involutive () =
  List.iter
    (fun c ->
       Alcotest.(check bool) "negate^2 = id" true
         (Cond.negate (Cond.negate c) = c))
    Cond.all

let test_cond_eval () =
  (* 3 < 5 signed: zf=false lt=true ult=true sf=true (3-5 negative) *)
  let e c = Cond.eval ~zf:false ~lt:true ~ult:true ~sf:true c in
  Alcotest.(check bool) "lt" true (e Cond.Lt);
  Alcotest.(check bool) "le" true (e Cond.Le);
  Alcotest.(check bool) "gt" false (e Cond.Gt);
  Alcotest.(check bool) "ge" false (e Cond.Ge);
  Alcotest.(check bool) "ne" true (e Cond.Ne);
  Alcotest.(check bool) "eq" false (e Cond.Eq)

let test_encode_simple () =
  let open Insn in
  let i = Mov (Operand.Reg Reg.RAX, Operand.Imm 42L) in
  let buf = Encode.encode i in
  let i', len = Decode.one buf 0 in
  Alcotest.check insn "roundtrip" i i';
  Alcotest.(check int) "length" (Bytes.length buf) len

let test_encode_sizes_vary () =
  let open Insn in
  let small = Mov (Operand.Reg Reg.RAX, Operand.Imm 1L) in
  let large = Mov (Operand.Reg Reg.RAX, Operand.Imm 0x123456789AL) in
  Alcotest.(check bool) "imm8 shorter than imm64" true
    (Encode.size small < Encode.size large)

let test_encode_list () =
  let open Insn in
  let prog =
    [
      Mov (Operand.Reg Reg.RCX, Operand.Imm 10L);
      Alu (Add, Operand.Reg Reg.RAX, Operand.Reg Reg.RCX);
      Ret;
    ]
  in
  let buf = Encode.encode_list prog in
  let decoded = List.map (fun (_, i, _) -> i) (Decode.all buf) in
  Alcotest.(check (list insn)) "list roundtrip" prog decoded

let test_builder_labels () =
  let b = Builder.create () in
  Builder.label b "entry";
  Builder.ins b (Insn.Mov (Operand.Reg Reg.RAX, Operand.Imm 0L));
  Builder.jcc b Cond.Eq "done";
  Builder.jmp b "entry";
  Builder.label b "done";
  Builder.ins b Insn.Ret;
  let insns = Builder.finish b in
  (* the jcc target must be the byte address of Ret *)
  match insns with
  | [ _; Insn.Jcc (Cond.Eq, t); Insn.Jmp (Insn.Direct e); Insn.Ret ] ->
    Alcotest.(check int) "jmp to entry" Layout.text_base e;
    let ret_off =
      List.fold_left (fun acc i -> acc + Encode.size i) 0
        [ List.nth insns 0; List.nth insns 1; List.nth insns 2 ]
    in
    Alcotest.(check int) "jcc to done" (Layout.text_base + ret_off) t
  | _ -> Alcotest.fail "unexpected instruction shape"

let test_builder_undefined_label () =
  let b = Builder.create () in
  Builder.jmp b "nowhere";
  Alcotest.check_raises "undefined label"
    (Invalid_argument "Builder.finish: undefined label \"nowhere\"")
    (fun () -> ignore (Builder.finish b))

let test_image_roundtrip () =
  let b = Builder.create () in
  Builder.label b "main";
  Builder.ins b (Insn.Mov (Operand.Reg Reg.RAX, Operand.Imm 7L));
  Builder.ins b Insn.Hlt;
  let data = Builder.Data.create () in
  Builder.Data.label data "tbl";
  Builder.Data.f64 data 3.14;
  Builder.Data.i64 data 99L;
  let img =
    Builder.to_image b ~entry:"main"
      ~data:(Builder.Data.contents data)
      ~bss_size:128
      ~externals:[ "pow"; "sqrt" ]
  in
  let img' = Image.of_bytes (Image.to_bytes img) in
  Alcotest.(check int) "entry" img.Image.entry img'.Image.entry;
  Alcotest.(check int) "bss" 128 img'.Image.bss_size;
  Alcotest.(check (list string)) "externals" [ "pow"; "sqrt" ]
    img'.Image.externals;
  Alcotest.(check bool) "text" true (Bytes.equal img.Image.text img'.Image.text);
  Alcotest.(check bool) "data" true (Bytes.equal img.Image.data img'.Image.data);
  Alcotest.(check int) "size accounting" (Image.size img)
    (Bytes.length (Image.to_bytes img))

let test_plt_lookup () =
  let b = Builder.create () in
  Builder.label b "main";
  Builder.ins b Insn.Hlt;
  let img = Builder.to_image b ~entry:"main" ~externals:[ "pow"; "exp" ] in
  Alcotest.(check (option int)) "pow slot"
    (Some (Layout.plt_slot_addr 0))
    (Image.plt_addr img "pow");
  Alcotest.(check (option string)) "addr back to name" (Some "exp")
    (Image.external_of_addr img (Layout.plt_slot_addr 1));
  Alcotest.(check (option string)) "non-plt addr" None
    (Image.external_of_addr img Layout.text_base)

let test_successors () =
  let open Insn in
  Alcotest.(check (list int)) "jcc" [ 100; 50 ]
    (successors ~fallthrough:50 (Jcc (Cond.Eq, 100)));
  Alcotest.(check (list int)) "ret" [] (successors ~fallthrough:50 Ret);
  Alcotest.(check (list int)) "call falls through" [ 50 ]
    (successors ~fallthrough:50 (Call (Direct 999)));
  Alcotest.(check (list int)) "exit syscall" []
    (successors ~fallthrough:50 (Syscall sys_exit))

let test_uses_defs () =
  let open Insn in
  let i =
    Alu
      ( Add,
        Operand.Mem (Operand.mem_bi ~disp:8 ~scale:4 Reg.R8 Reg.RAX),
        Operand.Reg Reg.RSI )
  in
  Alcotest.(check (list string)) "uses"
    [ "r8"; "rax"; "rsi" ]
    (List.map Reg.gp_name (gp_uses i));
  Alcotest.(check (list string)) "defs (mem dst writes no reg)" []
    (List.map Reg.gp_name (gp_defs i));
  let w = mems_written i in
  Alcotest.(check int) "one store" 1 (List.length w)

let test_cost_sanity () =
  let open Insn in
  let load = Mov (Operand.Reg Reg.RAX, Operand.Mem (Operand.mem_base Reg.R8)) in
  let reg = Mov (Operand.Reg Reg.RAX, Operand.Reg Reg.RBX) in
  Alcotest.(check bool) "load costlier than reg-reg" true
    (Cost.of_insn load > Cost.of_insn reg);
  Alcotest.(check bool) "div costlier than add" true
    (Cost.of_insn (Idiv (Operand.Reg Reg.RBX))
     > Cost.of_insn (Alu (Add, Operand.Reg Reg.RAX, Operand.Reg Reg.RBX)));
  (* a Y-width packed op is cheaper than 4 scalar ops *)
  let scalar = Fbin (Scalar, Fadd, Reg.XMM 0, Operand.Freg (Reg.XMM 1)) in
  let packed = Fbin (Y, Fadd, Reg.XMM 0, Operand.Freg (Reg.XMM 1)) in
  Alcotest.(check bool) "vector win" true
    (Cost.of_insn packed < 4 * Cost.of_insn scalar)

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

let prop_encode_roundtrip =
  QCheck2.Test.make ~count:1000 ~name:"encode/decode roundtrip"
    ~print:Insn.to_string gen_insn (fun i ->
      let buf = Encode.encode i in
      let i', len = Decode.one buf 0 in
      i = i' && len = Bytes.length buf)

let prop_encode_list_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"encode/decode list roundtrip"
    QCheck2.Gen.(list_size (int_range 1 40) gen_insn)
    (fun is ->
      let buf = Encode.encode_list is in
      let decoded = List.map (fun (_, i, _) -> i) (Decode.all buf) in
      decoded = is)

let prop_size_positive =
  QCheck2.Test.make ~count:500 ~name:"every instruction encodes to >= 1 byte"
    gen_insn (fun i -> Encode.size i >= 1)

let prop_cond_eval_negate =
  QCheck2.Test.make ~count:200 ~name:"cond eval of negation is complement"
    QCheck2.Gen.(
      tup5 gen_cond bool bool bool bool)
    (fun (c, zf, lt, ult, sf) ->
      (* keep flags consistent: zf implies not lt/ult *)
      let lt = lt && not zf and ult = ult && not zf in
      Cond.eval ~zf ~lt ~ult ~sf c
      = not (Cond.eval ~zf ~lt ~ult ~sf (Cond.negate c)))

let prop_cost_positive =
  QCheck2.Test.make ~count:500 ~name:"every instruction costs >= 1 cycle"
    gen_insn (fun i -> Cost.of_insn i >= 1)

let prop_disasm_total =
  QCheck2.Test.make ~count:500 ~name:"pretty-printer is total and non-empty"
    gen_insn (fun i -> String.length (Insn.to_string i) > 0)

let prop_vector_width_cost_monotone =
  QCheck2.Test.make ~count:200
    ~name:"packed FP ops cost no less than scalar, at most +2"
    QCheck2.Gen.(tup3 gen_fbin gen_fp gen_fop)
    (fun (op, d, s) ->
      let c w = Cost.of_insn (Insn.Fbin (w, op, d, s)) in
      let sc = c Insn.Scalar in
      c Insn.X >= sc && c Insn.Y >= c Insn.X && c Insn.Y <= sc + 2)

let prop_memory_operand_costs_more =
  QCheck2.Test.make ~count:200 ~name:"a memory source adds read cost"
    QCheck2.Gen.(tup2 gen_gp gen_mem)
    (fun (r, m) ->
      Cost.of_insn (Insn.Mov (Operand.Reg r, Operand.Mem m))
      = Cost.of_insn (Insn.Mov (Operand.Reg r, Operand.Imm 1L))
        + Cost.mem_read)

(* malformed input must raise the decoder's typed error, never return a
   wrong instruction or crash differently *)
let test_decode_rejects_garbage () =
  (* unknown opcode *)
  Alcotest.(check bool) "bad opcode" true
    (try
       ignore (Decode.one (Bytes.of_string "\xff\x00\x00\x00") 0);
       false
     with Decode.Bad_encoding _ -> true);
  (* truncated operand *)
  let mov = Encode.encode (Insn.Mov (Operand.Reg Reg.RAX, Operand.Imm 1L)) in
  let truncated = Bytes.sub mov 0 (Bytes.length mov - 1) in
  Alcotest.(check bool) "truncated" true
    (try
       ignore (Decode.one truncated 0);
       false
     with Decode.Bad_encoding _ -> true);
  (* bad operand tag *)
  Alcotest.(check bool) "bad operand tag" true
    (try
       ignore (Decode.one (Bytes.of_string "\x02\x09") 0);
       false
     with Decode.Bad_encoding _ -> true)

let test_image_rejects_bad_magic () =
  Alcotest.(check bool) "bad magic" true
    (try
       ignore (Image.of_bytes (Bytes.of_string "ELF!\x00\x00\x00\x00"));
       false
     with _ -> true)

let prop_decode_never_wrong =
  (* decoding any prefix-corrupted encoding either raises Bad_encoding
     or yields a decodable instruction — never an inconsistent length *)
  QCheck2.Test.make ~count:300 ~name:"decode is length-consistent on corruption"
    QCheck2.Gen.(pair gen_insn (int_range 0 255))
    (fun (i, byte) ->
      let buf = Encode.encode i in
      Bytes.set buf 0 (Char.chr byte);
      match Decode.one buf 0 with
      | _, len -> len >= 1 && len <= Bytes.length buf
      | exception Decode.Bad_encoding _ -> true)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_encode_roundtrip;
      prop_encode_list_roundtrip;
      prop_size_positive;
      prop_cond_eval_negate;
      prop_cost_positive;
      prop_disasm_total;
      prop_vector_width_cost_monotone;
      prop_memory_operand_costs_more;
      prop_decode_never_wrong;
    ]

let tests =
  [
    Alcotest.test_case "reg index roundtrip" `Quick test_reg_roundtrip;
    Alcotest.test_case "cond negate involutive" `Quick
      test_cond_negate_involutive;
    Alcotest.test_case "cond eval" `Quick test_cond_eval;
    Alcotest.test_case "encode simple" `Quick test_encode_simple;
    Alcotest.test_case "encode sizes vary" `Quick test_encode_sizes_vary;
    Alcotest.test_case "encode list" `Quick test_encode_list;
    Alcotest.test_case "builder labels" `Quick test_builder_labels;
    Alcotest.test_case "builder undefined label" `Quick
      test_builder_undefined_label;
    Alcotest.test_case "image roundtrip" `Quick test_image_roundtrip;
    Alcotest.test_case "decode rejects garbage" `Quick
      test_decode_rejects_garbage;
    Alcotest.test_case "image rejects bad magic" `Quick
      test_image_rejects_bad_magic;
    Alcotest.test_case "plt lookup" `Quick test_plt_lookup;
    Alcotest.test_case "successors" `Quick test_successors;
    Alcotest.test_case "uses/defs" `Quick test_uses_defs;
    Alcotest.test_case "cost sanity" `Quick test_cost_sanity;
  ]
  @ props
