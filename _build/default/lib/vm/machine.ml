(** A VX64 machine context: register file, flags, instruction pointer
    and cycle counters. One context per hardware thread; all contexts
    of a run share one {!Memory.t} and output buffer. *)

open Janus_vx

type flags = {
  mutable zf : bool;
  mutable lt : bool;   (* signed less-than of the last compare *)
  mutable ult : bool;  (* unsigned less-than *)
  mutable sf : bool;   (* sign of the last result *)
}

(** A word-based software transaction (paper §II-E2). While installed,
    rewritten memory accesses buffer stores and record read versions;
    validation is value-based, commit is in thread order. *)
type txn = {
  treads : (int, int64) Hashtbl.t;   (* address -> value observed *)
  twrites : (int, int64) Hashtbl.t;  (* address -> buffered value *)
  mutable taborted : bool;
  checkpoint_regs : int64 array;
  checkpoint_fregs : float array array;
  checkpoint_rip : int;
}

type t = {
  regs : int64 array;          (* indexed by Reg.gp_index *)
  fregs : float array array;   (* fp_count arrays of 4 lanes *)
  flags : flags;
  mutable rip : int;
  mem : Memory.t;
  mutable cycles : int;
  mutable icount : int;
  mutable halted : bool;
  mutable exit_code : int;
  out : Buffer.t;
  input : int64 Queue.t;       (* values returned by sys_read_int *)
  mutable txn : txn option;    (* set while executing speculative accesses *)
  mutable observe : (rw -> addr:int -> bytes:int -> unit) option;
  mutable brk : int;           (* heap bump pointer *)
  mutable model_cache : bool;  (* charge Cost.cache_miss on cold lines *)
  warm : (int, unit) Hashtbl.t;   (* warm cache lines (line number) *)
  warm_fifo : int Queue.t;        (* insertion order, for eviction *)
}

and rw = Read | Write

let create ?(out = Buffer.create 256) mem =
  {
    regs = Array.make Reg.gp_count 0L;
    fregs = Array.init Reg.fp_count (fun _ -> Array.make 4 0.0);
    flags = { zf = false; lt = false; ult = false; sf = false };
    rip = 0;
    mem;
    cycles = 0;
    icount = 0;
    halted = false;
    exit_code = 0;
    out;
    input = Queue.create ();
    txn = None;
    observe = None;
    brk = Layout.heap_base;
    model_cache = false;
    warm = Hashtbl.create 256;
    warm_fifo = Queue.create ();
  }

(** A thread context sharing memory, output and heap-allocation state
    with [parent] but with its own registers, flags and counters. *)
let fork parent =
  {
    regs = Array.copy parent.regs;
    fregs = Array.map Array.copy parent.fregs;
    flags =
      {
        zf = parent.flags.zf;
        lt = parent.flags.lt;
        ult = parent.flags.ult;
        sf = parent.flags.sf;
      };
    rip = parent.rip;
    mem = parent.mem;
    cycles = 0;
    icount = 0;
    halted = false;
    exit_code = 0;
    out = parent.out;
    input = parent.input;
    txn = None;
    observe = None;
    brk = parent.brk;
    (* each virtual core has a private cache: fresh (cold) warm set *)
    model_cache = parent.model_cache;
    warm = Hashtbl.create 256;
    warm_fifo = Queue.create ();
  }

let get ctx r = ctx.regs.(Reg.gp_index r)
let set ctx r v = ctx.regs.(Reg.gp_index r) <- v
let getf ctx r lane = ctx.fregs.(Reg.fp_index r).(lane)
let setf ctx r lane v = ctx.fregs.(Reg.fp_index r).(lane) <- v

let start_txn ctx =
  let t =
    {
      treads = Hashtbl.create 32;
      twrites = Hashtbl.create 32;
      taborted = false;
      checkpoint_regs = Array.copy ctx.regs;
      checkpoint_fregs = Array.map Array.copy ctx.fregs;
      checkpoint_rip = ctx.rip;
    }
  in
  ctx.txn <- Some t;
  t

let rollback ctx t =
  Array.blit t.checkpoint_regs 0 ctx.regs 0 (Array.length ctx.regs);
  Array.iteri (fun i a -> Array.blit a 0 ctx.fregs.(i) 0 4) t.checkpoint_fregs;
  ctx.rip <- t.checkpoint_rip;
  ctx.txn <- None

let end_txn ctx = ctx.txn <- None

(** {2 Data-cache warmth (prefetch extension)} *)

(** Mark the line containing [addr] warm (evicting FIFO at capacity). *)
let warm_line ctx addr =
  let line = addr / Janus_vx.Cost.cache_line in
  if not (Hashtbl.mem ctx.warm line) then begin
    Hashtbl.replace ctx.warm line ();
    Queue.push line ctx.warm_fifo;
    if Queue.length ctx.warm_fifo > Janus_vx.Cost.cache_lines then begin
      let victim = Queue.pop ctx.warm_fifo in
      Hashtbl.remove ctx.warm victim
    end
  end

(** Charge a miss if [addr]'s line is cold, then warm it. Only active
    when [model_cache] is set. *)
let touch_line ctx addr =
  if ctx.model_cache then begin
    let line = addr / Janus_vx.Cost.cache_line in
    if not (Hashtbl.mem ctx.warm line) then begin
      ctx.cycles <- ctx.cycles + Janus_vx.Cost.cache_miss;
      warm_line ctx addr
    end
  end
