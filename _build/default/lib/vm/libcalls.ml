(** Shared-library code, materialised as VX64 fragments at
    {!Janus_vx.Layout.lib_base} when a program is loaded.

    This code is {e not} part of the JX image, so the static analyser
    never sees it — it is discovered at runtime by the DBM, exactly
    like the paper's `pow@plt` in bwaves (§II-E3). Each function reads
    a constant table in library data (heap reads, no writes), giving
    speculative calls the paper's observed profile of ~tens of
    instructions with several heap reads and zero writes. *)

open Janus_vx

type t = {
  code : (Insn.t * int) array;  (* indexed by byte offset from lib_base *)
  code_len : int;
  entries : (string * int) list;  (* function name -> entry address *)
  data : bytes;  (* loaded at Layout.lib_data_base *)
}

let max_pow_exponent = 32
let exp_terms = 12

let build () =
  let d = Builder.Data.create () in
  (* data offsets are relative to lib_data_base *)
  let one_off = Builder.Data.here d in
  Builder.Data.f64 d 1.0;
  let guard_off = Builder.Data.here d in
  (* guard table: zeros read (but not used numerically) each pow iteration *)
  for _ = 1 to max_pow_exponent do
    Builder.Data.f64 d 0.0
  done;
  let invfact_off = Builder.Data.here d in
  (* 1/k! for k = exp_terms down to 1, Horner order *)
  let fact = Array.make (exp_terms + 1) 1.0 in
  for k = 1 to exp_terms do
    fact.(k) <- fact.(k - 1) *. float_of_int k
  done;
  for k = exp_terms downto 1 do
    Builder.Data.f64 d (1.0 /. fact.(k))
  done;
  let b = Builder.create ~base:Layout.lib_base () in
  let abs off = Layout.lib_data_base + off in
  let fmem ?index ?scale off =
    Operand.Fmem (Operand.mem ?index ?scale ~disp:(abs off) ())
  in
  let xmm n = Reg.XMM n in
  (* pow(x = xmm0, y = xmm1) -> xmm0 = x^trunc(y), via a multiply loop
     that also touches the guard table (n heap reads, 0 writes). *)
  Builder.label b "pow";
  Builder.ins b (Insn.Cvtsd2si (Reg.RAX, Operand.Freg (xmm 1)));
  Builder.ins b (Insn.Fmov (Insn.Scalar, Operand.Freg (xmm 2), fmem one_off));
  Builder.ins b (Insn.Mov (Operand.Reg Reg.RCX, Operand.Imm 0L));
  Builder.label b "pow_loop";
  Builder.ins b (Insn.Cmp (Operand.Reg Reg.RCX, Operand.Reg Reg.RAX));
  Builder.jcc b Cond.Ge "pow_done";
  Builder.ins b (Insn.Fbin (Insn.Scalar, Insn.Fmul, xmm 2, Operand.Freg (xmm 0)));
  Builder.ins b
    (Insn.Fmov (Insn.Scalar, Operand.Freg (xmm 3),
                fmem ~index:Reg.RCX ~scale:8 guard_off));
  Builder.ins b (Insn.Fbin (Insn.Scalar, Insn.Fadd, xmm 2, Operand.Freg (xmm 3)));
  Builder.ins b (Insn.Alu (Insn.Add, Operand.Reg Reg.RCX, Operand.Imm 1L));
  Builder.jmp b "pow_loop";
  Builder.label b "pow_done";
  Builder.ins b (Insn.Fmov (Insn.Scalar, Operand.Freg (xmm 0), Operand.Freg (xmm 2)));
  Builder.ins b Insn.Ret;
  (* sqrt(x = xmm0) -> xmm0 *)
  Builder.label b "sqrt";
  Builder.ins b (Insn.Fsqrt (Insn.Scalar, xmm 0, Operand.Freg (xmm 0)));
  Builder.ins b Insn.Ret;
  (* exp(x = xmm0) -> xmm0, Horner over the 1/k! table + 1 *)
  Builder.label b "exp";
  Builder.ins b (Insn.Fmov (Insn.Scalar, Operand.Freg (xmm 2), fmem invfact_off));
  Builder.ins b (Insn.Mov (Operand.Reg Reg.RCX, Operand.Imm 1L));
  Builder.label b "exp_loop";
  Builder.ins b
    (Insn.Cmp (Operand.Reg Reg.RCX, Operand.Imm (Int64.of_int exp_terms)));
  Builder.jcc b Cond.Ge "exp_done";
  Builder.ins b (Insn.Fbin (Insn.Scalar, Insn.Fmul, xmm 2, Operand.Freg (xmm 0)));
  Builder.ins b
    (Insn.Fmov (Insn.Scalar, Operand.Freg (xmm 3),
                fmem ~index:Reg.RCX ~scale:8 invfact_off));
  Builder.ins b (Insn.Fbin (Insn.Scalar, Insn.Fadd, xmm 2, Operand.Freg (xmm 3)));
  Builder.ins b (Insn.Alu (Insn.Add, Operand.Reg Reg.RCX, Operand.Imm 1L));
  Builder.jmp b "exp_loop";
  Builder.label b "exp_done";
  (* result = 1 + x * horner *)
  Builder.ins b (Insn.Fbin (Insn.Scalar, Insn.Fmul, xmm 2, Operand.Freg (xmm 0)));
  Builder.ins b (Insn.Fmov (Insn.Scalar, Operand.Freg (xmm 0), fmem one_off));
  Builder.ins b (Insn.Fbin (Insn.Scalar, Insn.Fadd, xmm 0, Operand.Freg (xmm 2)));
  Builder.ins b Insn.Ret;
  let entries =
    [
      ("pow", Builder.label_addr b "pow");
      ("sqrt", Builder.label_addr b "sqrt");
      ("exp", Builder.label_addr b "exp");
    ]
  in
  let bytes = Builder.to_bytes b in
  let code_len = Bytes.length bytes in
  let code = Array.make code_len (Insn.Nop, 0) in
  List.iter (fun (off, i, len) -> code.(off) <- (i, len)) (Decode.all bytes);
  { code; code_len; entries; data = Builder.Data.contents d }

(** Names that the VM intercepts rather than running as guest code. *)
let intrinsic_par_for = "__par_for"

let entry t name =
  List.assoc_opt name t.entries

let fetch t addr =
  let off = addr - Layout.lib_base in
  if off < 0 || off >= t.code_len then None
  else
    match t.code.(off) with
    | (_, 0) -> None  (* mid-instruction address *)
    | (i, len) -> Some (i, len)
