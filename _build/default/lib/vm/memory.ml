(** Region-based guest memory.

    The address space is a small set of non-overlapping regions (text,
    data, bss, heap, library data, one stack and one TLS block per
    thread). Loads and stores fault outside any region, which is how
    the VM catches wild accesses from miscompiled or mis-rewritten
    code. *)

exception Fault of int  (* faulting guest address *)

type region = {
  start : int;
  size : int;
  bytes : Bytes.t;
  name : string;
}

type t = {
  mutable regions : region list;
  mutable last : region option;  (* 1-entry lookup cache *)
}

let create () = { regions = []; last = None }

let add_region t ~name ~start ~size =
  let r = { start; size; bytes = Bytes.make size '\000'; name } in
  t.regions <- r :: t.regions;
  r

let region_of t addr =
  match t.last with
  | Some r when addr >= r.start && addr < r.start + r.size -> r
  | _ ->
    let rec go = function
      | [] -> raise (Fault addr)
      | r :: tl ->
        if addr >= r.start && addr < r.start + r.size then begin
          t.last <- Some r;
          r
        end
        else go tl
    in
    go t.regions

let region_by_name t name =
  List.find_opt (fun r -> String.equal r.name name) t.regions

(** [check t addr n] faults unless [addr..addr+n-1] lies in one region. *)
let check t addr n =
  let r = region_of t addr in
  if addr + n > r.start + r.size then raise (Fault (addr + n - 1))

let read_u8 t addr =
  let r = region_of t addr in
  Char.code (Bytes.get r.bytes (addr - r.start))

let write_u8 t addr v =
  let r = region_of t addr in
  Bytes.set r.bytes (addr - r.start) (Char.chr (v land 0xff))

let read_i64 t addr =
  let r = region_of t addr in
  let off = addr - r.start in
  if off + 8 <= r.size then Bytes.get_int64_le r.bytes off
  else raise (Fault (addr + 7))

let write_i64 t addr v =
  let r = region_of t addr in
  let off = addr - r.start in
  if off + 8 <= r.size then Bytes.set_int64_le r.bytes off v
  else raise (Fault (addr + 7))

let read_f64 t addr = Int64.float_of_bits (read_i64 t addr)
let write_f64 t addr v = write_i64 t addr (Int64.bits_of_float v)

let blit t ~addr src =
  let r = region_of t addr in
  let off = addr - r.start in
  if off + Bytes.length src > r.size then
    raise (Fault (addr + Bytes.length src - 1));
  Bytes.blit src 0 r.bytes off (Bytes.length src)

(** Snapshot the contents of [addr..addr+n-1] (for test oracles). *)
let snapshot t addr n =
  let r = region_of t addr in
  let off = addr - r.start in
  if off + n > r.size then raise (Fault (addr + n - 1));
  Bytes.sub r.bytes off n
