(** A loaded guest program: decoded code maps for application text, PLT
    stubs and runtime-resolved library code, plus an initialised guest
    memory. *)

open Janus_vx

type t = {
  image : Image.t;
  text : (Insn.t * int) array;  (* indexed by addr - text_base; len 0 = hole *)
  lib : Libcalls.t;
  plt : string array;  (* slot index -> external name *)
  mem : Memory.t;
}

(** Classify a code address so executors know where an instruction
    comes from; the DBM uses this to detect dynamically discovered
    code. *)
type code_class = App | Plt of string | Lib

let load (image : Image.t) =
  let text_len = Bytes.length image.text in
  let text = Array.make (max text_len 1) (Insn.Nop, 0) in
  List.iter (fun (off, i, len) -> text.(off) <- (i, len)) (Decode.all image.text);
  let lib = Libcalls.build () in
  let plt = Array.of_list image.externals in
  let mem = Memory.create () in
  ignore
    (Memory.add_region mem ~name:"data" ~start:Layout.data_base
       ~size:(max (Bytes.length image.data) 8));
  Memory.blit mem ~addr:Layout.data_base image.data;
  if image.bss_size > 0 then
    ignore
      (Memory.add_region mem ~name:"bss" ~start:Layout.bss_base
         ~size:image.bss_size);
  ignore
    (Memory.add_region mem ~name:"heap" ~start:Layout.heap_base
       ~size:(Layout.heap_limit - Layout.heap_base));
  ignore
    (Memory.add_region mem ~name:"libdata" ~start:Layout.lib_data_base
       ~size:(max (Bytes.length lib.data) 8));
  Memory.blit mem ~addr:Layout.lib_data_base lib.data;
  ignore
    (Memory.add_region mem ~name:"stack"
       ~start:(Layout.stack_top - Layout.stack_size)
       ~size:(Layout.stack_size + 8));
  { image; text; lib; plt; mem }

let add_thread_regions t ~threads =
  for i = 0 to threads - 1 do
    let top = Layout.tstack_top i in
    if Memory.region_by_name t.mem (Printf.sprintf "tstack%d" i) = None then begin
      ignore
        (Memory.add_region t.mem
           ~name:(Printf.sprintf "tstack%d" i)
           ~start:(top - Layout.tstack_size)
           ~size:(Layout.tstack_size + 8));
      ignore
        (Memory.add_region t.mem
           ~name:(Printf.sprintf "tls%d" i)
           ~start:(Layout.tls_base i) ~size:Layout.tls_size)
    end
  done

let classify t addr : code_class option =
  if Layout.in_text addr then App
                             |> Option.some
  else if Layout.in_plt addr then begin
    let i = Layout.plt_index_of_addr addr in
    if i < Array.length t.plt then Some (Plt t.plt.(i)) else None
  end
  else if Layout.in_lib addr then Some Lib
  else None

(** Fetch the instruction at a code address, treating PLT slots as
    jumps to the resolved library entry. *)
let fetch t addr : (Insn.t * int) option =
  if Layout.in_text addr then begin
    let off = addr - Layout.text_base in
    if off >= Array.length t.text then None
    else
      match t.text.(off) with
      | (_, 0) -> None
      | cell -> Some cell
  end
  else if Layout.in_plt addr then begin
    let i = Layout.plt_index_of_addr addr in
    if i >= Array.length t.plt || addr <> Layout.plt_slot_addr i then None
    else
      match Libcalls.entry t.lib t.plt.(i) with
      | Some e -> Some (Insn.Jmp (Insn.Direct e), Layout.plt_slot)
      | None -> None  (* intrinsics are intercepted before fetch *)
  end
  else Libcalls.fetch t.lib addr

(** The external name whose PLT slot is [addr], if any. *)
let plt_name t addr =
  if Layout.in_plt addr then begin
    let i = Layout.plt_index_of_addr addr in
    if i < Array.length t.plt && addr = Layout.plt_slot_addr i then
      Some t.plt.(i)
    else None
  end
  else None
