(** A loaded guest program: decoded code maps for application text, PLT
    stubs and runtime-resolved library code, plus initialised guest
    memory regions. *)

open Janus_vx

type t = {
  image : Image.t;
  text : (Insn.t * int) array;  (** indexed by addr - text_base *)
  lib : Libcalls.t;
  plt : string array;           (** PLT slot index -> external name *)
  mem : Memory.t;
}

(** Where a code address comes from: application text, a PLT stub, or
    dynamically discovered library code (§II-E3). *)
type code_class = App | Plt of string | Lib

(** Load an image: decode its text and set up data/bss/heap/stack and
    library regions. *)
val load : Image.t -> t

(** Create private stack and TLS regions for [threads] workers
    (idempotent). *)
val add_thread_regions : t -> threads:int -> unit

val classify : t -> int -> code_class option

(** The instruction at a code address (PLT slots resolve to jumps into
    library code); [None] outside any code region or mid-instruction. *)
val fetch : t -> int -> (Insn.t * int) option

(** The external whose PLT slot is at this address, if any. *)
val plt_name : t -> int -> string option
