(** Shared-library code, materialised as VX64 fragments at
    {!Janus_vx.Layout.lib_base} when a program is loaded.

    This code is {e not} part of the JX image, so the static analyser
    never sees it — it is discovered at runtime by the DBM, exactly
    like the paper's [pow@plt] in bwaves (§II-E3). Each function reads
    a constant table in library data (heap reads, no writes), giving
    speculative calls the paper's observed footprint of ~50
    instructions with ~10 heap reads and zero writes. *)

open Janus_vx

type t = {
  code : (Insn.t * int) array;   (** indexed by offset from lib_base *)
  code_len : int;
  entries : (string * int) list; (** function name -> entry address *)
  data : bytes;                  (** loaded at {!Layout.lib_data_base} *)
}

(** Largest pow exponent the multiply-loop implementation supports. *)
val max_pow_exponent : int

val exp_terms : int

(** Build the library fragments ([pow], [sqrt], [exp]). *)
val build : unit -> t

(** The name the VM intercepts for compiler-parallelised binaries. *)
val intrinsic_par_for : string

val entry : t -> string -> int option
val fetch : t -> int -> (Insn.t * int) option
