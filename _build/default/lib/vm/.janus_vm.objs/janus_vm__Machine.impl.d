lib/vm/machine.ml: Array Buffer Hashtbl Janus_vx Layout Memory Queue Reg
