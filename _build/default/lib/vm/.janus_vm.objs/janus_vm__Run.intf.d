lib/vm/run.mli: Janus_vx Machine Program
