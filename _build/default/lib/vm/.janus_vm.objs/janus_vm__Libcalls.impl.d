lib/vm/libcalls.ml: Array Builder Bytes Cond Decode Insn Int64 Janus_vx Layout List Operand Reg
