lib/vm/program.mli: Image Insn Janus_vx Libcalls Memory
