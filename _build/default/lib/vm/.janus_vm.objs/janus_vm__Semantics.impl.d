lib/vm/semantics.ml: Buffer Cond Cost Float Hashtbl Insn Int64 Janus_vx Layout Machine Memory Operand Printf Queue Reg
