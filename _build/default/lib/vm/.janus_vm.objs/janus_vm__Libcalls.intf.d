lib/vm/libcalls.mli: Insn Janus_vx
