lib/vm/memory.mli: Bytes
