lib/vm/program.ml: Array Bytes Decode Image Insn Janus_vx Layout Libcalls List Memory Option Printf
