lib/vm/memory.ml: Bytes Char Int64 List String
