lib/vm/semantics.mli: Cond Insn Janus_vx Machine Operand
