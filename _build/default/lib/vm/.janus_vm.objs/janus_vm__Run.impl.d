lib/vm/run.ml: Buffer Cost Image Int64 Janus_vx Layout Libcalls List Machine Program Queue Reg Semantics String
