lib/vm/machine.mli: Buffer Hashtbl Janus_vx Memory Queue Reg
