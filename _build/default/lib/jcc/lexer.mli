(** Hand-written lexer for the guest mini-C language. *)

type token =
  | INT of int64
  | FLOAT of float
  | IDENT of string
  | KW of string     (** int double void extern return if else for while break *)
  | PUNCT of string  (** operators and delimiters, one or two characters *)
  | EOF

exception Error of string * int  (** message, line *)

val keywords : string list

type t

val create : string -> t

(** Next token, advancing the cursor. *)
val next : t -> token

(** Tokenise the whole source, each token paired with its line. *)
val all : string -> (token * int) list
