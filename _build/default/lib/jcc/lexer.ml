(** Hand-written lexer for the guest language. *)

type token =
  | INT of int64
  | FLOAT of float
  | IDENT of string
  | KW of string     (* int double void extern return if else for while break *)
  | PUNCT of string  (* operators and delimiters *)
  | EOF

exception Error of string * int  (* message, line *)

let keywords =
  [ "int"; "double"; "void"; "extern"; "return"; "if"; "else"; "for";
    "while"; "break" ]

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
}

let create src = { src; pos = 0; line = 1 }

let peek_char lx =
  if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (if lx.pos < String.length lx.src && Char.equal lx.src.[lx.pos] '\n' then
     lx.line <- lx.line + 1);
  lx.pos <- lx.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_ws lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/'
    ->
    while peek_char lx <> None && peek_char lx <> Some '\n' do
      advance lx
    done;
    skip_ws lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '*'
    ->
    advance lx;
    advance lx;
    let rec go () =
      match peek_char lx with
      | None -> raise (Error ("unterminated comment", lx.line))
      | Some '*' when lx.pos + 1 < String.length lx.src
                      && lx.src.[lx.pos + 1] = '/' ->
        advance lx;
        advance lx
      | Some _ ->
        advance lx;
        go ()
    in
    go ();
    skip_ws lx
  | Some _ | None -> ()

let lex_number lx =
  let start = lx.pos in
  while (match peek_char lx with Some c -> is_digit c | None -> false) do
    advance lx
  done;
  let is_float =
    match peek_char lx with
    | Some '.' ->
      advance lx;
      while (match peek_char lx with Some c -> is_digit c | None -> false) do
        advance lx
      done;
      (match peek_char lx with
       | Some ('e' | 'E') ->
         advance lx;
         (match peek_char lx with
          | Some ('+' | '-') -> advance lx
          | _ -> ());
         while (match peek_char lx with Some c -> is_digit c | None -> false) do
           advance lx
         done
       | _ -> ());
      true
    | Some ('e' | 'E') ->
      advance lx;
      (match peek_char lx with
       | Some ('+' | '-') -> advance lx
       | _ -> ());
      while (match peek_char lx with Some c -> is_digit c | None -> false) do
        advance lx
      done;
      true
    | _ -> false
  in
  let s = String.sub lx.src start (lx.pos - start) in
  if is_float then FLOAT (float_of_string s) else INT (Int64.of_string s)

let two_char_ops =
  [ "=="; "!="; "<="; ">="; "&&"; "||"; "+="; "-="; "*="; "/="; "++"; "--";
    "<<"; ">>" ]

let next lx =
  skip_ws lx;
  match peek_char lx with
  | None -> EOF
  | Some c when is_digit c -> lex_number lx
  | Some c when is_ident_start c ->
    let start = lx.pos in
    while (match peek_char lx with Some c -> is_ident_char c | None -> false) do
      advance lx
    done;
    let s = String.sub lx.src start (lx.pos - start) in
    if List.mem s keywords then KW s else IDENT s
  | Some c ->
    if lx.pos + 1 < String.length lx.src then begin
      let two = String.sub lx.src lx.pos 2 in
      if List.mem two two_char_ops then begin
        advance lx;
        advance lx;
        PUNCT two
      end
      else begin
        advance lx;
        PUNCT (String.make 1 c)
      end
    end
    else begin
      advance lx;
      PUNCT (String.make 1 c)
    end

(** Tokenise the whole source, with the line of each token. *)
let all src =
  let lx = create src in
  let rec go acc =
    let line = lx.line in
    match next lx with
    | EOF -> List.rev ((EOF, line) :: acc)
    | t -> go ((t, line) :: acc)
  in
  go []
