(** VX64 code emission from register-allocated MIR.

    Conventions (guest ABI):
    - integer args in RDI RSI RDX RCX R8 R9, FP args in XMM0..XMM7;
    - results in RAX / XMM0;
    - RBX R12-R15 and XMM8-XMM13 callee-saved;
    - R10 R11 R9 and XMM15 XMM14 are code-generation scratch;
    - RBP-based frames; float literals in a per-image constant pool. *)

open Janus_vx
open Mir
open Regalloc

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let scr1 = Reg.R10
let scr2 = Reg.R11
let scr3 = Reg.R9
let fscr = Reg.XMM 15
let fscr2 = Reg.XMM 14

type ctx = {
  b : Builder.t;
  fn : fn;
  alloc : assignment;
  saved_area : int;           (* bytes below rbp used for saved regs *)
  float_pool : (float, int) Hashtbl.t;  (* value -> address *)
  mutable pool_next : int;    (* next free pool address *)
  pool_data : Buffer.t;
  externs : string list;      (* plt order *)
  locals_label : string -> string;
}

let vwidth_to_insn = function V2 -> Insn.X | V4 -> Insn.Y

let slot_bytes ctx v =
  match vtype ctx.fn v with V2d | V4d -> 32 | I64 | F64 -> 8

(* frame offset (from rbp) of spill slot unit [k] for vreg [v] *)
let slot_off ctx v k = -(ctx.saved_area + (8 * k) + slot_bytes ctx v)

let loc ctx v = ctx.alloc.locs.(v)

let float_addr ctx f =
  match Hashtbl.find_opt ctx.float_pool f with
  | Some a -> a
  | None ->
    let a = ctx.pool_next in
    Hashtbl.replace ctx.float_pool f a;
    ctx.pool_next <- ctx.pool_next + 8;
    Buffer.add_int64_le ctx.pool_data (Int64.bits_of_float f);
    a

let ins ctx i = Builder.ins ctx.b i

(* ------------------------------------------------------------------ *)
(* Operand access                                                      *)
(* ------------------------------------------------------------------ *)

(* integer source as a VX operand; slots become rbp-relative memory *)
let gp_src ctx = function
  | Oi v -> Operand.Imm v
  | Of _ -> errf "float operand in integer context"
  | Ov v -> begin
      match loc ctx v with
      | Lgp r -> Operand.Reg r
      | Lslot k -> Operand.Mem (Operand.mem_base ~disp:(slot_off ctx v k) Reg.RBP)
      | Lfp _ -> errf "fp register in integer context (v%d)" v
    end

(* integer source forced into a register (for address bases/indices) *)
let gp_src_reg ctx ~scratch o =
  match gp_src ctx o with
  | Operand.Reg r -> r
  | src ->
    ins ctx (Insn.Mov (Operand.Reg scratch, src));
    scratch

(* FP source as a VX fop *)
let fp_src ctx = function
  | Of f -> Operand.Fmem (Operand.mem_abs (float_addr ctx f))
  | Oi _ -> errf "int operand in float context"
  | Ov v -> begin
      match loc ctx v with
      | Lfp r -> Operand.Freg r
      | Lslot k -> Operand.Fmem (Operand.mem_base ~disp:(slot_off ctx v k) Reg.RBP)
      | Lgp _ -> errf "gp register in float context (v%d)" v
    end

let fp_src_reg ctx ~scratch o =
  match fp_src ctx o with
  | Operand.Freg r -> r
  | src ->
    ins ctx (Insn.Fmov (Insn.Scalar, Operand.Freg scratch, src));
    scratch

(* translate a MIR address into a VX memory operand; may use scr1/scr2 *)
let vx_mem ctx (a : addr) : Operand.mem =
  let disp = ref a.adisp in
  let base =
    match a.abase with
    | None -> None
    | Some (Oi v) ->
      disp := !disp + Int64.to_int v;
      None
    | Some o -> Some (gp_src_reg ctx ~scratch:scr1 o)
  in
  let index =
    match a.aindex with
    | None -> None
    | Some (Oi v) ->
      disp := !disp + (Int64.to_int v * a.ascale);
      None
    | Some o -> Some (gp_src_reg ctx ~scratch:scr2 o)
  in
  Operand.mem ?base ?index ~scale:a.ascale ~disp:!disp ()

(* store an integer register into a vreg location *)
let gp_store ctx v r =
  match loc ctx v with
  | Lgp d -> if not (Reg.equal_gp d r) then ins ctx (Insn.Mov (Operand.Reg d, Operand.Reg r))
  | Lslot k ->
    ins ctx
      (Insn.Mov (Operand.Mem (Operand.mem_base ~disp:(slot_off ctx v k) Reg.RBP),
                 Operand.Reg r))
  | Lfp _ -> errf "gp_store into fp location"

let fp_store ctx ?(width = Insn.Scalar) v r =
  match loc ctx v with
  | Lfp d ->
    if not (Reg.equal_fp d r) then
      ins ctx (Insn.Fmov (width, Operand.Freg d, Operand.Freg r))
  | Lslot k ->
    ins ctx
      (Insn.Fmov (width,
                  Operand.Fmem (Operand.mem_base ~disp:(slot_off ctx v k) Reg.RBP),
                  Operand.Freg r))
  | Lgp _ -> errf "fp_store into gp location"

(* ------------------------------------------------------------------ *)
(* Instruction emission                                                *)
(* ------------------------------------------------------------------ *)

let alu_of_ibin = function
  | Madd -> Insn.Add
  | Msub -> Insn.Sub
  | Mmul -> Insn.Imul
  | Mand -> Insn.And
  | Mor -> Insn.Or
  | Mxor -> Insn.Xor
  | Mshl -> Insn.Shl
  | Mshr -> Insn.Sar  (* arithmetic shift: guest ints are signed *)
  | Mdiv | Mmod -> errf "division handled separately"

let fbin_of = function
  | FAdd -> Insn.Fadd
  | FSub -> Insn.Fsub
  | FMul -> Insn.Fmul
  | FDiv -> Insn.Fdiv

(* at most one memory operand per VX instruction: if both would be
   memory, load the source into a scratch register first *)
let legalise_src ctx dst src scratch =
  match dst, src with
  | Operand.Mem _, Operand.Mem _ ->
    ins ctx (Insn.Mov (Operand.Reg scratch, src));
    Operand.Reg scratch
  | _ -> src

let emit_int_binop ctx op d a b =
  match op with
  | Mdiv | Mmod ->
    let src =
      match gp_src ctx b with
      | Operand.Imm _ as i ->
        ins ctx (Insn.Mov (Operand.Reg scr2, i));
        Operand.Reg scr2
      | s -> s
    in
    ins ctx (Insn.Mov (Operand.Reg Reg.RAX, gp_src ctx a));
    ins ctx (Insn.Idiv src);
    gp_store ctx d (if op = Mdiv then Reg.RAX else Reg.RDX)
  | _ ->
    let vxop = alu_of_ibin op in
    let dst_is_b = (match b with Ov v -> v = d | _ -> false) in
    let commutative =
      match op with Madd | Mmul | Mand | Mor | Mxor -> true | _ -> false
    in
    let a, b = if dst_is_b && commutative then (b, a) else (a, b) in
    let dst_is_b = (match b with Ov v -> v = d | _ -> false) in
    if dst_is_b then begin
      (* d = a op d, non-commutative: compute in scratch *)
      ins ctx (Insn.Mov (Operand.Reg scr1, gp_src ctx a));
      ins ctx (Insn.Alu (vxop, Operand.Reg scr1,
                         legalise_src ctx (Operand.Reg scr1) (gp_src ctx b) scr2));
      gp_store ctx d scr1
    end
    else begin
      match loc ctx d with
      | Lgp rd ->
        let da = gp_src ctx a in
        if not (Operand.equal (Operand.Reg rd) da) then
          ins ctx (Insn.Mov (Operand.Reg rd, da));
        ins ctx (Insn.Alu (vxop, Operand.Reg rd, gp_src ctx b))
      | Lslot _ ->
        ins ctx (Insn.Mov (Operand.Reg scr1, gp_src ctx a));
        ins ctx
          (Insn.Alu (vxop, Operand.Reg scr1,
                     legalise_src ctx (Operand.Reg scr1) (gp_src ctx b) scr2));
        gp_store ctx d scr1
      | Lfp _ -> errf "int binop into fp location"
    end

let emit_fbin ctx op d a b =
  let vxop = fbin_of op in
  let dst_is_b = (match b with Ov v -> v = d | _ -> false) in
  let commutative = match op with FAdd | FMul -> true | _ -> false in
  let a, b = if dst_is_b && commutative then (b, a) else (a, b) in
  let dst_is_b = (match b with Ov v -> v = d | _ -> false) in
  if dst_is_b then begin
    ins ctx (Insn.Fmov (Insn.Scalar, Operand.Freg fscr, fp_src ctx a));
    ins ctx (Insn.Fbin (Insn.Scalar, vxop, fscr, fp_src ctx b));
    fp_store ctx d fscr
  end
  else
    match loc ctx d with
    | Lfp rd ->
      let da = fp_src ctx a in
      if not (Operand.equal_fop (Operand.Freg rd) da) then
        ins ctx (Insn.Fmov (Insn.Scalar, Operand.Freg rd, da));
      ins ctx (Insn.Fbin (Insn.Scalar, vxop, rd, fp_src ctx b))
    | Lslot _ ->
      ins ctx (Insn.Fmov (Insn.Scalar, Operand.Freg fscr, fp_src ctx a));
      ins ctx (Insn.Fbin (Insn.Scalar, vxop, fscr, fp_src ctx b));
      fp_store ctx d fscr
    | Lgp _ -> errf "float binop into gp location"

let emit_compare ctx ty a b =
  match ty with
  | I64 ->
    let sa = gp_src ctx a in
    let sa =
      match sa, gp_src ctx b with
      | Operand.Mem _, Operand.Mem _ ->
        ins ctx (Insn.Mov (Operand.Reg scr1, sa));
        Operand.Reg scr1
      | Operand.Imm _, _ ->
        (* cmp needs a non-immediate first operand on x86; mirror that *)
        ins ctx (Insn.Mov (Operand.Reg scr1, sa));
        Operand.Reg scr1
      | _ -> sa
    in
    ins ctx (Insn.Cmp (sa, gp_src ctx b))
  | F64 | V2d | V4d ->
    let ra = fp_src_reg ctx ~scratch:fscr a in
    ins ctx (Insn.Fcmp (ra, fp_src ctx b))

let plt_addr ctx name =
  let rec go i = function
    | [] -> errf "extern %s not in PLT" name
    | n :: _ when String.equal n name -> Layout.plt_slot_addr i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 ctx.externs

let int_arg_regs = [| Reg.RDI; Reg.RSI; Reg.RDX; Reg.RCX; Reg.R8; Reg.R9 |]

let emit_call ctx name args dopt =
  let is_builtin = List.exists (fun (n, _, _) -> String.equal n name) Ast.builtins in
  if is_builtin then begin
    match name, args with
    | "print_int", [ a ] ->
      ins ctx (Insn.Mov (Operand.Reg Reg.RDI, gp_src ctx a));
      ins ctx (Insn.Syscall Insn.sys_write_int)
    | "print_float", [ a ] ->
      ins ctx (Insn.Fmov (Insn.Scalar, Operand.Freg (Reg.XMM 0), fp_src ctx a));
      ins ctx (Insn.Syscall Insn.sys_write_float)
    | "read_int", [] ->
      ins ctx (Insn.Syscall Insn.sys_read_int);
      (match dopt with Some d -> gp_store ctx d Reg.RAX | None -> ())
    | ("alloc_int" | "alloc_double"), [ a ] ->
      ins ctx (Insn.Mov (Operand.Reg Reg.RDI, gp_src ctx a));
      ins ctx (Insn.Alu (Insn.Shl, Operand.Reg Reg.RDI, Operand.Imm 3L));
      ins ctx (Insn.Syscall Insn.sys_brk);
      (match dopt with Some d -> gp_store ctx d Reg.RAX | None -> ())
    | _ -> errf "bad builtin call %s/%d" name (List.length args)
  end
  else begin
    (* marshal arguments; sources never live in arg registers.
       Integer arguments beyond the sixth go on the stack (pushed in
       reverse order, popped by the caller after the call). *)
    let int_args =
      List.filter (fun a -> ty_of_operand ctx.fn a = I64) args
    in
    let n_stack = max 0 (List.length int_args - Array.length int_arg_regs) in
    let stack_args =
      if n_stack = 0 then []
      else
        List.filteri
          (fun i _ -> i >= Array.length int_arg_regs)
          int_args
    in
    List.iter
      (fun a ->
         match gp_src ctx a with
         | Operand.Mem _ as src ->
           ins ctx (Insn.Mov (Operand.Reg scr1, src));
           ins ctx (Insn.Push (Operand.Reg scr1))
         | src -> ins ctx (Insn.Push src))
      (List.rev stack_args);
    let ni = ref 0 and nf = ref 0 in
    List.iter
      (fun a ->
         match ty_of_operand ctx.fn a with
         | F64 | V2d | V4d ->
           ins ctx
             (Insn.Fmov (Insn.Scalar, Operand.Freg (Reg.XMM !nf), fp_src ctx a));
           incr nf
         | I64 ->
           if !ni < Array.length int_arg_regs then begin
             ins ctx (Insn.Mov (Operand.Reg int_arg_regs.(!ni), gp_src ctx a));
             incr ni
           end)
      args;
    let is_local = List.exists (fun f -> String.equal f.name name) (match ctx.fn with _ -> []) in
    ignore is_local;
    if List.mem name ctx.externs then
      ins ctx (Insn.Call (Insn.Direct (plt_addr ctx name)))
    else Builder.call_label ctx.b name;
    if n_stack > 0 then
      ins ctx
        (Insn.Alu (Insn.Add, Operand.Reg Reg.RSP,
                   Operand.Imm (Int64.of_int (8 * n_stack))));
    (match dopt with
     | Some d -> begin
         match vtype ctx.fn d with
         | I64 -> gp_store ctx d Reg.RAX
         | F64 | V2d | V4d -> fp_store ctx d (Reg.XMM 0)
       end
     | None -> ())
  end

let emit_inst ctx i =
  match i with
  | Ibin (op, d, a, b) -> emit_int_binop ctx op d a b
  | Ifbin (op, d, a, b) -> emit_fbin ctx op d a b
  | Imov (d, src) -> begin
      match vtype ctx.fn d with
      | I64 -> begin
          match loc ctx d with
          | Lgp rd ->
            let s = gp_src ctx src in
            if not (Operand.equal (Operand.Reg rd) s) then
              ins ctx (Insn.Mov (Operand.Reg rd, s))
          | Lslot k ->
            let s =
              legalise_src ctx (Operand.Mem (Operand.mem_base Reg.RBP))
                (gp_src ctx src) scr1
            in
            ins ctx
              (Insn.Mov
                 (Operand.Mem (Operand.mem_base ~disp:(slot_off ctx d k) Reg.RBP), s))
          | Lfp _ -> errf "int mov into fp loc"
        end
      | F64 | V2d | V4d -> begin
          match loc ctx d with
          | Lfp rd ->
            let s = fp_src ctx src in
            if not (Operand.equal_fop (Operand.Freg rd) s) then
              ins ctx (Insn.Fmov (Insn.Scalar, Operand.Freg rd, s))
          | Lslot k ->
            let r = fp_src_reg ctx ~scratch:fscr src in
            ins ctx
              (Insn.Fmov (Insn.Scalar,
                          Operand.Fmem (Operand.mem_base ~disp:(slot_off ctx d k) Reg.RBP),
                          Operand.Freg r))
          | Lgp _ -> errf "float mov into gp loc"
        end
    end
  | Icmpset (t, c, d, a, b) ->
    emit_compare ctx t a b;
    ins ctx (Insn.Mov (Operand.Reg scr1, Operand.Imm 0L));
    ins ctx (Insn.Mov (Operand.Reg scr2, Operand.Imm 1L));
    ins ctx (Insn.Cmov (c, scr1, Operand.Reg scr2));
    gp_store ctx d scr1
  | Iload (t, d, a) -> begin
      let m = vx_mem ctx a in
      match t with
      | I64 ->
        ins ctx (Insn.Mov (Operand.Reg scr1, Operand.Mem m));
        gp_store ctx d scr1
      | F64 | V2d | V4d -> begin
          match loc ctx d with
          | Lfp rd -> ins ctx (Insn.Fmov (Insn.Scalar, Operand.Freg rd, Operand.Fmem m))
          | Lslot _ ->
            ins ctx (Insn.Fmov (Insn.Scalar, Operand.Freg fscr, Operand.Fmem m));
            fp_store ctx d fscr
          | Lgp _ -> errf "float load into gp loc"
        end
    end
  | Istore (t, a, v) -> begin
      let m = vx_mem ctx a in
      match t with
      | I64 -> begin
          match gp_src ctx v with
          | Operand.Mem _ as s ->
            ins ctx (Insn.Mov (Operand.Reg scr3, s));
            ins ctx (Insn.Mov (Operand.Mem m, Operand.Reg scr3))
          | s -> ins ctx (Insn.Mov (Operand.Mem m, s))
        end
      | F64 | V2d | V4d ->
        let r = fp_src_reg ctx ~scratch:fscr v in
        ins ctx (Insn.Fmov (Insn.Scalar, Operand.Fmem m, Operand.Freg r))
    end
  | Icvt_i2f (d, a) -> begin
      match loc ctx d with
      | Lfp rd -> ins ctx (Insn.Cvtsi2sd (rd, gp_src ctx a))
      | Lslot _ ->
        ins ctx (Insn.Cvtsi2sd (fscr, gp_src ctx a));
        fp_store ctx d fscr
      | Lgp _ -> errf "i2f into gp loc"
    end
  | Icvt_f2i (d, a) ->
    ins ctx (Insn.Cvtsd2si (scr1, fp_src ctx a));
    gp_store ctx d scr1
  | Icall (name, args, dopt) -> emit_call ctx name args dopt
  | Ipar_for (fname, lo, hi, threads) ->
    ins ctx (Insn.Mov (Operand.Reg Reg.RSI, gp_src ctx lo));
    ins ctx (Insn.Mov (Operand.Reg Reg.RDX, gp_src ctx hi));
    ins ctx (Insn.Mov (Operand.Reg Reg.RCX, Operand.Imm (Int64.of_int threads)));
    Builder.lea_label ctx.b Reg.RDI fname;
    ins ctx (Insn.Call (Insn.Direct (plt_addr ctx "__par_for")))
  | Ivload (w, d, a) -> begin
      let m = vx_mem ctx a in
      let vw = vwidth_to_insn w in
      match loc ctx d with
      | Lfp rd -> ins ctx (Insn.Fmov (vw, Operand.Freg rd, Operand.Fmem m))
      | Lslot _ ->
        ins ctx (Insn.Fmov (vw, Operand.Freg fscr, Operand.Fmem m));
        fp_store ctx ~width:vw d fscr
      | Lgp _ -> errf "vload into gp loc"
    end
  | Ivstore (w, a, v) ->
    let m = vx_mem ctx a in
    let vw = vwidth_to_insn w in
    let r =
      match loc ctx v with
      | Lfp r -> r
      | Lslot k ->
        ins ctx
          (Insn.Fmov (vw, Operand.Freg fscr,
                      Operand.Fmem (Operand.mem_base ~disp:(slot_off ctx v k) Reg.RBP)));
        fscr
      | Lgp _ -> errf "vstore from gp loc"
    in
    ins ctx (Insn.Fmov (vw, Operand.Fmem m, Operand.Freg r))
  | Ivbin (w, op, d, a, b) ->
    let vw = vwidth_to_insn w in
    let fop_of v =
      match loc ctx v with
      | Lfp r -> Operand.Freg r
      | Lslot k -> Operand.Fmem (Operand.mem_base ~disp:(slot_off ctx v k) Reg.RBP)
      | Lgp _ -> errf "vector vreg in gp loc"
    in
    let dst, stored =
      match loc ctx d with
      | Lfp rd -> (rd, false)
      | Lslot _ -> (fscr, true)
      | Lgp _ -> errf "vbin into gp loc"
    in
    (* move a into dst unless it is already there *)
    let amatch = (match loc ctx a with Lfp r when r = dst -> true | _ -> false) in
    if not amatch then ins ctx (Insn.Fmov (vw, Operand.Freg dst, fop_of a));
    (* guard against dst aliasing b *)
    let bsrc =
      match loc ctx b with
      | Lfp r when r = dst && not amatch ->
        ins ctx (Insn.Fmov (vw, Operand.Freg fscr2, fop_of b));
        Operand.Freg fscr2
      | _ -> fop_of b
    in
    ins ctx (Insn.Fbin (vw, fbin_of op, dst, bsrc));
    if stored then fp_store ctx ~width:vw d fscr
  | Ivbcast (w, d, a) ->
    let vw = vwidth_to_insn w in
    let src = fp_src ctx a in
    (match loc ctx d with
     | Lfp rd -> ins ctx (Insn.Fbcast (vw, rd, src))
     | Lslot _ ->
       ins ctx (Insn.Fbcast (vw, fscr, src));
       fp_store ctx ~width:vw d fscr
     | Lgp _ -> errf "vbcast into gp loc")

(* ------------------------------------------------------------------ *)
(* Function emission                                                   *)
(* ------------------------------------------------------------------ *)

let emit_term ctx fname ~next t =
  let blabel id = Printf.sprintf "%s#b%d" fname id in
  match t with
  | Tbr b -> if Some b <> next then Builder.jmp ctx.b (blabel b)
  | Tcbr (ty, c, a, b, tb, fb) ->
    emit_compare ctx ty a b;
    if Some fb = next then Builder.jcc ctx.b c (blabel tb)
    else if Some tb = next then Builder.jcc ctx.b (Cond.negate c) (blabel fb)
    else begin
      Builder.jcc ctx.b c (blabel tb);
      Builder.jmp ctx.b (blabel fb)
    end
  | Tret o ->
    (match o, ctx.fn.ret_ty with
     | Some o, Some I64 -> ins ctx (Insn.Mov (Operand.Reg Reg.RAX, gp_src ctx o))
     | Some o, Some (F64 | V2d | V4d) ->
       ins ctx (Insn.Fmov (Insn.Scalar, Operand.Freg (Reg.XMM 0), fp_src ctx o))
     | Some o, None -> ignore (gp_src ctx o)
     | None, _ -> ());
    Builder.jmp ctx.b (Printf.sprintf "%s#ep" fname)

let emit_fn b ~externs ~float_pool ~pool_next ~pool_data ~o0 (fn : fn) =
  let alloc =
    if o0 then Regalloc.allocate ~pool_gp:[] ~pool_fp:[] fn
    else Regalloc.allocate fn
  in
  let ngp = List.length alloc.used_gp in
  let nfp = List.length alloc.used_fp in
  let saved_area = (8 * ngp) + (32 * nfp) in
  let frame = saved_area + (8 * alloc.nslots) in
  let frame = (frame + 15) land lnot 15 in
  let ctx =
    { b; fn; alloc; saved_area; float_pool; pool_next; pool_data; externs;
      locals_label = (fun s -> s) }
  in
  Builder.label b fn.name;
  (* prologue *)
  ins ctx (Insn.Push (Operand.Reg Reg.RBP));
  ins ctx (Insn.Mov (Operand.Reg Reg.RBP, Operand.Reg Reg.RSP));
  if frame > 0 then
    ins ctx (Insn.Alu (Insn.Sub, Operand.Reg Reg.RSP, Operand.Imm (Int64.of_int frame)));
  List.iteri
    (fun i r ->
       ins ctx
         (Insn.Mov (Operand.Mem (Operand.mem_base ~disp:(-8 * (i + 1)) Reg.RBP),
                    Operand.Reg r)))
    alloc.used_gp;
  List.iteri
    (fun i r ->
       ins ctx
         (Insn.Fmov (Insn.Y,
                     Operand.Fmem
                       (Operand.mem_base
                          ~disp:(-(8 * ngp) - (32 * (i + 1))) Reg.RBP),
                     Operand.Freg r)))
    alloc.used_fp;
  (* move parameters to their allocated homes; the 7th and later
     integer parameters live above the return address: [rbp+16+8k] *)
  let ni = ref 0 and nf = ref 0 in
  List.iter
    (fun (ty, _, v) ->
       match ty with
       | I64 ->
         if !ni < Array.length int_arg_regs then
           gp_store ctx v int_arg_regs.(!ni)
         else begin
           let off = 16 + (8 * (!ni - Array.length int_arg_regs)) in
           ins ctx
             (Insn.Mov (Operand.Reg scr1,
                        Operand.Mem (Operand.mem_base ~disp:off Reg.RBP)));
           gp_store ctx v scr1
         end;
         incr ni
       | F64 | V2d | V4d ->
         fp_store ctx v (Reg.XMM !nf);
         incr nf)
    fn.params;
  (match fn.blocks with
   | first :: _ when first.bid = fn.entry -> ()
   | _ -> Builder.jmp b (Printf.sprintf "%s#b%d" fn.name fn.entry));
  (* blocks, with fall-through layout *)
  let rec emit_blocks = function
    | [] -> ()
    | blk :: rest ->
      let next = match rest with nb :: _ -> Some nb.bid | [] -> None in
      Builder.label b (Printf.sprintf "%s#b%d" fn.name blk.bid);
      List.iter (emit_inst ctx) blk.insts;
      emit_term ctx fn.name ~next blk.term;
      emit_blocks rest
  in
  emit_blocks fn.blocks;
  (* epilogue *)
  Builder.label b (Printf.sprintf "%s#ep" fn.name);
  List.iteri
    (fun i r ->
       ins ctx
         (Insn.Mov (Operand.Reg r,
                    Operand.Mem (Operand.mem_base ~disp:(-8 * (i + 1)) Reg.RBP))))
    alloc.used_gp;
  List.iteri
    (fun i r ->
       ins ctx
         (Insn.Fmov (Insn.Y, Operand.Freg r,
                     Operand.Fmem
                       (Operand.mem_base
                          ~disp:(-(8 * ngp) - (32 * (i + 1))) Reg.RBP))))
    alloc.used_fp;
  ins ctx (Insn.Mov (Operand.Reg Reg.RSP, Operand.Reg Reg.RBP));
  ins ctx (Insn.Pop (Operand.Reg Reg.RBP));
  ins ctx Insn.Ret;
  ctx.pool_next

(* ------------------------------------------------------------------ *)
(* Image assembly                                                      *)
(* ------------------------------------------------------------------ *)

let emit_unit ?(o0 = false) (u : unit_) : Image.t =
  let externs =
    let base = List.sort_uniq compare u.externs_used in
    let uses_par_for =
      List.exists
        (fun f ->
           List.exists
             (fun b -> List.exists (function Ipar_for _ -> true | _ -> false) b.insts)
             f.blocks)
        u.fns
    in
    if uses_par_for then base @ [ "__par_for" ] else base
  in
  let b = Builder.create () in
  (* _start: call main, exit with its return value *)
  Builder.label b "_start";
  Builder.call_label b "main";
  Builder.ins b (Insn.Mov (Operand.Reg Reg.RDI, Operand.Reg Reg.RAX));
  Builder.ins b (Insn.Syscall Insn.sys_exit);
  (* data layout: scalars first, then the float pool *)
  let scalars_end =
    List.fold_left (fun acc (a, _) -> max acc (a + 8)) Layout.data_base
      u.data_init
  in
  let float_pool = Hashtbl.create 16 in
  let pool_data = Buffer.create 64 in
  let pool_next = ref scalars_end in
  List.iter
    (fun fn ->
       let ctx_pool_next =
         emit_fn b ~externs ~float_pool ~pool_next:!pool_next ~pool_data ~o0 fn
       in
       pool_next := ctx_pool_next)
    u.fns;
  let data_len = !pool_next - Layout.data_base in
  let data = Bytes.make (max data_len 8) '\000' in
  List.iter
    (fun (addr, v) -> Bytes.set_int64_le data (addr - Layout.data_base) v)
    u.data_init;
  Bytes.blit (Buffer.to_bytes pool_data) 0 data (scalars_end - Layout.data_base)
    (Buffer.length pool_data);
  Builder.to_image b ~entry:"_start" ~data ~bss_size:(max u.bss_bytes 8)
    ~externals:externs
