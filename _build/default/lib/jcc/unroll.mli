(** Loop unrolling (O3). The gcc profile unrolls simple counted loops
    by 2, the icc profile by 4, keeping the original loop as the
    remainder — producing the "two different copies of unrolled loops
    in the same outer loop" shape that complicates binary analysis
    (§III-F). *)

module IS : Set.S with type elt = int

(** vregs used before being defined in a block: live-in accumulators
    that must keep their identity across unrolled copies (also used by
    the vectoriser and auto-paralleliser to detect reductions). *)
val live_in_defs : Mir.block -> IS.t

val factor : Jcc_types.vendor -> int

(** Unroll every simple loop summary of the function in place. *)
val run : vendor:Jcc_types.vendor -> Mir.fn -> unit
