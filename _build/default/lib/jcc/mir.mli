(** Mid-level IR: a CFG of virtual-register instructions — the
    substrate for the optimisers (unrolling, vectorisation,
    auto-parallelisation, scalar cleanups) and for linear-scan register
    allocation. *)

open Janus_vx

type ty =
  | I64
  | F64
  | V2d  (** 2-lane f64 vector, introduced by the vectoriser *)
  | V4d  (** 4-lane f64 vector *)

type operand =
  | Ov of int       (** virtual register *)
  | Oi of int64
  | Of of float

(** Memory address: [abase + aindex*ascale + adisp]. *)
type addr = {
  abase : operand option;
  aindex : operand option;
  ascale : int;
  adisp : int;
}

type ibin = Madd | Msub | Mmul | Mdiv | Mmod | Mand | Mor | Mxor | Mshl | Mshr
type fbin = FAdd | FSub | FMul | FDiv
type vwidth = V2 | V4

type inst =
  | Ibin of ibin * int * operand * operand
  | Ifbin of fbin * int * operand * operand
  | Imov of int * operand
  | Icmpset of ty * Cond.t * int * operand * operand
  | Iload of ty * int * addr
  | Istore of ty * addr * operand
  | Icvt_i2f of int * operand
  | Icvt_f2i of int * operand
  | Icall of string * operand list * int option
  | Ipar_for of string * operand * operand * int
      (** outlined worker, lo, hi, threads *)
  | Ivload of vwidth * int * addr
  | Ivstore of vwidth * addr * int
  | Ivbin of vwidth * fbin * int * int * int
  | Ivbcast of vwidth * int * operand

type term =
  | Tbr of int
  | Tcbr of ty * Cond.t * operand * operand * int * int  (** then, else *)
  | Tret of operand option

type block = {
  bid : int;
  mutable insts : inst list;
  mutable term : term;
}

(** Structured loop summary recorded at lowering time (the compiler's
    own loop info, as a real compiler keeps). *)
type loop_info = {
  mutable l_header : int;
  mutable l_body : int list;
  mutable l_latch : int;
  mutable l_exit : int;
  mutable l_preheader : int;
  l_iv : int option;
  l_init : operand option;
  l_bound : operand option;   (** invariant bound, if provable *)
  l_step : int64;
  l_cond : Cond.t;
  l_simple : bool;            (** single straight-line body, no calls *)
  mutable l_live : unit;
}

type fn = {
  name : string;
  params : (ty * string * int) list;
  ret_ty : ty option;
  mutable blocks : block list;   (** in layout order *)
  mutable nv : int;
  mutable vtypes : ty array;
  mutable entry : int;
  mutable loops : loop_info list;
  mutable next_bid : int;
}

val new_vreg : fn -> ty -> int
val vtype : fn -> int -> ty
val new_block : fn -> block
val block : fn -> int -> block
val ty_of_operand : fn -> operand -> ty

val succs : term -> int list

(** {1 Use/def for dataflow} *)

val operand_uses : operand -> int list
val addr_uses : addr -> int list
val inst_uses : inst -> int list
val inst_defs : inst -> int list
val term_uses : term -> int list
val has_side_effect : inst -> bool

(** {1 Pretty printing} *)

val pp_operand : Format.formatter -> operand -> unit
val pp_addr : Format.formatter -> addr -> unit
val ibin_name : ibin -> string
val fbin_name : fbin -> string
val vw : vwidth -> int
val pp_inst : Format.formatter -> inst -> unit
val pp_term : Format.formatter -> term -> unit
val pp_fn : Format.formatter -> fn -> unit

(** A compilation unit. *)
type unit_ = {
  mutable fns : fn list;
  mutable global_addrs : (string * int) list;
  mutable data_init : (int * int64) list;
  mutable bss_bytes : int;
  mutable externs_used : string list;
}
