(** Type checker: elaborates the parsed AST into a typed AST with
    explicit promotions, resolved variable kinds (local / global scalar
    / global array) and resolved call kinds. *)

open Ast

exception Error of string

type var_kind =
  | Vlocal         (** function-local variable, including parameters *)
  | Vglobal        (** global scalar *)
  | Vglobal_array  (** global array: its value is its address *)

type call_kind =
  | Cbuiltin  (** print_int / print_float / read_int / alloc_* *)
  | Cextern   (** PLT-resolved shared-library function *)
  | Clocal    (** function defined in this unit *)

type texpr = { node : tnode; ty : ty }

and tnode =
  | Tint_lit of int64
  | Tfloat_lit of float
  | Tvar of var_kind * string
  | Tindex of texpr * texpr
  | Tbin of binop * texpr * texpr
  | Tun of unop * texpr
  | Tcall of call_kind * string * texpr list
  | Tcast_i2f of texpr
  | Tcast_f2i of texpr
  | Tand of texpr * texpr   (** short-circuit *)
  | Tor of texpr * texpr

type tlvalue =
  | TLvar of var_kind * string * ty
  | TLindex of texpr * texpr * ty

type tstmt =
  | TSdecl of ty * string * texpr option
  | TSassign of tlvalue * texpr
  | TSif of texpr * tstmt list * tstmt list
  | TSfor of tstmt option * texpr option * tstmt option * tstmt list
  | TSwhile of texpr * tstmt list
  | TSbreak
  | TSreturn of texpr option
  | TSexpr of texpr

type tfunc = {
  tf_name : string;
  tf_params : (ty * string) list;
  tf_ret : ty option;
  tf_body : tstmt list;
}

type tprogram = {
  tglobals : global list;
  texterns : extern_decl list;
  tfuncs : tfunc list;
}

(** Check and elaborate a program.
    @raise Error on any type error (including a missing [main]). *)
val check : program -> tprogram
