(** Linear-scan register allocation over MIR.

    Guest ABI (deliberately Win64-flavoured for FP): pool registers
    RBX, R12-R15 and XMM8-XMM13 are callee-saved, so values stay in
    registers across calls; R9-R11 and XMM14/XMM15 are reserved as
    code-generation scratch; argument registers are excluded from
    allocation and shuffled explicitly at call sites. *)

open Janus_vx
open Mir

type location =
  | Lgp of Reg.gp
  | Lfp of Reg.fp
  | Lslot of int   (** frame slot index (8-byte units) *)

type assignment = {
  locs : location array;   (** vreg -> location *)
  nslots : int;            (** spill slots used, in 8-byte units *)
  used_gp : Reg.gp list;   (** callee-saved GP registers touched *)
  used_fp : Reg.fp list;
}

val gp_pool : Reg.gp list
val fp_pool : Reg.fp list

(** Liveness-based live intervals over the function's linearised
    instruction order (exposed for tests). *)
type interval = { v : int; mutable istart : int; mutable iend : int }

val intervals : fn -> interval list

(** Allocate registers / spill slots. Empty pools model -O0 (every
    value lives in memory). *)
val allocate : ?pool_gp:Reg.gp list -> ?pool_fp:Reg.fp list -> fn -> assignment
