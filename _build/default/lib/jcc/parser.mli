(** Recursive-descent parser for the guest mini-C language. *)

exception Error of string * int  (** message, line *)

(** Parse a whole translation unit.
    @raise Error on syntax errors
    @raise Lexer.Error on lexical errors *)
val parse : string -> Ast.program
