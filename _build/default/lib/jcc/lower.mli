(** Lowering from the typed AST to MIR. Lays out globals (scalars in
    [.data], arrays in [.bss]), lowers statements and expressions to
    virtual-register code, and records the structured loop summaries
    the loop optimisers consume. *)

exception Error of string

val elem_size : int

(** Lower a whole checked program.
    @raise Error on internal lowering failures. *)
val lower : Sema.tprogram -> Mir.unit_
