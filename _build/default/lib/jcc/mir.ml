(** Mid-level IR: a CFG of virtual-register instructions, the substrate
    for the optimiser (unrolling, vectorisation, auto-parallelisation,
    scalar cleanups) and for linear-scan register allocation. *)

open Janus_vx

type ty =
  | I64
  | F64
  | V2d  (* 2-lane f64 vector, introduced by the vectoriser *)
  | V4d  (* 4-lane f64 vector *)

type operand =
  | Ov of int       (* virtual register *)
  | Oi of int64     (* integer constant *)
  | Of of float     (* float constant *)

(** Memory address: [abase] + [aindex]*[ascale] + [adisp]. *)
type addr = {
  abase : operand option;
  aindex : operand option;
  ascale : int;
  adisp : int;
}

type ibin = Madd | Msub | Mmul | Mdiv | Mmod | Mand | Mor | Mxor | Mshl | Mshr

type fbin = FAdd | FSub | FMul | FDiv

(** Vector width introduced by the vectoriser. *)
type vwidth = V2 | V4

type inst =
  | Ibin of ibin * int * operand * operand     (* dst = a op b, int *)
  | Ifbin of fbin * int * operand * operand    (* dst = a op b, f64 *)
  | Imov of int * operand
  | Icmpset of ty * Cond.t * int * operand * operand  (* dst = a cond b *)
  | Iload of ty * int * addr
  | Istore of ty * addr * operand
  | Icvt_i2f of int * operand
  | Icvt_f2i of int * operand
  | Icall of string * operand list * int option  (* callee, args, result *)
  | Ipar_for of string * operand * operand * int (* outlined fn, lo, hi, threads *)
  (* vector instructions (dst/srcs are F64 vregs treated as vectors) *)
  | Ivload of vwidth * int * addr
  | Ivstore of vwidth * addr * int
  | Ivbin of vwidth * fbin * int * int * int    (* dst = a op b *)
  | Ivbcast of vwidth * int * operand           (* splat scalar *)

type term =
  | Tbr of int
  | Tcbr of ty * Cond.t * operand * operand * int * int  (* then, else *)
  | Tret of operand option

type block = {
  bid : int;
  mutable insts : inst list;
  mutable term : term;
}

(** Structured loop summary recorded at lowering time (the compiler's
    own loop info, as a real compiler would keep). *)
type loop_info = {
  mutable l_header : int;       (* block evaluating the condition *)
  mutable l_body : int list;    (* body blocks, entry first *)
  mutable l_latch : int;        (* block performing the step *)
  mutable l_exit : int;
  mutable l_preheader : int;
  l_iv : int option;            (* IV vreg *)
  l_init : operand option;
  l_bound : operand option;     (* invariant bound, if provable *)
  l_step : int64;
  l_cond : Cond.t;              (* continue while iv cond bound *)
  l_simple : bool;              (* single straight-line body block, no calls *)
  mutable l_live : unit;        (* placeholder for future extensions *)
}

type fn = {
  name : string;
  params : (ty * string * int) list;  (* type, name, vreg *)
  ret_ty : ty option;
  mutable blocks : block list;        (* in layout order *)
  mutable nv : int;
  mutable vtypes : ty array;
  mutable entry : int;
  mutable loops : loop_info list;
  mutable next_bid : int;
}

let new_vreg fn ty =
  if fn.nv >= Array.length fn.vtypes then begin
    let a = Array.make (2 * max 8 (Array.length fn.vtypes)) I64 in
    Array.blit fn.vtypes 0 a 0 (Array.length fn.vtypes);
    fn.vtypes <- a
  end;
  let v = fn.nv in
  fn.vtypes.(v) <- ty;
  fn.nv <- fn.nv + 1;
  v

let vtype fn v = fn.vtypes.(v)

let new_block fn =
  let b = { bid = fn.next_bid; insts = []; term = Tret None } in
  fn.next_bid <- fn.next_bid + 1;
  fn.blocks <- fn.blocks @ [ b ];
  b

let block fn id = List.find (fun b -> b.bid = id) fn.blocks

let ty_of_operand fn = function
  | Ov v -> vtype fn v
  | Oi _ -> I64
  | Of _ -> F64

(** Successor block ids of a terminator. *)
let succs = function
  | Tbr b -> [ b ]
  | Tcbr (_, _, _, _, t, f) -> [ t; f ]
  | Tret _ -> []

(** {1 Use/def for dataflow} *)

let operand_uses = function Ov v -> [ v ] | Oi _ | Of _ -> []

let addr_uses a =
  (match a.abase with Some o -> operand_uses o | None -> [])
  @ (match a.aindex with Some o -> operand_uses o | None -> [])

let inst_uses = function
  | Ibin (_, _, a, b) | Ifbin (_, _, a, b) | Icmpset (_, _, _, a, b) ->
    operand_uses a @ operand_uses b
  | Imov (_, a) | Icvt_i2f (_, a) | Icvt_f2i (_, a) -> operand_uses a
  | Iload (_, _, a) -> addr_uses a
  | Istore (_, a, v) -> addr_uses a @ operand_uses v
  | Icall (_, args, _) -> List.concat_map operand_uses args
  | Ipar_for (_, lo, hi, _) -> operand_uses lo @ operand_uses hi
  | Ivload (_, _, a) -> addr_uses a
  | Ivstore (_, a, v) -> addr_uses a @ [ v ]
  | Ivbin (_, _, _, a, b) -> [ a; b ]
  | Ivbcast (_, _, a) -> operand_uses a

let inst_defs = function
  | Ibin (_, d, _, _) | Ifbin (_, d, _, _) | Imov (d, _)
  | Icmpset (_, _, d, _, _) | Iload (_, d, _) | Icvt_i2f (d, _)
  | Icvt_f2i (d, _) | Ivload (_, d, _) | Ivbin (_, _, d, _, _)
  | Ivbcast (_, d, _) -> [ d ]
  | Icall (_, _, Some d) -> [ d ]
  | Icall (_, _, None) | Istore _ | Ipar_for _ | Ivstore _ -> []

let term_uses = function
  | Tbr _ -> []
  | Tcbr (_, _, a, b, _, _) -> operand_uses a @ operand_uses b
  | Tret (Some o) -> operand_uses o
  | Tret None -> []

let has_side_effect = function
  | Istore _ | Icall _ | Ipar_for _ | Ivstore _ -> true
  | Ibin _ | Ifbin _ | Imov _ | Icmpset _ | Iload _ | Icvt_i2f _
  | Icvt_f2i _ | Ivload _ | Ivbin _ | Ivbcast _ -> false

(** {1 Pretty printing (for -dump-mir)} *)

let pp_operand ppf = function
  | Ov v -> Fmt.pf ppf "v%d" v
  | Oi i -> Fmt.pf ppf "%Ld" i
  | Of f -> Fmt.pf ppf "%g" f

let pp_addr ppf a =
  Fmt.pf ppf "[";
  (match a.abase with Some o -> Fmt.pf ppf "%a" pp_operand o | None -> ());
  (match a.aindex with
   | Some o -> Fmt.pf ppf "+%a*%d" pp_operand o a.ascale
   | None -> ());
  if a.adisp <> 0 then Fmt.pf ppf "+%d" a.adisp;
  Fmt.pf ppf "]"

let ibin_name = function
  | Madd -> "add" | Msub -> "sub" | Mmul -> "mul" | Mdiv -> "div"
  | Mmod -> "mod" | Mand -> "and" | Mor -> "or" | Mxor -> "xor"
  | Mshl -> "shl" | Mshr -> "shr"

let fbin_name = function
  | FAdd -> "fadd" | FSub -> "fsub" | FMul -> "fmul" | FDiv -> "fdiv"

let vw = function V2 -> 2 | V4 -> 4

let pp_inst ppf = function
  | Ibin (op, d, a, b) ->
    Fmt.pf ppf "v%d = %s %a, %a" d (ibin_name op) pp_operand a pp_operand b
  | Ifbin (op, d, a, b) ->
    Fmt.pf ppf "v%d = %s %a, %a" d (fbin_name op) pp_operand a pp_operand b
  | Imov (d, a) -> Fmt.pf ppf "v%d = %a" d pp_operand a
  | Icmpset (_, c, d, a, b) ->
    Fmt.pf ppf "v%d = (%a %s %a)" d pp_operand a (Cond.name c) pp_operand b
  | Iload (_, d, a) -> Fmt.pf ppf "v%d = load %a" d pp_addr a
  | Istore (_, a, v) -> Fmt.pf ppf "store %a, %a" pp_addr a pp_operand v
  | Icvt_i2f (d, a) -> Fmt.pf ppf "v%d = i2f %a" d pp_operand a
  | Icvt_f2i (d, a) -> Fmt.pf ppf "v%d = f2i %a" d pp_operand a
  | Icall (f, args, d) ->
    (match d with
     | Some d -> Fmt.pf ppf "v%d = call %s(%a)" d f (Fmt.list ~sep:Fmt.comma pp_operand) args
     | None -> Fmt.pf ppf "call %s(%a)" f (Fmt.list ~sep:Fmt.comma pp_operand) args)
  | Ipar_for (f, lo, hi, t) ->
    Fmt.pf ppf "par_for %s [%a, %a) x%d" f pp_operand lo pp_operand hi t
  | Ivload (w, d, a) -> Fmt.pf ppf "v%d = vload.%d %a" d (vw w) pp_addr a
  | Ivstore (w, a, v) -> Fmt.pf ppf "vstore.%d %a, v%d" (vw w) pp_addr a v
  | Ivbin (w, op, d, a, b) ->
    Fmt.pf ppf "v%d = %s.%d v%d, v%d" d (fbin_name op) (vw w) a b
  | Ivbcast (w, d, a) -> Fmt.pf ppf "v%d = splat.%d %a" d (vw w) pp_operand a

let pp_term ppf = function
  | Tbr b -> Fmt.pf ppf "br b%d" b
  | Tcbr (_, c, a, b, t, f) ->
    Fmt.pf ppf "if %a %s %a then b%d else b%d" pp_operand a (Cond.name c)
      pp_operand b t f
  | Tret (Some o) -> Fmt.pf ppf "ret %a" pp_operand o
  | Tret None -> Fmt.pf ppf "ret"

let pp_fn ppf fn =
  Fmt.pf ppf "fn %s(%a):@." fn.name
    (Fmt.list ~sep:Fmt.comma (fun ppf (_, n, v) -> Fmt.pf ppf "%s=v%d" n v))
    fn.params;
  List.iter
    (fun b ->
       Fmt.pf ppf " b%d:@." b.bid;
       List.iter (fun i -> Fmt.pf ppf "   %a@." pp_inst i) b.insts;
       Fmt.pf ppf "   %a@." pp_term b.term)
    fn.blocks

(** A compilation unit. *)
type unit_ = {
  mutable fns : fn list;
  mutable global_addrs : (string * int) list;     (* name -> virtual address *)
  mutable data_init : (int * int64) list;         (* address -> initial value *)
  mutable bss_bytes : int;
  mutable externs_used : string list;
}
