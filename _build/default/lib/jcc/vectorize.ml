(** Loop vectorisation (O3).

    - gcc profile: SSE-width (2 lanes) on provably independent accesses
      (global arrays); pointer parameters are conservatively rejected.
    - icc profile: additionally multi-versions loops over pointer
      parameters behind a runtime overlap check (the compiler-generated
      "multiple versions of code ... selected at runtime" of §II-D).
    - [-mavx]: 4 lanes plus a scalar alignment-peeling prologue, the
      transformation §III-F identifies as hardest on binary analysis. *)

open Janus_vx
open Mir

module IS = Unroll.IS

(* the owning global of an absolute address, as (base, name) *)
let owner_global (u : unit_) disp =
  let sorted =
    List.sort (fun (_, a) (_, b) -> compare a b) u.global_addrs
  in
  let rec go best = function
    | [] -> best
    | (n, a) :: tl -> if a <= disp then go (Some (n, a)) tl else best
  in
  go None sorted

(* vregs that hold iv + constant: t = iv + c chains through Ibin/Imov.
   A vreg defined more than once is dropped (order-insensitive safety). *)
let affine_indices iv body =
  let map : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let dead : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.replace map iv 0;
  List.iter
    (fun i ->
       let define d off =
         if Hashtbl.mem map d || Hashtbl.mem dead d then begin
           Hashtbl.remove map d;
           Hashtbl.replace dead d ()
         end
         else
           match off with
           | Some c -> Hashtbl.replace map d c
           | None -> Hashtbl.replace dead d ()
       in
       match i with
       | Ibin (Madd, d, Ov s, Oi c) | Ibin (Madd, d, Oi c, Ov s) ->
         define d
           (Option.map (fun k -> k + Int64.to_int c) (Hashtbl.find_opt map s))
       | Ibin (Msub, d, Ov s, Oi c) ->
         define d
           (Option.map (fun k -> k - Int64.to_int c) (Hashtbl.find_opt map s))
       | Imov (d, Ov s) -> define d (Hashtbl.find_opt map s)
       | i -> List.iter (fun d -> define d None) (inst_defs i))
    body.insts;
  map

(* stride-1 view of an address: Some (normalised element offset) when
   the index is iv + c, i.e. the byte address is base + 8*iv + 8c + disp *)
let stride1_disp affine (a : addr) =
  match a.aindex with
  | Some (Ov t) when a.ascale = 8 -> begin
      match Hashtbl.find_opt affine t with
      | Some c -> Some (a.adisp + (8 * c))
      | None -> None
    end
  | _ -> None

let addr_uses_iv iv (a : addr) =
  a.aindex = Some (Ov iv) || a.abase = Some (Ov iv)


(* can every instruction be vectorised? integer arithmetic feeding
   affine indices stays scalar inside the vector body *)
let analyse u iv body =
  let affine = affine_indices iv body in
  let ok = ref true in
  let stores = ref [] in
  let loads = ref [] in
  let defs = ref IS.empty in
  List.iter
    (fun i ->
       (match i with
        | Iload (F64, d, a) ->
          if stride1_disp affine a <> None then loads := (d, a) :: !loads
          else if addr_uses_iv iv a then ok := false
          else () (* invariant load: broadcast *)
        | Iload (_, _, _) -> ok := false
        | Ifbin (_, _, _, _) -> ()
        | Istore (F64, a, _) ->
          if stride1_disp affine a <> None then stores := a :: !stores
          else ok := false
        | Istore (_, _, _) -> ok := false
        | Imov (_, (Of _ | Ov _)) -> ()
        | Ibin ((Madd | Msub), d, _, _)
          when Hashtbl.mem affine d ->
          ()  (* scalar index arithmetic, kept verbatim *)
        | _ -> ok := false);
       List.iter (fun d -> defs := IS.add d !defs) (inst_defs i))
    body.insts;
  (* no reductions: a def that is also used before defined (live-in) *)
  let livein = Unroll.live_in_defs body in
  if not (IS.is_empty (IS.inter livein !defs)) then ok := false;
  (* alias discipline, on index-normalised displacements *)
  let ndisp a = Option.value ~default:a.adisp (stride1_disp affine a) in
  let ptr_checks = ref [] in
  if !ok then
    List.iter
      (fun sa ->
         let check_pair (la : addr) =
           match sa.abase, la.abase with
           | None, None ->
             (* both global: same array requires identical displacement *)
             let so = owner_global u sa.adisp and lo = owner_global u la.adisp in
             (match so, lo with
              | Some (sn, _), Some (ln, _) when String.equal sn ln ->
                if ndisp sa <> ndisp la then ok := false
              | _ -> ())
           | Some sb, Some lb ->
             if sb = lb then begin
               if ndisp sa <> ndisp la then ok := false
             end
             else ptr_checks := (sb, lb) :: !ptr_checks
           | Some pb, None | None, Some pb ->
             (* pointer vs global: unknown statically *)
             ptr_checks := (pb, pb) :: !ptr_checks
         in
         List.iter (fun (_, la) -> check_pair la) !loads;
         (* store vs store: distinct targets *)
         List.iter
           (fun (sa2 : addr) ->
              if sa2 != sa then
                match sa.abase, sa2.abase with
                | None, None ->
                  let so = owner_global u sa.adisp
                  and s2 = owner_global u sa2.adisp in
                  (match so, s2 with
                   | Some (a, _), Some (b, _) when String.equal a b ->
                     if ndisp sa <> ndisp sa2 then ok := false
                   | _ -> ())
                | Some a, Some b ->
                  if a = b && ndisp sa <> ndisp sa2 then ok := false
                | _ -> ())
           !stores)
      !stores;
  if !ok then Some (!ptr_checks <> []) else None

(* emit the vector clone of the body into [vbody] *)
let build_vector_body fn iv width body vbody vpre =
  let affine = affine_indices iv body in
  let w = match width with 2 -> V2 | _ -> V4 in
  let vty = if width = 2 then V2d else V4d in
  let vmap : (int, int) Hashtbl.t = Hashtbl.create 16 in  (* scalar -> vector *)
  let bcast_cache : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let pre_insts = ref [] in
  let bcast_of_operand (o : operand) =
    let key =
      match o with
      | Of f -> Printf.sprintf "c%h" f
      | Ov v -> Printf.sprintf "v%d" v
      | Oi i -> Printf.sprintf "i%Ld" i
    in
    match Hashtbl.find_opt bcast_cache key with
    | Some v -> v
    | None ->
      let d = new_vreg fn vty in
      pre_insts := !pre_insts @ [ Ivbcast (w, d, o) ];
      Hashtbl.replace bcast_cache key d;
      d
  in
  let vec_operand (o : operand) =
    match o with
    | Ov v -> begin
        match Hashtbl.find_opt vmap v with
        | Some vd -> vd  (* body-defined vector value *)
        | None -> bcast_of_operand o  (* loop-invariant scalar *)
      end
    | Of _ | Oi _ -> bcast_of_operand o
  in
  let insts = ref [] in
  List.iter
    (fun i ->
       match i with
       | Iload (F64, d, a) when stride1_disp affine a <> None ->
         let vd = new_vreg fn vty in
         Hashtbl.replace vmap d vd;
         insts := !insts @ [ Ivload (w, vd, a) ]
       | Iload (F64, d, a) ->
         (* invariant load: load once in the preheader, broadcast *)
         let s = new_vreg fn F64 in
         let vd = new_vreg fn vty in
         pre_insts := !pre_insts @ [ Iload (F64, s, a); Ivbcast (w, vd, Ov s) ];
         Hashtbl.replace vmap d vd
       | Ifbin (op, d, a, b) ->
         let va = vec_operand a in
         let vb = vec_operand b in
         let vd = new_vreg fn vty in
         Hashtbl.replace vmap d vd;
         insts := !insts @ [ Ivbin (w, op, vd, va, vb) ]
       | Imov (d, src) when vtype fn d <> I64 ->
         let vs = vec_operand src in
         Hashtbl.replace vmap d vs
       | Istore (F64, a, v) when stride1_disp affine a <> None ->
         let vv = vec_operand v in
         insts := !insts @ [ Ivstore (w, a, vv) ]
       | (Ibin _ | Imov _) as i ->
         (* scalar index arithmetic survives unchanged *)
         insts := !insts @ [ i ]
       | _ -> assert false (* excluded by analyse *))
    body.insts;
  vpre.insts <- vpre.insts @ !pre_insts;
  vbody.insts <- !insts

let vectorize_loop ~vendor ~avx (u : unit_) fn l =
  match l.l_iv, l.l_bound with
  | Some iv, Some bound
    when l.l_simple && Int64.equal l.l_step 1L
         && (l.l_cond = Cond.Lt || l.l_cond = Cond.Le)
         && l.l_body <> [] -> begin
      let body = block fn (List.hd l.l_body) in
      match analyse u iv body with
      | None -> false
      | Some needs_check when needs_check && vendor = Jcc_types.Gcc ->
        false  (* gcc: reject unprovable aliasing *)
      | Some needs_check ->
        let width = if avx then 4 else 2 in
        let vpre = new_block fn in
        let vheader = new_block fn in
        let vbody = new_block fn in
        let vlatch = new_block fn in
        let t = new_vreg fn I64 in
        vheader.insts <-
          [ Ibin (Madd, t, Ov iv, Oi (Int64.of_int (width - 1))) ];
        vheader.term <- Tcbr (I64, l.l_cond, Ov t, bound, vbody.bid, l.l_header);
        build_vector_body fn iv width body vbody vpre;
        vbody.term <- Tbr vlatch.bid;
        vlatch.insts <- [ Ibin (Madd, iv, Ov iv, Oi (Int64.of_int width)) ];
        vlatch.term <- Tbr vheader.bid;
        vpre.term <- Tbr vheader.bid;
        (* optional alignment peeling (avx): run scalar iterations until
           the first store address is 32-byte aligned *)
        let entry_target =
          if not avx then vpre.bid
          else begin
            let store_addr =
              List.find_map
                (function Istore (F64, a, _) -> Some a | _ -> None)
                body.insts
            in
            match store_addr with
            | None -> vpre.bid
            | Some a ->
              let pheader = new_block fn in
              let pcheck = new_block fn in
              let pbody = new_block fn in
              let addr_v = new_vreg fn I64 in
              let masked = new_vreg fn I64 in
              let scaled = new_vreg fn I64 in
              let base_insts =
                match a.abase with
                | Some (Ov p) ->
                  [ Ibin (Mshl, scaled, Ov iv, Oi 3L);
                    Ibin (Madd, addr_v, Ov p, Ov scaled) ]
                | _ ->
                  [ Ibin (Mshl, scaled, Ov iv, Oi 3L);
                    Ibin (Madd, addr_v, Oi (Int64.of_int a.adisp), Ov scaled) ]
              in
              pheader.insts <- base_insts @ [ Ibin (Mand, masked, Ov addr_v, Oi 31L) ];
              pheader.term <-
                Tcbr (I64, Cond.Ne, Ov masked, Oi 0L, pcheck.bid, vpre.bid);
              (* still within bounds? *)
              pcheck.term <- Tcbr (I64, l.l_cond, Ov iv, bound, pbody.bid, l.l_exit);
              (* scalar body copy + iv++ *)
              pbody.insts <- body.insts @ [ Ibin (Madd, iv, Ov iv, Oi 1L) ];
              pbody.term <- Tbr pheader.bid;
              pheader.bid
          end
        in
        (* multiversioning: runtime overlap check choosing vector/scalar *)
        let entry_target =
          if not needs_check then entry_target
          else begin
            (* gather pointer operands from loads and stores *)
            let ptrs = ref [] in
            List.iter
              (fun i ->
                 let grab (a : addr) =
                   match a.abase with
                   | Some (Ov p) -> if not (List.mem p !ptrs) then ptrs := p :: !ptrs
                   | _ -> ()
                 in
                 match i with
                 | Iload (_, _, a) | Istore (_, a, _) -> grab a
                 | _ -> ())
              body.insts;
            match !ptrs with
            | p1 :: p2 :: _ ->
              (* disjoint if p1 + n*8 <= p2 || p2 + n*8 <= p1 *)
              let mv = new_block fn in
              let n8 = new_vreg fn I64 in
              let e1 = new_vreg fn I64 in
              let e2 = new_vreg fn I64 in
              let c1 = new_vreg fn I64 in
              let c2 = new_vreg fn I64 in
              let either = new_vreg fn I64 in
              mv.insts <-
                [
                  Ibin (Mshl, n8, bound, Oi 3L);
                  Ibin (Madd, e1, Ov p1, Ov n8);
                  Ibin (Madd, e2, Ov p2, Ov n8);
                  Icmpset (I64, Cond.Le, c1, Ov e1, Ov p2);
                  Icmpset (I64, Cond.Le, c2, Ov e2, Ov p1);
                  Ibin (Mor, either, Ov c1, Ov c2);
                ];
              mv.term <-
                Tcbr (I64, Cond.Ne, Ov either, Oi 0L, entry_target, l.l_header);
              mv.bid
            | _ -> entry_target
          end
        in
        let pre = block fn l.l_preheader in
        let retarget id = if id = l.l_header then entry_target else id in
        pre.term <-
          (match pre.term with
           | Tbr x -> Tbr (retarget x)
           | Tcbr (ty, c, a, b, x, y) -> Tcbr (ty, c, a, b, retarget x, retarget y)
           | t -> t);
        true
    end
  | _ -> false

let run ~vendor ~avx (u : unit_) fn =
  let vectorised =
    List.filter (fun l -> vectorize_loop ~vendor ~avx u fn l) fn.loops
  in
  (* a vectorised loop's summary now describes only the scalar remainder;
     drop it so the unroller does not also transform it *)
  fn.loops <- List.filter (fun l -> not (List.memq l vectorised)) fn.loops
