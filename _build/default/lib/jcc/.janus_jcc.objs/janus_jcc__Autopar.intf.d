lib/jcc/autopar.mli: Jcc_types Mir
