lib/jcc/ast.ml: Fmt
