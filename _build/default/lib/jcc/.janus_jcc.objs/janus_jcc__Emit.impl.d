lib/jcc/emit.ml: Array Ast Buffer Builder Bytes Cond Hashtbl Image Insn Int64 Janus_vx Layout List Mir Operand Printf Reg Regalloc String
