lib/jcc/regalloc.mli: Janus_vx Mir Reg
