lib/jcc/jcc.mli: Janus_vx Jcc_types Mir
