lib/jcc/sema.ml: Ast Fmt Hashtbl List Option Printf String
