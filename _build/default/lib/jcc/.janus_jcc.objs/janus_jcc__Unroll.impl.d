lib/jcc/unroll.ml: Hashtbl Int Int64 Jcc_types List Mir Option Set
