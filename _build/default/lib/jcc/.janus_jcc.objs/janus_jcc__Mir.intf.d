lib/jcc/mir.mli: Cond Format Janus_vx
