lib/jcc/vectorize.mli: Hashtbl Jcc_types Mir
