lib/jcc/autopar.ml: Array Cond Hashtbl Int64 Janus_vx Jcc_types Layout List Mir Option Printf String Unroll Vectorize
