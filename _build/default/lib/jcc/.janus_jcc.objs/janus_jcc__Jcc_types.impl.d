lib/jcc/jcc_types.ml:
