lib/jcc/ast.mli: Format
