lib/jcc/jcc.ml: Autopar Emit Janus_vx Jcc_types Lexer List Lower Mir Parser Passes Printf Sema Unroll Vectorize
