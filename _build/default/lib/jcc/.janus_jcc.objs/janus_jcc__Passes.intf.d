lib/jcc/passes.mli: Mir
