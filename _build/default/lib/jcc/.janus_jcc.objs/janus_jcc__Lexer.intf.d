lib/jcc/lexer.mli:
