lib/jcc/parser.mli: Ast
