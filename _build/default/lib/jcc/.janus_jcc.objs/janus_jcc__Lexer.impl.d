lib/jcc/lexer.ml: Char Int64 List String
