lib/jcc/lower.mli: Mir Sema
