lib/jcc/jcc_types.mli:
