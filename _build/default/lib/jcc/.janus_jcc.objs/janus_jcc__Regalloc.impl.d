lib/jcc/regalloc.ml: Array Hashtbl Int Janus_vx List Mir Reg Set
