lib/jcc/unroll.mli: Jcc_types Mir Set
