lib/jcc/lower.ml: Array Ast Cond Hashtbl Int64 Janus_vx Layout List Mir Option Printf Sema String
