lib/jcc/mir.ml: Array Cond Fmt Janus_vx List
