lib/jcc/emit.mli: Janus_vx Mir
