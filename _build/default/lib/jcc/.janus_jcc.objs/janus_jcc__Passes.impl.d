lib/jcc/passes.ml: Hashtbl Int64 Janus_vx List Mir Option
