lib/jcc/sema.mli: Ast
