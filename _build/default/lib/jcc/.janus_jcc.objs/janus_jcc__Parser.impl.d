lib/jcc/parser.ml: Array Ast Int64 Lexer List Printf String
