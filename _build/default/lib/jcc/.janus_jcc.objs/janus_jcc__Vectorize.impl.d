lib/jcc/vectorize.ml: Cond Hashtbl Int64 Janus_vx Jcc_types List Mir Option Printf String Unroll
