(** The guest compiler driver: mini-C source to a JX executable.

    Options mirror the paper's compiler matrix (§III-E, §III-F):
    [vendor] selects the gcc-like or icc-like optimisation personality
    (icc unrolls more, vectorises pointer loops behind runtime
    multi-version checks and auto-parallelises more aggressively);
    [opt] is the optimisation level 0-3; [avx] widens vectors to four
    lanes and adds an alignment-peeling prologue; [autopar] outlines
    provably independent loops into [__par_for] calls with the given
    thread count ([0] disables, the gcc [-ftree-parallelize-loops=N] /
    [icc -parallel] analogue). *)

type vendor = Jcc_types.vendor = Gcc | Icc

type options = {
  vendor : vendor;
  opt : int;       (** 0..3 *)
  avx : bool;
  autopar : int;   (** 0 = off, n = parallelise with n threads *)
}

(** gcc -O3, the paper's primary configuration. *)
val default_options : options

exception Error of string
(** Lexing, parsing, type or lowering failure, with a message. *)

(** Compile to MIR only (exposed for tests of the optimisation passes). *)
val compile_unit : ?options:options -> string -> Mir.unit_

(** Compile source text to an executable image.
    @raise Error on any front-end failure. *)
val compile : ?options:options -> string -> Janus_vx.Image.t
