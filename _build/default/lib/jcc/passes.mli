(** Scalar optimisation passes over MIR: constant folding, block-local
    constant/copy propagation, common-subexpression elimination,
    strength reduction, addressing-mode folding, dead-code elimination
    and unreachable-block pruning. All are conservative on the non-SSA
    MIR: propagation facts are block-local; DCE is global. *)

(** Fold one instruction's constants and algebraic identities. *)
val fold_inst : Mir.inst -> Mir.inst

(** Rewrite multiplications by powers of two into shifts. *)
val strength_reduce : Mir.inst -> Mir.inst

(** Global dead-code elimination (pure instructions with unused
    destinations). *)
val dce : Mir.fn -> unit

(** Drop blocks unreachable from the entry, and loop summaries whose
    blocks disappeared. *)
val prune_unreachable : Mir.fn -> unit

(** Run the scalar pipeline to a (bounded) fixpoint. [strength]
    enables strength reduction (O2+). *)
val run_scalar : ?strength:bool -> Mir.fn -> unit
