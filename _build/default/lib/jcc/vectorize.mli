(** Loop vectorisation (O3).

    - gcc profile: SSE-width (2 lanes) on provably independent accesses
      (global arrays); pointer parameters are conservatively rejected;
    - icc profile: additionally multi-versions pointer loops behind a
      runtime overlap check (the compiler-generated "multiple versions
      of code selected at runtime" of §II-D);
    - [-mavx]: 4 lanes plus a scalar alignment-peeling prologue, the
      transformation §III-F identifies as hardest on binary analysis.

    Derived index registers ([t = iv + c]) are understood as stride-1
    accesses with an element offset. *)

open Mir

(** The global that owns an absolute address, when one does. *)
val owner_global : unit_ -> int -> (string * int) option

(** vregs holding [iv + constant], chained through add/sub/mov.
    Multiply-defined vregs are dropped. *)
val affine_indices : int -> block -> (int, int) Hashtbl.t

(** Stride-1 view of an address: the normalised byte displacement when
    the index register is [iv + c] with scale 8. *)
val stride1_disp : (int, int) Hashtbl.t -> addr -> int option

(** Vectorise every qualifying loop summary of [fn] in place, dropping
    transformed summaries so the unroller skips them. *)
val run : vendor:Jcc_types.vendor -> avx:bool -> unit_ -> fn -> unit
