(** VX64 code emission from register-allocated MIR.

    Conventions (guest ABI): integer args in RDI RSI RDX RCX R8 R9
    (7th+ on the stack above the return address), FP args in
    XMM0..XMM7; results in RAX / XMM0; RBX R12-R15 and XMM8-XMM13
    callee-saved; RBP-based frames; float literals in a per-image
    constant pool; fall-through block layout. *)

exception Error of string

(** Emit a whole compilation unit as an executable image. [o0] forces
    the empty register pools (every value in memory). *)
val emit_unit : ?o0:bool -> Mir.unit_ -> Janus_vx.Image.t
