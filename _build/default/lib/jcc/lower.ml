(** Lowering from the typed AST to MIR. Also records structured loop
    summaries used by the loop optimisers. *)

open Janus_vx
open Sema
open Mir

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let elem_size = 8  (* both int and double are 8 bytes *)

type genv = {
  unit_ : unit_;
  addr_of_global : string -> int;
}

type fenv = {
  g : genv;
  fn : fn;
  locals : (string, int) Hashtbl.t;  (* name -> vreg *)
  mutable cur : block;
  mutable break_targets : int list;
}

let mir_ty = function
  | Ast.Tint | Ast.Tptr _ -> I64
  | Ast.Tdouble -> F64

let set_term env t = env.cur.term <- t

let emit env i = env.cur.insts <- env.cur.insts @ [ i ]

let start_block env b = env.cur <- b

let ast_cond_of_binop = function
  | Ast.Eq -> Some Cond.Eq
  | Ast.Ne -> Some Cond.Ne
  | Ast.Lt -> Some Cond.Lt
  | Ast.Le -> Some Cond.Le
  | Ast.Gt -> Some Cond.Gt
  | Ast.Ge -> Some Cond.Ge
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.And | Ast.Or
  | Ast.Band | Ast.Bxor | Ast.Bor | Ast.Shl | Ast.Shr -> None

let ibin_of_binop = function
  | Ast.Add -> Madd
  | Ast.Sub -> Msub
  | Ast.Mul -> Mmul
  | Ast.Div -> Mdiv
  | Ast.Mod -> Mmod
  | Ast.Band -> Mand
  | Ast.Bor -> Mor
  | Ast.Bxor -> Mxor
  | Ast.Shl -> Mshl
  | Ast.Shr -> Mshr
  | _ -> errf "not an integer binop"

let fbin_of_binop = function
  | Ast.Add -> FAdd
  | Ast.Sub -> FSub
  | Ast.Mul -> FMul
  | Ast.Div -> FDiv
  | _ -> errf "not a float binop"

(* address of p[i] as a MIR addr *)
let rec lower_index env (base : texpr) (idx : texpr) : addr =
  let abase, adisp =
    match base.node with
    | Tvar (Vglobal_array, name) -> (None, env.g.addr_of_global name)
    | _ -> (Some (lower_expr env base), 0)
  in
  match lower_expr env idx with
  | Oi k -> { abase; aindex = None; ascale = 1;
              adisp = adisp + (Int64.to_int k * elem_size) }
  | (Ov _ | Of _) as o ->
    { abase; aindex = Some o; ascale = elem_size; adisp }

and lower_expr env (e : texpr) : operand =
  match e.node with
  | Tint_lit v -> Oi v
  | Tfloat_lit v -> Of v
  | Tvar (Vlocal, name) -> begin
      match Hashtbl.find_opt env.locals name with
      | Some v -> Ov v
      | None -> errf "lower: unbound local %s" name
    end
  | Tvar (Vglobal, name) ->
    let d = new_vreg env.fn (mir_ty e.ty) in
    emit env
      (Iload (mir_ty e.ty, d,
              { abase = None; aindex = None; ascale = 1;
                adisp = env.g.addr_of_global name }));
    Ov d
  | Tvar (Vglobal_array, name) -> Oi (Int64.of_int (env.g.addr_of_global name))
  | Tindex (b, i) ->
    let a = lower_index env b i in
    let d = new_vreg env.fn (mir_ty e.ty) in
    emit env (Iload (mir_ty e.ty, d, a));
    Ov d
  | Tbin (op, a, b) -> begin
      match ast_cond_of_binop op with
      | Some c ->
        let ta = mir_ty a.ty in
        let oa = lower_expr env a in
        let ob = lower_expr env b in
        let d = new_vreg env.fn I64 in
        emit env (Icmpset (ta, c, d, oa, ob));
        Ov d
      | None ->
        let oa = lower_expr env a in
        let ob = lower_expr env b in
        let d = new_vreg env.fn (mir_ty e.ty) in
        (match mir_ty e.ty with
         | I64 -> emit env (Ibin (ibin_of_binop op, d, oa, ob))
         | F64 | V2d | V4d -> emit env (Ifbin (fbin_of_binop op, d, oa, ob)));
        Ov d
    end
  | Tun (Ast.Neg, a) ->
    let oa = lower_expr env a in
    let d = new_vreg env.fn (mir_ty e.ty) in
    (match mir_ty e.ty with
     | I64 -> emit env (Ibin (Msub, d, Oi 0L, oa))
     | F64 | V2d | V4d -> emit env (Ifbin (FSub, d, Of 0.0, oa)));
    Ov d
  | Tun (Ast.Not, a) ->
    let oa = lower_expr env a in
    let d = new_vreg env.fn I64 in
    emit env (Icmpset (I64, Cond.Eq, d, oa, Oi 0L));
    Ov d
  | Tand _ | Tor _ ->
    (* materialise the boolean via control flow *)
    let d = new_vreg env.fn I64 in
    let bt = new_block env.fn in
    let bf = new_block env.fn in
    let join = new_block env.fn in
    lower_cond env e bt.bid bf.bid;
    start_block env bt;
    emit env (Imov (d, Oi 1L));
    set_term env (Tbr join.bid);
    start_block env bf;
    emit env (Imov (d, Oi 0L));
    set_term env (Tbr join.bid);
    start_block env join;
    Ov d
  | Tcast_i2f a ->
    let oa = lower_expr env a in
    let d = new_vreg env.fn F64 in
    emit env (Icvt_i2f (d, oa));
    Ov d
  | Tcast_f2i a ->
    let oa = lower_expr env a in
    let d = new_vreg env.fn I64 in
    emit env (Icvt_f2i (d, oa));
    Ov d
  | Tcall (_, name, args) ->
    let oargs = List.map (lower_expr env) args in
    let d = new_vreg env.fn (mir_ty e.ty) in
    emit env (Icall (name, oargs, Some d));
    Ov d

(* lower a condition, branching to [bt]/[bf] *)
and lower_cond env (e : texpr) bt bf =
  match e.node with
  | Tbin (op, a, b) when ast_cond_of_binop op <> None ->
    let c = Option.get (ast_cond_of_binop op) in
    let ta = mir_ty a.ty in
    let oa = lower_expr env a in
    let ob = lower_expr env b in
    set_term env (Tcbr (ta, c, oa, ob, bt, bf))
  | Tand (a, b) ->
    let mid = new_block env.fn in
    lower_cond env a mid.bid bf;
    start_block env mid;
    lower_cond env b bt bf
  | Tor (a, b) ->
    let mid = new_block env.fn in
    lower_cond env a bt mid.bid;
    start_block env mid;
    lower_cond env b bt bf
  | Tun (Ast.Not, a) -> lower_cond env a bf bt
  | _ ->
    let o = lower_expr env e in
    set_term env (Tcbr (I64, Cond.Ne, o, Oi 0L, bt, bf))

let lower_lvalue_store env (lv : tlvalue) (v : operand) =
  match lv with
  | TLvar (Vlocal, name, _) -> begin
      match Hashtbl.find_opt env.locals name with
      | Some d -> emit env (Imov (d, v))
      | None -> errf "lower: unbound local %s" name
    end
  | TLvar (Vglobal, name, ty) ->
    emit env
      (Istore (mir_ty ty,
               { abase = None; aindex = None; ascale = 1;
                 adisp = env.g.addr_of_global name }, v))
  | TLvar (Vglobal_array, name, _) -> errf "cannot assign to array %s" name
  | TLindex (b, i, ty) ->
    let a = lower_index env b i in
    emit env (Istore (mir_ty ty, a, v))

(* names assigned anywhere in a statement list (for invariance checks) *)
let rec assigned_names stmts =
  List.concat_map
    (function
      | TSassign (TLvar (_, n, _), _) -> [ n ]
      | TSassign (TLindex _, _) -> []
      | TSdecl (_, n, _) -> [ n ]
      | TSif (_, a, b) -> assigned_names a @ assigned_names b
      | TSfor (i, _, s, b) ->
        (match i with Some s' -> assigned_names [ s' ] | None -> [])
        @ (match s with Some s' -> assigned_names [ s' ] | None -> [])
        @ assigned_names b
      | TSwhile (_, b) -> assigned_names b
      | TSbreak | TSreturn _ | TSexpr _ -> [])
    stmts

let rec stmt_has_call_or_control stmts =
  List.exists
    (function
      | TSif _ | TSfor _ | TSwhile _ | TSbreak | TSreturn _ -> true
      | TSexpr e | TSassign (_, e) -> expr_has_call e
      | TSdecl (_, _, Some e) -> expr_has_call e
      | TSdecl (_, _, None) -> false)
    stmts

and expr_has_call (e : texpr) =
  match e.node with
  | Tcall _ -> true
  | Tint_lit _ | Tfloat_lit _ | Tvar _ -> false
  | Tindex (a, b) | Tbin (_, a, b) | Tand (a, b) | Tor (a, b) ->
    expr_has_call a || expr_has_call b
  | Tun (_, a) | Tcast_i2f a | Tcast_f2i a -> expr_has_call a

let rec lower_stmt env (s : tstmt) =
  match s with
  | TSdecl (ty, name, init) ->
    let v = new_vreg env.fn (mir_ty ty) in
    Hashtbl.replace env.locals name v;
    (match init with
     | Some e ->
       let o = lower_expr env e in
       emit env (Imov (v, o))
     | None -> ())
  | TSassign (lv, e) ->
    let o = lower_expr env e in
    lower_lvalue_store env lv o
  | TSexpr e -> begin
      (* evaluate for side effects; drop pure results *)
      match e.node with
      | Tcall (_, name, args) ->
        let oargs = List.map (lower_expr env) args in
        emit env (Icall (name, oargs, None))
      | _ -> ignore (lower_expr env e)
    end
  | TSreturn e ->
    let o = Option.map (lower_expr env) e in
    set_term env (Tret o);
    start_block env (new_block env.fn)  (* unreachable continuation *)
  | TSbreak -> begin
      match env.break_targets with
      | target :: _ ->
        set_term env (Tbr target);
        start_block env (new_block env.fn)
      | [] -> errf "break outside loop"
    end
  | TSif (c, t, f) ->
    let bt = new_block env.fn in
    let bf = new_block env.fn in
    let join = new_block env.fn in
    lower_cond env c bt.bid bf.bid;
    start_block env bt;
    List.iter (lower_stmt env) t;
    set_term env (Tbr join.bid);
    start_block env bf;
    List.iter (lower_stmt env) f;
    set_term env (Tbr join.bid);
    start_block env join
  | TSwhile (c, body) ->
    let header = new_block env.fn in
    let bbody = new_block env.fn in
    let exit = new_block env.fn in
    set_term env (Tbr header.bid);
    start_block env header;
    lower_cond env c bbody.bid exit.bid;
    env.break_targets <- exit.bid :: env.break_targets;
    start_block env bbody;
    List.iter (lower_stmt env) body;
    set_term env (Tbr header.bid);
    env.break_targets <- List.tl env.break_targets;
    start_block env exit
  | TSfor (init, cond, step, body) ->
    let preheader = env.cur in
    (match init with Some s -> lower_stmt env s | None -> ());
    let header = new_block env.fn in
    let bbody = new_block env.fn in
    let latch = new_block env.fn in
    let exit = new_block env.fn in
    set_term env (Tbr header.bid);
    (* loop-summary detection before lowering mutates anything *)
    let iv_info =
      match init, cond, step with
      | Some (TSdecl (Ast.Tint, iname, Some ie)
             | TSassign (TLvar (Vlocal, iname, Ast.Tint), ie)),
        Some { node = Tbin (cop, { node = Tvar (Vlocal, cn); _ }, bound); _ },
        Some (TSassign
                (TLvar (Vlocal, sn, Ast.Tint),
                 { node =
                     Tbin ((Ast.Add | Ast.Sub) as sop,
                           { node = Tvar (Vlocal, sn2); _ },
                           { node = Tint_lit k; _ });
                   _ }))
        when String.equal iname cn && String.equal iname sn
             && String.equal iname sn2 && ast_cond_of_binop cop <> None ->
        let assigned = assigned_names body in
        let bound_invariant =
          match bound.node with
          | Tint_lit _ -> true
          | Tvar (Vlocal, bn) ->
            (not (List.mem bn assigned)) && not (String.equal bn iname)
          | _ -> false
        in
        let iv_assigned_in_body = List.mem iname assigned in
        if iv_assigned_in_body then None
        else
          Some
            ( iname, ie, Option.get (ast_cond_of_binop cop), bound,
              (match sop with Ast.Add -> k | _ -> Int64.neg k),
              bound_invariant )
      | _ -> None
    in
    (* lower the header condition *)
    start_block env header;
    (match cond with
     | Some c -> lower_cond env c bbody.bid exit.bid
     | None -> set_term env (Tbr bbody.bid));
    env.break_targets <- exit.bid :: env.break_targets;
    start_block env bbody;
    List.iter (lower_stmt env) body;
    let body_last = env.cur in
    set_term env (Tbr latch.bid);
    start_block env latch;
    (match step with Some s -> lower_stmt env s | None -> ());
    set_term env (Tbr header.bid);
    env.break_targets <- List.tl env.break_targets;
    (* record the loop summary *)
    let body_blocks =
      (* blocks created between bbody and latch *)
      let ids = List.map (fun b -> b.bid) env.fn.blocks in
      List.filter (fun id -> id >= bbody.bid && id < latch.bid) ids
    in
    let simple =
      (not (stmt_has_call_or_control body))
      && body_last.bid = bbody.bid
      && List.length body_blocks = 1
    in
    (match iv_info with
     | Some (iname, _ie, cop, bound, step_k, bound_inv) ->
       let iv = Hashtbl.find_opt env.locals iname in
       let bound_op =
         if not bound_inv then None
         else
           match bound.node with
           | Tint_lit v -> Some (Oi v)
           | Tvar (Vlocal, bn) ->
             Option.map (fun v -> Ov v) (Hashtbl.find_opt env.locals bn)
           | _ -> None
       in
       env.fn.loops <-
         env.fn.loops
         @ [
             {
               l_header = header.bid;
               l_body = body_blocks;
               l_latch = latch.bid;
               l_exit = exit.bid;
               l_preheader = preheader.bid;
               l_iv = iv;
               l_init = None;
               l_bound = bound_op;
               l_step = step_k;
               l_cond = cop;
               l_simple = simple;
               l_live = ();
             };
           ]
     | None -> ());
    start_block env exit

let lower_fn genv (tf : tfunc) =
  let fn =
    {
      name = tf.tf_name;
      params = [];
      ret_ty = Option.map mir_ty tf.tf_ret;
      blocks = [];
      nv = 0;
      vtypes = Array.make 16 I64;
      entry = 0;
      loops = [];
      next_bid = 0;
    }
  in
  let entry = new_block fn in
  fn.entry <- entry.bid;
  let locals = Hashtbl.create 16 in
  let params =
    List.map
      (fun (ty, name) ->
         let v = new_vreg fn (mir_ty ty) in
         Hashtbl.replace locals name v;
         (mir_ty ty, name, v))
      tf.tf_params
  in
  let fn = { fn with params } in
  let env = { g = genv; fn; locals; cur = entry; break_targets = [] } in
  List.iter (lower_stmt env) tf.tf_body;
  (* implicit return: the zero of the function's return type *)
  (match env.cur.term, fn.ret_ty with
   | Tret None, Some (F64 | V2d | V4d) -> env.cur.term <- Tret (Some (Of 0.0))
   | Tret None, Some I64 -> env.cur.term <- Tret (Some (Oi 0L))
   | _ -> ());
  fn

(** Lay out globals and lower every function. *)
let lower (tp : tprogram) : unit_ =
  let unit_ =
    { fns = []; global_addrs = []; data_init = []; bss_bytes = 0;
      externs_used = List.map (fun e -> e.Ast.ename) tp.texterns }
  in
  let data_off = ref 0 in
  let bss_off = ref 0 in
  List.iter
    (function
      | Ast.Gscalar (ty, name, init) ->
        let addr = Layout.data_base + !data_off in
        data_off := !data_off + 8;
        unit_.global_addrs <- (name, addr) :: unit_.global_addrs;
        let v =
          match init, ty with
          | Some (Ast.Eint v), _ -> v
          | Some (Ast.Efloat f), _ -> Int64.bits_of_float f
          | None, Ast.Tdouble -> Int64.bits_of_float 0.0
          | None, _ -> 0L
          | Some _, _ -> errf "global initialisers must be literals"
        in
        unit_.data_init <- (addr, v) :: unit_.data_init
      | Ast.Garray (_, name, n) ->
        let addr = Layout.bss_base + !bss_off in
        bss_off := !bss_off + (n * elem_size);
        unit_.global_addrs <- (name, addr) :: unit_.global_addrs)
    tp.tglobals;
  unit_.bss_bytes <- !bss_off;
  let addr_of_global name =
    match List.assoc_opt name unit_.global_addrs with
    | Some a -> a
    | None -> errf "unknown global %s" name
  in
  let genv = { unit_; addr_of_global } in
  unit_.fns <- List.map (lower_fn genv) tp.tfuncs;
  unit_
