(** Shared compiler-option types (broken out to avoid cycles between
    the driver and the loop passes). *)

(** Compiler personality being emulated. [Gcc] unrolls hot simple loops
    ×2 and auto-parallelises conservatively; [Icc] unrolls ×4 and
    parallelises more aggressively (mirroring the paper's gcc/icc
    baselines in Fig. 11/12). *)
type vendor = Gcc | Icc
