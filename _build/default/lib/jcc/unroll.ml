(** Loop unrolling (O3). The gcc profile unrolls simple counted loops
    by 2, the icc profile by 4, leaving the original loop as the
    remainder — producing exactly the "two different copies of unrolled
    loops in the same outer loop" shape that complicates binary
    analysis (§III-F). *)

open Mir

module IS = Set.Make (Int)

(* vregs used before defined within a block: these are live-in
   accumulators and must keep their identity across unrolled copies *)
let live_in_defs b =
  let seen_def = ref IS.empty in
  let livein = ref IS.empty in
  List.iter
    (fun i ->
       List.iter
         (fun u -> if not (IS.mem u !seen_def) then livein := IS.add u !livein)
         (inst_uses i);
       List.iter (fun d -> seen_def := IS.add d !seen_def) (inst_defs i))
    b.insts;
  !livein

let rename_operand map = function
  | Ov v -> (match Hashtbl.find_opt map v with Some v' -> Ov v' | None -> Ov v)
  | o -> o

let rename_addr map a =
  {
    a with
    abase = Option.map (rename_operand map) a.abase;
    aindex = Option.map (rename_operand map) a.aindex;
  }

let rename_inst fn map keep i =
  let r = rename_operand map in
  let ra = rename_addr map in
  let fresh d =
    if IS.mem d keep then d
    else begin
      match Hashtbl.find_opt map d with
      | Some d' -> d'
      | None ->
        let d' = new_vreg fn (vtype fn d) in
        Hashtbl.replace map d d';
        d'
    end
  in
  match i with
  | Ibin (op, d, a, b) ->
    let a = r a and b = r b in
    Ibin (op, fresh d, a, b)
  | Ifbin (op, d, a, b) ->
    let a = r a and b = r b in
    Ifbin (op, fresh d, a, b)
  | Imov (d, a) ->
    let a = r a in
    Imov (fresh d, a)
  | Icmpset (t, c, d, a, b) ->
    let a = r a and b = r b in
    Icmpset (t, c, fresh d, a, b)
  | Iload (t, d, a) ->
    let a = ra a in
    Iload (t, fresh d, a)
  | Istore (t, a, v) -> Istore (t, ra a, r v)
  | Icvt_i2f (d, a) ->
    let a = r a in
    Icvt_i2f (fresh d, a)
  | Icvt_f2i (d, a) ->
    let a = r a in
    Icvt_f2i (fresh d, a)
  | Icall (f, args, d) ->
    let args = List.map r args in
    Icall (f, args, Option.map fresh d)
  | Ipar_for (f, lo, hi, t) -> Ipar_for (f, r lo, r hi, t)
  | Ivload (w, d, a) ->
    let a = ra a in
    Ivload (w, fresh d, a)
  | Ivstore (w, a, v) ->
    Ivstore (w, rename_addr map a,
             match Hashtbl.find_opt map v with Some v' -> v' | None -> v)
  | Ivbin (w, op, d, a, b) ->
    let a' = match Hashtbl.find_opt map a with Some x -> x | None -> a in
    let b' = match Hashtbl.find_opt map b with Some x -> x | None -> b in
    Ivbin (w, op, fresh d, a', b')
  | Ivbcast (w, d, a) ->
    let a = r a in
    Ivbcast (w, fresh d, a)

let factor = function Jcc_types.Gcc -> 2 | Jcc_types.Icc -> 4

let unroll_loop fn l u =
  match l.l_iv, l.l_bound with
  | Some iv, Some bound when l.l_simple && l.l_body <> [] ->
    let body = block fn (List.hd l.l_body) in
    let keep = IS.add iv (live_in_defs body) in
    let step = l.l_step in
    (* uheader: continue while (iv + (u-1)*step) cond bound *)
    let uheader = new_block fn in
    let ubody = new_block fn in
    let ulatch = new_block fn in
    let t = new_vreg fn I64 in
    uheader.insts <-
      [ Ibin (Madd, t, Ov iv, Oi (Int64.mul (Int64.of_int (u - 1)) step)) ];
    uheader.term <- Tcbr (I64, l.l_cond, Ov t, bound, ubody.bid, l.l_header);
    (* ubody: u copies; copy k>0 sees iv replaced by iv + k*step *)
    let insts = ref [] in
    for k = 0 to u - 1 do
      let map = Hashtbl.create 16 in
      if k > 0 then begin
        let ivk = new_vreg fn I64 in
        insts :=
          !insts @ [ Ibin (Madd, ivk, Ov iv, Oi (Int64.mul (Int64.of_int k) step)) ];
        Hashtbl.replace map iv ivk
      end;
      let keep_k = if k = 0 then keep else IS.remove iv keep in
      insts := !insts @ List.map (rename_inst fn map keep_k) body.insts
    done;
    ubody.insts <- !insts;
    ubody.term <- Tbr ulatch.bid;
    ulatch.insts <- [ Ibin (Madd, iv, Ov iv, Oi (Int64.mul (Int64.of_int u) step)) ];
    ulatch.term <- Tbr uheader.bid;
    (* retarget the preheader to the unrolled loop *)
    let pre = block fn l.l_preheader in
    let retarget id = if id = l.l_header then uheader.bid else id in
    pre.term <-
      (match pre.term with
       | Tbr x -> Tbr (retarget x)
       | Tcbr (t, c, a, b, x, y) -> Tcbr (t, c, a, b, retarget x, retarget y)
       | t -> t)
  | _ -> ()

(* iv replacement inside copies: uses of iv must map to ivk, but the iv
   def itself (if any) stays out of the body by construction *)

let run ~vendor fn =
  let u = factor vendor in
  List.iter
    (fun l -> if l.l_simple then unroll_loop fn l u)
    fn.loops;
  (* unrolled loops are no longer described by their summaries *)
  fn.loops <- List.filter (fun l -> not l.l_simple) fn.loops
