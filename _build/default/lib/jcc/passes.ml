(** Scalar optimisation passes over MIR: constant folding, block-local
    constant/copy propagation, common-subexpression elimination,
    strength reduction, addressing-mode folding and dead-code
    elimination. All are conservative on the non-SSA MIR: propagation
    facts are block-local; DCE is global. *)

open Mir

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

let fold_ibin op (a : int64) (b : int64) : int64 option =
  match op with
  | Madd -> Some (Int64.add a b)
  | Msub -> Some (Int64.sub a b)
  | Mmul -> Some (Int64.mul a b)
  | Mdiv -> if Int64.equal b 0L then None else Some (Int64.div a b)
  | Mmod -> if Int64.equal b 0L then None else Some (Int64.rem a b)
  | Mand -> Some (Int64.logand a b)
  | Mor -> Some (Int64.logor a b)
  | Mxor -> Some (Int64.logxor a b)
  | Mshl -> Some (Int64.shift_left a (Int64.to_int b land 63))
  | Mshr -> Some (Int64.shift_right a (Int64.to_int b land 63))

let fold_fbin op a b =
  match op with
  | FAdd -> a +. b
  | FSub -> a -. b
  | FMul -> a *. b
  | FDiv -> a /. b

let eval_icond c (a : int64) (b : int64) =
  let open Janus_vx.Cond in
  match c with
  | Eq -> Int64.equal a b
  | Ne -> not (Int64.equal a b)
  | Lt -> Int64.compare a b < 0
  | Le -> Int64.compare a b <= 0
  | Gt -> Int64.compare a b > 0
  | Ge -> Int64.compare a b >= 0
  | Ult -> Int64.unsigned_compare a b < 0
  | Ule -> Int64.unsigned_compare a b <= 0
  | Ugt -> Int64.unsigned_compare a b > 0
  | Uge -> Int64.unsigned_compare a b >= 0
  | S -> Int64.compare a b < 0
  | Ns -> Int64.compare a b >= 0

let fold_inst = function
  | Ibin (op, d, Oi a, Oi b) -> begin
      match fold_ibin op a b with
      | Some v -> Imov (d, Oi v)
      | None -> Ibin (op, d, Oi a, Oi b)
    end
  | Ifbin (op, d, Of a, Of b) -> Imov (d, Of (fold_fbin op a b))
  | Icmpset (I64, c, d, Oi a, Oi b) ->
    Imov (d, Oi (if eval_icond c a b then 1L else 0L))
  | Icvt_i2f (d, Oi a) -> Imov (d, Of (Int64.to_float a))
  | Icvt_f2i (d, Of a) -> Imov (d, Oi (Int64.of_float a))
  (* algebraic identities *)
  | Ibin (Madd, d, a, Oi 0L) | Ibin (Msub, d, a, Oi 0L)
  | Ibin (Mmul, d, a, Oi 1L) | Ibin (Mdiv, d, a, Oi 1L) -> Imov (d, a)
  | Ibin (Mmul, d, _, Oi 0L) -> Imov (d, Oi 0L)
  | Ifbin (FMul, d, a, Of 1.0) | Ifbin (FDiv, d, a, Of 1.0)
  | Ifbin (FAdd, d, a, Of 0.0) | Ifbin (FSub, d, a, Of 0.0) -> Imov (d, a)
  | i -> i

(* strength reduction: multiply / divide by powers of two *)
let log2_of (v : int64) =
  let rec go k =
    if k > 62 then None
    else if Int64.equal (Int64.shift_left 1L k) v then Some k
    else go (k + 1)
  in
  if Int64.compare v 1L > 0 then go 1 else None

let strength_reduce = function
  | Ibin (Mmul, d, a, Oi v) as i -> begin
      match log2_of v with
      | Some k -> Ibin (Mshl, d, a, Oi (Int64.of_int k))
      | None -> i
    end
  | Ibin (Mmul, d, Oi v, a) as i -> begin
      match log2_of v with
      | Some k -> Ibin (Mshl, d, a, Oi (Int64.of_int k))
      | None -> i
    end
  | i -> i

(* ------------------------------------------------------------------ *)
(* Block-local constant / copy propagation                             *)
(* ------------------------------------------------------------------ *)

let subst_operand env = function
  | Ov v as o -> (match Hashtbl.find_opt env v with Some o' -> o' | None -> o)
  | o -> o

let subst_addr env a =
  let fold_index a =
    match a.aindex with
    | Some (Oi k) ->
      { a with aindex = None; adisp = a.adisp + (Int64.to_int k * a.ascale) }
    | _ -> a
  in
  let fold_base a =
    match a.abase with
    | Some (Oi k) -> { a with abase = None; adisp = a.adisp + Int64.to_int k }
    | _ -> a
  in
  fold_base
    (fold_index
       {
         a with
         abase = Option.map (subst_operand env) a.abase;
         aindex = Option.map (subst_operand env) a.aindex;
       })

let subst_inst env i =
  let s = subst_operand env in
  match i with
  | Ibin (op, d, a, b) -> Ibin (op, d, s a, s b)
  | Ifbin (op, d, a, b) -> Ifbin (op, d, s a, s b)
  | Imov (d, a) -> Imov (d, s a)
  | Icmpset (t, c, d, a, b) -> Icmpset (t, c, d, s a, s b)
  | Iload (t, d, a) -> Iload (t, d, subst_addr env a)
  | Istore (t, a, v) -> Istore (t, subst_addr env a, s v)
  | Icvt_i2f (d, a) -> Icvt_i2f (d, s a)
  | Icvt_f2i (d, a) -> Icvt_f2i (d, s a)
  | Icall (f, args, d) -> Icall (f, List.map s args, d)
  | Ipar_for (f, lo, hi, t) -> Ipar_for (f, s lo, s hi, t)
  | Ivload (w, d, a) -> Ivload (w, d, subst_addr env a)
  | Ivstore (w, a, v) -> Ivstore (w, subst_addr env a, v)
  | Ivbin _ | Ivbcast _ -> (match i with Ivbcast (w, d, a) -> Ivbcast (w, d, s a) | _ -> i)


(* drop any fact mentioning a redefined vreg *)
let kill_mentions env v =
  let doomed =
    Hashtbl.fold
      (fun k o acc -> match o with Ov u when u = v -> k :: acc | _ -> acc)
      env []
  in
  List.iter (Hashtbl.remove env) doomed

let propagate_block fn b =
  ignore fn;
  let env : (int, operand) Hashtbl.t = Hashtbl.create 16 in
  let insts =
    List.map
      (fun i ->
         let i = subst_inst env i in
         let i = fold_inst i in
         (* record new facts / kill stale ones *)
         List.iter
           (fun d ->
              Hashtbl.remove env d;
              kill_mentions env d)
           (inst_defs i);
         (match i with
          | Imov (d, ((Oi _ | Of _ | Ov _) as src)) ->
            (match src with
             | Ov s when s = d -> ()
             | _ -> Hashtbl.replace env d src)
          | _ -> ());
         i)
      b.insts
  in
  b.insts <- insts;
  b.term <-
    (match b.term with
     | Tcbr (t, c, a, bb, x, y) ->
       let a = subst_operand env a and bb = subst_operand env bb in
       (match a, bb with
        | Oi va, Oi vb when t = I64 ->
          if eval_icond c va vb then Tbr x else Tbr y
        | _ -> Tcbr (t, c, a, bb, x, y))
     | Tret (Some o) -> Tret (Some (subst_operand env o))
     | t -> t)

(* ------------------------------------------------------------------ *)
(* Block-local CSE                                                     *)
(* ------------------------------------------------------------------ *)

type key =
  | Kbin of ibin * operand * operand
  | Kfbin of fbin * operand * operand
  | Kload of ty * addr
  | Kcmp of ty * Janus_vx.Cond.t * operand * operand
  | Kcvt_i2f of operand
  | Kcvt_f2i of operand

let key_of = function
  | Ibin (op, _, a, b) -> Some (Kbin (op, a, b))
  | Ifbin (op, _, a, b) -> Some (Kfbin (op, a, b))
  | Iload (t, _, a) -> Some (Kload (t, a))
  | Icmpset (t, c, _, a, b) -> Some (Kcmp (t, c, a, b))
  | Icvt_i2f (_, a) -> Some (Kcvt_i2f a)
  | Icvt_f2i (_, a) -> Some (Kcvt_f2i a)
  | _ -> None

let key_mentions v = function
  | Kbin (_, a, b) | Kfbin (_, a, b) | Kcmp (_, _, a, b) ->
    a = Ov v || b = Ov v
  | Kload (_, a) -> a.abase = Some (Ov v) || a.aindex = Some (Ov v)
  | Kcvt_i2f a | Kcvt_f2i a -> a = Ov v

let cse_block b =
  let table : (key, int) Hashtbl.t = Hashtbl.create 16 in
  let insts =
    List.map
      (fun i ->
         let replacement =
           match key_of i with
           | Some k -> begin
               match Hashtbl.find_opt table k, inst_defs i with
               | Some src, [ d ] -> Some (Imov (d, Ov src))
               | _ -> None
             end
           | None -> None
         in
         let i = match replacement with Some r -> r | None -> i in
         (* invalidate facts killed by this instruction *)
         (match i with
          | Istore _ | Icall _ | Ipar_for _ | Ivstore _ ->
            (* memory changed: drop loads *)
            let doomed =
              Hashtbl.fold
                (fun k _ acc ->
                   match k with Kload _ -> k :: acc | _ -> acc)
                table []
            in
            List.iter (Hashtbl.remove table) doomed
          | _ -> ());
         List.iter
           (fun d ->
              let doomed =
                Hashtbl.fold
                  (fun k src acc ->
                     if src = d || key_mentions d k then k :: acc else acc)
                  table []
              in
              List.iter (Hashtbl.remove table) doomed)
           (inst_defs i);
         (match key_of i, inst_defs i with
          | Some k, [ d ] -> Hashtbl.replace table k d
          | _ -> ());
         i)
      b.insts
  in
  b.insts <- insts

(* ------------------------------------------------------------------ *)
(* Dead-code elimination (global)                                      *)
(* ------------------------------------------------------------------ *)

let dce fn =
  let changed = ref true in
  while !changed do
    changed := false;
    let used = Hashtbl.create 64 in
    let mark v = Hashtbl.replace used v () in
    List.iter
      (fun b ->
         List.iter (fun i -> List.iter mark (inst_uses i)) b.insts;
         List.iter mark (term_uses b.term))
      fn.blocks;
    List.iter
      (fun b ->
         let insts =
           List.filter
             (fun i ->
                has_side_effect i
                || List.exists (fun d -> Hashtbl.mem used d) (inst_defs i)
                ||
                match inst_defs i with
                | [] -> true  (* defines nothing, keep (no pure such insts) *)
                | _ -> false)
             b.insts
         in
         if List.length insts <> List.length b.insts then changed := true;
         b.insts <- insts)
      fn.blocks
  done

(* remove blocks unreachable from the entry *)
let prune_unreachable fn =
  let reachable = Hashtbl.create 16 in
  let rec visit id =
    if not (Hashtbl.mem reachable id) then begin
      Hashtbl.replace reachable id ();
      match List.find_opt (fun b -> b.bid = id) fn.blocks with
      | Some b -> List.iter visit (succs b.term)
      | None -> ()
    end
  in
  visit fn.entry;
  fn.blocks <- List.filter (fun b -> Hashtbl.mem reachable b.bid) fn.blocks;
  fn.loops <-
    List.filter
      (fun l ->
         Hashtbl.mem reachable l.l_header && Hashtbl.mem reachable l.l_latch)
      fn.loops

(* ------------------------------------------------------------------ *)
(* Pass driver                                                         *)
(* ------------------------------------------------------------------ *)

let run_scalar ?(strength = false) fn =
  for _ = 1 to 3 do
    List.iter
      (fun b ->
         propagate_block fn b;
         if strength then b.insts <- List.map strength_reduce b.insts;
         cse_block b)
      fn.blocks;
    dce fn;
    prune_unreachable fn
  done
