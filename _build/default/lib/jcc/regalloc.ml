(** Linear-scan register allocation over MIR.

    Guest ABI (deliberately Win64-flavoured for FP): integer pool
    registers RBX, R12-R15 are callee-saved; FP pool registers
    XMM8-XMM13 are callee-saved in this ABI, so values may stay in
    registers across calls. R10/R11 and XMM15 are reserved as
    code-generation scratch; argument registers are excluded from
    allocation and shuffled explicitly at call sites. *)

open Janus_vx
open Mir

type location =
  | Lgp of Reg.gp
  | Lfp of Reg.fp
  | Lslot of int   (* frame slot index; byte offset assigned by emit *)

type assignment = {
  locs : location array;         (* vreg -> location *)
  nslots : int;                  (* total spill slots (8-byte units) *)
  used_gp : Reg.gp list;         (* callee-saved GP registers touched *)
  used_fp : Reg.fp list;
}

let gp_pool = [ Reg.RBX; Reg.R12; Reg.R13; Reg.R14; Reg.R15 ]
let fp_pool = List.map (fun i -> Reg.XMM i) [ 8; 9; 10; 11; 12; 13 ]

let is_vector_ty = function V2d | V4d -> true | I64 | F64 -> false

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)
(* ------------------------------------------------------------------ *)

module IS = Set.Make (Int)

let block_gen_kill b =
  (* backwards within a block: gen = used before defined *)
  let gen = ref IS.empty and kill = ref IS.empty in
  let handle_uses us =
    List.iter (fun v -> if not (IS.mem v !kill) then gen := IS.add v !gen) us
  in
  List.iter
    (fun i ->
       handle_uses (inst_uses i);
       List.iter (fun d -> kill := IS.add d !kill) (inst_defs i))
    b.insts;
  handle_uses (term_uses b.term);
  (!gen, !kill)

(* live-in per block, iterated to fixpoint *)
let liveness fn =
  let gk = List.map (fun b -> (b.bid, block_gen_kill b)) fn.blocks in
  let live_in = Hashtbl.create 16 in
  let live_out = Hashtbl.create 16 in
  List.iter
    (fun b ->
       Hashtbl.replace live_in b.bid IS.empty;
       Hashtbl.replace live_out b.bid IS.empty)
    fn.blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
         let out =
           List.fold_left
             (fun acc s ->
                IS.union acc
                  (try Hashtbl.find live_in s with Not_found -> IS.empty))
             IS.empty (succs b.term)
         in
         let gen, kill = List.assoc b.bid gk in
         let inn = IS.union gen (IS.diff out kill) in
         if not (IS.equal inn (Hashtbl.find live_in b.bid)) then begin
           changed := true;
           Hashtbl.replace live_in b.bid inn
         end;
         Hashtbl.replace live_out b.bid out)
      (List.rev fn.blocks)
  done;
  (live_in, live_out)

(* ------------------------------------------------------------------ *)
(* Intervals                                                           *)
(* ------------------------------------------------------------------ *)

type interval = { v : int; mutable istart : int; mutable iend : int }

let intervals fn =
  let _live_in, live_out = liveness fn in
  let tbl : (int, interval) Hashtbl.t = Hashtbl.create 32 in
  let touch v p =
    match Hashtbl.find_opt tbl v with
    | Some iv ->
      if p < iv.istart then iv.istart <- p;
      if p > iv.iend then iv.iend <- p
    | None -> Hashtbl.replace tbl v { v; istart = p; iend = p }
  in
  let pos = ref 0 in
  (* parameters are defined at position 0 *)
  List.iter (fun (_, _, v) -> touch v 0) fn.params;
  List.iter
    (fun b ->
       let bstart = !pos in
       List.iter
         (fun i ->
            incr pos;
            List.iter (fun u -> touch u !pos) (inst_uses i);
            List.iter (fun d -> touch d !pos) (inst_defs i))
         b.insts;
       incr pos;
       List.iter (fun u -> touch u !pos) (term_uses b.term);
       let bend = !pos in
       (* anything live-out of the block spans the whole block *)
       IS.iter
         (fun v ->
            touch v bstart;
            touch v bend)
         (try Hashtbl.find live_out b.bid with Not_found -> IS.empty))
    fn.blocks;
  Hashtbl.fold (fun _ iv acc -> iv :: acc) tbl []
  |> List.sort (fun a b -> compare (a.istart, a.v) (b.istart, b.v))

(* ------------------------------------------------------------------ *)
(* Linear scan                                                         *)
(* ------------------------------------------------------------------ *)

type klass = Kgp | Kfp

let klass_of_ty = function I64 -> Kgp | F64 | V2d | V4d -> Kfp

(** [allocate ~pool_gp ~pool_fp fn] assigns each vreg a register or a
    spill slot. Empty pools model -O0 (everything in memory). *)
let allocate ?(pool_gp = gp_pool) ?(pool_fp = fp_pool) fn =
  let locs = Array.make (max fn.nv 1) (Lslot (-1)) in
  let ivs = intervals fn in
  let free_gp = ref pool_gp in
  let free_fp = ref pool_fp in
  let active : (interval * klass * location) list ref = ref [] in
  let next_slot = ref 0 in
  let used_gp = ref [] and used_fp = ref [] in
  let slot_bytes v = if is_vector_ty (vtype fn v) then 4 else 1 in
  let new_slot v =
    let s = !next_slot in
    next_slot := !next_slot + slot_bytes v;
    Lslot s
  in
  let release (_, k, loc) =
    match k, loc with
    | Kgp, Lgp r -> free_gp := r :: !free_gp
    | Kfp, Lfp r -> free_fp := r :: !free_fp
    | _ -> ()
  in
  let expire p =
    let expired, alive = List.partition (fun (iv, _, _) -> iv.iend < p) !active in
    List.iter release expired;
    active := alive
  in
  let spill_or_steal iv k =
    (* no free register: spill the same-class active interval ending last *)
    let same_class = List.filter (fun (_, k', _) -> k' = k) !active in
    let victim =
      List.fold_left
        (fun best ((i, _, _) as cand) ->
           match best with
           | Some ((bi, _, _) as b) ->
             if i.iend > bi.iend then Some cand else Some b
           | None -> Some cand)
        None same_class
    in
    match victim with
    | Some ((viv, _, vloc) as entry) when viv.iend > iv.iend ->
      locs.(iv.v) <- vloc;
      locs.(viv.v) <- new_slot viv.v;
      active := (iv, k, vloc) :: List.filter (fun e -> e != entry) !active
    | _ -> locs.(iv.v) <- new_slot iv.v
  in
  List.iter
    (fun iv ->
       expire iv.istart;
       let k = klass_of_ty (vtype fn iv.v) in
       match k with
       | Kgp -> begin
           match !free_gp with
           | r :: rest ->
             free_gp := rest;
             locs.(iv.v) <- Lgp r;
             if not (List.mem r !used_gp) then used_gp := r :: !used_gp;
             active := (iv, Kgp, Lgp r) :: !active
           | [] -> spill_or_steal iv Kgp
         end
       | Kfp -> begin
           match !free_fp with
           | r :: rest ->
             free_fp := rest;
             locs.(iv.v) <- Lfp r;
             if not (List.mem r !used_fp) then used_fp := r :: !used_fp;
             active := (iv, Kfp, Lfp r) :: !active
           | [] -> spill_or_steal iv Kfp
         end)
    ivs;
  { locs; nslots = !next_slot; used_gp = !used_gp; used_fp = !used_fp }
