(** Shared compiler-option types (broken out to avoid cycles between
    the driver and the loop passes). *)

type vendor = Gcc | Icc
