(** Compiler driver: source -> JX image.

    Options mirror the paper's compiler matrix (§III-E, §III-F):
    vendor profiles ([Gcc]-like and [Icc]-like), optimisation levels
    O0-O3, [-mavx]-style wider vectorisation, and auto-parallelisation
    ([-ftree-parallelize-loops=N] / [icc -parallel] analogues). *)

type vendor = Jcc_types.vendor = Gcc | Icc

type options = {
  vendor : vendor;
  opt : int;          (* 0..3 *)
  avx : bool;         (* wider vectors + alignment peeling *)
  autopar : int;      (* 0 = off, n = parallelise with n threads *)
}

let default_options = { vendor = Gcc; opt = 3; avx = false; autopar = 0 }

exception Error of string

let compile_unit ?(options = default_options) (src : string) : Mir.unit_ =
  let ast =
    try Parser.parse src with
    | Lexer.Error (m, l) -> raise (Error (Printf.sprintf "lex error line %d: %s" l m))
    | Parser.Error (m, l) ->
      raise (Error (Printf.sprintf "parse error line %d: %s" l m))
  in
  let typed =
    try Sema.check ast with Sema.Error m -> raise (Error ("type error: " ^ m))
  in
  let u = try Lower.lower typed with Lower.Error m -> raise (Error m) in
  (* loop transformations first (they need intact loop summaries) *)
  if options.autopar > 0 then
    Autopar.run ~vendor:options.vendor ~threads:options.autopar u;
  if options.opt >= 3 then begin
    List.iter
      (fun fn ->
         Vectorize.run ~vendor:options.vendor ~avx:options.avx u fn;
         Unroll.run ~vendor:options.vendor fn)
      u.fns
  end;
  (* scalar cleanups *)
  if options.opt >= 1 then
    List.iter (Passes.run_scalar ~strength:(options.opt >= 2)) u.fns;
  u

let compile ?(options = default_options) (src : string) : Janus_vx.Image.t =
  let u = compile_unit ~options src in
  Emit.emit_unit ~o0:(options.opt = 0) u
