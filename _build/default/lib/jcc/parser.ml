(** Recursive-descent parser for the guest language. *)

open Ast

exception Error of string * int  (* message, line *)

type t = {
  toks : (Lexer.token * int) array;
  mutable pos : int;
}

let create src = { toks = Array.of_list (Lexer.all src); pos = 0 }
let peek p = fst p.toks.(p.pos)
let line p = snd p.toks.(p.pos)
let advance p = p.pos <- p.pos + 1

let err p msg = raise (Error (msg, line p))

let expect_punct p s =
  match peek p with
  | Lexer.PUNCT x when String.equal x s -> advance p
  | _ -> err p (Printf.sprintf "expected '%s'" s)

let expect_ident p =
  match peek p with
  | Lexer.IDENT s ->
    advance p;
    s
  | _ -> err p "expected identifier"

let accept_punct p s =
  match peek p with
  | Lexer.PUNCT x when String.equal x s ->
    advance p;
    true
  | _ -> false

let accept_kw p s =
  match peek p with
  | Lexer.KW x when String.equal x s ->
    advance p;
    true
  | _ -> false

let is_type_kw = function
  | Lexer.KW ("int" | "double") -> true
  | _ -> false

(* type := ("int" | "double") "*"* *)
let parse_base_ty p =
  match peek p with
  | Lexer.KW "int" ->
    advance p;
    Tint
  | Lexer.KW "double" ->
    advance p;
    Tdouble
  | _ -> err p "expected type"

let parse_ty p =
  let base = parse_base_ty p in
  let rec stars t = if accept_punct p "*" then stars (Tptr t) else t in
  stars base

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr p = parse_or p

and parse_or p =
  let lhs = ref (parse_and p) in
  while accept_punct p "||" do
    lhs := Ebin (Or, !lhs, parse_and p)
  done;
  !lhs

and parse_and p =
  let lhs = ref (parse_bitor p) in
  while accept_punct p "&&" do
    lhs := Ebin (And, !lhs, parse_bitor p)
  done;
  !lhs

and parse_bitor p =
  let lhs = ref (parse_bitxor p) in
  let rec go () =
    (* careful: '|' only when not '||' (already consumed) *)
    if accept_punct p "|" then begin
      lhs := Ebin (Bor, !lhs, parse_bitxor p);
      go ()
    end
  in
  go ();
  !lhs

and parse_bitxor p =
  let lhs = ref (parse_bitand p) in
  while accept_punct p "^" do
    lhs := Ebin (Bxor, !lhs, parse_bitand p)
  done;
  !lhs

and parse_bitand p =
  let lhs = ref (parse_equality p) in
  while accept_punct p "&" do
    lhs := Ebin (Band, !lhs, parse_equality p)
  done;
  !lhs

and parse_equality p =
  let lhs = ref (parse_relational p) in
  let rec go () =
    if accept_punct p "==" then begin
      lhs := Ebin (Eq, !lhs, parse_relational p);
      go ()
    end
    else if accept_punct p "!=" then begin
      lhs := Ebin (Ne, !lhs, parse_relational p);
      go ()
    end
  in
  go ();
  !lhs

and parse_relational p =
  let lhs = ref (parse_shift p) in
  let rec go () =
    if accept_punct p "<=" then begin
      lhs := Ebin (Le, !lhs, parse_shift p);
      go ()
    end
    else if accept_punct p ">=" then begin
      lhs := Ebin (Ge, !lhs, parse_shift p);
      go ()
    end
    else if accept_punct p "<" then begin
      lhs := Ebin (Lt, !lhs, parse_shift p);
      go ()
    end
    else if accept_punct p ">" then begin
      lhs := Ebin (Gt, !lhs, parse_shift p);
      go ()
    end
  in
  go ();
  !lhs

and parse_shift p =
  let lhs = ref (parse_additive p) in
  let rec go () =
    if accept_punct p "<<" then begin
      lhs := Ebin (Shl, !lhs, parse_additive p);
      go ()
    end
    else if accept_punct p ">>" then begin
      lhs := Ebin (Shr, !lhs, parse_additive p);
      go ()
    end
  in
  go ();
  !lhs

and parse_additive p =
  let lhs = ref (parse_multiplicative p) in
  let rec go () =
    if accept_punct p "+" then begin
      lhs := Ebin (Add, !lhs, parse_multiplicative p);
      go ()
    end
    else if accept_punct p "-" then begin
      lhs := Ebin (Sub, !lhs, parse_multiplicative p);
      go ()
    end
  in
  go ();
  !lhs

and parse_multiplicative p =
  let lhs = ref (parse_unary p) in
  let rec go () =
    if accept_punct p "*" then begin
      lhs := Ebin (Mul, !lhs, parse_unary p);
      go ()
    end
    else if accept_punct p "/" then begin
      lhs := Ebin (Div, !lhs, parse_unary p);
      go ()
    end
    else if accept_punct p "%" then begin
      lhs := Ebin (Mod, !lhs, parse_unary p);
      go ()
    end
  in
  go ();
  !lhs

and parse_unary p =
  if accept_punct p "-" then Eun (Neg, parse_unary p)
  else if accept_punct p "!" then Eun (Not, parse_unary p)
  else if accept_punct p "&" then Eaddr (expect_ident p)
  else if
    (* cast: "(" type ")" unary *)
    (match peek p with
     | Lexer.PUNCT "(" -> is_type_kw (fst p.toks.(p.pos + 1))
     | _ -> false)
  then begin
    expect_punct p "(";
    let ty = parse_ty p in
    expect_punct p ")";
    Ecast (ty, parse_unary p)
  end
  else parse_postfix p

and parse_postfix p =
  let e = ref (parse_primary p) in
  let rec go () =
    if accept_punct p "[" then begin
      let idx = parse_expr p in
      expect_punct p "]";
      e := Eindex (!e, idx);
      go ()
    end
  in
  go ();
  !e

and parse_primary p =
  match peek p with
  | Lexer.INT v ->
    advance p;
    Eint v
  | Lexer.FLOAT v ->
    advance p;
    Efloat v
  | Lexer.IDENT name ->
    advance p;
    if accept_punct p "(" then begin
      let args = ref [] in
      if not (accept_punct p ")") then begin
        args := [ parse_expr p ];
        while accept_punct p "," do
          args := parse_expr p :: !args
        done;
        expect_punct p ")"
      end;
      Ecall (name, List.rev !args)
    end
    else Evar name
  | Lexer.PUNCT "(" ->
    advance p;
    let e = parse_expr p in
    expect_punct p ")";
    e
  | _ -> err p "expected expression"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(* assignment / increment / expression — without trailing ';' *)
let rec parse_simple p =
  if is_type_kw (peek p) then begin
    let ty = parse_ty p in
    let name = expect_ident p in
    let init = if accept_punct p "=" then Some (parse_expr p) else None in
    Sdecl (ty, name, init)
  end
  else begin
    let e = parse_expr p in
    let as_lvalue = function
      | Evar x -> Lvar x
      | Eindex (b, i) -> Lindex (b, i)
      | _ -> err p "invalid assignment target"
    in
    let lval_expr = function
      | Lvar x -> Evar x
      | Lindex (b, i) -> Eindex (b, i)
    in
    if accept_punct p "=" then Sassign (as_lvalue e, parse_expr p)
    else if accept_punct p "+=" then
      let l = as_lvalue e in
      Sassign (l, Ebin (Add, lval_expr l, parse_expr p))
    else if accept_punct p "-=" then
      let l = as_lvalue e in
      Sassign (l, Ebin (Sub, lval_expr l, parse_expr p))
    else if accept_punct p "*=" then
      let l = as_lvalue e in
      Sassign (l, Ebin (Mul, lval_expr l, parse_expr p))
    else if accept_punct p "/=" then
      let l = as_lvalue e in
      Sassign (l, Ebin (Div, lval_expr l, parse_expr p))
    else if accept_punct p "++" then
      let l = as_lvalue e in
      Sassign (l, Ebin (Add, lval_expr l, Eint 1L))
    else if accept_punct p "--" then
      let l = as_lvalue e in
      Sassign (l, Ebin (Sub, lval_expr l, Eint 1L))
    else Sexpr e
  end

and parse_stmt p =
  match peek p with
  | Lexer.KW "if" ->
    advance p;
    expect_punct p "(";
    let cond = parse_expr p in
    expect_punct p ")";
    let then_b = parse_block_or_stmt p in
    let else_b = if accept_kw p "else" then parse_block_or_stmt p else [] in
    Sif (cond, then_b, else_b)
  | Lexer.KW "for" ->
    advance p;
    expect_punct p "(";
    let init =
      if accept_punct p ";" then None
      else begin
        let s = parse_simple p in
        expect_punct p ";";
        Some s
      end
    in
    let cond =
      if accept_punct p ";" then None
      else begin
        let e = parse_expr p in
        expect_punct p ";";
        Some e
      end
    in
    let step =
      match peek p with
      | Lexer.PUNCT ")" -> None
      | _ -> Some (parse_simple p)
    in
    expect_punct p ")";
    Sfor (init, cond, step, parse_block_or_stmt p)
  | Lexer.KW "while" ->
    advance p;
    expect_punct p "(";
    let cond = parse_expr p in
    expect_punct p ")";
    Swhile (cond, parse_block_or_stmt p)
  | Lexer.KW "break" ->
    advance p;
    expect_punct p ";";
    Sbreak
  | Lexer.KW "return" ->
    advance p;
    if accept_punct p ";" then Sreturn None
    else begin
      let e = parse_expr p in
      expect_punct p ";";
      Sreturn (Some e)
    end
  | Lexer.PUNCT "{" -> Sblock (parse_block p)
  | _ ->
    let s = parse_simple p in
    expect_punct p ";";
    s

and parse_block p =
  expect_punct p "{";
  let stmts = ref [] in
  while not (accept_punct p "}") do
    stmts := parse_stmt p :: !stmts
  done;
  List.rev !stmts

and parse_block_or_stmt p =
  match peek p with
  | Lexer.PUNCT "{" -> parse_block p
  | _ -> [ parse_stmt p ]

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_top p ~globals ~externs ~funcs =
  if accept_kw p "extern" then begin
    let ret = if accept_kw p "void" then None else Some (parse_ty p) in
    let name = expect_ident p in
    expect_punct p "(";
    let params = ref [] in
    if not (accept_punct p ")") then begin
      params := [ parse_ty p ];
      (* allow and ignore parameter names in extern decls *)
      (match peek p with Lexer.IDENT _ -> advance p | _ -> ());
      while accept_punct p "," do
        params := parse_ty p :: !params;
        match peek p with Lexer.IDENT _ -> advance p | _ -> ()
      done;
      expect_punct p ")"
    end;
    expect_punct p ";";
    externs := { ename = name; eparams = List.rev !params; eret = ret } :: !externs
  end
  else begin
    let is_void = accept_kw p "void" in
    let ty = if is_void then None else Some (parse_ty p) in
    let name = expect_ident p in
    match peek p with
    | Lexer.PUNCT "(" ->
      advance p;
      let params = ref [] in
      if not (accept_punct p ")") then begin
        let pt = parse_ty p in
        let pn = expect_ident p in
        params := [ (pt, pn) ];
        while accept_punct p "," do
          let pt = parse_ty p in
          let pn = expect_ident p in
          params := (pt, pn) :: !params
        done;
        expect_punct p ")"
      end;
      let body = parse_block p in
      funcs :=
        { fname = name; params = List.rev !params; ret = ty; body } :: !funcs
    | Lexer.PUNCT "[" ->
      advance p;
      let n =
        match peek p with
        | Lexer.INT v ->
          advance p;
          Int64.to_int v
        | _ -> err p "expected array size"
      in
      expect_punct p "]";
      expect_punct p ";";
      (match ty with
       | Some t -> globals := Garray (t, name, n) :: !globals
       | None -> err p "void array")
    | _ ->
      let init = if accept_punct p "=" then Some (parse_expr p) else None in
      expect_punct p ";";
      (match ty with
       | Some t -> globals := Gscalar (t, name, init) :: !globals
       | None -> err p "void variable")
  end

let parse src =
  let p = create src in
  let globals = ref [] in
  let externs = ref [] in
  let funcs = ref [] in
  while peek p <> Lexer.EOF do
    parse_top p ~globals ~externs ~funcs
  done;
  {
    globals = List.rev !globals;
    externs = List.rev !externs;
    funcs = List.rev !funcs;
  }
