(** Type checker: elaborates the parsed AST into a typed AST with
    explicit promotions, resolved variable kinds (local / parameter /
    global scalar / global array) and resolved call kinds. *)

open Ast

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type var_kind =
  | Vlocal        (* function-local variable, including parameters *)
  | Vglobal       (* global scalar *)
  | Vglobal_array (* global array: value is its address, type Tptr _ *)

type call_kind =
  | Cbuiltin
  | Cextern
  | Clocal

type texpr = { node : tnode; ty : ty }

and tnode =
  | Tint_lit of int64
  | Tfloat_lit of float
  | Tvar of var_kind * string
  | Tindex of texpr * texpr          (* base (pointer-typed), index (int) *)
  | Tbin of binop * texpr * texpr
  | Tun of unop * texpr
  | Tcall of call_kind * string * texpr list
  | Tcast_i2f of texpr
  | Tcast_f2i of texpr
  | Tand of texpr * texpr            (* short-circuit *)
  | Tor of texpr * texpr

type tlvalue =
  | TLvar of var_kind * string * ty
  | TLindex of texpr * texpr * ty    (* base, index, element type *)

type tstmt =
  | TSdecl of ty * string * texpr option
  | TSassign of tlvalue * texpr
  | TSif of texpr * tstmt list * tstmt list
  | TSfor of tstmt option * texpr option * tstmt option * tstmt list
  | TSwhile of texpr * tstmt list
  | TSbreak
  | TSreturn of texpr option
  | TSexpr of texpr

type tfunc = {
  tf_name : string;
  tf_params : (ty * string) list;
  tf_ret : ty option;
  tf_body : tstmt list;
}

type tprogram = {
  tglobals : global list;
  texterns : extern_decl list;
  tfuncs : tfunc list;
}

type env = {
  globals : (string, ty * var_kind) Hashtbl.t;
  functions : (string, ty list * ty option * call_kind) Hashtbl.t;
  mutable scopes : (string, ty) Hashtbl.t list;  (* innermost first *)
  mutable ret : ty option;
}

let lookup_var env name =
  let rec go = function
    | [] -> None
    | sc :: tl ->
      (match Hashtbl.find_opt sc name with
       | Some ty -> Some (Vlocal, ty)
       | None -> go tl)
  in
  match go env.scopes with
  | Some r -> Some r
  | None ->
    (match Hashtbl.find_opt env.globals name with
     | Some (ty, kind) -> Some (kind, ty)
     | None -> None)

let is_numeric = function Tint | Tdouble -> true | Tptr _ -> false

let promote a b =
  (* returns the common type and coercion markers *)
  match a.ty, b.ty with
  | Tint, Tint -> (Tint, a, b)
  | Tdouble, Tdouble -> (Tdouble, a, b)
  | Tint, Tdouble -> (Tdouble, { node = Tcast_i2f a; ty = Tdouble }, b)
  | Tdouble, Tint -> (Tdouble, a, { node = Tcast_i2f b; ty = Tdouble })
  | _ -> errf "cannot combine %s and %s" (Fmt.str "%a" pp_ty a.ty)
           (Fmt.str "%a" pp_ty b.ty)

let coerce_to ty e =
  if e.ty = ty then e
  else
    match e.ty, ty with
    | Tint, Tdouble -> { node = Tcast_i2f e; ty = Tdouble }
    | Tdouble, Tint -> errf "implicit double -> int (use a cast)"
    | Tint, Tptr _ -> { e with ty }  (* int literals / values as pointers *)
    | Tptr _, Tint -> { e with ty = Tint }
    | _ ->
      errf "type mismatch: expected %s, got %s" (Fmt.str "%a" pp_ty ty)
        (Fmt.str "%a" pp_ty e.ty)

let rec check_expr env (e : expr) : texpr =
  match e with
  | Eint v -> { node = Tint_lit v; ty = Tint }
  | Efloat v -> { node = Tfloat_lit v; ty = Tdouble }
  | Evar name -> begin
      match lookup_var env name with
      | Some (kind, ty) -> { node = Tvar (kind, name); ty }
      | None -> errf "unbound variable %s" name
    end
  | Eaddr name -> begin
      match Hashtbl.find_opt env.globals name with
      | Some (Tptr _ as ty, Vglobal_array) -> { node = Tvar (Vglobal_array, name); ty }
      | Some _ -> errf "& applies to global arrays only (%s)" name
      | None -> errf "unbound array %s" name
    end
  | Eindex (b, i) -> begin
      let tb = check_expr env b in
      let ti = coerce_to Tint (check_expr env i) in
      match tb.ty with
      | Tptr elem -> { node = Tindex (tb, ti); ty = elem }
      | _ -> errf "indexing a non-pointer"
    end
  | Ebin (op, a, b) -> begin
      let ta = check_expr env a in
      let tb = check_expr env b in
      match op with
      | Add | Sub | Mul | Div ->
        if not (is_numeric ta.ty) || not (is_numeric tb.ty) then
          errf "arithmetic on non-numeric values";
        let ty, ta, tb = promote ta tb in
        { node = Tbin (op, ta, tb); ty }
      | Mod | Band | Bxor | Bor | Shl | Shr ->
        let ta = coerce_to Tint ta and tb = coerce_to Tint tb in
        { node = Tbin (op, ta, tb); ty = Tint }
      | Eq | Ne | Lt | Le | Gt | Ge ->
        let _, ta, tb =
          if is_numeric ta.ty && is_numeric tb.ty then promote ta tb
          else (Tint, coerce_to Tint ta, coerce_to Tint tb)
        in
        { node = Tbin (op, ta, tb); ty = Tint }
      | And ->
        { node = Tand (coerce_to Tint ta, coerce_to Tint tb); ty = Tint }
      | Or -> { node = Tor (coerce_to Tint ta, coerce_to Tint tb); ty = Tint }
    end
  | Eun (op, a) -> begin
      let ta = check_expr env a in
      match op with
      | Neg ->
        if not (is_numeric ta.ty) then errf "negating a non-numeric value";
        { node = Tun (Neg, ta); ty = ta.ty }
      | Not -> { node = Tun (Not, coerce_to Tint ta); ty = Tint }
    end
  | Ecast (ty, a) -> begin
      let ta = check_expr env a in
      match ta.ty, ty with
      | Tint, Tdouble -> { node = Tcast_i2f ta; ty = Tdouble }
      | Tdouble, Tint -> { node = Tcast_f2i ta; ty = Tint }
      | Tint, Tptr _ -> { ta with ty }
      | Tptr _, Tint -> { ta with ty = Tint }
      | a', b' when a' = b' -> ta
      | _ -> errf "unsupported cast"
    end
  | Ecall (name, args) -> begin
      match Hashtbl.find_opt env.functions name with
      | None -> errf "unknown function %s" name
      | Some (params, ret, kind) ->
        if List.length params <> List.length args then
          errf "%s expects %d arguments" name (List.length params);
        let targs =
          List.map2 (fun pty a -> coerce_to pty (check_expr env a)) params args
        in
        let ty = match ret with Some t -> t | None -> Tint (* void: unusable *) in
        { node = Tcall (kind, name, targs); ty }
    end

let check_lvalue env = function
  | Lvar name -> begin
      match lookup_var env name with
      | Some (Vglobal_array, _) -> errf "cannot assign to array %s" name
      | Some (kind, ty) -> TLvar (kind, name, ty)
      | None -> errf "unbound variable %s" name
    end
  | Lindex (b, i) -> begin
      let tb = check_expr env b in
      let ti = coerce_to Tint (check_expr env i) in
      match tb.ty with
      | Tptr elem -> TLindex (tb, ti, elem)
      | _ -> errf "indexing a non-pointer"
    end

let rec check_stmt env (s : stmt) : tstmt list =
  match s with
  | Sdecl (ty, name, init) ->
    let tinit = Option.map (fun e -> coerce_to ty (check_expr env e)) init in
    (match env.scopes with
     | sc :: _ -> Hashtbl.replace sc name ty
     | [] -> assert false);
    [ TSdecl (ty, name, tinit) ]
  | Sassign (lv, e) ->
    let tlv = check_lvalue env lv in
    let ty =
      match tlv with TLvar (_, _, t) -> t | TLindex (_, _, t) -> t
    in
    [ TSassign (tlv, coerce_to ty (check_expr env e)) ]
  | Sif (c, t, f) ->
    let tc = coerce_to Tint (check_expr env c) in
    [ TSif (tc, check_body env t, check_body env f) ]
  | Sfor (init, cond, step, body) ->
    (* the for scope includes the init declaration *)
    env.scopes <- Hashtbl.create 8 :: env.scopes;
    let tinit =
      match init with
      | Some s -> (match check_stmt env s with [ x ] -> Some x | _ -> None)
      | None -> None
    in
    let tcond = Option.map (fun c -> coerce_to Tint (check_expr env c)) cond in
    let tstep =
      match step with
      | Some s -> (match check_stmt env s with [ x ] -> Some x | _ -> None)
      | None -> None
    in
    let tbody = check_body env body in
    env.scopes <- List.tl env.scopes;
    [ TSfor (tinit, tcond, tstep, tbody) ]
  | Swhile (c, body) ->
    let tc = coerce_to Tint (check_expr env c) in
    [ TSwhile (tc, check_body env body) ]
  | Sbreak -> [ TSbreak ]
  | Sreturn e -> begin
      match e, env.ret with
      | None, None -> [ TSreturn None ]
      | Some e, Some ty -> [ TSreturn (Some (coerce_to ty (check_expr env e))) ]
      | Some _, None -> errf "returning a value from a void function"
      | None, Some _ -> errf "missing return value"
    end
  | Sexpr e -> [ TSexpr (check_expr env e) ]
  | Sblock b -> check_body env b

and check_body env stmts =
  env.scopes <- Hashtbl.create 8 :: env.scopes;
  let r = List.concat_map (check_stmt env) stmts in
  env.scopes <- List.tl env.scopes;
  r

let check (prog : program) : tprogram =
  let globals = Hashtbl.create 16 in
  List.iter
    (function
      | Gscalar (ty, name, _) -> Hashtbl.replace globals name (ty, Vglobal)
      | Garray (ty, name, _) ->
        Hashtbl.replace globals name (Tptr ty, Vglobal_array))
    prog.globals;
  let functions = Hashtbl.create 16 in
  List.iter
    (fun (name, params, ret) -> Hashtbl.replace functions name (params, ret, Cbuiltin))
    builtins;
  List.iter
    (fun e -> Hashtbl.replace functions e.ename (e.eparams, e.eret, Cextern))
    prog.externs;
  List.iter
    (fun f ->
       Hashtbl.replace functions f.fname
         (List.map fst f.params, f.ret, Clocal))
    prog.funcs;
  let tfuncs =
    List.map
      (fun (f : func) ->
         let env = { globals; functions; scopes = []; ret = f.ret } in
         env.scopes <- [ Hashtbl.create 8 ];
         List.iter
           (fun (ty, name) ->
              match env.scopes with
              | sc :: _ -> Hashtbl.replace sc name ty
              | [] -> assert false)
           f.params;
         let body = check_body env f.body in
         { tf_name = f.fname; tf_params = f.params; tf_ret = f.ret; tf_body = body })
      prog.funcs
  in
  if not (List.exists (fun f -> String.equal f.tf_name "main") tfuncs) then
    errf "no main function";
  { tglobals = prog.globals; texterns = prog.externs; tfuncs }
