(** Abstract syntax of the guest language: a mini-C with 64-bit
    integers, doubles, pointers and global arrays — rich enough to
    write SPEC-like kernels and to give the optimiser real loops to
    unroll, vectorise and parallelise. *)

type ty =
  | Tint
  | Tdouble
  | Tptr of ty  (* pointer to int or double *)

let rec pp_ty ppf = function
  | Tint -> Fmt.string ppf "int"
  | Tdouble -> Fmt.string ppf "double"
  | Tptr t -> Fmt.pf ppf "%a*" pp_ty t

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or       (* short-circuit logical *)
  | Band | Bxor | Bor | Shl | Shr

type unop = Neg | Not

type expr =
  | Eint of int64
  | Efloat of float
  | Evar of string
  | Eindex of expr * expr        (* p[i]: pointer/array element *)
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Ecall of string * expr list
  | Ecast of ty * expr           (* inserted by sema; also (int)/(double) *)
  | Eaddr of string              (* &arr : address of a global array *)

type lvalue =
  | Lvar of string
  | Lindex of expr * expr

type stmt =
  | Sdecl of ty * string * expr option
  | Sassign of lvalue * expr
  | Sif of expr * stmt list * stmt list
  | Sfor of stmt option * expr option * stmt option * stmt list
  | Swhile of expr * stmt list
  | Sbreak
  | Sreturn of expr option
  | Sexpr of expr
  | Sblock of stmt list

type func = {
  fname : string;
  params : (ty * string) list;
  ret : ty option;  (* None = void *)
  body : stmt list;
}

type global =
  | Gscalar of ty * string * expr option  (* constant initialiser *)
  | Garray of ty * string * int           (* element type, name, count *)

type extern_decl = {
  ename : string;
  eparams : ty list;
  eret : ty option;
}

type program = {
  globals : global list;
  externs : extern_decl list;
  funcs : func list;
}

(** Builtins understood directly by the compiler (become syscalls or
    heap allocation, not PLT calls). *)
let builtins =
  [
    ("print_int", [ Tint ], None);
    ("print_float", [ Tdouble ], None);
    ("read_int", [], Some Tint);
    ("alloc_int", [ Tint ], Some (Tptr Tint));
    ("alloc_double", [ Tint ], Some (Tptr Tdouble));
  ]
