(** Compiler auto-parallelisation: the gcc [-ftree-parallelize-loops=N]
    and [icc -parallel] analogues of Fig. 11.

    A provably independent counted loop is outlined into a worker
    [f$parK(lo, hi)]; live-in scalars pass through a static capture
    area (as gcc's OpenMP outlining does via a struct); the loop call
    site becomes a guarded [__par_for]: a profitability trip-count
    check, an overlap check for icc's pointer loops, and the original
    serial loop as the fallback path (still visible to the vectoriser
    and unroller). *)

(** Parallelise every qualifying loop of the unit in place, appending
    outlined worker functions. *)
val run : vendor:Jcc_types.vendor -> threads:int -> Mir.unit_ -> unit
