lib/runtime/runtime.ml: Array Cond Cost Hashtbl Int64 Janus_dbm Janus_schedule Janus_vm Janus_vx Layout List Machine Memory Program Reg
