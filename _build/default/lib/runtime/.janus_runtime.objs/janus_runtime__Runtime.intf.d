lib/runtime/runtime.mli: Hashtbl Janus_dbm Janus_schedule Janus_vm Janus_vx Machine
