(** Dominator analysis (iterative Cooper-Harvey-Kennedy) over recovered
    function CFGs. *)

type t = {
  order : int array;             (** reverse postorder of block addresses *)
  index : (int, int) Hashtbl.t;  (** block address -> rpo index *)
  idom : int array;              (** rpo index -> rpo index of idom *)
}

val reverse_postorder : Cfg.func -> int array
val compute : Cfg.func -> t

(** [dominates t a b]: does block [a] dominate block [b]? *)
val dominates : t -> int -> int -> bool

val idom_of : t -> int -> int option
