lib/analysis/rulegen.mli: Cfg Janus_schedule Loopanal
