lib/analysis/looptree.ml: Cfg Dom Hashtbl List Option
