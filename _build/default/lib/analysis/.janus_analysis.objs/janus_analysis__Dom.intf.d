lib/analysis/dom.mli: Cfg Hashtbl
