lib/analysis/cfg.mli: Format Hashtbl Image Insn Janus_vx
