lib/analysis/sympoly.ml: Fmt Insn Int Int64 Janus_vx Map Reg
