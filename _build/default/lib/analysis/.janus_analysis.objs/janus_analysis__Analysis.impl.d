lib/analysis/analysis.ml: Cfg Dom Fmt Funcanal Hashtbl Int64 List Loopanal Looptree
