lib/analysis/sympoly.mli: Format Insn Janus_vx Map Reg
