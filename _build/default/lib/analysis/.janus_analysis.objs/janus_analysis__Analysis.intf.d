lib/analysis/analysis.mli: Cfg Format Hashtbl Janus_vx Loopanal
