lib/analysis/funcanal.mli: Cfg Dom Hashtbl Symexec Sympoly
