lib/analysis/symexec.mli: Cfg Hashtbl Janus_vx Operand Reg Sympoly
