lib/analysis/cfg.ml: Array Fmt Hashtbl Image Insn Janus_vx Layout List Queue
