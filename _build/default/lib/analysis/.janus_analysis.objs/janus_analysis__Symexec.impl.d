lib/analysis/symexec.ml: Array Cfg Hashtbl Insn Int64 Janus_vx Layout List Operand Reg Sympoly
