lib/analysis/looptree.mli: Cfg Dom Hashtbl
