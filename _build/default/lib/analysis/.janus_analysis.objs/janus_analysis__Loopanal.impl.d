lib/analysis/loopanal.ml: AMap Array Cfg Cond Fmt Funcanal Hashtbl Insn Int64 Janus_schedule Janus_vx List Looptree Option Reg String Symexec Sympoly
