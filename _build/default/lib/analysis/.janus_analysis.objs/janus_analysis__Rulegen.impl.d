lib/analysis/rulegen.ml: Array Cfg Hashtbl Insn Int64 Janus_schedule Janus_vx List Loopanal Looptree Operand Reg Sympoly
