lib/analysis/dom.ml: Array Cfg Hashtbl List
