lib/analysis/funcanal.ml: Array Cfg Dom Hashtbl Int64 Janus_vx List Symexec Sympoly
