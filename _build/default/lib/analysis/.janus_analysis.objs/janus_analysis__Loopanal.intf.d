lib/analysis/loopanal.mli: Cfg Cond Funcanal Janus_schedule Janus_vx Looptree Reg Sympoly
