(** Dominator analysis (iterative Cooper-Harvey-Kennedy) over recovered
    function CFGs. *)

type t = {
  order : int array;           (* reverse postorder of block addrs *)
  index : (int, int) Hashtbl.t;  (* block addr -> rpo index *)
  idom : int array;            (* rpo index -> rpo index of idom *)
}

let reverse_postorder (f : Cfg.func) =
  let visited = Hashtbl.create 32 in
  let post = ref [] in
  let rec dfs addr =
    if not (Hashtbl.mem visited addr) then begin
      Hashtbl.replace visited addr ();
      (match Hashtbl.find_opt f.block_at addr with
       | Some b -> List.iter dfs b.succs
       | None -> ());
      post := addr :: !post
    end
  in
  dfs f.fentry;
  Array.of_list !post

let compute (f : Cfg.func) =
  let order = reverse_postorder f in
  let n = Array.length order in
  let index = Hashtbl.create n in
  Array.iteri (fun i a -> Hashtbl.replace index a i) order;
  let idom = Array.make n (-1) in
  if n > 0 then idom.(0) <- 0;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while !a > !b do
        a := idom.(!a)
      done;
      while !b > !a do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let b = Hashtbl.find f.block_at order.(i) in
      let preds =
        List.filter_map (fun p -> Hashtbl.find_opt index p) b.Cfg.preds
      in
      let processed = List.filter (fun p -> idom.(p) >= 0) preds in
      match processed with
      | [] -> ()
      | first :: rest ->
        let new_idom = List.fold_left intersect first rest in
        if idom.(i) <> new_idom then begin
          idom.(i) <- new_idom;
          changed := true
        end
    done
  done;
  { order; index; idom }

(** [dominates t a b]: does block [a] dominate block [b]? *)
let dominates t a b =
  match Hashtbl.find_opt t.index a, Hashtbl.find_opt t.index b with
  | Some ia, Some ib ->
    let rec up i = if i = ia then true else if i = 0 then ia = 0 else up t.idom.(i) in
    up ib
  | _ -> false

let idom_of t addr =
  match Hashtbl.find_opt t.index addr with
  | Some i when i > 0 && t.idom.(i) >= 0 -> Some t.order.(t.idom.(i))
  | _ -> None
