(** Natural-loop detection and nesting (the loop forest of §II-D). *)

type loop = {
  lid : int;                   (** globally unique loop id *)
  header : int;                (** header block address *)
  latches : int list;          (** blocks with a back edge to the header *)
  body : int list;             (** block addresses, header included *)
  exits : (int * int) list;    (** (in-loop block, out-of-loop successor) *)
  preheader : int option;      (** unique out-of-loop predecessor *)
  mutable parent : int option; (** innermost enclosing loop id *)
  mutable children : int list;
}

type t = {
  loops : loop list;
  by_id : (int, loop) Hashtbl.t;
}

(** Find the natural loops of a function and their nesting. *)
val compute : Cfg.func -> Dom.t -> t

val loop : t -> int -> loop option
val inner_loops : t -> loop -> loop list
val is_innermost : loop -> bool
val outermost : t -> loop list
