(** CFG recovery from a stripped JX image: function discovery from the
    entry point and direct call targets, basic-block partitioning, and
    successor/predecessor edges. Indirect control flow is marked as
    undetermined, as in the paper (§II-G). *)

open Janus_vx

type insn_info = { addr : int; insn : Insn.t; len : int }

type bblock = {
  baddr : int;                   (** start address *)
  insns : insn_info array;
  mutable succs : int list;      (** successor block start addresses *)
  mutable preds : int list;
}

type func = {
  fentry : int;
  mutable blocks : bblock list;  (** sorted by address *)
  block_at : (int, bblock) Hashtbl.t;
  mutable irregular : bool;      (** has indirect jumps/calls *)
  mutable callees : int list;    (** direct local call targets *)
  mutable excall_sites : (int * string) list;  (** call addr -> PLT name *)
  mutable has_syscall : bool;
}

type t = {
  image : Image.t;
  code : (int, Insn.t * int) Hashtbl.t;
  funcs : (int, func) Hashtbl.t;
  entry : int;
}

val fetch : t -> int -> (Insn.t * int) option
val block_end : bblock -> int

(** Recover the whole program: the entry function plus everything
    reachable through direct calls. *)
val recover : Image.t -> t

val func : t -> int -> func option

(** All recovered functions, by ascending entry address. *)
val all_funcs : t -> func list

val pp_func : Format.formatter -> func -> unit
