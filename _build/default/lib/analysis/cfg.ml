(** CFG recovery from a stripped JX image: function discovery from the
    entry point and direct call targets, basic-block partitioning, and
    successor/predecessor edges. Indirect control flow is marked as
    undetermined, as in the paper (§II-G). *)

open Janus_vx

type insn_info = { addr : int; insn : Insn.t; len : int }

type bblock = {
  baddr : int;
  insns : insn_info array;
  mutable succs : int list;  (* block start addresses within the function *)
  mutable preds : int list;
}

type func = {
  fentry : int;
  mutable blocks : bblock list;         (* sorted by address *)
  block_at : (int, bblock) Hashtbl.t;   (* start addr -> block *)
  mutable irregular : bool;             (* has indirect jumps/calls *)
  mutable callees : int list;           (* direct local call targets *)
  mutable excall_sites : (int * string) list;  (* call addr -> plt name *)
  mutable has_syscall : bool;
}

type t = {
  image : Image.t;
  code : (int, Insn.t * int) Hashtbl.t;
  funcs : (int, func) Hashtbl.t;        (* entry addr -> func *)
  entry : int;
}

let fetch t addr = Hashtbl.find_opt t.code addr

let block_end b =
  let last = b.insns.(Array.length b.insns - 1) in
  last.addr + last.len

(* the control-flow role of an instruction within a function body *)
type flow =
  | Seq
  | Branch of int list * bool  (* targets, falls_through *)
  | CallLocal of int           (* direct call to a local function *)
  | CallPlt of string
  | CallUnknown                (* indirect call *)
  | Stop                       (* ret / hlt / exit / indirect jmp *)
  | IndirectJmp

let flow_of image insn =
  match insn with
  | Insn.Jmp (Insn.Direct a) -> Branch ([ a ], false)
  | Insn.Jmp (Insn.Indirect _) -> IndirectJmp
  | Insn.Jcc (_, a) -> Branch ([ a ], true)
  | Insn.Call (Insn.Direct a) ->
    if Layout.in_plt a then
      (match Image.external_of_addr image a with
       | Some name -> CallPlt name
       | None -> CallUnknown)
    else CallLocal a
  | Insn.Call (Insn.Indirect _) -> CallUnknown
  | Insn.Ret | Insn.Hlt -> Stop
  | Insn.Syscall n when n = Insn.sys_exit -> Stop
  | _ -> Seq

(* explore one function: returns visited addr set, leaders, and facts *)
let explore t entry =
  let visited = Hashtbl.create 64 in
  let leaders = Hashtbl.create 16 in
  let irregular = ref false in
  let callees = ref [] in
  let excalls = ref [] in
  let has_syscall = ref false in
  Hashtbl.replace leaders entry ();
  let work = Queue.create () in
  Queue.push entry work;
  while not (Queue.is_empty work) do
    let addr = Queue.pop work in
    if not (Hashtbl.mem visited addr) then begin
      match fetch t addr with
      | None -> ()  (* outside text (e.g. plt): treated as opaque *)
      | Some (insn, len) ->
        Hashtbl.replace visited addr (insn, len);
        let next = addr + len in
        (match insn with
         | Insn.Syscall _ -> has_syscall := true
         | _ -> ());
        (match flow_of t.image insn with
         | Seq -> Queue.push next work
         | Branch (targets, falls) ->
           List.iter
             (fun a ->
                Hashtbl.replace leaders a ();
                Queue.push a work)
             targets;
           if falls then begin
             Hashtbl.replace leaders next ();
             Queue.push next work
           end
         | CallLocal target ->
           if not (List.mem target !callees) then callees := target :: !callees;
           Hashtbl.replace leaders next ();
           Queue.push next work
         | CallPlt name ->
           excalls := (addr, name) :: !excalls;
           Hashtbl.replace leaders next ();
           Queue.push next work
         | CallUnknown ->
           irregular := true;
           Hashtbl.replace leaders next ();
           Queue.push next work
         | IndirectJmp -> irregular := true
         | Stop -> ())
    end
  done;
  (visited, leaders, !irregular, !callees, !excalls, !has_syscall)

let build_func t entry =
  let visited, leaders, irregular, callees, excalls, has_syscall =
    explore t entry
  in
  (* group instructions into blocks *)
  let sorted =
    Hashtbl.fold (fun a (i, l) acc -> { addr = a; insn = i; len = l } :: acc)
      visited []
    |> List.sort (fun a b -> compare a.addr b.addr)
  in
  let blocks = ref [] in
  let current = ref [] in
  let flush () =
    match List.rev !current with
    | [] -> ()
    | first :: _ as insns ->
      blocks :=
        { baddr = first.addr; insns = Array.of_list insns; succs = []; preds = [] }
        :: !blocks;
      current := []
  in
  List.iter
    (fun ii ->
       (* a leader starts a new block *)
       if Hashtbl.mem leaders ii.addr then flush ();
       current := ii :: !current;
       (* control flow ends the block *)
       match flow_of t.image ii.insn with
       | Seq -> ()
       | _ -> flush ())
    sorted;
  flush ();
  let blocks = List.sort (fun a b -> compare a.baddr b.baddr) !blocks in
  let block_at = Hashtbl.create 32 in
  List.iter (fun b -> Hashtbl.replace block_at b.baddr b) blocks;
  (* successor edges *)
  List.iter
    (fun b ->
       let last = b.insns.(Array.length b.insns - 1) in
       let next = last.addr + last.len in
       let targets =
         match flow_of t.image last.insn with
         | Seq -> [ next ]  (* fallthrough into a leader *)
         | Branch (ts, falls) -> if falls then ts @ [ next ] else ts
         | CallLocal _ | CallPlt _ | CallUnknown -> [ next ]
         | Stop | IndirectJmp -> []
       in
       b.succs <- List.filter (Hashtbl.mem block_at) targets)
    blocks;
  List.iter
    (fun b ->
       List.iter
         (fun s ->
            let sb = Hashtbl.find block_at s in
            sb.preds <- b.baddr :: sb.preds)
         b.succs)
    blocks;
  ({ fentry = entry; blocks; block_at; irregular; callees;
     excall_sites = excalls; has_syscall },
   callees)

(** Recover the whole program: the entry function plus everything
    reachable through direct calls. *)
let recover (image : Image.t) =
  let code = Image.decode_text image in
  let t = { image; code; funcs = Hashtbl.create 16; entry = image.entry } in
  let work = Queue.create () in
  Queue.push image.entry work;
  while not (Queue.is_empty work) do
    let entry = Queue.pop work in
    if not (Hashtbl.mem t.funcs entry) then begin
      let f, callees = build_func t entry in
      Hashtbl.replace t.funcs entry f;
      List.iter (fun c -> Queue.push c work) callees
    end
  done;
  t

let func t entry = Hashtbl.find_opt t.funcs entry

let all_funcs t =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.funcs []
  |> List.sort (fun a b -> compare a.fentry b.fentry)

let pp_func ppf f =
  Fmt.pf ppf "func 0x%x%s:@." f.fentry (if f.irregular then " (irregular)" else "");
  List.iter
    (fun b ->
       Fmt.pf ppf "  block 0x%x -> [%a]@." b.baddr
         (Fmt.list ~sep:Fmt.comma (fun ppf a -> Fmt.pf ppf "0x%x" a))
         b.succs)
    f.blocks
