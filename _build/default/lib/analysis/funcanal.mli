(** Whole-function symbolic pass: machine state at every block boundary
    in terms of function-entry atoms. Two fixpoint rounds widen
    loop-varying values into merge atoms, so a value that survives as a
    constant genuinely is one on every loop entry. The loop analyser
    uses the preheader out-states to resolve iterator initial values
    and constant bounds (iterator range solving, §II-D). *)

type t = {
  naming : Symexec.naming;
  ctx : Symexec.ctx;
  out_states : (int, Symexec.state) Hashtbl.t;
}

val compute : Cfg.func -> Dom.t -> t

(** Symbolic state at the end of a block, if it was reached. *)
val out_state : t -> int -> Symexec.state option

(** Value of a location in a state, when determinate. *)
val loc_value : t -> Symexec.state -> Sympoly.loc -> Sympoly.t option

(** RSP displacement from function entry in the given state. *)
val rsp_delta : t -> Symexec.state -> int option
