(** Symbolic execution of VX64 code over {!Sympoly} values.

    Drives both the whole-function pass ({!Funcanal}) and the per-loop
    pass ({!Loopanal}): registers and stack slots become polynomials
    over atoms; loads forward from in-flight stores (so spilled
    induction variables are still recognised); control-flow merges
    produce phi atoms that remember their inputs — equal values survive
    merges, which is the paper's duplicated-path elimination (§II-D). *)

open Janus_vx
open Sympoly

type value = Vint of Sympoly.t | Vfloat of fexpr

type cmp_info =
  | Cmp_int of Sympoly.t * Sympoly.t * int  (** operands + compare addr *)
  | Cmp_float of fexpr * fexpr

type store_entry = {
  s_addr : Sympoly.t;
  s_bytes : int;
  s_val : value;
}

type state = {
  regs : Sympoly.t array;
  fregs : fexpr array;
  mutable cmp : cmp_info option;
  mutable stores : store_entry list;  (** forwarding table *)
}

(** One recorded memory access. *)
type access = {
  a_addr : Sympoly.t;
  a_bytes : int;
  a_write : bool;
  a_insn : int;
  a_value : value option;  (** stored value, for reduction analysis *)
}

(** How fresh unknowns are named (function-entry vs loop-header atoms). *)
type naming = {
  name_loc : loc -> atom;
  named : unit -> (loc * atom) list;
}

type ctx = {
  naming : naming;
  mutable st : state;
  mutable accesses : access list;
  mutable loads : (Sympoly.t * int * value * atom) list;
  mutable load_addrs : (int * Sympoly.t) list;
  mutable dirty : (Sympoly.t * int) list;
  merge_srcs : (int, value list) Hashtbl.t;
  mutable all_cmps : cmp_info list;
  mutable gen : int;
  mutable excalls : (int * string) list;
  mutable calls : (int * int) list;
  mutable has_syscall : bool;
  mutable has_indirect : bool;
  mutable has_unknown_store : bool;
  rsp0 : atom;
}

val entry_naming : unit -> naming
val header_naming : int -> naming
val create : naming -> ctx

val get_reg : ctx -> Reg.gp -> Sympoly.t
val set_reg : ctx -> Reg.gp -> Sympoly.t -> unit
val get_freg : ctx -> Reg.fp -> fexpr
val set_freg : ctx -> Reg.fp -> fexpr -> unit

(** Symbolic address classification: a pure stack slot (offset from the
    reference RSP), a constant address, or something else. *)
type addr_class = Astack of int | Aconst of int | Aother

val classify_addr : ctx -> Sympoly.t -> addr_class

(** Can two symbolic byte ranges possibly overlap? (Stack never aliases
    non-stack; unknown pairs may.) *)
val may_overlap : ctx -> Sympoly.t -> int -> Sympoly.t -> int -> bool

val addr_of_mem : ctx -> Operand.mem -> Sympoly.t

(** Execute one instruction symbolically; control flow is the caller's
    responsibility. *)
val exec : ctx -> Cfg.insn_info -> unit

(** Merge two states at a join: equal values survive, differing ones
    become phi atoms whose inputs are remembered; store entries lost in
    the merge are marked dirty so later loads cannot resurrect stale
    location names. *)
val merge_states : ctx -> at:int -> state -> state -> state

val copy_state : state -> state

(** Does a value mention an atom satisfying the predicate, looking
    through merge inputs? Old values hidden behind a conditional
    redefinition are still dependences. *)
val mentions : ctx -> (atom -> bool) -> value -> bool

val mentions_poly : ctx -> (atom -> bool) -> Sympoly.t -> bool
val mentions_fexpr : ctx -> (atom -> bool) -> fexpr -> bool
