(** Whole-function symbolic pass: computes the machine state at every
    block boundary in terms of function-entry atoms. Two fixpoint
    rounds widen loop-varying values into merge atoms, so a value that
    survives as a constant genuinely is one on every loop entry. The
    loop analyser uses the preheader out-states to resolve iterator
    initial values and constant bounds (iterator range solving,
    §II-D). *)

open Sympoly

type t = {
  naming : Symexec.naming;
  ctx : Symexec.ctx;
  out_states : (int, Symexec.state) Hashtbl.t;  (* block addr -> out *)
}

let compute (f : Cfg.func) (dom : Dom.t) =
  let naming = Symexec.entry_naming () in
  let ctx = Symexec.create naming in
  let entry_state = Symexec.copy_state ctx.Symexec.st in
  let out_states = Hashtbl.create 32 in
  let rpo = dom.Dom.order in
  let run_round () =
    Array.iter
      (fun baddr ->
         match Hashtbl.find_opt f.Cfg.block_at baddr with
         | None -> ()
         | Some b ->
           let in_state =
             if baddr = f.Cfg.fentry then Symexec.copy_state entry_state
             else begin
               let preds =
                 List.filter_map (Hashtbl.find_opt out_states) b.Cfg.preds
               in
               match preds with
               | [] -> Symexec.copy_state entry_state
               | [ s ] -> Symexec.copy_state s
               | s :: rest ->
                 List.fold_left
                   (fun acc s' -> Symexec.merge_states ctx ~at:baddr acc s')
                   (Symexec.copy_state s) rest
             end
           in
           ctx.Symexec.st <- in_state;
           Array.iter (fun ii -> Symexec.exec ctx ii) b.Cfg.insns;
           Hashtbl.replace out_states baddr ctx.Symexec.st)
      rpo
  in
  (* round 1 computes first-entry states; round 2 folds back-edge
     states in, widening loop-varying values into merge atoms *)
  run_round ();
  run_round ();
  { naming; ctx; out_states }

let out_state t baddr = Hashtbl.find_opt t.out_states baddr

(** Value of a location in a given state, if determinate. *)
let loc_value t (st : Symexec.state) (l : loc) : Sympoly.t option =
  match l with
  | Rloc r -> Some st.Symexec.regs.(Janus_vx.Reg.gp_index r)
  | Sloc off ->
    let addr = add (of_atom t.ctx.Symexec.rsp0) (const (Int64.of_int off)) in
    (match
       List.find_opt
         (fun (s : Symexec.store_entry) -> equal s.s_addr addr)
         st.Symexec.stores
     with
     | Some { s_val = Symexec.Vint p; _ } -> Some p
     | _ -> None)
  | Gloc a ->
    let addr = const (Int64.of_int a) in
    (match
       List.find_opt
         (fun (s : Symexec.store_entry) -> equal s.s_addr addr)
         st.Symexec.stores
     with
     | Some { s_val = Symexec.Vint p; _ } -> Some p
     | _ -> None)
  | Floc _ -> None

(** RSP displacement from function entry at the given state. *)
let rsp_delta t (st : Symexec.state) =
  let rsp = st.Symexec.regs.(Janus_vx.Reg.gp_index Janus_vx.Reg.RSP) in
  match Symexec.classify_addr t.ctx rsp with
  | Symexec.Astack d -> Some d
  | Symexec.Aconst _ | Symexec.Aother -> None
