lib/core/janus.mli: Janus_analysis Janus_dbm Janus_profile Janus_runtime Janus_schedule Janus_vx
