lib/core/eval.mli: Format Janus Janus_analysis Janus_jcc Janus_profile Janus_suite
