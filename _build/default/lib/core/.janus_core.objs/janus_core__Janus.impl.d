lib/core/janus.ml: Buffer Image Int64 Janus_analysis Janus_dbm Janus_profile Janus_runtime Janus_schedule Janus_vm Janus_vx List Machine Program Queue Run
