lib/core/version.ml:
