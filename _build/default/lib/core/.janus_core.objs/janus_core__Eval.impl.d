lib/core/eval.ml: Fmt Hashtbl Janus Janus_analysis Janus_jcc Janus_profile Janus_schedule Janus_suite List Option Printf String
