lib/suite/suite.ml: Janus_jcc List Printf String
