lib/suite/suite.mli: Janus_jcc Janus_vx
