(** Binary encoder for VX64 instructions.

    Variable-length encoding (1-byte opcode, compact immediates) so
    that code size, rewrite-schedule size (Fig. 10) and basic-block
    addresses behave like a real CISC encoding. The inverse lives in
    {!Decode}. *)

(** {1 Opcode bytes} (shared with the decoder) *)

val op_nop : int
val op_hlt : int
val op_mov : int
val op_lea : int
val op_alu : int
val op_neg : int
val op_not : int
val op_idiv : int
val op_cmp : int
val op_test : int
val op_jmp_d : int
val op_jmp_i : int
val op_jcc : int
val op_call_d : int
val op_call_i : int
val op_ret : int
val op_push : int
val op_pop : int
val op_cmov : int
val op_fmov : int
val op_fbin : int
val op_fsqrt : int
val op_fcmp : int
val op_cvtsi2sd : int
val op_cvtsd2si : int
val op_syscall : int
val op_fbcast : int
val op_prefetch : int

(** {1 Sub-opcode tables} *)

val alu_code : Insn.alu -> int
val alu_of_code : int -> Insn.alu
val fbin_code : Insn.fbin -> int
val fbin_of_code : int -> Insn.fbin
val width_code : Insn.width -> int
val width_of_code : int -> Insn.width

(** {1 Encoding} *)

(** Append the encoding of one instruction to a buffer. *)
val encode_into : Buffer.t -> Insn.t -> unit

(** Encode one instruction. *)
val encode : Insn.t -> bytes

(** Encode a sequence back-to-back. *)
val encode_list : Insn.t list -> bytes

(** Encoded size in bytes of one instruction. *)
val size : Insn.t -> int
