(** Virtual address-space layout of a loaded JX image.

    Fixed, non-overlapping regions; the static analyser uses these to
    tell stack, heap, global and library addresses apart, exactly as it
    would use segment information in an ELF binary. *)

val text_base : int

(** Base of the PLT: one 16-byte stub slot per external. *)
val plt_base : int

val plt_slot : int

val data_base : int

val bss_base : int

val heap_base : int

(** End of the 16 MiB guest heap. *)
val heap_limit : int

(** Base of dynamically discovered library code. *)
val lib_base : int

(** Base of library constant tables. *)
val lib_data_base : int

(** Top of the main stack (grows down). *)
val stack_top : int

val stack_size : int

(** Per-thread private stack size. *)
val tstack_size : int

(** Top of worker thread [t]'s private stack. *)
val tstack_top : int -> int

(** Base of thread [t]'s TLS region. *)
val tls_base : int -> int

val tls_size : int

val plt_slot_addr : int -> int

val plt_index_of_addr : int -> int

(** {1 Region predicates} *)

val in_plt : int -> bool

val in_text : int -> bool

val in_lib : int -> bool

val in_stack : int -> bool

val in_heap : int -> bool

val in_global : int -> bool
