(** Condition codes evaluated against the VX64 flags register. *)

type t =
  | Eq | Ne
  | Lt | Le | Gt | Ge          (** signed *)
  | Ult | Ule | Ugt | Uge      (** unsigned *)
  | S | Ns                     (** sign / not sign *)

val all : t list

(** Logical negation: [negate c] holds exactly when [c] does not. *)
val negate : t -> t

(** [swap c] is the condition with the comparison operands exchanged
    ([a < b] iff [b > a]). *)
val swap : t -> t

val to_int : t -> int
val of_int : int -> t

(** x86-style mnemonic suffix ("e", "ne", "l", "b", ...). *)
val name : t -> string

val pp : Format.formatter -> t -> unit

(** Evaluate against comparison flags: [zf] equal, [lt] signed-less,
    [ult] unsigned-less, [sf] result sign. *)
val eval : zf:bool -> lt:bool -> ult:bool -> sf:bool -> t -> bool
