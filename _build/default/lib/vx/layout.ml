(** Virtual address-space layout of a loaded JX image.

    Fixed, non-overlapping regions; the static analyser uses these to
    tell stack, heap, global and library addresses apart, exactly as it
    would use segment information in an ELF binary. *)

let text_base = 0x400000
let plt_base = 0x500000        (* one 16-byte stub slot per external *)
let plt_slot = 16
let data_base = 0x600000
let bss_base = 0x700000
let heap_base = 0x800000
let heap_limit = 0x1800000  (* 16 MiB guest heap *)
let lib_base = 0x5000000       (* dynamically discovered library code *)
let lib_data_base = 0x5800000  (* library constant tables *)
let stack_top = 0x7000000      (* main stack, grows down *)
let stack_size = 0x100000
let tstack_size = 0x40000                          (* per-thread private stacks *)
let tstack_top t = stack_top + 0x100000 * (t + 1)
let tls_base t = 0x6000000 + 0x10000 * t           (* per-thread TLS regions *)
let tls_size = 0x10000

let plt_slot_addr i = plt_base + (i * plt_slot)
let plt_index_of_addr a = (a - plt_base) / plt_slot
let in_plt a = a >= plt_base && a < data_base
let in_text a = a >= text_base && a < plt_base
let in_lib a = a >= lib_base && a < lib_data_base
let in_stack a = a > stack_top - stack_size && a <= stack_top
let in_heap a = a >= heap_base && a < heap_limit
let in_global a = a >= data_base && a < heap_base
