(** Condition codes evaluated against the VX64 flags register. *)

type t =
  | Eq | Ne
  | Lt | Le | Gt | Ge          (* signed *)
  | Ult | Ule | Ugt | Uge      (* unsigned *)
  | S | Ns                     (* sign / not sign *)

let all = [ Eq; Ne; Lt; Le; Gt; Ge; Ult; Ule; Ugt; Uge; S; Ns ]

let negate = function
  | Eq -> Ne | Ne -> Eq
  | Lt -> Ge | Ge -> Lt
  | Le -> Gt | Gt -> Le
  | Ult -> Uge | Uge -> Ult
  | Ule -> Ugt | Ugt -> Ule
  | S -> Ns | Ns -> S

(** [swap c] is the condition equivalent to [c] with the comparison
    operands exchanged ([a < b] iff [b > a]). *)
let swap = function
  | Eq -> Eq | Ne -> Ne
  | Lt -> Gt | Gt -> Lt
  | Le -> Ge | Ge -> Le
  | Ult -> Ugt | Ugt -> Ult
  | Ule -> Uge | Uge -> Ule
  | S -> S | Ns -> Ns

let to_int = function
  | Eq -> 0 | Ne -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5
  | Ult -> 6 | Ule -> 7 | Ugt -> 8 | Uge -> 9 | S -> 10 | Ns -> 11

let of_int = function
  | 0 -> Eq | 1 -> Ne | 2 -> Lt | 3 -> Le | 4 -> Gt | 5 -> Ge
  | 6 -> Ult | 7 -> Ule | 8 -> Ugt | 9 -> Uge | 10 -> S | 11 -> Ns
  | n -> invalid_arg (Printf.sprintf "Cond.of_int %d" n)

let name = function
  | Eq -> "e" | Ne -> "ne" | Lt -> "l" | Le -> "le" | Gt -> "g" | Ge -> "ge"
  | Ult -> "b" | Ule -> "be" | Ugt -> "a" | Uge -> "ae" | S -> "s" | Ns -> "ns"

let pp ppf c = Fmt.string ppf (name c)

(** Evaluate a condition given the integer comparison result flags.

    [zf] is set when the last compare found the operands equal; [lt]
    when signed-less; [ult] when unsigned-less; [sf] holds the sign of
    the last result. *)
let eval ~zf ~lt ~ult ~sf = function
  | Eq -> zf
  | Ne -> not zf
  | Lt -> lt
  | Le -> lt || zf
  | Gt -> not (lt || zf)
  | Ge -> not lt
  | Ult -> ult
  | Ule -> ult || zf
  | Ugt -> not (ult || zf)
  | Uge -> not ult
  | S -> sf
  | Ns -> not sf
