(** General-purpose and floating-point registers of the VX64 guest ISA.

    VX64 is modelled on x86-64: sixteen 64-bit general-purpose registers
    with the usual names, and sixteen 256-bit vector registers each
    holding four binary64 lanes (lane 0 doubles as the scalar FP
    register, lanes 0-1 form the SSE-like 128-bit view).

    Two additional {e hidden} registers, {!tls} and {!shared}, are not
    encodable by the guest compiler; they exist only for code injected
    by the dynamic modifier (thread-local-storage base and shared main
    stack pointer, mirroring the roles of r15 and r14 in the paper's
    Fig. 2(b) without having to prove those registers dead). *)

type gp =
  | RAX | RBX | RCX | RDX | RSI | RDI | RBP | RSP
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15
  | TLS     (* hidden: thread-local storage base, DBM-injected code only *)
  | SHARED  (* hidden: main-thread stack pointer, DBM-injected code only *)

type fp = XMM of int  (* 0..15 *)

let gp_count = 18
let fp_count = 16

let gp_index = function
  | RAX -> 0 | RBX -> 1 | RCX -> 2 | RDX -> 3
  | RSI -> 4 | RDI -> 5 | RBP -> 6 | RSP -> 7
  | R8 -> 8 | R9 -> 9 | R10 -> 10 | R11 -> 11
  | R12 -> 12 | R13 -> 13 | R14 -> 14 | R15 -> 15
  | TLS -> 16 | SHARED -> 17

let gp_of_index = function
  | 0 -> RAX | 1 -> RBX | 2 -> RCX | 3 -> RDX
  | 4 -> RSI | 5 -> RDI | 6 -> RBP | 7 -> RSP
  | 8 -> R8 | 9 -> R9 | 10 -> R10 | 11 -> R11
  | 12 -> R12 | 13 -> R13 | 14 -> R14 | 15 -> R15
  | 16 -> TLS | 17 -> SHARED
  | n -> invalid_arg (Printf.sprintf "Reg.gp_of_index %d" n)

let fp_index (XMM n) = n

let fp_of_index n =
  if n < 0 || n >= fp_count then invalid_arg "Reg.fp_of_index" else XMM n

let gp_name = function
  | RAX -> "rax" | RBX -> "rbx" | RCX -> "rcx" | RDX -> "rdx"
  | RSI -> "rsi" | RDI -> "rdi" | RBP -> "rbp" | RSP -> "rsp"
  | R8 -> "r8" | R9 -> "r9" | R10 -> "r10" | R11 -> "r11"
  | R12 -> "r12" | R13 -> "r13" | R14 -> "r14" | R15 -> "r15"
  | TLS -> "tls" | SHARED -> "shr"

let fp_name (XMM n) = Printf.sprintf "xmm%d" n

let pp_gp ppf r = Fmt.string ppf (gp_name r)
let pp_fp ppf r = Fmt.string ppf (fp_name r)

let equal_gp (a : gp) (b : gp) = a = b
let equal_fp (a : fp) (b : fp) = a = b

(** All guest-encodable GP registers (excludes the hidden pair). *)
let all_gp =
  [ RAX; RBX; RCX; RDX; RSI; RDI; RBP; RSP;
    R8; R9; R10; R11; R12; R13; R14; R15 ]

let all_fp = List.init fp_count (fun i -> XMM i)

(** System V-like calling convention used by the guest compiler. *)
let arg_regs = [ RDI; RSI; RDX; RCX; R8; R9 ]

let fp_arg_regs = List.init 8 (fun i -> XMM i)
let ret_reg = RAX
let fp_ret_reg = XMM 0
let callee_saved = [ RBX; RBP; R12; R13; R14; R15 ]
let caller_saved = [ RAX; RCX; RDX; RSI; RDI; R8; R9; R10; R11 ]
