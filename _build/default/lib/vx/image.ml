(** The JX executable format.

    A JX image is what the static analyser receives: raw code bytes at
    a known base address, initialised data, a BSS size, and a PLT-like
    table of external (shared library) entries — names only, no
    internal symbols, mirroring a stripped ELF binary whose dynamic
    symbols survive stripping. *)

type t = {
  entry : int;           (* virtual address of the first instruction *)
  text : bytes;          (* encoded code, loaded at Layout.text_base *)
  data : bytes;          (* initialised data, loaded at Layout.data_base *)
  bss_size : int;        (* zero-initialised region at Layout.bss_base *)
  externals : string list;  (* PLT entries, slot i at Layout.plt_slot_addr i *)
}

let magic = "JX64"

let text_end img = Layout.text_base + Bytes.length img.text

(** Total file size in bytes, used as the denominator of Fig. 10. *)
let size img =
  String.length magic + 8 (* entry *) + 4 (* counts *) * 3
  + Bytes.length img.text + Bytes.length img.data
  + List.fold_left (fun acc s -> acc + String.length s + 1) 0 img.externals

let plt_addr img name =
  let rec go i = function
    | [] -> None
    | n :: _ when String.equal n name -> Some (Layout.plt_slot_addr i)
    | _ :: tl -> go (i + 1) tl
  in
  go 0 img.externals

let external_of_addr img addr =
  if not (Layout.in_plt addr) then None
  else
    let i = Layout.plt_index_of_addr addr in
    List.nth_opt img.externals i

(** Serialise to bytes (the on-disk form; size must equal {!size}). *)
let to_bytes img =
  let b = Buffer.create (Bytes.length img.text + 256) in
  Buffer.add_string b magic;
  let put_i32 v =
    for i = 0 to 3 do
      Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
    done
  in
  let put_i64 v = put_i32 (v land 0xffffffff); put_i32 (v lsr 32) in
  put_i64 img.entry;
  put_i32 (Bytes.length img.text);
  put_i32 (Bytes.length img.data);
  put_i32 img.bss_size;
  Buffer.add_bytes b img.text;
  Buffer.add_bytes b img.data;
  List.iter
    (fun s ->
       Buffer.add_string b s;
       Buffer.add_char b '\000')
    img.externals;
  Buffer.to_bytes b

let of_bytes buf =
  let pos = ref 0 in
  let u8 () =
    let v = Char.code (Bytes.get buf !pos) in
    incr pos;
    v
  in
  let i32 () =
    let a = u8 () and b = u8 () and c = u8 () and d = u8 () in
    a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)
  in
  let m = Bytes.sub_string buf 0 4 in
  pos := 4;
  if not (String.equal m magic) then failwith "Image.of_bytes: bad magic";
  let lo = i32 () in
  let hi = i32 () in
  let entry = lo lor (hi lsl 32) in
  let text_len = i32 () in
  let data_len = i32 () in
  let bss_size = i32 () in
  let text = Bytes.sub buf !pos text_len in
  pos := !pos + text_len;
  let data = Bytes.sub buf !pos data_len in
  pos := !pos + data_len;
  let externals = ref [] in
  let name = Buffer.create 16 in
  while !pos < Bytes.length buf do
    let c = Bytes.get buf !pos in
    incr pos;
    if Char.equal c '\000' then begin
      externals := Buffer.contents name :: !externals;
      Buffer.clear name
    end
    else Buffer.add_char name c
  done;
  { entry; text; data; bss_size; externals = List.rev !externals }

(** Decode the text section into an address-indexed instruction table.
    Result maps virtual address -> (instruction, encoded length). *)
let decode_text img =
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun (off, i, len) -> Hashtbl.replace tbl (Layout.text_base + off) (i, len))
    (Decode.all img.text);
  tbl
