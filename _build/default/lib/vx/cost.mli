(** The deterministic cycle-cost model.

    This substitutes for the paper's Xeon E5-2667v4 testbed: costs are
    loosely calibrated to Sandy-Bridge-era latencies so that relative
    effects (division vs addition, memory traffic, vector speedup,
    syscall cliffs) have the right order of magnitude. All figures in
    the evaluation are produced from these deterministic counts. *)

val mem_read : int

val mem_write : int

(** Extra cycles a packed operation costs over its scalar form; the
    remaining lanes are free, which is the vectorisation win. *)
val width_extra : Insn.width -> int

val alu_cost : Insn.alu -> int

val fbin_cost : Insn.fbin -> int

val mem_cost_of_operand : Operand.t -> int

val mem_cost_of_fop : Operand.fop -> int

(** Base cycle cost of one instruction, including its memory traffic. *)
val of_insn : Insn.t -> int

(** {1 DBM and runtime overheads (cycles)}

    These model DynamoRIO-style costs: translating an instruction into
    the code cache, dispatching between unlinked fragments, taking an
    indirect-branch lookup, and the parallel runtime's bookkeeping. *)

(** Decode + rewrite + encode one instruction into the code cache. *)
val translate_per_insn : int

(** Per new fragment: allocation and linking. *)
val fragment_setup : int

(** Context switch to the dispatcher plus fragment lookup. *)
val dispatch_unlinked : int

(** Indirect-branch hash-table lookup. *)
val dispatch_indirect : int

(** Executions of a block before it is promoted into a trace. *)
val trace_head_threshold : int

(** {2 Parallel runtime costs} *)

(** Wake one pool thread. *)
val thread_signal : int

(** Copy the minimal initial context to a worker. *)
val thread_context_copy : int

(** LOOP_INIT: set up shared loop state. *)
val loop_init_base : int

(** LOOP_FINISH: join and combine contexts. *)
val loop_finish_base : int

(** Per-thread reduction merge and context teardown. *)
val loop_finish_per_thread : int

(** One runtime range-overlap comparison (Fig. 4 check). *)
val bounds_check_per_pair : int

(** Round-robin scheduling: claim the next iteration block. *)
val sched_block_fetch : int

(** Record + buffer lookup per speculative read. *)
val stm_read : int

(** Buffer one speculative store. *)
val stm_write : int

(** Value-based validation per read-set entry at commit. *)
val stm_validate_per_entry : int

(** Write-back per buffered store at commit. *)
val stm_commit_per_entry : int

(** TX_START register checkpoint. *)
val stm_checkpoint : int

(** Roll back the machine context after a failed validation. *)
val stm_abort : int

(** Flush the modified code cache when a runtime check fails. *)
val cache_flush : int

(** Per-chunk carried-value hand-off in DOACROSS mode. *)
val doacross_sync : int

(** {1 Optional data-cache model (prefetch extension)}

    When a machine context has [model_cache] set, accesses to cache
    lines outside the warm set pay [cache_miss] extra cycles (an
    in-order view of exposed DRAM latency). A [Prefetch] hint warms a
    line for its 1-cycle issue cost, hiding that latency — this is the
    mechanism behind the MEM_PREFETCH rule extension. Off by default so
    the main evaluation's calibration is untouched. *)

(** Exposed DRAM latency per cold-line access. *)
val cache_miss : int

(** Bytes per cache line. *)
val cache_line : int

(** Warm-set capacity in lines (256 KiB, L2-ish). *)
val cache_lines : int
