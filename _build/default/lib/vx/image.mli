(** The JX executable format.

    A JX image is what the static analyser receives: raw code bytes at
    a known base address, initialised data, a BSS size, and a PLT-like
    table of external (shared-library) entries — names only, no
    internal symbols, mirroring a stripped ELF binary whose dynamic
    symbols survive stripping. *)

type t = {
  entry : int;              (** virtual address of the first instruction *)
  text : bytes;             (** encoded code at {!Layout.text_base} *)
  data : bytes;             (** initialised data at {!Layout.data_base} *)
  bss_size : int;           (** zero region at {!Layout.bss_base} *)
  externals : string list;  (** PLT entries, slot i at {!Layout.plt_slot_addr} *)
}

val magic : string
val text_end : t -> int

(** Total file size in bytes, the denominator of Fig. 10. *)
val size : t -> int

val plt_addr : t -> string -> int option
val external_of_addr : t -> int -> string option

val to_bytes : t -> bytes
val of_bytes : bytes -> t

(** Decode the text section into an address-indexed instruction table:
    virtual address -> (instruction, encoded length). *)
val decode_text : t -> (int, Insn.t * int) Hashtbl.t
