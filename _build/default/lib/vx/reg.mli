(** General-purpose and floating-point registers of the VX64 guest ISA.

    VX64 is modelled on x86-64: sixteen 64-bit general-purpose
    registers with the usual names, and sixteen vector registers each
    holding four binary64 lanes (lane 0 doubles as the scalar FP
    register; lanes 0-1 form the SSE-like 128-bit view).

    The {e hidden} registers {!gp.TLS} and {!gp.SHARED} are not
    encodable by the guest compiler; they exist for code injected by
    the dynamic modifier (thread-local-storage base and shared main
    stack pointer, mirroring r15 / r14 in the paper's Fig. 2(b)). *)

type gp =
  | RAX | RBX | RCX | RDX | RSI | RDI | RBP | RSP
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15
  | TLS     (** hidden: thread-local storage base *)
  | SHARED  (** hidden: main-thread frame pointer *)

type fp = XMM of int  (** 0..15 *)

val gp_count : int
val fp_count : int

val gp_index : gp -> int
val gp_of_index : int -> gp
val fp_index : fp -> int
val fp_of_index : int -> fp

val gp_name : gp -> string
val fp_name : fp -> string
val pp_gp : Format.formatter -> gp -> unit
val pp_fp : Format.formatter -> fp -> unit
val equal_gp : gp -> gp -> bool
val equal_fp : fp -> fp -> bool

(** All guest-encodable GP registers (excludes the hidden pair). *)
val all_gp : gp list

val all_fp : fp list

(** {1 The guest calling convention (System V-like)} *)

val arg_regs : gp list
val fp_arg_regs : fp list
val ret_reg : gp
val fp_ret_reg : fp
val callee_saved : gp list
val caller_saved : gp list
