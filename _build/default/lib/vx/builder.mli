(** Assembly builder: emits VX64 instructions with symbolic labels and
    produces an {!Image.t}. Used by the guest compiler's backend, the
    VM's library-fragment factory, and hand-written test binaries. *)

type t

val create : ?base:int -> unit -> t

(** Virtual address of the next instruction. *)
val here : t -> int

(** Define a label at the current position.
    @raise Invalid_argument on duplicates. *)
val label : t -> string -> unit

val ins : t -> Insn.t -> unit

(** Emit a direct jump / conditional jump / call to a possibly forward
    label, patched at {!finish} time. *)
val jmp : t -> string -> unit
val jcc : t -> Cond.t -> string -> unit
val call_label : t -> string -> unit

(** Load a label's address into a register (absolute [lea]); the
    encoded size does not depend on the final address. *)
val lea_label : t -> Reg.gp -> string -> unit

(** @raise Invalid_argument if the label is undefined. *)
val label_addr : t -> string -> int

(** Resolve patches and return the final instruction list.
    @raise Invalid_argument on undefined labels. *)
val finish : t -> Insn.t list

val to_bytes : t -> bytes

(** Data-section builder (labels resolve to {!Layout.data_base}-based
    addresses). *)
module Data : sig
  type t

  val create : unit -> t
  val here : t -> int
  val label : t -> string -> unit
  val addr : t -> string -> int
  val i64 : t -> int64 -> unit
  val f64 : t -> float -> unit
  val zeros : t -> int -> unit
  val contents : t -> bytes
end

(** Assemble a full image. [entry] names the start label. *)
val to_image :
  ?data:bytes ->
  ?bss_size:int ->
  ?externals:string list ->
  entry:string ->
  t ->
  Image.t
