(** The deterministic cycle-cost model.

    This substitutes for the paper's Xeon E5-2667v4 testbed: costs are
    loosely calibrated to Sandy-Bridge-era latencies so that relative
    effects (division vs addition, memory traffic, vector speedup,
    syscall cliffs) have the right order of magnitude. All figures in
    the evaluation are produced from these deterministic counts. *)

let mem_read = 3
let mem_write = 3

(** Extra cycles a packed operation costs over its scalar form; the
    remaining lanes are free, which is the vectorisation win. *)
let width_extra = function Insn.Scalar -> 0 | Insn.X -> 1 | Insn.Y -> 2

let alu_cost = function
  | Insn.Imul -> 3
  | Insn.Add | Insn.Sub | Insn.And | Insn.Or | Insn.Xor
  | Insn.Shl | Insn.Shr | Insn.Sar -> 1

let fbin_cost = function
  | Insn.Fadd | Insn.Fsub -> 3
  | Insn.Fmul -> 4
  | Insn.Fdiv -> 16
  | Insn.Fmin | Insn.Fmax -> 2

let mem_cost_of_operand = function
  | Operand.Mem _ -> mem_read
  | Operand.Reg _ | Operand.Imm _ -> 0

let mem_cost_of_fop = function
  | Operand.Fmem _ -> mem_read
  | Operand.Freg _ -> 0

(** Base cycle cost of one instruction, including its memory traffic. *)
let of_insn = function
  | Insn.Nop -> 1
  | Insn.Hlt -> 1
  | Insn.Mov (dst, src) ->
    1
    + (match dst with Operand.Mem _ -> mem_write | _ -> 0)
    + mem_cost_of_operand src
  | Insn.Lea _ -> 1
  | Insn.Alu (op, dst, src) ->
    alu_cost op
    + (match dst with Operand.Mem _ -> mem_read + mem_write | _ -> 0)
    + mem_cost_of_operand src
  | Insn.Neg o | Insn.Not o ->
    1 + (match o with Operand.Mem _ -> mem_read + mem_write | _ -> 0)
  | Insn.Idiv o -> 24 + mem_cost_of_operand o
  | Insn.Cmp (a, b) | Insn.Test (a, b) ->
    1 + mem_cost_of_operand a + mem_cost_of_operand b
  | Insn.Jmp (Insn.Direct _) -> 1
  | Insn.Jmp (Insn.Indirect o) -> 2 + mem_cost_of_operand o
  | Insn.Jcc _ -> 1
  | Insn.Call (Insn.Direct _) -> 4 + mem_write
  | Insn.Call (Insn.Indirect o) -> 5 + mem_write + mem_cost_of_operand o
  | Insn.Ret -> 4 + mem_read
  | Insn.Push o -> 1 + mem_write + mem_cost_of_operand o
  | Insn.Pop o ->
    1 + mem_read + (match o with Operand.Mem _ -> mem_write | _ -> 0)
  | Insn.Cmov _ -> 1
  | Insn.Fmov (w, dst, src) ->
    1 + width_extra w
    + (match dst with Operand.Fmem _ -> mem_write | _ -> 0)
    + mem_cost_of_fop src
  | Insn.Fbin (w, op, _, src) ->
    fbin_cost op + width_extra w + mem_cost_of_fop src
  | Insn.Fsqrt (w, _, src) -> 20 + width_extra w + mem_cost_of_fop src
  | Insn.Fbcast (w, _, src) -> 1 + width_extra w + mem_cost_of_fop src
  | Insn.Fcmp (_, src) -> 2 + mem_cost_of_fop src
  | Insn.Cvtsi2sd (_, src) -> 4 + mem_cost_of_operand src
  | Insn.Cvtsd2si (_, src) -> 4 + mem_cost_of_fop src
  | Insn.Syscall _ -> 150
  | Insn.Prefetch _ -> 1  (* issue cost only; the fill is asynchronous *)

(** {1 DBM and runtime overheads (cycles)}

    These model DynamoRIO-style costs: translating an instruction into
    the code cache, dispatching between unlinked fragments, taking an
    indirect-branch lookup, and the parallel runtime's bookkeeping. *)

let translate_per_insn = 40      (* decode + rewrite + encode into cache *)
let fragment_setup = 120         (* per new fragment: allocation, linking *)
let dispatch_unlinked = 8        (* context switch to dispatcher, lookup *)
let dispatch_indirect = 22       (* indirect-branch hash lookup *)
let trace_head_threshold = 16    (* executions before a block is trace-promoted *)

(* Parallel runtime costs *)
let thread_signal = 400          (* wake one pool thread *)
let thread_context_copy = 250    (* copy minimal initial context *)
let loop_init_base = 800         (* LOOP_INIT: set up shared loop state *)
let loop_finish_base = 600       (* LOOP_FINISH: join + combine contexts *)
let loop_finish_per_thread = 150 (* reduction merge, context teardown *)
let bounds_check_per_pair = 12   (* one range-overlap comparison *)
let sched_block_fetch = 60       (* round-robin: claim next iteration block *)
let stm_read = 14                (* record + buffer lookup per speculative read *)
let stm_write = 20               (* buffer a speculative store *)
let stm_validate_per_entry = 10  (* value-based validation per read entry *)
let stm_commit_per_entry = 8     (* write-back per buffered store *)
let stm_checkpoint = 120         (* TX_START register checkpoint *)
let stm_abort = 300              (* rollback machine context *)
let cache_flush = 5_000          (* flush modified code cache on check failure *)
let doacross_sync = 250          (* per-chunk carried-value hand-off *)

(** {1 Optional data-cache model (prefetch extension)}

    When a machine context has [model_cache] set, accesses to cache
    lines outside the warm set pay [cache_miss] extra cycles (an
    in-order view of exposed DRAM latency). A [Prefetch] hint warms a
    line for its 1-cycle issue cost, hiding that latency — this is the
    mechanism behind the MEM_PREFETCH rule extension. Off by default so
    the main evaluation's calibration is untouched. *)

let cache_miss = 30              (* exposed DRAM latency per cold line *)
let cache_line = 64              (* bytes per line *)
let cache_lines = 4096           (* warm-set capacity: 256 KiB, L2-ish *)
