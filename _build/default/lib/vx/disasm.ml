(** Pretty disassembler for JX images and raw code buffers. *)

let pp_listing ppf ~base buf =
  List.iter
    (fun (off, i, _len) ->
       Fmt.pf ppf "%8x:  %a@." (base + off) Insn.pp i)
    (Decode.all buf)

let image ppf (img : Image.t) =
  Fmt.pf ppf "; entry 0x%x@." img.entry;
  pp_listing ppf ~base:Layout.text_base img.text;
  if img.externals <> [] then begin
    Fmt.pf ppf "; PLT:@.";
    List.iteri
      (fun i name -> Fmt.pf ppf "%8x:  <%s@plt>@." (Layout.plt_slot_addr i) name)
      img.externals
  end

let to_string (img : Image.t) = Fmt.str "%a" image img
