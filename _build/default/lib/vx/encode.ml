(** Binary encoder for VX64 instructions.

    Variable-length encoding (1-byte opcode, compact immediates) so
    that code size, rewrite-schedule size (Fig. 10) and basic-block
    addresses behave like a real CISC encoding. *)

let op_nop = 0x00
let op_hlt = 0x01
let op_mov = 0x02
let op_lea = 0x03
let op_alu = 0x04
let op_neg = 0x05
let op_not = 0x06
let op_idiv = 0x07
let op_cmp = 0x08
let op_test = 0x09
let op_jmp_d = 0x0A
let op_jmp_i = 0x0B
let op_jcc = 0x0C
let op_call_d = 0x0D
let op_call_i = 0x0E
let op_ret = 0x0F
let op_push = 0x10
let op_pop = 0x11
let op_cmov = 0x12
let op_fmov = 0x13
let op_fbin = 0x14
let op_fsqrt = 0x15
let op_fcmp = 0x16
let op_cvtsi2sd = 0x17
let op_cvtsd2si = 0x18
let op_syscall = 0x19
let op_fbcast = 0x1A
let op_prefetch = 0x1B

let alu_code = function
  | Insn.Add -> 0 | Insn.Sub -> 1 | Insn.Imul -> 2 | Insn.And -> 3
  | Insn.Or -> 4 | Insn.Xor -> 5 | Insn.Shl -> 6 | Insn.Shr -> 7
  | Insn.Sar -> 8

let alu_of_code = function
  | 0 -> Insn.Add | 1 -> Insn.Sub | 2 -> Insn.Imul | 3 -> Insn.And
  | 4 -> Insn.Or | 5 -> Insn.Xor | 6 -> Insn.Shl | 7 -> Insn.Shr
  | 8 -> Insn.Sar
  | n -> invalid_arg (Printf.sprintf "alu_of_code %d" n)

let fbin_code = function
  | Insn.Fadd -> 0 | Insn.Fsub -> 1 | Insn.Fmul -> 2 | Insn.Fdiv -> 3
  | Insn.Fmin -> 4 | Insn.Fmax -> 5

let fbin_of_code = function
  | 0 -> Insn.Fadd | 1 -> Insn.Fsub | 2 -> Insn.Fmul | 3 -> Insn.Fdiv
  | 4 -> Insn.Fmin | 5 -> Insn.Fmax
  | n -> invalid_arg (Printf.sprintf "fbin_of_code %d" n)

let width_code = function Insn.Scalar -> 0 | Insn.X -> 1 | Insn.Y -> 2

let width_of_code = function
  | 0 -> Insn.Scalar | 1 -> Insn.X | 2 -> Insn.Y
  | n -> invalid_arg (Printf.sprintf "width_of_code %d" n)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_i32 b v =
  put_u8 b v;
  put_u8 b (v asr 8);
  put_u8 b (v asr 16);
  put_u8 b (v asr 24)

let put_i64 b (v : int64) =
  for i = 0 to 7 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

let put_mem b (m : Operand.mem) =
  let flags =
    (if m.base <> None then 1 else 0)
    lor (if m.index <> None then 2 else 0)
  in
  put_u8 b flags;
  (match m.base with Some r -> put_u8 b (Reg.gp_index r) | None -> ());
  (match m.index with
   | Some r ->
     put_u8 b (Reg.gp_index r);
     put_u8 b m.scale
   | None -> ());
  put_i32 b m.disp

(* Operand tags: 0 reg, 1 imm64, 2 mem, 3 imm8, 4 imm32 *)
let put_operand b = function
  | Operand.Reg r ->
    put_u8 b 0;
    put_u8 b (Reg.gp_index r)
  | Operand.Imm v ->
    let small = Int64.to_int v in
    if Int64.equal (Int64.of_int small) v && small >= -128 && small < 128
    then begin
      put_u8 b 3;
      put_u8 b small
    end
    else if Int64.equal (Int64.of_int small) v
            && small >= -0x4000_0000 && small < 0x4000_0000
    then begin
      put_u8 b 4;
      put_i32 b small
    end
    else begin
      put_u8 b 1;
      put_i64 b v
    end
  | Operand.Mem m ->
    put_u8 b 2;
    put_mem b m

let put_fop b = function
  | Operand.Freg r ->
    put_u8 b 0;
    put_u8 b (Reg.fp_index r)
  | Operand.Fmem m ->
    put_u8 b 1;
    put_mem b m

let encode_into b (i : Insn.t) =
  match i with
  | Nop -> put_u8 b op_nop
  | Hlt -> put_u8 b op_hlt
  | Mov (d, s) -> put_u8 b op_mov; put_operand b d; put_operand b s
  | Lea (r, m) -> put_u8 b op_lea; put_u8 b (Reg.gp_index r); put_mem b m
  | Alu (op, d, s) ->
    put_u8 b op_alu;
    put_u8 b (alu_code op);
    put_operand b d;
    put_operand b s
  | Neg o -> put_u8 b op_neg; put_operand b o
  | Not o -> put_u8 b op_not; put_operand b o
  | Idiv o -> put_u8 b op_idiv; put_operand b o
  | Cmp (x, y) -> put_u8 b op_cmp; put_operand b x; put_operand b y
  | Test (x, y) -> put_u8 b op_test; put_operand b x; put_operand b y
  | Jmp (Direct a) -> put_u8 b op_jmp_d; put_i32 b a
  | Jmp (Indirect o) -> put_u8 b op_jmp_i; put_operand b o
  | Jcc (c, a) -> put_u8 b op_jcc; put_u8 b (Cond.to_int c); put_i32 b a
  | Call (Direct a) -> put_u8 b op_call_d; put_i32 b a
  | Call (Indirect o) -> put_u8 b op_call_i; put_operand b o
  | Ret -> put_u8 b op_ret
  | Push o -> put_u8 b op_push; put_operand b o
  | Pop o -> put_u8 b op_pop; put_operand b o
  | Cmov (c, r, s) ->
    put_u8 b op_cmov;
    put_u8 b (Cond.to_int c);
    put_u8 b (Reg.gp_index r);
    put_operand b s
  | Fmov (w, d, s) ->
    put_u8 b op_fmov;
    put_u8 b (width_code w);
    put_fop b d;
    put_fop b s
  | Fbin (w, op, d, s) ->
    put_u8 b op_fbin;
    put_u8 b ((width_code w lsl 4) lor fbin_code op);
    put_u8 b (Reg.fp_index d);
    put_fop b s
  | Fsqrt (w, d, s) ->
    put_u8 b op_fsqrt;
    put_u8 b (width_code w);
    put_u8 b (Reg.fp_index d);
    put_fop b s
  | Fcmp (d, s) -> put_u8 b op_fcmp; put_u8 b (Reg.fp_index d); put_fop b s
  | Cvtsi2sd (d, s) ->
    put_u8 b op_cvtsi2sd;
    put_u8 b (Reg.fp_index d);
    put_operand b s
  | Cvtsd2si (d, s) ->
    put_u8 b op_cvtsd2si;
    put_u8 b (Reg.gp_index d);
    put_fop b s
  | Fbcast (w, d, s) ->
    put_u8 b op_fbcast;
    put_u8 b (width_code w);
    put_u8 b (Reg.fp_index d);
    put_fop b s
  | Syscall n -> put_u8 b op_syscall; put_u8 b n
  | Prefetch m -> put_u8 b op_prefetch; put_mem b m

let encode i =
  let b = Buffer.create 16 in
  encode_into b i;
  Buffer.to_bytes b

let encode_list is =
  let b = Buffer.create 256 in
  List.iter (encode_into b) is;
  Buffer.to_bytes b

(** Encoded size in bytes of one instruction. *)
let size i = Bytes.length (encode i)
