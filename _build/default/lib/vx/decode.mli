(** Binary decoder for VX64 instructions, the exact inverse of
    {!Encode}. Used by the static analyser's disassembler and by the
    DBM when building basic blocks. *)

exception Bad_encoding of int  (** byte offset of the malformed datum *)

(** Decode one instruction at a byte offset, returning it and its
    encoded length.
    @raise Bad_encoding on malformed input. *)
val one : bytes -> int -> Insn.t * int

(** Decode a whole code buffer into [(offset, insn, length)] triples. *)
val all : bytes -> (int * Insn.t * int) list
