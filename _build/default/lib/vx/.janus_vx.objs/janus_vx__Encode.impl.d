lib/vx/encode.ml: Buffer Bytes Char Cond Insn Int64 List Operand Printf Reg
