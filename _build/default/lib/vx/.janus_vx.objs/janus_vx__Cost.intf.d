lib/vx/cost.mli: Insn Operand
