lib/vx/image.ml: Buffer Bytes Char Decode Hashtbl Layout List String
