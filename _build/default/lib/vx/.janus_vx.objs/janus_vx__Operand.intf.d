lib/vx/operand.mli: Format Reg
