lib/vx/insn.ml: Cond Fmt List Operand Reg
