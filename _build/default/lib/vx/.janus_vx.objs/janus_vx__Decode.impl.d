lib/vx/decode.ml: Bytes Char Cond Encode Insn Int64 List Operand Reg Sys
