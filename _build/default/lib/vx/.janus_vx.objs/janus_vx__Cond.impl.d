lib/vx/cond.ml: Fmt Printf
