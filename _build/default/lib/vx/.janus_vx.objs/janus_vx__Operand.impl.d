lib/vx/operand.ml: Fmt Int64 Printf Reg
