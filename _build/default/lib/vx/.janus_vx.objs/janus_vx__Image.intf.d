lib/vx/image.mli: Hashtbl Insn
