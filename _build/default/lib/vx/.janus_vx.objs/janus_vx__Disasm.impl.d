lib/vx/disasm.ml: Decode Fmt Image Insn Layout List
