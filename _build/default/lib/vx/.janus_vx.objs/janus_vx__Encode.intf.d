lib/vx/encode.mli: Buffer Insn
