lib/vx/builder.mli: Cond Image Insn Reg
