lib/vx/disasm.mli: Format Image
