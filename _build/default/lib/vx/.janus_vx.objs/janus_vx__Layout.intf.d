lib/vx/layout.mli:
