lib/vx/decode.mli: Insn
