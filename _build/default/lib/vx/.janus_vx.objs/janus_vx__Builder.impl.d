lib/vx/builder.ml: Array Buffer Bytes Char Cond Encode Hashtbl Image Insn Int64 Layout List Operand Printf Reg
