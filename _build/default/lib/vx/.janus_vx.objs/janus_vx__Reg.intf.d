lib/vx/reg.mli: Format
