lib/vx/reg.ml: Fmt List Printf
