lib/vx/insn.mli: Cond Format Operand Reg
