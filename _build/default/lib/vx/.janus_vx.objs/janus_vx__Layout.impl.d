lib/vx/layout.ml:
