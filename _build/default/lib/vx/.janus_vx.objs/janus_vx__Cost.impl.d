lib/vx/cost.ml: Insn Operand
