lib/vx/cond.mli: Format
