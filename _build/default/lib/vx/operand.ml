(** Operands and memory addressing for VX64.

    Memory operands follow the x86 [base + index*scale + disp] form,
    which is what the paper's symbolic range propagation (Fig. 4) and
    the MEM_PRIVATISE / MEM_MAIN_STACK rewrites manipulate. *)

type mem = {
  base : Reg.gp option;
  index : Reg.gp option;
  scale : int;  (* 1, 2, 4 or 8 *)
  disp : int;
}

type t =
  | Reg of Reg.gp
  | Imm of int64
  | Mem of mem

(** Floating-point operands: a vector register or a memory location. *)
type fop =
  | Freg of Reg.fp
  | Fmem of mem

let mem ?base ?index ?(scale = 1) ?(disp = 0) () =
  (match scale with
   | 1 | 2 | 4 | 8 -> ()
   | s -> invalid_arg (Printf.sprintf "Operand.mem: scale %d" s));
  (* scale is meaningless without an index; canonicalise so that
     structural equality and binary encoding agree *)
  let scale = if index = None then 1 else scale in
  { base; index; scale; disp }

let mem_abs addr = mem ~disp:addr ()
let mem_base ?(disp = 0) r = mem ~base:r ~disp ()
let mem_bi ?(disp = 0) ?(scale = 1) base index = mem ~base ~index ~scale ~disp ()

let equal_mem (a : mem) (b : mem) = a = b

let equal a b =
  match a, b with
  | Reg x, Reg y -> Reg.equal_gp x y
  | Imm x, Imm y -> Int64.equal x y
  | Mem x, Mem y -> equal_mem x y
  | (Reg _ | Imm _ | Mem _), _ -> false

let equal_fop a b =
  match a, b with
  | Freg x, Freg y -> Reg.equal_fp x y
  | Fmem x, Fmem y -> equal_mem x y
  | (Freg _ | Fmem _), _ -> false

(** Registers read when computing a memory operand's address. *)
let mem_regs m =
  (match m.base with Some r -> [ r ] | None -> [])
  @ (match m.index with Some r -> [ r ] | None -> [])

let pp_mem ppf m =
  let open Fmt in
  pf ppf "[";
  let printed = ref false in
  (match m.base with
   | Some r -> Reg.pp_gp ppf r; printed := true
   | None -> ());
  (match m.index with
   | Some r ->
     if !printed then string ppf "+";
     Reg.pp_gp ppf r;
     if m.scale <> 1 then pf ppf "*%d" m.scale;
     printed := true
   | None -> ());
  if m.disp <> 0 || not !printed then begin
    if !printed && m.disp >= 0 then string ppf "+";
    if m.disp < 0 then string ppf "-";
    pf ppf "0x%x" (abs m.disp)
  end;
  pf ppf "]"

let pp ppf = function
  | Reg r -> Reg.pp_gp ppf r
  | Imm i -> Fmt.pf ppf "%Ld" i
  | Mem m -> pp_mem ppf m

let pp_fop ppf = function
  | Freg r -> Reg.pp_fp ppf r
  | Fmem m -> pp_mem ppf m
