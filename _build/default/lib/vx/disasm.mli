(** Pretty disassembler for JX images and raw code buffers. *)

val pp_listing : Format.formatter -> base:int -> bytes -> unit
val image : Format.formatter -> Image.t -> unit
val to_string : Image.t -> string
