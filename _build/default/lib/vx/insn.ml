(** The VX64 instruction set.

    One constructor per machine instruction family; every instruction
    corresponds 1:1 to an encodable machine instruction, as required
    for the analyser's IR (§II-D: "Each IR instruction has a one-to-one
    correspondence with an instruction from the binary's ISA"). *)

type alu = Add | Sub | Imul | And | Or | Xor | Shl | Shr | Sar

type fbin = Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax

(** Vector width of an FP operation: scalar (lane 0), SSE-like 128-bit
    (lanes 0-1) or AVX-like 256-bit (lanes 0-3). *)
type width = Scalar | X | Y

type target = Direct of int | Indirect of Operand.t

type t =
  | Nop
  | Hlt
  | Mov of Operand.t * Operand.t           (* dst, src *)
  | Lea of Reg.gp * Operand.mem
  | Alu of alu * Operand.t * Operand.t     (* dst <- dst op src *)
  | Neg of Operand.t
  | Not of Operand.t
  | Idiv of Operand.t                      (* rax <- rax / src, rdx <- rax mod src *)
  | Cmp of Operand.t * Operand.t
  | Test of Operand.t * Operand.t
  | Jmp of target
  | Jcc of Cond.t * int                    (* absolute target address *)
  | Call of target
  | Ret
  | Push of Operand.t
  | Pop of Operand.t
  | Cmov of Cond.t * Reg.gp * Operand.t
  | Fmov of width * Operand.fop * Operand.fop  (* dst, src *)
  | Fbin of width * fbin * Reg.fp * Operand.fop
  | Fsqrt of width * Reg.fp * Operand.fop
  | Fbcast of width * Reg.fp * Operand.fop (* broadcast lane 0 of src to all lanes *)
  | Fcmp of Reg.fp * Operand.fop           (* compare lane 0, set flags *)
  | Cvtsi2sd of Reg.fp * Operand.t
  | Cvtsd2si of Reg.gp * Operand.fop
  | Syscall of int
  | Prefetch of Operand.mem
      (* software-prefetch hint: warms the cache line of the effective
         address; architecturally reads and writes nothing *)

(** Syscall numbers understood by the VM. [sys_write_*] mark a loop as
    performing IO and hence incompatible for parallelisation. *)
let sys_exit = 0
let sys_write_int = 1
let sys_write_float = 2
let sys_brk = 10
let sys_read_int = 3

let lanes = function Scalar -> 1 | X -> 2 | Y -> 4

let alu_name = function
  | Add -> "add" | Sub -> "sub" | Imul -> "imul" | And -> "and"
  | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr" | Sar -> "sar"

let fbin_name = function
  | Fadd -> "add" | Fsub -> "sub" | Fmul -> "mul"
  | Fdiv -> "div" | Fmin -> "min" | Fmax -> "max"

let width_suffix = function Scalar -> "sd" | X -> "pd" | Y -> "pd.y"

(** {1 Use/def queries used by the analyser and the DBM} *)

let mem_of_operand = function
  | Operand.Mem m -> Some m
  | Operand.Reg _ | Operand.Imm _ -> None

let mem_of_fop = function
  | Operand.Fmem m -> Some m
  | Operand.Freg _ -> None

let gp_uses_of_operand = function
  | Operand.Reg r -> [ r ]
  | Operand.Imm _ -> []
  | Operand.Mem m -> Operand.mem_regs m

let gp_uses_of_fop = function
  | Operand.Freg _ -> []
  | Operand.Fmem m -> Operand.mem_regs m

(** GP registers read by the instruction (including address registers). *)
let gp_uses = function
  | Nop | Hlt | Syscall _ -> []
  | Mov (dst, src) ->
    (match dst with Operand.Mem m -> Operand.mem_regs m | _ -> [])
    @ gp_uses_of_operand src
  | Lea (_, m) -> Operand.mem_regs m
  | Alu (_, dst, src) -> gp_uses_of_operand dst @ gp_uses_of_operand src
  | Neg o | Not o -> gp_uses_of_operand o
  | Idiv o -> Reg.RAX :: gp_uses_of_operand o
  | Cmp (a, b) | Test (a, b) -> gp_uses_of_operand a @ gp_uses_of_operand b
  | Jmp (Direct _) | Jcc _ | Call (Direct _) -> []
  | Jmp (Indirect o) | Call (Indirect o) -> gp_uses_of_operand o
  | Ret -> [ Reg.RSP ]
  | Push o -> Reg.RSP :: gp_uses_of_operand o
  | Pop o ->
    Reg.RSP :: (match o with Operand.Mem m -> Operand.mem_regs m | _ -> [])
  | Cmov (_, dst, src) -> dst :: gp_uses_of_operand src
  | Fmov (_, dst, src) ->
    (match dst with Operand.Fmem m -> Operand.mem_regs m | _ -> [])
    @ gp_uses_of_fop src
  | Fbin (_, _, _, src) | Fsqrt (_, _, src) | Fbcast (_, _, src)
  | Fcmp (_, src) ->
    gp_uses_of_fop src
  | Cvtsi2sd (_, src) -> gp_uses_of_operand src
  | Cvtsd2si (_, src) -> gp_uses_of_fop src
  | Prefetch m -> Operand.mem_regs m

(** GP registers written by the instruction. *)
let gp_defs = function
  | Mov (Operand.Reg r, _) -> [ r ]
  | Lea (r, _) -> [ r ]
  | Alu (_, Operand.Reg r, _) -> [ r ]
  | Neg (Operand.Reg r) | Not (Operand.Reg r) -> [ r ]
  | Idiv _ -> [ Reg.RAX; Reg.RDX ]
  | Call _ -> [ Reg.RSP ]
  | Ret -> [ Reg.RSP ]
  | Push _ -> [ Reg.RSP ]
  | Pop o ->
    Reg.RSP :: (match o with Operand.Reg r -> [ r ] | _ -> [])
  | Cmov (_, r, _) -> [ r ]
  | Cvtsd2si (r, _) -> [ r ]
  | Mov _ | Alu _ | Neg _ | Not _ | Nop | Hlt | Cmp _ | Test _
  | Jmp _ | Jcc _ | Fmov _ | Fbin _ | Fsqrt _ | Fbcast _ | Fcmp _
  | Cvtsi2sd _ | Syscall _ | Prefetch _ -> []

let fp_defs = function
  | Fmov (_, Operand.Freg r, _) -> [ r ]
  | Fbin (_, _, r, _) | Fsqrt (_, r, _) | Fbcast (_, r, _) | Cvtsi2sd (r, _) ->
    [ r ]
  | _ -> []

let fp_uses = function
  | Fmov (_, _, Operand.Freg r) -> [ r ]
  | Fbin (_, _, r, src) ->
    r :: (match src with Operand.Freg s -> [ s ] | Operand.Fmem _ -> [])
  | Fsqrt (_, _, Operand.Freg r) | Fbcast (_, _, Operand.Freg r) -> [ r ]
  | Fcmp (r, src) ->
    r :: (match src with Operand.Freg s -> [ s ] | Operand.Fmem _ -> [])
  | _ -> []

(** Memory locations read, as (operand, bytes) pairs. *)
let mems_read i =
  let bytes w = 8 * lanes w in
  match i with
  | Mov (_, Operand.Mem m) -> [ (m, 8) ]
  | Alu (_, Operand.Mem m, src) ->
    (m, 8) :: (match src with Operand.Mem s -> [ (s, 8) ] | _ -> [])
  | Alu (_, _, Operand.Mem m) -> [ (m, 8) ]
  | Neg (Operand.Mem m) | Not (Operand.Mem m) -> [ (m, 8) ]
  | Idiv (Operand.Mem m) -> [ (m, 8) ]
  | Cmp (a, b) | Test (a, b) ->
    List.filter_map mem_of_operand [ a; b ] |> List.map (fun m -> (m, 8))
  | Jmp (Indirect (Operand.Mem m)) | Call (Indirect (Operand.Mem m)) ->
    [ (m, 8) ]
  | Ret -> []  (* return address read modelled separately *)
  | Push (Operand.Mem m) -> [ (m, 8) ]
  | Pop _ -> []
  | Cmov (_, _, Operand.Mem m) -> [ (m, 8) ]
  | Fmov (w, _, Operand.Fmem m) -> [ (m, bytes w) ]
  | Fbin (w, _, _, Operand.Fmem m) | Fsqrt (w, _, Operand.Fmem m) ->
    [ (m, bytes w) ]
  | Fbcast (_, _, Operand.Fmem m) -> [ (m, 8) ]
  | Fcmp (_, Operand.Fmem m) -> [ (m, 8) ]
  | Cvtsi2sd (_, Operand.Mem m) -> [ (m, 8) ]
  | Cvtsd2si (_, Operand.Fmem m) -> [ (m, 8) ]
  | _ -> []

(** Memory locations written, as (operand, bytes) pairs. *)
let mems_written i =
  let bytes w = 8 * lanes w in
  match i with
  | Mov (Operand.Mem m, _) -> [ (m, 8) ]
  | Alu (_, Operand.Mem m, _) -> [ (m, 8) ]
  | Neg (Operand.Mem m) | Not (Operand.Mem m) -> [ (m, 8) ]
  | Pop (Operand.Mem m) -> [ (m, 8) ]
  | Fmov (w, Operand.Fmem m, _) -> [ (m, bytes w) ]
  | _ -> []

let is_control_flow = function
  | Jmp _ | Jcc _ | Call _ | Ret | Hlt -> true
  | _ -> false

(** Direct control-flow successors as application addresses.
    [fallthrough] is the address of the next instruction. *)
let successors ~fallthrough = function
  | Jmp (Direct a) -> [ a ]
  | Jmp (Indirect _) -> []
  | Jcc (_, a) -> [ a; fallthrough ]
  | Call _ -> [ fallthrough ]  (* treated as returning, target analysed separately *)
  | Ret | Hlt -> []
  | Syscall n when n = sys_exit -> []
  | _ -> [ fallthrough ]

(** {1 Pretty printing} *)

let pp_target ppf = function
  | Direct a -> Fmt.pf ppf "0x%x" a
  | Indirect o -> Fmt.pf ppf "*%a" Operand.pp o

let pp ppf = function
  | Nop -> Fmt.string ppf "nop"
  | Hlt -> Fmt.string ppf "hlt"
  | Mov (d, s) -> Fmt.pf ppf "mov %a, %a" Operand.pp d Operand.pp s
  | Lea (r, m) -> Fmt.pf ppf "lea %a, %a" Reg.pp_gp r Operand.pp_mem m
  | Alu (op, d, s) ->
    Fmt.pf ppf "%s %a, %a" (alu_name op) Operand.pp d Operand.pp s
  | Neg o -> Fmt.pf ppf "neg %a" Operand.pp o
  | Not o -> Fmt.pf ppf "not %a" Operand.pp o
  | Idiv o -> Fmt.pf ppf "idiv %a" Operand.pp o
  | Cmp (a, b) -> Fmt.pf ppf "cmp %a, %a" Operand.pp a Operand.pp b
  | Test (a, b) -> Fmt.pf ppf "test %a, %a" Operand.pp a Operand.pp b
  | Jmp t -> Fmt.pf ppf "jmp %a" pp_target t
  | Jcc (c, a) -> Fmt.pf ppf "j%s 0x%x" (Cond.name c) a
  | Call t -> Fmt.pf ppf "call %a" pp_target t
  | Ret -> Fmt.string ppf "ret"
  | Push o -> Fmt.pf ppf "push %a" Operand.pp o
  | Pop o -> Fmt.pf ppf "pop %a" Operand.pp o
  | Cmov (c, r, s) ->
    Fmt.pf ppf "cmov%s %a, %a" (Cond.name c) Reg.pp_gp r Operand.pp s
  | Fmov (w, d, s) ->
    Fmt.pf ppf "mov%s %a, %a" (width_suffix w) Operand.pp_fop d Operand.pp_fop s
  | Fbin (w, op, d, s) ->
    Fmt.pf ppf "%s%s %a, %a" (fbin_name op) (width_suffix w)
      Reg.pp_fp d Operand.pp_fop s
  | Fsqrt (w, d, s) ->
    Fmt.pf ppf "sqrt%s %a, %a" (width_suffix w) Reg.pp_fp d Operand.pp_fop s
  | Fbcast (w, d, s) ->
    Fmt.pf ppf "bcast%s %a, %a" (width_suffix w) Reg.pp_fp d Operand.pp_fop s
  | Fcmp (a, b) -> Fmt.pf ppf "ucomisd %a, %a" Reg.pp_fp a Operand.pp_fop b
  | Cvtsi2sd (d, s) -> Fmt.pf ppf "cvtsi2sd %a, %a" Reg.pp_fp d Operand.pp s
  | Cvtsd2si (d, s) -> Fmt.pf ppf "cvtsd2si %a, %a" Reg.pp_gp d Operand.pp_fop s
  | Syscall n -> Fmt.pf ppf "syscall %d" n
  | Prefetch m -> Fmt.pf ppf "prefetcht0 %a" Operand.pp_mem m

let to_string i = Fmt.str "%a" pp i
