(** Assembly builder: emits VX64 instructions with symbolic labels and
    produces a {!Image.t}. Used by the guest compiler's backend, by the
    VM's library-fragment factory and by hand-written test binaries. *)

type patch_kind = Pjmp | Pjcc of Cond.t | Pcall | Plea of Reg.gp

type t = {
  mutable rev_insns : Insn.t list;
  mutable count : int;
  mutable offset : int;  (* byte offset of next instruction *)
  labels : (string, int) Hashtbl.t;  (* label -> byte offset *)
  mutable patches : (int * patch_kind * string) list;  (* insn index *)
  base : int;  (* virtual base address of the code *)
}

let create ?(base = Layout.text_base) () =
  {
    rev_insns = [];
    count = 0;
    offset = 0;
    labels = Hashtbl.create 64;
    patches = [];
    base;
  }

let here b = b.base + b.offset

(** Define [name] at the current position. *)
let label b name =
  if Hashtbl.mem b.labels name then
    invalid_arg (Printf.sprintf "Builder.label: duplicate %S" name);
  Hashtbl.replace b.labels name b.offset

let ins b i =
  b.rev_insns <- i :: b.rev_insns;
  b.count <- b.count + 1;
  b.offset <- b.offset + Encode.size i

(** Emit a direct jump to a (possibly forward) label. *)
let jmp b name =
  b.patches <- (b.count, Pjmp, name) :: b.patches;
  ins b (Insn.Jmp (Insn.Direct 0))

let jcc b c name =
  b.patches <- (b.count, Pjcc c, name) :: b.patches;
  ins b (Insn.Jcc (c, 0))

let call_label b name =
  b.patches <- (b.count, Pcall, name) :: b.patches;
  ins b (Insn.Call (Insn.Direct 0))

(** Load the address of a label into a register (via an absolute lea).
    The encoded size does not depend on the final address. *)
let lea_label b r name =
  b.patches <- (b.count, Plea r, name) :: b.patches;
  ins b (Insn.Lea (r, Operand.mem_abs 0x7fffffff))

let label_addr b name =
  match Hashtbl.find_opt b.labels name with
  | Some off -> b.base + off
  | None -> invalid_arg (Printf.sprintf "Builder.label_addr: unknown %S" name)

(** Resolve patches and return the final instruction list. *)
let finish b =
  let insns = Array.of_list (List.rev b.rev_insns) in
  List.iter
    (fun (idx, kind, name) ->
       let target =
         match Hashtbl.find_opt b.labels name with
         | Some off -> b.base + off
         | None ->
           invalid_arg (Printf.sprintf "Builder.finish: undefined label %S" name)
       in
       insns.(idx) <-
         (match kind with
          | Pjmp -> Insn.Jmp (Insn.Direct target)
          | Pjcc c -> Insn.Jcc (c, target)
          | Pcall -> Insn.Call (Insn.Direct target)
          | Plea r -> Insn.Lea (r, Operand.mem_abs target)))
    b.patches;
  Array.to_list insns

let to_bytes b = Encode.encode_list (finish b)

(** {1 Data-section builder} *)

module Data = struct
  type t = {
    buf : Buffer.t;
    labels : (string, int) Hashtbl.t;  (* label -> offset in data *)
  }

  let create () = { buf = Buffer.create 256; labels = Hashtbl.create 16 }
  let here d = Buffer.length d.buf

  let label d name =
    if Hashtbl.mem d.labels name then
      invalid_arg (Printf.sprintf "Data.label: duplicate %S" name);
    Hashtbl.replace d.labels name (here d)

  let addr d name =
    match Hashtbl.find_opt d.labels name with
    | Some off -> Layout.data_base + off
    | None -> invalid_arg (Printf.sprintf "Data.addr: unknown %S" name)

  let i64 d (v : int64) =
    for i = 0 to 7 do
      Buffer.add_char d.buf
        (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
    done

  let f64 d v = i64 d (Int64.bits_of_float v)
  let zeros d n = for _ = 1 to n do Buffer.add_char d.buf '\000' done
  let contents d = Buffer.to_bytes d.buf
end

(** Assemble a full image from a code builder, data and externals. *)
let to_image ?(data = Bytes.create 0) ?(bss_size = 0) ?(externals = []) ~entry b =
  let text = to_bytes b in
  let entry_addr =
    match Hashtbl.find_opt b.labels entry with
    | Some off -> b.base + off
    | None -> invalid_arg (Printf.sprintf "Builder.to_image: no entry %S" entry)
  in
  { Image.entry = entry_addr; text; data; bss_size; externals }
