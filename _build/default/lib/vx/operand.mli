(** Operands and memory addressing for VX64. Memory operands follow the
    x86 [base + index*scale + disp] form — the shape the paper's
    symbolic range propagation (Fig. 4) and the MEM_PRIVATISE /
    MEM_MAIN_STACK rewrites manipulate. *)

type mem = {
  base : Reg.gp option;
  index : Reg.gp option;
  scale : int;  (** 1, 2, 4 or 8; canonicalised to 1 without an index *)
  disp : int;
}

type t =
  | Reg of Reg.gp
  | Imm of int64
  | Mem of mem

(** Floating-point operands: a vector register or memory. *)
type fop =
  | Freg of Reg.fp
  | Fmem of mem

(** Smart constructor; validates the scale and canonicalises it to 1
    when there is no index (so structural equality matches the binary
    encoding).
    @raise Invalid_argument on a bad scale. *)
val mem :
  ?base:Reg.gp -> ?index:Reg.gp -> ?scale:int -> ?disp:int -> unit -> mem

val mem_abs : int -> mem
val mem_base : ?disp:int -> Reg.gp -> mem
val mem_bi : ?disp:int -> ?scale:int -> Reg.gp -> Reg.gp -> mem

val equal_mem : mem -> mem -> bool
val equal : t -> t -> bool
val equal_fop : fop -> fop -> bool

(** Registers read when computing the operand's address. *)
val mem_regs : mem -> Reg.gp list

val pp_mem : Format.formatter -> mem -> unit
val pp : Format.formatter -> t -> unit
val pp_fop : Format.formatter -> fop -> unit
