(** The VX64 instruction set. One constructor per machine instruction
    family; every instruction corresponds 1:1 to an encodable machine
    instruction, as the analyser's IR requires (§II-D). *)

type alu = Add | Sub | Imul | And | Or | Xor | Shl | Shr | Sar

type fbin = Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax

(** Vector width of an FP operation: scalar (lane 0), SSE-like 128-bit
    (lanes 0-1) or AVX-like 256-bit (lanes 0-3). *)
type width = Scalar | X | Y

type target = Direct of int | Indirect of Operand.t

type t =
  | Nop
  | Hlt
  | Mov of Operand.t * Operand.t           (** dst, src *)
  | Lea of Reg.gp * Operand.mem
  | Alu of alu * Operand.t * Operand.t     (** dst <- dst op src *)
  | Neg of Operand.t
  | Not of Operand.t
  | Idiv of Operand.t                      (** rax <- rax/src, rdx <- rem *)
  | Cmp of Operand.t * Operand.t
  | Test of Operand.t * Operand.t
  | Jmp of target
  | Jcc of Cond.t * int                    (** absolute target address *)
  | Call of target
  | Ret
  | Push of Operand.t
  | Pop of Operand.t
  | Cmov of Cond.t * Reg.gp * Operand.t
  | Fmov of width * Operand.fop * Operand.fop
  | Fbin of width * fbin * Reg.fp * Operand.fop
  | Fsqrt of width * Reg.fp * Operand.fop
  | Fbcast of width * Reg.fp * Operand.fop (** broadcast lane 0 *)
  | Fcmp of Reg.fp * Operand.fop           (** compare lane 0, set flags *)
  | Cvtsi2sd of Reg.fp * Operand.t
  | Cvtsd2si of Reg.gp * Operand.fop
  | Syscall of int
  | Prefetch of Operand.mem
      (** software-prefetch hint: warms the cache line of the effective
          address; architecturally reads and writes nothing *)

(** {1 Syscall numbers understood by the VM} *)

val sys_exit : int
val sys_write_int : int
val sys_write_float : int
val sys_brk : int
val sys_read_int : int

val lanes : width -> int
val alu_name : alu -> string
val fbin_name : fbin -> string
val width_suffix : width -> string

(** {1 Use/def queries for the analyser and the DBM} *)

val mem_of_operand : Operand.t -> Operand.mem option
val mem_of_fop : Operand.fop -> Operand.mem option
val gp_uses_of_operand : Operand.t -> Reg.gp list
val gp_uses_of_fop : Operand.fop -> Reg.gp list

(** GP registers read (including address registers). *)
val gp_uses : t -> Reg.gp list

(** GP registers written. *)
val gp_defs : t -> Reg.gp list

val fp_defs : t -> Reg.fp list
val fp_uses : t -> Reg.fp list

(** Memory locations read / written, as (operand, bytes) pairs. *)
val mems_read : t -> (Operand.mem * int) list
val mems_written : t -> (Operand.mem * int) list

val is_control_flow : t -> bool

(** Direct control-flow successors as application addresses. *)
val successors : fallthrough:int -> t -> int list

val pp_target : Format.formatter -> target -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
