lib/schedule/rule.mli: Buffer Format
