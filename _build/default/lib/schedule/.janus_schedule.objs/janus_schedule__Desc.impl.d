lib/schedule/desc.ml: Buffer Bytes Char Cond Int32 Janus_vx List Printf Reg Rexpr
