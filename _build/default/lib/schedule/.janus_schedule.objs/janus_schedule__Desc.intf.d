lib/schedule/desc.mli: Buffer Cond Janus_vx Reg Rexpr
