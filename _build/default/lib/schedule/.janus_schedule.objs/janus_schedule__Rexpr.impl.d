lib/schedule/rexpr.ml: Buffer Bytes Char Fmt Int32 Int64 Janus_vx Printf Reg
