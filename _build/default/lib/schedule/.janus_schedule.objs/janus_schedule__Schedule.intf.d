lib/schedule/schedule.mli: Desc Format Hashtbl Rule
