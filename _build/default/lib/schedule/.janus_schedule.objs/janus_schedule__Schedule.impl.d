lib/schedule/schedule.ml: Buffer Bytes Char Desc Fmt Hashtbl Int32 Int64 List Printf Rule String
