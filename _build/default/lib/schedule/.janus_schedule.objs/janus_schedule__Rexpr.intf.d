lib/schedule/rexpr.mli: Buffer Format Janus_vx Reg
