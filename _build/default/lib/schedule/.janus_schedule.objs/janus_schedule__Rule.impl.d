lib/schedule/rule.ml: Buffer Bytes Char Fmt Int32 Printf
