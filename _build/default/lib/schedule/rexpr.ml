(** Runtime expressions.

    The static analyser cannot always reduce a value (loop bound, array
    base, extent) to a constant, but it can express it as a small
    computation over machine state at a specific program point. These
    expressions are serialised into the rewrite schedule's data section
    and evaluated by the DBM's rule handlers at runtime — the concrete
    mechanism behind the paper's "static analysis conveys information
    to the DBM" (§II-A1). *)

open Janus_vx

type t =
  | Const of int64
  | Reg of Reg.gp            (* register value at the trigger point *)
  | Load of t                (* 64-bit load from the computed address *)
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Max of t * t
  | Min of t * t

(** Evaluation environment: how to read machine state. *)
type env = {
  get_reg : Reg.gp -> int64;
  load : int -> int64;
}

let rec eval env = function
  | Const v -> v
  | Reg r -> env.get_reg r
  | Load a -> env.load (Int64.to_int (eval env a))
  | Add (a, b) -> Int64.add (eval env a) (eval env b)
  | Sub (a, b) -> Int64.sub (eval env a) (eval env b)
  | Mul (a, b) -> Int64.mul (eval env a) (eval env b)
  | Max (a, b) ->
    let x = eval env a and y = eval env b in
    if Int64.compare x y >= 0 then x else y
  | Min (a, b) ->
    let x = eval env a and y = eval env b in
    if Int64.compare x y <= 0 then x else y

(** Number of evaluation steps — used to charge runtime-check cycles. *)
let rec size = function
  | Const _ | Reg _ -> 1
  | Load a -> 1 + size a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Max (a, b) | Min (a, b) ->
    1 + size a + size b

(** Whether evaluation touches memory (a loaded bound cannot be assumed
    stable across the loop unless the analyser proved it). *)
let rec has_load = function
  | Const _ | Reg _ -> false
  | Load _ -> true
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Max (a, b) | Min (a, b) ->
    has_load a || has_load b

let rec pp ppf = function
  | Const v -> Fmt.pf ppf "%Ld" v
  | Reg r -> Reg.pp_gp ppf r
  | Load a -> Fmt.pf ppf "[%a]" pp a
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp a pp b
  | Max (a, b) -> Fmt.pf ppf "max(%a, %a)" pp a pp b
  | Min (a, b) -> Fmt.pf ppf "min(%a, %a)" pp a pp b

let to_string e = Fmt.str "%a" pp e

(** {1 Serialisation} *)

let rec write buf = function
  | Const v ->
    let small = Int64.to_int v in
    if Int64.equal (Int64.of_int small) v && small >= -128 && small < 128
    then begin
      Buffer.add_char buf '\008';
      Buffer.add_char buf (Char.chr (small land 0xff))
    end
    else if Int64.equal (Int64.of_int small) v
            && small >= -0x4000_0000 && small < 0x4000_0000 then begin
      Buffer.add_char buf '\009';
      Buffer.add_int32_le buf (Int32.of_int small)
    end
    else begin
      Buffer.add_char buf '\000';
      Buffer.add_int64_le buf v
    end
  | Reg r ->
    Buffer.add_char buf '\001';
    Buffer.add_char buf (Char.chr (Reg.gp_index r))
  | Load a ->
    Buffer.add_char buf '\002';
    write buf a
  | Add (a, b) -> Buffer.add_char buf '\003'; write buf a; write buf b
  | Sub (a, b) -> Buffer.add_char buf '\004'; write buf a; write buf b
  | Mul (a, b) -> Buffer.add_char buf '\005'; write buf a; write buf b
  | Max (a, b) -> Buffer.add_char buf '\006'; write buf a; write buf b
  | Min (a, b) -> Buffer.add_char buf '\007'; write buf a; write buf b

let rec read buf pos =
  let tag = Char.code (Bytes.get buf !pos) in
  incr pos;
  match tag with
  | 0 ->
    let v = Bytes.get_int64_le buf !pos in
    pos := !pos + 8;
    Const v
  | 1 ->
    let r = Reg.gp_of_index (Char.code (Bytes.get buf !pos)) in
    incr pos;
    Reg r
  | 2 -> Load (read buf pos)
  | 3 -> let a = read buf pos in Add (a, read buf pos)
  | 4 -> let a = read buf pos in Sub (a, read buf pos)
  | 5 -> let a = read buf pos in Mul (a, read buf pos)
  | 6 -> let a = read buf pos in Max (a, read buf pos)
  | 7 -> let a = read buf pos in Min (a, read buf pos)
  | 8 ->
    let v = Char.code (Bytes.get buf !pos) in
    incr pos;
    Const (Int64.of_int (if v >= 128 then v - 256 else v))
  | 9 ->
    let v = Int32.to_int (Bytes.get_int32_le buf !pos) in
    pos := !pos + 4;
    Const (Int64.of_int v)
  | n -> failwith (Printf.sprintf "Rexpr.read: bad tag %d" n)
