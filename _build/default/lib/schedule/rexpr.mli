(** Runtime expressions: the concrete mechanism by which static
    analysis conveys values (loop bounds, array bases, extents) to the
    DBM (§II-A1). Serialised into the rewrite schedule's data section
    and evaluated by rule handlers against live machine state. *)

open Janus_vx

type t =
  | Const of int64
  | Reg of Reg.gp            (** register value at the trigger point *)
  | Load of t                (** 64-bit load from the computed address *)
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Max of t * t
  | Min of t * t

(** Evaluation environment: how to read machine state. *)
type env = {
  get_reg : Reg.gp -> int64;
  load : int -> int64;
}

val eval : env -> t -> int64

(** Evaluation step count, used to charge runtime-check cycles. *)
val size : t -> int

(** Whether evaluation touches memory. *)
val has_load : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val write : Buffer.t -> t -> unit
val read : bytes -> int ref -> t
