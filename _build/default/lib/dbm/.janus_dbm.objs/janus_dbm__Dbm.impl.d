lib/dbm/dbm.ml: Array Cost Hashtbl Insn Int64 Janus_schedule Janus_vm Janus_vx Libcalls List Machine Operand Program Reg Run Semantics String
