lib/dbm/dbm.mli: Hashtbl Insn Janus_schedule Janus_vm Janus_vx Machine Program
