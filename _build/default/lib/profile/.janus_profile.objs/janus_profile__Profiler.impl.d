lib/profile/profiler.ml: Buffer Bytes Char Hashtbl In_channel Int32 Int64 Janus_analysis Janus_dbm Janus_schedule Janus_vm Janus_vx List Machine Out_channel Program Queue Run String
