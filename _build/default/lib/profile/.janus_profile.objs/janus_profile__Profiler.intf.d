lib/profile/profiler.mli: Hashtbl Janus_analysis Janus_vx
