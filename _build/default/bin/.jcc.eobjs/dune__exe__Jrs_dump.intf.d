bin/jrs_dump.mli:
