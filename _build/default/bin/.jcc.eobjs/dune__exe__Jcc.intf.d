bin/jcc.mli:
