bin/janus_analyze.mli:
