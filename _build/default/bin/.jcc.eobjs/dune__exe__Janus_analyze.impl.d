bin/janus_analyze.ml: Arg Bytes Cmd Cmdliner Fmt In_channel Janus_analysis Janus_core Janus_profile Janus_schedule Janus_vx List Out_channel Term
