bin/jx_objdump.mli:
