bin/janus_eval.mli:
