bin/janus_run.ml: Arg Bytes Cmd Cmdliner Fmt In_channel Int64 Janus_core Janus_schedule Janus_vx Term
