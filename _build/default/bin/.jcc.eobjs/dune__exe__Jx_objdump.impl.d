bin/jx_objdump.ml: Arg Array Bytes Cmd Cmdliner Fmt Hashtbl Image In_channel Insn Janus_analysis Janus_vx Layout List Printf String Term
