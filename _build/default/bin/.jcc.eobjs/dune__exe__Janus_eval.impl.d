bin/janus_eval.ml: Array Fmt Janus_core List String Sys
