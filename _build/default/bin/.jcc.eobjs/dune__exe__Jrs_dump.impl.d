bin/jrs_dump.ml: Arg Bytes Cmd Cmdliner Cond Fmt In_channel Int64 Janus_schedule Janus_vx List Printf Reg String Term
