bin/janus_run.mli:
