bin/jcc.ml: Arg Cmd Cmdliner Fmt In_channel Janus_jcc Janus_vx List Out_channel Term
