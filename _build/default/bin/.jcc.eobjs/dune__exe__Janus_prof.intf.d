bin/janus_prof.mli:
