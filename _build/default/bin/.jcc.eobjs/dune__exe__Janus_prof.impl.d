bin/janus_prof.ml: Arg Bytes Cmd Cmdliner Fmt Hashtbl In_channel Int64 Janus_analysis Janus_profile Janus_vx List Term
