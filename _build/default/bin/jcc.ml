(* jcc: compile guest mini-C source to a JX executable.

   Usage: jcc input.jc -o out.jx [-O0..3] [--vendor gcc|icc] [--mavx]
          [--autopar N] [--dump-asm] *)

open Cmdliner

let compile input output opt vendor avx autopar dump_asm =
  let src = In_channel.with_open_text input In_channel.input_all in
  let vendor =
    match vendor with
    | "icc" -> Janus_jcc.Jcc.Icc
    | _ -> Janus_jcc.Jcc.Gcc
  in
  let options = { Janus_jcc.Jcc.vendor; opt; avx; autopar } in
  match Janus_jcc.Jcc.compile ~options src with
  | image ->
    Out_channel.with_open_bin output (fun oc ->
        Out_channel.output_bytes oc (Janus_vx.Image.to_bytes image));
    if dump_asm then Fmt.pr "%a@." Janus_vx.Disasm.image image;
    Fmt.pr "wrote %s (%d bytes, %d externals)@." output
      (Janus_vx.Image.size image)
      (List.length image.Janus_vx.Image.externals);
    0
  | exception Janus_jcc.Jcc.Error msg ->
    Fmt.epr "jcc: %s@." msg;
    1

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"SRC")

let output =
  Arg.(value & opt string "a.jx" & info [ "o"; "output" ] ~docv:"OUT")

let opt_level =
  Arg.(value & opt int 3 & info [ "O"; "opt" ] ~docv:"LEVEL"
         ~doc:"Optimisation level (0-3)")

let vendor =
  Arg.(value & opt string "gcc" & info [ "vendor" ] ~docv:"VENDOR"
         ~doc:"Compiler profile: gcc or icc")

let avx = Arg.(value & flag & info [ "mavx" ] ~doc:"Wider vectors + peeling")

let autopar =
  Arg.(value & opt int 0 & info [ "autopar" ] ~docv:"N"
         ~doc:"Auto-parallelise with N threads (0 = off)")

let dump_asm = Arg.(value & flag & info [ "dump-asm" ] ~doc:"Print assembly")

let cmd =
  Cmd.v
    (Cmd.info "jcc" ~doc:"Guest mini-C compiler producing JX executables")
    Term.(
      const compile $ input $ output $ opt_level $ vendor $ avx $ autopar
      $ dump_asm)

let () = exit (Cmd.eval' cmd)
