(* jx_objdump: objdump-style inspector for JX executables.

   Prints the image header and PLT, then a per-function disassembly
   with recovered basic-block leaders, control-flow edges and loop
   annotations (header/latch/exit markers with nesting depth and the
   analyser's classification). Stripped binaries have no symbol names,
   so functions are labelled by their entry addresses, exactly what the
   paper's analyser works from.

   Usage: jx_objdump [--headers] [--no-loops] file.jx *)

open Cmdliner
module Analysis = Janus_analysis.Analysis
module Cfg = Janus_analysis.Cfg
module Loopanal = Janus_analysis.Loopanal
module Looptree = Janus_analysis.Looptree
open Janus_vx

let read_image path =
  let bytes =
    In_channel.with_open_bin path (fun ic ->
        Bytes.of_string (In_channel.input_all ic))
  in
  Image.of_bytes bytes

let pp_headers ppf (img : Image.t) =
  Fmt.pf ppf "JX executable, %d bytes@." (Image.size img);
  Fmt.pf ppf "  entry   0x%x@." img.Image.entry;
  Fmt.pf ppf "  .text   0x%x  %6d bytes@." Layout.text_base
    (Bytes.length img.Image.text);
  Fmt.pf ppf "  .plt    0x%x  %6d slots@." Layout.plt_base
    (List.length img.Image.externals);
  Fmt.pf ppf "  .data   0x%x  %6d bytes@." Layout.data_base
    (Bytes.length img.Image.data);
  Fmt.pf ppf "  .bss    0x%x  %6d bytes@." Layout.bss_base img.Image.bss_size;
  List.iteri
    (fun i name ->
       Fmt.pf ppf "  plt[%d] 0x%x  %s@." i (Layout.plt_slot_addr i) name)
    img.Image.externals

(* loop annotations for one function: block address -> marker strings *)
let loop_marks (reports : Loopanal.report list) (f : Cfg.func) =
  let marks : (int, string list) Hashtbl.t = Hashtbl.create 16 in
  let add addr s =
    let old = try Hashtbl.find marks addr with Not_found -> [] in
    Hashtbl.replace marks addr (old @ [ s ])
  in
  List.iter
    (fun (r : Loopanal.report) ->
       if r.Loopanal.func.Cfg.fentry = f.Cfg.fentry then begin
         let l = r.Loopanal.loop in
         let cls = Loopanal.classification_name r.Loopanal.cls in
         add l.Looptree.header
           (Printf.sprintf "loop %d header (%s)" l.Looptree.lid cls);
         List.iter
           (fun latch ->
              add latch (Printf.sprintf "loop %d latch" l.Looptree.lid))
           l.Looptree.latches;
         List.iter
           (fun (_, target) ->
              add target (Printf.sprintf "loop %d exit" l.Looptree.lid))
           l.Looptree.exits
       end)
    reports;
  marks

let pp_block marks ppf (b : Cfg.bblock) =
  (match Hashtbl.find_opt marks b.Cfg.baddr with
   | Some ms -> List.iter (fun m -> Fmt.pf ppf "  ; <%s>@." m) ms
   | None -> ());
  Array.iter
    (fun (ii : Cfg.insn_info) ->
       Fmt.pf ppf "  %06x:  %a@." ii.Cfg.addr Insn.pp ii.Cfg.insn)
    b.Cfg.insns;
  match b.Cfg.succs with
  | [] | [ _ ] -> ()   (* fallthrough / return: no annotation needed *)
  | succs ->
    Fmt.pf ppf "  ; -> %s@."
      (String.concat ", " (List.map (Printf.sprintf "0x%x") succs))

let pp_func marks ppf (f : Cfg.func) =
  Fmt.pf ppf "@.<func_%x>%s:@." f.Cfg.fentry
    (if f.Cfg.irregular then "  ; irregular control flow" else "");
  List.iter (pp_block marks ppf) f.Cfg.blocks;
  List.iter
    (fun (addr, name) -> Fmt.pf ppf "  ; 0x%x calls %s@plt@." addr name)
    f.Cfg.excall_sites

let objdump headers_only no_loops input =
  let img = read_image input in
  Fmt.pr "%a" pp_headers img;
  if not headers_only then begin
    let t = Analysis.analyse_image img in
    let reports = if no_loops then [] else t.Analysis.reports in
    List.iter
      (fun (f : Cfg.func) -> pp_func (loop_marks reports f) Fmt.stdout f)
      (List.sort
         (fun (a : Cfg.func) b -> compare a.Cfg.fentry b.Cfg.fentry)
         (Cfg.all_funcs t.Analysis.cfg))
  end;
  0

let input_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.jx")

let headers_arg =
  Arg.(value & flag & info [ "headers" ] ~doc:"Print only the image header.")

let no_loops_arg =
  Arg.(value & flag & info [ "no-loops" ] ~doc:"Skip loop annotations.")

let cmd =
  Cmd.v
    (Cmd.info "jx_objdump" ~doc:"Disassemble and annotate a JX executable")
    Term.(const objdump $ headers_arg $ no_loops_arg $ input_arg)

let () = exit (Cmd.eval' cmd)
