(** Symbolic execution of VX64 code over {!Sympoly} values.

    Drives both the whole-function pass and the per-loop pass of the
    analyser: registers and stack slots become polynomials over atoms;
    loads forward from in-flight stores (so spilled induction variables
    are still recognised); control-flow merges produce phi atoms unless
    both sides agree — the paper's duplicated-path elimination. *)

open Janus_vx
open Sympoly

type value = Vint of Sympoly.t | Vfloat of fexpr

type cmp_info =
  | Cmp_int of Sympoly.t * Sympoly.t * int  (* operands + compare insn addr *)
  | Cmp_float of fexpr * fexpr

type store_entry = {
  s_addr : Sympoly.t;
  s_bytes : int;
  s_val : value;
}

type state = {
  regs : Sympoly.t array;
  fregs : fexpr array;
  mutable cmp : cmp_info option;
  mutable stores : store_entry list;  (* forwarding table *)
}

type access = {
  a_addr : Sympoly.t;     (* symbolic byte address *)
  a_bytes : int;
  a_write : bool;
  a_insn : int;           (* instruction address *)
  a_value : value option; (* stored value, for reduction analysis *)
}

(** How a fresh unknown should be named (whole-function vs loop pass). *)
type naming = {
  name_loc : loc -> atom;   (* initial value of a location *)
  named : unit -> (loc * atom) list;  (* locations named so far *)
}

type ctx = {
  naming : naming;
  mutable st : state;
  mutable accesses : access list;
  mutable loads : (Sympoly.t * int * value * atom) list;  (* memo: addr, bytes, val, atom *)
  mutable load_addrs : (int * Sympoly.t) list;  (* load atom id -> address poly *)
  mutable dirty : (Sympoly.t * int) list;  (* locations written on some path *)
  merge_srcs : (int, value list) Hashtbl.t;  (* merge atom -> its inputs *)
  mutable all_cmps : cmp_info list;  (* every flag-setting comparison *)
  mutable gen : int;                  (* bumped at calls: globals may change *)
  mutable excalls : (int * string) list;
  mutable calls : (int * int) list;   (* call site, target *)
  mutable has_syscall : bool;
  mutable has_indirect : bool;
  mutable has_unknown_store : bool;
  rsp0 : atom;              (* works with naming: atom of entry RSP *)
}

let make_naming mk =
  let memo = Hashtbl.create 32 in
  {
    name_loc =
      (fun l ->
         match Hashtbl.find_opt memo l with
         | Some a -> a
         | None ->
           let a = fresh_atom (mk l) in
           Hashtbl.replace memo l a;
           a);
    named = (fun () -> Hashtbl.fold (fun l a acc -> (l, a) :: acc) memo []);
  }

let entry_naming () = make_naming (fun l -> Entry l)
let header_naming lid = make_naming (fun l -> Header (lid, l))

let create naming =
  let rsp0 = naming.name_loc (Rloc Reg.RSP) in
  let regs =
    Array.init Reg.gp_count (fun i ->
        if i = Reg.gp_index Reg.RSP then of_atom rsp0
        else of_atom (naming.name_loc (Rloc (Reg.gp_of_index i))))
  in
  let fregs =
    Array.init Reg.fp_count (fun i ->
        Fatom (naming.name_loc (Floc (Reg.fp_of_index i))))
  in
  {
    naming;
    st = { regs; fregs; cmp = None; stores = [] };
    accesses = [];
    loads = [];
    load_addrs = [];
    dirty = [];
    merge_srcs = Hashtbl.create 32;
    all_cmps = [];
    gen = 0;
    excalls = [];
    calls = [];
    has_syscall = false;
    has_indirect = false;
    has_unknown_store = false;
    rsp0;
  }

let get_reg ctx r = ctx.st.regs.(Reg.gp_index r)
let set_reg ctx r v = ctx.st.regs.(Reg.gp_index r) <- v
let get_freg ctx r = ctx.st.fregs.(Reg.fp_index r)
let set_freg ctx r v = ctx.st.fregs.(Reg.fp_index r) <- v

(** Classify a symbolic address: is it a pure stack slot, a constant
    (global/absolute), or something else? *)
type addr_class =
  | Astack of int      (* offset from the entry RSP *)
  | Aconst of int      (* absolute address *)
  | Aother

let classify_addr ctx p =
  match to_const p with
  | Some c -> Aconst (Int64.to_int c)
  | None ->
    (match coeff_of p (fun a -> a.aid = ctx.rsp0.aid) with
     | Some (c, _) when Int64.equal c 1L ->
       let rest = without p (fun a -> a.aid = ctx.rsp0.aid) in
       (match to_const rest with
        | Some off -> Astack (Int64.to_int off)
        | None -> Aother)
     | _ -> Aother)

(* can two symbolic ranges possibly overlap? *)
let may_overlap ctx a1 b1 a2 b2 =
  let diff = sub a1 a2 in
  match to_const diff with
  | Some d ->
    let d = Int64.to_int d in
    d > -b2 && d < b1
  | None ->
    (* stack and non-stack never alias; distinct unknowns may *)
    (match classify_addr ctx a1, classify_addr ctx a2 with
     | Astack _, (Aconst _ | Aother) | (Aconst _ | Aother), Astack _ -> false
     | _ -> true)

let addr_of_mem ctx (m : Operand.mem) =
  let base =
    match m.base with Some r -> get_reg ctx r | None -> zero
  in
  let index =
    match m.index with
    | Some r -> scale (Int64.of_int m.scale) (get_reg ctx r)
    | None -> zero
  in
  add (add base index) (const (Int64.of_int m.disp))

(* record an access and perform a symbolic load *)
let load ctx ~insn_addr addr bytes : value =
  ctx.accesses <-
    { a_addr = addr; a_bytes = bytes; a_write = false; a_insn = insn_addr;
      a_value = None }
    :: ctx.accesses;
  (* forward from an exactly-matching store *)
  let forwarded =
    List.find_opt
      (fun s -> s.s_bytes = bytes && equal s.s_addr addr)
      ctx.st.stores
  in
  match forwarded with
  | Some s -> s.s_val
  | None ->
    (* memoised load atom *)
    (match
       List.find_opt (fun (a, b, _, _) -> b = bytes && equal a addr) ctx.loads
     with
     | Some (_, _, v, _) -> v
     | None ->
       let is_dirty =
         List.exists
           (fun (da, db) -> may_overlap ctx addr bytes da db)
           ctx.dirty
       in
       (* name the initial contents of stable locations so that
          spilled IVs chain across iterations; never resurrect a
          location written on some path or possibly changed by a call *)
       let v, at =
         match classify_addr ctx addr with
         | Astack off when not is_dirty ->
           let a = ctx.naming.name_loc (Sloc off) in
           (Vint (of_atom a), a)
         | Aconst abs when not is_dirty && ctx.gen = 0 ->
           let a = ctx.naming.name_loc (Gloc abs) in
           (Vint (of_atom a), a)
         | Astack _ | Aconst _ | Aother ->
           let a = fresh_atom (Load insn_addr) in
           (Vint (of_atom a), a)
       in
       ctx.loads <- (addr, bytes, v, at) :: ctx.loads;
       ctx.load_addrs <- (at.aid, addr) :: ctx.load_addrs;
       v)

let loadf ctx ~insn_addr addr bytes : fexpr =
  match load ctx ~insn_addr addr bytes with
  | Vfloat f -> f
  | Vint p ->
    (* reinterpret the integer-named cell as a float value *)
    (match atoms p with
     | [ a ] when equal p (of_atom a) -> Fatom a
     | _ -> Funknown (fresh_atom (Fval insn_addr)))

let store ctx ~insn_addr addr bytes v =
  ctx.accesses <-
    { a_addr = addr; a_bytes = bytes; a_write = true; a_insn = insn_addr;
      a_value = Some v }
    :: ctx.accesses;
  (match classify_addr ctx addr with
   | Aother ->
     (* writing through an unknown pointer *)
     ctx.has_unknown_store <- true
   | Astack _ | Aconst _ -> ());
  (* kill overlapping forwards and memoised loads *)
  ctx.st.stores <-
    { s_addr = addr; s_bytes = bytes; s_val = v }
    :: List.filter
         (fun s -> not (may_overlap ctx addr bytes s.s_addr s.s_bytes))
         ctx.st.stores;
  ctx.loads <-
    List.filter
      (fun (a, b, _, _) -> not (may_overlap ctx addr bytes a b))
      ctx.loads

(* operand values *)

let value_int ctx ~insn_addr = function
  | Operand.Reg r -> get_reg ctx r
  | Operand.Imm v -> const v
  | Operand.Mem m -> begin
      match load ctx ~insn_addr (addr_of_mem ctx m) 8 with
      | Vint p -> p
      | Vfloat _ -> of_atom (fresh_atom (Opaque insn_addr))
    end

let store_int ctx ~insn_addr op v =
  match op with
  | Operand.Reg r -> set_reg ctx r v
  | Operand.Mem m -> store ctx ~insn_addr (addr_of_mem ctx m) 8 (Vint v)
  | Operand.Imm _ -> ()

(* clobber effects of a call with unknown or summarised body *)
(* an opaque result that remembers its operands in [merge_srcs], so
   [mentions] still sees dependences through non-affine computations
   (a multiply-accumulate must not look like a privatisable scalar) *)
let opaque_from ctx ia vs =
  let at = fresh_atom (Opaque ia) in
  Hashtbl.replace ctx.merge_srcs at.aid vs;
  of_atom at

let clobber_call ctx =
  ctx.gen <- ctx.gen + 1;
  List.iter
    (fun r -> set_reg ctx r (of_atom (fresh_atom (Opaque 0))))
    Reg.caller_saved;
  for i = 0 to 7 do
    set_freg ctx (Reg.XMM i) (Funknown (fresh_atom (Opaque 0)))
  done;
  (* the callee may write reachable memory: drop non-stack forwards *)
  ctx.st.stores <-
    List.filter
      (fun s -> match classify_addr ctx s.s_addr with
         | Astack _ -> true
         | Aconst _ | Aother -> false)
      ctx.st.stores;
  ctx.loads <-
    List.filter
      (fun (a, _, _, _) -> match classify_addr ctx a with
         | Astack _ -> true
         | Aconst _ | Aother -> false)
      ctx.loads;
  ctx.st.cmp <- None

(** Execute one instruction symbolically (control flow is the caller's
    responsibility). *)
let exec ctx (ii : Cfg.insn_info) =
  let ia = ii.addr in
  match ii.insn with
  | Insn.Nop | Insn.Hlt -> ()
  | Insn.Mov (dst, src) -> begin
      match dst with
      | Operand.Reg r -> begin
          (* register moves preserve float-ness through memory *)
          match src with
          | Operand.Mem m -> begin
              match load ctx ~insn_addr:ia (addr_of_mem ctx m) 8 with
              | Vint p -> set_reg ctx r p
              | Vfloat _ -> set_reg ctx r (of_atom (fresh_atom (Opaque ia)))
            end
          | _ -> set_reg ctx r (value_int ctx ~insn_addr:ia src)
        end
      | Operand.Mem m ->
        let v =
          match src with
          | Operand.Reg r -> Vint (get_reg ctx r)
          | Operand.Imm i -> Vint (const i)
          | Operand.Mem m2 ->
            load ctx ~insn_addr:ia (addr_of_mem ctx m2) 8
        in
        store ctx ~insn_addr:ia (addr_of_mem ctx m) 8 v
      | Operand.Imm _ -> ()
    end
  | Insn.Lea (r, m) -> set_reg ctx r (addr_of_mem ctx m)
  | Insn.Alu (op, dst, src) ->
    let a =
      match dst with
      | Operand.Reg r -> get_reg ctx r
      | Operand.Mem m -> begin
          match load ctx ~insn_addr:ia (addr_of_mem ctx m) 8 with
          | Vint p -> p
          | Vfloat _ -> of_atom (fresh_atom (Opaque ia))
        end
      | Operand.Imm _ -> zero
    in
    let b = value_int ctx ~insn_addr:ia src in
    let result =
      match op with
      | Insn.Add -> add a b
      | Insn.Sub -> sub a b
      | Insn.Imul -> begin
          match to_const a, to_const b with
          | None, None -> opaque_from ctx ia [ Vint a; Vint b ]
          | _ -> mul a b
        end
      | Insn.Shl -> begin
          match to_const b with
          | Some k when Int64.compare k 0L >= 0 && Int64.compare k 62L <= 0 ->
            scale (Int64.shift_left 1L (Int64.to_int k)) a
          | _ -> opaque_from ctx ia [ Vint a; Vint b ]
        end
      | Insn.And | Insn.Or | Insn.Xor | Insn.Shr | Insn.Sar -> begin
          (* xor r, r is a common zero idiom *)
          match op, dst, src with
          | Insn.Xor, Operand.Reg r1, Operand.Reg r2 when Reg.equal_gp r1 r2 ->
            zero
          | _ -> begin
              match to_const a, to_const b with
              | Some ka, Some kb ->
                const
                  (match op with
                   | Insn.And -> Int64.logand ka kb
                   | Insn.Or -> Int64.logor ka kb
                   | Insn.Xor -> Int64.logxor ka kb
                   | Insn.Shr -> Int64.shift_right_logical ka (Int64.to_int kb land 63)
                   | Insn.Sar -> Int64.shift_right ka (Int64.to_int kb land 63)
                   | _ -> 0L)
              | _ -> opaque_from ctx ia [ Vint a; Vint b ]
            end
        end
    in
    ctx.st.cmp <- Some (Cmp_int (result, zero, ia));
    store_int ctx ~insn_addr:ia dst result
  | Insn.Neg o ->
    let v = neg (value_int ctx ~insn_addr:ia o) in
    ctx.st.cmp <- Some (Cmp_int (v, zero, ia));
    store_int ctx ~insn_addr:ia o v
  | Insn.Not o ->
    let v = value_int ctx ~insn_addr:ia o in
    store_int ctx ~insn_addr:ia o (opaque_from ctx ia [ Vint v ])
  | Insn.Idiv o ->
    (* VX64 idiv reads RAX and the divisor only; RDX is output *)
    let d = value_int ctx ~insn_addr:ia o in
    let rax = get_reg ctx Reg.RAX in
    set_reg ctx Reg.RAX (opaque_from ctx ia [ Vint rax; Vint d ]);
    set_reg ctx Reg.RDX (opaque_from ctx ia [ Vint rax; Vint d ])
  | Insn.Cmp (a, b) ->
    let pa = value_int ctx ~insn_addr:ia a in
    let pb = value_int ctx ~insn_addr:ia b in
    ctx.st.cmp <- Some (Cmp_int (pa, pb, ia));
    ctx.all_cmps <- Cmp_int (pa, pb, ia) :: ctx.all_cmps
  | Insn.Test (a, b) ->
    ignore (value_int ctx ~insn_addr:ia a);
    ignore (value_int ctx ~insn_addr:ia b);
    ctx.st.cmp <- None
  | Insn.Jmp (Insn.Indirect o) ->
    ignore (value_int ctx ~insn_addr:ia o);
    ctx.has_indirect <- true
  | Insn.Jmp (Insn.Direct _) | Insn.Jcc _ -> ()
  | Insn.Call (Insn.Direct a) ->
    if Layout.in_plt a then ctx.excalls <- (ia, "") :: ctx.excalls
    else ctx.calls <- (ia, a) :: ctx.calls;
    clobber_call ctx
  | Insn.Call (Insn.Indirect o) ->
    ignore (value_int ctx ~insn_addr:ia o);
    ctx.has_indirect <- true;
    clobber_call ctx
  | Insn.Ret -> ()
  | Insn.Push o ->
    let v = value_int ctx ~insn_addr:ia o in
    let rsp = sub (get_reg ctx Reg.RSP) (const 8L) in
    set_reg ctx Reg.RSP rsp;
    store ctx ~insn_addr:ia rsp 8 (Vint v)
  | Insn.Pop o ->
    let rsp = get_reg ctx Reg.RSP in
    let v =
      match load ctx ~insn_addr:ia rsp 8 with
      | Vint p -> p
      | Vfloat _ -> opaque ()
    in
    set_reg ctx Reg.RSP (add rsp (const 8L));
    store_int ctx ~insn_addr:ia o v
  | Insn.Cmov (_, r, src) ->
    (* conservatively simplified (§II-D): result may be either operand *)
    let cur = get_reg ctx r in
    let alt = value_int ctx ~insn_addr:ia src in
    if not (equal cur alt) then begin
      let m = fresh_atom (Merge ia) in
      Hashtbl.replace ctx.merge_srcs m.aid [ Vint cur; Vint alt ];
      set_reg ctx r (of_atom m)
    end
  | Insn.Fmov (w, dst, src) -> begin
      let bytes = 8 * Insn.lanes w in
      match dst with
      | Operand.Freg r -> begin
          match src with
          | Operand.Freg s -> set_freg ctx r (get_freg ctx s)
          | Operand.Fmem m ->
            set_freg ctx r (loadf ctx ~insn_addr:ia (addr_of_mem ctx m) bytes)
        end
      | Operand.Fmem m ->
        let v =
          match src with
          | Operand.Freg s -> Vfloat (get_freg ctx s)
          | Operand.Fmem m2 -> load ctx ~insn_addr:ia (addr_of_mem ctx m2) bytes
        in
        store ctx ~insn_addr:ia (addr_of_mem ctx m) bytes v
    end
  | Insn.Fbin (w, op, d, src) ->
    let bytes = 8 * Insn.lanes w in
    let b =
      match src with
      | Operand.Freg s -> get_freg ctx s
      | Operand.Fmem m -> loadf ctx ~insn_addr:ia (addr_of_mem ctx m) bytes
    in
    set_freg ctx d (Fbinop (op, get_freg ctx d, b))
  | Insn.Fsqrt (w, d, src) ->
    let bytes = 8 * Insn.lanes w in
    (match src with
     | Operand.Freg _ -> ()
     | Operand.Fmem m -> ignore (loadf ctx ~insn_addr:ia (addr_of_mem ctx m) bytes));
    set_freg ctx d (Funknown (fresh_atom (Opaque ia)))
  | Insn.Fbcast (w, d, src) ->
    let _ = w in
    let v =
      match src with
      | Operand.Freg s -> get_freg ctx s
      | Operand.Fmem m -> loadf ctx ~insn_addr:ia (addr_of_mem ctx m) 8
    in
    set_freg ctx d v
  | Insn.Fcmp (a, b) ->
    let fa = get_freg ctx a in
    let fb =
      match b with
      | Operand.Fmem m -> loadf ctx ~insn_addr:ia (addr_of_mem ctx m) 8
      | Operand.Freg r -> get_freg ctx r
    in
    ctx.st.cmp <- Some (Cmp_float (fa, fb));
    ctx.all_cmps <- Cmp_float (fa, fb) :: ctx.all_cmps
  | Insn.Cvtsi2sd (d, src) ->
    set_freg ctx d (Fconvert (value_int ctx ~insn_addr:ia src))
  | Insn.Cvtsd2si (d, src) ->
    (match src with
     | Operand.Fmem m -> ignore (loadf ctx ~insn_addr:ia (addr_of_mem ctx m) 8)
     | Operand.Freg _ -> ());
    set_reg ctx d (opaque ())
  | Insn.Syscall _ ->
    ctx.has_syscall <- true;
    (* syscalls return in RAX (and may advance the heap break) *)
    set_reg ctx Reg.RAX (of_atom (fresh_atom (Opaque ii.Cfg.addr)))
  | Insn.Prefetch _ -> ()  (* hint: no architectural effect *)

(** Merge two states at a control-flow join (block address [at]);
    equal values survive (duplicated-path elimination, §II-D), differing
    ones become phi atoms. Store entries that do not survive the merge
    are marked dirty so later loads cannot resurrect stale names. *)
let merge_states ctx ~at (a : state) (b : state) : state =
  let regs =
    Array.init (Array.length a.regs) (fun i ->
        if equal a.regs.(i) b.regs.(i) then a.regs.(i)
        else begin
          let m = fresh_atom (Merge at) in
          Hashtbl.replace ctx.merge_srcs m.aid
            [ Vint a.regs.(i); Vint b.regs.(i) ];
          of_atom m
        end)
  in
  let fregs =
    Array.init (Array.length a.fregs) (fun i ->
        if fexpr_equal a.fregs.(i) b.fregs.(i) then a.fregs.(i)
        else begin
          let m = fresh_atom (Merge at) in
          Hashtbl.replace ctx.merge_srcs m.aid
            [ Vfloat a.fregs.(i); Vfloat b.fregs.(i) ];
          Funknown m
        end)
  in
  let same s s' =
    s.s_bytes = s'.s_bytes && equal s.s_addr s'.s_addr
    &&
    match s.s_val, s'.s_val with
    | Vint p, Vint q -> equal p q
    | Vfloat f, Vfloat g -> fexpr_equal f g
    | (Vint _ | Vfloat _), _ -> false
  in
  let stores = List.filter (fun s -> List.exists (same s) b.stores) a.stores in
  let lost side other =
    List.iter
      (fun s ->
         if not (List.exists (same s) other) then
           ctx.dirty <- (s.s_addr, s.s_bytes) :: ctx.dirty)
      side
  in
  lost a.stores b.stores;
  lost b.stores a.stores;
  { regs; fregs; cmp = None; stores }

let copy_state (s : state) =
  { regs = Array.copy s.regs; fregs = Array.copy s.fregs; cmp = s.cmp;
    stores = s.stores }


(** Does a value mention an atom satisfying [pred], looking through the
    inputs of merge (phi) atoms? Old values hidden behind a conditional
    redefinition are still dependences. *)
let mentions ctx pred v =
  let seen = Hashtbl.create 16 in
  let rec atom_m (a : atom) =
    pred a
    ||
    match a.kind with
    | Merge _ | Opaque _ ->
      (* opaque atoms with recorded operands (non-affine ALU results)
         are transparent too: the inputs are real dependences *)
      if Hashtbl.mem seen a.aid then false
      else begin
        Hashtbl.replace seen a.aid ();
        match Hashtbl.find_opt ctx.merge_srcs a.aid with
        | Some vs -> List.exists value_m vs
        | None -> false
      end
    | _ -> false
  and value_m = function
    | Vint p -> poly_m p
    | Vfloat f -> fexpr_m f
  and poly_m p = List.exists atom_m (atoms p)
  and fexpr_m = function
    | Fatom a | Funknown a -> atom_m a
    | Fbinop (_, x, y) -> fexpr_m x || fexpr_m y
    | Fconvert p -> poly_m p
  in
  value_m v

let mentions_poly ctx pred p = mentions ctx pred (Vint p)
let mentions_fexpr ctx pred f = mentions ctx pred (Vfloat f)
