(** Generic worklist dataflow over VX64 CFGs: forward or backward,
    join-semilattice facts, meet-over-paths fixpoint. *)


type direction = Forward | Backward

module type DOMAIN = sig
  type fact

  val bottom : fact
  val equal : fact -> fact -> bool
  val join : fact -> fact -> fact
end

module Make (D : DOMAIN) = struct
  type result = {
    entry_fact : (int, D.fact) Hashtbl.t;
    exit_fact : (int, D.fact) Hashtbl.t;
  }

  (* reverse post-order of the block graph, so a forward solve visits
     predecessors first and a backward solve (which reverses it)
     visits successors first — fewer worklist iterations either way *)
  let rpo (f : Cfg.func) =
    let visited = Hashtbl.create 16 in
    let order = ref [] in
    let rec dfs a =
      if (not (Hashtbl.mem visited a)) && Hashtbl.mem f.Cfg.block_at a then begin
        Hashtbl.replace visited a ();
        let b = Hashtbl.find f.Cfg.block_at a in
        List.iter dfs b.Cfg.succs;
        order := a :: !order
      end
    in
    dfs f.Cfg.fentry;
    (* unreachable blocks still get facts (bottom-seeded) *)
    List.iter (fun (b : Cfg.bblock) -> dfs b.Cfg.baddr) f.Cfg.blocks;
    !order

  let solve ~dir ?(boundary = fun _ -> D.bottom) ~transfer (f : Cfg.func) =
    let entry_fact = Hashtbl.create 16 in
    let exit_fact = Hashtbl.create 16 in
    let fact tbl a =
      match Hashtbl.find_opt tbl a with Some x -> x | None -> D.bottom
    in
    let order =
      match dir with Forward -> rpo f | Backward -> List.rev (rpo f)
    in
    (* flow neighbours whose facts feed this block, and the boundary
       test: entry block for a forward solve, exit blocks backward *)
    let feeders (b : Cfg.bblock) =
      match dir with
      | Forward -> List.filter (Hashtbl.mem f.Cfg.block_at) b.Cfg.preds
      | Backward -> List.filter (Hashtbl.mem f.Cfg.block_at) b.Cfg.succs
    in
    let at_boundary (b : Cfg.bblock) =
      match dir with
      | Forward -> b.Cfg.baddr = f.Cfg.fentry
      | Backward -> b.Cfg.succs = []
    in
    let workset = Hashtbl.create 16 in
    let queue = Queue.create () in
    let enqueue a =
      if not (Hashtbl.mem workset a) then begin
        Hashtbl.replace workset a ();
        Queue.push a queue
      end
    in
    List.iter enqueue order;
    while not (Queue.is_empty queue) do
      let a = Queue.pop queue in
      Hashtbl.remove workset a;
      let b = Hashtbl.find f.Cfg.block_at a in
      let in_fact =
        let joined =
          List.fold_left
            (fun acc p ->
               let feed =
                 match dir with
                 | Forward -> fact exit_fact p
                 | Backward -> fact entry_fact p
               in
               D.join acc feed)
            D.bottom (feeders b)
        in
        if at_boundary b then D.join joined (boundary b) else joined
      in
      let out_fact = transfer b in_fact in
      let in_tbl, out_tbl =
        match dir with
        | Forward -> (entry_fact, exit_fact)
        | Backward -> (exit_fact, entry_fact)
      in
      Hashtbl.replace in_tbl a in_fact;
      let changed = not (D.equal (fact out_tbl a) out_fact) in
      if changed then begin
        Hashtbl.replace out_tbl a out_fact;
        let dependents =
          match dir with
          | Forward -> b.Cfg.succs
          | Backward -> b.Cfg.preds
        in
        List.iter
          (fun d -> if Hashtbl.mem f.Cfg.block_at d then enqueue d)
          dependents
      end
    done;
    { entry_fact; exit_fact }
end
