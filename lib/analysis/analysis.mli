(** Top-level static binary analysis: CFG recovery and per-loop
    classification for every function of a stripped JX image (the
    static side of Fig. 1(a)). *)

type t = {
  cfg : Cfg.t;
  reports : Loopanal.report list;          (** every loop, every function *)
  by_lid : (int, Loopanal.report) Hashtbl.t;
}

(** Disassemble, recover functions/CFGs/loops, and analyse each loop.
    [pool] shards the dominator and dataflow/classification passes per
    function over its domains (function-level sharding à la Meng et
    al.); results are merged in deterministic function order, so the
    analysis — and every artifact derived from it — is bit-identical
    with or without a pool, at any [--jobs]. *)
val analyse_image : ?pool:Janus_pool.Pool.t -> Janus_vx.Image.t -> t

val report : t -> int -> Loopanal.report option

(** How a loop could be made parallel, from static analysis alone:
    type-A loops run as-is; ambiguous loops run behind runtime checks
    and/or speculation; everything else stays sequential. *)
type eligibility =
  | Eligible_static
  | Eligible_dynamic of { needs_check : bool; needs_stm : bool }
  | Eligible_doacross of int
      (** type-B loop with a recognised iterator: parallelisable by
          in-order chunk execution with context hand-off; the payload
          is the estimated carried percentage of the body *)
  | Not_eligible of string

val eligibility : Loopanal.report -> eligibility

val pp_summary : Format.formatter -> t -> unit
