(** Natural-loop detection and nesting (the loop forest of §II-D). *)

type loop = {
  lid : int;                   (** unique within the analysis session *)
  header : int;                (** header block address *)
  latches : int list;          (** blocks with a back edge to the header *)
  body : int list;             (** block addresses, header included *)
  exits : (int * int) list;    (** (in-loop block, out-of-loop successor) *)
  preheader : int option;      (** unique out-of-loop predecessor *)
  mutable parent : int option; (** innermost enclosing loop id *)
  mutable children : int list;
}

type t = {
  loops : loop list;
  by_id : (int, loop) Hashtbl.t;
}

(** Find the natural loops of a function and their nesting. Loop ids
    are allocated from [counter] (default: a fresh one per call, so ids
    start at 1); callers covering several functions of one image pass a
    shared counter to keep ids unique across the image. There is no
    hidden global state, so [compute] is re-entrant across domains. *)
val compute : ?counter:int ref -> Cfg.func -> Dom.t -> t

val loop : t -> int -> loop option
val inner_loops : t -> loop -> loop list
val is_innermost : loop -> bool
val outermost : t -> loop list
