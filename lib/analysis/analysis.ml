(** Top-level static binary analysis: CFG recovery, loop analysis for
    every function, and classification summaries (the static side of
    Fig. 1(a)). *)

type t = {
  cfg : Cfg.t;
  reports : Loopanal.report list;
  by_lid : (int, Loopanal.report) Hashtbl.t;
}

(* name the offenders: a Static-Dependence demotion keeps its original
   reason and appends the addresses of the instructions on carried
   dependence cycles, as found by the statement-level dependence graph.
   [carried_members] is sorted and duplicate-free, so the enriched
   reason is stable across runs of the same image. *)
let enrich_static_dep (r : Loopanal.report) =
  match r.Loopanal.cls with
  | Loopanal.Static_dep reason -> begin
      match Depgraph.build r with
      | None -> r
      | Some g ->
        (match Depgraph.carried_members g with
         | [] -> r
         | addrs ->
           let names =
             String.concat "," (List.map (Printf.sprintf "0x%x") addrs)
           in
           {
             r with
             Loopanal.cls =
               Loopanal.Static_dep
                 (Printf.sprintf "%s; carried scc @ %s" reason names);
           })
    end
  | _ -> r

(* Function-level sharding (after Meng et al., "Parallel Binary Code
   Analysis"): dominator trees and the per-function dataflow +
   classification passes are embarrassingly parallel across functions,
   so a pool fans them out over domains. Determinism is preserved by
   construction:
   - loop ids are allocated by a {e sequential} pass over the functions
     in ascending entry order, exactly as the unsharded analyser did;
   - symbolic-atom ids restart per {e function} (atom identity is only
     ever compared within one function's analysis), so every function
     sees the same atom stream whichever domain runs it;
   - [Pool.map] returns results in submission order, so the merged
     report list is byte-identical across [--jobs].
   No global state is touched, so independent function analyses can run
   on separate domains. *)
let analyse_image ?pool image =
  let shard : 'a 'b. ('a -> 'b) -> 'a list -> 'b list =
    fun f xs ->
      match pool with
      | Some p when Janus_pool.Pool.jobs p > 1 -> Janus_pool.Pool.map p f xs
      | _ -> List.map f xs
  in
  let cfg = Cfg.recover image in
  let funcs = Cfg.all_funcs cfg in
  (* phase 1 (parallel): dominator trees, pure per function *)
  let doms = shard Dom.compute funcs in
  (* phase 2 (sequential): the loop forest, so lids follow ascending
     function order no matter how phase 3 is scheduled *)
  let lid_counter = ref 0 in
  let pre =
    List.map2
      (fun f dom -> (f, dom, Looptree.compute ~counter:lid_counter f dom))
      funcs doms
  in
  (* phase 3 (parallel): per-function dataflow and per-loop
     classification — the expensive side of the analysis *)
  let reports =
    List.concat
      (shard
         (fun (f, dom, ltree) ->
            Sympoly.reset_atoms ();
            let fa = Funcanal.compute f dom in
            List.map
              (fun l ->
                 enrich_static_dep (Loopanal.analyse cfg ~fa f ltree l))
              ltree.Looptree.loops)
         pre)
  in
  let by_lid = Hashtbl.create 16 in
  List.iter
    (fun (r : Loopanal.report) ->
       Hashtbl.replace by_lid r.Loopanal.loop.Looptree.lid r)
    reports;
  { cfg; reports; by_lid }

let report t lid = Hashtbl.find_opt t.by_lid lid

(** How a loop could be made parallel, from static analysis alone. *)
type eligibility =
  | Eligible_static          (* type A: parallel as-is *)
  | Eligible_dynamic of { needs_check : bool; needs_stm : bool }
  | Eligible_doacross of int (* type B with a recognised iterator:
                                parallel via in-order chunk hand-off;
                                the int is the carried percentage *)
  | Not_eligible of string

let eligibility (r : Loopanal.report) =
  match r.Loopanal.cls with
  | Loopanal.Static_doall -> Eligible_static
  | Loopanal.Static_dep reason -> begin
      match r.Loopanal.doacross_frac, r.Loopanal.iv with
      | Some pct, Some _ when pct <= 90 -> Eligible_doacross pct
      | _ -> Not_eligible ("static dependence: " ^ reason)
    end
  | Loopanal.Incompatible reason -> Not_eligible reason
  | Loopanal.Outer -> Not_eligible "outer loop (conservative)"
  | Loopanal.Ambiguous _ ->
    let has_calls =
      r.Loopanal.excall_sites <> [] || r.Loopanal.local_call_sites <> []
    in
    let unknown_stores =
      (* stores whose footprint cannot be expressed (opaque addresses
         or missing base expressions) cannot be guarded by checks *)
      List.exists
        (fun (g : Loopanal.access_sum) ->
           g.Loopanal.g_write
           && (g.Loopanal.g_opaque
               || (g.Loopanal.g_base_rexpr = None
                   && not (Int64.equal g.Loopanal.g_k 0L))))
        r.Loopanal.accesses
    in
    if unknown_stores then Not_eligible "unverifiable stores"
    else
      Eligible_dynamic
        { needs_check = r.Loopanal.check_ranges <> []; needs_stm = has_calls }

let pp_summary ppf t =
  List.iter
    (fun (r : Loopanal.report) ->
       Fmt.pf ppf "loop %d @ 0x%x (fn 0x%x): %s%s@."
         r.Loopanal.loop.Looptree.lid r.Loopanal.loop.Looptree.header
         r.Loopanal.func.Cfg.fentry
         (Loopanal.classification_name r.Loopanal.cls)
         (match r.Loopanal.cls with
          | Loopanal.Static_dep m | Loopanal.Ambiguous m
          | Loopanal.Incompatible m -> " (" ^ m ^ ")"
          | _ -> ""))
    t.reports
