(** Register liveness over a recovered function, built on {!Dataflow}
    (backward, union join). Used by the schedule linter to prove that a
    register a schedule discards or clobbers is genuinely dead.

    Liveness is deliberately over-approximated at the points the binary
    hides information: calls are assumed to read every argument
    register, returns to expose the return registers and the
    callee-saved set. Over-approximation is the safe direction for a
    verifier — a register reported dead here really is dead. *)

open Janus_vx

type t

val compute : Cfg.func -> t

(** Registers live immediately before the instruction at [addr]
    (an instruction of the analysed function). Unknown addresses
    report everything live — again the conservative direction. *)
val gp_live_before : t -> addr:int -> Reg.gp -> bool

val fp_live_before : t -> addr:int -> Reg.fp -> bool

val gps_live_before : t -> addr:int -> Reg.gp list
val fps_live_before : t -> addr:int -> Reg.fp list

(** Registers live at entry of the block starting at the given
    address. *)
val live_in_gps : t -> int -> Reg.gp list
