(** Natural-loop detection and nesting (the loop forest of §II-D). *)

type loop = {
  lid : int;
  header : int;                (* block address *)
  latches : int list;          (* blocks with a back edge to the header *)
  body : int list;             (* block addresses, header included, sorted *)
  exits : (int * int) list;    (* (in-loop block, out-of-loop successor) *)
  preheader : int option;      (* unique out-of-loop predecessor of header *)
  mutable parent : int option; (* enclosing loop id *)
  mutable children : int list;
}

type t = {
  loops : loop list;           (* outermost-first order not guaranteed *)
  by_id : (int, loop) Hashtbl.t;
}

let natural_loop (f : Cfg.func) header latches =
  let body = Hashtbl.create 16 in
  Hashtbl.replace body header ();
  let rec add addr =
    if not (Hashtbl.mem body addr) then begin
      Hashtbl.replace body addr ();
      match Hashtbl.find_opt f.block_at addr with
      | Some b -> List.iter add b.Cfg.preds
      | None -> ()
    end
  in
  List.iter add latches;
  Hashtbl.fold (fun a () acc -> a :: acc) body [] |> List.sort compare

(* Loop ids are drawn from [counter]: callers analysing several
   functions of one image pass a shared counter so ids stay unique
   across the image; a fresh counter per call keeps [compute]
   re-entrant (no global state) and ids deterministic per analysis. *)
let compute ?(counter = ref 0) (f : Cfg.func) (dom : Dom.t) =
  (* back edges: succ edge b -> h where h dominates b *)
  let back = Hashtbl.create 8 in
  List.iter
    (fun b ->
       List.iter
         (fun s ->
            if Dom.dominates dom s b.Cfg.baddr then begin
              let existing = try Hashtbl.find back s with Not_found -> [] in
              Hashtbl.replace back s (b.Cfg.baddr :: existing)
            end)
         b.Cfg.succs)
    f.blocks;
  let loops =
    Hashtbl.fold
      (fun header latches acc ->
         incr counter;
         let body = natural_loop f header latches in
         let in_body a = List.mem a body in
         let exits =
           List.concat_map
             (fun a ->
                match Hashtbl.find_opt f.block_at a with
                | Some b ->
                  List.filter_map
                    (fun s -> if in_body s then None else Some (a, s))
                    b.Cfg.succs
                | None -> [])
             body
         in
         let preheader =
           match Hashtbl.find_opt f.block_at header with
           | Some hb ->
             (match List.filter (fun p -> not (in_body p)) hb.Cfg.preds with
              | [ p ] -> Some p
              | _ -> None)
           | None -> None
         in
         { lid = !counter; header; latches; body; exits; preheader;
           parent = None; children = [] }
         :: acc)
      back []
  in
  (* nesting: loop A is inside B if A.header in B.body and A != B;
     parent = smallest containing loop *)
  List.iter
    (fun a ->
       let containing =
         List.filter
           (fun b -> b.lid <> a.lid && List.mem a.header b.body
                     && List.for_all (fun blk -> List.mem blk b.body) a.body)
           loops
       in
       let parent =
         List.fold_left
           (fun best c ->
              match best with
              | None -> Some c
              | Some b ->
                if List.length c.body < List.length b.body then Some c else Some b)
           None containing
       in
       a.parent <- Option.map (fun p -> p.lid) parent)
    loops;
  List.iter
    (fun a ->
       match a.parent with
       | Some pid ->
         (match List.find_opt (fun l -> l.lid = pid) loops with
          | Some p -> p.children <- a.lid :: p.children
          | None -> ())
       | None -> ())
    loops;
  let by_id = Hashtbl.create 8 in
  List.iter (fun l -> Hashtbl.replace by_id l.lid l) loops;
  { loops; by_id }

let loop t id = Hashtbl.find_opt t.by_id id

(** Inner loops strictly contained in [l]. *)
let inner_loops t l =
  List.filter_map (fun id -> loop t id) l.children

let is_innermost l = l.children = []

let outermost t = List.filter (fun l -> l.parent = None) t.loops
