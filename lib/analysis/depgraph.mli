(** Statement-level dependence graphs over loop bodies, their SCC
    condensation, and the loop-fission plan derived from them (after
    Aubert et al.'s implicit-computational-complexity fission
    condition).

    [build] constructs, for one analysed loop, a graph with a node per
    body instruction and edges for register flow, register output
    conflicts on live-out registers, memory conflicts between the
    summarised access streams, and control dependences, each marked as
    loop-carried or not. [plan] partitions the non-infrastructure nodes
    into weakly-connected components — which by construction share no
    dependence edge — and, when at least one component is free of
    carried edges and one is not, schedules the carried-free components
    as a DOALL {e fission product} and the rest as a sequential
    {e residue}, both run as consecutive full-range loop instances. *)

open Janus_vx

type edge_kind =
  | Reg_flow    (** def reaches use (registers or flags) *)
  | Reg_output  (** two defs of a register that is live at a loop exit *)
  | Mem         (** possibly overlapping accesses, one a write *)
  | Ctrl        (** control dependence *)

type edge = {
  e_src : int;       (** node index into [dg_addrs] *)
  e_dst : int;
  e_kind : edge_kind;
  e_carried : bool;  (** may span two iterations *)
  e_tag : string;    (** register name, ["flags"], ["mem"], ["ctrl"] *)
}

type t = {
  dg_lid : int;
  dg_addrs : int array;        (** instruction addresses in body order *)
  dg_insns : Insn.t array;
  dg_linear : bool;            (** body is a single fall-through chain *)
  dg_infra : bool array;       (** control flow, IV updates, the compare *)
  dg_edges : edge list;
  dg_scc_of : int array;       (** node -> SCC id *)
  dg_scc_count : int;          (** SCC ids are topologically numbered *)
  dg_carried_scc : bool array; (** SCC id -> contains a carried edge *)
}

(** A fission schedule over instruction addresses: [pl_infra] is
    replicated into every sub-loop; [pl_product] runs first as a
    DOALL-parallel instance; [pl_residue] runs second, sequentially.
    The three lists partition the loop body. *)
type plan = {
  pl_infra : int list;
  pl_product : int list;
  pl_residue : int list;
}

(** Dependence graph of the loop body; [None] for an empty body. *)
val build : Loopanal.report -> t option

(** Weakly-connected components of the non-infrastructure nodes in
    first-occurrence order, each with [true] when it contains no
    carried edge (i.e. it is a DOALL candidate). *)
val components : t -> (int list * bool) list

(** Addresses of non-infrastructure instructions touched by some
    carried edge — the members of the dependence cycles a
    Static-Dependence demotion should name. Sorted, duplicate-free. *)
val carried_members : t -> int list

(** The fission plan, or [None] when the loop is ineligible: body not
    a straight line, no register iterator, calls / stack traffic /
    opaque accesses present, control flow not a single trailing exit
    test fed by the governing compare, a dependence crossing the
    infrastructure boundary other than IV/flags flow into a group, or
    a partition without both a parallel and a sequential part. *)
val plan : Loopanal.report -> plan option

(** One-line census summary: node, edge, SCC and group counts. *)
val summary : t -> string

(** Graphviz rendering, SCCs clustered, carried edges dashed red. *)
val pp_dot : Format.formatter -> t -> unit
