(** Statement-level dependence graphs over loop bodies and the loop
    fission plan derived from them (Aubert et al., "A Novel Loop
    Fission Technique Inspired by Implicit Computational Complexity").

    For one analysed loop the graph has a node per body instruction and
    edges for register flow, register output conflicts on live-out
    registers, memory conflicts between the summarised accesses, and
    control dependences. Each edge is marked {e carried} when it can
    span two iterations. Tarjan's SCC condensation then exposes the
    carried cycles, and the weakly-connected components of the
    non-infrastructure nodes are the candidate fission groups: because
    groups share {e no} dependence edge at all, a Static-Dependence
    loop distributes into a DOALL product (components free of carried
    edges) plus a sequential residue run as consecutive loop instances,
    with no cross-group temporaries and no ordering constraint between
    the sub-loops.

    Modelling notes, all in the sound direction for fission (a spurious
    edge only merges groups or forces a residue; a dropped edge is
    justified below):
    - register anti dependences are not edges: a use fed by a same-
      iteration def is recomputed inside whichever sub-loop keeps it,
      and an upward-exposed use already receives a carried flow edge
      from the iteration-final def;
    - register output conflicts are edges only for registers live at a
      loop exit — dead scratch registers (the allocator's R9-R11 reuse)
      would otherwise glue every statement together, while each
      sub-loop's final context is threaded through the next sub-loop so
      a register written by a single group keeps its value;
    - flags carry flow edges only: every sub-loop replays the governing
      compare, so the exit flags are re-derived per sub-loop and dead
      intermediate flag writes impose no order. *)

open Janus_vx

type edge_kind = Reg_flow | Reg_output | Mem | Ctrl

type edge = {
  e_src : int;        (* node index *)
  e_dst : int;
  e_kind : edge_kind;
  e_carried : bool;   (* may span two iterations *)
  e_tag : string;     (* register name, "flags", "mem", "ctrl" *)
}

type t = {
  dg_lid : int;
  dg_addrs : int array;        (* instruction addresses, body order *)
  dg_insns : Insn.t array;
  dg_linear : bool;            (* single-chain body, no internal joins *)
  dg_infra : bool array;       (* control flow, IV updates, the compare *)
  dg_edges : edge list;
  dg_scc_of : int array;       (* node -> SCC id, topologically numbered *)
  dg_scc_count : int;
  dg_carried_scc : bool array; (* SCC id -> contains a carried edge *)
}

type plan = {
  pl_infra : int list;    (* replicated into every sub-loop *)
  pl_product : int list;  (* the DOALL fission product *)
  pl_residue : int list;  (* the sequential residue *)
}

(* ------------------------------------------------------------------ *)
(* Body linearisation                                                  *)
(* ------------------------------------------------------------------ *)

(* order the body blocks as the single successor chain from the header;
   when the body is not a chain (internal branches or joins), fall back
   to header-first address order and mark the graph non-linear *)
let body_blocks (r : Loopanal.report) =
  let l = r.Loopanal.loop in
  let blocks =
    List.filter_map
      (Hashtbl.find_opt r.Loopanal.func.Cfg.block_at)
      l.Looptree.body
  in
  let in_body a = List.mem a l.Looptree.body in
  let by_addr = Hashtbl.create 8 in
  List.iter (fun (b : Cfg.bblock) -> Hashtbl.replace by_addr b.Cfg.baddr b) blocks;
  let visited = Hashtbl.create 8 in
  let rec chain acc a =
    match Hashtbl.find_opt by_addr a with
    | None -> (List.rev acc, false)
    | Some b ->
      if Hashtbl.mem visited a then (List.rev acc, false)
      else begin
        Hashtbl.replace visited a ();
        let nexts =
          List.filter
            (fun s -> in_body s && s <> l.Looptree.header)
            b.Cfg.succs
        in
        match nexts with
        | [] -> (List.rev (b :: acc), true)
        | [ n ] -> chain (b :: acc) n
        | _ -> (List.rev (b :: acc), false)
      end
  in
  let ordered, linear = chain [] l.Looptree.header in
  if linear && List.length ordered = List.length blocks then (ordered, true)
  else
    let hdr, rest =
      List.partition (fun (b : Cfg.bblock) -> b.Cfg.baddr = l.Looptree.header) blocks
    in
    let rest =
      List.sort (fun (a : Cfg.bblock) b -> compare a.Cfg.baddr b.Cfg.baddr) rest
    in
    (hdr @ rest, false)

(* ------------------------------------------------------------------ *)
(* Register and flag slots                                             *)
(* ------------------------------------------------------------------ *)

let flags_slot = Reg.gp_count + Reg.fp_count
let nslots = flags_slot + 1
let slot_gp r = Reg.gp_index r
let slot_fp f = Reg.gp_count + Reg.fp_index f

let slot_name s =
  if s = flags_slot then "flags"
  else if s < Reg.gp_count then Reg.gp_name (Reg.gp_of_index s)
  else Reg.fp_name (Reg.fp_of_index (s - Reg.gp_count))

(* flag writers/readers as implemented by the VM semantics *)
let sets_flags = function
  | Insn.Alu _ | Insn.Neg _ | Insn.Cmp _ | Insn.Test _ | Insn.Fcmp _ -> true
  | _ -> false

let uses_flags = function Insn.Jcc _ | Insn.Cmov _ -> true | _ -> false

let slot_uses i =
  List.map slot_gp (Insn.gp_uses i)
  @ List.map slot_fp (Insn.fp_uses i)
  @ (if uses_flags i then [ flags_slot ] else [])

let slot_defs i =
  List.map slot_gp (Insn.gp_defs i)
  @ List.map slot_fp (Insn.fp_defs i)
  @ (if sets_flags i then [ flags_slot ] else [])

(* ------------------------------------------------------------------ *)
(* Iteration range from the solved iterator                            *)
(* ------------------------------------------------------------------ *)

let ceil_div a b = Int64.div (Int64.add a (Int64.sub b 1L)) b

(* (first iv value, last iv value, trip count), when solvable; used
   only to tighten the memory lag test and footprints, never trusted
   beyond what LOOP_INIT itself trusts for bound computation *)
let iv_range (iv : Loopanal.iv_info) =
  match iv.Loopanal.iv_init_const, iv.Loopanal.iv_bound_const with
  | Some i0, Some b when not (Int64.equal iv.Loopanal.iv_step 0L) ->
    let step = iv.Loopanal.iv_step in
    let b' = Int64.sub b iv.Loopanal.bound_adjust in
    let unsigned_ok = Int64.compare i0 0L >= 0 && Int64.compare b' 0L >= 0 in
    let trips =
      match iv.Loopanal.iv_cond with
      | Cond.Lt when Int64.compare step 0L > 0 ->
        Some (ceil_div (Int64.sub b' i0) step)
      | Cond.Ult when Int64.compare step 0L > 0 && unsigned_ok ->
        Some (ceil_div (Int64.sub b' i0) step)
      | Cond.Le when Int64.compare step 0L > 0 ->
        Some (ceil_div (Int64.add (Int64.sub b' i0) 1L) step)
      | Cond.Ule when Int64.compare step 0L > 0 && unsigned_ok ->
        Some (ceil_div (Int64.add (Int64.sub b' i0) 1L) step)
      | Cond.Gt when Int64.compare step 0L < 0 ->
        Some (ceil_div (Int64.sub i0 b') (Int64.neg step))
      | Cond.Ugt when Int64.compare step 0L < 0 && unsigned_ok ->
        Some (ceil_div (Int64.sub i0 b') (Int64.neg step))
      | Cond.Ge when Int64.compare step 0L < 0 ->
        Some (ceil_div (Int64.add (Int64.sub i0 b') 1L) (Int64.neg step))
      | Cond.Uge when Int64.compare step 0L < 0 && unsigned_ok ->
        Some (ceil_div (Int64.add (Int64.sub i0 b') 1L) (Int64.neg step))
      | Cond.Ne ->
        let span = Int64.sub b' i0 in
        if Int64.equal (Int64.rem span step) 0L
           && Int64.compare (Int64.div span step) 0L > 0
        then Some (Int64.div span step)
        else None
      | _ -> None
    in
    (match trips with
     | Some t when Int64.compare t 1L >= 0 ->
       let last = Int64.add i0 (Int64.mul step (Int64.sub t 1L)) in
       Some (i0, last, t)
     | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Memory conflict tests                                               *)
(* ------------------------------------------------------------------ *)

(* does some lag m in [1, mmax] bring the two access streams within a
   byte window? solutions cluster around m = |d/k|, so probing the
   division neighbours is exhaustive *)
let exists_lag ~mmax ~k ~d ~overlap =
  let ok m =
    Int64.compare m 1L >= 0
    && (match mmax with
        | None -> true
        | Some mm -> Int64.compare m mm <= 0)
    && (overlap (Int64.add d (Int64.mul k m))
        || overlap (Int64.sub d (Int64.mul k m)))
  in
  let q1 = Int64.div (Int64.neg d) k and q2 = Int64.div d k in
  List.exists ok
    [ Int64.sub q1 1L; q1; Int64.add q1 1L; 1L;
      Int64.sub q2 1L; q2; Int64.add q2 1L ]

(* (same-iteration conflict, cross-iteration conflict) for a pair of
   summarised accesses; conservative (true, true) whenever the base
   distance is symbolic or the strides differ without a provably
   disjoint footprint *)
let conflict ~range ~step (a : Loopanal.access_sum) (b : Loopanal.access_sum) =
  if a.Loopanal.g_opaque || b.Loopanal.g_opaque then (true, true)
  else if a.Loopanal.g_stack <> b.Loopanal.g_stack then
    (* the guest stack is a region disjoint from globals and the heap;
       a stack slot never aliases a non-stack access (loopanal relies
       on the same split when it privatises stack scalars) *)
    (false, false)
  else begin
    let ba = a.Loopanal.g_bytes and bb = b.Loopanal.g_bytes in
    (* d = addr(b) - addr(a); the windows overlap iff -bb < d < ba *)
    let overlap d =
      Int64.compare d (Int64.of_int (-bb)) > 0
      && Int64.compare d (Int64.of_int ba) < 0
    in
    let ka = a.Loopanal.g_k and kb = b.Loopanal.g_k in
    match Sympoly.to_const (Sympoly.sub b.Loopanal.g_base a.Loopanal.g_base) with
    | Some d ->
      if Int64.equal ka kb then begin
        let intra = overlap d in
        let carried =
          (* a lag of m iterations moves the iv by step*m, so the
             per-iteration address stride is k*step — using k alone is
             only right for unit-step loops and flags false conflicts
             between the copies of an unrolled body *)
          let ks = Int64.mul ka step in
          if Int64.equal ks 0L then intra
          else
            let mmax =
              match range with
              | Some (_, _, trips) -> Some (Int64.sub trips 1L)
              | None -> None
            in
            exists_lag ~mmax ~k:ks ~d ~overlap
        in
        (intra, carried)
      end
      else begin
        (* differing strides: whole-loop footprints in base-relative
           coordinates prove disjointness when the iv range is known *)
        match range with
        | Some (i0, il, _) ->
          let lo k = Int64.min (Int64.mul k i0) (Int64.mul k il) in
          let hi k bytes =
            Int64.add (Int64.max (Int64.mul k i0) (Int64.mul k il))
              (Int64.of_int bytes)
          in
          let alo = lo ka and ahi = hi ka ba in
          let blo = Int64.add d (lo kb) and bhi = Int64.add d (hi kb bb) in
          if Int64.compare ahi blo <= 0 || Int64.compare bhi alo <= 0 then
            (false, false)
          else (true, true)
        | None -> (true, true)
      end
    | None -> (true, true)
  end

(* ------------------------------------------------------------------ *)
(* Graph construction                                                  *)
(* ------------------------------------------------------------------ *)

let build (r : Loopanal.report) =
  let blocks, linear = body_blocks r in
  let insns =
    List.concat_map
      (fun (b : Cfg.bblock) -> Array.to_list b.Cfg.insns)
      blocks
  in
  if insns = [] then None
  else begin
    let n = List.length insns in
    let addrs = Array.of_list (List.map (fun i -> i.Cfg.addr) insns) in
    let body = Array.of_list (List.map (fun i -> i.Cfg.insn) insns) in
    let idx_of = Hashtbl.create n in
    Array.iteri (fun i a -> Hashtbl.replace idx_of a i) addrs;
    (* infrastructure: control flow, the governing compare, IV updates
       — for a register iterator its defs, for a memory-resident one
       the insns loopanal saw touching the iterator's own slot *)
    let iv = r.Loopanal.iv in
    let infra = Array.make n false in
    Array.iteri
      (fun i insn ->
         let is_iv_def =
           match iv with
           | Some { Loopanal.iv_loc = Sympoly.Rloc rg; _ } ->
             List.exists (Reg.equal_gp rg) (Insn.gp_defs insn)
           | _ -> false
         in
         let is_cmp =
           match iv with
           | Some ivi -> addrs.(i) = ivi.Loopanal.cmp_addr
           | None -> false
         in
         if
           Insn.is_control_flow insn || is_iv_def || is_cmp
           || List.mem addrs.(i) r.Loopanal.iv_insns
         then infra.(i) <- true)
      body;
    let edges = ref [] in
    let add_edge e_src e_dst e_kind e_carried e_tag =
      edges := { e_src; e_dst; e_kind; e_carried; e_tag } :: !edges
    in
    (* register/flag flow: intra edges from the last def, carried edges
       from the iteration-final def to upward-exposed uses; reduction
       accumulators are exempt from carried edges (the runtime combines
       per-thread partials) and flags never carry (each sub-loop
       replays the governing compare) *)
    let exempt = Array.make nslots false in
    exempt.(flags_slot) <- true;
    List.iter
      (fun (loc, _) ->
         match loc with
         | Janus_schedule.Desc.Lreg rg -> exempt.(slot_gp rg) <- true
         | Janus_schedule.Desc.Lfreg f -> exempt.(slot_fp f) <- true
         | Janus_schedule.Desc.Lstack _ | Janus_schedule.Desc.Labs _ -> ())
      r.Loopanal.reductions;
    (* live-at-exit registers for the output-conflict edges *)
    let live = Liveness.compute r.Loopanal.func in
    let live_slot = Array.make nslots false in
    List.iter
      (fun (_, out) ->
         List.iter
           (fun rg -> live_slot.(slot_gp rg) <- true)
           (Liveness.gps_live_before live ~addr:out);
         List.iter
           (fun f -> live_slot.(slot_fp f) <- true)
           (Liveness.fps_live_before live ~addr:out))
      r.Loopanal.loop.Looptree.exits;
    for s = 0 to nslots - 1 do
      let last_def = ref None in
      let exposed = ref [] in
      let defs = ref [] in
      for i = 0 to n - 1 do
        let insn = body.(i) in
        if List.mem s (slot_uses insn) then begin
          match !last_def with
          | Some d -> add_edge d i Reg_flow false (slot_name s)
          | None -> exposed := i :: !exposed
        end;
        if List.mem s (slot_defs insn) then begin
          defs := i :: !defs;
          last_def := Some i
        end
      done;
      (match !last_def with
       | Some d when not exempt.(s) ->
         List.iter
           (fun u -> add_edge d u Reg_flow true (slot_name s))
           (List.rev !exposed)
       | _ -> ());
      (* output conflicts matter only for registers observable after
         the loop; chain successive defs so they land in one group *)
      if s <> flags_slot && live_slot.(s) then begin
        let ds = List.rev !defs in
        ignore
          (List.fold_left
             (fun prev d ->
                (match prev with
                 | Some p -> add_edge p d Reg_output false (slot_name s)
                 | None -> ());
                Some d)
             None ds)
      end
    done;
    (* memory conflicts between summarised accesses; privatised scalar
       cells keep their intra edges (all users end up in one group) but
       do not carry — each sub-loop re-runs the privatisation *)
    let range = Option.bind iv iv_range in
    let step =
      match iv with Some i -> i.Loopanal.iv_step | None -> 1L
    in
    let priv = Hashtbl.create 8 in
    List.iter
      (fun (a, _) -> Hashtbl.replace priv a ())
      r.Loopanal.priv_insns;
    let accs =
      List.filter
        (fun (a : Loopanal.access_sum) -> Hashtbl.mem idx_of a.Loopanal.g_insn)
        r.Loopanal.accesses
    in
    let rec pairs = function
      | [] -> ()
      | a :: rest ->
        List.iter
          (fun b ->
             if a.Loopanal.g_write || b.Loopanal.g_write then begin
               let ia = Hashtbl.find idx_of a.Loopanal.g_insn
               and ib = Hashtbl.find idx_of b.Loopanal.g_insn in
               let src, dst = if ia <= ib then (ia, ib) else (ib, ia) in
               let intra, carried = conflict ~range ~step a b in
               let both_priv =
                 Hashtbl.mem priv a.Loopanal.g_insn
                 && Hashtbl.mem priv b.Loopanal.g_insn
               in
               if intra && src <> dst then add_edge src dst Mem false "mem";
               if carried && not both_priv then add_edge src dst Mem true "mem"
             end)
          (a :: rest);
        pairs rest
    in
    pairs accs;
    (* control dependences: a conditional that is not the loop's own
       final branch guards everything after it; calls and other opaque
       transfers order everything around them *)
    let jccs = ref [] in
    Array.iteri
      (fun i insn -> match insn with Insn.Jcc _ -> jccs := i :: !jccs | _ -> ())
      body;
    let last_jcc = match !jccs with [] -> -1 | l -> List.hd l in
    Array.iteri
      (fun i insn ->
         match insn with
         | Insn.Jcc _ when i <> last_jcc ->
           for j = i + 1 to n - 1 do
             add_edge i j Ctrl false "ctrl"
           done
         | Insn.Call _ | Insn.Ret | Insn.Hlt | Insn.Syscall _
         | Insn.Jmp (Insn.Indirect _) ->
           for j = 0 to i - 1 do
             add_edge j i Ctrl false "ctrl"
           done;
           for j = i + 1 to n - 1 do
             add_edge i j Ctrl false "ctrl"
           done
         | _ -> ())
      body;
    let edges = List.rev !edges in
    (* absorb pure compute feeding the infrastructure into it: a node
       whose value flows into an infra node (the IV's add arithmetic,
       the load feeding the governing compare) is itself iteration
       bookkeeping and safe to replicate across fission phases —
       provided it writes no memory, so replication has no effect *)
    let writes_mem = Array.make n false and has_mem = Array.make n false in
    List.iter
      (fun a ->
         Array.iteri
           (fun i addr ->
              if addr = a.Loopanal.g_insn then begin
                has_mem.(i) <- true;
                if a.Loopanal.g_write then writes_mem.(i) <- true
              end)
           addrs)
      r.Loopanal.accesses;
    List.iter
      (fun ad ->
         Array.iteri (fun i addr -> if addr = ad then has_mem.(i) <- true) addrs)
      r.Loopanal.main_stack_reads;
    let incoming = Array.make n [] in
    List.iter (fun e -> incoming.(e.e_dst) <- e :: incoming.(e.e_dst)) edges;
    let changed = ref true in
    while !changed do
      changed := false;
      (* backward: pure compute whose value flows into an infra node
         (the IV's add arithmetic, the load feeding the governing
         compare) is itself iteration bookkeeping — safe to replicate
         across fission phases provided it writes no memory *)
      List.iter
        (fun e ->
           if
             e.e_kind = Reg_flow && infra.(e.e_dst) && not infra.(e.e_src)
             && not writes_mem.(e.e_src)
           then begin
             infra.(e.e_src) <- true;
             changed := true
           end)
        edges;
      (* forward: memory-free compute determined entirely by the
         infrastructure (an unrolled body's i+1, lookahead address
         arithmetic) would otherwise bridge unrelated groups through a
         shared operand; its value is identical in every phase, so
         replication is free of side effects. Nodes touching memory are
         left in their groups — absorbing them would move their
         dependence edges across the infrastructure boundary *)
      for v = 0 to n - 1 do
        if
          (not infra.(v)) && (not has_mem.(v))
          && List.for_all (fun e -> infra.(e.e_src)) incoming.(v)
        then begin
          infra.(v) <- true;
          changed := true
        end
      done
    done;
    (* Tarjan SCC over the full edge set, condensation numbered in
       topological order *)
    let adj = Array.make n [] in
    List.iter (fun e -> adj.(e.e_src) <- e.e_dst :: adj.(e.e_src)) edges;
    let index = Array.make n (-1) in
    let low = Array.make n 0 in
    let on_stack = Array.make n false in
    let stack = ref [] in
    let counter = ref 0 in
    let sccs = ref [] in
    let rec strong v =
      index.(v) <- !counter;
      low.(v) <- !counter;
      incr counter;
      stack := v :: !stack;
      on_stack.(v) <- true;
      List.iter
        (fun w ->
           if index.(w) < 0 then begin
             strong w;
             low.(v) <- min low.(v) low.(w)
           end
           else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
        adj.(v);
      if low.(v) = index.(v) then begin
        let rec pop acc =
          match !stack with
          | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
          | [] -> acc
        in
        sccs := pop [] :: !sccs
      end
    in
    for v = 0 to n - 1 do
      if index.(v) < 0 then strong v
    done;
    (* Tarjan emits SCCs in reverse topological order; !sccs reversed
       that again, so numbering !sccs in order is topological *)
    let scc_list = !sccs in
    let scc_count = List.length scc_list in
    let scc_of = Array.make n 0 in
    List.iteri
      (fun sid members -> List.iter (fun v -> scc_of.(v) <- sid) members)
      scc_list;
    let carried_scc = Array.make scc_count false in
    List.iter
      (fun e ->
         if e.e_carried && scc_of.(e.e_src) = scc_of.(e.e_dst) then
           carried_scc.(scc_of.(e.e_src)) <- true)
      edges;
    Some
      {
        dg_lid = r.Loopanal.loop.Looptree.lid;
        dg_addrs = addrs;
        dg_insns = body;
        dg_linear = linear;
        dg_infra = infra;
        dg_edges = edges;
        dg_scc_of = scc_of;
        dg_scc_count = scc_count;
        dg_carried_scc = carried_scc;
      }
  end

(* ------------------------------------------------------------------ *)
(* Groups and the fission plan                                         *)
(* ------------------------------------------------------------------ *)

(* weakly-connected components of the non-infrastructure nodes, each
   with its parallel verdict (no carried edge inside the component);
   ordered by first body position *)
let components g =
  let n = Array.length g.dg_addrs in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(max ra rb) <- min ra rb
  in
  List.iter
    (fun e ->
       if not (g.dg_infra.(e.e_src) || g.dg_infra.(e.e_dst)) then
         union e.e_src e.e_dst)
    g.dg_edges;
  let groups = Hashtbl.create 8 in
  for i = n - 1 downto 0 do
    if not g.dg_infra.(i) then begin
      let root = find i in
      let cur = try Hashtbl.find groups root with Not_found -> [] in
      Hashtbl.replace groups root (i :: cur)
    end
  done;
  let carried_inside members =
    List.exists
      (fun e ->
         e.e_carried && List.mem e.e_src members && List.mem e.e_dst members)
      g.dg_edges
  in
  Hashtbl.fold (fun root members acc -> (root, members) :: acc) groups []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (_, members) -> (members, not (carried_inside members)))

let carried_members g =
  List.concat_map
    (fun e ->
       if e.e_carried then
         List.filter_map
           (fun v -> if g.dg_infra.(v) then None else Some g.dg_addrs.(v))
           [ e.e_src; e.e_dst ]
       else [])
    g.dg_edges
  |> List.sort_uniq compare

(* structural eligibility of the loop itself, beyond what the graph
   encodes: a solved iterator (register- or memory-resident — the
   memory-resident case relies on [Loopanal.iv_insns] having routed the
   slot's accesses into the infrastructure), a straight-line body whose
   only control flow is the final exit test fed by the governing
   compare *)
let eligible g (r : Loopanal.report) =
  let n = Array.length g.dg_addrs in
  match r.Loopanal.iv with
  | Some
      ({ Loopanal.iv_loc = Sympoly.Rloc _ | Sympoly.Sloc _ | Sympoly.Gloc _; _ }
       as iv)
    when g.dg_linear && not (Int64.equal iv.Loopanal.iv_step 0L) ->
    let bad_insn =
      Array.exists
        (function
          | Insn.Call _ | Insn.Ret | Insn.Hlt | Insn.Syscall _
          | Insn.Push _ | Insn.Pop _ | Insn.Jmp (Insn.Indirect _) -> true
          | _ -> false)
        g.dg_insns
    in
    let jccs = ref [] in
    Array.iteri
      (fun i insn ->
         match insn with Insn.Jcc _ -> jccs := i :: !jccs | _ -> ())
      g.dg_insns;
    (* control flow must reduce to the loop's own skeleton: the single
       governing test (wherever the compiler rotated it — bottom-test
       or header-test with a closing jmp) plus direct jumps that stitch
       the linear block chain together; any other transfer means the
       body branches and per-insn elision cannot preserve its paths *)
    let ctrl_ok =
      n > 0
      && Array.for_all
           (fun insn ->
              match insn with
              | Insn.Jmp (Insn.Direct _) | Insn.Jcc _ -> true
              | i -> not (Insn.is_control_flow i))
           g.dg_insns
    in
    let opaque =
      List.exists (fun a -> a.Loopanal.g_opaque) r.Loopanal.accesses
    in
    let cmp_idx =
      let found = ref None in
      Array.iteri
        (fun i a -> if a = iv.Loopanal.cmp_addr then found := Some i)
        g.dg_addrs;
      !found
    in
    let jcc_fed_by_cmp =
      match !jccs, cmp_idx with
      | [ j ], Some c ->
        List.exists
          (fun e ->
             e.e_kind = Reg_flow && e.e_tag = "flags" && e.e_dst = j
             && (not e.e_carried) && e.e_src = c)
          g.dg_edges
      | _ -> false
    in
    (* the only dependences allowed across the infrastructure boundary
       are flow edges feeding groups (the IV value, the compare flags):
       infrastructure replayed by every sub-loop must not consume group
       values or touch group memory *)
    let crossing_ok =
      List.for_all
        (fun e ->
           let si = g.dg_infra.(e.e_src) and di = g.dg_infra.(e.e_dst) in
           if si = di then true
           else si && (not di) && e.e_kind = Reg_flow)
        g.dg_edges
    in
    (not bad_insn) && ctrl_ok && (not opaque) && jcc_fed_by_cmp
    && crossing_ok
  | _ -> false

let plan (r : Loopanal.report) =
  match build r with
  | None -> None
  | Some g ->
    if not (eligible g r) then None
    else begin
      let comps = components g in
      let par, seq = List.partition snd comps in
      (* a product and a residue must both exist: an all-parallel
         partition contradicts the Static-Dependence classification and
         an all-sequential one gains nothing *)
      if par = [] || seq = [] then None
      else
        let addrs_of cs =
          List.concat_map (fun (members, _) -> members) cs
          |> List.sort compare
          |> List.map (fun i -> g.dg_addrs.(i))
        in
        let infra =
          let out = ref [] in
          Array.iteri
            (fun i inf -> if inf then out := g.dg_addrs.(i) :: !out)
            g.dg_infra;
          List.sort compare !out
        in
        Some
          {
            pl_infra = infra;
            pl_product = addrs_of par;
            pl_residue = addrs_of seq;
          }
    end

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let summary g =
  let n = Array.length g.dg_addrs in
  let carried = List.length (List.filter (fun e -> e.e_carried) g.dg_edges) in
  let carried_sccs =
    Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 g.dg_carried_scc
  in
  let comps = components g in
  let par = List.length (List.filter snd comps) in
  Printf.sprintf
    "loop %d: %d insns, %d edges (%d carried), %d sccs (%d carried), %d \
     groups (%d parallel)%s"
    g.dg_lid n (List.length g.dg_edges) carried g.dg_scc_count carried_sccs
    (List.length comps) par
    (if g.dg_linear then "" else ", non-linear body")

let pp_dot ppf g =
  let kind_attr e =
    match e.e_kind, e.e_carried with
    | Reg_flow, false -> "color=black"
    | Reg_flow, true -> "color=red,style=dashed"
    | Reg_output, _ -> "color=blue"
    | Mem, false -> "color=darkgreen"
    | Mem, true -> "color=red,style=dashed,penwidth=2"
    | Ctrl, _ -> "color=gray,style=dotted"
  in
  Format.fprintf ppf "digraph loop_%d {@." g.dg_lid;
  Format.fprintf ppf "  rankdir=TB; node [shape=box,fontname=monospace];@.";
  for sid = 0 to g.dg_scc_count - 1 do
    Format.fprintf ppf "  subgraph cluster_scc%d {@." sid;
    Format.fprintf ppf "    label=\"scc %d%s\";%s@." sid
      (if g.dg_carried_scc.(sid) then " (carried)" else "")
      (if g.dg_carried_scc.(sid) then " color=red;" else " color=gray;");
    Array.iteri
      (fun i a ->
         if g.dg_scc_of.(i) = sid then
           Format.fprintf ppf "    n%d [label=\"0x%x: %s\"%s];@." i a
             (String.concat " "
                (String.split_on_char '\n' (Insn.to_string g.dg_insns.(i))))
             (if g.dg_infra.(i) then ",style=filled,fillcolor=lightgray"
              else ""))
      g.dg_addrs;
    Format.fprintf ppf "  }@."
  done;
  List.iter
    (fun e ->
       Format.fprintf ppf "  n%d -> n%d [%s,label=\"%s\"];@." e.e_src e.e_dst
         (kind_attr e) e.e_tag)
    g.dg_edges;
  Format.fprintf ppf "}@."
