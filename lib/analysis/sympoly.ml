(** Canonicalised symbolic polynomials (§II-D).

    Every value the analyser tracks is an affine polynomial
    [c0 + c1*a1 + ... + cn*an] over {e atoms} — opaque quantities such
    as "the value register rdi held on function entry", "the value this
    load produced" or "the value location X held when the loop header
    was first entered". Non-affine combinations collapse into fresh
    opaque atoms, keeping the representation canonical and equality
    decidable. *)

open Janus_vx

(** Locations the analyser versions into atoms (registers, canonical
    stack slots relative to the function-entry RSP, global scalars). *)
type loc =
  | Rloc of Reg.gp
  | Floc of Reg.fp
  | Sloc of int      (* byte offset from the function-entry RSP *)
  | Gloc of int      (* absolute address *)

let pp_loc ppf = function
  | Rloc r -> Reg.pp_gp ppf r
  | Floc r -> Reg.pp_fp ppf r
  | Sloc off -> Fmt.pf ppf "stack[%d]" off
  | Gloc a -> Fmt.pf ppf "[0x%x]" a

let loc_equal (a : loc) (b : loc) = a = b

type akind =
  | Entry of loc            (* value at function entry *)
  | Header of int * loc     (* value at entry of loop [id]'s header *)
  | Load of int             (* result of the load at instruction addr *)
  | Merge of int            (* control-flow merge (phi) at block addr *)
  | Opaque of int           (* non-affine computation result *)
  | Fval of int             (* integer view of a float value *)

type atom = { aid : int; kind : akind }

(* Atom ids are domain-local so concurrent analyses on separate
   domains never race, and reset at every top-level analysis entry
   ({!reset_atoms}) so the artifacts one analysis produces are
   bit-identical no matter what ran before it on this domain. Atoms are
   only ever compared within a single analysis session, so per-session
   ids are safe. *)
let atom_counter : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

let fresh_atom kind =
  let c = Domain.DLS.get atom_counter in
  incr c;
  { aid = !c; kind }

let reset_atoms () = Domain.DLS.get atom_counter := 0

module AMap = Map.Make (Int)

(** A polynomial: constant + sum of coeff * atom. Empty map = constant. *)
type t = {
  const : int64;
  terms : (int64 * atom) AMap.t;  (* atom id -> coefficient, atom *)
}

let const c = { const = c; terms = AMap.empty }
let zero = const 0L
let of_atom a = { const = 0L; terms = AMap.singleton a.aid (1L, a) }

let is_const p = AMap.is_empty p.terms
let to_const p = if is_const p then Some p.const else None

let equal a b =
  Int64.equal a.const b.const
  && AMap.equal (fun (c1, _) (c2, _) -> Int64.equal c1 c2) a.terms b.terms

let add a b =
  let terms =
    AMap.union
      (fun _ (c1, at) (c2, _) ->
         let c = Int64.add c1 c2 in
         if Int64.equal c 0L then None else Some (c, at))
      a.terms b.terms
  in
  { const = Int64.add a.const b.const; terms }

let scale k p =
  if Int64.equal k 0L then zero
  else
    {
      const = Int64.mul k p.const;
      terms = AMap.map (fun (c, at) -> (Int64.mul k c, at)) p.terms;
    }

let sub a b = add a (scale (-1L) b)

let neg p = scale (-1L) p

(** Polynomial product; collapses to an opaque atom unless one side is
    constant (keeping everything affine). *)
let mul a b =
  match to_const a, to_const b with
  | Some ka, _ -> scale ka b
  | _, Some kb -> scale kb a
  | None, None -> of_atom (fresh_atom (Opaque 0))

let opaque () = of_atom (fresh_atom (Opaque 0))

(** The atoms mentioned by the polynomial. *)
let atoms p = AMap.fold (fun _ (_, at) acc -> at :: acc) p.terms []

let mem_atom p pred = AMap.exists (fun _ (_, at) -> pred at) p.terms

(** Coefficient of atoms satisfying [pred]; None if several match. *)
let coeff_of p pred =
  let matching =
    AMap.fold
      (fun _ (c, at) acc -> if pred at then (c, at) :: acc else acc)
      p.terms []
  in
  match matching with [ (c, a) ] -> Some (c, a) | _ -> None

(** Drop all terms whose atom satisfies [pred], returning the rest. *)
let without p pred =
  { p with terms = AMap.filter (fun _ (_, at) -> not (pred at)) p.terms }

let pp_akind ppf = function
  | Entry l -> Fmt.pf ppf "%a@entry" pp_loc l
  | Header (id, l) -> Fmt.pf ppf "%a@L%d" pp_loc l id
  | Load a -> Fmt.pf ppf "load@0x%x" a
  | Merge a -> Fmt.pf ppf "phi@0x%x" a
  | Opaque _ -> Fmt.pf ppf "opaque"
  | Fval _ -> Fmt.pf ppf "fval"

let pp_atom ppf a = Fmt.pf ppf "%a#%d" pp_akind a.kind a.aid

let pp ppf p =
  if is_const p then Fmt.pf ppf "%Ld" p.const
  else begin
    let first = ref true in
    if not (Int64.equal p.const 0L) then begin
      Fmt.pf ppf "%Ld" p.const;
      first := false
    end;
    AMap.iter
      (fun _ (c, at) ->
         if not !first then Fmt.string ppf " + ";
         first := false;
         if Int64.equal c 1L then pp_atom ppf at
         else Fmt.pf ppf "%Ld*%a" c pp_atom at)
      p.terms
  end

let to_string p = Fmt.str "%a" pp p

(** {1 Float expression trees}

    Used for reduction recognition and duplicated-path detection; FP
    values do not need affine canonicalisation, only structural
    matching. *)

type fexpr =
  | Fatom of atom
  | Fbinop of Insn.fbin * fexpr * fexpr
  | Fconvert of t              (* cvtsi2sd of an integer polynomial *)
  | Funknown of atom

let rec fexpr_equal a b =
  match a, b with
  | Fatom x, Fatom y -> x.aid = y.aid
  | Fbinop (o1, a1, b1), Fbinop (o2, a2, b2) ->
    o1 = o2 && fexpr_equal a1 a2 && fexpr_equal b1 b2
  | Fconvert p, Fconvert q -> equal p q
  | Funknown x, Funknown y -> x.aid = y.aid
  | (Fatom _ | Fbinop _ | Fconvert _ | Funknown _), _ -> false

let rec fexpr_mentions pred = function
  | Fatom a | Funknown a -> pred a
  | Fbinop (_, x, y) -> fexpr_mentions pred x || fexpr_mentions pred y
  | Fconvert p -> mem_atom p pred

let rec pp_fexpr ppf = function
  | Fatom a -> pp_atom ppf a
  | Fbinop (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" pp_fexpr a (Insn.fbin_name op) pp_fexpr b
  | Fconvert p -> Fmt.pf ppf "i2f(%a)" pp p
  | Funknown a -> Fmt.pf ppf "f?%d" a.aid
