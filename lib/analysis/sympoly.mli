(** Canonicalised symbolic polynomials (§II-D).

    Every value the analyser tracks is an affine polynomial
    [c0 + c1*a1 + ... + cn*an] over {e atoms} — opaque quantities such
    as "the value rdi held at function entry" or "the value location X
    held when the loop header was first entered". Non-affine
    combinations collapse into fresh opaque atoms, keeping the
    representation canonical and equality decidable. *)

open Janus_vx

(** Locations the analyser versions into atoms. *)
type loc =
  | Rloc of Reg.gp
  | Floc of Reg.fp
  | Sloc of int      (** byte offset from the reference RSP *)
  | Gloc of int      (** absolute address *)

val pp_loc : Format.formatter -> loc -> unit
val loc_equal : loc -> loc -> bool

type akind =
  | Entry of loc            (** value at function entry *)
  | Header of int * loc     (** value at entry of loop [id]'s header *)
  | Load of int             (** result of the load at an address *)
  | Merge of int            (** control-flow merge (phi) *)
  | Opaque of int           (** non-affine computation result *)
  | Fval of int             (** integer view of a float value *)

type atom = { aid : int; kind : akind }

(** Allocate a globally fresh atom. *)
val fresh_atom : akind -> atom

(** Reset this domain's atom-id counter. Called at every top-level
    analysis entry so atom ids — and hence the artifacts an analysis
    produces — are deterministic regardless of what already ran on this
    domain. Atom ids are domain-local, so analyses running concurrently
    on separate domains never interfere. *)
val reset_atoms : unit -> unit

module AMap : Map.S with type key = int

type t = {
  const : int64;
  terms : (int64 * atom) AMap.t;  (** atom id -> coefficient, atom *)
}

val const : int64 -> t
val zero : t
val of_atom : atom -> t
val is_const : t -> bool
val to_const : t -> int64 option
val equal : t -> t -> bool
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

(** Multiply by a constant. *)
val scale : int64 -> t -> t

(** Polynomial product; collapses to an opaque atom unless one side is
    constant. *)
val mul : t -> t -> t

(** A fresh opaque polynomial (an unknown value). *)
val opaque : unit -> t

val atoms : t -> atom list
val mem_atom : t -> (atom -> bool) -> bool

(** The unique matching term's coefficient and atom, if exactly one
    atom satisfies the predicate. *)
val coeff_of : t -> (atom -> bool) -> (int64 * atom) option

(** Drop all terms whose atom satisfies the predicate. *)
val without : t -> (atom -> bool) -> t

val pp_akind : Format.formatter -> akind -> unit
val pp_atom : Format.formatter -> atom -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Float expression trees}

    FP values need only structural matching (reduction recognition and
    duplicated-path detection), not affine canonicalisation. *)

type fexpr =
  | Fatom of atom
  | Fbinop of Insn.fbin * fexpr * fexpr
  | Fconvert of t
  | Funknown of atom

val fexpr_equal : fexpr -> fexpr -> bool
val fexpr_mentions : (atom -> bool) -> fexpr -> bool
val pp_fexpr : Format.formatter -> fexpr -> unit
