(** Per-loop analysis: induction variables, iterator ranges, reductions,
    privatisable scalars, memory-dependence and alias analysis, and the
    loop classification of §II-D (types A-D plus incompatible). *)

open Janus_vx
open Sympoly
module Rexpr = Janus_schedule.Rexpr
module Desc = Janus_schedule.Desc

(** Classification before profiling. [Ambiguous] loops are refined into
    Dynamic DOALL (C) or Dynamic Dependence (D) by the dependence
    profiler. [Outer] loops contain inner loops and are analysed
    conservatively. *)
type classification =
  | Static_doall                (* type A *)
  | Static_dep of string        (* type B, with the reason *)
  | Ambiguous of string         (* type C or D pending profiling *)
  | Incompatible of string
  | Outer

type iv_info = {
  iv_loc : loc;
  iv_step : int64;
  iv_cond : Cond.t;             (* continue while (iv_canonical cond bound) *)
  iv_init_rexpr : Rexpr.t;
  iv_bound_rexpr : Rexpr.t option;  (* canonical bound, at the preheader *)
  iv_bound_const : int64 option;
  iv_init_const : int64 option;
  cmp_addr : int;               (* address of the governing compare *)
  bound_operand_index : int;    (* 0 = first cmp operand is the bound *)
  bound_adjust : int64;         (* compare tests (iv + adjust) vs operand *)
}

(** A memory access summarised as [base + k*iv + ...] (Fig. 4). *)
type access_sum = {
  g_insn : int;
  g_write : bool;
  g_bytes : int;
  g_k : int64;                  (* coefficient of the IV; 0 = scalar *)
  g_base : Sympoly.t;           (* invariant part *)
  g_base_rexpr : Rexpr.t option;
  g_stack : bool;               (* thread-private stack slot *)
  g_opaque : bool;              (* address not expressible as base+k*iv *)
}

type check_range = {
  ck_base : Rexpr.t;
  ck_extent : Rexpr.t;
  ck_width : int;
  ck_written : bool;
}

type report = {
  loop : Looptree.loop;
  func : Cfg.func;
  cls : classification;
  iv : iv_info option;
  reductions : (Desc.location * Desc.redop) list;
  privatised : loc list;        (* scalar locations to privatise *)
  priv_insns : (int * loc) list; (* instruction addr -> privatised loc *)
  main_stack_reads : int list;  (* insns reading read-only stack slots *)
  iv_insns : int list;          (* insns accessing a memory-resident IV's slot *)
  accesses : access_sum list;
  check_ranges : check_range list;  (* empty = no runtime check needed *)
  excall_sites : (int * string) list;
  local_call_sites : (int * int) list;
  modified_gps : Reg.gp list;   (* live-out candidates *)
  modified_fps : Reg.fp list;
  frame_low : int;              (* lowest stack offset touched (<= 0) *)
  insn_count : int;             (* static instructions in the loop *)
  doacross_frac : int option;
  (* for static-dependence loops with a recognised iterator: estimated
     percentage of the body on the carried chain. In-order chunk
     execution with context hand-off can overlap the remainder (the
     paper's future-work DOACROSS direction). *)
}

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

(* topological order of the loop body ignoring back edges to the header *)
let topo_order (f : Cfg.func) (l : Looptree.loop) =
  let in_body a = List.mem a l.body in
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs a =
    if in_body a && not (Hashtbl.mem visited a) then begin
      Hashtbl.replace visited a ();
      (match Hashtbl.find_opt f.block_at a with
       | Some b ->
         List.iter (fun s -> if s <> l.header then dfs s) b.Cfg.succs
       | None -> ());
      order := a :: !order
    end
  in
  dfs l.header;
  !order

(* convert an atom to a runtime expression at the preheader, if possible *)
let rec rexpr_of_atom lid invariant_mem (a : atom) : Rexpr.t option =
  match a.kind with
  | Header (l, Rloc r) when l = lid -> Some (Rexpr.Reg r)
  | Header (l, Sloc off) when l = lid ->
    Some (Rexpr.Load (Rexpr.Add (Rexpr.Reg Reg.RSP, Rexpr.Const (Int64.of_int off))))
  | Header (l, Gloc addr) when l = lid ->
    Some (Rexpr.Load (Rexpr.Const (Int64.of_int addr)))
  | Header (_, Floc _) | Header _ -> None
  | Load _ -> begin
      (* a load is usable only if its address is invariant & convertible *)
      match invariant_mem a.aid with
      | Some addr_poly -> begin
          match rexpr_of_poly lid invariant_mem addr_poly with
          | Some e -> Some (Rexpr.Load e)
          | None -> None
        end
      | None -> None
    end
  | Entry _ | Merge _ | Opaque _ | Fval _ -> None

and rexpr_of_poly lid invariant_mem (p : Sympoly.t) : Rexpr.t option =
  let base = Rexpr.Const p.const in
  let rec fold acc = function
    | [] -> Some acc
    | (c, at) :: tl -> begin
        match rexpr_of_atom lid invariant_mem at with
        | Some e ->
          let term = if Int64.equal c 1L then e else Rexpr.Mul (Rexpr.Const c, e) in
          fold (Rexpr.Add (acc, term)) tl
        | None -> None
      end
  in
  let terms = AMap.fold (fun _ (c, at) acc -> (c, at) :: acc) p.terms [] in
  match terms with
  | [] -> Some base
  | _ when Int64.equal p.const 0L -> begin
      (* avoid a leading 0 + ... *)
      match terms with
      | (c, at) :: tl -> begin
          match rexpr_of_atom lid invariant_mem at with
          | Some e ->
            let head = if Int64.equal c 1L then e else Rexpr.Mul (Rexpr.Const c, e) in
            fold head tl
          | None -> None
        end
      | [] -> Some base
    end
  | _ -> fold base terms

(* does the final value of [loc] stay untouched? *)
let final_of_loc ctx (latch : Symexec.state) loc h =
  match loc with
  | Rloc r -> Some (Symexec.(latch.regs.(Reg.gp_index r)))
  | Sloc off ->
    let addr = add (of_atom ctx.Symexec.rsp0) (const (Int64.of_int off)) in
    (match
       List.find_opt
         (fun (s : Symexec.store_entry) -> equal s.s_addr addr)
         latch.Symexec.stores
     with
     | Some { s_val = Symexec.Vint p; _ } -> Some p
     | Some { s_val = Symexec.Vfloat _; _ } -> None
     | None ->
       (* unchanged on the latch path unless dirtied *)
       let dirtied =
         List.exists
           (fun (da, db) -> Symexec.may_overlap ctx addr 8 da db)
           ctx.Symexec.dirty
       in
       if dirtied then None else Some (of_atom h))
  | Gloc a ->
    let addr = const (Int64.of_int a) in
    (match
       List.find_opt
         (fun (s : Symexec.store_entry) -> equal s.s_addr addr)
         latch.Symexec.stores
     with
     | Some { s_val = Symexec.Vint p; _ } -> Some p
     | Some { s_val = Symexec.Vfloat _; _ } -> None
     | None ->
       let dirtied =
         List.exists
           (fun (da, db) -> Symexec.may_overlap ctx addr 8 da db)
           ctx.Symexec.dirty
       in
       if dirtied then None else Some (of_atom h))
  | Floc _ -> None

(* float reduction recognition: an add/mul chain containing the header
   atom exactly once, with no other (even merge-hidden) mention of it *)
let float_reduction ctx h (f : fexpr) =
  let mentions_h e = Symexec.mentions_fexpr ctx (fun a -> a.aid = h.aid) e in
  let rec count op = function
    | Fatom a when a.aid = h.aid -> Some 1
    | Fbinop (o, x, y) when o = op -> begin
        match count op x, count op y with
        | Some cx, Some cy -> Some (cx + cy)
        | _ -> None
      end
    | e -> if mentions_h e then None else Some 0
  in
  match f with
  | Fatom a when a.aid = h.aid -> None  (* invariant, not a reduction *)
  | _ ->
    if count Insn.Fadd f = Some 1 then Some Desc.Radd_f64
    else if count Insn.Fmul f = Some 1 then Some Desc.Rmul_f64
    else None

(* ------------------------------------------------------------------ *)
(* The analysis                                                        *)
(* ------------------------------------------------------------------ *)

let insn_count_of (f : Cfg.func) (l : Looptree.loop) =
  List.fold_left
    (fun acc a ->
       match Hashtbl.find_opt f.block_at a with
       | Some b -> acc + Array.length b.Cfg.insns
       | None -> acc)
    0 l.body

let empty_report func loop cls =
  {
    loop; func; cls; iv = None; reductions = []; privatised = [];
    priv_insns = []; main_stack_reads = []; iv_insns = [];
    accesses = []; check_ranges = [];
    excall_sites = []; local_call_sites = []; modified_gps = [];
    modified_fps = []; frame_low = 0; insn_count = insn_count_of func loop;
    doacross_frac = None;
  }

let rec analyse (cfgt : Cfg.t) ?fa (f : Cfg.func) (ltree : Looptree.t)
    (l : Looptree.loop) : report =
  if l.children <> [] then empty_report f l Outer
  else if f.irregular then empty_report f l (Incompatible "irregular function")
  else begin
    (* quick scans for incompatible features *)
    let blocks =
      List.filter_map (fun a -> Hashtbl.find_opt f.block_at a) l.body
    in
    let has_syscall =
      List.exists
        (fun b ->
           Array.exists
             (fun (ii : Cfg.insn_info) ->
                match ii.insn with Insn.Syscall _ -> true | _ -> false)
             b.Cfg.insns)
        blocks
    in
    let has_indirect =
      List.exists
        (fun b ->
           Array.exists
             (fun (ii : Cfg.insn_info) ->
                match ii.insn with
                | Insn.Jmp (Insn.Indirect _) | Insn.Call (Insn.Indirect _) -> true
                | _ -> false)
             b.Cfg.insns)
        blocks
    in
    if has_syscall then empty_report f l (Incompatible "performs IO / syscalls")
    else if has_indirect then
      empty_report f l (Incompatible "indirect control flow")
    else begin
      ignore ltree;
      (* symbolic walk of the body in topological order *)
      let naming = Symexec.header_naming l.lid in
      let ctx = Symexec.create naming in
      (* seed the frame-pointer relation: if the whole-function pass
         proves rbp = rsp + delta at the preheader, spilled values
         address as stack slots in the loop pass too *)
      (match fa, l.Looptree.preheader with
       | Some fa, Some pre -> begin
           match Funcanal.out_state fa pre with
           | Some st -> begin
               let rbp = st.Symexec.regs.(Reg.gp_index Reg.RBP) in
               match
                 Symexec.classify_addr fa.Funcanal.ctx rbp,
                 Funcanal.rsp_delta fa st
               with
               | Symexec.Astack d_rbp, Some d_rsp ->
                 Symexec.set_reg ctx Reg.RBP
                   (Sympoly.add (Sympoly.of_atom ctx.Symexec.rsp0)
                      (Sympoly.const (Int64.of_int (d_rbp - d_rsp))))
               | _ -> ()
             end
           | None -> ()
         end
       | _ -> ());
      let order = topo_order f l in
      let out_states : (int, Symexec.state) Hashtbl.t = Hashtbl.create 8 in
      let header_state = Symexec.copy_state ctx.Symexec.st in
      let exit_conds = ref [] in  (* (block, cond, cmp, target_in_loop) *)
      List.iter
        (fun baddr ->
           let b = Hashtbl.find f.block_at baddr in
           let in_state =
             if baddr = l.header then header_state
             else begin
               let preds =
                 List.filter_map
                   (fun p ->
                      if List.mem p l.body && p <> baddr then
                        Hashtbl.find_opt out_states p
                      else None)
                   b.Cfg.preds
               in
               match preds with
               | [] -> Symexec.copy_state header_state  (* unreachable-ish *)
               | [ s ] -> Symexec.copy_state s
               | s :: rest ->
                 List.fold_left
                   (fun acc s' -> Symexec.merge_states ctx ~at:baddr acc s')
                   (Symexec.copy_state s) rest
             end
           in
           ctx.Symexec.st <- in_state;
           Array.iter (fun ii -> Symexec.exec ctx ii) b.Cfg.insns;
           (* record exit conditions *)
           let last = b.Cfg.insns.(Array.length b.Cfg.insns - 1) in
           (match last.Cfg.insn with
            | Insn.Jcc (c, target) ->
              let fall = last.Cfg.addr + last.Cfg.len in
              let t_in = List.mem target l.body in
              let f_in = List.mem fall l.body in
              if not t_in || not f_in then
                exit_conds :=
                  (baddr, (if t_in then Cond.negate c else c),
                   ctx.Symexec.st.Symexec.cmp, last.Cfg.addr)
                  :: !exit_conds
            | _ -> ());
           Hashtbl.replace out_states baddr ctx.Symexec.st)
        order;
      (* merged latch state *)
      let latch_states = List.filter_map (Hashtbl.find_opt out_states) l.latches in
      match latch_states with
      | [] -> empty_report f l (Incompatible "no latch state")
      | s :: rest ->
        let latch =
          List.fold_left
            (fun acc s' -> Symexec.merge_states ctx ~at:l.header acc s')
            s rest
        in
        analyse_with_latch cfgt ?fa f l naming ctx latch !exit_conds
    end
  end

and analyse_with_latch _cfgt ?fa f l naming ctx latch exit_conds : report =
  (* preheader machine state from the whole-function pass, for iterator
     range solving (initial value and constant bound) *)
  let preheader_value loc =
    match fa, l.Looptree.preheader with
    | Some fa, Some pre -> begin
        match Funcanal.out_state fa pre with
        | Some st -> begin
            let fn_loc =
              match loc with
              | Sloc off ->
                Option.map (fun d -> Sloc (off + d)) (Funcanal.rsp_delta fa st)
              | (Rloc _ | Gloc _ | Floc _) as x -> Some x
            in
            match fn_loc with
            | Some fl -> Funcanal.loc_value fa st fl
            | None -> None
          end
        | None -> None
      end
    | _ -> None
  in
  let const_at_preheader (p : Sympoly.t) =
    let lid = l.Looptree.lid in
    try
      Some
        (AMap.fold
           (fun _ (c, at) acc ->
              match at.kind with
              | Header (l', loc) when l' = lid -> begin
                  match
                    Option.bind (preheader_value loc) Sympoly.to_const
                  with
                  | Some v -> Int64.add acc (Int64.mul c v)
                  | None -> raise Exit
                end
              | _ -> raise Exit)
           p.terms p.const)
    with Exit -> None
  in
  let lid = l.Looptree.lid in
  (* ---- location behaviour ---- *)
  let named = naming.Symexec.named () in
  let gp_locs =
    List.map (fun r -> Rloc r) Reg.all_gp
    @ List.filter_map
        (fun (loc, _) -> match loc with Sloc _ | Gloc _ -> Some loc | _ -> None)
        named
  in
  let behaviours =
    List.filter_map
      (fun loc ->
         let h = naming.Symexec.name_loc loc in
         match final_of_loc ctx latch loc h with
         | None -> Some (loc, h, `Unknown)
         | Some p ->
           if equal p (of_atom h) then Some (loc, h, `Invariant)
           else begin
             let mentions_h q =
               Symexec.mentions_poly ctx (fun a -> a.aid = h.aid) q
             in
             match coeff_of p (fun a -> a.aid = h.aid) with
             | Some (c, _) when Int64.equal c 1L ->
               let rest = without p (fun a -> a.aid = h.aid) in
               (match to_const rest with
                | Some step when not (Int64.equal step 0L) ->
                  Some (loc, h, `IV step)
                | Some _ -> Some (loc, h, `Invariant)
                | None ->
                  if mentions_h rest then Some (loc, h, `Carried)
                  else Some (loc, h, `Reduction Desc.Radd_int))
             | Some _ -> Some (loc, h, `Carried)
             | None ->
               if mentions_h p then Some (loc, h, `Carried)
               else Some (loc, h, `Private)
           end)
      gp_locs
  in
  (* float registers *)
  let f_behaviours =
    List.map
      (fun r ->
         let loc = Floc r in
         let h = naming.Symexec.name_loc loc in
         let final = latch.Symexec.fregs.(Reg.fp_index r) in
         if fexpr_equal final (Fatom h) then (loc, h, `Invariant)
         else
           match float_reduction ctx h final with
           | Some op -> (loc, h, `Reduction op)
           | None ->
             if Symexec.mentions_fexpr ctx (fun a -> a.aid = h.aid) final then
               (loc, h, `Carried)
             else (loc, h, `Private))
      Reg.all_fp
  in
  (* where is each header atom used? (addresses, stored values, conds);
     [except_self] skips stores whose target is the given address (a
     reduction's own update chain) *)
  let atom_used ?except_self h =
    let pred x = x.aid = h.aid in
    let mp q = Symexec.mentions_poly ctx pred q in
    let mf q = Symexec.mentions_fexpr ctx pred q in
    List.exists
      (fun (a : Symexec.access) ->
         let self =
           match except_self with
           | Some addr -> a.a_write && equal a.a_addr addr
           | None -> false
         in
         mp a.a_addr
         || ((not self)
             &&
             match a.a_value with
             | Some (Symexec.Vint p) -> mp p
             | Some (Symexec.Vfloat fe) -> mf fe
             | None -> false))
      ctx.Symexec.accesses
    || List.exists
         (fun (_, _, cmp, _) ->
            match cmp with
            | Some (Symexec.Cmp_int (a, b, _)) -> mp a || mp b
            | Some (Symexec.Cmp_float (a, b)) -> mf a || mf b
            | None -> false)
         exit_conds
    (* every compare inside the body counts as a use, not only exits *)
    || List.exists
         (fun c ->
            match c with
            | Symexec.Cmp_float (a, b) -> mf a || mf b
            | Symexec.Cmp_int (a, b, _) -> mp a || mp b)
         ctx.Symexec.all_cmps
  in
  let atom_used_anywhere h = atom_used h in
  (* ---- induction variable & exit analysis ---- *)
  let ivs =
    List.filter_map
      (fun (loc, h, beh) ->
         match beh with `IV step -> Some (loc, h, step) | _ -> None)
      behaviours
  in
  let invariant_atoms =
    List.filter_map
      (fun (_, h, beh) -> match beh with `Invariant -> Some h.aid | _ -> None)
      behaviours
  in
  let is_invariant_poly p =
    List.for_all
      (fun (a : atom) ->
         match a.kind with
         | Header (lid', _) when lid' = lid -> List.mem a.aid invariant_atoms
         | Header _ -> false
         | Load _ -> false  (* conservatively variant *)
         | Entry _ -> true
         | Merge _ | Opaque _ | Fval _ -> false)
      (atoms p)
  in
  (* map from load atoms to their (invariant) addresses, for Rexprs *)
  let invariant_mem aid =
    match List.assoc_opt aid ctx.Symexec.load_addrs with
    | Some addr when is_invariant_poly addr ->
      (* the loaded location must not be written in the loop *)
      let clobbered =
        List.exists
          (fun (a : Symexec.access) ->
             a.a_write && Symexec.may_overlap ctx addr 8 a.a_addr a.a_bytes)
          ctx.Symexec.accesses
      in
      if clobbered then None else Some addr
    | _ -> None
  in
  (* find the governing exit: exactly one exit edge, IV-comparing *)
  let analyse_exit (h : atom) step (_, cond, cmp, _jcc_addr) =
    match cmp with
    | Some (Symexec.Cmp_int (pa, pb, cmp_addr)) ->
      let check iv_side other cond_for_iv idx =
        match coeff_of iv_side (fun a -> a.aid = h.aid) with
        | Some (c, _) when Int64.equal c 1L ->
          let adjust = without iv_side (fun a -> a.aid = h.aid) in
          (match to_const adjust with
           | Some d when is_invariant_poly other ->
             Some (cond_for_iv, other, d, cmp_addr, idx)
           | _ -> None)
        | _ -> None
      in
      let r1 = check pa pb cond 1 in
      (match r1 with
       | Some _ -> r1
       | None -> check pb pa (Cond.swap cond) 0)
      |> Option.map (fun x -> (x, step))
    | _ -> None
  in
  let governed =
    List.concat_map
      (fun (loc, h, step) ->
         List.filter_map
           (fun ec ->
              analyse_exit h step ec
              |> Option.map (fun (x, st) -> (loc, h, st, x)))
           exit_conds)
      ivs
  in
  let n_exits = List.length exit_conds in
  let iv_result =
    match governed with
    | [ (loc, h, step, (exit_cond, bound_poly, adjust, cmp_addr, bidx)) ]
      when n_exits = 1 ->
      (* continue condition = negation of the exit condition *)
      let cont = Cond.negate exit_cond in
      (* canonical bound = bound_operand - adjust *)
      let init_rexpr =
        match loc with
        | Rloc r -> Some (Rexpr.Reg r)
        | Sloc off ->
          Some (Rexpr.Load (Rexpr.Add (Rexpr.Reg Reg.RSP,
                                       Rexpr.Const (Int64.of_int off))))
        | Gloc a -> Some (Rexpr.Load (Rexpr.Const (Int64.of_int a)))
        | Floc _ -> None
      in
      let bound_rexpr =
        rexpr_of_poly lid invariant_mem (sub bound_poly (const adjust))
      in
      (match init_rexpr with
       | Some init_rexpr ->
         Some
           ( h,
             {
               iv_loc = loc;
               iv_step = step;
               iv_cond = cont;
               iv_init_rexpr = init_rexpr;
               iv_bound_rexpr = bound_rexpr;
               iv_bound_const =
                 (let canon = sub bound_poly (const adjust) in
                  match to_const canon with
                  | Some v -> Some v
                  | None -> const_at_preheader canon);
               iv_init_const =
                 Option.bind (preheader_value loc) Sympoly.to_const;
               cmp_addr;
               bound_operand_index = bidx;
               bound_adjust = adjust;
             } )
       | None -> None)
    | _ -> None
  in
  match iv_result with
  | None ->
    { (empty_report f l (Incompatible "no recognisable induction variable"))
      with excall_sites = ctx.Symexec.excalls }
  | Some (h_iv, iv) ->
    (* sanity: sensible direction *)
    let dir_ok =
      match iv.iv_cond, Int64.compare iv.iv_step 0L with
      | (Cond.Lt | Cond.Le | Cond.Ne | Cond.Ult | Cond.Ule), 1 -> true
      | (Cond.Gt | Cond.Ge | Cond.Ne | Cond.Ugt | Cond.Uge), -1 -> true
      | _ -> false
    in
    if not dir_ok then
      empty_report f l (Incompatible "iterator direction mismatch")
    else
      classify_body f l naming ctx latch behaviours f_behaviours
        atom_used_anywhere atom_used is_invariant_poly invariant_mem h_iv iv

and classify_body f l naming ctx latch behaviours f_behaviours
    atom_used_anywhere atom_used is_invariant_poly invariant_mem h_iv iv
    : report =
  ignore latch;
  let lid = l.Looptree.lid in
  (* ---- register dependences ---- *)
  let reductions = ref [] in
  let static_dep = ref None in
  let set_dep reason = if !static_dep = None then static_dep := Some reason in
  let modified_gps = ref [] in
  let modified_fps = ref [] in
  let scalar_locs = ref [] in  (* memory scalar locations and behaviour *)
  List.iter
    (fun (loc, h, beh) ->
       (match loc, beh with
        | Rloc r, (`Carried | `Reduction _ | `IV _ | `Private | `Unknown)
          when not (Reg.equal_gp r Reg.RSP) ->
          modified_gps := r :: !modified_gps
        | _ -> ());
       match beh with
       | `Invariant -> ()
       | `Private ->
         (* a value recomputed every iteration is only safe if its
            previous-iteration value is never consumed *)
         if atom_used_anywhere h then
           set_dep (Fmt.str "previous-iteration value of %a consumed"
                      Sympoly.pp_loc loc)
       | `IV _ when h.aid = h_iv.aid -> ()
       | `IV _ ->
         (* secondary IV: fine if derivable (it advances in lockstep);
            the runtime recomputes it only if it is the main IV, so a
            secondary IV that is observed elsewhere is a dependence
            unless it is just a scaled copy — conservatively accept
            register secondary IVs (each thread's context copy plus
            chunk-local updates keep them consistent only for the
            first-private pattern), reject memory ones. *)
         (match loc with
          | Rloc _ -> set_dep "secondary register induction variable"
          | Sloc _ | Gloc _ -> set_dep "secondary memory induction variable"
          | Floc _ -> ())
       | `Reduction op -> begin
           let self_addr =
             match loc with
             | Sloc off ->
               Some (add (of_atom ctx.Symexec.rsp0) (const (Int64.of_int off)))
             | Gloc a -> Some (const (Int64.of_int a))
             | Rloc _ | Floc _ -> None
           in
           if atom_used ?except_self:self_addr h then
             set_dep
               (Fmt.str "partial reduction value of %a observed"
                  Sympoly.pp_loc loc)
           else
             match loc with
             | Rloc _ | Floc _ -> reductions := (loc, op, h) :: !reductions
             | Sloc _ | Gloc _ ->
               reductions := (loc, op, h) :: !reductions;
               scalar_locs := (loc, `Reduction) :: !scalar_locs
         end
       | `Carried ->
         (* a location rewritten from its previous value each iteration
            is a loop-carried dependence, whether or not the previous
            value also escapes into memory or a compare *)
         set_dep (Fmt.str "loop-carried value in %a" Sympoly.pp_loc loc)
       | `Unknown -> set_dep (Fmt.str "unanalysable update of %a" Sympoly.pp_loc loc))
    behaviours;
  List.iter
    (fun (loc, h, beh) ->
       (match loc, beh with
        | Floc r, (`Carried | `Reduction _ | `Private) ->
          modified_fps := r :: !modified_fps
        | _ -> ());
       match beh with
       | `Invariant -> ()
       | `Private ->
         if atom_used_anywhere h then
           set_dep (Fmt.str "previous-iteration FP value of %a consumed"
                      Sympoly.pp_loc loc)
       | `Reduction op ->
         if atom_used h then
           set_dep (Fmt.str "partial FP reduction of %a observed"
                      Sympoly.pp_loc loc)
         else reductions := (loc, op, h) :: !reductions
       | `Carried ->
         (* same as the GP case: a register-only carried chain (e.g. a
            smoothing accumulator that never touches memory) is still a
            cross-iteration dependence — its live-out value depends on
            every iteration *)
         set_dep (Fmt.str "loop-carried FP value in %a" Sympoly.pp_loc loc)
       | `IV _ | `Unknown -> set_dep "unanalysable FP update")
    f_behaviours;
  (* ---- memory accesses: summarise as base + k*iv ---- *)
  let ambiguous = ref [] in
  let set_amb reason = ambiguous := reason :: !ambiguous in
  let accesses =
    List.filter_map
      (fun (a : Symexec.access) ->
         let k, base =
           match coeff_of a.a_addr (fun x -> x.aid = h_iv.aid) with
           | Some (c, _) -> (c, without a.a_addr (fun x -> x.aid = h_iv.aid))
           | None -> (0L, a.a_addr)
         in
         let opaque = not (is_invariant_poly base) in
         if opaque then begin
           (* address varies in a non-iv way: only profiling can judge
              it; an opaque store also blocks parallelisation *)
           if a.a_write then set_amb "store through unanalysable address"
           else set_amb "load through unanalysable address"
         end;
         Some
           {
             g_insn = a.a_insn;
             g_write = a.a_write;
             g_bytes = a.a_bytes;
             g_k = (if opaque then 0L else k);
             g_base = base;
             g_base_rexpr =
               (if opaque then None else rexpr_of_poly lid invariant_mem base);
             g_stack =
               (match Symexec.classify_addr ctx a.a_addr with
                | Symexec.Astack _ -> true
                | Symexec.Aconst _ | Symexec.Aother -> false);
             g_opaque = opaque;
           })
      ctx.Symexec.accesses
  in
  (* insns that read or write a memory-resident iterator's own slot
     (empty for register iterators): loop fission replicates them, with
     the update arithmetic, into every sub-loop *)
  let iv_insns =
    match iv.iv_loc with
    | (Sloc _ | Gloc _) as ivl ->
      List.sort_uniq compare
        (List.filter_map
           (fun g ->
              if Int64.equal g.g_k 0L && not g.g_opaque then
                match Symexec.classify_addr ctx g.g_base with
                | Symexec.Astack off when Sympoly.loc_equal ivl (Sloc off) ->
                  Some g.g_insn
                | Symexec.Aconst a when Sympoly.loc_equal ivl (Gloc a) ->
                  Some g.g_insn
                | _ -> None
              else None)
           accesses)
    | _ -> []
  in
  (* scalar (k = 0) locations: privatisation & main-stack reads *)
  let priv_insns = ref [] in
  let privatised = ref [] in
  let main_stack_reads = ref [] in
  let scalar_accesses =
    List.filter (fun g -> Int64.equal g.g_k 0L && not g.g_opaque) accesses
  in
  let scalar_groups =
    List.sort_uniq compare (List.map (fun g -> Sympoly.to_string g.g_base) scalar_accesses)
  in
  List.iter
    (fun key ->
       let group =
         List.filter (fun g -> String.equal (Sympoly.to_string g.g_base) key)
           scalar_accesses
       in
       let writes = List.filter (fun g -> g.g_write) group in
       let base = (List.hd group).g_base in
       let loc =
         match Symexec.classify_addr ctx base with
         | Symexec.Astack off -> Some (Sloc off)
         | Symexec.Aconst addr -> Some (Gloc addr)
         | Symexec.Aother -> None
       in
       match loc, writes with
       | Some loc, [] -> begin
           (* read-only scalar: stack reads can go to the main stack *)
           match loc with
           | Sloc _ ->
             List.iter (fun g -> main_stack_reads := g.g_insn :: !main_stack_reads) group
           | _ -> ()
         end
       | Some loc, _ -> begin
           (* written scalar: reduction (already detected), privatisable
              (value never escapes the iteration) or carried *)
           let is_reduction =
             List.exists (fun (l', _, _) -> Sympoly.loc_equal l' loc) !reductions
           in
           let loaded_header =
             (* did any load of this location produce its header atom? *)
             let hatom = naming.Symexec.name_loc loc in
             atom_used_anywhere hatom
             || List.exists
                  (fun (_, h', beh) ->
                     h'.aid = (naming.Symexec.name_loc loc).aid
                     && match beh with `Carried | `Unknown -> true | _ -> false)
                  behaviours
           in
           if is_reduction then
             List.iter
               (fun g -> priv_insns := (g.g_insn, loc) :: !priv_insns)
               group
           else if not loaded_header then begin
             privatised := loc :: !privatised;
             List.iter
               (fun g -> priv_insns := (g.g_insn, loc) :: !priv_insns)
               group
           end
           (* else: carried through memory; `Carried already set a dep
              via behaviours when the header atom was consumed *)
         end
       | None, [] -> ()
       | None, _ -> set_amb "scalar store through unknown pointer")
    scalar_groups;
  (* ---- array dependence / alias analysis ---- *)
  let arrays =
    List.filter (fun g -> (not (Int64.equal g.g_k 0L)) && not g.g_opaque)
      accesses
  in
  let pairs_need_check = ref false in
  let check_impossible = ref false in
  (* the last IV value actually taken, from init/bound/step/cond *)
  let last_iv_value () =
    match iv.iv_init_const, iv.iv_bound_const with
    | Some i0, Some n -> begin
        let i0 = Int64.to_int i0 and n = Int64.to_int n in
        let step = Int64.to_int iv.iv_step in
        let span =
          match iv.iv_cond, step > 0 with
          | (Janus_vx.Cond.Lt | Janus_vx.Cond.Ult), true -> n - 1 - i0
          | (Janus_vx.Cond.Le | Janus_vx.Cond.Ule), true -> n - i0
          | (Janus_vx.Cond.Gt | Janus_vx.Cond.Ugt), false -> n + 1 - i0
          | (Janus_vx.Cond.Ge | Janus_vx.Cond.Uge), false -> n - i0
          | Janus_vx.Cond.Ne, _ -> n - (if step > 0 then 1 else -1) - i0
          | _, _ -> n - i0
        in
        if (step > 0 && span < 0) || (step < 0 && span > 0) || step = 0 then
          Some (i0, i0, 0)  (* zero trips: footprint collapses to init *)
        else begin
          let m = span / step in
          let last = i0 + (m * step) in
          Some (i0, last, m + 1)
        end
      end
    | _ -> None
  in
  (* cross-iteration conflict between two accesses (one a write):
     [`No] proven absent, [`Yes] proven (or assumed) present,
     [`Range] decidable only from the runtime iterator range *)
  let conflict g1 g2 =
    let diff = sub g1.g_base g2.g_base in
    match to_const diff with
    | Some d ->
      if Int64.equal g1.g_k g2.g_k then begin
        (* per-iteration advance is k * step, not k *)
        let stride = Int64.to_int g1.g_k * Int64.to_int iv.iv_step in
        let d = Int64.to_int d in
        if d = 0 then `No  (* same address, same iteration *)
        else begin
          (* exists m <> 0 with |m*stride + d| < width? *)
          let w = max g1.g_bytes g2.g_bytes in
          let overlaps m = m <> 0 && abs ((m * stride) + d) < w in
          let m0 = if stride = 0 then 0 else -d / stride in
          if not (overlaps (m0 - 1) || overlaps m0 || overlaps (m0 + 1)) then
            `No
          else
            (* a lag exists; bound it by the trip count *)
            match last_iv_value () with
            | Some (_, _, trips) ->
              let lag = if stride = 0 then 0 else abs (-d / stride) in
              if lag <= trips - 1 then `Yes else `No
            | None ->
              (* distance known but range unknown: nearby accesses are
                 the same array walked with offsets (a recurrence a
                 footprint check cannot refute); distant ones are
                 distinct objects whose runtime footprints decide *)
              if abs d < 64 then `Yes else `Range
        end
      end
      else `Yes  (* differing strides over the same base: assume dep *)
    | None ->
      (* different bases: constant footprints or a runtime check *)
      `Range
  in
  (* fixed address [p] (k = 0) against strided walk [s] (k <> 0): does
     some iteration's strided interval reach the point interval? The
     equal-k machinery above does not apply — the initial IV value no
     longer cancels out of the base distance, so place the walk
     explicitly. *)
  let point_conflict p s =
    match to_const (sub p.g_base s.g_base) with
    | Some d ->
      let d = Int64.to_int d in
      let k = Int64.to_int s.g_k in
      let stride = k * Int64.to_int iv.iv_step in
      (* iteration m touches [k*i0 + stride*m, +s bytes); the point is
         [d, +p bytes) *)
      let hits i0 m =
        let x = (k * i0) + (stride * m) in
        x < d + p.g_bytes && x + s.g_bytes > d
      in
      if stride = 0 then
        if abs d < max p.g_bytes s.g_bytes then `Yes else `No
      else begin
        match last_iv_value () with
        | Some (i0, _, trips) ->
          let m0 = (d - (k * i0)) / stride in
          let cand = [ m0 - 1; m0; m0 + 1 ] in
          if List.exists (fun m -> m >= 0 && m < trips && hits i0 m) cand
          then (if trips >= 2 then `Yes else `No)
          else `No
        | None -> begin
            match iv.iv_init_const with
            | Some i0 ->
              let i0 = Int64.to_int i0 in
              let d' = d - (k * i0) in
              if (stride > 0 && d' + p.g_bytes <= 0)
              || (stride < 0 && d' - s.g_bytes >= 0)
              then `No  (* the walk moves away from the point *)
              else if abs d' < 64 then `Yes
              else `Range
            | None -> `Range
          end
      end
    | None -> `Range
  in
  let static_footprint g =
    (* exact address interval over the iteration range, when the base,
       initial value and bound are all constants *)
    match to_const g.g_base, last_iv_value () with
    | Some b, Some (i0, last, trips) ->
      if trips = 0 then Some (0, 0)
      else begin
        let b = Int64.to_int b in
        let k = Int64.to_int g.g_k in
        let e1 = b + (k * i0) and e2 = b + (k * last) in
        Some (min e1 e2, max e1 e2 + g.g_bytes)
      end
    | _ -> None
  in
  List.iter
    (fun g1 ->
       if g1.g_write then
         List.iter
           (fun g2 ->
              if g2 != g1 || not g2.g_write then begin
                if g2 == g1 then ()
                else begin
                  (* disjoint static footprints need no further test *)
                  let disjoint =
                    match static_footprint g1, static_footprint g2 with
                    | Some (lo1, hi1), Some (lo2, hi2) ->
                      hi1 <= lo2 || hi2 <= lo1
                    | _ -> false
                  in
                  if not disjoint then begin
                    match conflict g1 g2 with
                    | `No -> ()
                    | `Yes ->
                      (match static_footprint g1, static_footprint g2 with
                       | Some (lo1, hi1), Some (lo2, hi2)
                         when hi1 <= lo2 || hi2 <= lo1 -> ()
                       | _ -> set_dep "cross-iteration array dependence")
                    | `Range ->
                      pairs_need_check := true;
                      if g1.g_base_rexpr = None || g2.g_base_rexpr = None then
                        check_impossible := true
                  end
                end
              end)
           arrays)
    arrays;
  (* fixed-address (k = 0) global accesses still conflict with strided
     walks over the same object: a store to a[c] feeding reads of
     a[i+d] is a recurrence the scalar machinery must not privatise
     away. A provable overlap is a static dependence; a symbolic base
     distance joins the runtime bounds check as a zero-stride range. *)
  let point_globals =
    List.filter
      (fun g ->
         Int64.equal g.g_k 0L && not g.g_opaque
         && (match Symexec.classify_addr ctx g.g_base with
             | Symexec.Aconst _ -> true
             | Symexec.Astack _ | Symexec.Aother -> false))
      accesses
  in
  let point_ranged = ref [] in
  List.iter
    (fun p ->
       List.iter
         (fun s ->
            if p.g_write || s.g_write then begin
              let disjoint =
                match static_footprint p, static_footprint s with
                | Some (lo1, hi1), Some (lo2, hi2) ->
                  hi1 <= lo2 || hi2 <= lo1
                | _ -> false
              in
              if not disjoint then
                match point_conflict p s with
                | `No -> ()
                | `Yes -> set_dep "fixed-address access overlaps strided walk"
                | `Range when p.g_write ->
                  (* a fixed store into a runtime-checked region joins
                     the check as a zero-stride range; fixed loads with
                     a symbolic distance (constant-pool literals vs
                     heap arrays) stay out, as before *)
                  pairs_need_check := true;
                  if p.g_base_rexpr = None || s.g_base_rexpr = None then
                    check_impossible := true;
                  if not (List.memq p !point_ranged) then
                    point_ranged := p :: !point_ranged
                | `Range -> ()
            end)
         arrays)
    point_globals;
  (* ---- runtime checks (Fig. 4) ---- *)
  let check_ranges =
    if not !pairs_need_check || !check_impossible then []
    else begin
      (* one range per cluster: accesses whose bases differ by a small
         constant walk the same array and share a range (widened by the
         spread); distant or symbolic differences are separate ranges *)
      let groups = ref [] in
      List.iter
        (fun g ->
           let existing =
             List.find_opt
               (fun (base, _, _, _) ->
                  match to_const (sub g.g_base base) with
                  | Some d -> Int64.abs d <= 64L
                  | None -> false)
               !groups
           in
           match existing with
           | Some ((base, k, w, written) as old) ->
             let d = Int64.to_int (Option.get (to_const (sub g.g_base base))) in
             let base', shift = if d < 0 then (g.g_base, -d) else (base, 0) in
             let w' = max (w + shift) (g.g_bytes + max d 0 + shift) in
             groups :=
               (base', k, w', written || g.g_write)
               :: List.filter (fun o -> o != old) !groups
           | None -> groups := (g.g_base, g.g_k, g.g_bytes, g.g_write) :: !groups)
        (arrays @ !point_ranged);
      List.filter_map
        (fun (base, k, w, written) ->
           match rexpr_of_poly lid invariant_mem base, iv.iv_bound_rexpr with
           | Some b, Some bound ->
             (* first address = base + k*init; the span of first bytes
                is k*(last_iv - init), where the last iv value depends
                on the continue condition (strict bounds exclude one
                step) — the runtime widens by the access width *)
             let first =
               Rexpr.Add (b, Rexpr.Mul (Rexpr.Const k, iv.iv_init_rexpr))
             in
             let delta =
               match iv.iv_cond with
               | Cond.Lt | Cond.Ult -> Int64.neg k
               | Cond.Gt | Cond.Ugt -> k
               | Cond.Ne -> Int64.neg (Int64.mul k iv.iv_step)
               | _ -> 0L
             in
             let span =
               Rexpr.Add
                 (Rexpr.Mul (Rexpr.Const k, Rexpr.Sub (bound, iv.iv_init_rexpr)),
                  Rexpr.Const delta)
             in
             Some { ck_base = first; ck_extent = span; ck_width = w;
                    ck_written = written }
           | _ ->
             check_impossible := true;
             None)
        !groups
    end
  in
  (* excalls force the speculative path: they are never statically safe *)
  let excalls = ctx.Symexec.excalls in
  let local_calls = ctx.Symexec.calls in
  if excalls <> [] then set_amb "shared-library call in loop";
  if local_calls <> [] then set_amb "local call with unknown side effects";
  if !pairs_need_check && not !check_impossible then
    set_amb "array bases not provably distinct";
  if !check_impossible then set_amb "alias check not expressible";
  (* highest stack byte touched above the header rsp: sizes the frame
     copy each thread receives *)
  let frame_low =
    List.fold_left
      (fun acc (a : Symexec.access) ->
         match Symexec.classify_addr ctx a.a_addr with
         | Symexec.Astack off -> max acc (off + a.a_bytes)
         | _ -> acc)
      0 ctx.Symexec.accesses
  in
  let cls =
    match !static_dep with
    | Some reason -> Static_dep reason
    | None ->
      if !check_impossible then Ambiguous "alias check not expressible"
      else if !ambiguous <> [] then Ambiguous (String.concat "; " !ambiguous)
      else Static_doall
  in
  (* DOACROSS estimate: size of the carried value chain relative to the
     body; memory-carried recurrences default to a heavy chain *)
  let doacross_frac =
    match cls with
    | Static_dep _ ->
      let rec fexpr_size = function
        | Fatom _ | Funknown _ -> 1
        | Fconvert p -> 1 + AMap.cardinal p.terms
        | Fbinop (_, a, b) -> 1 + fexpr_size a + fexpr_size b
      in
      (* chain length of a carried location = node count of the value
         it feeds into the next iteration *)
      let gp_chain =
        List.fold_left
          (fun acc (loc, h, beh) ->
             match beh with
             | `Carried -> begin
                 match final_of_loc ctx latch loc h with
                 | Some p -> acc + AMap.cardinal p.terms + 1
                 | None -> acc + 3
               end
             | _ -> acc)
          0 behaviours
      in
      let fp_chain =
        List.fold_left
          (fun acc ((loc : loc), _, beh) ->
             match beh, loc with
             | `Carried, Floc r ->
               acc + fexpr_size latch.Symexec.fregs.(Reg.fp_index r)
             | _ -> acc)
          0 f_behaviours
      in
      let carried_size = gp_chain + fp_chain in
      let insns = max 1 (insn_count_of f l) in
      let pct =
        if carried_size = 0 then 60  (* memory recurrence: mostly serial *)
        else max 10 (min 95 (100 * carried_size * 2 / insns))
      in
      Some pct
    | _ -> None
  in
  {
    loop = l;
    func = f;
    cls;
    iv = Some iv;
    reductions =
      List.filter_map
        (fun (loc, op, _) ->
           match loc with
           | Rloc r -> Some (Desc.Lreg r, op)
           | Floc r -> Some (Desc.Lfreg r, op)
           | Sloc off -> Some (Desc.Lstack off, op)
           | Gloc a -> Some (Desc.Labs a, op))
        !reductions;
    privatised = !privatised;
    priv_insns = !priv_insns;
    main_stack_reads = !main_stack_reads;
    iv_insns;
    accesses;
    check_ranges;
    excall_sites = excalls;
    local_call_sites = local_calls;
    modified_gps = List.sort_uniq compare !modified_gps;
    modified_fps = List.sort_uniq compare !modified_fps;
    frame_low;
    insn_count = insn_count_of f l;
    doacross_frac;
  }

let classification_name = function
  | Static_doall -> "static-doall"
  | Static_dep _ -> "static-dep"
  | Ambiguous _ -> "ambiguous"
  | Incompatible _ -> "incompatible"
  | Outer -> "outer"
