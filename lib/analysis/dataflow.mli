(** Generic worklist dataflow framework over recovered VX64 CFGs.

    A pass instantiates {!Make} with a join-semilattice of facts and
    supplies a per-block transfer function; the solver iterates to the
    meet-over-paths fixpoint with a worklist seeded in reverse
    post-order (forward) or post-order (backward). The concrete passes
    built on top — {!Liveness}, {!Reachdefs} and the re-derivation in
    {!Memdep} — are the substrate the schedule verifier's safety checks
    stand on. *)


type direction = Forward | Backward

module type DOMAIN = sig
  type fact

  (** Identity of {!join}: the fact of an unvisited path. *)
  val bottom : fact

  val equal : fact -> fact -> bool

  (** Combine facts where paths meet. Must be monotone: the solver
      terminates only if repeated joins reach a fixpoint. *)
  val join : fact -> fact -> fact
end

module Make (D : DOMAIN) : sig
  type result = {
    entry_fact : (int, D.fact) Hashtbl.t;
        (** fact at block entry, keyed by block start address *)
    exit_fact : (int, D.fact) Hashtbl.t;
        (** fact at block exit *)
  }

  (** Solve to fixpoint over one function.

      [transfer b fact] pushes a fact through block [b]: entry to exit
      for [Forward], exit to entry for [Backward]. [boundary] seeds the
      flow boundary — the function entry block for [Forward], the
      no-successor blocks for [Backward]; it defaults to
      [D.bottom]. *)
  val solve :
    dir:direction ->
    ?boundary:(Cfg.bblock -> D.fact) ->
    transfer:(Cfg.bblock -> D.fact -> D.fact) ->
    Cfg.func ->
    result
end
