(** Per-loop analysis: induction variables, iterator ranges, reductions,
    privatisable scalars, memory-dependence and alias analysis, and the
    loop classification of §II-D. *)

open Janus_vx
module Rexpr = Janus_schedule.Rexpr
module Desc = Janus_schedule.Desc

(** Classification before profiling: [Ambiguous] loops are refined into
    Dynamic DOALL (type C) or Dynamic Dependence (type D) by the
    dependence profiler; [Outer] loops contain inner loops and are
    analysed conservatively. *)
type classification =
  | Static_doall
  | Static_dep of string
  | Ambiguous of string
  | Incompatible of string
  | Outer

(** The loop's iterator as solved from its exit condition (§II-D):
    the canonical continue condition is [(iv cond bound)] where the
    machine compare may test [(iv + bound_adjust)] against the bound
    operand (unrolled loops test a lookahead value). *)
type iv_info = {
  iv_loc : Sympoly.loc;
  iv_step : int64;
  iv_cond : Cond.t;
  iv_init_rexpr : Rexpr.t;          (** read at the preheader *)
  iv_bound_rexpr : Rexpr.t option;  (** canonical bound, if expressible *)
  iv_bound_const : int64 option;
  iv_init_const : int64 option;
  cmp_addr : int;                   (** the governing compare *)
  bound_operand_index : int;
  bound_adjust : int64;
}

(** A memory access summarised as [base + k*iv] (Fig. 4's polynomials). *)
type access_sum = {
  g_insn : int;
  g_write : bool;
  g_bytes : int;
  g_k : int64;                   (** IV coefficient; 0 = scalar *)
  g_base : Sympoly.t;            (** invariant part *)
  g_base_rexpr : Rexpr.t option;
  g_stack : bool;                (** thread-private stack slot *)
  g_opaque : bool;               (** address not expressible *)
}

(** One runtime check range (an array's footprint over the loop). *)
type check_range = {
  ck_base : Rexpr.t;
  ck_extent : Rexpr.t;
  ck_width : int;
  ck_written : bool;
}

type report = {
  loop : Looptree.loop;
  func : Cfg.func;
  cls : classification;
  iv : iv_info option;
  reductions : (Desc.location * Desc.redop) list;
  privatised : Sympoly.loc list;
  priv_insns : (int * Sympoly.loc) list;
  main_stack_reads : int list;
  iv_insns : int list;
      (** insns accessing a memory-resident (stack or global) iterator's
          own slot; empty for register iterators *)
  accesses : access_sum list;
  check_ranges : check_range list;   (** empty = no runtime check *)
  excall_sites : (int * string) list;
  local_call_sites : (int * int) list;
  modified_gps : Reg.gp list;
  modified_fps : Reg.fp list;
  frame_low : int;   (** highest stack byte touched above the header rsp *)
  insn_count : int;
  doacross_frac : int option;
      (** for static-dependence loops with an iterator: estimated
          carried percentage of the body (DOACROSS extension) *)
}

(** Analyse one loop of a recovered function. [fa] supplies preheader
    machine states for iterator range solving. *)
val analyse :
  Cfg.t -> ?fa:Funcanal.t -> Cfg.func -> Looptree.t -> Looptree.loop -> report

val classification_name : classification -> string
