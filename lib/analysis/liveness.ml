(** Backward register-liveness pass over VX64 CFGs. *)

open Janus_vx

(* a fact is a pair of register bitsets: GP (18 bits, hidden registers
   included) and FP (16 bits) *)
module Bits = struct
  type fact = { g : int; f : int }

  let bottom = { g = 0; f = 0 }
  let equal a b = a.g = b.g && a.f = b.f
  let join a b = { g = a.g lor b.g; f = a.f lor b.f }
end

module Solver = Dataflow.Make (Bits)

let gp_bit r = 1 lsl Reg.gp_index r
let fp_bit r = 1 lsl Reg.fp_index r
let gp_mask rs = List.fold_left (fun m r -> m lor gp_bit r) 0 rs
let fp_mask rs = List.fold_left (fun m r -> m lor fp_bit r) 0 rs

(* use/def sets widened at information boundaries: a call site is
   assumed to consume every argument register, a return to expose the
   return values and the callee-saved set to the caller. Kills are
   dropped at calls — the callee's writes are not this function's. *)
let uses_defs (i : Insn.t) =
  let u = gp_mask (Insn.gp_uses i) and d = gp_mask (Insn.gp_defs i) in
  let fu = fp_mask (Insn.fp_uses i) and fd = fp_mask (Insn.fp_defs i) in
  match i with
  | Insn.Call _ ->
    ( u lor gp_mask Reg.arg_regs lor gp_bit Reg.RSP,
      gp_bit Reg.RSP,
      fu lor fp_mask Reg.fp_arg_regs,
      0 )
  | Insn.Ret ->
    ( u lor gp_bit Reg.ret_reg lor gp_mask Reg.callee_saved,
      d,
      fu lor fp_bit Reg.fp_ret_reg,
      fd )
  | Insn.Syscall _ ->
    (u lor gp_mask Reg.arg_regs lor gp_bit Reg.RAX, gp_bit Reg.RAX, fu, fd)
  | _ -> (u, d, fu, fd)

let through_insn (i : Insn.t) (live : Bits.fact) =
  let u, d, fu, fd = uses_defs i in
  { Bits.g = live.Bits.g land lnot d lor u; f = live.Bits.f land lnot fd lor fu }

type t = {
  func : Cfg.func;
  before : (int, Bits.fact) Hashtbl.t;  (* per instruction address *)
}

let compute (f : Cfg.func) =
  let transfer (b : Cfg.bblock) live_out =
    let live = ref live_out in
    for i = Array.length b.Cfg.insns - 1 downto 0 do
      live := through_insn b.Cfg.insns.(i).Cfg.insn !live
    done;
    !live
  in
  let r = Solver.solve ~dir:Dataflow.Backward ~transfer f in
  (* per-instruction facts by a second backward walk of each block *)
  let before = Hashtbl.create 64 in
  List.iter
    (fun (b : Cfg.bblock) ->
       let live =
         ref
           (match Hashtbl.find_opt r.Solver.exit_fact b.Cfg.baddr with
            | Some x -> x
            | None -> Bits.bottom)
       in
       for i = Array.length b.Cfg.insns - 1 downto 0 do
         let ii = b.Cfg.insns.(i) in
         live := through_insn ii.Cfg.insn !live;
         Hashtbl.replace before ii.Cfg.addr !live
       done)
    f.Cfg.blocks;
  { func = f; before }

let all_live = { Bits.g = -1; f = -1 }

let fact_before t addr =
  match Hashtbl.find_opt t.before addr with
  | Some x -> x
  | None -> all_live (* unknown address: assume everything live *)

let gp_live_before t ~addr r = (fact_before t addr).Bits.g land gp_bit r <> 0
let fp_live_before t ~addr r = (fact_before t addr).Bits.f land fp_bit r <> 0

let gps_live_before t ~addr =
  let x = (fact_before t addr).Bits.g in
  List.filter (fun r -> x land gp_bit r <> 0) Reg.all_gp

let fps_live_before t ~addr =
  let x = (fact_before t addr).Bits.f in
  List.filter (fun r -> x land fp_bit r <> 0) Reg.all_fp

let live_in_gps t baddr =
  match Hashtbl.find_opt t.func.Cfg.block_at baddr with
  | Some b when Array.length b.Cfg.insns > 0 ->
    gps_live_before t ~addr:b.Cfg.insns.(0).Cfg.addr
  | _ -> Reg.all_gp
