(** Rewrite-schedule generation (Fig. 2(a)): encode the analysis results
    as rewrite rules and descriptors for the DBM to interpret. *)

open Janus_vx
module Rule = Janus_schedule.Rule
module Schedule = Janus_schedule.Schedule
module Desc = Janus_schedule.Desc
module Rexpr = Janus_schedule.Rexpr

(* the last instruction of a block (rules attached there trigger with
   the block's final state, before control transfers) *)
let terminator_addr (f : Cfg.func) baddr =
  match Hashtbl.find_opt f.block_at baddr with
  | Some b ->
    let last = b.Cfg.insns.(Array.length b.Cfg.insns - 1) in
    Some last.Cfg.addr
  | None -> None

let distinct_exit_targets (l : Looptree.loop) =
  List.sort_uniq compare (List.map snd l.Looptree.exits)

(* TLS slot layout per loop: slot 0 is reserved for the per-thread
   bound (written by the runtime, read by the rewritten compare);
   privatised scalars occupy slots from 1. *)
(* syntactic bound expression from the compare instruction operand *)
let syntactic_bound (cfgt : Cfg.t) (iv : Loopanal.iv_info) =
  match Cfg.fetch cfgt iv.Loopanal.cmp_addr with
  | Some (Insn.Cmp (a, b), _) ->
    let operand = if iv.Loopanal.bound_operand_index = 0 then a else b in
    let of_mem (m : Operand.mem) =
      let base =
        match m.Operand.base with
        | Some r -> Some (Rexpr.Reg r)
        | None -> None
      in
      let index =
        match m.Operand.index with
        | Some r ->
          Some (Rexpr.Mul (Rexpr.Const (Int64.of_int m.Operand.scale), Rexpr.Reg r))
        | None -> None
      in
      let acc = Rexpr.Const (Int64.of_int m.Operand.disp) in
      let acc = match base with Some b -> Rexpr.Add (acc, b) | None -> acc in
      let acc = match index with Some i -> Rexpr.Add (acc, i) | None -> acc in
      Rexpr.Load acc
    in
    (match operand with
     | Operand.Reg r -> Some (Rexpr.Reg r)
     | Operand.Imm v -> Some (Rexpr.Const v)
     | Operand.Mem m -> Some (of_mem m))
  | _ -> None

(** Build the parallelisation loop descriptor for a selected loop. *)
let loop_desc (cfgt : Cfg.t) (r : Loopanal.report) ~policy : Desc.loop_desc option =
  match r.Loopanal.iv, r.Loopanal.loop.Looptree.preheader with
  | Some iv, Some preheader ->
    let bound =
      match iv.Loopanal.iv_bound_rexpr with
      | Some e -> Some e
      | None -> syntactic_bound cfgt iv
    in
    (match bound with
     | None -> None
     | Some iv_bound ->
       let loc_of = function
         | Sympoly.Rloc r -> Desc.Lreg r
         | Sympoly.Floc r -> Desc.Lfreg r
         | Sympoly.Sloc off -> Desc.Lstack off
         | Sympoly.Gloc a -> Desc.Labs a
       in
       let privatised =
         List.mapi
           (fun i loc ->
              let e =
                match loc with
                | Sympoly.Sloc off ->
                  Rexpr.Add (Rexpr.Reg Reg.RSP, Rexpr.Const (Int64.of_int off))
                | Sympoly.Gloc a -> Rexpr.Const (Int64.of_int a)
                | Sympoly.Rloc _ | Sympoly.Floc _ -> Rexpr.Const 0L
              in
              (e, i + 1))
           r.Loopanal.privatised
       in
       Some
         {
           Desc.loop_id = r.Loopanal.loop.Looptree.lid;
           header_addr = r.Loopanal.loop.Looptree.header;
           preheader_addr = preheader;
           exit_addrs = distinct_exit_targets r.Loopanal.loop;
           latch_addr =
             (match r.Loopanal.loop.Looptree.latches with
              | l :: _ -> l
              | [] -> r.Loopanal.loop.Looptree.header);
           iv = loc_of iv.Loopanal.iv_loc;
           iv_step = iv.Loopanal.iv_step;
           iv_cond = iv.Loopanal.iv_cond;
           iv_init = iv.Loopanal.iv_init_rexpr;
           iv_bound;
           iv_bound_adjust = iv.Loopanal.bound_adjust;
           policy;
           reductions = r.Loopanal.reductions;
           privatised;
           live_out_gps = r.Loopanal.modified_gps;
           live_out_fps = r.Loopanal.modified_fps;
           frame_copy_bytes = max 128 (r.Loopanal.frame_low + 64);
         })
  | _ -> None

(** Emit parallelisation rules for one selected loop into [b]. Returns
    false if the loop cannot be encoded. *)
let emit_parallel_rules (cfgt : Cfg.t) b (r : Loopanal.report) ~policy =
  let _f = r.Loopanal.func in
  let l = r.Loopanal.loop in
  let lid = Int64.of_int l.Looptree.lid in
  match r.Loopanal.loop.Looptree.preheader, r.Loopanal.iv with
  | Some preheader, Some iv -> begin
      match loop_desc cfgt r ~policy with
      | None -> false
      | Some desc ->
        ignore preheader;
        let desc_off = Schedule.add_loop_desc b desc in
        (* LOOP_INIT triggers at the header: the first instruction the
           loop executes, after the preheader has fully run. On the
           sequential-fallback path the runtime gates re-firing. *)
        (let init_addr = l.Looptree.header in
           (* bounds check first (same-address rules run in order) *)
           if r.Loopanal.check_ranges <> [] then begin
             let cdesc =
               {
                 Desc.check_loop_id = l.Looptree.lid;
                 ranges =
                   List.map
                     (fun (c : Loopanal.check_range) ->
                        { Desc.base = c.Loopanal.ck_base;
                          extent = c.Loopanal.ck_extent;
                          width = c.Loopanal.ck_width;
                          written = c.Loopanal.ck_written })
                     r.Loopanal.check_ranges;
               }
             in
             let coff = Schedule.add_check_desc b cdesc in
             Schedule.add_rule b
               (Rule.make ~addr:init_addr ~data:(Int64.of_int coff) ~aux:lid
                  Rule.MEM_BOUNDS_CHECK)
           end;
           Schedule.add_rule b
             (Rule.make ~addr:init_addr ~data:(Int64.of_int desc_off) ~aux:lid
                Rule.LOOP_INIT);
           (* spill registers clobbered by injected code *)
           let mask =
             List.fold_left
               (fun acc r -> acc lor (1 lsl Reg.gp_index r))
               0 r.Loopanal.modified_gps
           in
           Schedule.add_rule b
             (Rule.make ~addr:init_addr ~data:(Int64.of_int mask) ~aux:lid
                Rule.MEM_SPILL_REG));
        (* thread scheduling at the header, yield + finish at exits *)
        Schedule.add_rule b
          (Rule.make ~addr:l.Looptree.header ~data:lid Rule.THREAD_SCHEDULE);
        List.iter
          (fun target ->
             Schedule.add_rule b
               (Rule.make ~addr:target ~data:lid ~aux:lid Rule.THREAD_YIELD);
             Schedule.add_rule b
               (Rule.make ~addr:target ~data:(Int64.of_int desc_off) ~aux:lid
                  Rule.LOOP_FINISH);
             Schedule.add_rule b
               (Rule.make ~addr:target ~data:0L ~aux:lid Rule.MEM_RECOVER_REG))
          (distinct_exit_targets l);
        (* per-thread bound update at the governing compare *)
        Schedule.add_rule b
          (Rule.make ~addr:iv.Loopanal.cmp_addr
             ~data:(Int64.of_int iv.Loopanal.bound_operand_index)
             ~aux:iv.Loopanal.bound_adjust Rule.LOOP_UPDATE_BOUND);
        (* privatisation *)
        List.iter
          (fun (insn_addr, loc) ->
             let slot =
               let rec find i = function
                 | [] -> 0
                 | l' :: tl ->
                   if Sympoly.loc_equal l' loc then i + 1 else find (i + 1) tl
               in
               find 0 r.Loopanal.privatised
             in
             if slot > 0 then
               Schedule.add_rule b
                 (Rule.make ~addr:insn_addr ~data:(Int64.of_int slot) ~aux:lid
                    Rule.MEM_PRIVATISE))
          r.Loopanal.priv_insns;
        (* read-only stack accesses can target the shared main stack *)
        (* ... except the governing compare, whose memory operand is
           being rewritten by LOOP_UPDATE_BOUND *)
        List.iter
          (fun insn_addr ->
             if insn_addr <> iv.Loopanal.cmp_addr then
               Schedule.add_rule b
                 (Rule.make ~addr:insn_addr ~data:0L ~aux:lid Rule.MEM_MAIN_STACK))
          (List.sort_uniq compare r.Loopanal.main_stack_reads);
        (* speculation around dynamically discovered code *)
        List.iter
          (fun (call_addr, _) ->
             Schedule.add_rule b
               (Rule.make ~addr:call_addr ~data:lid Rule.TX_START);
             match Cfg.fetch cfgt call_addr with
             | Some (_, len) ->
               Schedule.add_rule b
                 (Rule.make ~addr:(call_addr + len) ~data:lid Rule.TX_FINISH)
             | None -> ())
          (r.Loopanal.excall_sites
           @ List.map (fun (a, t) -> (a, string_of_int t)) r.Loopanal.local_call_sites);
        true
    end
  | _ -> false

(** Coverage-profiling schedule: instrument every feasible loop. *)
let coverage_schedule (cfgt : Cfg.t) (reports : Loopanal.report list) =
  let b = Schedule.builder Schedule.Profiling in
  List.iter
    (fun (r : Loopanal.report) ->
       match r.Loopanal.cls with
       | Loopanal.Incompatible _ -> ()
       | _ ->
         let l = r.Loopanal.loop in
         let lid = Int64.of_int l.Looptree.lid in
         (match l.Looptree.preheader with
          | Some p ->
            (match terminator_addr r.Loopanal.func p with
             | Some a ->
               Schedule.add_rule b (Rule.make ~addr:a ~data:lid Rule.PROF_LOOP_START)
             | None -> ())
          | None -> ());
         Schedule.add_rule b
           (Rule.make ~addr:l.Looptree.header ~data:lid Rule.PROF_LOOP_ITER);
         List.iter
           (fun target ->
              Schedule.add_rule b
                (Rule.make ~addr:target ~data:lid Rule.PROF_LOOP_FINISH))
           (distinct_exit_targets l);
         List.iter
           (fun (call_addr, _) ->
              Schedule.add_rule b
                (Rule.make ~addr:call_addr ~data:lid Rule.PROF_EXCALL_START);
              match Cfg.fetch cfgt call_addr with
              | Some (_, len) ->
                Schedule.add_rule b
                  (Rule.make ~addr:(call_addr + len) ~data:lid
                     Rule.PROF_EXCALL_FINISH)
              | None -> ())
           r.Loopanal.excall_sites)
    reports;
  Schedule.build b

(** Dependence-profiling schedule: watch the memory accesses of every
    ambiguous loop. *)
let dependence_schedule (reports : Loopanal.report list) =
  let b = Schedule.builder Schedule.Profiling in
  List.iter
    (fun (r : Loopanal.report) ->
       match r.Loopanal.cls with
       | Loopanal.Ambiguous _ ->
         let l = r.Loopanal.loop in
         let lid = Int64.of_int l.Looptree.lid in
         (match l.Looptree.preheader with
          | Some p ->
            (match terminator_addr r.Loopanal.func p with
             | Some a ->
               Schedule.add_rule b (Rule.make ~addr:a ~data:lid Rule.PROF_LOOP_START)
             | None -> ())
          | None -> ());
         Schedule.add_rule b
           (Rule.make ~addr:l.Looptree.header ~data:lid Rule.PROF_LOOP_ITER);
         List.iter
           (fun target ->
              Schedule.add_rule b
                (Rule.make ~addr:target ~data:lid Rule.PROF_LOOP_FINISH))
           (distinct_exit_targets l);
         (* instrument exactly the accesses the static pass could not
            disambiguate — not every load and store (§II-C) *)
         List.iter
           (fun (g : Loopanal.access_sum) ->
              Schedule.add_rule b
                (Rule.make ~addr:g.Loopanal.g_insn
                   ~data:lid
                   ~aux:(if g.Loopanal.g_write then 1L else 0L)
                   Rule.PROF_MEM_ACCESS))
           (List.filter
              (fun (g : Loopanal.access_sum) ->
                 (* instrument only statically unresolved non-stack
                    accesses: spill slots are thread-private at runtime
                    and their reuse is not a loop dependence *)
                 (not g.Loopanal.g_stack)
                 && (g.Loopanal.g_opaque
                     ||
                     match Sympoly.to_const g.Loopanal.g_base with
                     | Some _ -> false  (* statically resolved *)
                     | None -> true))
              r.Loopanal.accesses)
       | _ -> ())
    reports;
  Schedule.build b

(** {2 Loop fission (extension)}

    A Static-Dependence loop whose dependence graph splits into a
    carried-free part and a carried part (Aubert et al.'s fission
    condition, computed by {!Depgraph.plan}) is distributed: a
    LOOP_FISSION rule at the header carries a fission descriptor
    naming the sub-loop instruction groups, and the runtime executes
    the groups as consecutive full-range loop instances — the DOALL
    product in parallel, the sequential residue single-threaded. The
    supporting rules (spill/recover, scheduling, bound update,
    privatisation, main-stack reads) are those of an ordinary DOALL
    loop; speculation and bounds-check rules are never needed because
    the plan requires every access be statically resolved. *)

let emit_fission_rules (cfgt : Cfg.t) b (r : Loopanal.report)
    (p : Depgraph.plan) =
  let l = r.Loopanal.loop in
  let lid = Int64.of_int l.Looptree.lid in
  match l.Looptree.preheader, r.Loopanal.iv with
  | Some _, Some iv -> begin
      match loop_desc cfgt r ~policy:Desc.Chunked with
      | None -> false
      | Some desc ->
        let fdesc =
          {
            Desc.fd_loop = desc;
            fd_infra = p.Depgraph.pl_infra;
            fd_groups =
              [
                { Desc.fg_insns = p.Depgraph.pl_product; fg_parallel = true };
                { Desc.fg_insns = p.Depgraph.pl_residue; fg_parallel = false };
              ];
          }
        in
        (* a fission descriptor begins with its loop descriptor, so its
           offset doubles as a loop-descriptor offset for LOOP_FINISH *)
        let fd_off = Schedule.add_fission_desc b fdesc in
        let init_addr = l.Looptree.header in
        Schedule.add_rule b
          (Rule.make ~addr:init_addr ~data:(Int64.of_int fd_off) ~aux:lid
             Rule.LOOP_FISSION);
        let mask =
          List.fold_left
            (fun acc r -> acc lor (1 lsl Reg.gp_index r))
            0 r.Loopanal.modified_gps
        in
        Schedule.add_rule b
          (Rule.make ~addr:init_addr ~data:(Int64.of_int mask) ~aux:lid
             Rule.MEM_SPILL_REG);
        Schedule.add_rule b
          (Rule.make ~addr:l.Looptree.header ~data:lid Rule.THREAD_SCHEDULE);
        List.iter
          (fun target ->
             Schedule.add_rule b
               (Rule.make ~addr:target ~data:lid ~aux:lid Rule.THREAD_YIELD);
             Schedule.add_rule b
               (Rule.make ~addr:target ~data:(Int64.of_int fd_off) ~aux:lid
                  Rule.LOOP_FINISH);
             Schedule.add_rule b
               (Rule.make ~addr:target ~data:0L ~aux:lid Rule.MEM_RECOVER_REG))
          (distinct_exit_targets l);
        Schedule.add_rule b
          (Rule.make ~addr:iv.Loopanal.cmp_addr
             ~data:(Int64.of_int iv.Loopanal.bound_operand_index)
             ~aux:iv.Loopanal.bound_adjust Rule.LOOP_UPDATE_BOUND);
        List.iter
          (fun (insn_addr, loc) ->
             let slot =
               let rec find i = function
                 | [] -> 0
                 | l' :: tl ->
                   if Sympoly.loc_equal l' loc then i + 1 else find (i + 1) tl
               in
               find 0 r.Loopanal.privatised
             in
             if slot > 0 then
               Schedule.add_rule b
                 (Rule.make ~addr:insn_addr ~data:(Int64.of_int slot) ~aux:lid
                    Rule.MEM_PRIVATISE))
          r.Loopanal.priv_insns;
        List.iter
          (fun insn_addr ->
             if insn_addr <> iv.Loopanal.cmp_addr then
               Schedule.add_rule b
                 (Rule.make ~addr:insn_addr ~data:0L ~aux:lid
                    Rule.MEM_MAIN_STACK))
          (List.sort_uniq compare r.Loopanal.main_stack_reads);
        true
    end
  | _ -> false

(** {2 Software prefetching (extension)}

    The paper's conclusion names prefetching as another optimisation
    expressible in the same rule format. A MEM_PREFETCH rule on a
    strided access makes the DBM insert a prefetch hint
    [prefetch_distance] bytes ahead in the stride direction, hiding the
    cold-line latency of streaming loops. *)

let prefetch_distance = 512

let emit_prefetch_rules b (r : Loopanal.report) =
  let candidates =
    List.filter_map
      (fun (g : Loopanal.access_sum) ->
         (* strided, statically understood, not a private stack slot;
            huge strides jump lines unpredictably and are skipped *)
         if (not g.Loopanal.g_stack)
            && (not g.Loopanal.g_opaque)
            && (not (Int64.equal g.Loopanal.g_k 0L))
            && Int64.compare (Int64.abs g.Loopanal.g_k) 64L <= 0
         then
           let dist =
             if Int64.compare g.Loopanal.g_k 0L > 0 then prefetch_distance
             else -prefetch_distance
           in
           Some (g.Loopanal.g_insn, dist)
         else None)
      r.Loopanal.accesses
  in
  List.iter
    (fun (addr, dist) ->
       Schedule.add_rule b
         (Rule.make ~addr ~data:(Int64.of_int dist)
            ~aux:(Int64.of_int r.Loopanal.loop.Looptree.lid)
            Rule.MEM_PREFETCH))
    (List.sort_uniq compare candidates)

(** Parallelisation schedule for a set of selected loops. *)
let parallel_schedule ?(prefetch = false) ?(fission = false) (cfgt : Cfg.t)
    (selected : (Loopanal.report * Desc.policy) list) =
  let b = Schedule.builder Schedule.Parallelisation in
  let ok =
    List.filter
      (fun (r, policy) ->
         let encoded =
           match r.Loopanal.cls with
           | Loopanal.Static_dep _ when fission ->
             (match Depgraph.plan r with
              | Some p -> emit_fission_rules cfgt b r p
              | None -> false)
           | _ -> emit_parallel_rules cfgt b r ~policy
         in
         if encoded && prefetch then emit_prefetch_rules b r;
         encoded)
      selected
  in
  (Schedule.build b, List.map fst ok)
