(** Rewrite-schedule generation (Fig. 2(a)): encode analysis results as
    rewrite rules and descriptors for the DBM to interpret. *)

module Rule = Janus_schedule.Rule
module Schedule = Janus_schedule.Schedule
module Desc = Janus_schedule.Desc
module Rexpr = Janus_schedule.Rexpr

(** Build the loop descriptor for a selected loop ([None] when the loop
    cannot be encoded — e.g. no expressible bound). *)
val loop_desc :
  Cfg.t -> Loopanal.report -> policy:Desc.policy -> Desc.loop_desc option

(** Coverage-profiling schedule: PROF_LOOP_START/ITER/FINISH for every
    feasible loop, EXCALL probes around shared-library calls (§II-C). *)
val coverage_schedule : Cfg.t -> Loopanal.report list -> Schedule.t

(** Dependence-profiling schedule: PROF_MEM_ACCESS on exactly the
    statically unresolved, non-stack accesses of ambiguous loops. *)
val dependence_schedule : Loopanal.report list -> Schedule.t

(** Distance in bytes a MEM_PREFETCH hint runs ahead of its access. *)
val prefetch_distance : int

(** Parallelisation schedule for the selected loops; also returns the
    subset that could actually be encoded. With [prefetch], each
    encoded loop's strided accesses additionally get MEM_PREFETCH
    rules (software-prefetching extension; pair with
    [Machine.model_cache] so the hidden latency is modelled). With
    [fission], a selected Static-Dependence loop is encoded as a
    LOOP_FISSION schedule when {!Depgraph.plan} finds a distribution
    into a DOALL product plus a sequential residue (loop-fission
    extension); without it such loops are dropped as unencodable. *)
val parallel_schedule :
  ?prefetch:bool ->
  ?fission:bool ->
  Cfg.t ->
  (Loopanal.report * Desc.policy) list ->
  Schedule.t * Loopanal.report list
