(** Work-stealing domain pool with deterministic result collection.

    One {!map} batch at a time: tasks are dealt round-robin into
    per-worker queues; each worker drains its own queue and then steals
    from the others, so skewed task durations cannot idle a domain
    while work remains. Results land in a per-index slot, so collection
    order is submission order no matter which domain ran what; an
    exception is re-raised deterministically from the earliest failing
    index once the whole batch has settled. A {!map} that re-enters the
    pool from inside one of its own tasks runs inline on the calling
    domain instead of corrupting the in-flight batch. *)

module Obs = Janus_obs.Obs

type batch = {
  deques : (unit -> unit) Queue.t array;  (* per-worker task queues *)
  locks : Mutex.t array;
  remaining : int Atomic.t;               (* tasks not yet finished *)
  steals : int Atomic.t;
}

type stats = { tasks : int; steals : int; batches : int }

type t = {
  jobs : int;
  mu : Mutex.t;
  cond : Condition.t;       (* wakes workers: new batch or shutdown *)
  done_cond : Condition.t;  (* wakes the caller: batch finished *)
  active : bool Atomic.t;   (* a parallel batch is in flight *)
  mutable gen : int;        (* batch generation, guarded by [mu] *)
  mutable batch : batch option;
  mutable stop : bool;
  mutable tasks : int;      (* lifetime counters, guarded by [mu] *)
  mutable stolen : int;
  mutable batches : int;
  mutable workers : unit Domain.t list;
  mutable joined : bool;
}

let jobs t = t.jobs

let try_pop b w =
  Mutex.lock b.locks.(w);
  let r =
    if Queue.is_empty b.deques.(w) then None else Some (Queue.pop b.deques.(w))
  in
  Mutex.unlock b.locks.(w);
  r

(* Run tasks of [b] on worker [wid] until no queue holds any: own queue
   first, then steal, scanning from the next worker round-robin so
   thieves spread over victims. Returning does not mean the batch is
   done — stolen tasks may still be running elsewhere; [b.remaining]
   tracks true completion. *)
let work t (b : batch) wid =
  let nw = Array.length b.deques in
  let run_task task =
    task ();
    if Atomic.fetch_and_add b.remaining (-1) = 1 then begin
      Mutex.lock t.mu;
      Condition.broadcast t.done_cond;
      Mutex.unlock t.mu
    end
  in
  let rec loop () =
    match try_pop b wid with
    | Some task -> run_task task; loop ()
    | None ->
      let rec scan k =
        if k >= nw then None
        else
          match try_pop b ((wid + k) mod nw) with
          | Some task -> Atomic.incr b.steals; Some task
          | None -> scan (k + 1)
      in
      (match scan 1 with
       | Some task -> run_task task; loop ()
       | None -> ())
  in
  loop ()

let worker_loop t wid =
  let my_gen = ref 0 in
  let rec loop () =
    Mutex.lock t.mu;
    while t.gen = !my_gen && not t.stop do
      Condition.wait t.cond t.mu
    done;
    if t.stop then Mutex.unlock t.mu
    else begin
      my_gen := t.gen;
      let b = t.batch in
      Mutex.unlock t.mu;
      (match b with Some b -> work t b wid | None -> ());
      loop ()
    end
  in
  loop ()

let create ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    { jobs; mu = Mutex.create (); cond = Condition.create ();
      done_cond = Condition.create (); active = Atomic.make false;
      gen = 0; batch = None; stop = false;
      tasks = 0; stolen = 0; batches = 0; workers = []; joined = false }
  in
  t.workers <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let count_batch t ~tasks =
  Mutex.lock t.mu;
  t.tasks <- t.tasks + tasks;
  t.batches <- t.batches + 1;
  Mutex.unlock t.mu

(* The inline path, shared by jobs<=1 pools, singleton batches and
   re-entrant calls. It mirrors the parallel path exactly: every task
   runs (a failure abandons nothing), the lifetime counters advance by
   one batch of [n] tasks whether or not a task raised, and the
   earliest failing index's exception is re-raised once all tasks have
   settled — so [stats] cannot tell the two paths apart. *)
let map_inline t f xs =
  let first_exn = ref None in
  let n = ref 0 in
  let rs =
    List.map
      (fun x ->
         incr n;
         match f x with
         | r -> Some r
         | exception e ->
           if Option.is_none !first_exn then first_exn := Some e;
           None)
      xs
  in
  count_batch t ~tasks:!n;
  match !first_exn with
  | Some e -> raise e
  | None ->
    List.map (function Some r -> r | None -> assert false) rs

let map_parallel t f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let results = Array.make n None in
  let exns = Array.make n None in
  let b =
    {
      deques = Array.init t.jobs (fun _ -> Queue.create ());
      locks = Array.init t.jobs (fun _ -> Mutex.create ());
      remaining = Atomic.make n;
      steals = Atomic.make 0;
    }
  in
  Array.iteri
    (fun i x ->
       let cell () =
         match f x with
         | r -> results.(i) <- Some r
         | exception e -> exns.(i) <- Some e
       in
       Queue.push cell b.deques.(i mod t.jobs))
    arr;
  Mutex.lock t.mu;
  t.batch <- Some b;
  t.gen <- t.gen + 1;
  Condition.broadcast t.cond;
  Mutex.unlock t.mu;
  (* the calling domain is worker 0 *)
  work t b 0;
  Mutex.lock t.mu;
  while Atomic.get b.remaining > 0 do
    Condition.wait t.done_cond t.mu
  done;
  t.batch <- None;
  t.tasks <- t.tasks + n;
  t.stolen <- t.stolen + Atomic.get b.steals;
  t.batches <- t.batches + 1;
  Mutex.unlock t.mu;
  Array.iter (function Some e -> raise e | None -> ()) exns;
  Array.to_list
    (Array.map
       (function
         | Some r -> r
         | None -> assert false (* no exception, so every slot is set *))
       results)

let map t f xs =
  match xs with
  | [] -> []
  | [ _ ] -> map_inline t f xs
  | xs when t.jobs <= 1 -> map_inline t f xs
  | xs ->
    (* One parallel batch at a time: a map called from inside a task of
       the in-flight batch (or from another domain racing this pool)
       must not overwrite [t.batch]/[t.gen] mid-flight — late-waking
       workers would join the wrong batch. Such calls run inline on the
       calling domain instead; results and counters are identical. *)
    if Atomic.compare_and_set t.active false true then
      Fun.protect
        ~finally:(fun () -> Atomic.set t.active false)
        (fun () -> map_parallel t f xs)
    else map_inline t f xs

let stats t =
  Mutex.lock t.mu;
  let s = { tasks = t.tasks; steals = t.stolen; batches = t.batches } in
  Mutex.unlock t.mu;
  s

let publish_metrics t obs =
  let s = stats t in
  Obs.set obs "pool.jobs" t.jobs;
  Obs.set obs "pool.tasks" s.tasks;
  Obs.set obs "pool.steals" s.steals;
  Obs.set obs "pool.batches" s.batches

let shutdown t =
  let ws =
    Mutex.lock t.mu;
    if t.joined then begin Mutex.unlock t.mu; [] end
    else begin
      t.joined <- true;
      t.stop <- true;
      Condition.broadcast t.cond;
      Mutex.unlock t.mu;
      t.workers
    end
  in
  List.iter Domain.join ws

let with_pool ~jobs f =
  let t = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
