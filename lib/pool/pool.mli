(** A reusable work-stealing pool of OCaml 5 domains with
    {e deterministic}, submission-ordered result collection.

    The pool exists to fan independent pipeline instances (one
    benchmark, one configuration) out over hardware cores without
    perturbing results: {!map} always returns results in submission
    order, and a task's exception is re-raised from the {e earliest}
    failing submission index, so a run at [jobs = N] is observationally
    identical to [jobs = 1] whenever the tasks themselves are
    independent. [jobs = 1] executes inline on the calling domain — no
    domains are spawned and no scheduling is involved at all.

    Tasks are distributed round-robin over per-worker deques; an idle
    worker steals from the busiest other deque, so adversarial task
    durations (one long task submitted first, or last) still keep every
    domain busy. The calling domain participates as worker 0, so a pool
    with [jobs = n] uses exactly [n] domains including the caller.

    A pool is reusable across any number of {!map} batches and must be
    {!shutdown} when done (worker domains otherwise keep the process
    alive). One parallel {!map} batch runs at a time: a re-entrant call
    — a task of an in-flight batch calling {!map} on the same pool, as
    sharded analysis nested under a pooled evaluation row does — is
    detected and runs inline on the calling domain, with identical
    results and counters. *)

type t

(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs >= 1];
    values above {!Domain.recommended_domain_count} are allowed but
    oversubscribe). *)
val create : jobs:int -> unit -> t

(** The pool's parallelism degree (the [jobs] it was created with). *)
val jobs : t -> int

(** [map t f xs] applies [f] to every element of [xs], in parallel on
    up to [jobs t] domains, and returns the results in submission
    order. If any task raised, the exception of the earliest failing
    index is re-raised after all tasks have settled (no task is
    abandoned mid-flight, so the pool stays reusable). A call made
    while a batch is already in flight on this pool (re-entrance from a
    task, or a racing domain) runs inline on the calling domain with
    the same semantics. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** Lifetime counters: tasks executed, tasks stolen from another
    worker's deque, and {!map} batches dispatched. The inline paths
    ([jobs = 1], singleton batches, re-entrant calls) advance [tasks]
    and [batches] exactly like the parallel path — including when a
    task raises — so the counters are path-independent; inline steals
    are 0. An empty [map] is not a batch. *)
type stats = { tasks : int; steals : int; batches : int }

val stats : t -> stats

(** Publish the pool's counters into a metrics registry as
    [pool.jobs], [pool.tasks], [pool.steals] and [pool.batches]. *)
val publish_metrics : t -> Janus_obs.Obs.t -> unit

(** Join the worker domains. The pool must not be used afterwards;
    idempotent. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f pool] and guarantees {!shutdown}, even
    on exceptions. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a
