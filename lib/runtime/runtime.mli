(** The Janus parallel runtime (§II-E): virtual hardware threads with
    private stacks, TLS and code caches; chunked and round-robin
    iteration scheduling; runtime array-bounds checks with sequential
    fallback; software-transactional execution of dynamically
    discovered code.

    Timing uses the deterministic virtual-multicore model: a parallel
    invocation costs [init + max(worker cycles) + finish] on the main
    thread's clock. Workers really execute their iterations against
    shared guest memory, so results are bit-identical to sequential
    execution. *)

open Janus_vm
module Rule = Janus_schedule.Rule
module Desc = Janus_schedule.Desc
module Rexpr = Janus_schedule.Rexpr
module Schedule = Janus_schedule.Schedule
module Dbm = Janus_dbm.Dbm
module Obs = Janus_obs.Obs
module Adapt = Janus_adapt.Adapt

type config = {
  threads : int;
  force_policy : Desc.policy option;  (** override descriptors (ablation) *)
  stm_access_limit : int;  (** speculative accesses before flagging overflow *)
  stm_everywhere : bool;
      (** ablation: buffer every worker access transactionally instead
          of speculating only on discovered code (§II-E2) *)
  fuel : int;
      (** per-chunk worker instruction budget; exhausting it raises
          {!Worker_out_of_fuel} instead of spinning forever *)
}

val default_config : config

type t = {
  dbm : Dbm.t;
  config : config;
  main_cache : Dbm.cache;
  worker_caches : Dbm.cache array;
  loop_sequential : (int, bool) Hashtbl.t;
      (** loop id -> this invocation's check failed: run serially *)
  loop_in_seq : (int, bool) Hashtbl.t;
      (** loop id -> currently inside a sequential-fallback invocation *)
  loop_invocations : (int, int) Hashtbl.t;
  fission_caches : (int * int, Dbm.cache array) Hashtbl.t;
      (** (loop id, phase) -> worker caches whose skip filter elides
          the other fission sub-loops' instructions; built on first
          use, then reused across invocations *)
  mutable fission_phases : int;
      (** fission sub-loop instances executed; published as
          [rt.fission_phases] *)
  mutable current_loop : int;  (** loop id the workers are executing *)
  skip_tx : (int * int, unit) Hashtbl.t;
      (** (worker, call addr) pairs re-executing non-speculatively
          after an abort; cleared at every LOOP_INIT so stale entries
          never suppress speculation in a later invocation *)
  mutable stm_overflows : int;
  adapt : Adapt.t option;
      (** online adaptive governor; [None] leaves every decision to
          the static schedule, bit-identical to a governor-free build *)
  gov_seq : (int, int) Hashtbl.t;
      (** loop id -> main cycles when a governor-sequential (or
          sampling) invocation began; consumed at LOOP_FINISH *)
  inv_checks : (int, int * int) Hashtbl.t;
      (** loop id -> (check evaluations, check cycles) of the current
          invocation; consumed and cleared at every LOOP_INIT so stale
          counts never bleed into a later invocation *)
  mutable max_inv_checks : int;
      (** most check evaluations ever attributed to one invocation;
          published as [rt.max_inv_checks] — above 1 means the
          per-invocation stats leaked *)
  mutable last_sum_cycles : int;
      (** summed worker cycles of the most recent parallel invocation *)
}

(** Create a runtime over a DBM, allocating per-thread stack and TLS
    regions. Call {!install} to route the DBM's events through it.
    [adapt] hands invocation decisions for governed loops to an online
    governor (see {!Janus_adapt.Adapt}); loops the governor does not
    know about behave exactly as without it. *)
val create : ?config:config -> ?adapt:Adapt.t -> Dbm.t -> t

(** The governor passed at creation, if any. *)
val governor : t -> Adapt.t option

(** Install this runtime as the DBM's event handler. *)
val install : t -> unit

(** An {!Rexpr.env} reading the given machine context. *)
val rexpr_env : Machine.t -> Rexpr.env

(** {1 Iteration-space arithmetic (exposed for property tests)} *)

(** Number of iterations of [iv = init; while (iv cond bound); iv += step]. *)
val trip_count :
  init:int64 -> bound:int64 -> step:int64 -> cond:Janus_vx.Cond.t -> int

(** The TLS bound-slot value making the rewritten compare exit exactly
    at [end_iv] (exclusive); the compare tests [(iv + adjust) cond slot]. *)
val bound_slot_value :
  end_iv:int64 -> step:int64 -> cond:Janus_vx.Cond.t -> adjust:int64 -> int64

(** A contiguous range of canonical IV values, [c_end] exclusive. *)
type chunk = { c_start : int64; c_end : int64 }

(** Equal contiguous chunks, one list per thread. *)
val chunked_chunks :
  init:int64 -> step:int64 -> trips:int -> threads:int -> chunk list array

(** Round-robin blocks of [block] iterations distributed over threads. *)
val rr_chunks :
  init:int64 -> step:int64 -> trips:int -> threads:int -> block:int ->
  chunk list array

(** {1 Runtime checks and reductions (exposed for tests)} *)

(** Evaluate an array-bounds check against machine state; [true] means
    every written range is disjoint from every other accessed range
    (identical ranges denote a same-index in-place update and pass). *)
val eval_check : t -> Machine.t -> Desc.check_desc -> bool

val read_loc : Machine.t -> Desc.location -> int64
val write_loc : Machine.t -> Desc.location -> int64 -> unit
val redop_identity : Desc.redop -> int64
val redop_combine : Desc.redop -> int64 -> int64 -> int64

(** {1 STM boundaries (§II-E2, §II-E3)} *)

(** TX_START at a call site: checkpoint the context and install a
    transaction, unless this site is re-executing after an abort. *)
val tx_start : t -> int -> Machine.t -> int -> Dbm.action

(** TX_FINISH: value-based validation of buffered reads; commit stores
    in thread order, or roll back and re-execute non-speculatively. *)
val tx_finish : t -> int -> Machine.t -> Dbm.action

exception Worker_escaped of int

(** A worker exhausted its DBM fuel at (worker, application address). *)
exception Worker_out_of_fuel of int * int

(** Execute one selected loop in parallel from the main context.
    [caches] substitutes the runtime's worker caches (fission phases
    pass caches that elide the other sub-loops), [max_threads] caps
    the invocation's parallelism, and [iv_range] supplies a
    pre-evaluated (init, bound) pair instead of re-evaluating the
    descriptor's expressions against the current context. *)
val run_parallel_loop :
  ?caches:Dbm.cache array ->
  ?max_threads:int ->
  ?iv_range:int64 * int64 ->
  t -> Machine.t -> Desc.loop_desc -> bound_adjust:int64 ->
  [ `Parallel of int | `Sequential ]

(** Execute a fissioned loop (LOOP_FISSION): every sub-loop group runs
    as one consecutive full-range loop instance — the DOALL product on
    all threads, the sequential residue on one. *)
val run_fission :
  t -> Machine.t -> Desc.fission_desc -> [ `Parallel of int | `Sequential ]

(** Mirror runtime state (per-loop invocation counts as
    [loop.<id>.invocations], [rt.stm_overflows]) and the DBM's stats
    into the metrics registry. Called once at publish time. *)
val publish_metrics : t -> Obs.t -> unit
