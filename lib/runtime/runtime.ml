(** The Janus parallel runtime (§II-E): thread pool of virtual hardware
    threads with private stacks, TLS and code caches; chunked and
    round-robin iteration scheduling; runtime array-bounds checks with
    sequential fallback; software-transactional execution of
    dynamically discovered code.

    Virtual multicore timing: a parallel invocation costs
    init + max(worker cycles) + finish on the main thread's clock. The
    workers really execute their iterations against shared guest
    memory — results are bit-identical to sequential execution, which
    the test suite verifies against the native VM. *)

open Janus_vx
open Janus_vm
module Rule = Janus_schedule.Rule
module Desc = Janus_schedule.Desc
module Rexpr = Janus_schedule.Rexpr
module Schedule = Janus_schedule.Schedule
module Dbm = Janus_dbm.Dbm
module Obs = Janus_obs.Obs
module Adapt = Janus_adapt.Adapt

type config = {
  threads : int;
  force_policy : Desc.policy option;  (* override descriptors (ablation) *)
  stm_access_limit : int;  (* speculative accesses before giving up *)
  stm_everywhere : bool;
  (* ablation of the paper's "use it sparingly" argument (§II-E2):
     wrap every worker chunk in a transaction, buffering all of its
     accesses, instead of speculating only on discovered code *)
  fuel : int;  (* per-chunk worker instruction budget *)
}

let default_config =
  { threads = 8; force_policy = None; stm_access_limit = 4096;
    stm_everywhere = false; fuel = 400_000_000 }

type t = {
  dbm : Dbm.t;
  config : config;
  main_cache : Dbm.cache;
  worker_caches : Dbm.cache array;
  loop_sequential : (int, bool) Hashtbl.t;  (* check failed: run serial *)
  loop_in_seq : (int, bool) Hashtbl.t;  (* currently running serially *)
  loop_invocations : (int, int) Hashtbl.t;
  fission_caches : (int * int, Dbm.cache array) Hashtbl.t;
  (* (loop id, phase) -> worker caches whose skip filter elides the
     other sub-loops' instructions; built on first use, then reused
     across invocations like the ordinary worker caches *)
  mutable fission_phases : int;  (* sub-loop instances executed *)
  mutable current_loop : int;  (* loop id the workers are executing *)
  skip_tx : (int * int, unit) Hashtbl.t;
  (* (worker, call addr): re-execute non-speculatively after abort.
     Cleared at every LOOP_INIT so entries never leak into a later
     invocation (a stale pair would silently suppress speculation). *)
  mutable stm_overflows : int;
  adapt : Adapt.t option;  (* online governor, when configured *)
  gov_seq : (int, int) Hashtbl.t;
  (* loop id -> main cycles when a governor-sequential (or sampling)
     invocation began; consumed at LOOP_FINISH *)
  inv_checks : (int, int * int) Hashtbl.t;
  (* loop id -> (check evaluations, check cycles) of the {e current}
     invocation. Consumed and cleared at every LOOP_INIT — the same
     bug family as [skip_tx]: a stale entry would charge one
     invocation's check cost to the next. *)
  mutable max_inv_checks : int;  (* high-water mark, for regression tests *)
  mutable last_sum_cycles : int;
  (* summed worker cycles of the most recent parallel invocation: the
     realised work the governor compares against the main-thread cost *)
}

(* the tracing/metrics sink rides on the DBM *)
let obs t = t.dbm.Dbm.obs

let rexpr_env (ctx : Machine.t) : Rexpr.env =
  {
    Rexpr.get_reg = (fun r -> Machine.get ctx r);
    load = (fun a -> Memory.read_i64 ctx.Machine.mem a);
  }

(* ------------------------------------------------------------------ *)
(* Iteration-space arithmetic                                          *)
(* ------------------------------------------------------------------ *)

(* number of iterations for iv = init; while (iv cond bound); iv += step *)
let trip_count ~init ~bound ~step ~cond =
  let open Int64 in
  let diff = sub bound init in
  if equal step 0L then 0
  else
    let up = compare step 0L > 0 in
    match cond with
    | Cond.Lt | Cond.Ult ->
      if not up || compare diff 0L <= 0 then 0
      else to_int (div (add diff (sub step 1L)) step)
    | Cond.Le | Cond.Ule ->
      if not up || compare diff 0L < 0 then 0
      else to_int (add (div diff step) 1L)
    | Cond.Gt | Cond.Ugt ->
      if up || compare diff 0L >= 0 then 0
      else to_int (div (add diff (add step 1L)) step)
    | Cond.Ge | Cond.Uge ->
      if up || compare diff 0L > 0 then 0
      else to_int (add (div diff step) 1L)
    | Cond.Ne ->
      let q = if equal (rem diff step) 0L then div diff step else 0L in
      if compare q 0L > 0 then to_int q else 0
    | Cond.Eq | Cond.S | Cond.Ns -> 0

(* the TLS bound-slot value for a chunk ending (exclusively) at
   [end_iv]: the rewritten compare continues while (iv + adjust) cond
   slot *)
let bound_slot_value ~end_iv ~step ~cond ~adjust =
  let open Int64 in
  match cond with
  | Cond.Le | Cond.Ule | Cond.Ge | Cond.Uge -> add (sub end_iv step) adjust
  | _ -> add end_iv adjust

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ?(config = default_config) ?adapt (dbm : Dbm.t) =
  Program.add_thread_regions dbm.Dbm.prog ~threads:config.threads;
  let t =
    {
      dbm;
      config;
      main_cache = Dbm.new_cache Dbm.Main;
      worker_caches =
        Array.init config.threads (fun w -> Dbm.new_cache (Dbm.Worker w));
      loop_sequential = Hashtbl.create 8;
      loop_in_seq = Hashtbl.create 8;
      loop_invocations = Hashtbl.create 8;
      fission_caches = Hashtbl.create 8;
      fission_phases = 0;
      current_loop = -1;
      skip_tx = Hashtbl.create 16;
      stm_overflows = 0;
      adapt;
      gov_seq = Hashtbl.create 8;
      inv_checks = Hashtbl.create 8;
      max_inv_checks = 0;
      last_sum_cycles = 0;
    }
  in
  t

let governor t = t.adapt

(* ------------------------------------------------------------------ *)
(* Runtime array-bounds check (§II-E1)                                 *)
(* ------------------------------------------------------------------ *)

let eval_check t (ctx : Machine.t) (cd : Desc.check_desc) =
  let env = rexpr_env ctx in
  let ranges =
    List.map
      (fun (r : Desc.array_range) ->
         let a = Rexpr.eval env r.Desc.base in
         let e = Rexpr.eval env r.Desc.extent in
         let lo = Int64.to_int (if Int64.compare e 0L < 0 then Int64.add a e else a) in
         let hi =
           Int64.to_int (if Int64.compare e 0L < 0 then a else Int64.add a e)
           + r.Desc.width
         in
         (lo, hi, r.Desc.written))
      cd.Desc.ranges
  in
  let pairs = Desc.check_pairs cd in
  let cost = Cost.bounds_check_per_pair * max 1 pairs in
  ctx.Machine.cycles <- ctx.Machine.cycles + cost;
  t.dbm.Dbm.stats.Dbm.check_cycles <-
    t.dbm.Dbm.stats.Dbm.check_cycles + cost;
  (* all written ranges must be disjoint from every other range *)
  let disjoint (lo1, hi1) (lo2, hi2) = hi1 <= lo2 || hi2 <= lo1 in
  List.for_all
    (fun (lo1, hi1, w1) ->
       (not w1)
       || List.for_all
            (fun (lo2, hi2, _) ->
               (lo1 = lo2 && hi1 = hi2) || disjoint (lo1, hi1) (lo2, hi2))
            (List.filter (fun (lo2, hi2, _) -> not (lo1 = lo2 && hi1 = hi2)) ranges))
    ranges

(* ------------------------------------------------------------------ *)
(* Location access in a thread context                                 *)
(* ------------------------------------------------------------------ *)

let read_loc (ctx : Machine.t) = function
  | Desc.Lreg r -> Machine.get ctx r
  | Desc.Lfreg r -> Int64.bits_of_float (Machine.getf ctx r 0)
  | Desc.Lstack off ->
    Memory.read_i64 ctx.Machine.mem
      (Int64.to_int (Machine.get ctx Reg.RSP) + off)
  | Desc.Labs a -> Memory.read_i64 ctx.Machine.mem a

let write_loc (ctx : Machine.t) loc v =
  match loc with
  | Desc.Lreg r -> Machine.set ctx r v
  | Desc.Lfreg r -> Machine.setf ctx r 0 (Int64.float_of_bits v)
  | Desc.Lstack off ->
    Memory.write_i64 ctx.Machine.mem
      (Int64.to_int (Machine.get ctx Reg.RSP) + off)
      v
  | Desc.Labs a -> Memory.write_i64 ctx.Machine.mem a v

let redop_identity = function
  | Desc.Radd_int -> 0L
  | Desc.Radd_f64 -> Int64.bits_of_float 0.0
  | Desc.Rmul_f64 -> Int64.bits_of_float 1.0

let redop_combine op a b =
  match op with
  | Desc.Radd_int -> Int64.add a b
  | Desc.Radd_f64 ->
    Int64.bits_of_float (Int64.float_of_bits a +. Int64.float_of_bits b)
  | Desc.Rmul_f64 ->
    Int64.bits_of_float (Int64.float_of_bits a *. Int64.float_of_bits b)

(* the TLS slot assigned to a privatised absolute address, if any *)
let tls_slot_of_abs (desc : Desc.loop_desc) addr =
  List.find_map
    (fun (e, slot) ->
       match e with
       | Rexpr.Const a when Int64.to_int a = addr -> Some slot
       | _ -> None)
    desc.Desc.privatised

(* where a reduction partial lives in a worker *)
let read_partial (desc : Desc.loop_desc) w (ctx_w : Machine.t) loc =
  match loc with
  | Desc.Labs a -> begin
      match tls_slot_of_abs desc a with
      | Some slot ->
        Memory.read_i64 ctx_w.Machine.mem (Layout.tls_base w + (8 * slot))
      | None -> read_loc ctx_w loc
    end
  | _ -> read_loc ctx_w loc

let write_partial (desc : Desc.loop_desc) w (ctx_w : Machine.t) loc v =
  match loc with
  | Desc.Labs a -> begin
      match tls_slot_of_abs desc a with
      | Some slot ->
        Memory.write_i64 ctx_w.Machine.mem (Layout.tls_base w + (8 * slot)) v
      | None -> write_loc ctx_w loc v
    end
  | _ -> write_loc ctx_w loc v

(* ------------------------------------------------------------------ *)
(* Parallel loop execution (§II-E)                                     *)
(* ------------------------------------------------------------------ *)

exception Worker_escaped of int  (* worker ended somewhere unexpected *)
exception Worker_out_of_fuel of int * int  (* worker, application address *)

let copy_frame (mem : Memory.t) ~src ~dst ~bytes =
  let words = (bytes + 7) / 8 in
  for i = 0 to words - 1 do
    Memory.write_i64 mem (dst + (8 * i)) (Memory.read_i64 mem (src + (8 * i)))
  done

type chunk = { c_start : int64; c_end : int64 }  (* canonical iv range *)

(* contiguous chunks, one per thread *)
let chunked_chunks ~init ~step ~trips ~threads =
  let per = (trips + threads - 1) / threads in
  List.init threads (fun w ->
      let lo = w * per in
      let hi = min trips (lo + per) in
      if lo >= hi then []
      else
        [ { c_start = Int64.add init (Int64.mul (Int64.of_int lo) step);
            c_end = Int64.add init (Int64.mul (Int64.of_int hi) step) } ])
  |> Array.of_list

(* round-robin blocks of [block] iterations *)
let rr_chunks ~init ~step ~trips ~threads ~block =
  let chunks = Array.make threads [] in
  let nblocks = (trips + block - 1) / block in
  for b = nblocks - 1 downto 0 do
    let w = b mod threads in
    let lo = b * block in
    let hi = min trips (lo + block) in
    chunks.(w) <-
      { c_start = Int64.add init (Int64.mul (Int64.of_int lo) step);
        c_end = Int64.add init (Int64.mul (Int64.of_int hi) step) }
      :: chunks.(w)
  done;
  chunks

(* [caches] substitutes the runtime's worker caches (fission phases run
   against caches that elide the other sub-loops); [max_threads] caps
   the invocation's parallelism (a sequential residue runs with 1);
   [iv_range] supplies a pre-evaluated (init, bound) — a later fission
   phase must not re-evaluate [iv_init] against registers the earlier
   phases already advanced *)
let run_parallel_loop ?caches ?max_threads ?iv_range t (main : Machine.t)
    (desc : Desc.loop_desc) ~bound_adjust =
  t.current_loop <- desc.Desc.loop_id;
  let stats = t.dbm.Dbm.stats in
  let env = rexpr_env main in
  let init, bound =
    match iv_range with
    | Some (i, b) -> (i, b)
    | None ->
      (Rexpr.eval env desc.Desc.iv_init, Rexpr.eval env desc.Desc.iv_bound)
  in
  let step = desc.Desc.iv_step in
  let cond = desc.Desc.iv_cond in
  let trips = trip_count ~init ~bound ~step ~cond in
  if trips <= 0 then `Sequential
  else begin
    let worker_caches =
      match caches with Some c -> c | None -> t.worker_caches
    in
    let thread_cap =
      match max_threads with
      | Some m -> min m t.config.threads
      | None -> t.config.threads
    in
    let threads = min thread_cap (max 1 trips) in
    (match obs t with
     | Some o when Obs.tracing o ->
       Obs.emit o ~tid:0 ~ts:main.Machine.cycles
         (Obs.Loop_init { loop_id = desc.Desc.loop_id; threads; trips })
     | _ -> ());
    let policy =
      match t.config.force_policy with
      | Some p -> p
      | None -> desc.Desc.policy
    in
    let chunks =
      match policy with
      | Desc.Chunked | Desc.Doacross _ ->
        chunked_chunks ~init ~step ~trips ~threads
      | Desc.Round_robin block ->
        rr_chunks ~init ~step ~trips ~threads ~block:(max 1 block)
    in
    (* DOACROSS (future work, §III-A): chunks run in iteration order
       with context hand-off; only the non-carried fraction overlaps *)
    let doacross_frac =
      match policy with
      | Desc.Doacross pct -> Some (float_of_int (max 0 (min 100 pct)) /. 100.0)
      | Desc.Chunked | Desc.Round_robin _ -> None
    in
    (* init costs: signal threads, copy contexts *)
    let init_cost =
      Cost.loop_init_base
      + (threads * (Cost.thread_signal + Cost.thread_context_copy))
    in
    main.Machine.cycles <- main.Machine.cycles + init_cost;
    stats.Dbm.init_finish_cycles <- stats.Dbm.init_finish_cycles + init_cost;
    let rsp_main = Int64.to_int (Machine.get main Reg.RSP) in
    let rbp_main = Int64.to_int (Machine.get main Reg.RBP) in
    (* the body may address the frame through RBP; the private copy
       must reach the saved-RBP slot, or workers whose copy window
       stops short would keep RBP pointing into the main stack and
       rbp-relative stores (reduction accumulators included) would
       alias the shared frame *)
    let fcb =
      let span = rbp_main - rsp_main in
      if span >= 0 && span < 65536 then
        max desc.Desc.frame_copy_bytes (span + 16)
      else desc.Desc.frame_copy_bytes
    in
    (* reduction bases are main's pre-loop values *)
    let red_bases =
      List.map (fun (loc, op) -> (loc, op, read_loc main loc)) desc.Desc.reductions
    in
    let max_cycles = ref 0 in
    let sum_cycles = ref 0 in
    let partials = ref [] in  (* per worker: (loc, op, partial) list *)
    let last_ctx = ref None in
    for w = 0 to threads - 1 do
      if chunks.(w) <> [] then begin
        (* DOACROSS workers continue from the previous worker's context
           (registers, flags and frame), which carries the
           cross-iteration values exactly as sequential execution *)
        let chain_src =
          match doacross_frac, !last_ctx with
          | Some _, Some (wp, ctxp) ->
            Some (ctxp, Int64.to_int (Machine.get ctxp Reg.RSP), wp)
          | _ -> None
        in
        let ctx =
          match chain_src with
          | Some (ctxp, _, _) -> Machine.fork ctxp
          | None -> Machine.fork main
        in
        (* private stack with a copy of the live frame *)
        let rsp_w = Layout.tstack_top w - ((fcb + 15) land lnot 15) - 64 in
        let frame_src =
          match chain_src with Some (_, rsp_p, _) -> rsp_p | None -> rsp_main
        in
        copy_frame main.Machine.mem ~src:frame_src ~dst:rsp_w ~bytes:fcb;
        Machine.set ctx Reg.RSP (Int64.of_int rsp_w);
        if rbp_main >= rsp_main && rbp_main - rsp_main < fcb then
          Machine.set ctx Reg.RBP (Int64.of_int (rsp_w + (rbp_main - rsp_main)));
        Machine.set ctx Reg.TLS (Int64.of_int (Layout.tls_base w));
        Machine.set ctx Reg.SHARED (Int64.of_int rbp_main);
        (* first-private copies of privatised scalars *)
        List.iter
          (fun (e, slot) ->
             let addr = Int64.to_int (Rexpr.eval env e) in
             Memory.write_i64 ctx.Machine.mem
               (Layout.tls_base w + (8 * slot))
               (Memory.read_i64 main.Machine.mem addr))
          desc.Desc.privatised;
        (* reduction identities (chained contexts already carry the
           running value, so DOACROSS workers keep it) *)
        if doacross_frac = None then
          List.iter
            (fun (loc, op) -> write_partial desc w ctx loc (redop_identity op))
            desc.Desc.reductions;
        (* run each chunk *)
        List.iter
          (fun c ->
             let c_t0 = ctx.Machine.cycles in
             write_loc ctx desc.Desc.iv c.c_start;
             Memory.write_i64 ctx.Machine.mem
               (Layout.tls_base w)
               (bound_slot_value ~end_iv:c.c_end ~step ~cond
                  ~adjust:bound_adjust);
             ctx.Machine.cycles <- ctx.Machine.cycles + Cost.sched_block_fetch;
             ctx.Machine.rip <- desc.Desc.header_addr;
             let chunk_txn =
               if t.config.stm_everywhere then Some (Machine.start_txn ctx)
               else None
             in
             (match Dbm.run ~fuel:t.config.fuel t.dbm worker_caches.(w) ctx with
              | `Yielded -> ()
              | `Halted -> raise (Worker_escaped w)
              | `Out_of_fuel addr -> raise (Worker_out_of_fuel (w, addr)));
             (match chunk_txn with
             | Some txn ->
               (* chunks are executed in order, so validation always
                  succeeds; the cost of tracking and committing is the
                  point of the ablation *)
               ctx.Machine.cycles <-
                 ctx.Machine.cycles
                 + (Cost.stm_validate_per_entry
                    * Hashtbl.length txn.Machine.treads)
                 + (Cost.stm_commit_per_entry
                    * Hashtbl.length txn.Machine.twrites);
               Hashtbl.iter
                 (fun addr v -> Memory.write_i64 ctx.Machine.mem addr v)
                 txn.Machine.twrites;
               stats.Dbm.stm_commits <- stats.Dbm.stm_commits + 1;
               Machine.end_txn ctx
             | None -> ());
             match obs t with
             | Some o ->
               let iters =
                 Int64.to_int (Int64.div (Int64.sub c.c_end c.c_start) step)
               in
               Obs.incr o "rt.chunks";
               Obs.observe o "rt.chunk_iters" iters;
               if Obs.tracing o then
                 Obs.emit o ~tid:(w + 1) ~ts:c_t0
                   ~dur:(ctx.Machine.cycles - c_t0)
                   (Obs.Chunk_dispatched
                      { loop_id = desc.Desc.loop_id; worker = w;
                        iv_start = c.c_start; iv_end = c.c_end; iters })
             | None -> ())
          chunks.(w);
        if doacross_frac = None then
          partials :=
            (w, List.map
               (fun (loc, op) -> (loc, op, read_partial desc w ctx loc))
               desc.Desc.reductions)
            :: !partials;
        if ctx.Machine.cycles > !max_cycles then max_cycles := ctx.Machine.cycles;
        sum_cycles := !sum_cycles + ctx.Machine.cycles;
        main.Machine.icount <- main.Machine.icount + ctx.Machine.icount;
        last_ctx := Some (w, ctx)
      end
    done;
    t.last_sum_cycles <- !sum_cycles;
    (* wall-clock: DOALL is bounded by the slowest worker; DOACROSS
       serialises the carried fraction and overlaps the rest *)
    let region_cycles =
      match doacross_frac with
      | None -> !max_cycles
      | Some f ->
        let sync = threads * Cost.doacross_sync in
        int_of_float
          ((f *. float_of_int !sum_cycles)
           +. ((1.0 -. f) *. float_of_int !max_cycles))
        + sync
    in
    main.Machine.cycles <- main.Machine.cycles + region_cycles;
    stats.Dbm.parallel_cycles <- stats.Dbm.parallel_cycles + region_cycles;
    (* combine: last worker's context becomes the post-loop state *)
    (match !last_ctx with
     | Some (wl, ctx_l) ->
       let rsp_l = Int64.to_int (Machine.get ctx_l Reg.RSP) in
       copy_frame main.Machine.mem ~src:rsp_l ~dst:rsp_main ~bytes:fcb;
       Array.blit ctx_l.Machine.regs 0 main.Machine.regs 0
         (Array.length main.Machine.regs);
       Array.blit ctx_l.Machine.fregs 0 main.Machine.fregs 0
         (Array.length main.Machine.fregs);
       main.Machine.flags <- ctx_l.Machine.flags;
       main.Machine.brk <- ctx_l.Machine.brk;
       (* restore main's own pointers *)
       Machine.set main Reg.RSP (Int64.of_int rsp_main);
       Machine.set main Reg.RBP (Int64.of_int rbp_main);
       Machine.set main Reg.TLS 0L;
       Machine.set main Reg.SHARED 0L;
       (* privatised copy-out: last value lands at the real location *)
       List.iter
         (fun (e, slot) ->
            let addr = Int64.to_int (Rexpr.eval env e) in
            Memory.write_i64 main.Machine.mem addr
              (Memory.read_i64 main.Machine.mem
                 (Layout.tls_base wl + (8 * slot))))
         desc.Desc.privatised
     | None -> ());
    (* reductions: base value combined with every worker's partial
       (DOACROSS carried them through the context chain instead) *)
    if doacross_frac <> None then ignore red_bases;
    List.iter
      (fun (loc, op, base) ->
         let combined =
           List.fold_left
             (fun acc (_, ps) ->
                List.fold_left
                  (fun acc (loc', op', p) ->
                     if loc' = loc && op' = op then redop_combine op acc p
                     else acc)
                  acc ps)
             base !partials
         in
         write_loc main loc combined)
      (if doacross_frac = None then red_bases else []);
    (* the IV's architectural exit value *)
    let exit_iv =
      match cond with
      | Cond.Ne -> bound
      | _ -> Int64.add init (Int64.mul (Int64.of_int trips) step)
    in
    write_loc main desc.Desc.iv exit_iv;
    let finish_cost =
      Cost.loop_finish_base + (threads * Cost.loop_finish_per_thread)
    in
    main.Machine.cycles <- main.Machine.cycles + finish_cost;
    stats.Dbm.init_finish_cycles <- stats.Dbm.init_finish_cycles + finish_cost;
    t.current_loop <- -1;
    (match obs t with
     | Some o when Obs.tracing o ->
       Obs.emit o ~tid:0 ~ts:main.Machine.cycles
         (Obs.Loop_finish { loop_id = desc.Desc.loop_id })
     | _ -> ());
    match desc.Desc.exit_addrs with
    | e :: _ -> `Parallel e
    | [] -> `Sequential
  end

(* ------------------------------------------------------------------ *)
(* Loop fission (extension)                                            *)
(* ------------------------------------------------------------------ *)

(* Execute a fissioned loop: each sub-loop group runs as one
   consecutive full-range loop instance over the original body, with
   the other groups' instructions elided from its code caches. The
   DOALL product uses every thread; the sequential residue runs on
   one. Phases share no dependence (groups are dependence-disjoint by
   construction), so each phase's final context threads into the next
   through the ordinary last-worker context copy. *)
let run_fission t (main : Machine.t) (fd : Desc.fission_desc) =
  let desc = fd.Desc.fd_loop in
  let lid = desc.Desc.loop_id in
  let env = rexpr_env main in
  let init = Rexpr.eval env desc.Desc.iv_init in
  let bound = Rexpr.eval env desc.Desc.iv_bound in
  let all_insns =
    List.concat_map (fun (g : Desc.fission_group) -> g.Desc.fg_insns)
      fd.Desc.fd_groups
  in
  let result = ref `Sequential in
  let aborted = ref false in
  List.iteri
    (fun i (g : Desc.fission_group) ->
       if not !aborted then begin
         let caches =
           match Hashtbl.find_opt t.fission_caches (lid, i) with
           | Some c -> c
           | None ->
             let others =
               List.filter
                 (fun a -> not (List.mem a g.Desc.fg_insns))
                 all_insns
             in
             let skip a = List.mem a others in
             let c =
               Array.init t.config.threads (fun w ->
                   Dbm.new_cache ~skip (Dbm.Worker w))
             in
             Hashtbl.replace t.fission_caches (lid, i) c;
             c
         in
         let max_threads = if g.Desc.fg_parallel then None else Some 1 in
         t.fission_phases <- t.fission_phases + 1;
         match
           run_parallel_loop ~caches ?max_threads ~iv_range:(init, bound) t
             main desc ~bound_adjust:desc.Desc.iv_bound_adjust
         with
         | `Sequential ->
           (* only a degenerate trip count lands here, and it does so
              on the first phase — nothing has executed yet, so the
              whole invocation falls back to sequential execution *)
           result := `Sequential;
           aborted := true
         | `Parallel e -> result := `Parallel e
       end)
    fd.Desc.fd_groups;
  !result

(* ------------------------------------------------------------------ *)
(* STM boundaries (§II-E2, §II-E3)                                     *)
(* ------------------------------------------------------------------ *)

let tx_start t w (ctx : Machine.t) call_addr =
  if Hashtbl.mem t.skip_tx (w, call_addr) then begin
    (* re-execution after an abort: run non-speculatively, as the
       oldest thread would *)
    Hashtbl.remove t.skip_tx (w, call_addr);
    Dbm.Continue
  end
  else begin
    ctx.Machine.cycles <- ctx.Machine.cycles + Cost.stm_checkpoint;
    let txn = Machine.start_txn ctx in
    ignore txn;
    (match obs t with
     | Some o when Obs.tracing o ->
       Obs.emit o ~tid:(w + 1) ~ts:ctx.Machine.cycles
         (Obs.Tx_started { addr = call_addr })
     | _ -> ());
    Dbm.Continue
  end

let tx_finish t w (ctx : Machine.t) =
  match ctx.Machine.txn with
  | None -> Dbm.Continue
  | Some txn ->
    let stats = t.dbm.Dbm.stats in
    let n_access =
      Hashtbl.length txn.Machine.treads + Hashtbl.length txn.Machine.twrites
    in
    if n_access > t.config.stm_access_limit then t.stm_overflows <- t.stm_overflows + 1;
    (* value-based validation of every buffered read *)
    let valid =
      Hashtbl.fold
        (fun addr v acc ->
           acc
           && (Hashtbl.mem txn.Machine.twrites addr
               || Int64.equal (Memory.read_i64 ctx.Machine.mem addr) v))
        txn.Machine.treads true
    in
    ctx.Machine.cycles <-
      ctx.Machine.cycles
      + (Cost.stm_validate_per_entry * Hashtbl.length txn.Machine.treads);
    if valid then begin
      (* commit buffered stores in thread order *)
      Hashtbl.iter
        (fun addr v -> Memory.write_i64 ctx.Machine.mem addr v)
        txn.Machine.twrites;
      ctx.Machine.cycles <-
        ctx.Machine.cycles
        + (Cost.stm_commit_per_entry * Hashtbl.length txn.Machine.twrites);
      stats.Dbm.stm_commits <- stats.Dbm.stm_commits + 1;
      (match obs t with
       | Some o when Obs.tracing o ->
         Obs.emit o ~tid:(w + 1) ~ts:ctx.Machine.cycles
           (Obs.Tx_committed
              { reads = Hashtbl.length txn.Machine.treads;
                writes = Hashtbl.length txn.Machine.twrites })
       | _ -> ());
      Machine.end_txn ctx;
      Dbm.Continue
    end
    else begin
      (* abort: roll back to the checkpoint and re-execute the call
         without speculation *)
      stats.Dbm.stm_aborts <- stats.Dbm.stm_aborts + 1;
      ctx.Machine.cycles <- ctx.Machine.cycles + Cost.stm_abort;
      let resume = txn.Machine.checkpoint_rip in
      Machine.rollback ctx txn;
      Hashtbl.replace t.skip_tx (w, resume) ();
      (match obs t with
       | Some o when Obs.tracing o ->
         Obs.emit o ~tid:(w + 1) ~ts:ctx.Machine.cycles
           (Obs.Tx_aborted { addr = resume })
       | _ -> ());
      Dbm.Divert resume
    end

(* ------------------------------------------------------------------ *)
(* The event handler                                                   *)
(* ------------------------------------------------------------------ *)

let handler t (_dbm : Dbm.t) kind (ctx : Machine.t) (r : Rule.t) : Dbm.action =
  let lid = Int64.to_int r.Rule.aux in
  let in_seq lid = try Hashtbl.find t.loop_in_seq lid with Not_found -> false in
  match kind, r.Rule.id with
  | Dbm.Main, Rule.MEM_BOUNDS_CHECK -> begin
      match t.dbm.Dbm.schedule with
      | None -> Dbm.Continue
      | Some _ when in_seq lid -> Dbm.Continue
      | Some _
        when (match t.adapt with
              | Some g -> Adapt.skip_check g lid
              | None -> false) ->
        (* demoted (or sampling) loop: don't pay for a check whose
           answer the governor will override *)
        Dbm.Continue
      | Some sched ->
        let cd = Schedule.check_desc sched r.Rule.data in
        let c_t0 = ctx.Machine.cycles in
        let ok = eval_check t ctx cd in
        let check_cost = ctx.Machine.cycles - c_t0 in
        let n, cyc =
          try Hashtbl.find t.inv_checks lid with Not_found -> (0, 0)
        in
        Hashtbl.replace t.inv_checks lid (n + 1, cyc + check_cost);
        (match t.adapt with
         | Some g -> Adapt.record_check g lid ~ok ~cycles:check_cost
         | None -> ());
        (match obs t with
         | Some o ->
           Obs.incr o (if ok then "rt.checks_passed" else "rt.checks_failed");
           if Obs.tracing o then begin
             let pairs = Desc.check_pairs cd in
             Obs.emit o ~tid:0 ~ts:ctx.Machine.cycles
               (if ok then Obs.Check_passed { loop_id = lid; pairs }
                else Obs.Check_failed { loop_id = lid; pairs })
           end
         | None -> ());
        let was_seq =
          try Hashtbl.find t.loop_sequential lid with Not_found -> false
        in
        Hashtbl.replace t.loop_sequential lid (not ok);
        (* §II-E1: if the loop was already modified, flush and reload *)
        if (not ok) && not was_seq
           && (try Hashtbl.find t.loop_invocations lid > 0 with Not_found -> false)
        then begin
          Array.iter
            (Dbm.flush_cache ~now:ctx.Machine.cycles t.dbm)
            t.worker_caches;
          ctx.Machine.cycles <- ctx.Machine.cycles + Cost.cache_flush
        end;
        Dbm.Continue
    end
  | Dbm.Main, (Rule.LOOP_INIT | Rule.LOOP_FISSION) -> begin
      (* a fresh invocation: drop any stale skip-speculation entries a
         previous invocation's aborts left behind. LOOP_FISSION shares
         this whole path — its descriptor begins with an ordinary loop
         descriptor, so [Schedule.loop_desc] decodes the governed-loop
         half, and only the execution call differs. *)
      Hashtbl.reset t.skip_tx;
      match t.dbm.Dbm.schedule with
      | None -> Dbm.Continue
      | Some _ when in_seq lid -> Dbm.Continue
      | Some sched ->
        (* consume-and-clear this invocation's check stats (the check
           rule fired just before us); without the clear, a later
           invocation would inherit them — same leak as [skip_tx] *)
        let inv_n, inv_check_cycles =
          try Hashtbl.find t.inv_checks lid with Not_found -> (0, 0)
        in
        if inv_n > t.max_inv_checks then t.max_inv_checks <- inv_n;
        Hashtbl.remove t.inv_checks lid;
        let decision =
          match t.adapt with
          | Some g -> Adapt.decide g lid ~now:ctx.Machine.cycles
          | None -> Adapt.Go_parallel
        in
        match decision with
        | Adapt.Go_sequential ->
          (* demoted: run serially without ever evaluating the check *)
          Hashtbl.replace t.loop_in_seq lid true;
          Hashtbl.replace t.gov_seq lid ctx.Machine.cycles;
          Dbm.Continue
        | Adapt.Go_sample ->
          (* training-free: serial invocation under shadow memory *)
          Hashtbl.replace t.loop_in_seq lid true;
          Hashtbl.replace t.gov_seq lid ctx.Machine.cycles;
          (match t.adapt with
           | Some g ->
             let desc = Schedule.loop_desc sched r.Rule.data in
             let env = rexpr_env ctx in
             (* locations the schedule privatises or reduces are not
                cross-iteration dependences — the rewrite already
                handles them *)
             let exclude =
               List.map
                 (fun (e, _) -> Int64.to_int (Rexpr.eval env e))
                 desc.Desc.privatised
               @ List.filter_map
                   (fun (loc, _) ->
                      match loc with Desc.Labs a -> Some a | _ -> None)
                   desc.Desc.reductions
             in
             Adapt.sample_begin g lid ctx
               ~read_iv:(fun () -> read_loc ctx desc.Desc.iv)
               ~exclude
           | None -> ());
          Dbm.Continue
        | Adapt.Go_parallel | Adapt.Go_probe ->
          if (try Hashtbl.find t.loop_sequential lid with Not_found -> false)
          then begin
            (* the check failed: execute this invocation serially, and
               do not re-fire at every header execution *)
            Hashtbl.replace t.loop_in_seq lid true;
            (match obs t with
             | Some o ->
               Obs.incr o "rt.seq_fallbacks";
               if Obs.tracing o then
                 Obs.emit o ~tid:0 ~ts:ctx.Machine.cycles
                   (Obs.Seq_fallback { loop_id = lid })
             | None -> ());
            (match t.adapt with
             | Some g -> Adapt.record_fallback g lid ~now:ctx.Machine.cycles
             | None -> ());
            Dbm.Continue
          end
          else begin
            let desc = Schedule.loop_desc sched r.Rule.data in
            Hashtbl.replace t.loop_invocations lid
              (1 + (try Hashtbl.find t.loop_invocations lid with Not_found -> 0));
            let stats = t.dbm.Dbm.stats in
            let commits0 = stats.Dbm.stm_commits in
            let aborts0 = stats.Dbm.stm_aborts in
            let inv_t0 = ctx.Machine.cycles in
            let outcome =
              match r.Rule.id with
              | Rule.LOOP_FISSION ->
                let fd = Schedule.fission_desc sched r.Rule.data in
                (match obs t with
                 | Some o -> Obs.incr o "rt.fission_invocations"
                 | None -> ());
                run_fission t ctx fd
              | _ ->
                run_parallel_loop t ctx desc
                  ~bound_adjust:desc.Desc.iv_bound_adjust
            in
            match outcome with
            | `Sequential ->
              Hashtbl.replace t.loop_in_seq lid true;
              Dbm.Continue
            | `Parallel exit_addr ->
              (match t.adapt with
               | Some g ->
                 Adapt.record_parallel g lid ~now:ctx.Machine.cycles
                   ~work:t.last_sum_cycles
                   ~cost:(ctx.Machine.cycles - inv_t0 + inv_check_cycles)
                   ~commits:(stats.Dbm.stm_commits - commits0)
                   ~aborts:(stats.Dbm.stm_aborts - aborts0)
               | None -> ());
              Dbm.Divert exit_addr
          end
    end
  | Dbm.Main, Rule.LOOP_FINISH ->
    (* end of a sequential-fallback invocation: re-arm the checks *)
    (match t.adapt, Hashtbl.find_opt t.gov_seq lid with
     | Some g, Some seq_t0 ->
       Hashtbl.remove t.gov_seq lid;
       (match Adapt.state g lid with
        | Some Adapt.Sampling ->
          Adapt.sample_end g lid ctx ~now:ctx.Machine.cycles
        | _ -> Adapt.record_seq g lid ~cycles:(ctx.Machine.cycles - seq_t0))
     | _ -> ());
    Hashtbl.remove t.loop_in_seq lid;
    Hashtbl.remove t.loop_sequential lid;
    Dbm.Continue
  | Dbm.Main, Rule.MEM_SPILL_REG ->
    ctx.Machine.cycles <- ctx.Machine.cycles + 8;
    Dbm.Continue
  | Dbm.Worker _, (Rule.THREAD_YIELD | Rule.LOOP_FINISH) ->
    (* only this loop's own yield stops the thread: a worker may pass
       through another loop's exit block (e.g. an unrolled loop's
       remainder shares it) *)
    if lid = t.current_loop then Dbm.Stop_thread else Dbm.Continue
  | Dbm.Worker _, Rule.MEM_RECOVER_REG -> Dbm.Continue
  | Dbm.Worker w, Rule.TX_START -> tx_start t w ctx ctx.Machine.rip
  | Dbm.Worker w, Rule.TX_FINISH -> tx_finish t w ctx
  | _, _ -> Dbm.Continue

let install t = t.dbm.Dbm.on_event <- (fun dbm kind ctx r -> handler t dbm kind ctx r)

(** Mirror runtime state into the metrics registry (per-loop invocation
    counts, STM overflow count) and publish the DBM's stats alongside.
    Done once at the end of a run, never on hot paths. *)
let publish_metrics t o =
  Dbm.publish_metrics t.dbm o;
  Hashtbl.iter
    (fun lid n -> Obs.set o (Printf.sprintf "loop.%d.invocations" lid) n)
    t.loop_invocations;
  Obs.set o "rt.stm_overflows" t.stm_overflows;
  Obs.set o "rt.fission_phases" t.fission_phases;
  (* most check evaluations ever attributed to one invocation: > 1
     would mean the per-invocation stats leaked across LOOP_INITs *)
  Obs.set o "rt.max_inv_checks" t.max_inv_checks;
  match t.adapt with
  | Some g -> Adapt.publish_metrics g o
  | None -> ()
