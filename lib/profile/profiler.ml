(** Statically-driven profiling (§II-C): the analyser's profiling
    rewrite schedules drive instrumentation inside the same DBM —
    only the loops of interest, and only the instructions the static
    pass could not disambiguate, are instrumented.

    Two training-run profiles:
    - {e coverage}: dynamic instructions attributed to the innermost
      active loop, iteration and invocation counts, external-call
      footprints;
    - {e dependence}: a shadow word-map detecting cross-iteration
      conflicts among the statically ambiguous accesses. *)

open Janus_vm
module Rule = Janus_schedule.Rule
module Dbm = Janus_dbm.Dbm
module Analysis = Janus_analysis.Analysis
module Rulegen = Janus_analysis.Rulegen
module Obs = Janus_obs.Obs

type loop_cov = {
  mutable self_insns : int;
  mutable invocations : int;
  mutable iterations : int;
  mutable ex_calls : int;
  mutable ex_insns : int;    (* instructions inside external calls *)
  mutable ex_reads : int;    (* non-stack reads inside external calls *)
  mutable ex_writes : int;
}

type coverage = {
  total_insns : int;
  loops : (int, loop_cov) Hashtbl.t;  (* loop id -> counters *)
}

let cov_of coverage lid =
  match Hashtbl.find_opt coverage.loops lid with
  | Some c -> c
  | None ->
    { self_insns = 0; invocations = 0; iterations = 0; ex_calls = 0;
      ex_insns = 0; ex_reads = 0; ex_writes = 0 }

(** Fraction of all dynamic instructions spent inside loop [lid]. *)
let fraction coverage lid =
  if coverage.total_insns = 0 then 0.0
  else
    float_of_int (cov_of coverage lid).self_insns
    /. float_of_int coverage.total_insns

let avg_trip coverage lid =
  let c = cov_of coverage lid in
  if c.invocations = 0 then 0.0
  else float_of_int c.iterations /. float_of_int c.invocations

(** Average dynamic instructions per invocation — the profitability
    signal behind the paper's "high invocation count" filter. *)
let avg_work coverage lid =
  let c = cov_of coverage lid in
  if c.invocations = 0 then 0.0
  else float_of_int c.self_insns /. float_of_int c.invocations

(* sorted loop ids: the canonical iteration order for serialisers *)
let loop_ids coverage =
  Hashtbl.fold (fun lid _ acc -> lid :: acc) coverage.loops []
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Coverage profiling                                                  *)
(* ------------------------------------------------------------------ *)

let run_coverage ?(fuel = 100_000_000) ?(input = []) ?obs image
    (analysis : Analysis.t) =
  let schedule = Rulegen.coverage_schedule analysis.Analysis.cfg analysis.Analysis.reports in
  let prog = Program.load image in
  let dbm = Dbm.create ~schedule ?obs prog in
  let cache = Dbm.new_cache Dbm.Main in
  let loops = Hashtbl.create 16 in
  let get lid =
    match Hashtbl.find_opt loops lid with
    | Some c -> c
    | None ->
      let c =
        { self_insns = 0; invocations = 0; iterations = 0; ex_calls = 0;
          ex_insns = 0; ex_reads = 0; ex_writes = 0 }
      in
      Hashtbl.replace loops lid c;
      c
  in
  (* attribute instruction deltas to the innermost active loop *)
  let active : int list ref = ref [] in
  let last_mark = ref 0 in
  let excall : (int * int) option ref = ref None in  (* lid, entry icount *)
  let ex_reads = ref 0 and ex_writes = ref 0 in
  let attribute (ctx : Machine.t) =
    (match !active with
     | lid :: _ ->
       let c = get lid in
       c.self_insns <- c.self_insns + (ctx.Machine.icount - !last_mark)
     | [] -> ());
    last_mark := ctx.Machine.icount
  in
  dbm.Dbm.on_event <-
    (fun _ _ ctx r ->
       let lid = Int64.to_int r.Rule.data in
       (match r.Rule.id with
        | Rule.PROF_LOOP_START ->
          (* entry is detected robustly at the first ITER instead: a
             vectorised loop's remainder has its preheader inside the
             vector loop, so START can fire per vector iteration *)
          attribute ctx
        | Rule.PROF_LOOP_ITER ->
          attribute ctx;
          let c = get lid in
          c.iterations <- c.iterations + 1;
          if not (List.mem lid !active) then begin
            c.invocations <- c.invocations + 1;
            active := lid :: !active
          end
        | Rule.PROF_LOOP_FINISH ->
          attribute ctx;
          active := List.filter (fun x -> x <> lid) !active
        | Rule.PROF_EXCALL_START ->
          let c = get lid in
          c.ex_calls <- c.ex_calls + 1;
          excall := Some (lid, ctx.Machine.icount);
          ex_reads := 0;
          ex_writes := 0;
          ctx.Machine.observe <-
            Some
              (fun rw ~addr ~bytes:_ ->
                 if addr < Janus_vx.Layout.tls_base 0 then
                   match rw with
                   | Machine.Read -> incr ex_reads
                   | Machine.Write -> incr ex_writes)
        | Rule.PROF_EXCALL_FINISH -> begin
            match !excall with
            | Some (lid', entry) ->
              let c = get lid' in
              c.ex_insns <- c.ex_insns + (ctx.Machine.icount - entry);
              c.ex_reads <- c.ex_reads + !ex_reads;
              c.ex_writes <- c.ex_writes + !ex_writes;
              ctx.Machine.observe <- None;
              excall := None
            | None -> ()
          end
        | _ -> ());
       Dbm.Continue);
  let ctx = Run.fresh_context prog in
  List.iter (fun v -> Queue.push v ctx.Machine.input) input;
  let outcome = Dbm.run ~fuel dbm cache ctx in
  (match obs with
   | Some o ->
     Obs.set o "prof.coverage_insns" ctx.Machine.icount;
     Obs.set o "prof.loops_covered" (Hashtbl.length loops);
     (match outcome with
      | `Out_of_fuel _ -> Obs.incr o "prof.truncated_runs"
      | `Halted | `Yielded -> ())
   | None -> ());
  { total_insns = ctx.Machine.icount; loops }

(* ------------------------------------------------------------------ *)
(* Dependence profiling                                                *)
(* ------------------------------------------------------------------ *)

(* The shadow word-map at the heart of dependence detection: every
   watched access lands here attributed to an iteration; touching a
   word from two different iterations with at least one write is a
   cross-iteration dependence. The offline profiler attributes by its
   ITER counter; the runtime's training-free sampler attributes by the
   loop's induction-variable value — the map does not care. *)
module Shadow = struct
  type t = {
    words : (int, int * bool) Hashtbl.t;  (* word -> (iter, was_write) *)
    mutable found : bool;
  }

  let create () = { words = Hashtbl.create 256; found = false }

  let reset s =
    Hashtbl.reset s.words;
    s.found <- false

  let access s ~iter ~addr ~bytes ~write =
    let words = (bytes + 7) / 8 in
    for k = 0 to words - 1 do
      let w = (addr + (8 * k)) land lnot 7 in
      match Hashtbl.find_opt s.words w with
      | Some (it', was_write) ->
        if it' <> iter && (write || was_write) then s.found <- true;
        let keep_write = write || (it' = iter && was_write) in
        Hashtbl.replace s.words w (iter, keep_write)
      | None -> Hashtbl.replace s.words w (iter, write)
    done

  let found s = s.found
end

type deps = {
  dep_found : (int, bool) Hashtbl.t;  (* loop id -> cross-iteration dep *)
  observed : (int, bool) Hashtbl.t;   (* loop id executed at all *)
}

let has_dep deps lid =
  try Hashtbl.find deps.dep_found lid with Not_found -> false

let was_observed deps lid =
  try Hashtbl.find deps.observed lid with Not_found -> false

let dep_loop_ids deps =
  Hashtbl.fold (fun lid _ acc -> lid :: acc) deps.observed []
  |> Hashtbl.fold (fun lid _ acc -> lid :: acc) deps.dep_found
  |> List.sort_uniq compare

let run_dependence ?(fuel = 100_000_000) ?(input = []) ?obs image
    (analysis : Analysis.t) =
  let schedule = Rulegen.dependence_schedule analysis.Analysis.reports in
  let prog = Program.load image in
  let dbm = Dbm.create ~schedule ?obs prog in
  let cache = Dbm.new_cache Dbm.Main in
  let dep_found = Hashtbl.create 8 in
  let observed = Hashtbl.create 8 in
  (* per-loop iteration counters and shadow word-maps; instrumented
     accesses are attributed to the loop named by their rule, so
     unrolled main/remainder pairs sharing exits cannot interfere *)
  let iters : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let shadows : (int, Shadow.t) Hashtbl.t = Hashtbl.create 8 in
  let active : int list ref = ref [] in
  let shadow_of lid =
    match Hashtbl.find_opt shadows lid with
    | Some s -> s
    | None ->
      let s = Shadow.create () in
      Hashtbl.replace shadows lid s;
      s
  in
  let armed_addr = ref (-1) in
  let armed_lid = ref (-1) in
  let observer (ctx : Machine.t) rw ~addr ~bytes =
    if ctx.Machine.rip = !armed_addr && !armed_lid >= 0 then begin
      let lid = !armed_lid in
      let it = try Hashtbl.find iters lid with Not_found -> 0 in
      let shadow = shadow_of lid in
      Shadow.access shadow ~iter:it ~addr ~bytes ~write:(rw = Machine.Write);
      if Shadow.found shadow then Hashtbl.replace dep_found lid true
    end
  in
  dbm.Dbm.on_event <-
    (fun _ _ ctx r ->
       let lid = Int64.to_int r.Rule.data in
       (match r.Rule.id with
        | Rule.PROF_LOOP_START -> ()
        | Rule.PROF_LOOP_ITER ->
          if List.mem lid !active then
            Hashtbl.replace iters lid
              (1 + (try Hashtbl.find iters lid with Not_found -> 0))
          else begin
            (* loop entry: fresh iteration count and shadow state *)
            active := lid :: !active;
            Hashtbl.replace observed lid true;
            Hashtbl.replace iters lid 0;
            Shadow.reset (shadow_of lid);
            if ctx.Machine.observe = None then
              ctx.Machine.observe <- Some (observer ctx)
          end
        | Rule.PROF_LOOP_FINISH ->
          active := List.filter (fun x -> x <> lid) !active;
          if !active = [] then ctx.Machine.observe <- None
        | Rule.PROF_MEM_ACCESS ->
          armed_addr := r.Rule.addr;
          armed_lid := lid
        | _ -> ());
       Dbm.Continue);
  let ctx = Run.fresh_context prog in
  List.iter (fun v -> Queue.push v ctx.Machine.input) input;
  let outcome = Dbm.run ~fuel dbm cache ctx in
  (match obs with
   | Some o ->
     Obs.set o "prof.loops_observed" (Hashtbl.length observed);
     Obs.set o "prof.deps_found" (Hashtbl.length dep_found);
     (match outcome with
      | `Out_of_fuel _ -> Obs.incr o "prof.truncated_runs"
      | `Halted | `Yielded -> ())
   | None -> ());
  { dep_found; observed }

(* ------------------------------------------------------------------ *)
(* Profile serialisation (.jpf)                                        *)
(*                                                                     *)
(* The paper's deployment profiles offline on a training input; the    *)
(* resulting data feeds loop selection when the schedule is generated. *)
(* This format makes that workflow real for the CLI tools:             *)
(* janus_prof -o app.jpf, then janus_analyze --profile app.jpf.        *)
(* ------------------------------------------------------------------ *)

let jpf_magic = "JPF1"

let to_bytes (cov : coverage) (deps : deps) =
  let b = Buffer.create 256 in
  Buffer.add_string b jpf_magic;
  Buffer.add_int64_le b (Int64.of_int cov.total_insns);
  (* union of loop ids appearing in either profile *)
  let lids = Hashtbl.create 16 in
  Hashtbl.iter (fun lid _ -> Hashtbl.replace lids lid ()) cov.loops;
  Hashtbl.iter (fun lid _ -> Hashtbl.replace lids lid ()) deps.observed;
  Hashtbl.iter (fun lid _ -> Hashtbl.replace lids lid ()) deps.dep_found;
  let sorted =
    List.sort compare (Hashtbl.fold (fun lid () acc -> lid :: acc) lids [])
  in
  Buffer.add_int32_le b (Int32.of_int (List.length sorted));
  List.iter
    (fun lid ->
       let c = cov_of cov lid in
       Buffer.add_int32_le b (Int32.of_int lid);
       List.iter
         (fun v -> Buffer.add_int64_le b (Int64.of_int v))
         [ c.self_insns; c.invocations; c.iterations; c.ex_calls;
           c.ex_insns; c.ex_reads; c.ex_writes ];
       let flag tbl =
         if (try Hashtbl.find tbl lid with Not_found -> false) then 1 else 0
       in
       Buffer.add_char b (Char.chr (flag deps.observed lor (flag deps.dep_found lsl 1))))
    sorted;
  Buffer.to_bytes b

exception Bad_profile of string

let of_bytes bytes =
  let fail msg = raise (Bad_profile msg) in
  if Bytes.length bytes < 16 then fail "truncated header";
  if not (String.equal (Bytes.sub_string bytes 0 4) jpf_magic) then
    fail "bad magic";
  let total_insns = Int64.to_int (Bytes.get_int64_le bytes 4) in
  let count = Int32.to_int (Bytes.get_int32_le bytes 12) in
  let record = 4 + (7 * 8) + 1 in
  if Bytes.length bytes < 16 + (count * record) then fail "truncated records";
  let loops = Hashtbl.create (max 8 count) in
  let observed = Hashtbl.create (max 8 count) in
  let dep_found = Hashtbl.create (max 8 count) in
  for i = 0 to count - 1 do
    let off = 16 + (i * record) in
    let lid = Int32.to_int (Bytes.get_int32_le bytes off) in
    let field k = Int64.to_int (Bytes.get_int64_le bytes (off + 4 + (8 * k))) in
    Hashtbl.replace loops lid
      { self_insns = field 0; invocations = field 1; iterations = field 2;
        ex_calls = field 3; ex_insns = field 4; ex_reads = field 5;
        ex_writes = field 6 };
    let flags = Char.code (Bytes.get bytes (off + 4 + 56)) in
    if flags land 1 <> 0 then Hashtbl.replace observed lid true;
    if flags land 2 <> 0 then Hashtbl.replace dep_found lid true
  done;
  ({ total_insns; loops }, { dep_found; observed })

let save path cov deps =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc (to_bytes cov deps))

let load path =
  of_bytes
    (In_channel.with_open_bin path (fun ic ->
         Bytes.of_string (In_channel.input_all ic)))
