(** Statically-driven profiling (§II-C).

    The analyser's profiling rewrite schedules drive instrumentation
    inside the same DBM that later parallelises the program: only the
    loops of interest are instrumented, and for dependence profiling
    only the accesses the static pass could not disambiguate — not all
    loads and stores. *)

module Analysis = Janus_analysis.Analysis

(** Per-loop coverage counters from a training run. *)
type loop_cov = {
  mutable self_insns : int;   (** instructions attributed to this loop *)
  mutable invocations : int;
  mutable iterations : int;
  mutable ex_calls : int;     (** external (PLT) calls inside the loop *)
  mutable ex_insns : int;     (** instructions inside those calls *)
  mutable ex_reads : int;     (** their non-stack reads *)
  mutable ex_writes : int;
}

type coverage = {
  total_insns : int;
  loops : (int, loop_cov) Hashtbl.t;  (** loop id -> counters *)
}

(** Counters for a loop (zeros if never observed). *)
val cov_of : coverage -> int -> loop_cov

(** Fraction of all dynamic instructions spent inside a loop. *)
val fraction : coverage -> int -> float

(** Average iterations per invocation. *)
val avg_trip : coverage -> int -> float

(** Average instructions per invocation — the profitability signal
    behind the paper's "high invocation count" filter (§III-B). *)
val avg_work : coverage -> int -> float

(** The loop ids the coverage run observed, sorted ascending — the
    deterministic iteration order serialisers need (hashtable order is
    not canonical). *)
val loop_ids : coverage -> int list

(** Run the coverage-profiling schedule over a training input. [obs]
    attaches a tracing/metrics sink to the profiling DBM; profile-level
    [prof.*] counters are published into it after the run. *)
val run_coverage :
  ?fuel:int -> ?input:int64 list -> ?obs:Janus_obs.Obs.t ->
  Janus_vx.Image.t -> Analysis.t -> coverage

(** The shadow word-map behind dependence detection (§II-C): watched
    accesses are recorded word by word with the iteration that touched
    them; a word touched from two different iterations with at least
    one write is a cross-iteration dependence. Shared by the offline
    dependence profiler (iterations counted by ITER rules) and the
    runtime's training-free online sampler (iterations identified by
    the induction-variable value) — the map is agnostic to how the
    caller names iterations. *)
module Shadow : sig
  type t

  val create : unit -> t

  (** Forget all recorded words and any found dependence (fresh loop
      invocation). *)
  val reset : t -> unit

  (** Record one access of [bytes] bytes at [addr] during [iter]. *)
  val access : t -> iter:int -> addr:int -> bytes:int -> write:bool -> unit

  (** Has any cross-iteration dependence been seen since the last
      {!reset}? *)
  val found : t -> bool
end

(** Results of the memory-dependence profiling run. *)
type deps = {
  dep_found : (int, bool) Hashtbl.t;  (** loop id -> cross-iteration dep *)
  observed : (int, bool) Hashtbl.t;   (** loop id executed at all *)
}

val has_dep : deps -> int -> bool
val was_observed : deps -> int -> bool

(** The loop ids the dependence run touched (observed or flagged),
    sorted ascending. *)
val dep_loop_ids : deps -> int list

(** Run the dependence-profiling schedule: a per-loop shadow word-map
    flags accesses touching the same word in different iterations.
    [obs] is as in {!run_coverage}. *)
val run_dependence :
  ?fuel:int -> ?input:int64 list -> ?obs:Janus_obs.Obs.t ->
  Janus_vx.Image.t -> Analysis.t -> deps

(** {1 Profile serialisation (.jpf)}

    The paper's deployment profiles offline on a training input; the
    data feeds loop selection when the schedule is generated. These
    functions make that workflow real for the CLI tools
    ([janus_prof -o app.jpf] then [janus_analyze --profile app.jpf]). *)

exception Bad_profile of string

val to_bytes : coverage -> deps -> bytes

(** @raise Bad_profile on malformed input. *)
val of_bytes : bytes -> coverage * deps

(** Write both profiles to a [.jpf] file. *)
val save : string -> coverage -> deps -> unit

(** Read a [.jpf] file.
    @raise Bad_profile on malformed input. *)
val load : string -> coverage * deps
