(** Statically-driven profiling (§II-C).

    The analyser's profiling rewrite schedules drive instrumentation
    inside the same DBM that later parallelises the program: only the
    loops of interest are instrumented, and for dependence profiling
    only the accesses the static pass could not disambiguate — not all
    loads and stores. *)

module Analysis = Janus_analysis.Analysis

(** Per-loop coverage counters from a training run. *)
type loop_cov = {
  mutable self_insns : int;   (** instructions attributed to this loop *)
  mutable invocations : int;
  mutable iterations : int;
  mutable ex_calls : int;     (** external (PLT) calls inside the loop *)
  mutable ex_insns : int;     (** instructions inside those calls *)
  mutable ex_reads : int;     (** their non-stack reads *)
  mutable ex_writes : int;
}

type coverage = {
  total_insns : int;
  loops : (int, loop_cov) Hashtbl.t;  (** loop id -> counters *)
}

(** Counters for a loop (zeros if never observed). *)
val cov_of : coverage -> int -> loop_cov

(** Fraction of all dynamic instructions spent inside a loop. *)
val fraction : coverage -> int -> float

(** Average iterations per invocation. *)
val avg_trip : coverage -> int -> float

(** Average instructions per invocation — the profitability signal
    behind the paper's "high invocation count" filter (§III-B). *)
val avg_work : coverage -> int -> float

(** Run the coverage-profiling schedule over a training input. [obs]
    attaches a tracing/metrics sink to the profiling DBM; profile-level
    [prof.*] counters are published into it after the run. *)
val run_coverage :
  ?fuel:int -> ?input:int64 list -> ?obs:Janus_obs.Obs.t ->
  Janus_vx.Image.t -> Analysis.t -> coverage

(** Results of the memory-dependence profiling run. *)
type deps = {
  dep_found : (int, bool) Hashtbl.t;  (** loop id -> cross-iteration dep *)
  observed : (int, bool) Hashtbl.t;   (** loop id executed at all *)
}

val has_dep : deps -> int -> bool
val was_observed : deps -> int -> bool

(** Run the dependence-profiling schedule: a per-loop shadow word-map
    flags accesses touching the same word in different iterations.
    [obs] is as in {!run_coverage}. *)
val run_dependence :
  ?fuel:int -> ?input:int64 list -> ?obs:Janus_obs.Obs.t ->
  Janus_vx.Image.t -> Analysis.t -> deps

(** {1 Profile serialisation (.jpf)}

    The paper's deployment profiles offline on a training input; the
    data feeds loop selection when the schedule is generated. These
    functions make that workflow real for the CLI tools
    ([janus_prof -o app.jpf] then [janus_analyze --profile app.jpf]). *)

exception Bad_profile of string

val to_bytes : coverage -> deps -> bytes

(** @raise Bad_profile on malformed input. *)
val of_bytes : bytes -> coverage * deps

(** Write both profiles to a [.jpf] file. *)
val save : string -> coverage -> deps -> unit

(** Read a [.jpf] file.
    @raise Bad_profile on malformed input. *)
val load : string -> coverage * deps
