(** janus_pgo: persistent fleet-scale profile-guided optimisation.

    The paper's loop is profile-guided but train-once: a single
    training run fixes the dependence verdicts forever, and the online
    governor's evidence (demotions, abort rates, realised work) dies
    with the process. This module closes the loop: every run — an
    offline profiler training run, a governed production run, or a
    fuzzer kernel acting as one member of an input fleet — exports its
    per-loop ledger as a {e run entry}; entries accumulate in a
    versioned on-disk store keyed by image digest; a commutative,
    associative, idempotent merge folds any number of runs into one
    aggregate; and the aggregate feeds the pipeline's select stage as
    {!Janus_core.Pipeline.evidence}, re-deriving schedules whenever the
    merged evidence shifts a verdict. {!Iterate} drives the cycle to a
    fixed point: run, collect, merge, re-schedule, until the schedule
    digest is stable or the improvement drops below a threshold.

    Merge is a set union over content-addressed run entries (a run's id
    is the digest of its canonical encoding), so aggregation over a
    fleet is deterministic in any arrival order and re-ingesting a
    profile is a no-op — the properties the test suite proves with
    QCheck. *)

module Profiler = Janus_profile.Profiler
module Adapt = Janus_adapt.Adapt
module Pipeline = Janus_core.Pipeline
module Janus = Janus_core.Janus
module Image = Janus_vx.Image

(** {1 Run entries and profiles} *)

(** Where a run entry's numbers came from. [Training] and [Fleet]
    entries carry profiler coverage and are the only contributors to
    the aggregate's coverage sums; [Governed] entries carry the online
    governor's ledger (checks, STM, fallbacks, demotions) and
    contribute dependence and suspicion evidence only. *)
type source = Training | Fleet | Governed

val source_name : source -> string

(** Per-loop ledger of one run: coverage counters (profiler runs),
    dependence observations, and the governor's check/STM/abort/
    fallback statistics with its realised-work and demotion history
    (governed runs). Absent facets are zero. *)
type ledger = {
  l_lid : int;
  l_self_insns : int;
  l_invocations : int;
  l_iterations : int;
  l_observed : bool;       (** dependence instrumentation saw the loop *)
  l_dep : bool;            (** cross-iteration dependence observed *)
  l_checks_passed : int;
  l_checks_failed : int;   (** each one is a proven runtime overlap *)
  l_commits : int;
  l_aborts : int;
  l_fallbacks : int;
  l_par_work : int;        (** realised worker cycles *)
  l_par_cost : int;        (** main-thread cycles those runs paid *)
  l_demotions : int;
  l_promotions : int;
  l_sampled_dep : bool;    (** online shadow-memory sample saw a dep *)
}

(** One run's export. [run_id] is the hex digest of the entry's
    canonical encoding — content addressing is what makes the merge a
    set union. *)
type run = private {
  run_id : string;
  r_source : source;
  r_input : string;        (** input key, e.g. ["250"]; informational *)
  r_total_insns : int;
  r_loops : ledger list;   (** sorted by [l_lid] *)
}

(** All evidence ever gathered for one binary. *)
type t = {
  p_image : string;        (** {!Pipeline.image_key} of the binary *)
  p_runs : run list;       (** sorted by [run_id], no duplicates *)
}

val empty : string -> t

(** Total run entries. *)
val runs : t -> int

(** {1 Constructors} *)

(** Normalise ledgers (sort by lid, drop duplicates keeping the first)
    and mint the content-addressed [run_id]. *)
val make_run :
  source:source -> input:string -> total_insns:int -> ledger list -> run

(** A run entry from an offline profiler run (training or fleet). *)
val run_of_profile :
  source:source ->
  input:string ->
  coverage:Profiler.coverage option ->
  deps:Profiler.deps option ->
  run

(** A run entry from a governed run's ledger — the {!Adapt} export
    hook. [total_insns] is the run's dynamic instruction count. *)
val run_of_governor :
  input:string -> total_insns:int -> Adapt.loop_stats list -> run

(** Insert a run (no-op if an entry with the same [run_id] exists). *)
val add : t -> run -> t

(** {1 Merge}

    [merge a b] unions the run sets. Commutative, associative and
    idempotent by construction (runs are content-addressed and kept
    sorted), so fleet aggregation is deterministic in any order.
    @raise Invalid_argument when the image digests differ. *)
val merge : t -> t -> t

val equal : t -> t -> bool

(** {1 The aggregate view} *)

type verdict =
  | V_parallel   (** observed, never a dependence: safe to speculate *)
  | V_dep        (** pessimistic join: {e some} run saw a dependence
                     (profiled, sampled, or a failed bounds check) *)
  | V_unobserved

val verdict_name : verdict -> string

(** Invocation-weighted totals for one loop across every run. *)
type agg = {
  a_lid : int;
  a_runs : int;            (** run entries mentioning this loop *)
  a_invocations : int;
  a_iterations : int;
  a_self_insns : int;
  a_checks_failed : int;
  a_fallbacks : int;
  a_demotions : int;
  a_par_work : int;
  a_par_cost : int;
  a_verdict : verdict;
  a_suspect : bool;        (** governor history: demoted or failed
                               checks in some run *)
}

(** Per-loop aggregates, sorted by loop id. *)
val aggregate : t -> agg list

(** The aggregate as pipeline evidence: summed coverage over the
    profiler-sourced runs, the pessimistic dependence verdicts, the
    suspect list, and the generation digest (the digest of the profile's
    canonical encoding — equal profiles yield equal generations, so
    schedule caches keyed on it stay warm exactly while the evidence is
    unchanged). Profiles with no profiler-sourced runs yield
    [ev_coverage = None]. *)
val evidence : t -> Pipeline.evidence

(** The generation digest alone. *)
val generation : t -> string

(** {1 The versioned codec (.jprof)}

    Layout mirrors the artifact store's [.jart] entries:
    {v JPROF1\n <build version>\n <image digest>\n <payload md5>\n
       <len>\n <payload> v}
    The payload is a hand-rolled binary encoding of the run set in
    canonical order, so [to_bytes] is deterministic and
    [of_bytes (to_bytes p) = p]. *)

exception Bad_profile of string

val to_bytes : t -> bytes

(** @raise Bad_profile on bad magic, stale build version, digest or
    length mismatch, truncation, or malformed payload. *)
val of_bytes : bytes -> t

(** {1 The persistent store}

    One [.jprof] file per image digest under a directory shared by any
    number of producers. [save] is read-merge-write with an atomic
    rename, so a reader never sees a torn file; a corrupt, truncated or
    wrong-version file is counted under {!Store.errors}, treated
    exactly as if absent, and overwritten (repaired) by the next
    [save]. *)
module Store : sig
  type profile := t

  type t

  (** Open (creating if missing) the store rooted at a directory. *)
  val open_ : string -> t

  val dir : t -> string

  (** The merged profile for one image, or [None] when nothing valid
      is stored. *)
  val load : t -> image:string -> profile option

  (** Merge [profile] with what is stored for its image and persist the
      union; returns the merged profile. *)
  val save : t -> profile -> profile

  (** Run entries stored for one image (0 when absent). *)
  val runs : t -> image:string -> int

  (** Malformed or stale-version files seen so far (each treated as
      absent — published as the [pgo.store.errors] counter). *)
  val errors : t -> int

  (** Evidence for one image, if any profile is stored. *)
  val evidence_for : t -> image:string -> Pipeline.evidence option

  (** Delete stored profiles oldest-mtime-first: those beyond
      [max_age] seconds, then the oldest until the directory fits
      [max_bytes]. Files this process wrote are never deleted. Returns
      the number of files removed. *)
  val prune : ?max_age:int -> ?max_bytes:int -> t -> int
end

(** {1 Collection}

    One profiler pass over [image] on [input]: coverage plus
    dependence run, folded into a {!run} and saved. Returns the merged
    profile. *)
val collect :
  ?fuel:int ->
  ?source:source ->
  store:Store.t ->
  input:int64 list ->
  Image.t ->
  t

(** Export a governed run's ledger ({!Janus.result} with a governor)
    into the store; [None] when the run carried no governor. *)
val collect_governed :
  store:Store.t -> input:int64 list -> Image.t -> Janus.result -> t option

(** {1 The iterate-until-converged driver} *)

module Iterate : sig
  (** One round's record. Round 0 is the train-once baseline (no
      evidence); later rounds prepare from the store's aggregate. *)
  type round = {
    rd_round : int;
    rd_cycles : int;
    rd_schedule_md5 : string;
    rd_selected : int list;     (** loop ids the schedule parallelises *)
    rd_flipped : (int * verdict) list;
        (** loops whose dependence verdict changed vs the previous
            round's evidence *)
    rd_runs : int;              (** store entries after collection *)
    rd_generation : string;     (** evidence generation ("-" round 0) *)
  }

  type outcome = {
    o_rounds : round list;      (** in round order *)
    o_converged : bool;
    o_baseline_cycles : int;    (** round 0 = train-once *)
    o_final_cycles : int;
  }

  val pp_round : Format.formatter -> round -> unit

  (** Run → collect → merge → re-derive until the schedule digest is
      stable across consecutive rounds or the cycle improvement falls
      below [threshold] percent (default 0.5), up to [max_rounds]
      (default 6) evidence-fed rounds after the baseline. [fleet] is
      the input fleet profiled each round (each becomes one run entry —
      content addressing makes re-collection idempotent); [input] is
      the measured reference input; [log] receives one line per round.
      The pipeline store shares analysis artifacts across rounds. *)
  val run :
    ?cfg:Janus.config ->
    ?fuel:int ->
    ?max_rounds:int ->
    ?threshold:float ->
    ?log:(string -> unit) ->
    ?pipeline_store:Pipeline.store ->
    store:Store.t ->
    train_input:int64 list ->
    fleet:int64 list list ->
    input:int64 list ->
    Image.t ->
    outcome
end
