module Profiler = Janus_profile.Profiler
module Adapt = Janus_adapt.Adapt
module Pipeline = Janus_core.Pipeline
module Janus = Janus_core.Janus
module Image = Janus_vx.Image
module Schedule = Janus_schedule.Schedule
module Version = Janus_core.Version

type source = Training | Fleet | Governed

let source_name = function
  | Training -> "training"
  | Fleet -> "fleet"
  | Governed -> "governed"

let source_tag = function Training -> 0 | Fleet -> 1 | Governed -> 2

type ledger = {
  l_lid : int;
  l_self_insns : int;
  l_invocations : int;
  l_iterations : int;
  l_observed : bool;
  l_dep : bool;
  l_checks_passed : int;
  l_checks_failed : int;
  l_commits : int;
  l_aborts : int;
  l_fallbacks : int;
  l_par_work : int;
  l_par_cost : int;
  l_demotions : int;
  l_promotions : int;
  l_sampled_dep : bool;
}

let zero_ledger lid =
  {
    l_lid = lid;
    l_self_insns = 0;
    l_invocations = 0;
    l_iterations = 0;
    l_observed = false;
    l_dep = false;
    l_checks_passed = 0;
    l_checks_failed = 0;
    l_commits = 0;
    l_aborts = 0;
    l_fallbacks = 0;
    l_par_work = 0;
    l_par_cost = 0;
    l_demotions = 0;
    l_promotions = 0;
    l_sampled_dep = false;
  }

type run = {
  run_id : string;
  r_source : source;
  r_input : string;
  r_total_insns : int;
  r_loops : ledger list;
}

type t = { p_image : string; p_runs : run list }

let empty image = { p_image = image; p_runs = [] }
let runs t = List.length t.p_runs

(* ------------------------------------------------------------------ *)
(* Canonical binary encoding.  The run body below is the unit of
   content addressing: [run_id] is its digest, so decode-then-encode
   must reproduce the bytes exactly (ledgers are kept sorted by lid,
   runs sorted by id). *)

exception Bad_profile of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_profile s)) fmt

let wu8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))
let wu32 buf v = Buffer.add_int32_le buf (Int32.of_int v)
let wu64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

let wstr buf s =
  wu32 buf (String.length s);
  Buffer.add_string buf s

let ru8 b pos =
  if !pos + 1 > Bytes.length b then bad "truncated payload (u8 at %d)" !pos;
  let v = Char.code (Bytes.get b !pos) in
  incr pos;
  v

let ru32 b pos =
  if !pos + 4 > Bytes.length b then bad "truncated payload (u32 at %d)" !pos;
  let v = Int32.to_int (Bytes.get_int32_le b !pos) land 0xffffffff in
  pos := !pos + 4;
  v

let ru64 b pos =
  if !pos + 8 > Bytes.length b then bad "truncated payload (u64 at %d)" !pos;
  let v = Bytes.get_int64_le b !pos in
  pos := !pos + 8;
  (match Int64.unsigned_to_int v with
  | Some i -> i
  | None -> bad "counter overflows the host int at %d" !pos)

let rstr b pos =
  let n = ru32 b pos in
  if !pos + n > Bytes.length b then bad "truncated payload (string at %d)" !pos;
  let s = Bytes.sub_string b !pos n in
  pos := !pos + n;
  s

let encode_ledger buf l =
  wu32 buf l.l_lid;
  wu64 buf l.l_self_insns;
  wu64 buf l.l_invocations;
  wu64 buf l.l_iterations;
  wu64 buf l.l_checks_passed;
  wu64 buf l.l_checks_failed;
  wu64 buf l.l_commits;
  wu64 buf l.l_aborts;
  wu64 buf l.l_fallbacks;
  wu64 buf l.l_par_work;
  wu64 buf l.l_par_cost;
  wu64 buf l.l_demotions;
  wu64 buf l.l_promotions;
  let flags =
    (if l.l_observed then 1 else 0)
    lor (if l.l_dep then 2 else 0)
    lor if l.l_sampled_dep then 4 else 0
  in
  wu8 buf flags

let decode_ledger b pos =
  let l_lid = ru32 b pos in
  let l_self_insns = ru64 b pos in
  let l_invocations = ru64 b pos in
  let l_iterations = ru64 b pos in
  let l_checks_passed = ru64 b pos in
  let l_checks_failed = ru64 b pos in
  let l_commits = ru64 b pos in
  let l_aborts = ru64 b pos in
  let l_fallbacks = ru64 b pos in
  let l_par_work = ru64 b pos in
  let l_par_cost = ru64 b pos in
  let l_demotions = ru64 b pos in
  let l_promotions = ru64 b pos in
  let flags = ru8 b pos in
  if flags land (lnot 7) <> 0 then bad "unknown ledger flags 0x%x" flags;
  {
    l_lid;
    l_self_insns;
    l_invocations;
    l_iterations;
    l_observed = flags land 1 <> 0;
    l_dep = flags land 2 <> 0;
    l_checks_passed;
    l_checks_failed;
    l_commits;
    l_aborts;
    l_fallbacks;
    l_par_work;
    l_par_cost;
    l_demotions;
    l_promotions;
    l_sampled_dep = flags land 4 <> 0;
  }

let encode_run_body r =
  let buf = Buffer.create 256 in
  wu8 buf (source_tag r.r_source);
  wstr buf r.r_input;
  wu64 buf r.r_total_insns;
  wu32 buf (List.length r.r_loops);
  List.iter (encode_ledger buf) r.r_loops;
  Buffer.to_bytes buf

let make_run ~source ~input ~total_insns loops =
  let loops =
    List.sort_uniq (fun a b -> compare a.l_lid b.l_lid) loops
  in
  let r =
    { run_id = ""; r_source = source; r_input = input;
      r_total_insns = total_insns; r_loops = loops }
  in
  { r with run_id = Digest.to_hex (Digest.bytes (encode_run_body r)) }

let decode_run b pos =
  let src =
    match ru8 b pos with
    | 0 -> Training
    | 1 -> Fleet
    | 2 -> Governed
    | n -> bad "unknown run source tag %d" n
  in
  let input = rstr b pos in
  let total = ru64 b pos in
  let nloops = ru32 b pos in
  if nloops > 1_000_000 then bad "implausible loop count %d" nloops;
  let loops = List.init nloops (fun _ -> decode_ledger b pos) in
  make_run ~source:src ~input ~total_insns:total loops

(* ------------------------------------------------------------------ *)
(* Constructors *)

let run_of_profile ~source ~input ~coverage ~deps =
  let cov_ids =
    match coverage with Some c -> Profiler.loop_ids c | None -> []
  in
  let dep_ids = match deps with Some d -> Profiler.dep_loop_ids d | None -> [] in
  let lids = List.sort_uniq compare (cov_ids @ dep_ids) in
  let ledger lid =
    let z = zero_ledger lid in
    let z =
      match coverage with
      | None -> z
      | Some c ->
        let cv = Profiler.cov_of c lid in
        { z with
          l_self_insns = cv.Profiler.self_insns;
          l_invocations = cv.Profiler.invocations;
          l_iterations = cv.Profiler.iterations }
    in
    match deps with
    | None -> z
    | Some d ->
      { z with
        l_observed = Profiler.was_observed d lid;
        l_dep = Profiler.has_dep d lid }
  in
  let total = match coverage with Some c -> c.Profiler.total_insns | None -> 0 in
  make_run ~source ~input ~total_insns:total (List.map ledger lids)

let run_of_governor ~input ~total_insns stats =
  let ledger (s : Adapt.loop_stats) =
    { (zero_ledger s.Adapt.loop_id) with
      l_invocations = s.Adapt.invocations;
      l_observed = s.Adapt.samples > 0;
      l_checks_passed = s.Adapt.checks_passed;
      l_checks_failed = s.Adapt.checks_failed;
      l_commits = s.Adapt.commits;
      l_aborts = s.Adapt.aborts;
      l_fallbacks = s.Adapt.fallbacks;
      l_par_work = s.Adapt.par_work;
      l_par_cost = s.Adapt.par_cost;
      l_demotions = s.Adapt.demotions;
      l_promotions = s.Adapt.promotions;
      l_sampled_dep = s.Adapt.sampled_dep }
  in
  make_run ~source:Governed ~input ~total_insns (List.map ledger stats)

let sort_runs rs =
  List.sort_uniq (fun a b -> compare a.run_id b.run_id) rs

let add t r = { t with p_runs = sort_runs (r :: t.p_runs) }

let merge a b =
  if not (String.equal a.p_image b.p_image) then
    invalid_arg
      (Printf.sprintf "Pgo.merge: profiles for different images (%s vs %s)"
         a.p_image b.p_image);
  { p_image = a.p_image; p_runs = sort_runs (a.p_runs @ b.p_runs) }

let equal a b = a = b

(* ------------------------------------------------------------------ *)
(* Aggregation *)

type verdict = V_parallel | V_dep | V_unobserved

let verdict_name = function
  | V_parallel -> "parallel"
  | V_dep -> "dep"
  | V_unobserved -> "unobserved"

type agg = {
  a_lid : int;
  a_runs : int;
  a_invocations : int;
  a_iterations : int;
  a_self_insns : int;
  a_checks_failed : int;
  a_fallbacks : int;
  a_demotions : int;
  a_par_work : int;
  a_par_cost : int;
  a_verdict : verdict;
  a_suspect : bool;
}

let ledger_dep l = l.l_dep || l.l_sampled_dep || l.l_checks_failed > 0

let aggregate t =
  let tbl : (int, agg) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      List.iter
        (fun l ->
          let a =
            match Hashtbl.find_opt tbl l.l_lid with
            | Some a -> a
            | None ->
              { a_lid = l.l_lid; a_runs = 0; a_invocations = 0;
                a_iterations = 0; a_self_insns = 0; a_checks_failed = 0;
                a_fallbacks = 0; a_demotions = 0; a_par_work = 0;
                a_par_cost = 0; a_verdict = V_unobserved; a_suspect = false }
          in
          let verdict =
            if ledger_dep l || a.a_verdict = V_dep then V_dep
            else if l.l_observed || a.a_verdict = V_parallel then V_parallel
            else V_unobserved
          in
          Hashtbl.replace tbl l.l_lid
            { a with
              a_runs = a.a_runs + 1;
              a_invocations = a.a_invocations + l.l_invocations;
              a_iterations = a.a_iterations + l.l_iterations;
              a_self_insns = a.a_self_insns + l.l_self_insns;
              a_checks_failed = a.a_checks_failed + l.l_checks_failed;
              a_fallbacks = a.a_fallbacks + l.l_fallbacks;
              a_demotions = a.a_demotions + l.l_demotions;
              a_par_work = a.a_par_work + l.l_par_work;
              a_par_cost = a.a_par_cost + l.l_par_cost;
              a_verdict = verdict;
              a_suspect =
                a.a_suspect || l.l_demotions > 0 || l.l_checks_failed > 0 })
        r.r_loops)
    t.p_runs;
  Hashtbl.fold (fun _ a acc -> a :: acc) tbl []
  |> List.sort (fun a b -> compare a.a_lid b.a_lid)

(* ------------------------------------------------------------------ *)
(* The versioned codec *)

let magic = "JPROF1"

let to_bytes t =
  let payload = Buffer.create 1024 in
  wu32 payload (List.length t.p_runs);
  List.iter
    (fun r -> Buffer.add_bytes payload (encode_run_body r))
    t.p_runs;
  let payload = Buffer.contents payload in
  let header =
    Printf.sprintf "%s\n%s\n%s\n%s\n%d\n" magic Version.version t.p_image
      (Digest.to_hex (Digest.string payload))
      (String.length payload)
  in
  Bytes.of_string (header ^ payload)

let of_bytes b =
  let pos = ref 0 in
  let line what =
    match Bytes.index_from_opt b !pos '\n' with
    | None -> bad "truncated header (%s)" what
    | Some nl ->
      let s = Bytes.sub_string b !pos (nl - !pos) in
      pos := nl + 1;
      s
  in
  let m = line "magic" in
  if not (String.equal m magic) then bad "bad magic %S" m;
  let v = line "version" in
  if not (String.equal v Version.version) then
    bad "version %s (this build writes %s)" v Version.version;
  let image = line "image" in
  let md5 = line "digest" in
  let len =
    match int_of_string_opt (line "length") with
    | Some n when n >= 0 -> n
    | _ -> bad "bad payload length"
  in
  if !pos + len <> Bytes.length b then
    bad "payload length %d does not match file size" len;
  let payload = Bytes.sub b !pos len in
  if not (String.equal md5 (Digest.to_hex (Digest.bytes payload))) then
    bad "payload digest mismatch";
  let pos = ref 0 in
  let nruns = ru32 payload pos in
  if nruns > 1_000_000 then bad "implausible run count %d" nruns;
  let runs = List.init nruns (fun _ -> decode_run payload pos) in
  if !pos <> len then bad "trailing bytes after run %d" nruns;
  { p_image = image; p_runs = sort_runs runs }

(* ------------------------------------------------------------------ *)
(* Evidence *)

let generation t = Digest.to_hex (Digest.bytes (to_bytes t))

let profiler_sourced r =
  match r.r_source with Training | Fleet -> true | Governed -> false

let evidence t =
  let prof_runs = List.filter profiler_sourced t.p_runs in
  let coverage =
    if prof_runs = [] then None
    else begin
      let loops : (int, Profiler.loop_cov) Hashtbl.t = Hashtbl.create 16 in
      let total = ref 0 in
      List.iter
        (fun r ->
          total := !total + r.r_total_insns;
          List.iter
            (fun l ->
              match Hashtbl.find_opt loops l.l_lid with
              | Some cv ->
                cv.Profiler.self_insns <-
                  cv.Profiler.self_insns + l.l_self_insns;
                cv.Profiler.invocations <-
                  cv.Profiler.invocations + l.l_invocations;
                cv.Profiler.iterations <-
                  cv.Profiler.iterations + l.l_iterations
              | None ->
                Hashtbl.replace loops l.l_lid
                  { Profiler.self_insns = l.l_self_insns;
                    invocations = l.l_invocations;
                    iterations = l.l_iterations;
                    ex_calls = 0; ex_insns = 0; ex_reads = 0; ex_writes = 0 })
            r.r_loops)
        prof_runs;
      Some { Profiler.total_insns = !total; loops }
    end
  in
  let aggs = aggregate t in
  let deps =
    let dep_found : (int, bool) Hashtbl.t = Hashtbl.create 16 in
    let observed : (int, bool) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun a ->
        match a.a_verdict with
        | V_dep ->
          Hashtbl.replace dep_found a.a_lid true;
          Hashtbl.replace observed a.a_lid true
        | V_parallel -> Hashtbl.replace observed a.a_lid true
        | V_unobserved -> ())
      aggs;
    { Profiler.dep_found; observed }
  in
  {
    Pipeline.ev_coverage = coverage;
    ev_deps = Some deps;
    ev_suspect =
      List.filter_map (fun a -> if a.a_suspect then Some a.a_lid else None)
        aggs;
    ev_generation = generation t;
  }

(* ------------------------------------------------------------------ *)
(* The persistent store *)

module Store = struct
  type t = {
    sd : string;
    mu : Mutex.t;
    mutable errs : int;
    written : (string, unit) Hashtbl.t;  (* live paths, never pruned *)
  }

  let rec mkdir_p d =
    if d <> "" && not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end

  let open_ dir =
    mkdir_p dir;
    { sd = dir; mu = Mutex.create (); errs = 0; written = Hashtbl.create 8 }

  let dir t = t.sd
  let path t image = Filename.concat t.sd (image ^ ".jprof")

  let read_file p =
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        let b = Bytes.create n in
        really_input ic b 0 n;
        b)

  (* Unlocked: callers hold [mu]. *)
  let load_at t ~image p =
    if not (Sys.file_exists p) then None
    else
      match of_bytes (read_file p) with
      | prof when String.equal prof.p_image image -> Some prof
      | _ ->
        (* a valid file filed under the wrong name is as useless as a
           corrupt one *)
        t.errs <- t.errs + 1;
        None
      | exception Bad_profile _ ->
        t.errs <- t.errs + 1;
        None
      | exception Sys_error _ ->
        t.errs <- t.errs + 1;
        None

  let load t ~image =
    Mutex.lock t.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mu)
      (fun () -> load_at t ~image (path t image))

  let save t prof =
    Mutex.lock t.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mu)
      (fun () ->
        let p = path t prof.p_image in
        let merged =
          match load_at t ~image:prof.p_image p with
          | Some existing -> merge existing prof
          | None -> prof
        in
        let tmp = Printf.sprintf "%s.%d.tmp" p (Unix.getpid ()) in
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_bytes oc (to_bytes merged));
        Sys.rename tmp p;
        Hashtbl.replace t.written p ();
        merged)

  let runs t ~image = match load t ~image with None -> 0 | Some p -> runs p
  let errors t = t.errs
  let evidence_for t ~image = Option.map evidence (load t ~image)

  let prune ?max_age ?max_bytes t =
    Mutex.lock t.mu;
    let protect p = Hashtbl.mem t.written p in
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mu)
      (fun () ->
        Pipeline.prune_dir ?max_age ?max_bytes ~protect ~exts:[ ".jprof" ]
          t.sd)
end

(* ------------------------------------------------------------------ *)
(* Collection *)

let input_key input = String.concat "," (List.map Int64.to_string input)

let collect ?fuel ?(source = Fleet) ~store ~input image =
  let analysis = Pipeline.analyse image in
  let coverage = Profiler.run_coverage ?fuel ~input image analysis in
  let deps = Profiler.run_dependence ?fuel ~input image analysis in
  let run =
    run_of_profile ~source ~input:(input_key input) ~coverage:(Some coverage)
      ~deps:(Some deps)
  in
  let image_k = Pipeline.image_key image in
  Store.save store (add (empty image_k) run)

let collect_governed ~store ~input image (res : Janus.result) =
  match res.Janus.governor with
  | None -> None
  | Some g ->
    let run =
      run_of_governor ~input:(input_key input) ~total_insns:res.Janus.icount
        (Adapt.snapshot g)
    in
    let image_k = Pipeline.image_key image in
    Some (Store.save store (add (empty image_k) run))

(* ------------------------------------------------------------------ *)
(* Iterate until converged *)

module Iterate = struct
  type round = {
    rd_round : int;
    rd_cycles : int;
    rd_schedule_md5 : string;
    rd_selected : int list;
    rd_flipped : (int * verdict) list;
    rd_runs : int;
    rd_generation : string;
  }

  type outcome = {
    o_rounds : round list;
    o_converged : bool;
    o_baseline_cycles : int;
    o_final_cycles : int;
  }

  let pp_round ppf r =
    Format.fprintf ppf "round=%d cycles=%d schedule=%s selected=[%s] flipped=%d%s runs=%d gen=%s"
      r.rd_round r.rd_cycles r.rd_schedule_md5
      (String.concat "," (List.map string_of_int r.rd_selected))
      (List.length r.rd_flipped)
      (match r.rd_flipped with
      | [] -> ""
      | fs ->
        Printf.sprintf "[%s]"
          (String.concat ","
             (List.map
                (fun (lid, v) -> Printf.sprintf "%d:%s" lid (verdict_name v))
                fs)))
      r.rd_runs r.rd_generation

  (* The dependence verdicts a round's selection consumed: from the
     training profile at round 0, from the store aggregate after. *)
  let training_verdicts (prep : Janus.prepared) =
    match prep.Janus.p_deps with
    | None -> []
    | Some d ->
      List.map
        (fun lid ->
          ( lid,
            if Profiler.has_dep d lid then V_dep
            else if Profiler.was_observed d lid then V_parallel
            else V_unobserved ))
        (Profiler.dep_loop_ids d)

  let profile_verdicts p =
    List.map (fun a -> (a.a_lid, a.a_verdict)) (aggregate p)

  let flips prev cur =
    let look lid vs =
      match List.assoc_opt lid vs with Some v -> v | None -> V_unobserved
    in
    let lids =
      List.sort_uniq compare (List.map fst prev @ List.map fst cur)
    in
    List.filter_map
      (fun lid ->
        let v = look lid cur in
        if v = look lid prev then None else Some (lid, v))
      lids

  let run ?(cfg = Janus.config ()) ?fuel ?(max_rounds = 6) ?(threshold = 0.5)
      ?(log = fun _ -> ()) ?pipeline_store ~store ~train_input ~fleet ~input
      image =
    let pstore =
      match pipeline_store with Some s -> s | None -> Pipeline.store ()
    in
    let image_k = Pipeline.image_key image in
    let finish ~converged acc =
      let rounds = List.rev acc in
      let first = List.hd rounds in
      let last = List.hd acc in
      {
        o_rounds = rounds;
        o_converged = converged;
        o_baseline_cycles = first.rd_cycles;
        o_final_cycles = last.rd_cycles;
      }
    in
    let rec go n prev_verdicts ~prev_md5 ~prev_cycles acc =
      let stored = if n = 0 then None else Store.load store ~image:image_k in
      let ev = Option.map evidence stored in
      let prep = Janus.prepare ~cfg ~train_input ?evidence:ev ~store:pstore image in
      let res = Janus.run_parallel ~cfg ~input prep in
      List.iter
        (fun fi -> ignore (collect ?fuel ~source:Fleet ~store ~input:fi image))
        fleet;
      ignore (collect_governed ~store ~input image res);
      let cur_verdicts =
        match stored with
        | Some p -> profile_verdicts p
        | None -> training_verdicts prep
      in
      let md5 =
        Digest.to_hex (Digest.bytes (Schedule.to_bytes prep.Janus.p_schedule))
      in
      let rd =
        {
          rd_round = n;
          rd_cycles = res.Janus.cycles;
          rd_schedule_md5 = md5;
          rd_selected = res.Janus.selected_loops;
          rd_flipped = (if n = 0 then [] else flips prev_verdicts cur_verdicts);
          rd_runs = Store.runs store ~image:image_k;
          rd_generation =
            (match stored with Some p -> generation p | None -> "-");
        }
      in
      log (Format.asprintf "%a" pp_round rd);
      let acc = rd :: acc in
      if n > 0 && String.equal md5 prev_md5 then finish ~converged:true acc
      else if
        n > 0
        && float_of_int (prev_cycles - res.Janus.cycles)
           *. 100.0
           /. float_of_int (max 1 prev_cycles)
           < threshold
      then finish ~converged:true acc
      else if n >= max_rounds then finish ~converged:false acc
      else
        go (n + 1) cur_verdicts ~prev_md5:md5 ~prev_cycles:res.Janus.cycles acc
    in
    go 0 [] ~prev_md5:"" ~prev_cycles:0 []
end
