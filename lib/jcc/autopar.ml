(** Compiler auto-parallelisation (the gcc [-ftree-parallelize-loops=N]
    / [icc -parallel] analogues of Fig. 11).

    A provably independent counted loop is outlined into a worker
    function [f$parK(lo, hi)]; live-in scalars are passed through a
    static capture area (as gcc's omp outlining does via a struct); the
    loop itself becomes a [__par_for] runtime call. The gcc profile
    requires source-provable independence (global arrays only); the icc
    profile also accepts two-pointer loops behind a runtime overlap
    check. *)

open Janus_vx
open Mir

module IS = Unroll.IS

(* candidate analysis mirrors the vectoriser's but permits any element
   type and integer arithmetic in the body *)
let analyse (u : unit_) iv body =
  let affine = Vectorize.affine_indices iv body in
  let stride1 a = Vectorize.stride1_disp affine a <> None in
  let ok = ref true in
  let stores = ref [] in
  let loads = ref [] in
  let defs = ref IS.empty in
  List.iter
    (fun i ->
       (match i with
        | Iload (_, _, a) ->
          if stride1 a then loads := a :: !loads
          else if a.aindex = None && a.abase <> Some (Ov iv) then
            loads := a :: !loads
          else ok := false
        | Istore (_, a, _) ->
          if stride1 a then stores := a :: !stores else ok := false
        | Ibin _ | Ifbin _ | Imov _ | Icmpset _ | Icvt_i2f _ | Icvt_f2i _ -> ()
        | Icall _ | Ipar_for _ | Ivload _ | Ivstore _ | Ivbin _ | Ivbcast _ ->
          ok := false);
       List.iter (fun d -> defs := IS.add d !defs) (inst_defs i))
    body.insts;
  let ndisp a = Option.value ~default:a.adisp (Vectorize.stride1_disp affine a) in
  (* reject reductions (defs of live-in vregs other than pure temps) *)
  let livein = Unroll.live_in_defs body in
  if not (IS.is_empty (IS.inter livein !defs)) then ok := false;
  if not !ok then None
  else begin
    let needs_check = ref false in
    let disjoint_ok (sa : addr) (oa : addr) =
      match sa.abase, oa.abase with
      | None, None ->
        let so = Vectorize.owner_global u sa.adisp
        and oo = Vectorize.owner_global u oa.adisp in
        (match so, oo with
         | Some (a, _), Some (b, _) when String.equal a b ->
           (* same array: only identical stride-1 displacement is safe *)
           ndisp oa = ndisp sa
         | _ -> true)
      | Some p, Some q ->
        if p = q then ndisp oa = ndisp sa else (needs_check := true; true)
      | _ -> needs_check := true; true
    in
    let all_ok =
      List.for_all
        (fun sa ->
           List.for_all (disjoint_ok sa) !loads
           && List.for_all
                (fun sa2 -> sa2 == sa || disjoint_ok sa sa2)
                !stores)
        !stores
    in
    if all_ok then Some !needs_check else None
  end

(* live-in vregs of the body other than the IV *)
let captures iv body =
  IS.elements (IS.remove iv (Unroll.live_in_defs body))

let outline ~counter (u : unit_) (caller : fn) l iv bound body threads =
  let id = !counter in
  incr counter;
  let fname = Printf.sprintf "%s$par%d" caller.name id in
  let caps = captures iv body in
  (* capture area in bss *)
  let cap_base = Layout.bss_base + u.bss_bytes in
  u.bss_bytes <- u.bss_bytes + (8 * max 1 (List.length caps));
  u.global_addrs <-
    (Printf.sprintf "%s$cap" fname, cap_base) :: u.global_addrs;
  (* build the worker function *)
  let wf =
    {
      name = fname;
      params = [];
      ret_ty = None;
      blocks = [];
      nv = 0;
      vtypes = Array.make 16 I64;
      entry = 0;
      loops = [];
      next_bid = 0;
    }
  in
  let entry = new_block wf in
  wf.entry <- entry.bid;
  let lo = new_vreg wf I64 in
  let hi = new_vreg wf I64 in
  let wf = { wf with params = [ (I64, "lo", lo); (I64, "hi", hi) ] } in
  (* reload captures *)
  let map = Hashtbl.create 16 in
  List.iteri
    (fun k v ->
       let v' = new_vreg wf (vtype caller v) in
       Hashtbl.replace map v v';
       entry.insts <-
         entry.insts
         @ [ Iload (vtype caller v, v',
                    { abase = None; aindex = None; ascale = 1;
                      adisp = cap_base + (8 * k) }) ])
    caps;
  let iv' = new_vreg wf I64 in
  Hashtbl.replace map iv iv';
  entry.insts <- entry.insts @ [ Imov (iv', Ov lo) ];
  let header = new_block wf in
  let wbody = new_block wf in
  let latch = new_block wf in
  let exit = new_block wf in
  entry.term <- Tbr header.bid;
  header.term <- Tcbr (I64, Cond.Lt, Ov iv', Ov hi, wbody.bid, exit.bid);
  (* clone body with vreg translation; temps get fresh worker vregs *)
  let fresh d =
    match Hashtbl.find_opt map d with
    | Some d' -> d'
    | None ->
      let d' = new_vreg wf (vtype caller d) in
      Hashtbl.replace map d d';
      d'
  in
  let tr_op = function
    | Ov v -> Ov (fresh v)
    | o -> o
  in
  let tr_addr a =
    { a with abase = Option.map tr_op a.abase; aindex = Option.map tr_op a.aindex }
  in
  wbody.insts <-
    List.map
      (fun i ->
         match i with
         | Ibin (op, d, a, b) ->
           let a = tr_op a and b = tr_op b in
           Ibin (op, fresh d, a, b)
         | Ifbin (op, d, a, b) ->
           let a = tr_op a and b = tr_op b in
           Ifbin (op, fresh d, a, b)
         | Imov (d, a) ->
           let a = tr_op a in
           Imov (fresh d, a)
         | Icmpset (t, c, d, a, b) ->
           let a = tr_op a and b = tr_op b in
           Icmpset (t, c, fresh d, a, b)
         | Iload (t, d, a) ->
           let a = tr_addr a in
           Iload (t, fresh d, a)
         | Istore (t, a, v) -> Istore (t, tr_addr a, tr_op v)
         | Icvt_i2f (d, a) ->
           let a = tr_op a in
           Icvt_i2f (fresh d, a)
         | Icvt_f2i (d, a) ->
           let a = tr_op a in
           Icvt_f2i (fresh d, a)
         | Icall _ | Ipar_for _ | Ivload _ | Ivstore _ | Ivbin _ | Ivbcast _ ->
           assert false)
      body.insts;
  wbody.term <- Tbr latch.bid;
  latch.insts <- [ Ibin (Madd, iv', Ov iv', Oi 1L) ];
  latch.term <- Tbr header.bid;
  exit.term <- Tret None;
  u.fns <- u.fns @ [ wf ];
  (* rewrite the caller: a profitability guard (as real
     auto-parallelisers emit), capture-area stores, the par_for call *)
  let guard = new_block caller in
  let par = new_block caller in
  let hi_op =
    match l.l_cond with
    | Cond.Le ->
      let h = new_vreg caller I64 in
      guard.insts <- guard.insts @ [ Ibin (Madd, h, bound, Oi 1L) ];
      Ov h
    | _ -> bound
  in
  List.iteri
    (fun k v ->
       par.insts <-
         par.insts
         @ [ Istore (vtype caller v,
                     { abase = None; aindex = None; ascale = 1;
                       adisp = cap_base + (8 * k) }, Ov v) ])
    caps;
  par.insts <- par.insts @ [ Ipar_for (fname, Ov iv, hi_op, threads) ];
  (* the loop's final IV value is the exclusive bound *)
  par.insts <- par.insts @ [ Imov (iv, hi_op) ];
  par.term <- Tbr l.l_exit;
  let span = new_vreg caller I64 in
  (* all serial edges converge on one forwarding block, which becomes
     the loop's preheader so that the vectoriser and unroller can still
     transform the serial path *)
  let serial = new_block caller in
  serial.term <- Tbr l.l_header;
  guard.insts <- guard.insts @ [ Ibin (Msub, span, hi_op, Ov iv) ];
  guard.term <-
    Tcbr (I64, Janus_vx.Cond.Ge, Ov span, Oi 64L, par.bid, serial.bid);
  l.l_preheader <- serial.bid;
  (guard.bid, serial.bid)

let parallelise_loop ~counter ~vendor ~threads (u : unit_) (caller : fn) l =
  match l.l_iv, l.l_bound with
  | Some iv, Some bound
    when l.l_simple && Int64.equal l.l_step 1L
         && (l.l_cond = Cond.Lt || l.l_cond = Cond.Le)
         && l.l_body <> [] -> begin
      let body = block caller (List.hd l.l_body) in
      match analyse u iv body with
      | None -> false
      | Some true when vendor = Jcc_types.Gcc -> false
      | Some needs_check ->
        let orig_pre = l.l_preheader in
        let guard_bid, serial_bid =
          outline ~counter u caller l iv bound body threads
        in
        let pre = block caller orig_pre in
        let target =
          if not needs_check then guard_bid
          else begin
            (* icc: overlap check choosing parallel vs serial *)
            let ptrs = ref [] in
            List.iter
              (fun i ->
                 let grab (a : addr) =
                   match a.abase with
                   | Some (Ov p) -> if not (List.mem p !ptrs) then ptrs := p :: !ptrs
                   | _ -> ()
                 in
                 match i with
                 | Iload (_, _, a) | Istore (_, a, _) -> grab a
                 | _ -> ())
              body.insts;
            match !ptrs with
            | p1 :: p2 :: _ ->
              let mv = new_block caller in
              let n8 = new_vreg caller I64 in
              let e1 = new_vreg caller I64 in
              let e2 = new_vreg caller I64 in
              let c1 = new_vreg caller I64 in
              let c2 = new_vreg caller I64 in
              let either = new_vreg caller I64 in
              mv.insts <-
                [
                  Ibin (Mshl, n8, bound, Oi 3L);
                  Ibin (Madd, e1, Ov p1, Ov n8);
                  Ibin (Madd, e2, Ov p2, Ov n8);
                  Icmpset (I64, Cond.Le, c1, Ov e1, Ov p2);
                  Icmpset (I64, Cond.Le, c2, Ov e2, Ov p1);
                  Ibin (Mor, either, Ov c1, Ov c2);
                ];
              mv.term <-
                Tcbr (I64, Cond.Ne, Ov either, Oi 0L, guard_bid, serial_bid);
              mv.bid
            | _ -> serial_bid  (* cannot build the check: stay serial *)
          end
        in
        let retarget id = if id = l.l_header then target else id in
        pre.term <-
          (match pre.term with
           | Tbr x -> Tbr (retarget x)
           | Tcbr (ty, c, a, b, x, y) -> Tcbr (ty, c, a, b, retarget x, retarget y)
           | t -> t);
        true
    end
  | _ -> false

let run ~vendor ~threads (u : unit_) =
  (* the original loop remains as the serial path behind the guard, so
     it stays visible to the vectoriser and unroller. Worker names are
     numbered from a counter local to this compilation unit, keeping
     [Jcc.compile] re-entrant across concurrent compilations. *)
  let counter = ref 0 in
  List.iter
    (fun fn ->
       List.iter
         (fun l -> ignore (parallelise_loop ~counter ~vendor ~threads u fn l))
         fn.loops)
    (List.filter (fun f -> not (String.contains f.name '$')) u.fns)
