(** The dynamic binary modifier (Fig. 2(b)): a DynamoRIO-style code
    cache executing translated basic blocks, consulting the rewrite
    schedule's rule hash table before each block is emitted.

    Transformation rules (MEM_PRIVATISE, LOOP_UPDATE_BOUND,
    MEM_MAIN_STACK) edit instructions during translation; event rules
    (LOOP_INIT, checks, profiling, TX boundaries...) attach to slots
    and fire through the installed event handler at execution time.
    Rules at the same address apply in schedule order (§II-A2). *)

open Janus_vx
open Janus_vm
module Rule = Janus_schedule.Rule
module Schedule = Janus_schedule.Schedule
module Obs = Janus_obs.Obs

(** What kind of thread a cache belongs to: the main thread receives
    only event rules; workers also receive the parallel transformation
    rules, specialising their private code caches (§II-E). *)
type thread_kind = Main | Worker of int

type slot = {
  s_insn : Insn.t;      (* possibly rewritten instruction *)
  s_addr : int;         (* original application address *)
  s_len : int;          (* original encoded length *)
  s_cost : int;         (* Cost.of_insn s_insn, precomputed at translation *)
  s_events : Rule.t list;
}

(* A compiled execution step: one slot, or a fused superinstruction
   covering the two hottest adjacent pairs VX64 code exhibits (compare +
   conditional branch; induction-variable update + bound compare;
   register move feeding an ALU op). Fusion is sound only when nothing
   can observe the machine between the two halves: both slots must be
   event-free and every operand a register or immediate — no memory
   access means no observer callback, no STM buffering, no cache-model
   touch and no fault, and none of these opcodes read [rip]. The fused
   step charges the sum of the halves' precomputed costs and bumps
   icount by 2, so cycles and instruction counts are bit-identical with
   fusion on or off. *)
type step =
  | Step of slot
  | Cmp_jcc of { addr : int; a : Operand.t; b : Operand.t; cond : Cond.t;
                 target : int; cost : int }
  | Alu_cmp of { addr : int; op : Insn.alu; d : Operand.t; s : Operand.t;
                 a : Operand.t; b : Operand.t; cost : int }
  | Mov_alu of { addr : int; d1 : Operand.t; s1 : Operand.t; op : Insn.alu;
                 d2 : Operand.t; s2 : Operand.t; cost : int }

type fragment = {
  f_start : int;
  f_slots : slot array;
  f_steps : step array;   (* what exec_fragment actually runs *)
  mutable f_execs : int;
  mutable f_is_trace : bool;
  mutable f_linked : bool;
}

type stats = {
  mutable translated_insns : int;
  mutable fragments_built : int;
  mutable traces_built : int;
  mutable dispatches : int;
  mutable translate_cycles : int;   (* total, all threads *)
  mutable translate_cycles_main : int;  (* main thread only *)
  mutable check_cycles : int;
  mutable init_finish_cycles : int;
  mutable parallel_cycles : int;
  mutable stm_commits : int;
  mutable stm_aborts : int;
  mutable cache_flushes : int;
}

let new_stats () =
  { translated_insns = 0; fragments_built = 0; traces_built = 0;
    dispatches = 0; translate_cycles = 0; translate_cycles_main = 0;
    check_cycles = 0;
    init_finish_cycles = 0; parallel_cycles = 0; stm_commits = 0;
    stm_aborts = 0; cache_flushes = 0 }

(** Outcome of an event handler. *)
type action =
  | Continue           (* keep executing the slot *)
  | Divert of int      (* transfer control to an application address *)
  | Stop_thread        (* leave the execution loop (thread yield) *)

type t = {
  prog : Program.t;
  rules : (int, Rule.t list) Hashtbl.t;   (* the rule hash table *)
  schedule : Schedule.t option;
  stats : stats;
  promote_threshold : int;    (* fragment executions before trace promotion *)
  fuse : bool;                (* superinstruction fusion in translated code *)
  mutable obs : Obs.t option;
  mutable on_event : t -> thread_kind -> Machine.t -> Rule.t -> action;
}

(** A per-thread code cache. *)
type cache = {
  kind : thread_kind;
  frags : (int, fragment) Hashtbl.t;
  mutable last_indirect : bool;   (* previous fragment ended indirectly *)
  mutable skip : (int -> bool) option;
      (* loop fission: addresses this cache's fragments elide (the other
         sub-loops' instructions); control flow is never elided *)
}

let create ?schedule ?obs ?(promote_threshold = Cost.trace_head_threshold)
    ?(fuse = true) prog =
  let rules = Hashtbl.create 64 in
  (match schedule with
   | Some s ->
     Hashtbl.iter (fun a rs -> Hashtbl.replace rules a rs) (Schedule.index s)
   | None -> ());
  {
    prog;
    rules;
    schedule;
    stats = new_stats ();
    promote_threshold;
    fuse;
    obs;
    on_event = (fun _ _ _ _ -> Continue);
  }

let new_cache ?skip kind =
  { kind; frags = Hashtbl.create 256; last_indirect = false; skip }

(* trace-event thread ids: 0 = main, w+1 = worker w *)
let tid_of = function Main -> 0 | Worker w -> w + 1

let flush_cache ?(now = 0) t (c : cache) =
  Hashtbl.reset c.frags;
  t.stats.cache_flushes <- t.stats.cache_flushes + 1;
  match t.obs with
  | Some o when Obs.tracing o ->
    Obs.emit o ~tid:(tid_of c.kind) ~ts:now Obs.Cache_flushed
  | _ -> ()

let rules_at t addr = try Hashtbl.find t.rules addr with Not_found -> []

let is_transform (r : Rule.t) =
  match r.Rule.id with
  | Rule.LOOP_UPDATE_BOUND | Rule.MEM_PRIVATISE | Rule.MEM_MAIN_STACK
  | Rule.MEM_PREFETCH -> true
  | _ -> false

(* which rules apply to which thread kind *)
let applies kind (r : Rule.t) =
  match kind, r.Rule.id with
  | Main, (Rule.LOOP_UPDATE_BOUND | Rule.MEM_PRIVATISE | Rule.MEM_MAIN_STACK
          | Rule.THREAD_YIELD | Rule.TX_START | Rule.TX_FINISH) -> false
  | Main, _ -> true
  | Worker _, (Rule.LOOP_INIT | Rule.LOOP_FISSION | Rule.MEM_BOUNDS_CHECK
              | Rule.MEM_SPILL_REG | Rule.THREAD_SCHEDULE) -> false
  | Worker _, _ -> true

(* ------------------------------------------------------------------ *)
(* Transformation handlers (Fig. 2(b))                                 *)
(* ------------------------------------------------------------------ *)

let tls_slot_operand slot =
  Operand.Mem (Operand.mem_base ~disp:(8 * slot) Reg.TLS)

(* replace the unique memory operand of an instruction *)
let replace_mem_operand insn new_mem =
  let swap (o : Operand.t) =
    match o with Operand.Mem _ -> Operand.Mem new_mem | _ -> o
  in
  let swapf (o : Operand.fop) =
    match o with Operand.Fmem _ -> Operand.Fmem new_mem | _ -> o
  in
  match insn with
  | Insn.Mov (d, s) -> Insn.Mov (swap d, swap s)
  | Insn.Alu (op, d, s) -> Insn.Alu (op, swap d, swap s)
  | Insn.Neg o -> Insn.Neg (swap o)
  | Insn.Not o -> Insn.Not (swap o)
  | Insn.Idiv o -> Insn.Idiv (swap o)
  | Insn.Cmp (a, b) -> Insn.Cmp (swap a, swap b)
  | Insn.Test (a, b) -> Insn.Test (swap a, swap b)
  | Insn.Push o -> Insn.Push (swap o)
  | Insn.Pop o -> Insn.Pop (swap o)
  | Insn.Cmov (c, r, s) -> Insn.Cmov (c, r, swap s)
  | Insn.Fmov (w, d, s) -> Insn.Fmov (w, swapf d, swapf s)
  | Insn.Fbin (w, op, d, s) -> Insn.Fbin (w, op, d, swapf s)
  | Insn.Fsqrt (w, d, s) -> Insn.Fsqrt (w, d, swapf s)
  | Insn.Fbcast (w, d, s) -> Insn.Fbcast (w, d, swapf s)
  | Insn.Fcmp (a, b) -> Insn.Fcmp (a, swapf b)
  | Insn.Cvtsi2sd (d, s) -> Insn.Cvtsi2sd (d, swap s)
  | Insn.Cvtsd2si (d, s) -> Insn.Cvtsd2si (d, swapf s)
  | i -> i

(* LOOP_UPDATE_BOUND: the bound operand becomes a TLS load, so each
   thread compares against its own chunk end (bound slot = TLS[0]) *)
let apply_update_bound (r : Rule.t) insn =
  match insn with
  | Insn.Cmp (a, b) ->
    let bound = tls_slot_operand 0 in
    if Int64.equal r.Rule.data 0L then Insn.Cmp (bound, b)
    else Insn.Cmp (a, bound)
  | i -> i

(* MEM_PRIVATISE: redirect the memory operand to private storage *)
let apply_privatise (r : Rule.t) insn =
  let slot = Int64.to_int r.Rule.data in
  replace_mem_operand insn (Operand.mem_base ~disp:(8 * slot) Reg.TLS)

(* MEM_MAIN_STACK: redirect a read-only stack access to the shared main
   stack (base register swapped for SHARED, which the runtime points at
   the main thread's frame) *)
let apply_main_stack (_r : Rule.t) insn =
  let swap_base (m : Operand.mem) = { m with Operand.base = Some Reg.SHARED } in
  let swap (o : Operand.t) =
    match o with Operand.Mem m -> Operand.Mem (swap_base m) | _ -> o
  in
  let swapf (o : Operand.fop) =
    match o with Operand.Fmem m -> Operand.Fmem (swap_base m) | _ -> o
  in
  match insn with
  | Insn.Mov (d, s) -> Insn.Mov (d, swap s)
  | Insn.Alu (op, d, s) -> Insn.Alu (op, d, swap s)
  | Insn.Cmp (a, b) -> Insn.Cmp (swap a, swap b)
  | Insn.Fmov (w, d, s) -> Insn.Fmov (w, d, swapf s)
  | Insn.Fbin (w, op, d, s) -> Insn.Fbin (w, op, d, swapf s)
  | Insn.Fcmp (a, b) -> Insn.Fcmp (a, swapf b)
  | i -> i

let apply_transform (r : Rule.t) insn =
  match r.Rule.id with
  | Rule.LOOP_UPDATE_BOUND -> apply_update_bound r insn
  | Rule.MEM_PRIVATISE -> apply_privatise r insn
  | Rule.MEM_MAIN_STACK -> apply_main_stack r insn
  | _ -> insn

(* MEM_PREFETCH: the prefetch target is the instruction's memory
   operand displaced [data] bytes ahead (its stride direction) *)
let prefetch_mem insn dist =
  match List.map fst (Insn.mems_read insn @ Insn.mems_written insn) with
  | m :: _ -> Some { m with Operand.disp = m.Operand.disp + dist }
  | [] -> None

(* zero-length slot holding an inserted prefetch hint *)
let prefetch_slots (rs : Rule.t list) insn addr =
  List.filter_map
    (fun (r : Rule.t) ->
       if r.Rule.id = Rule.MEM_PREFETCH then
         match prefetch_mem insn (Int64.to_int r.Rule.data) with
         | Some pm ->
           let pi = Insn.Prefetch pm in
           Some { s_insn = pi; s_addr = addr; s_len = 0;
                  s_cost = Cost.of_insn pi; s_events = [] }
         | None -> None
       else None)
    rs

(* ------------------------------------------------------------------ *)
(* Superinstruction fusion                                             *)
(* ------------------------------------------------------------------ *)

let regimm = function
  | Operand.Reg _ | Operand.Imm _ -> true
  | Operand.Mem _ -> false

let is_reg = function Operand.Reg _ -> true | _ -> false

(* Compile a fragment's slots into execution steps, fusing eligible
   adjacent pairs when [fuse] is on. Eligibility (see the [step]
   comment): both slots event-free, destinations registers, every
   operand register/immediate. With [fuse] off every slot becomes its
   own [Step], which is the pre-fusion executor exactly. *)
let fuse_steps fuse (slots : slot array) =
  let n = Array.length slots in
  let steps = ref [] in
  let i = ref 0 in
  while !i < n do
    let x = slots.(!i) in
    let fused =
      if (not fuse) || x.s_events <> [] || !i + 1 >= n then None
      else begin
        let y = slots.(!i + 1) in
        if y.s_events <> [] then None
        else
          let cost = x.s_cost + y.s_cost in
          match x.s_insn, y.s_insn with
          | Insn.Cmp (a, b), Insn.Jcc (cond, target)
            when regimm a && regimm b ->
            Some (Cmp_jcc { addr = x.s_addr; a; b; cond; target; cost })
          | Insn.Alu (op, d, s), Insn.Cmp (a, b)
            when is_reg d && regimm s && regimm a && regimm b ->
            Some (Alu_cmp { addr = x.s_addr; op; d; s; a; b; cost })
          | Insn.Mov (d1, s1), Insn.Alu (op, d2, s2)
            when is_reg d1 && regimm s1 && is_reg d2 && regimm s2 ->
            Some (Mov_alu { addr = x.s_addr; d1; s1; op; d2; s2; cost })
          | _ -> None
      end
    in
    match fused with
    | Some st ->
      steps := st :: !steps;
      i := !i + 2
    | None ->
      steps := Step x :: !steps;
      incr i
  done;
  Array.of_list (List.rev !steps)

(* ------------------------------------------------------------------ *)
(* Translation                                                         *)
(* ------------------------------------------------------------------ *)

(* does this cache's fission filter elide [insn] at [a]? control flow
   is never elided — fission replicates it into every sub-loop *)
let elided (cache : cache) a insn =
  match cache.skip with
  | Some f -> f a && not (Insn.is_control_flow insn)
  | None -> false

(* translate one basic block starting at [addr] into a fragment,
   charging translation cost to [ctx] *)
let translate t (cache : cache) ctx addr =
  let slots = ref [] in
  let count = ref 0 in
  let rec walk a =
    match Program.fetch t.prog a with
    | None -> ()
    | Some (insn, len) ->
      incr count;
      let rs = List.filter (applies cache.kind) (rules_at t a) in
      let events = List.filter (fun r -> not (is_transform r)) rs in
      let insn' =
        List.fold_left
          (fun i r -> if is_transform r then apply_transform r i else i)
          insn rs
      in
      if elided cache a insn then begin
        (* drop the slot outright — control flow is never elided, so
           fragment exits are unaffected and the elision really is free;
           an attached event keeps a 1-cycle Nop slot as its anchor *)
        if events <> [] then
          slots := { s_insn = Insn.Nop; s_addr = a; s_len = len;
                     s_cost = Cost.of_insn Insn.Nop; s_events = events }
                   :: !slots
      end
      else begin
        List.iter (fun s -> slots := s :: !slots) (prefetch_slots rs insn' a);
        slots := { s_insn = insn'; s_addr = a; s_len = len;
                   s_cost = Cost.of_insn insn'; s_events = events }
                 :: !slots
      end;
      if not (Insn.is_control_flow insn)
         && insn <> Insn.Syscall Insn.sys_exit
      then walk (a + len)
  in
  walk addr;
  let slots = Array.of_list (List.rev !slots) in
  let cost = Cost.fragment_setup + (Cost.translate_per_insn * !count) in
  let t0 = ctx.Machine.cycles in
  ctx.Machine.cycles <- ctx.Machine.cycles + cost;
  t.stats.translate_cycles <- t.stats.translate_cycles + cost;
  if cache.kind = Main then
    t.stats.translate_cycles_main <- t.stats.translate_cycles_main + cost;
  t.stats.translated_insns <- t.stats.translated_insns + !count;
  t.stats.fragments_built <- t.stats.fragments_built + 1;
  (match t.obs with
   | Some o when Obs.tracing o ->
     let tid = tid_of cache.kind in
     Obs.emit o ~tid ~ts:t0 ~dur:cost
       (Obs.Block_translated { addr; insns = !count; trace = false });
     (match Program.plt_name t.prog addr with
      | Some name -> Obs.emit o ~tid ~ts:t0 (Obs.Lib_resolved { name; addr })
      | None -> ())
   | _ -> ());
  let frag =
    { f_start = addr; f_slots = slots; f_steps = fuse_steps t.fuse slots;
      f_execs = 0; f_is_trace = false; f_linked = false }
  in
  Hashtbl.replace cache.frags addr frag;
  frag

(* trace promotion: extend a hot fragment across unconditional direct
   jumps, eliding the jump instructions (DynamoRIO trace optimisation) *)
let promote_trace t (cache : cache) ctx frag =
  let slots = ref [] in
  let seen = Hashtbl.create 8 in
  let count = ref 0 in
  let rec extend addr blocks =
    if blocks > 8 || Hashtbl.mem seen addr then ()
    else begin
      Hashtbl.replace seen addr ();
      let rec walk a =
        match Program.fetch t.prog a with
        | None -> ()
        | Some (insn, len) ->
          let rs = List.filter (applies cache.kind) (rules_at t a) in
          let events = List.filter (fun r -> not (is_transform r)) rs in
          let insn' =
            List.fold_left
              (fun i r -> if is_transform r then apply_transform r i else i)
              insn rs
          in
          (match insn with
           | Insn.Jmp (Insn.Direct target) when events = [] ->
             (* elide the jump, continue the trace *)
             incr count;
             extend target (blocks + 1)
           | _ when elided cache a insn ->
             incr count;
             if events <> [] then
               slots := { s_insn = Insn.Nop; s_addr = a; s_len = len;
                          s_cost = Cost.of_insn Insn.Nop; s_events = events }
                        :: !slots;
             if not (Insn.is_control_flow insn) then walk (a + len)
           | _ ->
             incr count;
             List.iter (fun s -> slots := s :: !slots)
               (prefetch_slots rs insn' a);
             slots :=
               { s_insn = insn'; s_addr = a; s_len = len;
                 s_cost = Cost.of_insn insn'; s_events = events }
               :: !slots;
             if not (Insn.is_control_flow insn) then walk (a + len))
      in
      walk addr
    end
  in
  extend frag.f_start 0;
  let cost = Cost.fragment_setup + (Cost.translate_per_insn * !count) in
  let t0 = ctx.Machine.cycles in
  ctx.Machine.cycles <- ctx.Machine.cycles + cost;
  t.stats.translate_cycles <- t.stats.translate_cycles + cost;
  if cache.kind = Main then
    t.stats.translate_cycles_main <- t.stats.translate_cycles_main + cost;
  t.stats.traces_built <- t.stats.traces_built + 1;
  (match t.obs with
   | Some o when Obs.tracing o ->
     Obs.emit o ~tid:(tid_of cache.kind) ~ts:t0 ~dur:cost
       (Obs.Block_translated
          { addr = frag.f_start; insns = !count; trace = true })
   | _ -> ());
  let nf =
    let slots = Array.of_list (List.rev !slots) in
    { f_start = frag.f_start; f_slots = slots;
      f_steps = fuse_steps t.fuse slots;
      f_execs = frag.f_execs; f_is_trace = true; f_linked = true }
  in
  Hashtbl.replace cache.frags frag.f_start nf;
  nf

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

exception Bad_pc of int

type outcome =
  | Next of int       (* control continues at an application address *)
  | Halted
  | Yielded           (* an event handler stopped the thread *)

let exec_fragment t (cache : cache) ctx frag =
  frag.f_execs <- frag.f_execs + 1;
  let steps = frag.f_steps in
  let n = Array.length steps in
  let nslots = Array.length frag.f_slots in
  let rec go i =
    if i >= n then begin
      (* fell off the end: block ended by running into a leader *)
      let last = frag.f_slots.(nslots - 1) in
      Next (last.s_addr + last.s_len)
    end
    else begin
      match Array.unsafe_get steps i with
      | Step slot -> begin
        ctx.Machine.rip <- slot.s_addr;
        (* fire events in schedule order *)
        let rec fire = function
          | [] -> Continue
          | r :: tl -> begin
              (match t.obs with
               | Some o when Obs.tracing o ->
                 Obs.emit o ~tid:(tid_of cache.kind) ~ts:ctx.Machine.cycles
                   (Obs.Rule_fired
                      { rule = Rule.id_name r.Rule.id; addr = slot.s_addr })
               | _ -> ());
              match t.on_event t cache.kind ctx r with
              | Continue -> fire tl
              | (Divert _ | Stop_thread) as a -> a
            end
        in
        match fire slot.s_events with
        | Divert a -> Next a
        | Stop_thread -> Yielded
        | Continue -> begin
            match
              Semantics.exec_costed ctx slot.s_insn ~len:slot.s_len
                ~cost:slot.s_cost
            with
            | Semantics.Fall -> go (i + 1)
            | Semantics.Goto a -> Next a
            | Semantics.Stop -> Halted
          end
      end
      (* fused superinstructions: event-free, register-only — nothing
         between the two halves is architecturally observable, so one
         rip store and a summed cycle charge are exact *)
      | Cmp_jcc { addr; a; b; cond; target; cost } ->
        ctx.Machine.rip <- addr;
        ctx.Machine.cycles <- ctx.Machine.cycles + cost;
        ctx.Machine.icount <- ctx.Machine.icount + 2;
        Semantics.set_flags_cmp ctx (Semantics.value ctx a)
          (Semantics.value ctx b);
        if Semantics.eval_cond ctx cond then Next target else go (i + 1)
      | Alu_cmp { addr; op; d; s; a; b; cost } ->
        ctx.Machine.rip <- addr;
        ctx.Machine.cycles <- ctx.Machine.cycles + cost;
        ctx.Machine.icount <- ctx.Machine.icount + 2;
        (* the ALU result's flags are dead — the compare fully rewrites
           the packed flag word — so only the compare's flags are set *)
        Semantics.store ctx d
          (Semantics.alu_op op (Semantics.value ctx d) (Semantics.value ctx s));
        Semantics.set_flags_cmp ctx (Semantics.value ctx a)
          (Semantics.value ctx b);
        go (i + 1)
      | Mov_alu { addr; d1; s1; op; d2; s2; cost } ->
        ctx.Machine.rip <- addr;
        ctx.Machine.cycles <- ctx.Machine.cycles + cost;
        ctx.Machine.icount <- ctx.Machine.icount + 2;
        Semantics.store ctx d1 (Semantics.value ctx s1);
        let v =
          Semantics.alu_op op (Semantics.value ctx d2) (Semantics.value ctx s2)
        in
        Semantics.store ctx d2 v;
        Semantics.set_flags_result ctx v;
        go (i + 1)
    end
  in
  if nslots = 0 then raise (Bad_pc frag.f_start) else go 0

(** Run [ctx] under the DBM until the program halts, an event yields
    the thread, or [fuel] runs out (reported as a typed result carrying
    the application address being dispatched, not an exception). *)
let run ?(fuel = 100_000_000) t (cache : cache) ctx =
  let remaining = ref fuel in
  let finished = ref None in
  while !finished = None do
    if !remaining <= 0 then
      finished := Some (`Out_of_fuel ctx.Machine.rip)
    else begin
    decr remaining;
    let addr = ctx.Machine.rip in
    (* intrinsic intercepted exactly as in native execution: one compare
       against the PLT slot address resolved at load *)
    (if addr = t.prog.Program.par_for_addr then begin
       Run.par_for t.prog ctx ~fuel:1_000_000_000;
       ctx.Machine.rip <- Int64.to_int (Semantics.pop ctx)
     end
     else
       let frag =
         match Hashtbl.find_opt cache.frags addr with
         | Some f ->
           (* dispatch cost: indirect transitions always pay; direct
              ones pay until the fragment is linked *)
           t.stats.dispatches <- t.stats.dispatches + 1;
           if cache.last_indirect then
             ctx.Machine.cycles <- ctx.Machine.cycles + Cost.dispatch_indirect
           else if not f.f_linked then begin
             ctx.Machine.cycles <- ctx.Machine.cycles + Cost.dispatch_unlinked;
             if f.f_execs >= 1 then begin
               f.f_linked <- true;
               match t.obs with
               | Some o when Obs.tracing o ->
                 Obs.emit o ~tid:(tid_of cache.kind) ~ts:ctx.Machine.cycles
                   (Obs.Fragment_linked { addr })
               | _ -> ()
             end
           end;
           if (not f.f_is_trace) && f.f_execs >= t.promote_threshold then
             promote_trace t cache ctx f
           else f
         | None ->
           if Program.fetch t.prog addr = None then raise (Bad_pc addr);
           (* a context switch into the code cache happens on this path
              too: the dispatch census must include every fragment's
              first (translate-path) execution. Only the counter moves
              here — the cycle model already charges this transition as
              part of the translation cost. *)
           t.stats.dispatches <- t.stats.dispatches + 1;
           translate t cache ctx addr
       in
       (* remember whether this fragment exits indirectly *)
       let ends_indirect =
         let n = Array.length frag.f_slots in
         n > 0
         &&
         match frag.f_slots.(n - 1).s_insn with
         | Insn.Jmp (Insn.Indirect _) | Insn.Call (Insn.Indirect _)
         | Insn.Ret -> true
         | _ -> false
       in
       (match exec_fragment t cache ctx frag with
        | Next a ->
          cache.last_indirect <- ends_indirect;
          ctx.Machine.rip <- a
        | Halted -> finished := Some `Halted
        | Yielded -> finished := Some `Yielded))
    end
  done;
  match !finished with
  | Some r -> r
  | None -> assert false

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

(** Mirror the aggregate stats into the metrics registry. Done once at
    publish time rather than on hot paths, so enabling metrics never
    perturbs the cycle model. *)
let publish_metrics t o =
  let s = t.stats in
  Obs.set o "dbm.translated_insns" s.translated_insns;
  Obs.set o "dbm.fragments_built" s.fragments_built;
  Obs.set o "dbm.traces_built" s.traces_built;
  Obs.set o "dbm.dispatches" s.dispatches;
  Obs.set o "dbm.translate_cycles" s.translate_cycles;
  Obs.set o "dbm.translate_cycles_main" s.translate_cycles_main;
  Obs.set o "dbm.check_cycles" s.check_cycles;
  Obs.set o "dbm.init_finish_cycles" s.init_finish_cycles;
  Obs.set o "dbm.parallel_cycles" s.parallel_cycles;
  Obs.set o "dbm.stm_commits" s.stm_commits;
  Obs.set o "dbm.stm_aborts" s.stm_aborts;
  Obs.set o "dbm.cache_flushes" s.cache_flushes
