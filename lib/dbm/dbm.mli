(** The dynamic binary modifier (Fig. 2(b)): a DynamoRIO-style code
    cache executing translated basic blocks, consulting the rewrite
    schedule's rule hash table before each block is emitted.

    Transformation rules (MEM_PRIVATISE, LOOP_UPDATE_BOUND,
    MEM_MAIN_STACK) rewrite instructions during translation; all other
    rules attach to slots as {e events} and fire through the installed
    {!field:t.on_event} handler at execution time. Rules sharing an
    address apply in schedule order (§II-A2). *)

open Janus_vx
open Janus_vm
module Rule = Janus_schedule.Rule
module Schedule = Janus_schedule.Schedule
module Obs = Janus_obs.Obs

(** Which thread a code cache belongs to. The main thread receives only
    event rules; workers also receive the parallel transformation
    rules, specialising their private caches per thread (§II-E). *)
type thread_kind = Main | Worker of int

(** One translated instruction in a fragment. *)
type slot = {
  s_insn : Insn.t;           (** possibly rewritten instruction *)
  s_addr : int;              (** original application address *)
  s_len : int;               (** original encoded length *)
  s_cost : int;              (** {!Janus_vx.Cost.of_insn}, precomputed *)
  s_events : Rule.t list;    (** rules fired before executing it *)
}

(** A compiled execution step: one slot, or a fused superinstruction
    covering a hot adjacent pair (compare + conditional branch,
    induction-variable update + bound compare, register move + ALU op).
    Pairs are fused only when both slots are event-free and every
    operand is a register or immediate, so nothing can observe the
    machine between the halves; the fused step charges the sum of the
    halves' precomputed costs, keeping virtual cycles and instruction
    counts bit-identical with fusion on or off. *)
type step =
  | Step of slot
  | Cmp_jcc of { addr : int; a : Operand.t; b : Operand.t; cond : Cond.t;
                 target : int; cost : int }
  | Alu_cmp of { addr : int; op : Insn.alu; d : Operand.t; s : Operand.t;
                 a : Operand.t; b : Operand.t; cost : int }
  | Mov_alu of { addr : int; d1 : Operand.t; s1 : Operand.t; op : Insn.alu;
                 d2 : Operand.t; s2 : Operand.t; cost : int }

(** A code-cache fragment: one translated basic block (or trace). *)
type fragment = {
  f_start : int;
  f_slots : slot array;
  f_steps : step array;      (** what the executor actually runs *)
  mutable f_execs : int;
  mutable f_is_trace : bool;
  mutable f_linked : bool;
}

(** Execution counters and modelled overhead cycles. *)
type stats = {
  mutable translated_insns : int;
  mutable fragments_built : int;
  mutable traces_built : int;
  mutable dispatches : int;
  mutable translate_cycles : int;      (** all threads *)
  mutable translate_cycles_main : int; (** main thread only *)
  mutable check_cycles : int;
  mutable init_finish_cycles : int;
  mutable parallel_cycles : int;
  mutable stm_commits : int;
  mutable stm_aborts : int;
  mutable cache_flushes : int;
}

val new_stats : unit -> stats

(** What an event handler tells the executor to do. *)
type action =
  | Continue        (** keep executing the slot *)
  | Divert of int   (** transfer control to an application address *)
  | Stop_thread     (** leave the execution loop (thread yield) *)

type t = {
  prog : Program.t;
  rules : (int, Rule.t list) Hashtbl.t;  (** the rule hash table *)
  schedule : Schedule.t option;
  stats : stats;
  promote_threshold : int;
      (** executions before a hot fragment is promoted to a trace
          (default {!Janus_vx.Cost.trace_head_threshold}; [1] promotes
          eagerly, [max_int] disables promotion) *)
  fuse : bool;
      (** fuse hot instruction pairs in translated fragments (default
          on; inert at schedule level — outputs, cycles and memory
          digests are bit-identical either way) *)
  mutable obs : Obs.t option;  (** tracing/metrics sink, off by default *)
  mutable on_event : t -> thread_kind -> Machine.t -> Rule.t -> action;
}

(** A per-thread code cache. *)
type cache = {
  kind : thread_kind;
  frags : (int, fragment) Hashtbl.t;
  mutable last_indirect : bool;
  mutable skip : (int -> bool) option;
      (** loop fission: instruction addresses this cache's fragments
          elide (translated as zero-length no-ops, so a fissioned
          sub-loop executes only its own group). Control flow is never
          elided. *)
}

(** Create a DBM over a loaded program, indexing the schedule's rules
    by trigger address. [obs] attaches a tracing/metrics sink; when
    absent (or when tracing is disabled on it) the DBM behaves exactly
    as an uninstrumented one. *)
val create :
  ?schedule:Schedule.t -> ?obs:Obs.t -> ?promote_threshold:int ->
  ?fuse:bool -> Program.t -> t

(** [new_cache ?skip kind] makes an empty cache; [skip] installs a
    fission elision filter (see {!cache.skip}). *)
val new_cache : ?skip:(int -> bool) -> thread_kind -> cache

(** Trace-event thread id of a thread kind: 0 for {!Main}, [w + 1] for
    [Worker w]. *)
val tid_of : thread_kind -> int

(** Discard every fragment (used when a failed bounds check forces the
    modified code to be reloaded, §II-E1). [now] timestamps the flush
    event when tracing. *)
val flush_cache : ?now:int -> t -> cache -> unit

val rules_at : t -> int -> Rule.t list

(** Does this rule's effect apply to caches of this thread kind? *)
val applies : thread_kind -> Rule.t -> bool

(** Apply a transformation rule to an instruction (exposed for unit
    tests of the rewrite handlers). *)
val apply_transform : Rule.t -> Insn.t -> Insn.t

(** Translate the basic block at an address into [cache], applying
    transformation rules and attaching events; translation cost is
    charged to [ctx]. *)
val translate : t -> cache -> Machine.t -> int -> fragment

exception Bad_pc of int

(** Run [ctx] under the DBM until the program halts, an event handler
    yields the thread, or [fuel] dispatch steps are exhausted.
    [`Out_of_fuel addr] carries the application address that was about
    to be dispatched — a typed result rather than an exception, so
    callers can produce a diagnostic (with trace context) instead of a
    backtrace. *)
val run :
  ?fuel:int -> t -> cache -> Machine.t ->
  [ `Halted | `Yielded | `Out_of_fuel of int ]

(** Mirror {!field:t.stats} into the metrics registry under the
    [dbm.*] counter names. Called at publish time (end of run), never
    on hot paths. *)
val publish_metrics : t -> Obs.t -> unit
