(** Forward reaching-definitions pass over VX64 CFGs. *)

open Janus_vx
open Janus_analysis

module DefSet = Set.Make (struct
    type t = int * int

    let compare = compare
  end)

let gp_code r = Reg.gp_index r
let fp_code r = 100 + Reg.fp_index r

module Facts = struct
  type fact = DefSet.t

  let bottom = DefSet.empty
  let equal = DefSet.equal
  let join = DefSet.union
end

module Solver = Dataflow.Make (Facts)

(* registers written, as codes; calls additionally clobber the
   caller-saved set (an opaque definition at the call site) *)
let def_codes (i : Insn.t) =
  let base =
    List.map gp_code (Insn.gp_defs i) @ List.map fp_code (Insn.fp_defs i)
  in
  match i with
  | Insn.Call _ ->
    base
    @ List.map gp_code Reg.caller_saved
    @ [ gp_code Reg.ret_reg; fp_code Reg.fp_ret_reg ]
  | _ -> base

let through_insn (ii : Cfg.insn_info) facts =
  List.fold_left
    (fun acc code ->
       DefSet.add (code, ii.Cfg.addr)
         (DefSet.filter (fun (c, _) -> c <> code) acc))
    facts (def_codes ii.Cfg.insn)

type t = { before : (int, DefSet.t) Hashtbl.t }

let compute (f : Cfg.func) =
  let transfer (b : Cfg.bblock) facts =
    Array.fold_left (fun acc ii -> through_insn ii acc) facts b.Cfg.insns
  in
  let r = Solver.solve ~dir:Dataflow.Forward ~transfer f in
  let before = Hashtbl.create 64 in
  List.iter
    (fun (b : Cfg.bblock) ->
       let facts =
         ref
           (match Hashtbl.find_opt r.Solver.entry_fact b.Cfg.baddr with
            | Some x -> x
            | None -> DefSet.empty)
       in
       Array.iter
         (fun ii ->
            Hashtbl.replace before ii.Cfg.addr !facts;
            facts := through_insn ii !facts)
         b.Cfg.insns)
    f.Cfg.blocks;
  { before }

let reaching_before t ~addr =
  match Hashtbl.find_opt t.before addr with
  | Some s -> s
  | None -> DefSet.empty

let gp_defs_reaching t ~addr r =
  let code = gp_code r in
  DefSet.fold
    (fun (c, a) acc -> if c = code then a :: acc else acc)
    (reaching_before t ~addr) []
  |> List.rev
