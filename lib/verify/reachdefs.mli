(** Reaching definitions over a recovered function, built on
    {!Dataflow} (forward, union join). A definition is an instruction
    address paired with the register it writes; the pass answers "which
    writes of [r] can reach this program point" — the substrate for the
    independent loop re-derivation in {!Memdep}. *)

open Janus_vx
open Janus_analysis

(** A definition site: the register's code (GP and FP registers live in
    disjoint code spaces) and the defining instruction's address. *)
module DefSet : Set.S with type elt = int * int

val gp_code : Reg.gp -> int
val fp_code : Reg.fp -> int

type t

val compute : Cfg.func -> t

(** Definitions reaching the point immediately before the instruction
    at [addr]; the empty set for unknown addresses. *)
val reaching_before : t -> addr:int -> DefSet.t

(** Addresses of the definitions of [r] reaching the point before
    [addr]. *)
val gp_defs_reaching : t -> addr:int -> Reg.gp -> int list
