(** Schedule linter: prove a rewrite schedule safe against its binary. *)

open Janus_vx
open Janus_analysis
module Schedule = Janus_schedule.Schedule
module Rule = Janus_schedule.Rule
module Desc = Janus_schedule.Desc
module Rexpr = Janus_schedule.Rexpr

type severity = Error | Warning | Info

type finding = {
  severity : severity;
  code : string;
  addr : int option;
  lid : int option;
  message : string;
}

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let pp_finding ppf f =
  Format.fprintf ppf "%s: [%s]" (severity_name f.severity) f.code;
  (match f.addr with
   | Some a -> Format.fprintf ppf " 0x%x" a
   | None -> ());
  (match f.lid with
   | Some l -> Format.fprintf ppf " loop %d" l
   | None -> ());
  Format.fprintf ppf ": %s" f.message

let has_errors = List.exists (fun f -> f.severity = Error)

let failed_loops findings =
  List.filter_map
    (fun f ->
       match f.severity, f.lid with Error, Some l -> Some l | _ -> None)
    findings
  |> List.sort_uniq compare

(* which payload field carries the loop id is part of each rule's
   encoding; LOOP_UPDATE_BOUND spends both fields on the compare *)
let rule_lid (r : Rule.t) =
  match r.Rule.id with
  | Rule.LOOP_INIT | Rule.LOOP_FINISH | Rule.MEM_SPILL_REG
  | Rule.MEM_RECOVER_REG | Rule.MEM_PRIVATISE | Rule.MEM_MAIN_STACK
  | Rule.MEM_BOUNDS_CHECK | Rule.MEM_PREFETCH | Rule.THREAD_YIELD
  | Rule.LOOP_FISSION ->
    Some (Int64.to_int r.Rule.aux)
  | Rule.THREAD_SCHEDULE | Rule.TX_START | Rule.TX_FINISH
  | Rule.PROF_LOOP_START | Rule.PROF_LOOP_FINISH | Rule.PROF_LOOP_ITER
  | Rule.PROF_EXCALL_START | Rule.PROF_EXCALL_FINISH ->
    Some (Int64.to_int r.Rule.data)
  | Rule.PROF_MEM_ACCESS -> Some (Int64.to_int r.Rule.data)
  | Rule.LOOP_UPDATE_BOUND -> None

(* a privatised-scalar address the linter can place statically *)
let static_addr = function
  | Rexpr.Const a -> Some (`Abs (Int64.to_int a))
  | Rexpr.Add (Rexpr.Reg Reg.RSP, Rexpr.Const off) ->
    Some (`Rsp (Int64.to_int off))
  | _ -> None

let dir_ok cond step =
  match cond, Int64.compare step 0L with
  | (Cond.Lt | Cond.Le | Cond.Ne | Cond.Ult | Cond.Ule), 1 -> true
  | (Cond.Gt | Cond.Ge | Cond.Ne | Cond.Ugt | Cond.Uge), -1 -> true
  | _ -> false

let lint ?pool image (s : Schedule.t) : finding list =
  let findings = ref [] in
  let add severity code ?addr ?lid message =
    findings := { severity; code; addr; lid; message } :: !findings
  in
  let decode = Image.decode_text image in
  (* CFG recovery and per-function analyses, on demand. The caches made
     by [mk_caches] memoise per function; the descriptor deep checks
     below run one cache pair per pool task (a shared cache would race
     across domains), the fission checks share one on the lint domain. *)
  let cfgt = lazy (Cfg.recover image) in
  let mk_caches () =
    let live_cache : (int, Liveness.t) Hashtbl.t = Hashtbl.create 4 in
    let loops_cache : (int, Looptree.t) Hashtbl.t = Hashtbl.create 4 in
    let liveness_of (f : Cfg.func) =
      match Hashtbl.find_opt live_cache f.Cfg.fentry with
      | Some l -> l
      | None ->
        let l = Liveness.compute f in
        Hashtbl.replace live_cache f.Cfg.fentry l;
        l
    in
    let looptree_of (f : Cfg.func) =
      match Hashtbl.find_opt loops_cache f.Cfg.fentry with
      | Some t -> t
      | None ->
        let t = Looptree.compute f (Dom.compute f) in
        Hashtbl.replace loops_cache f.Cfg.fentry t;
        t
    in
    (liveness_of, looptree_of)
  in
  let func_containing baddr =
    List.find_opt
      (fun (f : Cfg.func) -> Hashtbl.mem f.Cfg.block_at baddr)
      (Cfg.all_funcs (Lazy.force cfgt))
  in
  (* ---- rule stream shape ---- *)
  let rec sorted = function
    | (a : Rule.t) :: (b : Rule.t) :: tl ->
      a.Rule.addr <= b.Rule.addr && sorted (b :: tl)
    | _ -> true
  in
  if not (sorted s.Schedule.rules) then
    add Warning "unsorted-rules"
      "rules are not sorted by trigger address; the DBM's index assumes \
       they are";
  List.iter
    (fun (r : Rule.t) ->
       if not (Hashtbl.mem decode r.Rule.addr) then
         add Error "dangling-address" ~addr:r.Rule.addr ?lid:(rule_lid r)
           (Fmt.str "%s triggers at 0x%x, which is not an instruction \
                     boundary of the binary"
              (Rule.id_name r.Rule.id) r.Rule.addr);
       match s.Schedule.channel, Rule.is_profiling r.Rule.id with
       | Schedule.Parallelisation, true ->
         add Warning "channel-mismatch" ~addr:r.Rule.addr
           (Fmt.str "profiling rule %s in a parallelisation schedule"
              (Rule.id_name r.Rule.id))
       | Schedule.Profiling, false ->
         add Warning "channel-mismatch" ~addr:r.Rule.addr
           (Fmt.str "parallelisation rule %s in a profiling schedule"
              (Rule.id_name r.Rule.id))
       | _ -> ())
    s.Schedule.rules;
  (* ---- descriptors, first pass: pull every loop/check descriptor ---- *)
  let loop_descs : (int, Desc.loop_desc) Hashtbl.t = Hashtbl.create 8 in
  let check_descs : (int, Desc.check_desc) Hashtbl.t = Hashtbl.create 8 in
  let fission_descs : (int, Desc.fission_desc) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (r : Rule.t) ->
       let lid = Int64.to_int r.Rule.aux in
       match r.Rule.id with
       | Rule.LOOP_INIT | Rule.LOOP_FINISH -> begin
           match Schedule.loop_desc s r.Rule.data with
           | d ->
             if r.Rule.id = Rule.LOOP_INIT then Hashtbl.replace loop_descs lid d;
             if d.Desc.loop_id <> lid then
               add Warning "descriptor-lid-mismatch" ~addr:r.Rule.addr ~lid
                 (Fmt.str "rule names loop %d but its descriptor is for \
                           loop %d" lid d.Desc.loop_id)
           | exception _ ->
             add Error "descriptor-out-of-bounds" ~addr:r.Rule.addr ~lid
               (Fmt.str "%s descriptor offset %Ld does not decode inside \
                         the %d-byte data section"
                  (Rule.id_name r.Rule.id) r.Rule.data
                  (Bytes.length s.Schedule.data))
         end
       | Rule.MEM_BOUNDS_CHECK -> begin
           match Schedule.check_desc s r.Rule.data with
           | d ->
             Hashtbl.replace check_descs lid d;
             if d.Desc.check_loop_id <> lid then
               add Warning "descriptor-lid-mismatch" ~addr:r.Rule.addr ~lid
                 (Fmt.str "rule names loop %d but its check descriptor is \
                           for loop %d" lid d.Desc.check_loop_id);
             if d.Desc.ranges = [] then
               add Warning "empty-check" ~addr:r.Rule.addr ~lid
                 "bounds check with no ranges always passes"
           | exception _ ->
             add Error "descriptor-out-of-bounds" ~addr:r.Rule.addr ~lid
               (Fmt.str "check descriptor offset %Ld does not decode inside \
                         the %d-byte data section"
                  r.Rule.data (Bytes.length s.Schedule.data))
         end
       | Rule.LOOP_FISSION -> begin
           match Schedule.fission_desc s r.Rule.data with
           | fd ->
             Hashtbl.replace fission_descs lid fd;
             (* the embedded loop descriptor gets every ordinary deep
                check (addresses, direction, privatisation, live-outs) *)
             Hashtbl.replace loop_descs lid fd.Desc.fd_loop;
             if fd.Desc.fd_loop.Desc.loop_id <> lid then
               add Warning "descriptor-lid-mismatch" ~addr:r.Rule.addr ~lid
                 (Fmt.str "rule names loop %d but its fission descriptor \
                           is for loop %d" lid fd.Desc.fd_loop.Desc.loop_id)
           | exception _ ->
             add Error "descriptor-out-of-bounds" ~addr:r.Rule.addr ~lid
               (Fmt.str "fission descriptor offset %Ld does not decode \
                         inside the %d-byte data section"
                  r.Rule.data (Bytes.length s.Schedule.data))
         end
       | _ -> ())
    s.Schedule.rules;
  (* ---- pairing ---- *)
  let count pred =
    let t = Hashtbl.create 8 in
    List.iter
      (fun (r : Rule.t) ->
         if pred r.Rule.id then
           match rule_lid r with
           | Some lid ->
             Hashtbl.replace t lid
               (1 + Option.value ~default:0 (Hashtbl.find_opt t lid))
           | None -> ())
      s.Schedule.rules;
    t
  in
  (* a fissioned loop is initiated by LOOP_FISSION instead of
     LOOP_INIT; it still needs the same finish/spill pairing *)
  let inits = count (fun id -> id = Rule.LOOP_INIT || id = Rule.LOOP_FISSION)
  and finishes = count (( = ) Rule.LOOP_FINISH)
  and spills = count (( = ) Rule.MEM_SPILL_REG)
  and recovers = count (( = ) Rule.MEM_RECOVER_REG) in
  Hashtbl.iter
    (fun lid n ->
       if n > 1 then
         add Warning "duplicate-init" ~lid
           (Fmt.str "%d LOOP_INIT rules for one loop" n);
       if not (Hashtbl.mem finishes lid) then
         add Error "unpaired-loop-init" ~lid
           "LOOP_INIT with no LOOP_FINISH at any exit: workers would never \
            join back into the main context";
       if Hashtbl.mem spills lid && not (Hashtbl.mem recovers lid) then
         add Error "unpaired-spill" ~lid
           "MEM_SPILL_REG with no MEM_RECOVER_REG: spilled registers are \
            never restored"
       else if Hashtbl.mem recovers lid && not (Hashtbl.mem spills lid) then
         add Error "unpaired-spill" ~lid
           "MEM_RECOVER_REG with no MEM_SPILL_REG: restores registers \
            nothing saved")
    inits;
  Hashtbl.iter
    (fun lid _ ->
       if not (Hashtbl.mem inits lid) then
         add Error "unpaired-loop-finish" ~lid
           "LOOP_FINISH for a loop no LOOP_INIT ever starts")
    finishes;
  (* transactions: walk in address order, one depth counter per loop *)
  let tx_depth = Hashtbl.create 8 in
  List.iter
    (fun (r : Rule.t) ->
       match r.Rule.id with
       | Rule.TX_START ->
         let lid = Int64.to_int r.Rule.data in
         let d = 1 + Option.value ~default:0 (Hashtbl.find_opt tx_depth lid) in
         Hashtbl.replace tx_depth lid d;
         if d > 1 then
           add Warning "tx-nested" ~addr:r.Rule.addr ~lid
             (Fmt.str "TX_START nests to depth %d" d)
       | Rule.TX_FINISH ->
         let lid = Int64.to_int r.Rule.data in
         let d = Option.value ~default:0 (Hashtbl.find_opt tx_depth lid) - 1 in
         Hashtbl.replace tx_depth lid d;
         if d < 0 then
           add Error "unpaired-tx" ~addr:r.Rule.addr ~lid
             "TX_FINISH before any TX_START"
       | _ -> ())
    s.Schedule.rules;
  Hashtbl.iter
    (fun lid d ->
       if d > 0 then
         add Error "unpaired-tx" ~lid
           (Fmt.str "%d TX_START rule(s) never finished: speculative state \
                     would leak past the loop" d))
    tx_depth;
  (* ---- per-rule payload checks ---- *)
  List.iter
    (fun (r : Rule.t) ->
       match r.Rule.id with
       | Rule.LOOP_UPDATE_BOUND ->
         let idx = Int64.to_int r.Rule.data in
         if idx <> 0 && idx <> 1 then
           add Error "bad-bound-operand" ~addr:r.Rule.addr
             (Fmt.str "bound operand index %d (a compare has operands 0 \
                       and 1)" idx);
         (match Hashtbl.find_opt decode r.Rule.addr with
          | Some (Insn.Cmp _, _) -> ()
          | Some (i, _) ->
            add Error "bound-not-compare" ~addr:r.Rule.addr
              (Fmt.str "LOOP_UPDATE_BOUND must rewrite a compare, found: %s"
                 (Insn.to_string i))
          | None -> () (* already a dangling-address error *))
       | Rule.MEM_SPILL_REG | Rule.MEM_RECOVER_REG ->
         let mask = Int64.to_int r.Rule.data in
         if mask land lnot ((1 lsl Reg.gp_count) - 1) <> 0 then
           add Warning "bad-spill-mask" ~addr:r.Rule.addr
             ?lid:(rule_lid r)
             (Fmt.str "spill mask 0x%x names registers beyond the %d the \
                       machine has" mask Reg.gp_count)
       | Rule.MEM_PRIVATISE ->
         let lid = Int64.to_int r.Rule.aux in
         let slot = Int64.to_int r.Rule.data in
         if slot <= 0 then
           add Error "overlapping-privatisation" ~addr:r.Rule.addr ~lid
             (Fmt.str "TLS slot %d: slot 0 is reserved for the per-thread \
                       bound" slot)
         else begin
           match Hashtbl.find_opt loop_descs lid with
           | Some d when not (List.exists (fun (_, sl) -> sl = slot)
                                d.Desc.privatised) ->
             add Error "overlapping-privatisation" ~addr:r.Rule.addr ~lid
               (Fmt.str "TLS slot %d is not declared by the loop's \
                         descriptor" slot)
           | _ -> ()
         end
       | Rule.MEM_PREFETCH ->
         let dist = Int64.to_int r.Rule.data in
         if dist = 0 || abs dist > 4096 then
           add Warning "prefetch-distance" ~addr:r.Rule.addr
             ?lid:(rule_lid r)
             (Fmt.str "prefetch distance %d bytes is outside the useful \
                       range" dist)
       | _ -> ())
    s.Schedule.rules;
  (* ---- descriptor deep checks ---- *)
  (* Sharded per containing function over [pool]: liveness and loop
     forests are per-function artifacts, so descriptors sharing a
     function are checked as one task over one task-local cache pair.
     Descriptors are sorted by lid, groups ordered by their first lid,
     and per-task findings concatenated in that order — the report is
     byte-identical with or without a pool, at any [--jobs]. The CFG is
     recovered up front (grouping needs it), so tasks never race the
     lazy cell; [decode], [s] and [check_descs] are read-only here and
     shared Hashtbl reads are safe across domains. *)
  let deep_check ~liveness_of ~looptree_of
      (lid, (d : Desc.loop_desc), (fopt : Cfg.func option)) =
    let out = ref [] in
    let add severity code ?addr ?lid message =
      out := { severity; code; addr; lid; message } :: !out
    in
    (let check_addr what a =
         if not (Hashtbl.mem decode a) then
           add Error "descriptor-address" ~addr:a ~lid
             (Fmt.str "descriptor %s 0x%x is not an instruction boundary"
                what a)
       in
       check_addr "header" d.Desc.header_addr;
       check_addr "preheader" d.Desc.preheader_addr;
       check_addr "latch" d.Desc.latch_addr;
       List.iter (check_addr "exit target") d.Desc.exit_addrs;
       if d.Desc.exit_addrs = [] then
         add Error "descriptor-address" ~lid
           "loop descriptor declares no exits";
       (match
          List.find_opt
            (fun (r : Rule.t) ->
               (r.Rule.id = Rule.LOOP_INIT || r.Rule.id = Rule.LOOP_FISSION)
               && Int64.to_int r.Rule.aux = lid)
            s.Schedule.rules
        with
        | Some r when r.Rule.addr <> d.Desc.header_addr ->
          add Warning "init-not-at-header" ~addr:r.Rule.addr ~lid
            (Fmt.str "%s triggers at 0x%x but the descriptor's \
                      header is 0x%x"
               (Rule.id_name r.Rule.id) r.Rule.addr d.Desc.header_addr)
        | _ -> ());
       if Int64.equal d.Desc.iv_step 0L then
         add Error "zero-step" ~lid
           "iterator step 0: chunk boundaries cannot advance"
       else if not (dir_ok d.Desc.iv_cond d.Desc.iv_step) then
         add Error "direction-mismatch" ~lid
           (Fmt.str "iterator steps by %Ld but continues while (iv %s \
                     bound): the loop runs the wrong way under chunking"
              d.Desc.iv_step (Cond.name d.Desc.iv_cond));
       (* privatised scalars: slots distinct and regions disjoint *)
       let slots = List.map snd d.Desc.privatised in
       List.iter
         (fun sl ->
            if sl <= 0 then
              add Error "overlapping-privatisation" ~lid
                (Fmt.str "descriptor assigns reserved TLS slot %d" sl))
         slots;
       if List.length (List.sort_uniq compare slots) <> List.length slots
       then
         add Error "overlapping-privatisation" ~lid
           "two privatised scalars share one TLS slot: threads would alias \
            values that must stay private";
       let placed =
         List.filter_map
           (fun (e, sl) ->
              Option.map (fun a -> (a, sl)) (static_addr e))
           d.Desc.privatised
       in
       let rec pairs = function
         | [] -> ()
         | (a, sa) :: tl ->
           List.iter
             (fun (b, sb) ->
                match a, b with
                | `Abs x, `Abs y | `Rsp x, `Rsp y ->
                  if abs (x - y) < 8 && sa <> sb then
                    add Error "overlapping-privatisation" ~lid
                      (Fmt.str "privatised scalars in TLS slots %d and %d \
                                overlap in memory" sa sb)
                | _ -> ())
             tl;
           pairs tl
       in
       pairs placed;
       (* privatised scalars inside a checked array footprint: the check
          would race the privatised copy *)
       (match Hashtbl.find_opt check_descs lid with
        | Some cd ->
          List.iter
            (fun (rg : Desc.array_range) ->
               match rg.Desc.base, rg.Desc.extent with
               | Rexpr.Const b, Rexpr.Const e ->
                 let b = Int64.to_int b and e = Int64.to_int e in
                 let lo = min b (b + e)
                 and hi = max b (b + e) + rg.Desc.width in
                 List.iter
                   (fun (a, sl) ->
                      match a with
                      | `Abs x when x + 8 > lo && x < hi ->
                        add Error "privatise-checked-overlap" ~lid
                          (Fmt.str "privatised scalar (TLS slot %d) at \
                                    0x%x lies inside a bounds-checked \
                                    array footprint [0x%x,0x%x)"
                             sl x lo hi)
                      | _ -> ())
                   placed
               | _ -> ())
            cd.Desc.ranges
        | None -> ());
       (* every register the loop writes must either be declared live-out
          (the runtime copies it back) or be provably dead at every exit *)
       match fopt with
       | None ->
         add Warning "descriptor-address" ~lid
           (Fmt.str "header 0x%x is not inside any recovered function"
              d.Desc.header_addr)
       | Some f ->
         let lt = looptree_of f in
         (match
            List.find_opt
              (fun (l : Looptree.loop) ->
                 l.Looptree.header = d.Desc.header_addr)
              lt.Looptree.loops
          with
          | None ->
            add Warning "descriptor-address" ~lid
              (Fmt.str "no natural loop has its header at 0x%x"
                 d.Desc.header_addr)
          | Some l ->
            let live = liveness_of f in
            let modified_g = Hashtbl.create 8
            and modified_f = Hashtbl.create 8 in
            List.iter
              (fun baddr ->
                 match Hashtbl.find_opt f.Cfg.block_at baddr with
                 | Some b ->
                   Array.iter
                     (fun (ii : Cfg.insn_info) ->
                        List.iter
                          (fun r -> Hashtbl.replace modified_g r ())
                          (Insn.gp_defs ii.Cfg.insn);
                        List.iter
                          (fun r -> Hashtbl.replace modified_f r ())
                          (Insn.fp_defs ii.Cfg.insn))
                     b.Cfg.insns
                 | None -> ())
              l.Looptree.body;
            List.iter
              (fun exit_addr ->
                 if Hashtbl.mem f.Cfg.block_at exit_addr then begin
                   List.iter
                     (fun r ->
                        if
                          Hashtbl.mem modified_g r
                          && (not (List.mem r d.Desc.live_out_gps))
                          && r <> Reg.RSP && r <> Reg.TLS && r <> Reg.SHARED
                          && Liveness.gp_live_before live ~addr:exit_addr r
                        then
                          add Error "live-register-privatised" ~addr:exit_addr
                            ~lid
                            (Fmt.str
                               "%s is written by the loop and still live at \
                                exit 0x%x, but the schedule does not carry \
                                it out of the workers"
                               (Reg.gp_name r) exit_addr))
                     Reg.all_gp;
                   List.iter
                     (fun r ->
                        if
                          Hashtbl.mem modified_f r
                          && (not (List.mem r d.Desc.live_out_fps))
                          && Liveness.fp_live_before live ~addr:exit_addr r
                        then
                          add Error "live-register-privatised" ~addr:exit_addr
                            ~lid
                            (Fmt.str
                               "%s is written by the loop and still live at \
                                exit 0x%x, but the schedule does not carry \
                                it out of the workers"
                               (Reg.fp_name r) exit_addr))
                     Reg.all_fp
                 end)
              d.Desc.exit_addrs));
    List.rev !out
  in
  let deep_items =
    Hashtbl.fold (fun lid d acc -> (lid, d) :: acc) loop_descs []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (lid, (d : Desc.loop_desc)) ->
        (lid, d, func_containing d.Desc.header_addr))
  in
  let deep_groups =
    (* by containing function, groups in order of first (smallest) lid;
       header-less descriptors form their own group *)
    let tbl = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun ((_, _, fopt) as item) ->
         let key =
           match fopt with Some (f : Cfg.func) -> f.Cfg.fentry | None -> -1
         in
         match Hashtbl.find_opt tbl key with
         | Some r -> r := item :: !r
         | None ->
           Hashtbl.replace tbl key (ref [ item ]);
           order := key :: !order)
      deep_items;
    List.rev_map (fun k -> List.rev !(Hashtbl.find tbl k)) !order
  in
  let check_group group =
    let liveness_of, looptree_of = mk_caches () in
    List.concat_map (deep_check ~liveness_of ~looptree_of) group
  in
  let deep_findings =
    match pool with
    | Some p when Janus_pool.Pool.jobs p > 1 && List.length deep_groups > 1 ->
      List.concat (Janus_pool.Pool.map p check_group deep_groups)
    | _ -> List.concat_map check_group deep_groups
  in
  List.iter (fun f -> findings := f :: !findings) deep_findings;
  (* ---- fission schedules ---- *)
  (* forced only when a LOOP_FISSION rule exists, so fission-free
     schedules never pay for a re-analysis of the image *)
  let analysis =
    lazy (try Some (Analysis.analyse_image ?pool image) with _ -> None)
  in
  let kind_name = function
    | Depgraph.Reg_flow -> "register-flow"
    | Depgraph.Reg_output -> "register-output"
    | Depgraph.Mem -> "memory"
    | Depgraph.Ctrl -> "control"
  in
  (* iterated in lid order (not Hashtbl order) so the finding stream is
     deterministic; the caches live on the lint domain — this section is
     sequential, only the re-analysis above fans out *)
  let _, looptree_of = mk_caches () in
  List.iter
    (fun (lid, (fd : Desc.fission_desc)) ->
       let d = fd.Desc.fd_loop in
       let groups = fd.Desc.fd_groups in
       if groups = [] then
         add Error "fission-empty" ~lid
           "fission descriptor with no sub-loops"
       else begin
         if
           not
             (List.exists
                (fun (g : Desc.fission_group) -> g.Desc.fg_parallel)
                groups)
         then
           add Error "fission-no-parallel" ~lid
             "no sub-loop is parallel: the split only adds overhead";
         List.iter
           (fun (g : Desc.fission_group) ->
              if g.Desc.fg_insns = [] then
                add Error "fission-empty" ~lid
                  "fission sub-loop with no instructions")
           groups
       end;
       let listed =
         fd.Desc.fd_infra
         @ List.concat_map
             (fun (g : Desc.fission_group) -> g.Desc.fg_insns)
             groups
       in
       let rec dups = function
         | a :: b :: _ when a = b -> Some a
         | _ :: tl -> dups tl
         | [] -> None
       in
       (match dups (List.sort compare listed) with
        | Some a ->
          add Error "fission-overlap" ~addr:a ~lid
            "instruction assigned to two fission sub-loops (or to a \
             sub-loop and the shared infrastructure)"
        | None -> ());
       (* the sub-loops plus the infrastructure must partition the
          natural loop's body exactly *)
       (match func_containing d.Desc.header_addr with
        | None -> ()  (* descriptor-address warning already added *)
        | Some f ->
          let lt = looptree_of f in
          match
            List.find_opt
              (fun (l : Looptree.loop) ->
                 l.Looptree.header = d.Desc.header_addr)
              lt.Looptree.loops
          with
          | None -> ()
          | Some l ->
            let body = Hashtbl.create 32 in
            List.iter
              (fun baddr ->
                 match Hashtbl.find_opt f.Cfg.block_at baddr with
                 | Some b ->
                   Array.iter
                     (fun (ii : Cfg.insn_info) ->
                        Hashtbl.replace body ii.Cfg.addr ())
                     b.Cfg.insns
                 | None -> ())
              l.Looptree.body;
            List.iter
              (fun a ->
                 if not (Hashtbl.mem body a) then
                   add Error "fission-coverage" ~addr:a ~lid
                     "fission descriptor names an instruction outside \
                      the loop body")
              listed;
            Hashtbl.iter
              (fun a () ->
                 if not (List.mem a listed) then
                   add Error "fission-coverage" ~addr:a ~lid
                     "loop-body instruction missing from every fission \
                      sub-loop and the shared infrastructure: it would \
                      never execute")
              body);
       (* independent re-derivation: rebuild the dependence graph and
          plan from a fresh analysis of the image (including its own
          memory-conflict derivation over each sub-loop's accesses) and
          require the schedule to be at most as aggressive *)
       let para =
         List.concat_map
           (fun (g : Desc.fission_group) ->
              if g.Desc.fg_parallel then g.Desc.fg_insns else [])
           groups
       and seq =
         List.concat_map
           (fun (g : Desc.fission_group) ->
              if g.Desc.fg_parallel then [] else g.Desc.fg_insns)
           groups
       in
       match Lazy.force analysis with
       | None ->
         add Error "fission-rederive" ~lid
           "static re-analysis of the image failed"
       | Some t ->
         match
           List.find_opt
             (fun (r : Loopanal.report) ->
                r.Loopanal.loop.Looptree.header = d.Desc.header_addr)
             t.Analysis.reports
         with
         | None ->
           add Error "fission-rederive" ~lid
             (Fmt.str "no analysed loop has its header at 0x%x"
                d.Desc.header_addr)
         | Some rep ->
           match Depgraph.plan rep with
           | None ->
             add Error "fission-rederive" ~lid
               "independent re-derivation finds no sound fission plan \
                for this loop"
           | Some p ->
             List.iter
               (fun a ->
                  if not (List.mem a p.Depgraph.pl_product) then
                    add Error "fission-parallel-unsound" ~addr:a ~lid
                      "instruction scheduled into the DOALL product but \
                       re-derivation does not prove it carried-free")
               para;
             match Depgraph.build rep with
             | None -> ()
             | Some g ->
               (* members of carried-dependence cycles must stay in the
                  sequential residue *)
               List.iter
                 (fun a ->
                    if List.mem a para then
                      add Error "fission-carried-in-parallel" ~addr:a ~lid
                        "member of a loop-carried dependence scheduled \
                         into the DOALL product"
                    else if
                      (not (List.mem a seq))
                      && not (List.mem a fd.Desc.fd_infra)
                    then
                      add Error "fission-carried-in-parallel" ~addr:a ~lid
                        "carried-dependence member missing from the \
                         sequential residue")
                 (Depgraph.carried_members g);
               (* residue-ordering proof: no dependence of any kind may
                  cross the product/residue boundary, so running the
                  product phase first is equivalent to any interleaving,
                  and no value computed by one phase is consumed (live)
                  in the other *)
               let phase a =
                 if List.mem a para then `Product
                 else if List.mem a seq then `Residue
                 else `Infra
               in
               List.iter
                 (fun (e : Depgraph.edge) ->
                    let sa = g.Depgraph.dg_addrs.(e.Depgraph.e_src)
                    and da = g.Depgraph.dg_addrs.(e.Depgraph.e_dst) in
                    match phase sa, phase da with
                    | `Product, `Residue | `Residue, `Product ->
                      add Error "fission-cross-phase" ~addr:da ~lid
                        (Fmt.str
                           "%s dependence on %s crosses the product/\
                            residue boundary from 0x%x"
                           (kind_name e.Depgraph.e_kind)
                           e.Depgraph.e_tag sa)
                    | _ -> ())
                 g.Depgraph.dg_edges)
    (Hashtbl.fold (fun lid fd acc -> (lid, fd) :: acc) fission_descs []
     |> List.sort (fun (a, _) (b, _) -> compare a b));
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Cross-check against the classifier                                  *)
(* ------------------------------------------------------------------ *)

let crosscheck (t : Analysis.t) : finding list =
  let findings = ref [] in
  let add severity code ~lid message =
    findings := { severity; code; addr = None; lid = Some lid; message } :: !findings
  in
  List.iter
    (fun (r : Loopanal.report) ->
       let lid = r.Loopanal.loop.Looptree.lid in
       match r.Loopanal.cls with
       | Loopanal.Outer | Loopanal.Incompatible _ -> ()
       | cls ->
         let v = Memdep.rederive r.Loopanal.func r.Loopanal.loop in
         let summary xs = String.concat "; " xs in
         (match cls, v.Memdep.v_carried, v.Memdep.v_ambiguous with
          | Loopanal.Static_doall, (_ :: _ as carried), _ ->
            add Warning "crosscheck-carried" ~lid
              (Fmt.str
                 "classifier says DOALL but independent re-derivation \
                  found: %s" (summary carried))
          | Loopanal.Static_doall, [], (_ :: _ as amb) ->
            add Info "crosscheck-ambiguous" ~lid
              (Fmt.str
                 "classifier proves DOALL where re-derivation stops at: %s"
                 (summary amb))
          | Loopanal.Static_dep reason, [], [] ->
            add Info "crosscheck-clean" ~lid
              (Fmt.str
                 "classifier reports a dependence (%s) the re-derivation \
                  does not see" reason)
          | Loopanal.Ambiguous _, (_ :: _ as carried), _ ->
            add Info "crosscheck-carried-under-check" ~lid
              (Fmt.str
                 "runtime checks will decide, but re-derivation already \
                  sees: %s" (summary carried))
          | _ -> ()))
    t.Analysis.reports;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Demotion                                                            *)
(* ------------------------------------------------------------------ *)

let all_lids (s : Schedule.t) =
  List.filter_map rule_lid s.Schedule.rules |> List.sort_uniq compare

(* address extent of a loop, for attributing the lid-less
   LOOP_UPDATE_BOUND rules: header up to the end of the latch block *)
let loop_extent decode (d : Desc.loop_desc) =
  let rec block_end addr steps =
    if steps > 100_000 then None
    else
      match Hashtbl.find_opt decode addr with
      | None -> None
      | Some (i, len) ->
        if Insn.is_control_flow i then Some (addr + len - 1)
        else block_end (addr + len) (steps + 1)
  in
  match block_end d.Desc.latch_addr 0 with
  | Some hi -> Some (min d.Desc.header_addr d.Desc.latch_addr, hi)
  | None -> None

(* extents of the loops being demoted; None if any cannot be placed *)
let extents image (s : Schedule.t) lids =
  let decode = Image.decode_text image in
  let rec gather acc = function
    | [] -> Some acc
    | lid :: tl ->
      let desc =
        List.find_map
          (fun (r : Rule.t) ->
             (* a fission descriptor begins with its loop descriptor,
                so the same decode places fissioned loops *)
             if (r.Rule.id = Rule.LOOP_INIT || r.Rule.id = Rule.LOOP_FISSION)
                && Int64.to_int r.Rule.aux = lid
             then
               match Schedule.loop_desc s r.Rule.data with
               | d -> Some d
               | exception _ -> None
             else None)
          s.Schedule.rules
      in
      (match Option.map (loop_extent decode) desc with
       | Some (Some e) -> gather (e :: acc) tl
       | _ -> None)
  in
  gather [] lids

let demote image (s : Schedule.t) lids =
  if lids = [] then s
  else
    match extents image s lids with
    | None ->
      (* a failing loop cannot even be placed in the binary: drop the
         whole schedule — a pure DBM run is sequentially correct *)
      { s with Schedule.rules = [] }
    | Some exts ->
      let keep (r : Rule.t) =
        match rule_lid r with
        | Some l -> not (List.mem l lids)
        | None ->
          not
            (List.exists
               (fun (lo, hi) -> r.Rule.addr >= lo && r.Rule.addr <= hi)
               exts)
      in
      { s with Schedule.rules = List.filter keep s.Schedule.rules }

let check_and_demote ?pool image (s : Schedule.t) =
  let findings = lint ?pool image s in
  let failed = failed_loops findings in
  let unattributed =
    List.exists (fun f -> f.severity = Error && f.lid = None) findings
  in
  if failed = [] && not unattributed then (s, [], findings)
  else if unattributed then
    ({ s with Schedule.rules = [] }, all_lids s, findings)
  else
    let s' = demote image s failed in
    let demoted = if s'.Schedule.rules = [] then all_lids s else failed in
    (s', demoted, findings)
