(** Independent cross-iteration dependence re-derivation.

    Re-classifies a loop from first principles — register liveness,
    reaching definitions and syntactic address structure — without
    consulting the symbolic executor the main classifier
    ({!Janus_analysis.Loopanal}) is built on. The schedule verifier
    cross-checks the two: a loop the classifier calls DOALL but this
    pass finds a carried dependence in (or vice versa) is reported as a
    finding, never trusted silently — the same validate-the-classifier
    discipline the TornadoVM loop-parallelisation checker applies. *)

open Janus_analysis

type verdict = {
  v_carried : string list;
      (** re-derived cross-iteration dependences (empty: none found) *)
  v_ambiguous : string list;
      (** memory the re-derivation could not resolve statically *)
}

(** Re-derive the dependence verdict for one natural loop of a
    recovered function. The result is conservative: [v_carried] lists
    only dependences the pass can demonstrate syntactically, and
    anything unresolvable lands in [v_ambiguous]. *)
val rederive : Cfg.func -> Looptree.loop -> verdict

val pp_verdict : Format.formatter -> verdict -> unit
